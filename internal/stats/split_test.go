package stats

import "testing"

func TestSplitSeedDeterministic(t *testing.T) {
	if SplitSeed(42, "campaign/FB-USA") != SplitSeed(42, "campaign/FB-USA") {
		t.Fatal("same (root, label) must give same seed")
	}
	if SplitSeedN(42, "history", 7) != SplitSeedN(42, "history", 7) {
		t.Fatal("same (root, label, n) must give same seed")
	}
}

func TestSplitSeedDistinguishesInputs(t *testing.T) {
	seen := map[int64]string{}
	add := func(s int64, what string) {
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %s and %s", prev, what)
		}
		seen[s] = what
	}
	add(SplitSeed(1, "a"), "root=1 a")
	add(SplitSeed(1, "b"), "root=1 b")
	add(SplitSeed(2, "a"), "root=2 a")
	for i := int64(0); i < 100; i++ {
		add(SplitSeedN(1, "fam", i), "fam member")
	}
}

func TestSplitRandStreamsReproducible(t *testing.T) {
	a := SplitRandN(9, "x", 3)
	b := SplitRandN(9, "x", 3)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("identical streams diverged")
		}
	}
}

func TestSplitRandStreamsDiffer(t *testing.T) {
	a := SplitRandN(9, "x", 3)
	b := SplitRandN(9, "x", 4)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/64 draws identical across sibling streams", same)
	}
}

func TestSMSourceUniformish(t *testing.T) {
	// Cheap sanity check on the SplitMix64 source: Intn over a small
	// modulus should hit every residue for a reasonable sample.
	r := SplitRand(123, "uniform")
	var counts [10]int
	const n = 10000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if c < n/10-n/25 || c > n/10+n/25 {
			t.Fatalf("residue %d count %d far from uniform", d, c)
		}
	}
}
