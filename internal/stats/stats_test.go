package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Fatalf("Mean = %v (%v), want 5", m, err)
	}
	sd, err := StdDev(xs)
	if err != nil || !almostEqual(sd, 2, 1e-12) {
		t.Fatalf("StdDev = %v (%v), want 2", sd, err)
	}
	med, err := Median(xs)
	if err != nil || med != 4.5 {
		t.Fatalf("Median = %v (%v), want 4.5", med, err)
	}
}

func TestEmptyInputs(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Fatal("Mean(nil) should error")
	}
	if _, err := StdDev(nil); err == nil {
		t.Fatal("StdDev(nil) should error")
	}
	if _, err := Median(nil); err == nil {
		t.Fatal("Median(nil) should error")
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Fatal("MinMax(nil) should error")
	}
	if _, err := NewECDF(nil); err == nil {
		t.Fatal("NewECDF(nil) should error")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil || !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v (%v), want %v", c.q, got, err, c.want)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("Quantile out of range should error")
	}
	if _, err := Quantile(xs, math.NaN()); err == nil {
		t.Fatal("Quantile(NaN) should error")
	}
	one, err := Quantile([]float64{42}, 0.7)
	if err != nil || one != 42 {
		t.Fatalf("single-element quantile = %v (%v)", one, err)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.3, 0.5}
	for i := range want {
		if !almostEqual(out[i], want[i], 1e-12) {
			t.Fatalf("Normalize = %v, want %v", out, want)
		}
	}
	if _, err := Normalize([]float64{1, -1}); err == nil {
		t.Fatal("negative weight should error")
	}
	if _, err := Normalize([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights should error")
	}
}

func TestKLDivergenceIdentityIsZero(t *testing.T) {
	p := []float64{0.1, 0.2, 0.3, 0.4}
	d, err := KLDivergence(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0, 1e-6) {
		t.Fatalf("KL(p||p) = %v, want ~0", d)
	}
}

func TestKLDivergenceKnownValue(t *testing.T) {
	// KL([1,0] || [0.5,0.5]) = log2(2) = 1 bit.
	d, err := KLDivergence([]float64{1, 0}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 1, 1e-6) {
		t.Fatalf("KL = %v, want 1", d)
	}
}

func TestKLDivergenceHandlesZeroQ(t *testing.T) {
	d, err := KLDivergence([]float64{0.5, 0.5}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(d, 0) || math.IsNaN(d) || d <= 0 {
		t.Fatalf("smoothed KL = %v, want finite positive", d)
	}
}

func TestKLDivergenceErrors(t *testing.T) {
	if _, err := KLDivergence([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("mismatched supports should error")
	}
	if _, err := KLDivergence(nil, nil); err == nil {
		t.Fatal("empty should error")
	}
	if _, err := KLDivergence([]float64{0.5, 0.5}, []float64{-1, 2}); err == nil {
		t.Fatal("negative q should error")
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	f := func(a, b [6]uint8) bool {
		p := make([]float64, 6)
		q := make([]float64, 6)
		sum := 0.0
		for i := range p {
			p[i] = float64(a[i])
			q[i] = float64(b[i]) + 1 // keep q strictly positive
			sum += p[i]
		}
		if sum == 0 {
			return true // Normalize rejects; not this property's domain
		}
		d, err := KLDivergence(p, q)
		return err == nil && d >= 0 && !math.IsNaN(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccard(t *testing.T) {
	a := SetOf([]string{"x", "y", "z"})
	b := SetOf([]string{"y", "z", "w"})
	if got := Jaccard(a, b); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("Jaccard = %v, want 0.5", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Fatalf("Jaccard(a,a) = %v, want 1", got)
	}
	empty := map[string]struct{}{}
	if got := Jaccard(empty, empty); got != 0 {
		t.Fatalf("Jaccard(∅,∅) = %v, want 0", got)
	}
	if got := Jaccard(a, empty); got != 0 {
		t.Fatalf("Jaccard(a,∅) = %v, want 0", got)
	}
}

func TestJaccardProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := SetOf(xs)
		b := SetOf(ys)
		j1 := Jaccard(a, b)
		j2 := Jaccard(b, a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("ECDF.At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 || e.Min() != 1 || e.Max() != 3 {
		t.Fatalf("N/Min/Max = %d/%v/%v", e.N(), e.Min(), e.Max())
	}
	xs, ys := e.Points()
	if len(xs) != 3 || xs[1] != 2 || !almostEqual(ys[1], 0.75, 1e-12) {
		t.Fatalf("Points = %v %v", xs, ys)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, probes [8]uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		prevX, prevY := math.Inf(-1), 0.0
		ps := make([]float64, 0, len(probes))
		for _, p := range probes {
			ps = append(ps, float64(p))
		}
		// monotone in sorted probe order
		for _, x := range ps {
			_ = x
		}
		sortFloats(ps)
		for _, x := range ps {
			y := e.At(x)
			if x >= prevX && y < prevY {
				return false
			}
			if y < 0 || y > 1 {
				return false
			}
			prevX, prevY = x, y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram("USA", "India", "Egypt")
	for i := 0; i < 3; i++ {
		h.Add("USA")
	}
	h.Add("India")
	h.Add("Turkey") // goes to other
	h.Add("Turkey")
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	if h.Count("USA") != 3 || h.Count("other") != 2 || h.Count("Egypt") != 0 {
		t.Fatalf("counts wrong: %v %v", h.Labels, h.Counts)
	}
	fr := h.Fractions()
	if !almostEqual(fr[0], 0.5, 1e-12) {
		t.Fatalf("Fractions = %v", fr)
	}
	if h.Count("nope") != 0 {
		t.Fatal("unknown label should count 0")
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h := NewHistogram("a", "b")
	fr := h.Fractions()
	if fr[0] != 0 || fr[1] != 0 {
		t.Fatalf("empty Fractions = %v, want zeros", fr)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	c, err := NewCategorical([]string{"a", "b", "c"}, []float64{1, 2, 7})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	n := 100000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[c.Sample(r)]++
	}
	if f := float64(counts["c"]) / float64(n); !almostEqual(f, 0.7, 0.02) {
		t.Fatalf("P(c) ≈ %v, want ~0.7", f)
	}
	if f := float64(counts["a"]) / float64(n); !almostEqual(f, 0.1, 0.02) {
		t.Fatalf("P(a) ≈ %v, want ~0.1", f)
	}
	if p := c.Prob("b"); !almostEqual(p, 0.2, 1e-12) {
		t.Fatalf("Prob(b) = %v, want 0.2", p)
	}
	if p := c.Prob("zzz"); p != 0 {
		t.Fatalf("Prob(zzz) = %v, want 0", p)
	}
}

func TestCategoricalErrors(t *testing.T) {
	if _, err := NewCategorical(nil, nil); err == nil {
		t.Fatal("empty categorical should error")
	}
	if _, err := NewCategorical([]string{"a"}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths should error")
	}
	if _, err := NewCategorical([]string{"a", "b"}, []float64{0, 0}); err == nil {
		t.Fatal("zero weights should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCategorical should panic on bad input")
		}
	}()
	MustCategorical([]string{"a"}, []float64{-1})
}

func TestLogNormalMedianCalibration(t *testing.T) {
	mu, err := LogNormalForMedian(34)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLogNormal(mu, 1.2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = l.Sample(r)
	}
	med, err := Median(xs)
	if err != nil {
		t.Fatal(err)
	}
	if med < 28 || med > 42 {
		t.Fatalf("sampled median = %v, want ≈34", med)
	}
}

func TestLogNormalTruncation(t *testing.T) {
	l, err := NewLogNormal(math.Log(100), 2.0, 10, 500)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		v := l.Sample(r)
		if v < 10 || v > 500 {
			t.Fatalf("sample %v outside truncation [10,500]", v)
		}
	}
}

func TestLogNormalErrors(t *testing.T) {
	if _, err := NewLogNormal(0, 0, 0, 0); err == nil {
		t.Fatal("sigma=0 should error")
	}
	if _, err := NewLogNormal(0, 1, 10, 5); err == nil {
		t.Fatal("min>max should error")
	}
	if _, err := LogNormalForMedian(0); err == nil {
		t.Fatal("median 0 should error")
	}
}

func TestBoundedZipf(t *testing.T) {
	z, err := NewBoundedZipf(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	counts := make([]int, 101)
	n := 50000
	for i := 0; i < n; i++ {
		v := z.Sample(r)
		if v < 1 || v > 100 {
			t.Fatalf("zipf sample %d out of range", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("zipf not decreasing: c1=%d c10=%d c100=%d", counts[1], counts[10], counts[100])
	}
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
}

func TestBoundedZipfErrors(t *testing.T) {
	if _, err := NewBoundedZipf(0, 1); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := NewBoundedZipf(10, 0); err == nil {
		t.Fatal("s=0 should error")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	got, err := SampleWithoutReplacement(r, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("index %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
	}
	if _, err := SampleWithoutReplacement(r, 3, 5); err == nil {
		t.Fatal("k>n should error")
	}
	if _, err := SampleWithoutReplacement(r, 3, -1); err == nil {
		t.Fatal("negative k should error")
	}
	all, err := SampleWithoutReplacement(r, 4, 4)
	if err != nil || len(all) != 4 {
		t.Fatalf("full sample: %v (%v)", all, err)
	}
}

func TestSampleWithoutReplacementUniformProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		got, err := SampleWithoutReplacement(r, 20, 7)
		if err != nil || len(got) != 7 {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulli(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if Bernoulli(r, 0) {
		t.Fatal("p=0 should be false")
	}
	if !Bernoulli(r, 1) {
		t.Fatal("p=1 should be true")
	}
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if Bernoulli(r, 0.3) {
			hits++
		}
	}
	if f := float64(hits) / float64(n); !almostEqual(f, 0.3, 0.01) {
		t.Fatalf("Bernoulli(0.3) ≈ %v", f)
	}
}

func TestPoisson(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	if Poisson(r, 0) != 0 {
		t.Fatal("lambda=0 should be 0")
	}
	sum := 0
	n := 20000
	for i := 0; i < n; i++ {
		sum += Poisson(r, 4.5)
	}
	if m := float64(sum) / float64(n); !almostEqual(m, 4.5, 0.15) {
		t.Fatalf("Poisson mean ≈ %v, want 4.5", m)
	}
	// large-lambda path
	sum = 0
	for i := 0; i < n; i++ {
		v := Poisson(r, 100)
		if v < 0 {
			t.Fatal("negative poisson draw")
		}
		sum += v
	}
	if m := float64(sum) / float64(n); !almostEqual(m, 100, 2) {
		t.Fatalf("Poisson(100) mean ≈ %v", m)
	}
}

func TestJitterDuration(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	if v := JitterDuration(r, 100, 0); v != 100 {
		t.Fatalf("no jitter should return base, got %v", v)
	}
	for i := 0; i < 1000; i++ {
		v := JitterDuration(r, 100, 0.25)
		if v < 75 || v > 125 {
			t.Fatalf("jitter %v outside [75,125]", v)
		}
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	sampleSeq := func(seed int64) []string {
		c := MustCategorical([]string{"a", "b", "c"}, []float64{1, 1, 1})
		r := rand.New(rand.NewSource(seed))
		out := make([]string, 50)
		for i := range out {
			out[i] = c.Sample(r)
		}
		return out
	}
	a := sampleSeq(42)
	b := sampleSeq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should produce identical sequences")
		}
	}
}
