package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Categorical samples labels from a fixed discrete distribution using the
// alias-free cumulative method. It is the workhorse behind demographic
// attribute assignment (gender, age bracket, country).
type Categorical struct {
	labels []string
	cum    []float64
}

// NewCategorical builds a sampler over labels with the given weights
// (non-negative, not all zero). Weights need not sum to 1.
func NewCategorical(labels []string, weights []float64) (*Categorical, error) {
	if len(labels) == 0 || len(labels) != len(weights) {
		return nil, fmt.Errorf("stats: categorical needs matching labels/weights (%d vs %d)", len(labels), len(weights))
	}
	norm, err := Normalize(weights)
	if err != nil {
		return nil, err
	}
	cum := make([]float64, len(norm))
	acc := 0.0
	for i, w := range norm {
		acc += w
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // guard against rounding
	return &Categorical{labels: append([]string(nil), labels...), cum: cum}, nil
}

// MustCategorical is NewCategorical that panics on error; for statically
// known tables (e.g. the global Facebook age distribution).
func MustCategorical(labels []string, weights []float64) *Categorical {
	c, err := NewCategorical(labels, weights)
	if err != nil {
		panic(err)
	}
	return c
}

// Sample draws one label.
func (c *Categorical) Sample(r *rand.Rand) string {
	u := r.Float64()
	i := sort.SearchFloat64s(c.cum, u)
	if i >= len(c.labels) {
		i = len(c.labels) - 1
	}
	return c.labels[i]
}

// Labels returns the category labels in order.
func (c *Categorical) Labels() []string { return append([]string(nil), c.labels...) }

// Prob returns the probability of a label (0 if absent).
func (c *Categorical) Prob(label string) float64 {
	prev := 0.0
	for i, l := range c.labels {
		if l == label {
			return c.cum[i] - prev
		}
		prev = c.cum[i]
	}
	return 0
}

// LogNormal samples from a lognormal distribution with the given
// parameters of the underlying normal, truncated to [min, max]. The
// page-like counts of real Facebook users (Figure 4 baseline, median ~34)
// and of farm accounts (median 1200–1800) are modelled this way.
type LogNormal struct {
	Mu, Sigma float64
	Min, Max  float64
}

// NewLogNormal builds a truncated lognormal sampler. Max <= 0 means no
// upper bound.
func NewLogNormal(mu, sigma, min, max float64) (*LogNormal, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("stats: lognormal sigma %v must be positive", sigma)
	}
	if max > 0 && min > max {
		return nil, fmt.Errorf("stats: lognormal min %v > max %v", min, max)
	}
	return &LogNormal{Mu: mu, Sigma: sigma, Min: min, Max: max}, nil
}

// Sample draws one value by rejection from the truncation window, falling
// back to clamping after a bounded number of attempts.
func (l *LogNormal) Sample(r *rand.Rand) float64 {
	for i := 0; i < 64; i++ {
		v := math.Exp(l.Mu + l.Sigma*r.NormFloat64())
		if v >= l.Min && (l.Max <= 0 || v <= l.Max) {
			return v
		}
	}
	v := math.Exp(l.Mu)
	if v < l.Min {
		v = l.Min
	}
	if l.Max > 0 && v > l.Max {
		v = l.Max
	}
	return v
}

// SampleInt draws one value rounded to an int.
func (l *LogNormal) SampleInt(r *rand.Rand) int { return int(math.Round(l.Sample(r))) }

// MedianOf returns the median of the (untruncated) distribution, exp(mu).
func (l *LogNormal) MedianOf() float64 { return math.Exp(l.Mu) }

// LogNormalForMedian returns the mu parameter that yields the target median.
func LogNormalForMedian(median float64) (float64, error) {
	if median <= 0 {
		return 0, fmt.Errorf("stats: lognormal median %v must be positive", median)
	}
	return math.Log(median), nil
}

// BoundedZipf samples integers in [1, n] with probability proportional to
// 1/rank^s. Used for page popularity when farm accounts pick cover pages.
type BoundedZipf struct {
	cum []float64
}

// NewBoundedZipf builds a Zipf sampler over ranks 1..n with exponent s > 0.
func NewBoundedZipf(n int, s float64) (*BoundedZipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: zipf n %d must be positive", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("stats: zipf exponent %v must be positive", s)
	}
	cum := make([]float64, n)
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += 1 / math.Pow(float64(i), s)
		cum[i-1] = acc
	}
	for i := range cum {
		cum[i] /= acc
	}
	cum[n-1] = 1
	return &BoundedZipf{cum: cum}, nil
}

// Sample draws a rank in [1, n].
func (z *BoundedZipf) Sample(r *rand.Rand) int {
	u := r.Float64()
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i + 1
}

// N returns the support size.
func (z *BoundedZipf) N() int { return len(z.cum) }

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). It errors when k > n.
func SampleWithoutReplacement(r *rand.Rand, n, k int) ([]int, error) {
	if k < 0 || n < 0 {
		return nil, errors.New("stats: negative sample size")
	}
	if k > n {
		return nil, fmt.Errorf("stats: cannot sample %d from %d without replacement", k, n)
	}
	// Partial Fisher–Yates over an index slice; O(n) space, O(k) swaps.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k], nil
}

// Bernoulli returns true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Poisson draws from a Poisson distribution with mean lambda using
// Knuth's method for small lambda and a normal approximation above 30.
// It drives arrival counts per monitoring interval.
func Poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(math.Round(v))
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// JitterDuration returns base scaled by a uniform factor in [1-f, 1+f].
func JitterDuration(r *rand.Rand, base float64, f float64) float64 {
	if f <= 0 {
		return base
	}
	return base * (1 - f + 2*f*r.Float64())
}
