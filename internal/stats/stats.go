// Package stats provides the statistical primitives used throughout the
// reproduction: descriptive statistics, empirical CDFs, quantiles,
// Kullback–Leibler divergence (Table 2), Jaccard similarity (Figure 5),
// and seeded samplers for the synthetic world (categorical, truncated
// lognormal, bounded Zipf).
//
// Everything is deterministic given an explicit *rand.Rand; no package
// state, no global randomness.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by descriptive statistics over empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// MeanStd returns both the mean and population standard deviation.
func MeanStd(xs []float64) (mean, std float64, err error) {
	mean, err = Mean(xs)
	if err != nil {
		return 0, 0, err
	}
	std, err = StdDev(xs)
	return mean, std, err
}

// Median returns the median of xs (average of middle two for even length).
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile of xs, q in [0,1], using linear
// interpolation between order statistics (type 7, the R/NumPy default).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Normalize scales non-negative weights to sum to 1. It returns an error
// if any weight is negative or the sum is zero.
func Normalize(ws []float64) ([]float64, error) {
	if len(ws) == 0 {
		return nil, ErrEmpty
	}
	sum := 0.0
	for i, w := range ws {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("stats: negative or NaN weight %v at %d", w, i)
		}
		sum += w
	}
	if sum == 0 {
		return nil, errors.New("stats: all weights zero")
	}
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = w / sum
	}
	return out, nil
}

// KLDivergence returns D_KL(p || q) in bits for two discrete distributions
// over the same support. Entries of p that are zero contribute nothing.
// To remain defined when q has zero mass where p does not (which happens
// with finite samples), q is smoothed with a small epsilon and
// renormalized, mirroring the common practice for the paper's Table 2.
func KLDivergence(p, q []float64) (float64, error) {
	if len(p) == 0 || len(p) != len(q) {
		return 0, fmt.Errorf("stats: KL over mismatched supports (%d vs %d)", len(p), len(q))
	}
	pn, err := Normalize(p)
	if err != nil {
		return 0, fmt.Errorf("stats: KL p: %w", err)
	}
	const eps = 1e-9
	qs := make([]float64, len(q))
	for i, w := range q {
		if w < 0 || math.IsNaN(w) {
			return 0, fmt.Errorf("stats: KL q: negative or NaN weight %v at %d", w, i)
		}
		qs[i] = w + eps
	}
	qn, err := Normalize(qs)
	if err != nil {
		return 0, fmt.Errorf("stats: KL q: %w", err)
	}
	d := 0.0
	for i := range pn {
		if pn[i] == 0 {
			continue
		}
		d += pn[i] * math.Log2(pn[i]/qn[i])
	}
	if d < 0 && d > -1e-12 {
		d = 0 // clamp floating-point noise; KL is non-negative
	}
	return d, nil
}

// Jaccard returns |a ∩ b| / |a ∪ b| for two sets of strings. The Jaccard
// of two empty sets is defined as 0 here (the paper's campaign like-sets
// are never both empty in practice).
func Jaccard[T comparable](a, b map[T]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for k := range small {
		if _, ok := large[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// SetOf builds a set from a slice.
func SetOf[T comparable](xs []T) map[T]struct{} {
	s := make(map[T]struct{}, len(xs))
	for _, x := range xs {
		s[x] = struct{}{}
	}
	return s
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples (which are copied and sorted).
func NewECDF(samples []float64) (*ECDF, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.sorted) }

// Min and Max return the sample range.
func (e *ECDF) Min() float64 { return e.sorted[0] }
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Quantile returns the q-quantile of the underlying samples.
func (e *ECDF) Quantile(q float64) (float64, error) { return Quantile(e.sorted, q) }

// Points returns (x, F(x)) pairs at the distinct sample values, suitable
// for plotting a CDF curve like the paper's Figure 4.
func (e *ECDF) Points() (xs, ys []float64) {
	n := float64(len(e.sorted))
	for i := 0; i < len(e.sorted); {
		j := i
		for j < len(e.sorted) && e.sorted[j] == e.sorted[i] {
			j++
		}
		xs = append(xs, e.sorted[i])
		ys = append(ys, float64(j)/n)
		i = j
	}
	return xs, ys
}

// Histogram counts samples into labelled categories.
type Histogram struct {
	Labels []string
	Counts []int
	index  map[string]int
}

// NewHistogram creates a histogram over the given ordered category labels.
func NewHistogram(labels ...string) *Histogram {
	h := &Histogram{
		Labels: append([]string(nil), labels...),
		Counts: make([]int, len(labels)),
		index:  make(map[string]int, len(labels)),
	}
	for i, l := range labels {
		h.index[l] = i
	}
	return h
}

// Add increments the count for label. Unknown labels are counted under an
// implicit "other" bucket appended on first use.
func (h *Histogram) Add(label string) {
	i, ok := h.index[label]
	if !ok {
		i, ok = h.index["other"]
		if !ok {
			h.Labels = append(h.Labels, "other")
			h.Counts = append(h.Counts, 0)
			i = len(h.Labels) - 1
			h.index["other"] = i
		}
	}
	h.Counts[i]++
}

// Total returns the number of samples added.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Fractions returns the normalized counts; all zeros if empty.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	t := h.Total()
	if t == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(t)
	}
	return out
}

// Count returns the count for a label (0 if absent).
func (h *Histogram) Count(label string) int {
	if i, ok := h.index[label]; ok {
		return h.Counts[i]
	}
	return 0
}
