package stats

import "math/rand"

// splitmix64 is the finalizer of the SplitMix64 generator (Steele et
// al., "Fast Splittable Pseudorandom Number Generators"). It is used
// here as a seed mixer: statistically independent outputs for related
// inputs, so derived streams don't correlate with the root stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 hashes a label with FNV-1a.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// SplitSeed derives an independent stream seed from a root seed and a
// label. The same (root, label) pair always yields the same seed, and
// distinct labels yield decorrelated streams — the foundation of the
// parallel study engine's determinism: each campaign, each materialized
// history, and each sweep decision draws from its own split stream, so
// results are bit-identical no matter how work interleaves across
// workers.
func SplitSeed(root int64, label string) int64 {
	return int64(splitmix64(uint64(root) ^ fnv64(label)))
}

// SplitSeedN derives an independent stream seed from a root seed, a
// label, and an index (e.g. a user ID), for per-item streams inside a
// labeled family.
func SplitSeedN(root int64, label string, n int64) int64 {
	return int64(splitmix64(uint64(root) ^ fnv64(label) ^ splitmix64(uint64(n))))
}

// smSource is a SplitMix64 rand.Source64. Unlike the standard library
// source, seeding is O(1) — the parallel engine creates one stream per
// account, so cheap construction matters as much as cheap stepping.
type smSource struct{ state uint64 }

func (s *smSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *smSource) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *smSource) Seed(seed int64) { s.state = uint64(seed) }

// SplitRand returns a rand.Rand over the split stream (root, label).
func SplitRand(root int64, label string) *rand.Rand {
	return rand.New(&smSource{state: uint64(SplitSeed(root, label))})
}

// SplitRandN returns a rand.Rand over the split stream (root, label, n).
func SplitRandN(root int64, label string, n int64) *rand.Rand {
	return rand.New(&smSource{state: uint64(SplitSeedN(root, label, n))})
}
