package detect

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/socialnet"
)

// Bench world shape: a fixed population of enrolled accounts sitting on
// top of a history backlog of varying depth. The scorer consumes the
// backlog once at setup; the measured unit is one steady-state tick
// over a fixed number of fresh likes — which must cost the same no
// matter how deep the already-consumed backlog is.
const (
	benchUsers       = 500
	benchTickLikes   = 500 // one fresh like per enrolled user per tick
	benchAmbientPool = 1024
)

// benchBacklogWorld builds the backlog store and a scorer that has
// consumed all of it.
func benchBacklogWorld(tb testing.TB, backlog int) (*socialnet.Store, *StreamScorer, []socialnet.UserID, time.Time) {
	tb.Helper()
	st := socialnet.NewStore()
	hp, err := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
	if err != nil {
		tb.Fatal(err)
	}
	amb := make([]socialnet.PageID, benchAmbientPool)
	for i := range amb {
		p, err := st.AddPage(socialnet.Page{Name: fmt.Sprintf("amb%d", i)})
		if err != nil {
			tb.Fatal(err)
		}
		amb[i] = p
	}
	perUser := backlog / benchUsers
	if perUser > benchAmbientPool {
		tb.Fatalf("backlog %d needs %d history pages per user, pool has %d", backlog, perUser, benchAmbientPool)
	}
	users := make([]socialnet.UserID, benchUsers)
	for i := range users {
		u := st.AddUser(socialnet.User{Country: "TR"})
		users[i] = u
		likes := make([]socialnet.Like, perUser)
		for j := range likes {
			likes[j] = socialnet.Like{Page: amb[j], At: t0.Add(time.Duration(i*perUser+j) * time.Second)}
		}
		if err := st.AddHistory(u, likes); err != nil {
			tb.Fatal(err)
		}
		if err := st.AddLike(u, hp, t0.AddDate(0, 1, 0).Add(time.Duration(i)*time.Second)); err != nil {
			tb.Fatal(err)
		}
	}
	s := NewStreamScorer(st, StreamScorerConfig{})
	s.Tick()
	return st, s, users, t0.AddDate(0, 2, 0)
}

// benchTick appends one fresh like per enrolled user (all on one new
// page, 3h past the previous tick so the window deques stay shallow)
// and consumes them in one tick.
func benchTick(tb testing.TB, st *socialnet.Store, s *StreamScorer, users []socialnet.UserID, at time.Time, i int) {
	tb.Helper()
	p, err := st.AddPage(socialnet.Page{Name: fmt.Sprintf("tick%d", i)})
	if err != nil {
		tb.Fatal(err)
	}
	for j, u := range users {
		if err := st.AddLike(u, p, at.Add(time.Duration(j)*time.Millisecond)); err != nil {
			tb.Fatal(err)
		}
	}
	if got := s.Tick(); got != len(users) {
		tb.Fatalf("tick consumed %d of %d fresh likes", got, len(users))
	}
}

// BenchmarkStreamScorerTick pins the streaming scorer's per-tick cost
// to O(new likes): the incremental sub-benches must stay flat from a
// 10k to a 500k event backlog, while the coldstart sub-benches (a fresh
// scorer consuming the whole journal, the pre-cursor behaviour) scale
// linearly with it.
func BenchmarkStreamScorerTick(b *testing.B) {
	for _, backlog := range []int{10_000, 100_000, 500_000} {
		backlog := backlog
		b.Run(fmt.Sprintf("backlog=%d/incremental", backlog), func(b *testing.B) {
			st, s, users, start := benchBacklogWorld(b, backlog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchTick(b, st, s, users, start.Add(time.Duration(i)*3*time.Hour), i)
			}
		})
		b.Run(fmt.Sprintf("backlog=%d/coldstart", backlog), func(b *testing.B) {
			st, _, _, _ := benchBacklogWorld(b, backlog)
			total := st.Journal().Len()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fresh := NewStreamScorer(st, StreamScorerConfig{})
				if got := fresh.Tick(); got != total {
					b.Fatalf("coldstart consumed %d of %d", got, total)
				}
			}
		})
	}
}

// detectBenchResult is one row of the BENCH_detect.json artifact.
type detectBenchResult struct {
	Name    string `json:"name"`
	Backlog int    `json:"backlog"`
	NsPerOp int64  `json:"ns_per_op"`
}

// TestEmitDetectBenchJSON, gated behind DETECT_BENCH_JSON=<path>, runs
// the incremental tick benchmark across backlog depths through
// testing.Benchmark and writes ns/op per depth as JSON. CI uploads the
// file as an artifact and gates on the 500k/10k flatness ratio.
func TestEmitDetectBenchJSON(t *testing.T) {
	path := os.Getenv("DETECT_BENCH_JSON")
	if path == "" {
		t.Skip("set DETECT_BENCH_JSON=<path> to emit the detect benchmark artifact")
	}
	var results []detectBenchResult
	for _, backlog := range []int{10_000, 100_000, 500_000} {
		backlog := backlog
		br := testing.Benchmark(func(b *testing.B) {
			st, s, users, start := benchBacklogWorld(b, backlog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchTick(b, st, s, users, start.Add(time.Duration(i)*3*time.Hour), i)
			}
		})
		results = append(results, detectBenchResult{
			Name:    "BenchmarkStreamScorerTickIncremental",
			Backlog: backlog,
			NsPerOp: br.NsPerOp(),
		})
	}
	raw, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", path, raw)
}

// Lockstep bench world shape: backlog honeypot likes spread thin across
// a few tracked pages (every like lands in a per-page co-action
// sketch), then steady-state ticks of fresh likes from ALREADY-enrolled
// users onto pre-registered tracked pages — no enrollments, matching
// the scorer bench's steady-state notion. Fresh likes within one tick
// share a timestamp: the journal's shard-ordered drain then never
// presents a tracked page an out-of-order instant, so the measured tick
// exercises the pure incremental observe path — no poison, no resync —
// which must stay flat in backlog depth.
const (
	lockstepBenchPages   = 4     // backlog honeypot pages
	lockstepTickPages    = 8     // tracked pages receiving one tick's likes
	lockstepTickPagePool = 16384 // pre-registered tick pages (tracking is fixed at scorer creation)
)

// benchLockstepWorld builds a store whose WHOLE backlog is
// sketch-relevant (honeypot likes) and a scorer that has consumed it,
// plus a cohort of enrolled users for the steady-state ticks.
func benchLockstepWorld(tb testing.TB, backlog int) (*socialnet.Store, *StreamScorer, []socialnet.UserID, []socialnet.PageID, time.Time) {
	tb.Helper()
	st := socialnet.NewStore()
	hps := make([]socialnet.PageID, lockstepBenchPages)
	for i := range hps {
		p, err := st.AddPage(socialnet.Page{Name: fmt.Sprintf("hp%d", i), Honeypot: true})
		if err != nil {
			tb.Fatal(err)
		}
		hps[i] = p
	}
	pool := make([]socialnet.PageID, lockstepTickPagePool)
	for i := range pool {
		p, err := st.AddPage(socialnet.Page{Name: fmt.Sprintf("tickhp%d", i), Honeypot: true})
		if err != nil {
			tb.Fatal(err)
		}
		pool[i] = p
	}
	nUsers := backlog / lockstepBenchPages
	if nUsers < benchTickLikes {
		tb.Fatalf("backlog %d enrolls %d users, tick cohort needs %d", backlog, nUsers, benchTickLikes)
	}
	users := make([]socialnet.UserID, 0, nUsers)
	for i := 0; i < nUsers; i++ {
		u := st.AddUser(socialnet.User{Country: "TR"})
		users = append(users, u)
		for j, p := range hps {
			// 15-minute stride: ~2 co-bin likes per page per 2h window,
			// so the backlog's pair mass scales linearly, not
			// quadratically, with depth.
			at := t0.Add(time.Duration(i*lockstepBenchPages+j) * 15 * time.Minute)
			if err := st.AddLike(u, p, at); err != nil {
				tb.Fatal(err)
			}
		}
	}
	s := NewStreamScorer(st, StreamScorerConfig{})
	s.Tick()
	// Settle the setup's garbage before timing starts: the world build
	// leaves a large freshly-allocated heap, and at low iteration counts
	// the collection it forces would otherwise land inside the first few
	// measured ticks — read as backlog-dependent cost when it is not.
	runtime.GC()
	start := t0.Add(time.Duration(nUsers*lockstepBenchPages+1) * 15 * time.Minute).Add(24 * time.Hour)
	return st, s, users[:benchTickLikes], pool, start
}

// benchLockstepTick has every cohort user like one of tick i's tracked
// pages, all stamped with the identical instant, and consumes the batch
// in one tick.
func benchLockstepTick(tb testing.TB, st *socialnet.Store, s *StreamScorer, cohort []socialnet.UserID, pool []socialnet.PageID, at time.Time, i int) {
	tb.Helper()
	lo := i * lockstepTickPages
	if lo+lockstepTickPages > len(pool) {
		tb.Fatalf("tick %d exhausts the %d-page pool; raise lockstepTickPagePool", i, len(pool))
	}
	pages := pool[lo : lo+lockstepTickPages]
	for j, u := range cohort {
		if err := st.AddLike(u, pages[j%lockstepTickPages], at); err != nil {
			tb.Fatal(err)
		}
	}
	if got := s.Tick(); got != len(cohort) {
		tb.Fatalf("tick consumed %d of %d fresh likes", got, len(cohort))
	}
}

// BenchmarkStreamLockstepTick pins the sketch-maintaining tick to
// O(new likes): per-tick cost must stay flat from a 10k to a 500k
// backlog of consumed honeypot likes, even though the deeper backlogs
// carry proportionally larger sketches.
func BenchmarkStreamLockstepTick(b *testing.B) {
	for _, backlog := range []int{10_000, 100_000, 500_000} {
		backlog := backlog
		b.Run(fmt.Sprintf("backlog=%d/incremental", backlog), func(b *testing.B) {
			st, s, cohort, pool, start := benchLockstepWorld(b, backlog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchLockstepTick(b, st, s, cohort, pool, start.Add(time.Duration(i)*3*time.Hour), i)
			}
		})
	}
}

// TestEmitLockstepBenchJSON, gated behind LOCKSTEP_BENCH_JSON=<path>,
// runs the lockstep tick benchmark across backlog depths through
// testing.Benchmark and writes ns/op per depth as JSON. CI uploads the
// file as an artifact and gates on the 500k/10k flatness ratio.
func TestEmitLockstepBenchJSON(t *testing.T) {
	path := os.Getenv("LOCKSTEP_BENCH_JSON")
	if path == "" {
		t.Skip("set LOCKSTEP_BENCH_JSON=<path> to emit the lockstep benchmark artifact")
	}
	var results []detectBenchResult
	for _, backlog := range []int{10_000, 100_000, 500_000} {
		backlog := backlog
		br := testing.Benchmark(func(b *testing.B) {
			st, s, cohort, pool, start := benchLockstepWorld(b, backlog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchLockstepTick(b, st, s, cohort, pool, start.Add(time.Duration(i)*3*time.Hour), i)
			}
		})
		results = append(results, detectBenchResult{
			Name:    "BenchmarkStreamLockstepTickIncremental",
			Backlog: backlog,
			NsPerOp: br.NsPerOp(),
		})
	}
	raw, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", path, raw)
}
