package detect

import (
	"sort"
	"time"

	"repro/internal/parallel"
	"repro/internal/socialnet"
)

// BatchFeatures is the batch scoring path: it computes AccountFeatures
// (island sizes included) for every distinct account in the given set,
// returned sorted by user ID. This is the feature-assembly core the
// platform's fraud sweep drives, and the reference the streaming
// scorer is pinned byte-identical against.
//
// The burst features come from the store's journal: one unsorted scan
// groups like timestamps per examined account, replacing a per-account
// sorted copy of the user-side index. Scan order is not canonical, but
// the features consume only the timestamp multiset (per-account times
// arrive append-ordered, so the sorted fast-path usually skips the
// sort), so the output is bit-deterministic for any worker count.
func BatchFeatures(st *socialnet.Store, accounts []socialnet.UserID, workers int) ([]AccountFeatures, error) {
	islands := IsolatedIslands(st.FriendGraph(), accounts)

	// Sort and dedupe: an account that liked several honeypots (the
	// ALMS reuse scenario) is examined exactly once.
	sorted := append([]socialnet.UserID(nil), accounts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	uniq := sorted[:0]
	for i, uid := range sorted {
		if i == 0 || uid != sorted[i-1] {
			uniq = append(uniq, uid)
		}
	}
	sorted = uniq

	// Group the examined accounts' like timestamps out of the journal —
	// one unsorted scan; the burst features only consume the timestamp
	// multiset, so no canonical materialization is needed.
	likeTimes := make(map[socialnet.UserID][]time.Time, len(sorted))
	for _, uid := range sorted {
		likeTimes[uid] = nil
	}
	st.Journal().Scan(func(ev socialnet.LikeEvent) {
		if ts, tracked := likeTimes[ev.User]; tracked {
			likeTimes[ev.User] = append(ts, ev.At)
		}
	})

	out := make([]AccountFeatures, len(sorted))
	err := parallel.Chunks(workers, len(sorted), 64, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			uid := sorted[i]
			f, err := FeaturesFromTimes(st, uid, likeTimes[uid])
			if err != nil {
				return err
			}
			f.IslandSize = islands[uid]
			out[i] = f
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchVerdicts is the batch engine for the composite Verdict model:
// BatchFeatures for the burst dimension, Lockstep over the given pages
// (nil means the store's honeypot pages, matching the StreamScorer's
// default tracked set) for the group dimension, and the account's
// platform status — one verdict per distinct account, sorted by user
// ID. At any quiescent point this matches StreamScorer verdicts over
// the same account set byte for byte.
func BatchVerdicts(st *socialnet.Store, accounts []socialnet.UserID, pages []socialnet.PageID, lockCfg LockstepConfig, workers int) ([]Verdict, error) {
	feats, err := BatchFeatures(st, accounts, workers)
	if err != nil {
		return nil, err
	}
	if pages == nil {
		pages = st.HoneypotPages()
	}
	groups, err := Lockstep(st, pages, lockCfg)
	if err != nil {
		return nil, err
	}
	verdicts := make([]Verdict, len(feats))
	for i, f := range feats {
		v := Verdict{Features: f, Score: f.Score()}
		if u, err := st.User(f.User); err == nil {
			v.Terminated = u.Status == socialnet.StatusTerminated
		}
		verdicts[i] = v
	}
	AttachLockstep(verdicts, groups)
	return verdicts, nil
}
