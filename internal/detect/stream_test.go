package detect

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/socialnet"
)

// streamWorld builds a store exercising every scorer path: burst-farm
// bot pairs liking both honeypots, organic likers spread over weeks,
// bulk history imported both before and AFTER the honeypot likes (the
// latter lands out-of-order in the journal and forces the dirty-set
// resync), bystanders who never touch a honeypot, and a terminated
// account.
func streamWorld(tb testing.TB) *socialnet.Store {
	tb.Helper()
	st := socialnet.NewStore()
	hp1, err := st.AddPage(socialnet.Page{Name: "hp1", Honeypot: true})
	if err != nil {
		tb.Fatal(err)
	}
	hp2, err := st.AddPage(socialnet.Page{Name: "hp2", Honeypot: true})
	if err != nil {
		tb.Fatal(err)
	}
	var amb []socialnet.PageID
	for i := 0; i < 40; i++ {
		p, err := st.AddPage(socialnet.Page{Name: fmt.Sprintf("amb%d", i)})
		if err != nil {
			tb.Fatal(err)
		}
		amb = append(amb, p)
	}

	history := func(u socialnet.UserID, base time.Time, n int) {
		likes := make([]socialnet.Like, n)
		for i := range likes {
			likes[i] = socialnet.Like{Page: amb[i], At: base.Add(time.Duration(i) * time.Minute)}
		}
		if err := st.AddHistory(u, likes); err != nil {
			tb.Fatal(err)
		}
	}

	// 20 bot pairs: mutual friends, burst likes on both honeypots.
	// Even pairs import their cover history up front (in-order); odd
	// pairs import it after the burst with earlier timestamps — the
	// out-of-order arrival that invalidates an incremental fold.
	for i := 0; i < 20; i++ {
		a := st.AddUser(socialnet.User{Country: "TR", Kind: socialnet.KindFarmBot})
		b := st.AddUser(socialnet.User{Country: "TR", Kind: socialnet.KindFarmBot})
		if err := st.Friend(a, b); err != nil {
			tb.Fatal(err)
		}
		burst := t0.Add(72*time.Hour + time.Duration(i)*time.Minute)
		for _, u := range []socialnet.UserID{a, b} {
			if i%2 == 0 {
				history(u, t0, 15)
			}
			if err := st.AddLike(u, hp1, burst); err != nil {
				tb.Fatal(err)
			}
			if err := st.AddLike(u, hp2, burst.Add(3*time.Minute)); err != nil {
				tb.Fatal(err)
			}
			if i%2 == 1 {
				history(u, t0, 15)
			}
			burst = burst.Add(30 * time.Second)
		}
	}

	// 15 organic users in a friendship chain, honeypot likes spread
	// over weeks, modest ambient history.
	var prev socialnet.UserID
	for i := 0; i < 15; i++ {
		u := st.AddUser(socialnet.User{Country: "US", DeclaredFriends: 120 + i})
		if i > 0 {
			if err := st.Friend(prev, u); err != nil {
				tb.Fatal(err)
			}
		}
		prev = u
		history(u, t0.AddDate(0, -2, 0).Add(time.Duration(i)*24*time.Hour), 5)
		if err := st.AddLike(u, hp1, t0.Add(time.Duration(i)*90*time.Hour)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := st.Terminate(prev); err != nil {
		tb.Fatal(err)
	}

	// Bystanders: ambient likes only — must never enroll.
	for i := 0; i < 5; i++ {
		u := st.AddUser(socialnet.User{Country: "US"})
		if err := st.AddLike(u, amb[i], t0.Add(time.Duration(i)*time.Hour)); err != nil {
			tb.Fatal(err)
		}
	}
	return st
}

// drain ticks in odd-sized chunks until the journal is exhausted,
// cutting the stream at arbitrary points, and returns the event total.
func drain(s *StreamScorer, chunk int) int {
	total := 0
	for {
		n := s.TickLimit(chunk)
		if n == 0 {
			return total
		}
		total += n
	}
}

// assertMatchesBatch pins every enrolled account's streaming verdict
// byte-identical to the batch path at the given worker count.
func assertMatchesBatch(t *testing.T, st *socialnet.Store, s *StreamScorer, workers int) {
	t.Helper()
	accounts := s.Accounts()
	if len(accounts) == 0 {
		t.Fatal("no enrolled accounts")
	}
	batch, err := BatchFeatures(st, accounts, workers)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range accounts {
		v, ok := s.Verdict(u)
		if !ok {
			t.Fatalf("user %d enrolled but has no verdict", u)
		}
		if v.Features != batch[i] {
			t.Errorf("user %d: streaming %+v\n        batch %+v", u, v.Features, batch[i])
		}
		if want := batch[i].Score(); v.Score != want {
			t.Errorf("user %d: streaming score %v, batch %v", u, v.Score, want)
		}
	}
}

func TestStreamScorerMatchesBatchSweep(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			st := streamWorld(t)
			s := NewStreamScorer(st, StreamScorerConfig{})
			if got, want := drain(s, 37), st.Journal().Len(); got != want {
				t.Fatalf("consumed %d of %d events", got, want)
			}
			// Enrolled set == the honeypot liker population the batch
			// sweep examines.
			want := make(map[socialnet.UserID]bool)
			for _, p := range st.HoneypotPages() {
				for _, lk := range st.LikesOfPage(p) {
					want[lk.User] = true
				}
			}
			accounts := s.Accounts()
			if len(accounts) != len(want) {
				t.Fatalf("enrolled %d accounts, honeypots have %d likers", len(accounts), len(want))
			}
			for _, u := range accounts {
				if !want[u] {
					t.Fatalf("user %d enrolled without a honeypot like", u)
				}
			}
			assertMatchesBatch(t, st, s, workers)
		})
	}
}

// TestStreamScorerKillRestore cuts the stream mid-way, serializes the
// scorer, restores it against the same store, and pins the resumed
// scorer's verdicts to both the batch path and an uninterrupted scorer.
func TestStreamScorerKillRestore(t *testing.T) {
	st := streamWorld(t)
	uncut := NewStreamScorer(st, StreamScorerConfig{})
	drain(uncut, 0)

	for _, cut := range []int{1, 101, 307} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			s := NewStreamScorer(st, StreamScorerConfig{})
			if s.TickLimit(cut) != cut {
				t.Fatalf("short stream: could not consume %d events", cut)
			}
			blob, err := s.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreStreamScorer(st, StreamScorerConfig{}, blob)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := restored.Offset(), s.Offset(); got != want {
				t.Fatalf("restored offset %d, want %d", got, want)
			}
			drain(restored, 53)
			if got, want := restored.Offset(), st.Journal().Len(); got != want {
				t.Fatalf("restored consumed %d of %d", got, want)
			}
			assertMatchesBatch(t, st, restored, 4)
			for _, u := range uncut.Accounts() {
				a, _ := uncut.Verdict(u)
				b, ok := restored.Verdict(u)
				if !ok || a != b {
					t.Errorf("user %d: uninterrupted %+v, restored %+v (ok=%v)", u, a, b, ok)
				}
			}
		})
	}
}

// TestStreamScorerOutOfOrderResync isolates the resync path: history
// imported after enrollment with earlier timestamps must land in the
// features exactly as a batch recompute would place it.
func TestStreamScorerOutOfOrderResync(t *testing.T) {
	st := socialnet.NewStore()
	hp, err := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	var amb []socialnet.PageID
	for i := 0; i < 30; i++ {
		p, err := st.AddPage(socialnet.Page{Name: fmt.Sprintf("a%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		amb = append(amb, p)
	}
	u := st.AddUser(socialnet.User{Country: "TR"})
	if err := st.AddLike(u, hp, t0.Add(10*time.Hour)); err != nil {
		t.Fatal(err)
	}
	s := NewStreamScorer(st, StreamScorerConfig{})
	s.Tick()
	v, ok := s.Verdict(u)
	if !ok || v.Features.MaxIn2h != 1 {
		t.Fatalf("pre-import verdict = %+v, ok=%v", v, ok)
	}

	// 30 likes inside one hour, 9 hours before the already-folded like.
	likes := make([]socialnet.Like, 30)
	for i := range likes {
		likes[i] = socialnet.Like{Page: amb[i], At: t0.Add(time.Duration(i) * 2 * time.Minute)}
	}
	if err := st.AddHistory(u, likes); err != nil {
		t.Fatal(err)
	}
	s.Tick()
	assertMatchesBatch(t, st, s, 1)
	v, _ = s.Verdict(u)
	if v.Features.MaxIn2h != 30 || v.Features.LikeCount != 31 {
		t.Fatalf("post-import features = %+v", v.Features)
	}
}

func TestStreamScorerEnrollment(t *testing.T) {
	st := streamWorld(t)
	s := NewStreamScorer(st, StreamScorerConfig{})
	drain(s, 0)

	// Bystanders (ambient-only likers) are not enrolled.
	for _, u := range s.Accounts() {
		if len(st.HoneypotPages()) == 0 {
			t.Fatal("no honeypot pages")
		}
		found := false
		for _, p := range st.HoneypotPages() {
			for _, lk := range st.LikesOfPage(p) {
				if lk.User == u {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("user %d enrolled without honeypot like", u)
		}
	}
	if _, ok := s.Verdict(socialnet.UserID(1 << 40)); ok {
		t.Fatal("verdict for unknown user")
	}

	hp := st.HoneypotPages()[0]
	likers, ok := s.PageLikers(hp)
	if !ok || len(likers) == 0 {
		t.Fatalf("PageLikers(%d) = %v, %v", hp, likers, ok)
	}
	for i := 1; i < len(likers); i++ {
		if likers[i-1] >= likers[i] {
			t.Fatal("PageLikers not sorted/deduped")
		}
	}
	if _, ok := s.PageLikers(socialnet.PageID(1 << 40)); ok {
		t.Fatal("PageLikers for untracked page")
	}

	// The terminated organic account surfaces Terminated in its verdict.
	terminated := 0
	for _, u := range s.Accounts() {
		if v, _ := s.Verdict(u); v.Terminated {
			terminated++
		}
	}
	if terminated != 1 {
		t.Fatalf("terminated verdicts = %d, want 1", terminated)
	}
}

func TestStreamScorerRestoreRejects(t *testing.T) {
	st := streamWorld(t)
	s := NewStreamScorer(st, StreamScorerConfig{})
	s.TickLimit(40)
	blob, err := s.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := RestoreStreamScorer(st, StreamScorerConfig{}, []byte("{")); err == nil {
		t.Error("corrupt JSON accepted")
	}
	if _, err := RestoreStreamScorer(st, StreamScorerConfig{Window: time.Hour}, blob); err == nil {
		t.Error("window mismatch accepted")
	}
	if _, err := RestoreStreamScorer(st, StreamScorerConfig{Pages: []socialnet.PageID{st.HoneypotPages()[0]}}, blob); err == nil {
		t.Error("tracked-page mismatch accepted")
	}

	// Offsets claiming events beyond a shard's length — the
	// crash-lost-tail case — must be rejected so the caller rescans.
	var state map[string]json.RawMessage
	if err := json.Unmarshal(blob, &state); err != nil {
		t.Fatal(err)
	}
	var offs []int
	if err := json.Unmarshal(state["offsets"], &offs); err != nil {
		t.Fatal(err)
	}
	offs[0] = 1 << 30
	raw, _ := json.Marshal(offs)
	state["offsets"] = raw
	tampered, _ := json.Marshal(state)
	if _, err := RestoreStreamScorer(st, StreamScorerConfig{}, tampered); err == nil {
		t.Error("out-of-range offsets accepted")
	}

	// A healthy round-trip still works after all the rejected attempts.
	if _, err := RestoreStreamScorer(st, StreamScorerConfig{}, blob); err != nil {
		t.Fatal(err)
	}
}

// TestStreamScorerStateDeterministic pins the sidecar bytes: same state,
// same bytes (sorted keys, indented JSON) — the property the CI
// equivalence smoke's cmp relies on.
func TestStreamScorerStateDeterministic(t *testing.T) {
	st := streamWorld(t)
	a := NewStreamScorer(st, StreamScorerConfig{})
	b := NewStreamScorer(st, StreamScorerConfig{})
	drain(a, 37)
	drain(b, 0)
	ba, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if string(ba) != string(bb) {
		t.Fatalf("state bytes differ between chunked and one-shot consumption:\n%s\n----\n%s", ba, bb)
	}
}
