// Package detect implements the fraud-detection algorithms the paper's
// findings motivate (§5): a like-burst detector (SF/AL/MS delivered
// likes in ≤2-hour bursts), a lockstep co-liking detector in the spirit
// of CopyCatch [4] (groups of accounts liking the same pages in the same
// time windows), an isolated-component sybil heuristic (farm accounts
// form pairs/triplets disconnected from the organic graph), and a
// composite account scorer used by the platform's termination sweep.
package detect

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/socialnet"
)

// FeatureWindow is the burst window every scorer in the package shares:
// the paper's burst farms delivered likes in ≤2-hour bursts (§4.4), so
// MaxIn2h/Burst2h are defined over 2-hour sliding windows.
const FeatureWindow = 2 * time.Hour

// featureFold is the canonical per-like transition function of the
// burst features. Both the batch path (FeaturesFromTimes folds a sorted
// time slice through it) and the streaming path (StreamScorer folds
// journal events through it as they arrive) run this exact code, which
// is what makes batch and streaming scores byte-identical.
//
// The fold consumes timestamps in non-decreasing order and maintains a
// deque of the times inside the trailing window: on each like the
// expired front is popped, the like is pushed, and the deque length is
// the population of the window ending at that like. The running best
// equals the classic two-pointer scan over the full sorted slice, but
// the retained state is bounded by the densest window's population —
// the property the streaming scorer's per-account memory bound rests
// on. Observe reports a monotonicity violation instead of folding,
// letting the caller fall back to a sort (batch) or a resync
// (streaming); exactness under out-of-order input is the caller's
// responsibility, not the fold's.
type featureFold struct {
	window int64 // ns
	count  int
	best   int
	last   int64
	deque  []int64 // times (UnixNano) in (last-window, last], ascending
}

// observe folds one like time (UnixNano). It returns false — without
// folding — if at precedes the previously folded time.
func (f *featureFold) observe(at int64) bool {
	if f.count > 0 && at < f.last {
		return false
	}
	lo := 0
	for lo < len(f.deque) && at-f.deque[lo] > f.window {
		lo++
	}
	// Advance the head by reslicing: append reuses the remaining
	// capacity and, once exhausted, reallocates sized to the live
	// window population, so the backing array never grows past O(the
	// densest window) and each element is copied O(1) amortized times.
	f.deque = append(f.deque[lo:], at)
	if n := len(f.deque); n > f.best {
		f.best = n
	}
	f.count++
	f.last = at
	return true
}

// foldSorted folds a sorted time slice from scratch.
func foldSorted(ts []time.Time, window time.Duration) featureFold {
	f := featureFold{window: int64(window)}
	for _, t := range ts {
		f.observe(t.UnixNano())
	}
	return f
}

// ensureSorted returns the slice itself when it is already
// non-decreasing — a single monotonicity scan, no allocation — and a
// sorted copy otherwise. Journal-derived like times arrive
// append-ordered per user, so the sweep's per-account hot path takes
// the scan; only genuinely out-of-order input (late bulk-history
// imports) pays the sort.
func ensureSorted(times []time.Time) []time.Time {
	for i := 1; i < len(times); i++ {
		if times[i].Before(times[i-1]) {
			ts := append([]time.Time(nil), times...)
			sort.Slice(ts, func(a, b int) bool { return ts[a].Before(ts[b]) })
			return ts
		}
	}
	return times
}

// BurstScore measures how concentrated in time a like sequence is: the
// largest fraction of likes falling inside any sliding window of the
// given width. 1.0 means every like landed within one window (pure bot
// burst); organic activity spread over months scores near 1/n per like.
func BurstScore(times []time.Time, window time.Duration) (float64, error) {
	if window <= 0 {
		return 0, fmt.Errorf("detect: non-positive window %s", window)
	}
	if len(times) == 0 {
		return 0, nil
	}
	f := foldSorted(ensureSorted(times), window)
	return float64(f.best) / float64(f.count), nil
}

// MaxLikesInWindow returns the largest number of likes inside any
// sliding window of the given width — the absolute-burst signal: 100
// page likes inside two hours is damning regardless of account age.
func MaxLikesInWindow(times []time.Time, window time.Duration) (int, error) {
	if window <= 0 {
		return 0, fmt.Errorf("detect: non-positive window %s", window)
	}
	if len(times) == 0 {
		return 0, nil
	}
	return foldSorted(ensureSorted(times), window).best, nil
}

// AccountFeatures are the observable signals the composite scorer uses.
type AccountFeatures struct {
	User socialnet.UserID
	// LikeCount is the account's total page likes. Farm accounts carry
	// hundreds to thousands (Figure 4).
	LikeCount int
	// FriendCount is the declared friend-list length (profiles display
	// it even when the list itself is private; the platform sees it
	// regardless).
	FriendCount int
	// Burst2h is BurstScore over the account's like timestamps with a
	// 2-hour window (fraction of all likes in the densest window).
	Burst2h float64
	// MaxIn2h is the absolute count of likes in the densest 2-hour
	// window.
	MaxIn2h int
	// IslandSize is the size of the account's connected component in
	// the liker subgraph, 0 if not computed. Sizes 2-3 with no organic
	// ties are the farm-island signature.
	IslandSize int
}

// ExtractFeatures computes features for an account from the store.
func ExtractFeatures(st *socialnet.Store, u socialnet.UserID) (AccountFeatures, error) {
	if _, err := st.User(u); err != nil {
		return AccountFeatures{}, err
	}
	likes := st.LikesOfUser(u)
	times := make([]time.Time, len(likes))
	for i, lk := range likes {
		times[i] = lk.At
	}
	return FeaturesFromTimes(st, u, times)
}

// FeaturesFromTimes computes features from a precollected like-time
// slice — the path the platform's fraud sweep uses after grouping
// timestamps per account out of one pass over the store's journal,
// instead of copying each account's index. The caller is responsible
// for the slice covering the account's complete like activity; order
// does not matter (already-sorted input is detected by a single scan,
// anything else is sorted into a private copy).
//
// It is one fold of the canonical featureFold transition — the same
// function the StreamScorer applies per arriving journal event — so
// the two paths cannot drift: Burst2h and MaxIn2h are both read off
// the fold's final state (Burst2h = MaxIn2h / LikeCount, the same
// division BurstScore performs).
func FeaturesFromTimes(st *socialnet.Store, u socialnet.UserID, times []time.Time) (AccountFeatures, error) {
	f := foldSorted(ensureSorted(times), FeatureWindow)
	return featuresFromFold(f, u, st.DeclaredFriendCount(u)), nil
}

// featuresFromFold reads the burst features off a completed fold.
func featuresFromFold(f featureFold, u socialnet.UserID, friends int) AccountFeatures {
	out := AccountFeatures{
		User:        u,
		LikeCount:   f.count,
		FriendCount: friends,
		MaxIn2h:     f.best,
	}
	if f.count > 0 {
		out.Burst2h = float64(f.best) / float64(f.count)
	}
	return out
}

// Score combines the features into a suspicion score in [0,1].
//
// The weights encode the paper's signatures: dense 2-hour like bursts
// are the strongest bot tell (the burst farms delivered 700+ likes in
// single windows, and their accounts repeat the pattern across jobs);
// an extreme ratio of page likes to friends is the reuse-across-jobs
// tell; membership in a tiny friendship island adds a little.
// Stealth-farm accounts — many friends, few likes, trickled timing —
// score near zero by construction, which is exactly the detection
// difficulty the paper reports for BoostLikes (§5).
func (f AccountFeatures) Score() float64 {
	s := 0.0
	// Absolute burst density.
	switch {
	case f.MaxIn2h >= 50:
		s += 0.55
	case f.MaxIn2h >= 25:
		s += 0.35
	case f.MaxIn2h >= 12:
		s += 0.15
	}
	// Relative burstiness for small accounts (everything in one window).
	if f.LikeCount >= 10 && f.Burst2h >= 0.5 && f.MaxIn2h < 12 {
		s += 0.15
	}
	// Like inflation relative to social embeddedness.
	ratio := float64(f.LikeCount) / float64(f.FriendCount+1)
	switch {
	case ratio >= 20:
		s += 0.30
	case ratio >= 8:
		s += 0.20
	case ratio >= 4:
		s += 0.10
	}
	// Tiny isolated islands (pairs/triplets); singletons are just
	// private users.
	if f.IslandSize >= 2 && f.IslandSize <= 3 {
		s += 0.15
	}
	if s > 1 {
		s = 1
	}
	return s
}

// IsolatedIslands returns, for the given user set, the size of each
// user's connected component within the induced subgraph of the base
// friendship graph. Pairs/triplets with no further ties are the
// SF/AL/MS-style fake-network signature (§4.3, Figure 3).
func IsolatedIslands(base *graph.Undirected, users []socialnet.UserID) map[socialnet.UserID]int {
	ids := make([]int64, len(users))
	for i, u := range users {
		ids[i] = int64(u)
	}
	sub := base.InducedSubgraph(ids)
	out := make(map[socialnet.UserID]int, len(users))
	for _, comp := range sub.ConnectedComponents() {
		for _, n := range comp {
			out[socialnet.UserID(n)] = len(comp)
		}
	}
	return out
}
