// Package detect implements the fraud-detection algorithms the paper's
// findings motivate (§5): a like-burst detector (SF/AL/MS delivered
// likes in ≤2-hour bursts), a lockstep co-liking detector in the spirit
// of CopyCatch [4] (groups of accounts liking the same pages in the same
// time windows), an isolated-component sybil heuristic (farm accounts
// form pairs/triplets disconnected from the organic graph), and a
// composite account scorer used by the platform's termination sweep.
package detect

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/socialnet"
)

// BurstScore measures how concentrated in time a like sequence is: the
// largest fraction of likes falling inside any sliding window of the
// given width. 1.0 means every like landed within one window (pure bot
// burst); organic activity spread over months scores near 1/n per like.
func BurstScore(times []time.Time, window time.Duration) (float64, error) {
	if window <= 0 {
		return 0, fmt.Errorf("detect: non-positive window %s", window)
	}
	if len(times) == 0 {
		return 0, nil
	}
	ts := append([]time.Time(nil), times...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
	best := 1
	lo := 0
	for hi := range ts {
		for ts[hi].Sub(ts[lo]) > window {
			lo++
		}
		if n := hi - lo + 1; n > best {
			best = n
		}
	}
	return float64(best) / float64(len(ts)), nil
}

// MaxLikesInWindow returns the largest number of likes inside any
// sliding window of the given width — the absolute-burst signal: 100
// page likes inside two hours is damning regardless of account age.
func MaxLikesInWindow(times []time.Time, window time.Duration) (int, error) {
	if window <= 0 {
		return 0, fmt.Errorf("detect: non-positive window %s", window)
	}
	if len(times) == 0 {
		return 0, nil
	}
	ts := append([]time.Time(nil), times...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
	best := 1
	lo := 0
	for hi := range ts {
		for ts[hi].Sub(ts[lo]) > window {
			lo++
		}
		if n := hi - lo + 1; n > best {
			best = n
		}
	}
	return best, nil
}

// AccountFeatures are the observable signals the composite scorer uses.
type AccountFeatures struct {
	User socialnet.UserID
	// LikeCount is the account's total page likes. Farm accounts carry
	// hundreds to thousands (Figure 4).
	LikeCount int
	// FriendCount is the declared friend-list length (profiles display
	// it even when the list itself is private; the platform sees it
	// regardless).
	FriendCount int
	// Burst2h is BurstScore over the account's like timestamps with a
	// 2-hour window (fraction of all likes in the densest window).
	Burst2h float64
	// MaxIn2h is the absolute count of likes in the densest 2-hour
	// window.
	MaxIn2h int
	// IslandSize is the size of the account's connected component in
	// the liker subgraph, 0 if not computed. Sizes 2-3 with no organic
	// ties are the farm-island signature.
	IslandSize int
}

// ExtractFeatures computes features for an account from the store.
func ExtractFeatures(st *socialnet.Store, u socialnet.UserID) (AccountFeatures, error) {
	if _, err := st.User(u); err != nil {
		return AccountFeatures{}, err
	}
	likes := st.LikesOfUser(u)
	times := make([]time.Time, len(likes))
	for i, lk := range likes {
		times[i] = lk.At
	}
	return FeaturesFromTimes(st, u, times)
}

// FeaturesFromTimes computes features from a precollected like-time
// slice — the path the platform's fraud sweep uses after grouping
// timestamps per account out of one pass over the store's journal,
// instead of copying each account's index. The caller is responsible
// for the slice covering the account's complete like activity; order
// does not matter (the window scans sort a private copy).
func FeaturesFromTimes(st *socialnet.Store, u socialnet.UserID, times []time.Time) (AccountFeatures, error) {
	burst, err := BurstScore(times, 2*time.Hour)
	if err != nil {
		return AccountFeatures{}, err
	}
	maxIn, err := MaxLikesInWindow(times, 2*time.Hour)
	if err != nil {
		return AccountFeatures{}, err
	}
	return AccountFeatures{
		User:        u,
		LikeCount:   len(times),
		FriendCount: st.DeclaredFriendCount(u),
		Burst2h:     burst,
		MaxIn2h:     maxIn,
	}, nil
}

// Score combines the features into a suspicion score in [0,1].
//
// The weights encode the paper's signatures: dense 2-hour like bursts
// are the strongest bot tell (the burst farms delivered 700+ likes in
// single windows, and their accounts repeat the pattern across jobs);
// an extreme ratio of page likes to friends is the reuse-across-jobs
// tell; membership in a tiny friendship island adds a little.
// Stealth-farm accounts — many friends, few likes, trickled timing —
// score near zero by construction, which is exactly the detection
// difficulty the paper reports for BoostLikes (§5).
func (f AccountFeatures) Score() float64 {
	s := 0.0
	// Absolute burst density.
	switch {
	case f.MaxIn2h >= 50:
		s += 0.55
	case f.MaxIn2h >= 25:
		s += 0.35
	case f.MaxIn2h >= 12:
		s += 0.15
	}
	// Relative burstiness for small accounts (everything in one window).
	if f.LikeCount >= 10 && f.Burst2h >= 0.5 && f.MaxIn2h < 12 {
		s += 0.15
	}
	// Like inflation relative to social embeddedness.
	ratio := float64(f.LikeCount) / float64(f.FriendCount+1)
	switch {
	case ratio >= 20:
		s += 0.30
	case ratio >= 8:
		s += 0.20
	case ratio >= 4:
		s += 0.10
	}
	// Tiny isolated islands (pairs/triplets); singletons are just
	// private users.
	if f.IslandSize >= 2 && f.IslandSize <= 3 {
		s += 0.15
	}
	if s > 1 {
		s = 1
	}
	return s
}

// IsolatedIslands returns, for the given user set, the size of each
// user's connected component within the induced subgraph of the base
// friendship graph. Pairs/triplets with no further ties are the
// SF/AL/MS-style fake-network signature (§4.3, Figure 3).
func IsolatedIslands(base *graph.Undirected, users []socialnet.UserID) map[socialnet.UserID]int {
	ids := make([]int64, len(users))
	for i, u := range users {
		ids[i] = int64(u)
	}
	sub := base.InducedSubgraph(ids)
	out := make(map[socialnet.UserID]int, len(users))
	for _, comp := range sub.ConnectedComponents() {
		for _, n := range comp {
			out[socialnet.UserID(n)] = len(comp)
		}
	}
	return out
}
