package detect

import (
	"fmt"
	"sort"

	"repro/internal/socialnet"
)

// FlagThreshold is the default operating point of the composite scorer:
// accounts at or above it are flagged (the live API's "high risk"
// tally and the sweep summaries both report this point).
const FlagThreshold = 0.5

// Evaluation is a binary confusion matrix for detector output against
// ground truth. The simulation knows which accounts are farm-controlled
// (socialnet.AccountKind), letting the §5-motivated detectors be scored
// in a way the paper's authors — without ground truth for Facebook's own
// campaigns — could not.
type Evaluation struct {
	TP, FP, FN, TN int
}

// Evaluate scores a flagged set against a ground-truth labelling over
// the given population.
func Evaluate(population []socialnet.UserID, flagged map[socialnet.UserID]bool, isFake func(socialnet.UserID) bool) Evaluation {
	var e Evaluation
	for _, u := range population {
		switch {
		case flagged[u] && isFake(u):
			e.TP++
		case flagged[u]:
			e.FP++
		case isFake(u):
			e.FN++
		default:
			e.TN++
		}
	}
	return e
}

// Precision returns TP/(TP+FP), 0 when nothing was flagged.
func (e Evaluation) Precision() float64 {
	if e.TP+e.FP == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.TP+e.FP)
}

// Recall returns TP/(TP+FN), 0 when there are no positives.
func (e Evaluation) Recall() float64 {
	if e.TP+e.FN == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.TP+e.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (e Evaluation) F1() float64 {
	p, r := e.Precision(), e.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FalsePositiveRate returns FP/(FP+TN).
func (e Evaluation) FalsePositiveRate() float64 {
	if e.FP+e.TN == 0 {
		return 0
	}
	return float64(e.FP) / float64(e.FP+e.TN)
}

// String implements fmt.Stringer.
func (e Evaluation) String() string {
	return fmt.Sprintf("tp=%d fp=%d fn=%d tn=%d precision=%.3f recall=%.3f f1=%.3f",
		e.TP, e.FP, e.FN, e.TN, e.Precision(), e.Recall(), e.F1())
}

// ROCPoint is one operating point of a score-thresholded detector.
type ROCPoint struct {
	Threshold float64
	Eval      Evaluation
}

// ScoreSweep evaluates the score map at every distinct threshold,
// returning operating points in descending threshold order (from
// flag-nothing toward flag-everything).
func ScoreSweep(scores map[socialnet.UserID]float64, isFake func(socialnet.UserID) bool) []ROCPoint {
	population := make([]socialnet.UserID, 0, len(scores))
	thrSet := make(map[float64]struct{})
	for u, s := range scores {
		population = append(population, u)
		thrSet[s] = struct{}{}
	}
	sort.Slice(population, func(i, j int) bool { return population[i] < population[j] })
	thresholds := make([]float64, 0, len(thrSet))
	for t := range thrSet {
		thresholds = append(thresholds, t)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(thresholds)))

	out := make([]ROCPoint, 0, len(thresholds))
	for _, thr := range thresholds {
		flagged := make(map[socialnet.UserID]bool)
		for u, s := range scores {
			if s >= thr {
				flagged[u] = true
			}
		}
		out = append(out, ROCPoint{Threshold: thr, Eval: Evaluate(population, flagged, isFake)})
	}
	return out
}

// AUC returns the area under the ROC curve of the sweep (trapezoidal
// over FPR/TPR), a single-number summary of detector quality.
func AUC(points []ROCPoint) float64 {
	type xy struct{ x, y float64 }
	pts := make([]xy, 0, len(points)+2)
	pts = append(pts, xy{0, 0})
	for _, p := range points {
		pts = append(pts, xy{p.Eval.FalsePositiveRate(), p.Eval.Recall()})
	}
	pts = append(pts, xy{1, 1})
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].x != pts[j].x {
			return pts[i].x < pts[j].x
		}
		return pts[i].y < pts[j].y
	})
	area := 0.0
	for i := 1; i < len(pts); i++ {
		area += (pts[i].x - pts[i-1].x) * (pts[i].y + pts[i-1].y) / 2
	}
	return area
}
