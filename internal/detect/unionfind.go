package detect

import "repro/internal/socialnet"

// unionFind is the one disjoint-set implementation shared by every
// detector in the package: the streaming scorer's incremental island
// tracker and the lockstep group builder both partition user IDs. Find
// is iterative with path halving — no recursion, so adversarially deep
// parent chains (one huge cluster unioned link by link) cannot blow the
// stack — and union is by size, keeping trees logarithmic before
// halving flattens them further.
type unionFind struct {
	parent map[socialnet.UserID]socialnet.UserID
	size   map[socialnet.UserID]int
}

func newUnionFind() *unionFind {
	return &unionFind{
		parent: make(map[socialnet.UserID]socialnet.UserID),
		size:   make(map[socialnet.UserID]int),
	}
}

// add registers u as its own singleton component if unseen.
func (uf *unionFind) add(u socialnet.UserID) {
	if _, ok := uf.parent[u]; !ok {
		uf.parent[u] = u
		uf.size[u] = 1
	}
}

// find returns u's component root, registering u if unseen.
func (uf *unionFind) find(u socialnet.UserID) socialnet.UserID {
	uf.add(u)
	for uf.parent[u] != u {
		uf.parent[u] = uf.parent[uf.parent[u]] // path halving
		u = uf.parent[u]
	}
	return u
}

// union merges a's and b's components.
func (uf *unionFind) union(a, b socialnet.UserID) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}

// componentSize returns the size of u's component.
func (uf *unionFind) componentSize(u socialnet.UserID) int {
	return uf.size[uf.find(u)]
}
