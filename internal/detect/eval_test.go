package detect

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/socialnet"
)

func u(ids ...int) []socialnet.UserID {
	out := make([]socialnet.UserID, len(ids))
	for i, v := range ids {
		out[i] = socialnet.UserID(v)
	}
	return out
}

func TestEvaluateConfusionMatrix(t *testing.T) {
	pop := u(1, 2, 3, 4, 5, 6)
	flagged := map[socialnet.UserID]bool{1: true, 2: true, 5: true}
	isFake := func(id socialnet.UserID) bool { return id <= 3 }
	e := Evaluate(pop, flagged, isFake)
	// fakes: 1,2,3; flagged: 1,2,5 -> TP=2 FP=1 FN=1 TN=2.
	if e.TP != 2 || e.FP != 1 || e.FN != 1 || e.TN != 2 {
		t.Fatalf("eval = %+v", e)
	}
	if p := e.Precision(); math.Abs(p-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", p)
	}
	if r := e.Recall(); math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v", r)
	}
	if f := e.F1(); math.Abs(f-2.0/3) > 1e-12 {
		t.Fatalf("f1 = %v", f)
	}
	if fpr := e.FalsePositiveRate(); math.Abs(fpr-1.0/3) > 1e-12 {
		t.Fatalf("fpr = %v", fpr)
	}
	if e.String() == "" {
		t.Fatal("empty String")
	}
}

func TestEvaluateDegenerate(t *testing.T) {
	var e Evaluation
	if e.Precision() != 0 || e.Recall() != 0 || e.F1() != 0 || e.FalsePositiveRate() != 0 {
		t.Fatal("degenerate metrics should be 0")
	}
}

func TestScoreSweepMonotone(t *testing.T) {
	scores := map[socialnet.UserID]float64{
		1: 0.9, 2: 0.8, 3: 0.5, 4: 0.2, 5: 0.1,
	}
	isFake := func(id socialnet.UserID) bool { return id <= 2 }
	points := ScoreSweep(scores, isFake)
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	// Thresholds descend, flagged count (TP+FP) ascends.
	prevFlagged := -1
	for i, p := range points {
		if i > 0 && p.Threshold >= points[i-1].Threshold {
			t.Fatalf("thresholds not descending: %v", points)
		}
		flagged := p.Eval.TP + p.Eval.FP
		if flagged < prevFlagged {
			t.Fatalf("flagged count decreased: %v", points)
		}
		prevFlagged = flagged
	}
	// At the top threshold, only user 1 (fake) is flagged: perfect precision.
	if points[0].Eval.TP != 1 || points[0].Eval.FP != 0 {
		t.Fatalf("top point = %+v", points[0].Eval)
	}
	// At the lowest threshold everything is flagged: recall 1.
	last := points[len(points)-1].Eval
	if last.Recall() != 1 {
		t.Fatalf("bottom recall = %v", last.Recall())
	}
}

func TestAUCPerfectSeparator(t *testing.T) {
	// Fakes score 1.0, organic scores 0.0: AUC should be ~1.
	scores := map[socialnet.UserID]float64{}
	for i := 1; i <= 20; i++ {
		if i <= 10 {
			scores[socialnet.UserID(i)] = 1.0
		} else {
			scores[socialnet.UserID(i)] = 0.0
		}
	}
	isFake := func(id socialnet.UserID) bool { return id <= 10 }
	auc := AUC(ScoreSweep(scores, isFake))
	if auc < 0.99 {
		t.Fatalf("perfect separator AUC = %v", auc)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	// Identical scores for everyone: AUC should collapse to ~0.5.
	scores := map[socialnet.UserID]float64{}
	for i := 1; i <= 40; i++ {
		scores[socialnet.UserID(i)] = 0.5
	}
	isFake := func(id socialnet.UserID) bool { return id%2 == 0 }
	auc := AUC(ScoreSweep(scores, isFake))
	if auc < 0.4 || auc > 0.6 {
		t.Fatalf("uninformative AUC = %v", auc)
	}
}

func TestAUCBoundedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		scores := map[socialnet.UserID]float64{}
		for i, v := range raw {
			scores[socialnet.UserID(i+1)] = float64(v) / 255
		}
		isFake := func(id socialnet.UserID) bool { return id%3 == 0 }
		auc := AUC(ScoreSweep(scores, isFake))
		return auc >= 0 && auc <= 1 && !math.IsNaN(auc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
