package detect

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/socialnet"
)

func u(ids ...int) []socialnet.UserID {
	out := make([]socialnet.UserID, len(ids))
	for i, v := range ids {
		out[i] = socialnet.UserID(v)
	}
	return out
}

func TestEvaluateConfusionMatrix(t *testing.T) {
	pop := u(1, 2, 3, 4, 5, 6)
	flagged := map[socialnet.UserID]bool{1: true, 2: true, 5: true}
	isFake := func(id socialnet.UserID) bool { return id <= 3 }
	e := Evaluate(pop, flagged, isFake)
	// fakes: 1,2,3; flagged: 1,2,5 -> TP=2 FP=1 FN=1 TN=2.
	if e.TP != 2 || e.FP != 1 || e.FN != 1 || e.TN != 2 {
		t.Fatalf("eval = %+v", e)
	}
	if p := e.Precision(); math.Abs(p-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", p)
	}
	if r := e.Recall(); math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v", r)
	}
	if f := e.F1(); math.Abs(f-2.0/3) > 1e-12 {
		t.Fatalf("f1 = %v", f)
	}
	if fpr := e.FalsePositiveRate(); math.Abs(fpr-1.0/3) > 1e-12 {
		t.Fatalf("fpr = %v", fpr)
	}
	if e.String() == "" {
		t.Fatal("empty String")
	}
}

func TestEvaluateDegenerate(t *testing.T) {
	var e Evaluation
	if e.Precision() != 0 || e.Recall() != 0 || e.F1() != 0 || e.FalsePositiveRate() != 0 {
		t.Fatal("degenerate metrics should be 0")
	}
}

func TestScoreSweepMonotone(t *testing.T) {
	scores := map[socialnet.UserID]float64{
		1: 0.9, 2: 0.8, 3: 0.5, 4: 0.2, 5: 0.1,
	}
	isFake := func(id socialnet.UserID) bool { return id <= 2 }
	points := ScoreSweep(scores, isFake)
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	// Thresholds descend, flagged count (TP+FP) ascends.
	prevFlagged := -1
	for i, p := range points {
		if i > 0 && p.Threshold >= points[i-1].Threshold {
			t.Fatalf("thresholds not descending: %v", points)
		}
		flagged := p.Eval.TP + p.Eval.FP
		if flagged < prevFlagged {
			t.Fatalf("flagged count decreased: %v", points)
		}
		prevFlagged = flagged
	}
	// At the top threshold, only user 1 (fake) is flagged: perfect precision.
	if points[0].Eval.TP != 1 || points[0].Eval.FP != 0 {
		t.Fatalf("top point = %+v", points[0].Eval)
	}
	// At the lowest threshold everything is flagged: recall 1.
	last := points[len(points)-1].Eval
	if last.Recall() != 1 {
		t.Fatalf("bottom recall = %v", last.Recall())
	}
}

func TestAUCPerfectSeparator(t *testing.T) {
	// Fakes score 1.0, organic scores 0.0: AUC should be ~1.
	scores := map[socialnet.UserID]float64{}
	for i := 1; i <= 20; i++ {
		if i <= 10 {
			scores[socialnet.UserID(i)] = 1.0
		} else {
			scores[socialnet.UserID(i)] = 0.0
		}
	}
	isFake := func(id socialnet.UserID) bool { return id <= 10 }
	auc := AUC(ScoreSweep(scores, isFake))
	if auc < 0.99 {
		t.Fatalf("perfect separator AUC = %v", auc)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	// Identical scores for everyone: AUC should collapse to ~0.5.
	scores := map[socialnet.UserID]float64{}
	for i := 1; i <= 40; i++ {
		scores[socialnet.UserID(i)] = 0.5
	}
	isFake := func(id socialnet.UserID) bool { return id%2 == 0 }
	auc := AUC(ScoreSweep(scores, isFake))
	if auc < 0.4 || auc > 0.6 {
		t.Fatalf("uninformative AUC = %v", auc)
	}
}

func TestAUCBoundedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		scores := map[socialnet.UserID]float64{}
		for i, v := range raw {
			scores[socialnet.UserID(i+1)] = float64(v) / 255
		}
		isFake := func(id socialnet.UserID) bool { return id%3 == 0 }
		auc := AUC(ScoreSweep(scores, isFake))
		return auc >= 0 && auc <= 1 && !math.IsNaN(auc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestScoreSweepTiedScores pins the collapse rule: duplicate scores are
// one threshold, not one per account. A population where everyone ties
// at one of two values must sweep exactly two operating points.
func TestScoreSweepTiedScores(t *testing.T) {
	scores := map[socialnet.UserID]float64{
		1: 0.9, 2: 0.9, 3: 0.9, 4: 0.1, 5: 0.1, 6: 0.1,
	}
	isFake := func(id socialnet.UserID) bool { return id <= 3 }
	points := ScoreSweep(scores, isFake)
	if len(points) != 2 {
		t.Fatalf("tied scores swept %d thresholds, want 2: %+v", len(points), points)
	}
	// The top threshold flags the whole tied block at once — all three
	// fakes, no organics.
	if e := points[0].Eval; e.TP != 3 || e.FP != 0 || e.FN != 0 || e.TN != 3 {
		t.Fatalf("top tied point = %+v", e)
	}
	if e := points[1].Eval; e.TP != 3 || e.FP != 3 {
		t.Fatalf("bottom tied point = %+v", e)
	}
	if auc := AUC(points); auc < 0.99 {
		t.Fatalf("two-block perfect separator AUC = %v", auc)
	}
}

// TestScoreSweepAllFakePopulation: with no negatives every FPR is 0 (by
// the 0-guard), so the curve runs up the left edge and the metrics stay
// finite.
func TestScoreSweepAllFakePopulation(t *testing.T) {
	scores := map[socialnet.UserID]float64{1: 0.9, 2: 0.5, 3: 0.1}
	isFake := func(socialnet.UserID) bool { return true }
	points := ScoreSweep(scores, isFake)
	for _, p := range points {
		if p.Eval.FP != 0 || p.Eval.TN != 0 {
			t.Fatalf("all-fake sweep produced negatives: %+v", p.Eval)
		}
		if fpr := p.Eval.FalsePositiveRate(); fpr != 0 {
			t.Fatalf("FPR with no negatives = %v", fpr)
		}
		if prec := p.Eval.Precision(); prec != 1 {
			t.Fatalf("all-fake precision = %v", prec)
		}
	}
	auc := AUC(points)
	if math.IsNaN(auc) || auc < 0 || auc > 1 {
		t.Fatalf("all-fake AUC = %v", auc)
	}
}

// TestScoreSweepAllOrganicPopulation: with no positives recall is 0
// everywhere (by the 0-guard) and the curve runs along the bottom edge.
func TestScoreSweepAllOrganicPopulation(t *testing.T) {
	scores := map[socialnet.UserID]float64{1: 0.9, 2: 0.5, 3: 0.1}
	isFake := func(socialnet.UserID) bool { return false }
	points := ScoreSweep(scores, isFake)
	for _, p := range points {
		if p.Eval.TP != 0 || p.Eval.FN != 0 {
			t.Fatalf("all-organic sweep produced positives: %+v", p.Eval)
		}
		if r := p.Eval.Recall(); r != 0 {
			t.Fatalf("recall with no positives = %v", r)
		}
		if f := p.Eval.F1(); f != 0 {
			t.Fatalf("F1 with no positives = %v", f)
		}
	}
	auc := AUC(points)
	if math.IsNaN(auc) || auc < 0 || auc > 1 {
		t.Fatalf("all-organic AUC = %v", auc)
	}
}

// TestAUCSinglePoint: one account means one threshold; AUC must still
// interpolate through the (0,0) and (1,1) anchors to a finite value.
func TestAUCSinglePoint(t *testing.T) {
	for _, fake := range []bool{true, false} {
		scores := map[socialnet.UserID]float64{1: 0.7}
		points := ScoreSweep(scores, func(socialnet.UserID) bool { return fake })
		if len(points) != 1 {
			t.Fatalf("single account swept %d thresholds", len(points))
		}
		auc := AUC(points)
		if math.IsNaN(auc) || auc < 0 || auc > 1 {
			t.Fatalf("single-point AUC (fake=%v) = %v", fake, auc)
		}
	}
	// And the empty sweep: just the anchors, a straight diagonal.
	if auc := AUC(nil); math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("empty-sweep AUC = %v, want 0.5", auc)
	}
}

// TestEvaluationRatiosJSONSafe pins that the ratio methods never emit
// NaN under any degenerate confusion matrix — encoding/json refuses NaN
// outright, so a single 0/0 would turn a sweep summary into a marshal
// error at serving time.
func TestEvaluationRatiosJSONSafe(t *testing.T) {
	cells := []Evaluation{
		{},             // empty population
		{TP: 3},        // all flagged fakes
		{FP: 3},        // all flagged organics
		{FN: 3},        // all missed fakes
		{TN: 3},        // all ignored organics
		{TP: 1, FN: 2}, // no flags beyond fakes
		{FP: 1, TN: 2}, // flags but no fakes
		{TP: 2, FP: 1, FN: 1, TN: 2},
	}
	for _, e := range cells {
		doc := struct {
			Precision float64 `json:"precision"`
			Recall    float64 `json:"recall"`
			F1        float64 `json:"f1"`
			FPR       float64 `json:"fpr"`
		}{e.Precision(), e.Recall(), e.F1(), e.FalsePositiveRate()}
		for name, v := range map[string]float64{
			"precision": doc.Precision, "recall": doc.Recall, "f1": doc.F1, "fpr": doc.FPR,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%+v: %s = %v", e, name, v)
			}
		}
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatalf("%+v: marshal: %v", e, err)
		}
		if bytes.Contains(data, []byte("NaN")) {
			t.Fatalf("%+v: NaN leaked into JSON: %s", e, data)
		}
	}
}
