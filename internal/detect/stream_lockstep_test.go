package detect

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/socialnet"
)

func groupsJSON(t *testing.T, groups []LockstepGroup) string {
	t.Helper()
	data, err := json.Marshal(groups)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// assertLockstepMatchesBatch pins the streaming lockstep report — and
// every enrolled account's full composite verdict — byte-identical to
// the batch engine at the given worker count.
func assertLockstepMatchesBatch(t *testing.T, st *socialnet.Store, s *StreamScorer, workers int) {
	t.Helper()
	batchGroups, err := Lockstep(st, st.HoneypotPages(), DefaultLockstepConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := groupsJSON(t, s.LockstepGroups()), groupsJSON(t, batchGroups); got != want {
		t.Errorf("streaming groups %s\n     batch groups %s", got, want)
	}
	accounts := s.Accounts()
	if len(accounts) == 0 {
		t.Fatal("no enrolled accounts")
	}
	batch, err := BatchVerdicts(st, accounts, nil, DefaultLockstepConfig(), workers)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range accounts {
		v, ok := s.Verdict(u)
		if !ok {
			t.Fatalf("user %d enrolled but has no verdict", u)
		}
		if v != batch[i] {
			t.Errorf("user %d: streaming %+v\n        batch %+v", u, v, batch[i])
		}
	}
}

// TestStreamLockstepMatchesBatch is the tentpole equivalence pin: the
// streaming lockstep groups equal batch Lockstep output byte for byte
// across worker counts, across kill/restore at mid-stream cut points,
// and across an out-of-order arrival that forces a sketch resync.
func TestStreamLockstepMatchesBatch(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			st := streamWorld(t)
			s := NewStreamScorer(st, StreamScorerConfig{})
			drain(s, 37)
			if len(s.LockstepGroups()) == 0 {
				t.Fatal("stream world produced no lockstep groups")
			}
			assertLockstepMatchesBatch(t, st, s, workers)
		})
	}

	t.Run("kill-restore", func(t *testing.T) {
		st := streamWorld(t)
		uncut := NewStreamScorer(st, StreamScorerConfig{})
		drain(uncut, 0)
		for _, cut := range []int{1, 101, 307} {
			t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
				s := NewStreamScorer(st, StreamScorerConfig{})
				if s.TickLimit(cut) != cut {
					t.Fatalf("short stream: could not consume %d events", cut)
				}
				blob, err := s.MarshalState()
				if err != nil {
					t.Fatal(err)
				}
				restored, err := RestoreStreamScorer(st, StreamScorerConfig{}, blob)
				if err != nil {
					t.Fatal(err)
				}
				drain(restored, 53)
				assertLockstepMatchesBatch(t, st, restored, 4)
				if got, want := groupsJSON(t, restored.LockstepGroups()), groupsJSON(t, uncut.LockstepGroups()); got != want {
					t.Errorf("restored groups %s\nuninterrupted %s", got, want)
				}
				for _, u := range uncut.Accounts() {
					a, _ := uncut.Verdict(u)
					b, ok := restored.Verdict(u)
					if !ok || a != b {
						t.Errorf("user %d: uninterrupted %+v, restored %+v (ok=%v)", u, a, b, ok)
					}
				}
			})
		}
	})

	t.Run("out-of-order-resync", func(t *testing.T) {
		st := socialnet.NewStore()
		hp1, err := st.AddPage(socialnet.Page{Name: "hp1", Honeypot: true})
		if err != nil {
			t.Fatal(err)
		}
		hp2, err := st.AddPage(socialnet.Page{Name: "hp2", Honeypot: true})
		if err != nil {
			t.Fatal(err)
		}
		a := st.AddUser(socialnet.User{Country: "TR"})
		b := st.AddUser(socialnet.User{Country: "TR"})
		c := st.AddUser(socialnet.User{Country: "TR"})
		for _, like := range []struct {
			u  socialnet.UserID
			p  socialnet.PageID
			at time.Time
		}{
			{a, hp1, t0.Add(10*time.Hour + 30*time.Minute)},
			{b, hp1, t0.Add(10*time.Hour + 31*time.Minute)},
			{a, hp2, t0.Add(20*time.Hour + 30*time.Minute)},
			{b, hp2, t0.Add(20*time.Hour + 31*time.Minute)},
		} {
			if err := st.AddLike(like.u, like.p, like.at); err != nil {
				t.Fatal(err)
			}
		}
		s := NewStreamScorer(st, StreamScorerConfig{})
		s.Tick()

		// Backfilled likes stamped before the pages' folded frontier —
		// same 2h bins as a's and b's likes, but delivered after them —
		// must poison both sketches and resync exactly.
		if err := st.AddLike(c, hp1, t0.Add(10*time.Hour+10*time.Minute)); err != nil {
			t.Fatal(err)
		}
		if err := st.AddLike(c, hp2, t0.Add(20*time.Hour+10*time.Minute)); err != nil {
			t.Fatal(err)
		}
		s.Tick()
		if n := len(s.dirtyPages); n != 0 {
			t.Fatalf("%d pages still dirty after tick", n)
		}
		for _, p := range []socialnet.PageID{hp1, hp2} {
			sk := s.sketches[p]
			if sk == nil || sk.count != 3 {
				t.Fatalf("page %d sketch not rebuilt from full prefix: %+v", p, sk)
			}
		}
		groups := s.LockstepGroups()
		if len(groups) != 1 || len(groups[0].Users) != 3 || len(groups[0].Pages) != 2 {
			t.Fatalf("groups after resync = %+v, want {a,b,c}x{hp1,hp2}", groups)
		}
		v, ok := s.Verdict(c)
		if !ok || v.Lockstep != (LockstepVerdict{Group: 1, Size: 3, Pages: 2}) {
			t.Fatalf("c's lockstep verdict = %+v (ok=%v)", v.Lockstep, ok)
		}
		assertLockstepMatchesBatch(t, st, s, 1)
	})
}

// TestStreamLockstepStateDeterministic extends the sidecar-bytes pin to
// the sketch state: chunked consumption (which poisons and resyncs
// pages mid-stream) and one-shot consumption serialize identically.
func TestStreamLockstepStateDeterministic(t *testing.T) {
	st := streamWorld(t)
	a := NewStreamScorer(st, StreamScorerConfig{})
	b := NewStreamScorer(st, StreamScorerConfig{})
	drain(a, 19)
	drain(b, 0)
	ba, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if string(ba) != string(bb) {
		t.Fatalf("sketch state bytes differ between chunked and one-shot consumption")
	}
}
