package detect

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/socialnet"
)

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func parseInt(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("detect: bad integer key %q", s)
	}
	return v, nil
}

// pairKey identifies an unordered user pair, stored with a < b.
type pairKey struct{ a, b socialnet.UserID }

func makePair(a, b socialnet.UserID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// coactionSketch is one page's streamable lockstep evidence: its likers
// bucketed into Window-aligned bins, each bucket capped at the `cap`
// smallest user IDs, plus a per-pair refcount of how many bins the pair
// co-occupies. It is the unit the batch Lockstep pass folds over and
// the unit the StreamScorer maintains incrementally per tracked page —
// one code path, two drivers.
//
// The capped bucket keeps the cap smallest members of the bin's full
// user set (truncate-after-sort semantics): inserting a user either
// lands it in the kept set, evicting the current largest, or bounces
// off when the bucket is full of smaller IDs. Evicted users never
// return — the kept set only ever selects downward — so the sketch is
// a pure function of the {user, bin} SET, independent of arrival
// order. Each insert touches at most one bucket's members, so the
// incremental cost is O(bucket) <= O(cap) per event: pair counts for
// the new member are added and the evictee's retired in the same
// sweep.
//
// observe still refuses out-of-order input (at < last): the sketch
// deliberately shares the featureFold's poison/resync state machine
// (DESIGN §14) rather than relying on the order-insensitivity
// argument above, so any future order-sensitive refinement (bin
// expiry, densest-window tracking) inherits an exactness guarantee
// instead of a silent approximation. A page's events span shards, and
// bounded ticks drain shards in index order, so cross-tick
// out-of-order delivery on a page is routine — the owner resyncs the
// sketch from the reader's consumed prefix via ReplayPage.
type coactionSketch struct {
	window int64 // bin width, ns
	cap    int   // MaxBucketUsers
	last   int64 // latest in-order timestamp folded, ns
	count  int   // events folded (diagnostics; not part of the verdict)
	// buckets maps bin -> kept users, sorted ascending.
	buckets map[int64][]socialnet.UserID
	// pairs counts, per unordered user pair, the bins whose kept sets
	// contain both. pairs[k] > 0 <=> the pair co-acts on this page.
	pairs map[pairKey]int
}

func newCoactionSketch(window int64, capUsers int) *coactionSketch {
	return &coactionSketch{
		window:  window,
		cap:     capUsers,
		buckets: make(map[int64][]socialnet.UserID),
		pairs:   make(map[pairKey]int),
	}
}

// observe folds one like into the sketch. It returns false — leaving
// the sketch untouched — when the like is out of order (strictly
// before the latest folded time); the caller must then poison the
// sketch and rebuild it from a sorted replay. The journal guarantees a
// user likes a page at most once, so u is never already present.
func (s *coactionSketch) observe(u socialnet.UserID, atNS int64) bool {
	if atNS < s.last {
		return false
	}
	s.last = atNS
	s.count++
	bin := atNS / s.window
	b := s.buckets[bin]
	// Sorted insert.
	i := sort.Search(len(b), func(i int) bool { return b[i] >= u })
	b = append(b, 0)
	copy(b[i+1:], b[i:])
	b[i] = u
	var evicted socialnet.UserID
	hasEvict := false
	if len(b) > s.cap {
		evicted = b[len(b)-1]
		b = b[:len(b)-1]
		hasEvict = true
	}
	s.buckets[bin] = b
	if hasEvict && evicted == u {
		return true // bounced off a full bucket of smaller IDs: no pair change
	}
	// u joined the kept set; pair it with every other member, and
	// retire the evictee's pairs with those same members in one sweep.
	for _, v := range b {
		if v == u {
			continue
		}
		s.pairs[makePair(u, v)]++
		if hasEvict {
			k := makePair(evicted, v)
			if s.pairs[k]--; s.pairs[k] == 0 {
				delete(s.pairs, k)
			}
		}
	}
	return true
}

// groupsFromSketches is the shared back half of lockstep detection:
// given each candidate page's co-action sketch, count distinct pages
// per co-acting pair, union pairs meeting MinPages, and report
// components of MinUsers or more. Groups are sorted by their smallest
// member, users and pages ascending — a pure function of the sketches,
// so the batch and streaming drivers produce byte-identical output.
func groupsFromSketches(sketches map[socialnet.PageID]*coactionSketch, cfg LockstepConfig) []LockstepGroup {
	pairPages := make(map[pairKey]map[socialnet.PageID]struct{})
	for pid, sk := range sketches {
		for k, n := range sk.pairs {
			if n <= 0 {
				continue
			}
			m, ok := pairPages[k]
			if !ok {
				m = make(map[socialnet.PageID]struct{}, 2)
				pairPages[k] = m
			}
			m[pid] = struct{}{}
		}
	}
	uf := newUnionFind()
	memberPages := make(map[socialnet.UserID]map[socialnet.PageID]struct{})
	for k, pgs := range pairPages {
		if len(pgs) < cfg.MinPages {
			continue
		}
		uf.union(k.a, k.b)
		for _, u := range []socialnet.UserID{k.a, k.b} {
			m, ok := memberPages[u]
			if !ok {
				m = make(map[socialnet.PageID]struct{})
				memberPages[u] = m
			}
			for p := range pgs {
				m[p] = struct{}{}
			}
		}
	}
	clusters := make(map[socialnet.UserID][]socialnet.UserID)
	for u := range memberPages {
		r := uf.find(u)
		clusters[r] = append(clusters[r], u)
	}
	type cluster struct {
		min socialnet.UserID
		us  []socialnet.UserID
	}
	ordered := make([]cluster, 0, len(clusters))
	for _, us := range clusters {
		if len(us) < cfg.MinUsers {
			continue
		}
		sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
		ordered = append(ordered, cluster{min: us[0], us: us})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].min < ordered[j].min })
	var out []LockstepGroup
	for _, c := range ordered {
		pageSet := make(map[socialnet.PageID]struct{})
		for _, u := range c.us {
			for p := range memberPages[u] {
				pageSet[p] = struct{}{}
			}
		}
		pgs := make([]socialnet.PageID, 0, len(pageSet))
		for p := range pageSet {
			pgs = append(pgs, p)
		}
		sort.Slice(pgs, func(i, j int) bool { return pgs[i] < pgs[j] })
		out = append(out, LockstepGroup{Users: c.us, Pages: pgs})
	}
	return out
}

// ---- persisted state ----

// sketchState is a coactionSketch's wire form for the scorer's
// checkpoint sidecar. Pair refcounts are NOT serialized: they are a
// pure function of the kept buckets (rebuild sweeps each bucket once),
// so restore recomputes them — smaller sidecars, no drift (the §14
// reconstructibility rule).
type sketchState struct {
	Last    int64                         `json:"last"`
	Count   int                           `json:"count"`
	Buckets map[string][]socialnet.UserID `json:"buckets"`
}

func (s *coactionSketch) marshalState() sketchState {
	st := sketchState{
		Last:    s.last,
		Count:   s.count,
		Buckets: make(map[string][]socialnet.UserID, len(s.buckets)),
	}
	for bin, us := range s.buckets {
		st.Buckets[formatInt(bin)] = append([]socialnet.UserID(nil), us...)
	}
	return st
}

// restoreSketch rebuilds a sketch — pair counts included — from its
// wire form.
func restoreSketch(st sketchState, window int64, capUsers int) (*coactionSketch, error) {
	s := newCoactionSketch(window, capUsers)
	s.last = st.Last
	s.count = st.Count
	for key, us := range st.Buckets {
		bin, err := parseInt(key)
		if err != nil {
			return nil, err
		}
		kept := append([]socialnet.UserID(nil), us...)
		sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
		s.buckets[bin] = kept
		for i := 0; i < len(kept); i++ {
			for j := i + 1; j < len(kept); j++ {
				s.pairs[pairKey{kept[i], kept[j]}]++
			}
		}
	}
	return s, nil
}
