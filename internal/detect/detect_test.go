package detect

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/socialnet"
)

var t0 = time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

func times(offsets ...time.Duration) []time.Time {
	out := make([]time.Time, len(offsets))
	for i, d := range offsets {
		out[i] = t0.Add(d)
	}
	return out
}

func TestBurstScoreAllInOneWindow(t *testing.T) {
	ts := times(0, time.Minute, 30*time.Minute, time.Hour)
	s, err := BurstScore(ts, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("burst score = %v, want 1", s)
	}
}

func TestBurstScoreSpread(t *testing.T) {
	var offs []time.Duration
	for i := 0; i < 100; i++ {
		offs = append(offs, time.Duration(i)*24*time.Hour)
	}
	s, err := BurstScore(times(offs...), 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0.01 {
		t.Fatalf("burst score = %v, want 0.01 (1/100)", s)
	}
}

func TestBurstScoreEdgeCases(t *testing.T) {
	if s, err := BurstScore(nil, time.Hour); err != nil || s != 0 {
		t.Fatalf("empty = %v, %v", s, err)
	}
	if _, err := BurstScore(times(0), 0); err == nil {
		t.Fatal("zero window should error")
	}
	// Unsorted input is handled (sorted internally).
	s, err := BurstScore(times(3*time.Hour, 0, time.Minute), 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.6 || s > 0.7 {
		t.Fatalf("unsorted burst = %v, want 2/3", s)
	}
}

func TestMaxLikesInWindow(t *testing.T) {
	ts := times(0, time.Minute, 2*time.Minute, 26*time.Hour, 27*time.Hour)
	n, err := MaxLikesInWindow(ts, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("max in window = %d, want 3", n)
	}
	if n, _ := MaxLikesInWindow(nil, time.Hour); n != 0 {
		t.Fatalf("empty = %d", n)
	}
	if _, err := MaxLikesInWindow(ts, -time.Hour); err == nil {
		t.Fatal("negative window should error")
	}
}

func TestScoreBotSignature(t *testing.T) {
	f := AccountFeatures{LikeCount: 1500, FriendCount: 50, MaxIn2h: 120, Burst2h: 0.08, IslandSize: 2}
	if s := f.Score(); s < 0.8 {
		t.Fatalf("bot score = %v, want high", s)
	}
}

func TestScoreStealthSignature(t *testing.T) {
	// BoostLikes-style: few likes, many friends, trickled, big component.
	f := AccountFeatures{LikeCount: 60, FriendCount: 900, MaxIn2h: 2, Burst2h: 0.03, IslandSize: 500}
	if s := f.Score(); s != 0 {
		t.Fatalf("stealth score = %v, want 0", s)
	}
}

func TestScoreOrganicSignature(t *testing.T) {
	f := AccountFeatures{LikeCount: 35, FriendCount: 300, MaxIn2h: 2, Burst2h: 0.06, IslandSize: 1}
	if s := f.Score(); s != 0 {
		t.Fatalf("organic score = %v, want 0", s)
	}
}

func TestScoreClickerSignature(t *testing.T) {
	// Ad clickers: inflated like counts but no bursts; low-moderate score.
	f := AccountFeatures{LikeCount: 900, FriendCount: 200, MaxIn2h: 4, Burst2h: 0.01, IslandSize: 1}
	s := f.Score()
	if s <= 0 || s > 0.3 {
		t.Fatalf("clicker score = %v, want small positive", s)
	}
}

func TestScoreMonotoneInBurst(t *testing.T) {
	base := AccountFeatures{LikeCount: 1000, FriendCount: 100}
	prev := -1.0
	for _, m := range []int{1, 12, 25, 50, 200} {
		f := base
		f.MaxIn2h = m
		s := f.Score()
		if s < prev {
			t.Fatalf("score not monotone in MaxIn2h at %d: %v < %v", m, s, prev)
		}
		prev = s
	}
}

func TestScoreBounded(t *testing.T) {
	f := AccountFeatures{LikeCount: 10000, FriendCount: 0, MaxIn2h: 10000, Burst2h: 1, IslandSize: 2}
	if s := f.Score(); s > 1 {
		t.Fatalf("score = %v > 1", s)
	}
}

func TestExtractFeatures(t *testing.T) {
	st := socialnet.NewStore()
	u := st.AddUser(socialnet.User{Country: "USA", DeclaredFriends: 123})
	v := st.AddUser(socialnet.User{Country: "USA"})
	_ = st.Friend(u, v)
	p1, _ := st.AddPage(socialnet.Page{Name: "p1"})
	p2, _ := st.AddPage(socialnet.Page{Name: "p2"})
	_ = st.AddLike(u, p1, t0)
	_ = st.AddLike(u, p2, t0.Add(time.Minute))
	f, err := ExtractFeatures(st, u)
	if err != nil {
		t.Fatal(err)
	}
	if f.LikeCount != 2 || f.MaxIn2h != 2 || f.Burst2h != 1 {
		t.Fatalf("features = %+v", f)
	}
	if f.FriendCount != 123 {
		t.Fatalf("declared friends = %d, want 123", f.FriendCount)
	}
	if _, err := ExtractFeatures(st, 999); err == nil {
		t.Fatal("missing user should error")
	}
}

func TestIsolatedIslands(t *testing.T) {
	base := graph.NewUndirected()
	_ = base.AddEdge(1, 2) // pair
	_ = base.AddEdge(3, 4) // triplet
	_ = base.AddEdge(4, 5)
	_ = base.AddEdge(1, 100) // outside edge, not in user set
	base.AddNode(6)          // singleton
	users := []socialnet.UserID{1, 2, 3, 4, 5, 6}
	out := IsolatedIslands(base, users)
	if out[1] != 2 || out[2] != 2 {
		t.Fatalf("pair sizes: %v", out)
	}
	if out[3] != 3 || out[5] != 3 {
		t.Fatalf("triplet sizes: %v", out)
	}
	if out[6] != 1 {
		t.Fatalf("singleton size: %v", out)
	}
}

func TestLockstepDetectsBurstGroup(t *testing.T) {
	st := socialnet.NewStore()
	var bots []socialnet.UserID
	for i := 0; i < 6; i++ {
		bots = append(bots, st.AddUser(socialnet.User{Country: "TR"}))
	}
	organic := st.AddUser(socialnet.User{Country: "US"})
	p1, _ := st.AddPage(socialnet.Page{Name: "job1"})
	p2, _ := st.AddPage(socialnet.Page{Name: "job2"})
	// Bots like both pages within tight windows.
	for i, b := range bots {
		_ = st.AddLike(b, p1, t0.Add(time.Duration(i)*time.Minute))
		_ = st.AddLike(b, p2, t0.Add(48*time.Hour+time.Duration(i)*time.Minute))
	}
	// Organic likes p1 days later.
	_ = st.AddLike(organic, p1, t0.Add(200*time.Hour))

	groups, err := Lockstep(st, []socialnet.PageID{p1, p2}, DefaultLockstepConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	if len(groups[0].Users) != 6 {
		t.Fatalf("group size = %d, want 6", len(groups[0].Users))
	}
	for _, u := range groups[0].Users {
		if u == organic {
			t.Fatal("organic user caught in lockstep group")
		}
	}
	if len(groups[0].Pages) != 2 {
		t.Fatalf("evidence pages = %d, want 2", len(groups[0].Pages))
	}
}

func TestLockstepRequiresMinPages(t *testing.T) {
	st := socialnet.NewStore()
	var us []socialnet.UserID
	for i := 0; i < 5; i++ {
		us = append(us, st.AddUser(socialnet.User{}))
	}
	p1, _ := st.AddPage(socialnet.Page{Name: "only"})
	for i, u := range us {
		_ = st.AddLike(u, p1, t0.Add(time.Duration(i)*time.Minute))
	}
	// One shared page < MinPages(2): no groups.
	groups, err := Lockstep(st, []socialnet.PageID{p1}, DefaultLockstepConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("groups = %d, want 0", len(groups))
	}
}

func TestLockstepSpreadLikesNotGrouped(t *testing.T) {
	st := socialnet.NewStore()
	var us []socialnet.UserID
	for i := 0; i < 5; i++ {
		us = append(us, st.AddUser(socialnet.User{}))
	}
	p1, _ := st.AddPage(socialnet.Page{Name: "a"})
	p2, _ := st.AddPage(socialnet.Page{Name: "b"})
	// Same pages, but likes days apart: no shared windows.
	for i, u := range us {
		_ = st.AddLike(u, p1, t0.Add(time.Duration(i*50)*time.Hour))
		_ = st.AddLike(u, p2, t0.Add(time.Duration(1000+i*50)*time.Hour))
	}
	groups, err := Lockstep(st, []socialnet.PageID{p1, p2}, DefaultLockstepConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("spread likes grouped: %v", groups)
	}
}

func TestLockstepConfigValidation(t *testing.T) {
	bad := []LockstepConfig{
		{Window: 0, MinUsers: 3, MinPages: 2, MaxBucketUsers: 10},
		{Window: time.Hour, MinUsers: 1, MinPages: 2, MaxBucketUsers: 10},
		{Window: time.Hour, MinUsers: 3, MinPages: 0, MaxBucketUsers: 10},
		{Window: time.Hour, MinUsers: 3, MinPages: 2, MaxBucketUsers: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
	st := socialnet.NewStore()
	if _, err := Lockstep(st, nil, LockstepConfig{}); err == nil {
		t.Fatal("invalid config should fail Lockstep")
	}
}

func TestLockstepDeterministicOutput(t *testing.T) {
	build := func() []LockstepGroup {
		st := socialnet.NewStore()
		var us []socialnet.UserID
		for i := 0; i < 8; i++ {
			us = append(us, st.AddUser(socialnet.User{}))
		}
		p1, _ := st.AddPage(socialnet.Page{Name: "a"})
		p2, _ := st.AddPage(socialnet.Page{Name: "b"})
		for i, u := range us {
			_ = st.AddLike(u, p1, t0.Add(time.Duration(i)*time.Minute))
			_ = st.AddLike(u, p2, t0.Add(time.Hour*30+time.Duration(i)*time.Minute))
		}
		g, err := Lockstep(st, []socialnet.PageID{p1, p2}, DefaultLockstepConfig())
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("nondeterministic group count")
	}
	for i := range a {
		if len(a[i].Users) != len(b[i].Users) {
			t.Fatal("nondeterministic group sizes")
		}
		for j := range a[i].Users {
			if a[i].Users[j] != b[i].Users[j] {
				t.Fatal("nondeterministic group membership order")
			}
		}
	}
}
