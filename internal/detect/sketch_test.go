package detect

import (
	"testing"
	"time"

	"repro/internal/socialnet"
)

func TestCoactionSketchObserve(t *testing.T) {
	w := int64(2 * time.Hour)
	sk := newCoactionSketch(w, 4096)
	base := t0.UnixNano()
	if !sk.observe(5, base) || !sk.observe(7, base+int64(time.Minute)) {
		t.Fatal("in-order observes refused")
	}
	if sk.observe(9, base-int64(time.Hour)) {
		t.Fatal("out-of-order observe accepted")
	}
	if sk.count != 2 || sk.last != base+int64(time.Minute) {
		t.Fatalf("refused observe mutated the sketch: count=%d last=%d", sk.count, sk.last)
	}
	if got := sk.pairs[pairKey{5, 7}]; got != 1 {
		t.Fatalf("pair count = %d, want 1", got)
	}
	// Same timestamp is in order (the journal's canonical order ties
	// break on user, and equal times carry no window information).
	if !sk.observe(9, base+int64(time.Minute)) {
		t.Fatal("equal-time observe refused")
	}
	if len(sk.pairs) != 3 {
		t.Fatalf("pairs = %v, want all three", sk.pairs)
	}
}

// TestCoactionSketchCapKeepsSmallest pins the capped bucket to the
// smallest `cap` member IDs — truncate-after-sort semantics — for
// every arrival order, including the order that evicts incrementally.
func TestCoactionSketchCapKeepsSmallest(t *testing.T) {
	w := int64(2 * time.Hour)
	base := t0.UnixNano() // t0 is bin-aligned for the 2h window
	orders := [][]socialnet.UserID{
		{10, 20, 30, 40, 50}, // ascending: later arrivals bounce off
		{50, 40, 30, 20, 10}, // descending: every arrival evicts the max
		{30, 50, 10, 40, 20}, // mixed
	}
	for _, order := range orders {
		sk := newCoactionSketch(w, 3)
		for i, u := range order {
			if !sk.observe(u, base+int64(i)*int64(time.Minute)) {
				t.Fatalf("order %v: observe(%d) refused", order, u)
			}
		}
		bin := base / w
		b := sk.buckets[bin]
		if len(b) != 3 || b[0] != 10 || b[1] != 20 || b[2] != 30 {
			t.Fatalf("order %v: kept bucket %v, want [10 20 30]", order, b)
		}
		want := []pairKey{{10, 20}, {10, 30}, {20, 30}}
		if len(sk.pairs) != len(want) {
			t.Fatalf("order %v: pairs %v, want exactly %v", order, sk.pairs, want)
		}
		for _, k := range want {
			if sk.pairs[k] != 1 {
				t.Fatalf("order %v: pairs[%v] = %d, want 1", order, k, sk.pairs[k])
			}
		}
	}
}

// TestCoactionSketchRestoreRebuildsPairs round-trips a sketch through
// its wire form and checks the recomputed pair refcounts.
func TestCoactionSketchRestoreRebuildsPairs(t *testing.T) {
	w := int64(2 * time.Hour)
	sk := newCoactionSketch(w, 4096)
	base := t0.UnixNano()
	for i, u := range []socialnet.UserID{3, 1, 2} {
		sk.observe(u, base+int64(i)*int64(time.Minute))
	}
	sk.observe(1, base+w) // second bin: refcount for no pair (singleton)
	got, err := restoreSketch(sk.marshalState(), w, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if got.last != sk.last || got.count != sk.count {
		t.Fatalf("restored last/count = %d/%d, want %d/%d", got.last, got.count, sk.last, sk.count)
	}
	if len(got.pairs) != len(sk.pairs) {
		t.Fatalf("restored pairs %v, want %v", got.pairs, sk.pairs)
	}
	for k, n := range sk.pairs {
		if got.pairs[k] != n {
			t.Fatalf("restored pairs[%v] = %d, want %d", k, got.pairs[k], n)
		}
	}
}

// TestLockstepBucketCapDeterministic is the regression test for the
// pre-sort truncation bug: with more same-window likers than
// MaxBucketUsers, the surviving set must be the smallest user IDs —
// a pure function of the liker set — no matter which likers hit the
// page first.
func TestLockstepBucketCapDeterministic(t *testing.T) {
	cfg := LockstepConfig{Window: 2 * time.Hour, MinUsers: 2, MinPages: 1, MaxBucketUsers: 3}
	build := func(earliestFirst bool) ([]LockstepGroup, []socialnet.UserID) {
		st := socialnet.NewStore()
		hp, err := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
		if err != nil {
			t.Fatal(err)
		}
		var users []socialnet.UserID
		for i := 0; i < 5; i++ {
			users = append(users, st.AddUser(socialnet.User{Country: "US"}))
		}
		for i, u := range users {
			// One shared 2h bin; like times ascend either with or
			// against user-ID order, so the two stores' time-sorted
			// like streams present the users in opposite orders.
			slot := i
			if !earliestFirst {
				slot = len(users) - 1 - i
			}
			if err := st.AddLike(u, hp, t0.Add(time.Duration(slot)*time.Minute)); err != nil {
				t.Fatal(err)
			}
		}
		groups, err := Lockstep(st, []socialnet.PageID{hp}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return groups, users
	}
	for _, earliestFirst := range []bool{true, false} {
		groups, users := build(earliestFirst)
		if len(groups) != 1 {
			t.Fatalf("earliestFirst=%v: groups = %v, want one", earliestFirst, groups)
		}
		want := users[:3] // smallest 3 IDs survive the cap, in both stores
		if len(groups[0].Users) != len(want) {
			t.Fatalf("earliestFirst=%v: group %v, want users %v", earliestFirst, groups[0], want)
		}
		for i, u := range want {
			if groups[0].Users[i] != u {
				t.Fatalf("earliestFirst=%v: group users %v, want %v", earliestFirst, groups[0].Users, want)
			}
		}
	}
}
