package detect

import (
	"fmt"
	"time"

	"repro/internal/socialnet"
)

// LockstepConfig parameterizes the CopyCatch-style detector [4]: find
// groups of at least MinUsers accounts that each liked at least MinPages
// common pages, with the likes on each common page falling within a
// Window of each other.
type LockstepConfig struct {
	Window   time.Duration
	MinUsers int
	MinPages int
	// MaxBucketUsers caps the per-(page,window) bucket fanout to bound
	// the pair-counting cost on pathological inputs. A capped bucket
	// keeps its smallest MaxBucketUsers member IDs — a pure function of
	// the bucket's user set, so which users survive the cap never
	// depends on arrival order.
	MaxBucketUsers int
}

// DefaultLockstepConfig mirrors the granularity of the paper's burst
// observations: 700+ likes landed within single 2-hour windows.
func DefaultLockstepConfig() LockstepConfig {
	return LockstepConfig{
		Window:         2 * time.Hour,
		MinUsers:       3,
		MinPages:       2,
		MaxBucketUsers: 4096,
	}
}

// Validate checks the config.
func (c *LockstepConfig) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("detect: lockstep window %s must be positive", c.Window)
	}
	if c.MinUsers < 2 {
		return fmt.Errorf("detect: lockstep min users %d must be >=2", c.MinUsers)
	}
	if c.MinPages < 1 {
		return fmt.Errorf("detect: lockstep min pages %d must be >=1", c.MinPages)
	}
	if c.MaxBucketUsers < c.MinUsers {
		return fmt.Errorf("detect: lockstep bucket cap %d below min users %d", c.MaxBucketUsers, c.MinUsers)
	}
	return nil
}

// LockstepGroup is a detected cluster: the users and the (page, window)
// evidence supporting it.
type LockstepGroup struct {
	Users []socialnet.UserID
	Pages []socialnet.PageID
}

// LockstepVerdict is one account's slice of a lockstep group report:
// which group it belongs to and how big the evidence is. The zero
// value means the account is in no group.
type LockstepVerdict struct {
	// Group is the 1-based index of the account's group in the report
	// (groups are ordered by smallest member); 0 means none.
	Group int
	// Size is the group's member count.
	Size int
	// Pages is the group's count of distinct co-action evidence pages.
	Pages int
}

// AttachLockstep stamps each verdict with its account's membership in
// the given group report (batch Lockstep output or the StreamScorer's
// live LockstepGroups — same bytes either way). Non-members get the
// zero LockstepVerdict.
func AttachLockstep(verdicts []Verdict, groups []LockstepGroup) {
	if len(groups) == 0 {
		return
	}
	member := make(map[socialnet.UserID]LockstepVerdict)
	for gi, g := range groups {
		lv := LockstepVerdict{Group: gi + 1, Size: len(g.Users), Pages: len(g.Pages)}
		for _, u := range g.Users {
			member[u] = lv
		}
	}
	for i := range verdicts {
		verdicts[i].Lockstep = member[verdicts[i].Features.User]
	}
}

// Lockstep runs the detector over the given pages' like streams.
//
// It is the batch driver over the same core the StreamScorer maintains
// live: fold each page's likes (already sorted by time) into a
// coactionSketch, then derive groups with groupsFromSketches. The
// streaming path folds the identical events into identical sketches
// incrementally, so the two engines' group lists match byte for byte
// at any quiescent point.
func Lockstep(st *socialnet.Store, pages []socialnet.PageID, cfg LockstepConfig) ([]LockstepGroup, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sketches := make(map[socialnet.PageID]*coactionSketch, len(pages))
	for _, pid := range pages {
		if _, dup := sketches[pid]; dup {
			continue
		}
		sk := newCoactionSketch(int64(cfg.Window), cfg.MaxBucketUsers)
		for _, lk := range st.LikesOfPage(pid) {
			// LikesOfPage is sorted by (time, user): always in order.
			sk.observe(lk.User, lk.At.UnixNano())
		}
		sketches[pid] = sk
	}
	return groupsFromSketches(sketches, cfg), nil
}
