package detect

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/socialnet"
)

// LockstepConfig parameterizes the CopyCatch-style detector [4]: find
// groups of at least MinUsers accounts that each liked at least MinPages
// common pages, with the likes on each common page falling within a
// Window of each other.
type LockstepConfig struct {
	Window   time.Duration
	MinUsers int
	MinPages int
	// MaxBucketUsers caps the per-(page,window) bucket fanout to bound
	// the pair-counting cost on pathological inputs.
	MaxBucketUsers int
}

// DefaultLockstepConfig mirrors the granularity of the paper's burst
// observations: 700+ likes landed within single 2-hour windows.
func DefaultLockstepConfig() LockstepConfig {
	return LockstepConfig{
		Window:         2 * time.Hour,
		MinUsers:       3,
		MinPages:       2,
		MaxBucketUsers: 4096,
	}
}

// Validate checks the config.
func (c *LockstepConfig) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("detect: lockstep window %s must be positive", c.Window)
	}
	if c.MinUsers < 2 {
		return fmt.Errorf("detect: lockstep min users %d must be >=2", c.MinUsers)
	}
	if c.MinPages < 1 {
		return fmt.Errorf("detect: lockstep min pages %d must be >=1", c.MinPages)
	}
	if c.MaxBucketUsers < c.MinUsers {
		return fmt.Errorf("detect: lockstep bucket cap %d below min users %d", c.MaxBucketUsers, c.MinUsers)
	}
	return nil
}

// LockstepGroup is a detected cluster: the users and the (page, window)
// evidence supporting it.
type LockstepGroup struct {
	Users []socialnet.UserID
	Pages []socialnet.PageID
}

// Lockstep runs the detector over the given pages' like streams.
//
// Implementation: bucket each page's likes into Window-aligned bins; for
// every pair of users sharing a (page, bin) bucket, count distinct pages
// of co-occurrence; build a co-liking graph over pairs meeting MinPages;
// its connected components of size >= MinUsers are reported.
func Lockstep(st *socialnet.Store, pages []socialnet.PageID, cfg LockstepConfig) ([]LockstepGroup, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	type pairKey struct{ a, b socialnet.UserID }
	pairPages := make(map[pairKey]map[socialnet.PageID]struct{})

	for _, pid := range pages {
		likes := st.LikesOfPage(pid)
		buckets := make(map[int64][]socialnet.UserID)
		for _, lk := range likes {
			bin := lk.At.UnixNano() / int64(cfg.Window)
			buckets[bin] = append(buckets[bin], lk.User)
		}
		// Deterministic bucket order.
		bins := make([]int64, 0, len(buckets))
		for b := range buckets {
			bins = append(bins, b)
		}
		sort.Slice(bins, func(i, j int) bool { return bins[i] < bins[j] })
		for _, b := range bins {
			us := buckets[b]
			if len(us) < 2 {
				continue
			}
			if len(us) > cfg.MaxBucketUsers {
				us = us[:cfg.MaxBucketUsers]
			}
			sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
			for i := 0; i < len(us); i++ {
				for j := i + 1; j < len(us); j++ {
					if us[i] == us[j] {
						continue
					}
					k := pairKey{us[i], us[j]}
					m, ok := pairPages[k]
					if !ok {
						m = make(map[socialnet.PageID]struct{}, 2)
						pairPages[k] = m
					}
					m[pid] = struct{}{}
				}
			}
		}
	}

	// Union-find over qualifying pairs.
	parent := make(map[socialnet.UserID]socialnet.UserID)
	var find func(socialnet.UserID) socialnet.UserID
	find = func(x socialnet.UserID) socialnet.UserID {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b socialnet.UserID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	memberPages := make(map[socialnet.UserID]map[socialnet.PageID]struct{})
	for k, pgs := range pairPages {
		if len(pgs) < cfg.MinPages {
			continue
		}
		union(k.a, k.b)
		for _, u := range []socialnet.UserID{k.a, k.b} {
			m, ok := memberPages[u]
			if !ok {
				m = make(map[socialnet.PageID]struct{})
				memberPages[u] = m
			}
			for p := range pgs {
				m[p] = struct{}{}
			}
		}
	}

	clusters := make(map[socialnet.UserID][]socialnet.UserID)
	for u := range memberPages {
		r := find(u)
		clusters[r] = append(clusters[r], u)
	}
	var out []LockstepGroup
	roots := make([]socialnet.UserID, 0, len(clusters))
	for r := range clusters {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		us := clusters[r]
		if len(us) < cfg.MinUsers {
			continue
		}
		sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
		pageSet := make(map[socialnet.PageID]struct{})
		for _, u := range us {
			for p := range memberPages[u] {
				pageSet[p] = struct{}{}
			}
		}
		pgs := make([]socialnet.PageID, 0, len(pageSet))
		for p := range pageSet {
			pgs = append(pgs, p)
		}
		sort.Slice(pgs, func(i, j int) bool { return pgs[i] < pgs[j] })
		out = append(out, LockstepGroup{Users: us, Pages: pgs})
	}
	return out, nil
}
