package detect

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/socialnet"
)

// StreamScorerConfig parameterizes the streaming fraud scorer.
type StreamScorerConfig struct {
	// Window is the burst window (default FeatureWindow, the paper's 2h).
	Window time.Duration
	// Pages is the tracked page set: a like on a tracked page enrolls
	// the liker for scoring. Nil tracks the store's honeypot pages —
	// the §5 population the batch sweep examines.
	Pages []socialnet.PageID
	// Lockstep parameterizes the per-page co-action sketches behind the
	// verdicts' lockstep dimension. The zero value (or any invalid
	// config) falls back to DefaultLockstepConfig.
	Lockstep LockstepConfig
}

// StreamScorer is the streaming counterpart of the batch fraud sweep
// (§5): it consumes the store's like-event journal through an
// incremental cursor — the honeypot Monitor.observe pattern,
// generalized from one page's stream to the whole journal — and
// maintains per-account burst features incrementally, so a tick costs
// O(new events) regardless of how much history the journal holds.
//
// Per enrolled account the retained state is bounded: the featureFold's
// sliding-window deque (bounded by the densest window's population),
// three counters, and a union-find node. Island membership is kept by
// an incremental union-find over the enrolled set — enrolling an
// account unions it with its already-enrolled friends, which yields
// exactly the connected components IsolatedIslands computes over the
// induced subgraph, without ever re-running the full computation.
//
// Equivalence contract: after consuming the journal to any quiescent
// point, Verdict(u) carries byte-for-byte the AccountFeatures and
// Score() the batch path (BatchFeatures over the enrolled set) computes
// at the same point. Two invariants make this exact:
//
//   - Per-account event order: a user's events all live in one journal
//     shard, in append order, so the incremental fold sees them in the
//     order a batch scan would. A genuinely out-of-order arrival (a
//     bulk-history import stamped in the past) marks the account dirty;
//     at tick end the account is rebuilt from the reader's consumed
//     prefix via ReplayUser — O(shard prefix), rare, and exact.
//   - Quiescent friendship graph: friends are read at enrollment (for
//     the union-find) and at verdict time (FriendCount), so the
//     equivalence holds when friendship edges don't change while the
//     scorer runs — true for a built world being served, and asserted
//     by the equivalence tests.
//
// A StreamScorer is safe for concurrent use; Tick and verdict reads
// serialize on one mutex.
type StreamScorer struct {
	st      *socialnet.Store
	window  time.Duration
	lockCfg LockstepConfig
	tracked map[socialnet.PageID]bool

	mu       sync.Mutex
	reader   *socialnet.Reader
	accounts map[socialnet.UserID]*featureFold
	dirty    map[socialnet.UserID]bool
	// pageLikers is the enrolled liker set per tracked page, from
	// consumed journal events (not the store index, whose tail the
	// cursor may not have reached yet).
	pageLikers map[socialnet.PageID]map[socialnet.UserID]bool
	// islands is the incremental union-find over enrolled accounts.
	islands *unionFind
	// sketches holds one co-action sketch per tracked page that has
	// consumed events — the streaming half of the lockstep detector.
	// dirtyPages marks sketches poisoned by an out-of-order arrival
	// (a page's likers span shards, so bounded ticks deliver its
	// events across time order routinely); the tick-end resync
	// rebuilds them exactly from the reader's consumed prefix.
	sketches   map[socialnet.PageID]*coactionSketch
	dirtyPages map[socialnet.PageID]bool
	// groups caches the derived lockstep report; groupsStale flips
	// whenever a sketch changes, and the next verdict read recomputes.
	groups      []LockstepGroup
	groupOf     map[socialnet.UserID]LockstepVerdict
	groupsStale bool
	// offScratch backs the cursor snapshot in MarshalState, reused
	// across checkpoints so the periodic sidecar write stops allocating
	// a fresh offsets slice every tick.
	offScratch []int
}

// NewStreamScorer builds a scorer positioned at the start of the
// store's journal. Nothing is consumed until the first Tick.
func NewStreamScorer(st *socialnet.Store, cfg StreamScorerConfig) *StreamScorer {
	s := newStreamScorerShell(st, cfg)
	s.reader = st.Journal().NewReader()
	return s
}

// newStreamScorerShell builds everything but the reader.
func newStreamScorerShell(st *socialnet.Store, cfg StreamScorerConfig) *StreamScorer {
	window := cfg.Window
	if window <= 0 {
		window = FeatureWindow
	}
	pages := cfg.Pages
	if pages == nil {
		pages = st.HoneypotPages()
	}
	tracked := make(map[socialnet.PageID]bool, len(pages))
	for _, p := range pages {
		tracked[p] = true
	}
	lockCfg := cfg.Lockstep
	if lockCfg.Validate() != nil {
		lockCfg = DefaultLockstepConfig()
	}
	return &StreamScorer{
		st:          st,
		window:      window,
		lockCfg:     lockCfg,
		tracked:     tracked,
		accounts:    make(map[socialnet.UserID]*featureFold),
		dirty:       make(map[socialnet.UserID]bool),
		pageLikers:  make(map[socialnet.PageID]map[socialnet.UserID]bool),
		islands:     newUnionFind(),
		sketches:    make(map[socialnet.PageID]*coactionSketch),
		dirtyPages:  make(map[socialnet.PageID]bool),
		groupsStale: true,
	}
}

// Tick consumes every journal event appended since the last tick and
// returns how many were consumed.
func (s *StreamScorer) Tick() int { return s.TickLimit(0) }

// TickLimit is Tick bounded to at most max events (max <= 0 means
// unbounded). The scorer's state after a sequence of bounded ticks is
// identical to one unbounded tick over the same events.
func (s *StreamScorer) TickLimit(max int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	batch := s.reader.NextLimit(max)
	for _, ev := range batch {
		s.observe(ev)
	}
	s.resyncDirty()
	return len(batch)
}

// observe folds one event. Events of non-enrolled accounts on
// untracked pages are skipped in O(1); a tracked-page like enrolls its
// account (dirty, so the tick-end resync picks up any earlier events
// the scorer skipped before enrollment — cover history materialized
// before the honeypot like, likes on other pages, all of it).
func (s *StreamScorer) observe(ev socialnet.LikeEvent) {
	fold, enrolled := s.accounts[ev.User]
	if !enrolled {
		if !s.tracked[ev.Page] {
			return
		}
		s.enroll(ev.User)
		fold = s.accounts[ev.User]
	}
	if s.tracked[ev.Page] {
		likers, ok := s.pageLikers[ev.Page]
		if !ok {
			likers = make(map[socialnet.UserID]bool)
			s.pageLikers[ev.Page] = likers
		}
		likers[ev.User] = true
		s.observeSketch(ev)
	}
	if s.dirty[ev.User] {
		return // resync at tick end rebuilds from the full prefix
	}
	if !fold.observe(ev.At.UnixNano()) {
		s.dirty[ev.User] = true
	}
}

// observeSketch folds a tracked-page event into the page's co-action
// sketch, poisoning the page on out-of-order delivery — the tick-end
// resync rebuilds it from the reader's consumed prefix via ReplayPage.
func (s *StreamScorer) observeSketch(ev socialnet.LikeEvent) {
	s.groupsStale = true
	if s.dirtyPages[ev.Page] {
		return // resync at tick end rebuilds from the full prefix
	}
	sk, ok := s.sketches[ev.Page]
	if !ok {
		sk = newCoactionSketch(int64(s.lockCfg.Window), s.lockCfg.MaxBucketUsers)
		s.sketches[ev.Page] = sk
	}
	if !sk.observe(ev.User, ev.At.UnixNano()) {
		s.dirtyPages[ev.Page] = true
	}
}

// enroll registers a new account: a fresh (dirty) fold and a
// union-find node united with every already-enrolled friend.
func (s *StreamScorer) enroll(u socialnet.UserID) {
	s.accounts[u] = &featureFold{window: int64(s.window)}
	s.dirty[u] = true
	s.islands.add(u)
	for _, f := range s.st.FriendsOf(u) {
		if _, in := s.accounts[f]; in {
			s.islands.union(u, f)
		}
	}
}

// resyncDirty rebuilds every dirty account from the reader's consumed
// prefix: the exact multiset of the account's events delivered so far,
// sorted (fast-path when already in order), folded fresh. This is the
// out-of-order escape hatch that keeps the incremental fold exact with
// bounded steady-state memory.
func (s *StreamScorer) resyncDirty() {
	for u := range s.dirty {
		var times []time.Time
		s.reader.ReplayUser(u, func(ev socialnet.LikeEvent) {
			times = append(times, ev.At)
		})
		fold := foldSorted(ensureSorted(times), s.window)
		s.accounts[u] = &fold
		delete(s.dirty, u)
	}
	// Poisoned page sketches rebuild the same way: ReplayPage delivers
	// the page's consumed prefix in canonical order, and the sketch is
	// a pure function of that multiset, so the rebuilt sketch is
	// exactly what uninterrupted in-order folding would have produced.
	for p := range s.dirtyPages {
		sk := newCoactionSketch(int64(s.lockCfg.Window), s.lockCfg.MaxBucketUsers)
		s.reader.ReplayPage(p, func(ev socialnet.LikeEvent) {
			sk.observe(ev.User, ev.At.UnixNano())
		})
		s.sketches[p] = sk
		delete(s.dirtyPages, p)
	}
}

// Verdict is one account's composite detection outcome: the burst
// features and score, the account's lockstep group membership, and its
// platform status. Both engines produce it — the StreamScorer live,
// BatchVerdicts from a store pass — and the two agree byte for byte at
// quiescent points, so everything downstream (the /api/fraud wire
// docs, the platform's termination sweep) consumes one model.
type Verdict struct {
	Features AccountFeatures
	Score    float64
	// Lockstep is the account's slice of the lockstep group report.
	// It carries evidence, not score: group membership surfaces
	// through the verdict without perturbing Score, which stays the
	// burst/ratio/island composite the sweep's coin flips are pinned
	// against.
	Lockstep LockstepVerdict
	// Terminated reports the account's current platform status — the
	// batch sweep skips already-terminated accounts; the live service
	// reports them with their score.
	Terminated bool
}

// Verdict returns the account's current features and score, or false
// if the account is not enrolled (it has no consumed like on a tracked
// page). FriendCount and IslandSize are read at call time, matching
// the batch path's at-sweep-time reads.
func (s *StreamScorer) Verdict(u socialnet.UserID) (Verdict, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.verdictLocked(u)
}

func (s *StreamScorer) verdictLocked(u socialnet.UserID) (Verdict, bool) {
	fold, ok := s.accounts[u]
	if !ok {
		return Verdict{}, false
	}
	f := featuresFromFold(*fold, u, s.st.DeclaredFriendCount(u))
	f.IslandSize = s.islands.componentSize(u)
	v := Verdict{Features: f, Score: f.Score(), Lockstep: s.groupOfLocked()[u]}
	if user, err := s.st.User(u); err == nil {
		v.Terminated = user.Status == socialnet.StatusTerminated
	}
	return v, true
}

// groupOfLocked returns the membership index for the current sketches,
// recomputing the cached group report if any sketch changed since the
// last read. Recomputation folds the co-acting pair sets — already
// maintained per page — through the same groupsFromSketches back half
// the batch detector uses.
func (s *StreamScorer) groupOfLocked() map[socialnet.UserID]LockstepVerdict {
	if s.groupsStale {
		s.groups = groupsFromSketches(s.sketches, s.lockCfg)
		s.groupOf = make(map[socialnet.UserID]LockstepVerdict)
		for gi, g := range s.groups {
			lv := LockstepVerdict{Group: gi + 1, Size: len(g.Users), Pages: len(g.Pages)}
			for _, u := range g.Users {
				s.groupOf[u] = lv
			}
		}
		s.groupsStale = false
	}
	return s.groupOf
}

// LockstepGroups returns the live lockstep group report over the
// consumed journal prefix — at any quiescent point, byte-identical to
// batch Lockstep over the tracked pages. The returned slice is shared
// with the scorer's cache; callers must not mutate it.
func (s *StreamScorer) LockstepGroups() []LockstepGroup {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.groupOfLocked()
	return s.groups
}

// Accounts returns the enrolled account set, sorted by user ID.
func (s *StreamScorer) Accounts() []socialnet.UserID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]socialnet.UserID, 0, len(s.accounts))
	for u := range s.accounts {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PageLikers returns the enrolled likers of a tracked page (from
// consumed events), sorted by user ID, and whether the page is
// tracked.
func (s *StreamScorer) PageLikers(p socialnet.PageID) ([]socialnet.UserID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.tracked[p] {
		return nil, false
	}
	likers := s.pageLikers[p]
	out := make([]socialnet.UserID, 0, len(likers))
	for u := range likers {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// TrackedPages returns the tracked page set, sorted.
func (s *StreamScorer) TrackedPages() []socialnet.PageID {
	out := make([]socialnet.PageID, 0, len(s.tracked))
	for p := range s.tracked {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Offset returns the scorer's journal high-water mark (total events
// consumed).
func (s *StreamScorer) Offset() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reader.Offset()
}

// ---- persisted state ----

// scorerState is the JSON sidecar format. JSON object keys are decimal
// user/page IDs (JSON objects cannot key on integers); encoding/json
// marshals map keys sorted, so the bytes are deterministic for a given
// state. The union-find is NOT serialized: it is a pure function of
// the enrolled set and the (quiescent) friendship graph, so restore
// rebuilds it — cheaper than serializing and immune to drift.
type scorerState struct {
	WindowNS   int64                         `json:"window_ns"`
	Offsets    []int                         `json:"offsets"`
	Tracked    []int64                       `json:"tracked"`
	Accounts   map[string]foldState          `json:"accounts"`
	PageLikers map[string][]socialnet.UserID `json:"page_likers"`
	// Lockstep sketch state: the bin width and bucket cap pin the
	// sketch shape (restore rejects a sidecar built under different
	// ones — MinUsers/MinPages only affect group derivation and may
	// change freely), and Sketches carries each tracked page's kept
	// buckets. Pair refcounts rebuild from the buckets at restore.
	LockstepWindowNS int64                  `json:"lockstep_window_ns"`
	LockstepCap      int                    `json:"lockstep_cap"`
	Sketches         map[string]sketchState `json:"sketches"`
}

// foldState is one account's featureFold, wire form.
type foldState struct {
	Count int     `json:"count"`
	Best  int     `json:"best"`
	Last  int64   `json:"last"`
	Deque []int64 `json:"deque"`
}

// MarshalState serializes the scorer's cursor and per-account feature
// state for a checkpoint sidecar. The snapshot is taken under the
// scorer mutex, so it is consistent with exactly the events consumed
// so far: restoring it and consuming the rest of the journal yields
// the same verdicts as never having stopped.
func (s *StreamScorer) MarshalState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.offScratch = s.reader.OffsetsInto(s.offScratch)
	st := scorerState{
		WindowNS:         int64(s.window),
		Offsets:          s.offScratch,
		Accounts:         make(map[string]foldState, len(s.accounts)),
		PageLikers:       make(map[string][]socialnet.UserID, len(s.pageLikers)),
		LockstepWindowNS: int64(s.lockCfg.Window),
		LockstepCap:      s.lockCfg.MaxBucketUsers,
		Sketches:         make(map[string]sketchState, len(s.sketches)),
	}
	for p, sk := range s.sketches {
		st.Sketches[formatInt(int64(p))] = sk.marshalState()
	}
	for _, p := range s.TrackedPagesLocked() {
		st.Tracked = append(st.Tracked, int64(p))
	}
	for u, f := range s.accounts {
		st.Accounts[strconv.FormatInt(int64(u), 10)] = foldState{
			Count: f.count, Best: f.best, Last: f.last,
			Deque: append([]int64(nil), f.deque...),
		}
	}
	for p, likers := range s.pageLikers {
		us := make([]socialnet.UserID, 0, len(likers))
		for u := range likers {
			us = append(us, u)
		}
		sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
		st.PageLikers[strconv.FormatInt(int64(p), 10)] = us
	}
	return json.MarshalIndent(&st, "", " ")
}

// TrackedPagesLocked is TrackedPages for callers already holding mu.
func (s *StreamScorer) TrackedPagesLocked() []socialnet.PageID {
	out := make([]socialnet.PageID, 0, len(s.tracked))
	for p := range s.tracked {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RestoreStreamScorer rebuilds a scorer from MarshalState output
// against the (reopened) store. It validates the persisted cursor
// against the journal — shard count must match and no offset may
// exceed its shard's current length (a crash that lost an unsynced
// tail the scorer had observed) — and that the tracked page set still
// matches the config. On any mismatch it returns an error; callers
// fall back to NewStreamScorer and rescan from the start, which is
// always correct (the journal retains everything).
func RestoreStreamScorer(st *socialnet.Store, cfg StreamScorerConfig, data []byte) (*StreamScorer, error) {
	var state scorerState
	if err := json.Unmarshal(data, &state); err != nil {
		return nil, fmt.Errorf("detect: corrupt scorer state: %w", err)
	}
	s := newStreamScorerShell(st, cfg)
	if state.WindowNS != int64(s.window) {
		return nil, fmt.Errorf("detect: scorer state window %s, config wants %s",
			time.Duration(state.WindowNS), s.window)
	}
	if len(state.Tracked) != len(s.tracked) {
		return nil, fmt.Errorf("detect: scorer state tracks %d pages, config %d",
			len(state.Tracked), len(s.tracked))
	}
	for _, p := range state.Tracked {
		if !s.tracked[socialnet.PageID(p)] {
			return nil, fmt.Errorf("detect: scorer state tracks page %d, config does not", p)
		}
	}
	if state.LockstepWindowNS != int64(s.lockCfg.Window) {
		return nil, fmt.Errorf("detect: scorer state lockstep window %s, config wants %s",
			time.Duration(state.LockstepWindowNS), s.lockCfg.Window)
	}
	if state.LockstepCap != s.lockCfg.MaxBucketUsers {
		return nil, fmt.Errorf("detect: scorer state lockstep bucket cap %d, config wants %d",
			state.LockstepCap, s.lockCfg.MaxBucketUsers)
	}
	for key, ss := range state.Sketches {
		id, err := parseInt(key)
		if err != nil {
			return nil, fmt.Errorf("detect: scorer state sketch key %q", key)
		}
		if !s.tracked[socialnet.PageID(id)] {
			return nil, fmt.Errorf("detect: scorer state sketches untracked page %d", id)
		}
		sk, err := restoreSketch(ss, int64(s.lockCfg.Window), s.lockCfg.MaxBucketUsers)
		if err != nil {
			return nil, err
		}
		s.sketches[socialnet.PageID(id)] = sk
	}
	reader, err := st.Journal().ReaderAt(state.Offsets)
	if err != nil {
		return nil, err
	}
	s.reader = reader
	for key, fs := range state.Accounts {
		id, err := strconv.ParseInt(key, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("detect: scorer state account key %q", key)
		}
		u := socialnet.UserID(id)
		s.accounts[u] = &featureFold{
			window: int64(s.window),
			count:  fs.Count, best: fs.Best, last: fs.Last,
			deque: append([]int64(nil), fs.Deque...),
		}
	}
	for key, likers := range state.PageLikers {
		id, err := strconv.ParseInt(key, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("detect: scorer state page key %q", key)
		}
		set := make(map[socialnet.UserID]bool, len(likers))
		for _, u := range likers {
			set[u] = true
		}
		s.pageLikers[socialnet.PageID(id)] = set
	}
	// Rebuild the union-find from the enrolled set in sorted order —
	// deterministic, and identical to having enrolled incrementally
	// because union-find components are order-insensitive.
	us := make([]socialnet.UserID, 0, len(s.accounts))
	for u := range s.accounts {
		us = append(us, u)
	}
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	for _, u := range us {
		s.islands.add(u)
	}
	for _, u := range us {
		for _, f := range st.FriendsOf(u) {
			if _, in := s.accounts[f]; in {
				s.islands.union(u, f)
			}
		}
	}
	return s, nil
}
