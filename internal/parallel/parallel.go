// Package parallel provides the bounded worker pools the study engine
// runs on. Every helper is deterministic from the caller's point of
// view: work items are identified by index, results land in
// index-addressed slots, and the first error in index order wins — so
// output never depends on goroutine scheduling, only on the inputs.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a configured worker count: values < 1 mean "one
// worker per logical CPU" (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for i in [0, n) on a pool of the given number of
// workers. All n items run even when some fail; the returned error is
// the failing item with the lowest index, so the caller sees the same
// error no matter how the pool scheduled the work. workers < 1 uses one
// worker per CPU; workers == 1 runs inline in index order.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Tasks runs a set of independent closures on a pool of the given
// number of workers and returns the first error in task order. It is
// ForEach over an explicit task list, for heterogeneous stages (e.g.
// the study's analysis fan-out).
func Tasks(workers int, tasks ...func() error) error {
	return ForEach(workers, len(tasks), func(i int) error { return tasks[i]() })
}

// Chunks splits [0, n) into contiguous spans of at most chunk items and
// runs fn(lo, hi) for each span on the pool. Use it when per-item
// dispatch is too fine-grained (e.g. scoring thousands of accounts).
func Chunks(workers, n, chunk int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if chunk < 1 {
		chunk = 1
	}
	spans := (n + chunk - 1) / chunk
	return ForEach(workers, spans, func(i int) error {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
}
