package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryItem(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		hits := make([]atomic.Int32, 100)
		if err := ForEach(workers, len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 50, func(i int) error {
			switch i {
			case 7:
				return errA
			case 31:
				return errors.New("b")
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error", workers, err)
		}
	}
}

func TestForEachDoesNotCancelOnError(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(4, 20, func(i int) error {
		ran.Add(1)
		return fmt.Errorf("fail %d", i)
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran.Load() != 20 {
		t.Fatalf("ran %d of 20 items", ran.Load())
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive workers must normalize to >=1")
	}
	if Workers(5) != 5 {
		t.Fatal("positive workers must pass through")
	}
}

func TestTasks(t *testing.T) {
	var a, b atomic.Bool
	err := Tasks(2,
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return errors.New("task b") },
	)
	if err == nil || err.Error() != "task b" {
		t.Fatalf("err = %v", err)
	}
	if !a.Load() || !b.Load() {
		t.Fatal("not all tasks ran")
	}
}

func TestChunksCoversRange(t *testing.T) {
	hits := make([]atomic.Int32, 103)
	if err := Chunks(4, len(hits), 10, func(lo, hi int) error {
		if hi-lo > 10 || hi-lo < 1 {
			return fmt.Errorf("bad span [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, hits[i].Load())
		}
	}
}
