package api

import (
	"compress/gzip"
	"net/http"
	"strconv"
	"strings"
)

// GzipMinSize is the body size below which responses are sent
// uncompressed: gzip framing costs ~25 bytes plus CPU on both ends,
// which tiny JSON documents (error bodies, single profiles) never earn
// back. Large like-stream and friend-list windows — the crawler's hot
// responses — compress to a fraction of their wire size.
const GzipMinSize = 1 << 10

// Gzip wraps a handler with negotiated response compression: bodies of
// at least GzipMinSize are gzip-encoded when the request's
// Accept-Encoding offers gzip, everything else passes through
// untouched. Responses that already carry a Content-Encoding are never
// re-encoded, and every response gains Vary: Accept-Encoding so caches
// keep the two renderings apart.
func Gzip(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Vary goes on EVERY response, identity included: a shared cache
		// that stores an un-Varied identity response would serve it to
		// gzip-offering clients for its whole TTL.
		w.Header().Add("Vary", "Accept-Encoding")
		if !acceptsGzip(r) {
			next.ServeHTTP(w, r)
			return
		}
		gw := &gzipResponseWriter{rw: w, code: http.StatusOK}
		next.ServeHTTP(gw, r)
		if err := gw.finish(); err != nil {
			// The response is already partially on the wire; nothing
			// to report to the client beyond aborting it.
			return
		}
	})
}

// acceptsGzip reports whether the request offers gzip. A zero qvalue
// (q=0, q=0.0, ... — RFC 9110 §12.4.2) is an explicit refusal.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, weight, ok := strings.Cut(strings.TrimSpace(part), ";")
		if !strings.EqualFold(strings.TrimSpace(enc), "gzip") {
			continue
		}
		if ok {
			if qs, found := strings.CutPrefix(strings.TrimSpace(weight), "q="); found {
				if q, err := strconv.ParseFloat(qs, 64); err == nil && q <= 0 {
					return false
				}
			}
		}
		return true
	}
	return false
}

// gzipResponseWriter buffers the response until it either exceeds
// GzipMinSize (then switches to a streaming gzip writer) or completes
// small (then flushes the buffer uncompressed). Headers are withheld
// until the choice is made, because the choice decides
// Content-Encoding.
type gzipResponseWriter struct {
	rw   http.ResponseWriter
	code int

	buf     []byte
	started bool // headers sent; buf already flushed or handed to gz
	gz      *gzip.Writer
}

// Header implements http.ResponseWriter.
func (g *gzipResponseWriter) Header() http.Header { return g.rw.Header() }

// WriteHeader implements http.ResponseWriter; the status is held back
// with the body prefix until the compression decision is made.
func (g *gzipResponseWriter) WriteHeader(code int) {
	if !g.started {
		g.code = code
	}
}

// Write implements http.ResponseWriter.
func (g *gzipResponseWriter) Write(p []byte) (int, error) {
	if g.started {
		if g.gz != nil {
			return g.gz.Write(p)
		}
		return g.rw.Write(p)
	}
	g.buf = append(g.buf, p...)
	if len(g.buf) >= GzipMinSize {
		if err := g.start(true, false); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// start sends the headers and the buffered prefix, compressed or not.
// complete marks the buffered prefix as the entire body (the
// small-body path from finish); only then may an identity response
// claim a Content-Length — a mid-stream identity start (a handler that
// set its own Content-Encoding crossing the threshold) has more bytes
// coming.
func (g *gzipResponseWriter) start(compress, complete bool) error {
	g.started = true
	// A handler that already encoded its body keeps its encoding.
	if g.rw.Header().Get("Content-Encoding") != "" {
		compress = false
	}
	if compress {
		g.rw.Header().Set("Content-Encoding", "gzip")
		g.rw.Header().Del("Content-Length") // length of the plain body, now wrong
		g.rw.WriteHeader(g.code)
		g.gz = gzip.NewWriter(g.rw)
		_, err := g.gz.Write(g.buf)
		g.buf = nil
		return err
	}
	if complete && g.rw.Header().Get("Content-Length") == "" {
		g.rw.Header().Set("Content-Length", strconv.Itoa(len(g.buf)))
	}
	g.rw.WriteHeader(g.code)
	_, err := g.rw.Write(g.buf)
	g.buf = nil
	return err
}

// finish flushes whatever path the response took.
func (g *gzipResponseWriter) finish() error {
	if !g.started {
		return g.start(false, true) // small body: uncompressed, complete
	}
	if g.gz != nil {
		return g.gz.Close()
	}
	return nil
}
