package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/socialnet"
)

// fraudWorld: one honeypot with a burst-bot pair and an organic liker,
// one ambient page keeping a bystander un-enrolled.
func fraudWorld(t *testing.T) (*socialnet.Store, socialnet.PageID, socialnet.UserID, socialnet.UserID) {
	t.Helper()
	st := socialnet.NewStore()
	hp, err := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	amb, err := st.AddPage(socialnet.Page{Name: "amb"})
	if err != nil {
		t.Fatal(err)
	}
	botA := st.AddUser(socialnet.User{Country: "TR", Kind: socialnet.KindFarmBot})
	botB := st.AddUser(socialnet.User{Country: "TR", Kind: socialnet.KindFarmBot})
	if err := st.Friend(botA, botB); err != nil {
		t.Fatal(err)
	}
	for i, b := range []socialnet.UserID{botA, botB} {
		likes := make([]socialnet.Like, 0, 40)
		for j := 0; j < 40; j++ {
			p, err := st.AddPage(socialnet.Page{Name: fmt.Sprintf("job%d-%d", i, j)})
			if err != nil {
				t.Fatal(err)
			}
			likes = append(likes, socialnet.Like{Page: p, At: t0.Add(time.Duration(j) * time.Minute)})
		}
		if err := st.AddHistory(b, likes); err != nil {
			t.Fatal(err)
		}
		if err := st.AddLike(b, hp, t0.Add(40*time.Minute+time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	organic := st.AddUser(socialnet.User{Country: "US", FriendsPublic: true, DeclaredFriends: 300})
	if err := st.AddLike(organic, hp, t0.Add(300*time.Hour)); err != nil {
		t.Fatal(err)
	}
	bystander := st.AddUser(socialnet.User{Country: "US"})
	if err := st.AddLike(bystander, amb, t0); err != nil {
		t.Fatal(err)
	}
	return st, hp, botA, bystander
}

func adminGet(t *testing.T, url string, out any) int {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("X-Admin-Token", "sekrit")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestFraudEndpoints(t *testing.T) {
	st, hp, bot, bystander := fraudWorld(t)
	server := NewServer(st, "sekrit")
	server.SetFraudScorer(detect.NewStreamScorer(st, detect.StreamScorerConfig{}))
	srv := httptest.NewServer(server)
	defer srv.Close()

	// Admin gate on all three endpoints.
	for _, path := range []string{
		fmt.Sprintf("/api/page/%d/fraud", hp),
		fmt.Sprintf("/api/user/%d/fraud", bot),
		"/api/fraud",
	} {
		if code := getJSON(t, srv.URL+path, nil); code != 401 {
			t.Fatalf("GET %s without token = %d, want 401", path, code)
		}
	}

	var page PageFraudDoc
	if code := adminGet(t, fmt.Sprintf("%s/api/page/%d/fraud", srv.URL, hp), &page); code != 200 {
		t.Fatalf("page fraud status = %d", code)
	}
	if page.Likers != 3 || len(page.Verdicts) != 3 {
		t.Fatalf("page fraud = %+v", page)
	}
	if page.HighRisk != 2 {
		t.Fatalf("high risk = %d, want the 2 burst bots", page.HighRisk)
	}
	for i := 1; i < len(page.Verdicts); i++ {
		if page.Verdicts[i-1].User >= page.Verdicts[i].User {
			t.Fatal("verdicts not sorted by user")
		}
	}

	var v FraudVerdictDoc
	if code := adminGet(t, fmt.Sprintf("%s/api/user/%d/fraud", srv.URL, bot), &v); code != 200 {
		t.Fatalf("user fraud status = %d", code)
	}
	if v.User != int64(bot) || v.MaxIn2h < 40 || v.Score < HighRiskScore || v.IslandSize != 2 {
		t.Fatalf("bot verdict = %+v", v)
	}

	// Likes arriving after the scorer was built are picked up by the
	// request-time tick.
	late := st.AddUser(socialnet.User{Country: "US"})
	if err := st.AddLike(late, hp, t0.Add(400*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if code := adminGet(t, fmt.Sprintf("%s/api/user/%d/fraud", srv.URL, late), &v); code != 200 {
		t.Fatalf("late liker fraud status = %d", code)
	}

	// Not enrolled / unknown / untracked: 404s.
	if code := adminGet(t, fmt.Sprintf("%s/api/user/%d/fraud", srv.URL, bystander), nil); code != 404 {
		t.Fatalf("bystander fraud = %d, want 404", code)
	}
	if code := adminGet(t, srv.URL+"/api/user/999999/fraud", nil); code != 404 {
		t.Fatalf("unknown user fraud = %d, want 404", code)
	}
	if code := adminGet(t, srv.URL+"/api/page/999999/fraud", nil); code != 404 {
		t.Fatalf("unknown page fraud = %d, want 404", code)
	}
}

func TestFraudWithoutScorer(t *testing.T) {
	st, hp, _, _ := fraudWorld(t)
	srv := httptest.NewServer(NewServer(st, "sekrit"))
	defer srv.Close()
	if code := adminGet(t, fmt.Sprintf("%s/api/page/%d/fraud", srv.URL, hp), nil); code != 503 {
		t.Fatalf("fraud without scorer = %d, want 503", code)
	}
}

// TestBatchFraudReportMatchesLive pins the CI equivalence contract in
// process: the batch report bytes equal the live endpoint's bytes.
func TestBatchFraudReportMatchesLive(t *testing.T) {
	st, _, _, _ := fraudWorld(t)
	server := NewServer(st, "sekrit")
	server.SetFraudScorer(detect.NewStreamScorer(st, detect.StreamScorerConfig{}))
	srv := httptest.NewServer(server)
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/api/fraud", nil)
	req.Header.Set("X-Admin-Token", "sekrit")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var live bytes.Buffer
	if _, err := live.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}

	batch, err := BatchFraudReport(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	if !bytes.Equal(live.Bytes(), raw) {
		t.Fatalf("live and batch fraud reports differ:\nlive:  %s\nbatch: %s", live.Bytes(), raw)
	}
}
