package api

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/socialnet"
)

// durableLeader builds a small durable world and serves it.
func durableLeader(t *testing.T) (*httptest.Server, *socialnet.Store) {
	t.Helper()
	dir := t.TempDir()
	st := socialnet.NewShardedStore(4)
	var users []socialnet.UserID
	for i := 0; i < 6; i++ {
		users = append(users, st.AddUser(socialnet.User{Country: "USA", Searchable: true}))
	}
	page, err := st.AddPage(socialnet.Page{Name: "Honeypot", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	st, _, err = socialnet.OpenDurable(dir, socialnet.WALOptions{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for i, u := range users {
		if err := st.AddLike(u, page, t0.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(st, "sekrit"))
	t.Cleanup(srv.Close)
	return srv, st
}

// TestReplSourceRoundTrip: the HTTP source returns exactly what the
// store's replication surface serves — manifest, snapshot bytes, and
// segment frames — and a follower opened over it converges.
func TestReplSourceRoundTrip(t *testing.T) {
	srv, st := durableLeader(t)
	src := NewReplHTTPSource(srv.URL, "sekrit", nil)
	ctx := context.Background()

	m, err := src.Manifest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.ReplManifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != want.Seq || m.Snapshot != want.Snapshot || m.WALShards != want.WALShards {
		t.Fatalf("manifest over HTTP differs: %+v vs %+v", m, want)
	}

	for sh := 0; sh < m.WALShards; sh++ {
		got, err := src.Segments(ctx, sh, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := st.ReplSegments(sh, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, direct) {
			t.Fatalf("shard %d segment bytes differ over HTTP: %d vs %d bytes", sh, len(got), len(direct))
		}
	}

	// A follower bootstrapped and tailed entirely over HTTP matches the
	// leader's canonical stream.
	fw, _, err := socialnet.OpenFollower(ctx, t.TempDir(), src, socialnet.FollowerOptions{WAL: socialnet.WALOptions{SyncInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	if _, err := fw.Poll(ctx); err != nil {
		t.Fatal(err)
	}
	a := st.Journal().EventsCanonical(1)
	b := fw.Store().Journal().EventsCanonical(1)
	if len(a) != len(b) {
		t.Fatalf("follower over HTTP has %d events, leader %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs over HTTP", i)
		}
	}
}

// TestReplEndpointsRequireAdmin: all three routes refuse without the
// admin token — replication ships raw private state.
func TestReplEndpointsRequireAdmin(t *testing.T) {
	srv, _ := durableLeader(t)
	for _, path := range []string{
		"/api/repl/manifest",
		"/api/repl/snapshot/anything",
		"/api/repl/segments?shard=0&from=0",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("%s without token: status %d, want 401", path, resp.StatusCode)
		}
	}
}

// TestReplRequiresDurableStore: an in-memory server has no segment
// chain to ship — 503, not a panic or an empty stream.
func TestReplRequiresDurableStore(t *testing.T) {
	srv, _, _, _, _ := testServer(t)
	src := NewReplHTTPSource(srv.URL, "sekrit", nil)
	if _, err := src.Manifest(context.Background()); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("manifest on in-memory store: err %v, want 503", err)
	}
}

// TestReadOnlyReplicaRejectsWrites: a follower-backed server refuses
// POSTs with 403 even with a valid admin token.
func TestReadOnlyReplicaRejectsWrites(t *testing.T) {
	srv, _, page, pub, _ := testServer(t)
	s := srv.Config.Handler.(*Server)
	s.SetReadOnly(true)
	req, _ := http.NewRequest(http.MethodPost,
		srv.URL+"/api/page/"+strconv.FormatInt(int64(page), 10)+"/likes",
		strings.NewReader(`{"user": `+strconv.FormatInt(int64(pub), 10)+`}`))
	req.Header.Set("X-Admin-Token", "sekrit")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("write on read-only replica: status %d, want 403", resp.StatusCode)
	}
}

// TestReplOffsetsHeader: once installed, every response carries the
// X-Repl-Offsets staleness header.
func TestReplOffsetsHeader(t *testing.T) {
	srv, st := durableLeader(t)
	s := srv.Config.Handler.(*Server)
	s.SetReplOffsets(func() []uint64 { return st.ReplOffsets(nil) })
	resp, err := http.Get(srv.URL + "/api/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	h := resp.Header.Get("X-Repl-Offsets")
	if h == "" {
		t.Fatal("X-Repl-Offsets header missing")
	}
	parts := strings.Split(h, ",")
	offs := st.ReplOffsets(nil)
	if len(parts) != len(offs) {
		t.Fatalf("header has %d offsets, store has %d", len(parts), len(offs))
	}
	for i, p := range parts {
		if p != strconv.FormatUint(offs[i], 10) {
			t.Fatalf("header offset %d = %q, store %d", i, p, offs[i])
		}
	}
}
