package api

import (
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Throttle wraps a handler with a token-bucket rate limit, returning
// 429 Too Many Requests (with a Retry-After hint) when the bucket is
// empty. The real platform throttled aggressive crawlers the same way;
// wrapping the API with Throttle exercises the crawler's politeness and
// retry machinery under contention.
func Throttle(next http.Handler, ratePerSec float64, burst int) http.Handler {
	if ratePerSec <= 0 || burst < 1 {
		return next
	}
	tb := &tokenBucket{
		rate:   ratePerSec,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wait, ok := tb.take(); !ok {
			secs := int(wait/time.Second) + 1
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, "rate limited")
			return
		}
		next.ServeHTTP(w, r)
	})
}

type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// take consumes one token; when empty it reports how long until the
// next token accrues.
func (b *tokenBucket) take() (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	deficit := 1 - b.tokens
	return time.Duration(deficit / b.rate * float64(time.Second)), false
}
