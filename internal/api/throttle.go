package api

import (
	"container/list"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Throttle wraps a handler with a token-bucket rate limit, returning
// 429 Too Many Requests (with a Retry-After hint) when the bucket is
// empty. The real platform throttled aggressive crawlers the same way;
// wrapping the API with Throttle exercises the crawler's politeness and
// retry machinery under contention.
func Throttle(next http.Handler, ratePerSec float64, burst int) http.Handler {
	if ratePerSec <= 0 || burst < 1 {
		return next
	}
	tb := &tokenBucket{
		rate:   ratePerSec,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wait, ok := tb.take(); !ok {
			secs := int(wait/time.Second) + 1
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, "rate limited")
			return
		}
		next.ServeHTTP(w, r)
	})
}

type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// take consumes one token; when empty it reports how long until the
// next token accrues.
func (b *tokenBucket) take() (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.takeLocked(time.Now())
}

func (b *tokenBucket) takeLocked(now time.Time) (time.Duration, bool) {
	return refillTake(&b.tokens, &b.last, now, b.rate, b.burst)
}

// refillTake is the one token-bucket step both the global and the
// per-client limiters share: refill by elapsed time, clamp to burst,
// consume one token or report the wait until the next one accrues.
func refillTake(tokens *float64, last *time.Time, now time.Time, rate, burst float64) (time.Duration, bool) {
	*tokens += now.Sub(*last).Seconds() * rate
	if *tokens > burst {
		*tokens = burst
	}
	*last = now
	if *tokens >= 1 {
		*tokens--
		return 0, true
	}
	deficit := 1 - *tokens
	return time.Duration(deficit / rate * float64(time.Second)), false
}

// ThrottleConfig tunes PerClientThrottle.
type ThrottleConfig struct {
	// PerClientRPS / PerClientBurst bound each client identity (API
	// token when presented, remote address otherwise). <= 0 disables the
	// per-client layer.
	PerClientRPS   float64
	PerClientBurst int
	// GlobalRPS / GlobalBurst is the server-wide ceiling applied after
	// the per-client check, so a fleet of polite clients still cannot
	// overrun the backend in aggregate. <= 0 disables the ceiling.
	GlobalRPS   float64
	GlobalBurst int
	// MaxClients bounds the per-client bucket table (LRU eviction).
	// 0 means DefaultMaxClients. An identity admitted while the table
	// is at capacity — which includes every evicted-and-returning one —
	// starts with an EMPTY bucket and earns tokens at the refill rate
	// only; see clientBuckets.take for why.
	MaxClients int
}

// DefaultMaxClients bounds the per-client bucket table.
const DefaultMaxClients = 4096

// ClientTokenHeader identifies a crawler across connections; absent,
// the remote address is the client identity.
const ClientTokenHeader = "X-API-Token"

// PerClientThrottle wraps a handler with per-client token buckets plus
// a global ceiling, returning 429 (with a Retry-After hint) when either
// is empty. The global Throttle let one greedy crawler starve every
// polite one — the 429s land on whoever arrives next, not on the
// offender; keying buckets by client identity makes each crawler spend
// only its own budget. Identity is the X-API-Token header when the
// client presents one (a crawler's politeness identity, stable across
// pooled connections), else the remote host. The bucket table is
// LRU-bounded so an address-spraying client costs bounded memory, and
// identities admitted at capacity start with empty buckets so the
// spray cannot launder fresh bursts through eviction.
func PerClientThrottle(next http.Handler, cfg ThrottleConfig) http.Handler {
	if cfg.PerClientRPS <= 0 && cfg.GlobalRPS <= 0 {
		return next
	}
	if cfg.PerClientBurst < 1 {
		cfg.PerClientBurst = int(cfg.PerClientRPS) + 1
	}
	if cfg.GlobalBurst < 1 {
		cfg.GlobalBurst = int(cfg.GlobalRPS) + 1
	}
	if cfg.MaxClients < 1 {
		cfg.MaxClients = DefaultMaxClients
	}
	var global *tokenBucket
	if cfg.GlobalRPS > 0 {
		global = &tokenBucket{
			rate: cfg.GlobalRPS, burst: float64(cfg.GlobalBurst),
			tokens: float64(cfg.GlobalBurst), last: time.Now(),
		}
	}
	var clients *clientBuckets
	if cfg.PerClientRPS > 0 {
		clients = newClientBuckets(cfg.PerClientRPS, float64(cfg.PerClientBurst), cfg.MaxClients)
	}
	reject := func(w http.ResponseWriter, wait time.Duration) {
		secs := int(wait/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, "rate limited")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Per-client first: a starved client's 429 must name its own
		// refill time, and its request must not drain the global bucket.
		if clients != nil {
			if wait, ok := clients.take(clientKey(r)); !ok {
				reject(w, wait)
				return
			}
		}
		if global != nil {
			if wait, ok := global.take(); !ok {
				reject(w, wait)
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// clientKey derives the throttle identity for a request.
func clientKey(r *http.Request) string {
	if tok := r.Header.Get(ClientTokenHeader); tok != "" {
		return "t:" + tok
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "a:" + r.RemoteAddr
	}
	return "a:" + host
}

// clientBuckets is an LRU-bounded table of per-identity token buckets.
type clientBuckets struct {
	rate  float64
	burst float64
	max   int

	mu    sync.Mutex
	order *list.List // front = most recently used; values are *clientEntry
	byKey map[string]*list.Element
}

type clientEntry struct {
	key    string
	tokens float64
	last   time.Time
}

func newClientBuckets(rate, burst float64, max int) *clientBuckets {
	return &clientBuckets{
		rate: rate, burst: burst, max: max,
		order: list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// take consumes one token from the key's bucket, creating (and, at
// capacity, evicting the least recently used) as needed.
//
// Admission policy: while the table has free capacity, a new identity
// gets the full burst — the honest-startup case. Once the table is at
// capacity (every admission evicts someone), a new identity starts
// EMPTY and earns tokens at the refill rate only. Eviction forgets a
// bucket's spent state, so a full-burst re-admission would let an
// address-spraying client cycle identities through the LRU and launder
// a fresh burst per lap — unbounded throughput from bounded memory.
// Starting empty closes that: a lap through the table now yields
// nothing beyond the refill rate the identity would have earned by
// waiting. The cost is that a genuinely new client arriving at a hot
// table sees a 429 with a one-token Retry-After before its first
// success; that is the documented price of bounded memory, paid by
// exactly the clients that arrive during an identity flood.
func (c *clientBuckets) take(key string) (time.Duration, bool) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		tokens := c.burst
		if c.order.Len() >= c.max {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.byKey, oldest.Value.(*clientEntry).key)
			tokens = 0
		}
		el = c.order.PushFront(&clientEntry{key: key, tokens: tokens, last: now})
		c.byKey[key] = el
	} else {
		c.order.MoveToFront(el)
	}
	e := el.Value.(*clientEntry)
	return refillTake(&e.tokens, &e.last, now, c.rate, c.burst)
}
