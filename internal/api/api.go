// Package api exposes the simulated platform over HTTP, standing in for
// the web surface the paper's Selenium crawler scraped (§3): page views
// with like counts and like streams, public profiles, friend lists
// gated by the owner's privacy setting, public page-like lists, the
// searchable directory, and the page-admin aggregate report (gated by an
// admin token, as the real report tool was gated by page ownership).
//
// The same admin token gates the platform's internal enforcement view —
// the §5 fraud detector's live verdicts, backed by a
// detect.StreamScorer attached via SetFraudScorer (503 until then):
//
//	GET /api/page/{id}/fraud  per-liker verdicts + page aggregates
//	                          (likers, high-risk count, mean score)
//	GET /api/user/{id}/fraud  one enrolled account's verdict (404 if
//	                          the account never liked a tracked page)
//	GET /api/fraud            the all-tracked-pages report, pages
//	                          ascending — byte-identical to
//	                          BatchFraudReport over the same world
//
// Each request ticks the scorer first, so verdicts reflect the journal
// tail at request time. See DESIGN.md §14.
package api

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/platform"
	"repro/internal/socialnet"
)

// Server serves the world over HTTP.
type Server struct {
	store *socialnet.Store
	// AdminToken gates /api/admin endpoints.
	adminToken string
	mux        *http.ServeMux
	// handler is the mux behind the server-wide middleware (gzip).
	handler http.Handler
	// scorer, when attached via SetFraudScorer, backs the admin-gated
	// /fraud endpoints with live streaming verdicts.
	scorerMu sync.RWMutex
	scorer   *detect.StreamScorer
	// readOnly rejects writes with 403 — the replica stance: reads are
	// local, writes belong to the leader.
	readOnly atomic.Bool
	// replOffsets, when set, supplies the per-shard applied offsets
	// stamped on every response as X-Repl-Offsets — the staleness
	// signal a client can compare across leader and replicas.
	replOffsets atomic.Value // func() []uint64
	// health, when set non-empty via SetHealthError, flips
	// /api/healthz to 503 with the reason — how a replica whose
	// replication tail died tells load balancers to eject it instead
	// of letting it serve ever-staler reads.
	health atomic.Value // string
}

// MaxPageSize caps pagination limits.
const MaxPageSize = 500

// NewServer builds the HTTP front-end. adminToken may be empty to
// disable admin endpoints entirely.
func NewServer(st *socialnet.Store, adminToken string) *Server {
	s := &Server{store: st, adminToken: adminToken, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/page/{id}", s.handlePage)
	s.mux.HandleFunc("GET /api/page/{id}/likes", s.handlePageLikes)
	s.mux.HandleFunc("POST /api/page/{id}/likes", s.handlePostLike)
	s.mux.HandleFunc("GET /api/user/{id}", s.handleUser)
	s.mux.HandleFunc("GET /api/users", s.handleUsersBatch)
	s.mux.HandleFunc("GET /api/user/{id}/friends", s.handleUserFriends)
	s.mux.HandleFunc("GET /api/user/{id}/likes", s.handleUserLikes)
	s.mux.HandleFunc("GET /api/directory", s.handleDirectory)
	s.mux.HandleFunc("GET /api/admin/report/{id}", s.handleAdminReport)
	s.mux.HandleFunc("GET /api/page/{id}/fraud", s.handlePageFraud)
	s.mux.HandleFunc("GET /api/user/{id}/fraud", s.handleUserFraud)
	s.mux.HandleFunc("GET /api/fraud", s.handleFraudReport)
	s.mux.HandleFunc("GET /api/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /api/repl/manifest", s.handleReplManifest)
	s.mux.HandleFunc("GET /api/repl/snapshot/{name}", s.handleReplSnapshot)
	s.mux.HandleFunc("GET /api/repl/segments", s.handleReplSegments)
	// Response compression is part of the server, not an opt-in wrapper:
	// every deployment (honeypotd, self-served crawls, tests) negotiates
	// it the same way.
	s.handler = Gzip(s.mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if fn, ok := s.replOffsets.Load().(func() []uint64); ok && fn != nil {
		offs := fn()
		var b strings.Builder
		for i, o := range offs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatUint(o, 10))
		}
		w.Header().Set("X-Repl-Offsets", b.String())
	}
	s.handler.ServeHTTP(w, r)
}

// SetReadOnly makes the server reject writes with 403 — the stance a
// read replica serves in: every GET is answered from local state,
// every write belongs to the leader.
func (s *Server) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// handleHealthz answers 200 while the process is serving normally and
// 503 with the recorded reason after SetHealthError — the signal a
// load balancer or client uses to stop routing to a dead-tailed
// replica.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if msg, ok := s.health.Load().(string); ok && msg != "" {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "failed", "error": msg})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// SetHealthError marks the server unhealthy: /api/healthz answers 503
// with the given reason until it is cleared with an empty string. The
// read API keeps serving — existing clients can still drain — but
// health-checked traffic moves away.
func (s *Server) SetHealthError(msg string) { s.health.Store(msg) }

// SetReplOffsets installs the offsets source stamped on responses as
// X-Repl-Offsets (comma-separated decimals, one per WAL shard). On a
// leader this is Store.ReplOffsets (the fsync horizon); on a follower,
// FollowerStore.Offsets (the applied horizon). A client comparing the
// two headers reads the replica's staleness directly in records.
func (s *Server) SetReplOffsets(fn func() []uint64) { s.replOffsets.Store(fn) }

// ---- wire types ----

// PageDoc is the public page view.
type PageDoc struct {
	ID          int64  `json:"id"`
	Name        string `json:"name"`
	Description string `json:"description"`
	Category    string `json:"category"`
	Honeypot    bool   `json:"honeypot"`
	LikeCount   int    `json:"like_count"`
}

// LikeDoc is one like event.
type LikeDoc struct {
	User int64 `json:"user"`
	// At is RFC3339 with nanoseconds when the instant has them: the
	// crawl-side window analyses must see the exact instants the
	// journal holds, and whole-second truncation would shift events
	// across 2-hour window boundaries.
	At string `json:"at"`
}

// PageLikesDoc is a page's like stream (paginated).
//
// Two paging modes exist. Offset mode (`offset=`) windows the
// time-sorted view; it is only stable over a quiescent page — a like
// landing mid-crawl with an earlier timestamp shifts every later
// offset, duplicating or dropping likers — so it is documented as
// snapshot-only. Cursor mode (`cursor=`) windows the append-only
// stream: Cursor echoes the request and NextCursor resumes after the
// last returned event, exactly once per event even under live writes.
// Offset-mode responses carry Cursor = NextCursor = -1.
type PageLikesDoc struct {
	Total      int       `json:"total"`
	Offset     int       `json:"offset"`
	Cursor     int       `json:"cursor"`
	NextCursor int       `json:"next_cursor"`
	Likes      []LikeDoc `json:"likes"`
}

// UserDoc is the public profile view.
type UserDoc struct {
	ID              int64  `json:"id"`
	Gender          string `json:"gender"`
	Age             string `json:"age"`
	Country         string `json:"country"`
	HomeTown        string `json:"home_town"`
	CurrentTown     string `json:"current_town"`
	FriendsPublic   bool   `json:"friends_public"`
	DeclaredFriends int    `json:"declared_friends"`
	Status          string `json:"status"`
}

// UserFriendsDoc is a (public) friend list page.
//
// Cursor mode (`cursor=`) is keyset pagination over the ID-sorted
// list: Cursor echoes the request (the smallest friend ID the window
// may contain) and NextCursor resumes after the last returned friend —
// entries present when pagination began are delivered exactly once
// even if edges are inserted mid-crawl. Offset mode windows the sorted
// list positionally and is stable only over a quiescent graph
// (snapshot-only); offset responses carry Cursor = NextCursor = -1.
type UserFriendsDoc struct {
	Total      int     `json:"total"`
	Offset     int     `json:"offset"`
	Cursor     int64   `json:"cursor"`
	NextCursor int64   `json:"next_cursor"`
	Friends    []int64 `json:"friends"`
}

// UserLikesDoc is a user's page-like list page.
//
// Cursor mode windows the user's append-only like stream exactly like
// PageLikesDoc windows a page's: NextCursor resumes after the last
// returned like, and a like (or bulk history import) landing mid-crawl
// only ever extends the tail. Offset mode windows the time-sorted view
// and is snapshot-only; offset responses carry Cursor = NextCursor = -1.
type UserLikesDoc struct {
	Total      int     `json:"total"`
	Offset     int     `json:"offset"`
	Cursor     int     `json:"cursor"`
	NextCursor int     `json:"next_cursor"`
	Pages      []int64 `json:"pages"`
}

// UsersDoc is the batched-profile response: the profiles of the
// requested IDs that exist, in request order. Unknown IDs are skipped
// (a profile deleted mid-crawl is not an error), so callers diff the
// response against the request to detect missing users.
type UsersDoc struct {
	Users []UserDoc `json:"users"`
}

// DirectoryDoc is a slice of the searchable directory.
type DirectoryDoc struct {
	Total  int     `json:"total"`
	Offset int     `json:"offset"`
	Users  []int64 `json:"users"`
}

// ReportDoc is the admin aggregate report.
type ReportDoc struct {
	Page          int64          `json:"page"`
	TotalLikes    int            `json:"total_likes"`
	GenderCounts  map[string]int `json:"gender_counts"`
	AgeCounts     map[string]int `json:"age_counts"`
	CountryCounts map[string]int `json:"country_counts"`
}

// ErrorDoc carries API errors.
type ErrorDoc struct {
	Error string `json:"error"`
}

// ---- handlers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorDoc{Error: fmt.Sprintf(format, args...)})
}

func pathID(r *http.Request) (int64, error) {
	return strconv.ParseInt(r.PathValue("id"), 10, 64)
}

func limitParam(r *http.Request) (int, error) {
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		var err error
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 1 {
			return 0, errors.New("bad limit")
		}
	}
	if limit > MaxPageSize {
		limit = MaxPageSize
	}
	return limit, nil
}

func paging(r *http.Request) (offset, limit int, err error) {
	if v := r.URL.Query().Get("offset"); v != "" {
		offset, err = strconv.Atoi(v)
		if err != nil || offset < 0 {
			return 0, 0, errors.New("bad offset")
		}
	}
	limit, err = limitParam(r)
	if err != nil {
		return 0, 0, err
	}
	return offset, limit, nil
}

func window[T any](xs []T, offset, limit int) []T {
	if offset >= len(xs) {
		return nil
	}
	end := offset + limit
	if end > len(xs) {
		end = len(xs)
	}
	return xs[offset:end]
}

func (s *Server) handlePage(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad page id")
		return
	}
	p, err := s.store.Page(socialnet.PageID(id))
	if err != nil {
		writeError(w, http.StatusNotFound, "no such page")
		return
	}
	writeJSON(w, http.StatusOK, PageDoc{
		ID: int64(p.ID), Name: p.Name, Description: p.Description,
		Category: p.Category, Honeypot: p.Honeypot,
		LikeCount: s.store.LikeCountOfPage(p.ID),
	})
}

func (s *Server) handlePageLikes(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad page id")
		return
	}
	if _, err := s.store.Page(socialnet.PageID(id)); err != nil {
		writeError(w, http.StatusNotFound, "no such page")
		return
	}
	q := r.URL.Query()
	if v := q.Get("cursor"); v != "" {
		if q.Get("offset") != "" {
			writeError(w, http.StatusBadRequest, "cursor and offset are mutually exclusive")
			return
		}
		cursor, err := strconv.Atoi(v)
		if err != nil || cursor < 0 {
			writeError(w, http.StatusBadRequest, "bad cursor")
			return
		}
		limit, err := limitParam(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		evs, next := s.store.PageEventsPage(socialnet.PageID(id), cursor, limit)
		doc := PageLikesDoc{
			Total:  s.store.LikeCountOfPage(socialnet.PageID(id)),
			Offset: -1, Cursor: cursor, NextCursor: next,
			Likes: make([]LikeDoc, 0, len(evs)),
		}
		for _, ev := range evs {
			doc.Likes = append(doc.Likes, LikeDoc{User: int64(ev.User), At: ev.At.Format(time.RFC3339Nano)})
		}
		writeJSON(w, http.StatusOK, doc)
		return
	}
	offset, limit, err := paging(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	likes := s.store.LikesOfPage(socialnet.PageID(id))
	doc := PageLikesDoc{Total: len(likes), Offset: offset, Cursor: -1, NextCursor: -1, Likes: []LikeDoc{}}
	for _, lk := range window(likes, offset, limit) {
		doc.Likes = append(doc.Likes, LikeDoc{User: int64(lk.User), At: lk.At.Format(time.RFC3339Nano)})
	}
	writeJSON(w, http.StatusOK, doc)
}

// LikeRequest is the POST /api/page/{id}/likes body: inject one like
// into the live world. At is optional RFC3339 (default: server time).
type LikeRequest struct {
	User int64  `json:"user"`
	At   string `json:"at,omitempty"`
}

// handlePostLike records a like against a served world. This is the
// simulation-control surface (there is no organic user session to act
// through), so it sits behind the admin token like the report tool;
// the crash-recovery smoke test drives it to prove injected likes
// survive a SIGKILL via the durable journal.
func (s *Server) handlePostLike(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(r) {
		writeError(w, http.StatusUnauthorized, "admin token required")
		return
	}
	if s.readOnly.Load() {
		writeError(w, http.StatusForbidden, "read-only replica: writes go to the leader")
		return
	}
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad page id")
		return
	}
	var req LikeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	at := time.Now().UTC()
	if req.At != "" {
		at, err = time.Parse(time.RFC3339, req.At)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad at: %v", err)
			return
		}
		// Normalize to UTC: the WAL record format stores instants, not
		// zones, so a zoned timestamp would render differently before
		// and after a crash-recovery replay.
		at = at.UTC()
	}
	err = s.store.AddLike(socialnet.UserID(req.User), socialnet.PageID(id), at)
	switch {
	case errors.Is(err, socialnet.ErrNoUser), errors.Is(err, socialnet.ErrNoPage):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, socialnet.ErrDuplicateLike):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, socialnet.ErrTerminated):
		writeError(w, http.StatusForbidden, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		// The like is in the in-memory world, but a 201 also promises
		// durability when the store is disk-backed; a failed WAL write
		// or fsync (ENOSPC, EIO) must not be silently acknowledged.
		if derr := s.store.DurabilityErr(); derr != nil {
			writeError(w, http.StatusInsufficientStorage, "like accepted in memory but journal write failed: %v", derr)
			return
		}
		writeJSON(w, http.StatusCreated, LikeDoc{User: req.User, At: at.Format(time.RFC3339Nano)})
	}
}

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id")
		return
	}
	u, err := s.store.User(socialnet.UserID(id))
	if err != nil {
		writeError(w, http.StatusNotFound, "no such user")
		return
	}
	writeJSON(w, http.StatusOK, s.userDoc(u))
}

func (s *Server) userDoc(u socialnet.User) UserDoc {
	return UserDoc{
		ID: int64(u.ID), Gender: u.Gender.String(), Age: u.Age.String(),
		Country: u.Country, HomeTown: u.HomeTown, CurrentTown: u.CurrentTown,
		FriendsPublic:   u.FriendsPublic,
		DeclaredFriends: s.store.DeclaredFriendCount(u.ID),
		Status:          u.Status.String(),
	}
}

// handleUsersBatch serves GET /api/users?ids=1,2,3 — up to MaxPageSize
// public profiles in one round trip, for crawlers that would otherwise
// pay one request per liker.
func (s *Server) handleUsersBatch(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("ids")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing ids")
		return
	}
	parts := strings.Split(raw, ",")
	if len(parts) > MaxPageSize {
		writeError(w, http.StatusBadRequest, "too many ids (max %d)", MaxPageSize)
		return
	}
	doc := UsersDoc{Users: []UserDoc{}}
	for _, p := range parts {
		id, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad user id %q", p)
			return
		}
		u, err := s.store.User(socialnet.UserID(id))
		if err != nil {
			continue // unknown/deleted profiles are skipped, not fatal
		}
		doc.Users = append(doc.Users, s.userDoc(u))
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleUserFriends(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id")
		return
	}
	uid := socialnet.UserID(id)
	if _, err := s.store.User(uid); err != nil {
		writeError(w, http.StatusNotFound, "no such user")
		return
	}
	if !s.store.FriendsVisible(uid) {
		writeError(w, http.StatusForbidden, "friend list is private")
		return
	}
	q := r.URL.Query()
	if v := q.Get("cursor"); v != "" {
		if q.Get("offset") != "" {
			writeError(w, http.StatusBadRequest, "cursor and offset are mutually exclusive")
			return
		}
		cursor, err := strconv.ParseInt(v, 10, 64)
		if err != nil || cursor < 0 {
			writeError(w, http.StatusBadRequest, "bad cursor")
			return
		}
		limit, err := limitParam(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		friends, next := s.store.FriendsPage(uid, cursor, limit)
		doc := UserFriendsDoc{
			Total:  s.store.FriendCount(uid),
			Offset: -1, Cursor: cursor, NextCursor: next,
			Friends: make([]int64, 0, len(friends)),
		}
		for _, f := range friends {
			doc.Friends = append(doc.Friends, int64(f))
		}
		writeJSON(w, http.StatusOK, doc)
		return
	}
	offset, limit, err := paging(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	friends := s.store.FriendsOf(uid)
	doc := UserFriendsDoc{Total: len(friends), Offset: offset, Cursor: -1, NextCursor: -1, Friends: []int64{}}
	for _, f := range window(friends, offset, limit) {
		doc.Friends = append(doc.Friends, int64(f))
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleUserLikes(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id")
		return
	}
	uid := socialnet.UserID(id)
	if _, err := s.store.User(uid); err != nil {
		writeError(w, http.StatusNotFound, "no such user")
		return
	}
	q := r.URL.Query()
	if v := q.Get("cursor"); v != "" {
		if q.Get("offset") != "" {
			writeError(w, http.StatusBadRequest, "cursor and offset are mutually exclusive")
			return
		}
		cursor, err := strconv.Atoi(v)
		if err != nil || cursor < 0 {
			writeError(w, http.StatusBadRequest, "bad cursor")
			return
		}
		limit, err := limitParam(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		likes, next := s.store.UserLikesPage(uid, cursor, limit)
		doc := UserLikesDoc{
			Total:  s.store.LikeCountOfUser(uid),
			Offset: -1, Cursor: cursor, NextCursor: next,
			Pages: make([]int64, 0, len(likes)),
		}
		for _, lk := range likes {
			doc.Pages = append(doc.Pages, int64(lk.Page))
		}
		writeJSON(w, http.StatusOK, doc)
		return
	}
	offset, limit, err := paging(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	likes := s.store.LikesOfUser(uid)
	doc := UserLikesDoc{Total: len(likes), Offset: offset, Cursor: -1, NextCursor: -1, Pages: []int64{}}
	for _, lk := range window(likes, offset, limit) {
		doc.Pages = append(doc.Pages, int64(lk.Page))
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleDirectory(w http.ResponseWriter, r *http.Request) {
	offset, limit, err := paging(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	dir := s.store.Directory()
	doc := DirectoryDoc{Total: len(dir), Offset: offset, Users: []int64{}}
	for _, u := range window(dir, offset, limit) {
		doc.Users = append(doc.Users, int64(u))
	}
	writeJSON(w, http.StatusOK, doc)
}

// adminAuthorized gates the admin surface. Constant-time compare: a
// byte-wise early-exit comparison would let a crawler recover the
// token one byte at a time from timing.
func (s *Server) adminAuthorized(r *http.Request) bool {
	got := []byte(r.Header.Get("X-Admin-Token"))
	return s.adminToken != "" && subtle.ConstantTimeCompare(got, []byte(s.adminToken)) == 1
}

func (s *Server) handleAdminReport(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(r) {
		writeError(w, http.StatusUnauthorized, "admin token required")
		return
	}
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad page id")
		return
	}
	rep, err := platform.ReportFor(s.store, socialnet.PageID(id))
	if err != nil {
		writeError(w, http.StatusNotFound, "no such page")
		return
	}
	doc := ReportDoc{
		Page: int64(rep.Page), TotalLikes: rep.TotalLikes,
		GenderCounts:  rep.GenderCounts,
		AgeCounts:     map[string]int{},
		CountryCounts: rep.CountryCounts,
	}
	for i, n := range rep.AgeCounts {
		doc.AgeCounts[socialnet.AgeBracket(i).String()] = n
	}
	writeJSON(w, http.StatusOK, doc)
}
