// Package api exposes the simulated platform over HTTP, standing in for
// the web surface the paper's Selenium crawler scraped (§3): page views
// with like counts and like streams, public profiles, friend lists
// gated by the owner's privacy setting, public page-like lists, the
// searchable directory, and the page-admin aggregate report (gated by an
// admin token, as the real report tool was gated by page ownership).
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/platform"
	"repro/internal/socialnet"
)

// Server serves the world over HTTP.
type Server struct {
	store *socialnet.Store
	// AdminToken gates /api/admin endpoints.
	adminToken string
	mux        *http.ServeMux
}

// MaxPageSize caps pagination limits.
const MaxPageSize = 500

// NewServer builds the HTTP front-end. adminToken may be empty to
// disable admin endpoints entirely.
func NewServer(st *socialnet.Store, adminToken string) *Server {
	s := &Server{store: st, adminToken: adminToken, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/page/{id}", s.handlePage)
	s.mux.HandleFunc("GET /api/page/{id}/likes", s.handlePageLikes)
	s.mux.HandleFunc("GET /api/user/{id}", s.handleUser)
	s.mux.HandleFunc("GET /api/user/{id}/friends", s.handleUserFriends)
	s.mux.HandleFunc("GET /api/user/{id}/likes", s.handleUserLikes)
	s.mux.HandleFunc("GET /api/directory", s.handleDirectory)
	s.mux.HandleFunc("GET /api/admin/report/{id}", s.handleAdminReport)
	s.mux.HandleFunc("GET /api/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---- wire types ----

// PageDoc is the public page view.
type PageDoc struct {
	ID          int64  `json:"id"`
	Name        string `json:"name"`
	Description string `json:"description"`
	Category    string `json:"category"`
	Honeypot    bool   `json:"honeypot"`
	LikeCount   int    `json:"like_count"`
}

// LikeDoc is one like event.
type LikeDoc struct {
	User int64  `json:"user"`
	At   string `json:"at"` // RFC3339
}

// PageLikesDoc is a page's like stream (paginated).
type PageLikesDoc struct {
	Total  int       `json:"total"`
	Offset int       `json:"offset"`
	Likes  []LikeDoc `json:"likes"`
}

// UserDoc is the public profile view.
type UserDoc struct {
	ID              int64  `json:"id"`
	Gender          string `json:"gender"`
	Age             string `json:"age"`
	Country         string `json:"country"`
	HomeTown        string `json:"home_town"`
	CurrentTown     string `json:"current_town"`
	FriendsPublic   bool   `json:"friends_public"`
	DeclaredFriends int    `json:"declared_friends"`
	Status          string `json:"status"`
}

// UserFriendsDoc is a (public) friend list page.
type UserFriendsDoc struct {
	Total   int     `json:"total"`
	Offset  int     `json:"offset"`
	Friends []int64 `json:"friends"`
}

// UserLikesDoc is a user's page-like list page.
type UserLikesDoc struct {
	Total  int     `json:"total"`
	Offset int     `json:"offset"`
	Pages  []int64 `json:"pages"`
}

// DirectoryDoc is a slice of the searchable directory.
type DirectoryDoc struct {
	Total  int     `json:"total"`
	Offset int     `json:"offset"`
	Users  []int64 `json:"users"`
}

// ReportDoc is the admin aggregate report.
type ReportDoc struct {
	Page          int64          `json:"page"`
	TotalLikes    int            `json:"total_likes"`
	GenderCounts  map[string]int `json:"gender_counts"`
	AgeCounts     map[string]int `json:"age_counts"`
	CountryCounts map[string]int `json:"country_counts"`
}

// ErrorDoc carries API errors.
type ErrorDoc struct {
	Error string `json:"error"`
}

// ---- handlers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorDoc{Error: fmt.Sprintf(format, args...)})
}

func pathID(r *http.Request) (int64, error) {
	return strconv.ParseInt(r.PathValue("id"), 10, 64)
}

func paging(r *http.Request) (offset, limit int, err error) {
	limit = 100
	q := r.URL.Query()
	if v := q.Get("offset"); v != "" {
		offset, err = strconv.Atoi(v)
		if err != nil || offset < 0 {
			return 0, 0, errors.New("bad offset")
		}
	}
	if v := q.Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 1 {
			return 0, 0, errors.New("bad limit")
		}
	}
	if limit > MaxPageSize {
		limit = MaxPageSize
	}
	return offset, limit, nil
}

func window[T any](xs []T, offset, limit int) []T {
	if offset >= len(xs) {
		return nil
	}
	end := offset + limit
	if end > len(xs) {
		end = len(xs)
	}
	return xs[offset:end]
}

func (s *Server) handlePage(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad page id")
		return
	}
	p, err := s.store.Page(socialnet.PageID(id))
	if err != nil {
		writeError(w, http.StatusNotFound, "no such page")
		return
	}
	writeJSON(w, http.StatusOK, PageDoc{
		ID: int64(p.ID), Name: p.Name, Description: p.Description,
		Category: p.Category, Honeypot: p.Honeypot,
		LikeCount: s.store.LikeCountOfPage(p.ID),
	})
}

func (s *Server) handlePageLikes(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad page id")
		return
	}
	if _, err := s.store.Page(socialnet.PageID(id)); err != nil {
		writeError(w, http.StatusNotFound, "no such page")
		return
	}
	offset, limit, err := paging(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	likes := s.store.LikesOfPage(socialnet.PageID(id))
	doc := PageLikesDoc{Total: len(likes), Offset: offset}
	for _, lk := range window(likes, offset, limit) {
		doc.Likes = append(doc.Likes, LikeDoc{User: int64(lk.User), At: lk.At.Format("2006-01-02T15:04:05Z07:00")})
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id")
		return
	}
	u, err := s.store.User(socialnet.UserID(id))
	if err != nil {
		writeError(w, http.StatusNotFound, "no such user")
		return
	}
	writeJSON(w, http.StatusOK, UserDoc{
		ID: int64(u.ID), Gender: u.Gender.String(), Age: u.Age.String(),
		Country: u.Country, HomeTown: u.HomeTown, CurrentTown: u.CurrentTown,
		FriendsPublic:   u.FriendsPublic,
		DeclaredFriends: s.store.DeclaredFriendCount(u.ID),
		Status:          u.Status.String(),
	})
}

func (s *Server) handleUserFriends(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id")
		return
	}
	uid := socialnet.UserID(id)
	if _, err := s.store.User(uid); err != nil {
		writeError(w, http.StatusNotFound, "no such user")
		return
	}
	if !s.store.FriendsVisible(uid) {
		writeError(w, http.StatusForbidden, "friend list is private")
		return
	}
	offset, limit, err := paging(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	friends := s.store.FriendsOf(uid)
	doc := UserFriendsDoc{Total: len(friends), Offset: offset}
	for _, f := range window(friends, offset, limit) {
		doc.Friends = append(doc.Friends, int64(f))
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleUserLikes(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id")
		return
	}
	uid := socialnet.UserID(id)
	if _, err := s.store.User(uid); err != nil {
		writeError(w, http.StatusNotFound, "no such user")
		return
	}
	offset, limit, err := paging(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	likes := s.store.LikesOfUser(uid)
	doc := UserLikesDoc{Total: len(likes), Offset: offset}
	for _, lk := range window(likes, offset, limit) {
		doc.Pages = append(doc.Pages, int64(lk.Page))
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleDirectory(w http.ResponseWriter, r *http.Request) {
	offset, limit, err := paging(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	dir := s.store.Directory()
	doc := DirectoryDoc{Total: len(dir), Offset: offset}
	for _, u := range window(dir, offset, limit) {
		doc.Users = append(doc.Users, int64(u))
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleAdminReport(w http.ResponseWriter, r *http.Request) {
	if s.adminToken == "" || r.Header.Get("X-Admin-Token") != s.adminToken {
		writeError(w, http.StatusUnauthorized, "admin token required")
		return
	}
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad page id")
		return
	}
	rep, err := platform.ReportFor(s.store, socialnet.PageID(id))
	if err != nil {
		writeError(w, http.StatusNotFound, "no such page")
		return
	}
	doc := ReportDoc{
		Page: int64(rep.Page), TotalLikes: rep.TotalLikes,
		GenderCounts:  rep.GenderCounts,
		AgeCounts:     map[string]int{},
		CountryCounts: rep.CountryCounts,
	}
	for i, n := range rep.AgeCounts {
		doc.AgeCounts[socialnet.AgeBracket(i).String()] = n
	}
	writeJSON(w, http.StatusOK, doc)
}
