package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/socialnet"
)

// Replication endpoints (DESIGN §15). The leader serves its durable
// state to followers over three admin-gated routes:
//
//	GET /api/repl/manifest          -> ReplManifestDoc (JSON)
//	GET /api/repl/snapshot/{name}   -> the current snapshot file (octet-stream)
//	GET /api/repl/segments?shard=S&from=N[&max=B] -> raw record frames
//
// The segments route is the journal's own wire format: the leader
// ships the exact framed bytes its WAL holds (below the fsync
// horizon), and the follower CRC-checks and re-appends them — no
// re-encoding, no second serialization schema. A follower whose
// cursor predates the leader's compacted chain gets 410 Gone and must
// re-bootstrap from the snapshot.

// handleReplManifest serves the leader's durable manifest plus live
// fsynced offsets — the follower's bootstrap and tail coordinates.
func (s *Server) handleReplManifest(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(r) {
		writeError(w, http.StatusUnauthorized, "admin token required")
		return
	}
	if !s.store.Durable() {
		writeError(w, http.StatusServiceUnavailable, "replication requires a durable store")
		return
	}
	m, err := s.store.ReplManifest()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// handleReplSnapshot streams the current snapshot file. The store
// validates the requested name against its manifest, so the path
// parameter can never escape the data directory.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(r) {
		writeError(w, http.StatusUnauthorized, "admin token required")
		return
	}
	if !s.store.Durable() {
		writeError(w, http.StatusServiceUnavailable, "replication requires a durable store")
		return
	}
	rc, err := s.store.ReplSnapshot(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	io.Copy(w, rc)
}

// handleReplSegments serves raw framed records from one WAL shard
// starting at the follower's cursor. An empty 200 body means caught
// up; 410 Gone means the cursor predates the compacted chain.
func (s *Server) handleReplSegments(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(r) {
		writeError(w, http.StatusUnauthorized, "admin token required")
		return
	}
	if !s.store.Durable() {
		writeError(w, http.StatusServiceUnavailable, "replication requires a durable store")
		return
	}
	q := r.URL.Query()
	shard, err := strconv.Atoi(q.Get("shard"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad shard: %v", err)
		return
	}
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad from: %v", err)
		return
	}
	maxBytes := 0
	if m := q.Get("max"); m != "" {
		if maxBytes, err = strconv.Atoi(m); err != nil {
			writeError(w, http.StatusBadRequest, "bad max: %v", err)
			return
		}
	}
	blob, err := s.store.ReplSegments(shard, from, maxBytes)
	switch {
	case errors.Is(err, socialnet.ErrReplGap):
		writeError(w, http.StatusGone, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(blob)
	}
}

// ReplHTTPSource is a socialnet.ReplSource over the routes above — the
// client half a follower process points at its leader's URL.
type ReplHTTPSource struct {
	base  string
	token string
	hc    *http.Client
}

// replCallTimeout bounds the bounded-body calls (manifest, segments):
// their bodies are read in full inside this package, so a deadline on
// the whole exchange is safe and turns a wedged leader into an error.
const replCallTimeout = 2 * time.Minute

// NewReplHTTPSource builds a source for a leader at baseURL,
// authenticating with adminToken. hc may be nil for a default client
// with per-phase timeouts (dial, TLS handshake, response headers) but
// NO overall http.Client.Timeout: that deadline covers the entire
// exchange including body streaming, and a follower bootstrap streams
// the leader's whole snapshot through Snapshot's body — any download
// slower than such a cap would fail mid-copy on every attempt.
// Wedged-leader detection instead comes from the header timeout, the
// caller's context, and replCallTimeout on the bounded calls.
func NewReplHTTPSource(baseURL, adminToken string, hc *http.Client) *ReplHTTPSource {
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 10 * time.Second}).DialContext,
			TLSHandshakeTimeout:   10 * time.Second,
			ResponseHeaderTimeout: 30 * time.Second,
			IdleConnTimeout:       90 * time.Second,
		}}
	}
	return &ReplHTTPSource{base: baseURL, token: adminToken, hc: hc}
}

// get issues one authenticated GET and returns the response, mapping
// the replication status codes; callers own the body.
func (s *ReplHTTPSource) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("api: repl source: %w", err)
	}
	req.Header.Set("X-Admin-Token", s.token)
	resp, err := s.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("api: repl source: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return resp, nil
	case http.StatusGone:
		resp.Body.Close()
		return nil, socialnet.ErrReplGap
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		resp.Body.Close()
		return nil, fmt.Errorf("api: repl source: %s: status %d: %s", path, resp.StatusCode, body)
	}
}

// Manifest implements socialnet.ReplSource.
func (s *ReplHTTPSource) Manifest(ctx context.Context) (socialnet.ReplManifestDoc, error) {
	ctx, cancel := context.WithTimeout(ctx, replCallTimeout)
	defer cancel()
	var m socialnet.ReplManifestDoc
	resp, err := s.get(ctx, "/api/repl/manifest")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return m, fmt.Errorf("api: repl source: decode manifest: %w", err)
	}
	return m, nil
}

// Snapshot implements socialnet.ReplSource. The caller streams and
// closes the body; no replCallTimeout applies here — a deadline
// spanning the download would abort any snapshot larger than the link
// can move in time. Cancelling ctx aborts the stream.
func (s *ReplHTTPSource) Snapshot(ctx context.Context, name string) (io.ReadCloser, error) {
	resp, err := s.get(ctx, "/api/repl/snapshot/"+url.PathEscape(name))
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Segments implements socialnet.ReplSource.
func (s *ReplHTTPSource) Segments(ctx context.Context, shard int, from uint64, maxBytes int) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, replCallTimeout)
	defer cancel()
	path := fmt.Sprintf("/api/repl/segments?shard=%d&from=%d&max=%d", shard, from, maxBytes)
	resp, err := s.get(ctx, path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("api: repl source: read segments: %w", err)
	}
	return blob, nil
}
