package api

import (
	"net/http"
	"sort"

	"repro/internal/detect"
	"repro/internal/socialnet"
)

// FraudVerdictDoc is one account's fraud verdict on the wire.
type FraudVerdictDoc struct {
	User        int64   `json:"user"`
	LikeCount   int     `json:"like_count"`
	FriendCount int     `json:"friend_count"`
	MaxIn2h     int     `json:"max_in_2h"`
	Burst2h     float64 `json:"burst_2h"`
	IslandSize  int     `json:"island_size"`
	Score       float64 `json:"score"`
	// Lockstep group membership: the 1-based index of the account's
	// group in the report's lockstep_groups list (0 = none), the
	// group's member count, and its distinct evidence pages.
	LockstepGroup int  `json:"lockstep_group"`
	LockstepSize  int  `json:"lockstep_size"`
	LockstepPages int  `json:"lockstep_pages"`
	Terminated    bool `json:"terminated"`
}

// PageFraudDoc is a tracked page's fraud summary: per-liker verdicts
// (sorted by user ID) plus page-level aggregates.
type PageFraudDoc struct {
	Page      int64             `json:"page"`
	Likers    int               `json:"likers"`
	HighRisk  int               `json:"high_risk"`
	MeanScore float64           `json:"mean_score"`
	Verdicts  []FraudVerdictDoc `json:"verdicts"`
}

// LockstepGroupDoc is one detected lockstep cluster on the wire:
// members and evidence pages, both ascending.
type LockstepGroupDoc struct {
	Users []int64 `json:"users"`
	Pages []int64 `json:"pages"`
}

// FraudReportDoc is the all-tracked-pages report, pages ascending,
// plus the lockstep group report the per-verdict lockstep_group
// indices point into (groups ordered by smallest member).
type FraudReportDoc struct {
	Pages          []PageFraudDoc     `json:"pages"`
	LockstepGroups []LockstepGroupDoc `json:"lockstep_groups"`
}

// lockstepGroupDocs renders a detect group report for the wire.
func lockstepGroupDocs(groups []detect.LockstepGroup) []LockstepGroupDoc {
	docs := []LockstepGroupDoc{}
	for _, g := range groups {
		d := LockstepGroupDoc{Users: make([]int64, 0, len(g.Users)), Pages: make([]int64, 0, len(g.Pages))}
		for _, u := range g.Users {
			d.Users = append(d.Users, int64(u))
		}
		for _, p := range g.Pages {
			d.Pages = append(d.Pages, int64(p))
		}
		docs = append(docs, d)
	}
	return docs
}

// HighRiskScore is the score threshold above which a verdict counts
// toward a page's HighRisk tally — the detect package's default
// operating point.
const HighRiskScore = detect.FlagThreshold

// SetFraudScorer attaches the live streaming scorer behind the /fraud
// endpoints. Until it is called the endpoints answer 503: the serving
// deployment (honeypotd) owns the scorer's lifecycle — construction,
// checkpointing, restore — and the Server only reads verdicts.
func (s *Server) SetFraudScorer(sc *detect.StreamScorer) {
	s.scorerMu.Lock()
	s.scorer = sc
	s.scorerMu.Unlock()
}

func (s *Server) fraudScorer() *detect.StreamScorer {
	s.scorerMu.RLock()
	defer s.scorerMu.RUnlock()
	return s.scorer
}

// fraudVerdictDoc renders a detect.Verdict for the wire.
func fraudVerdictDoc(u socialnet.UserID, v detect.Verdict) FraudVerdictDoc {
	return FraudVerdictDoc{
		User:          int64(u),
		LikeCount:     v.Features.LikeCount,
		FriendCount:   v.Features.FriendCount,
		MaxIn2h:       v.Features.MaxIn2h,
		Burst2h:       v.Features.Burst2h,
		IslandSize:    v.Features.IslandSize,
		Score:         v.Score,
		LockstepGroup: v.Lockstep.Group,
		LockstepSize:  v.Lockstep.Size,
		LockstepPages: v.Lockstep.Pages,
		Terminated:    v.Terminated,
	}
}

// buildPageFraudDoc assembles one page's summary from a verdict lookup.
// Both the live path (StreamScorer verdicts) and the batch path
// (BatchFraudReport) funnel through this function with likers already
// sorted, so the two reports agree byte for byte — the CI equivalence
// smoke diffs their JSON.
func buildPageFraudDoc(p socialnet.PageID, likers []socialnet.UserID, verdictOf func(socialnet.UserID) (detect.Verdict, bool)) PageFraudDoc {
	doc := PageFraudDoc{Page: int64(p), Verdicts: []FraudVerdictDoc{}}
	sum := 0.0
	for _, u := range likers {
		v, ok := verdictOf(u)
		if !ok {
			continue
		}
		doc.Likers++
		sum += v.Score
		if v.Score >= HighRiskScore {
			doc.HighRisk++
		}
		doc.Verdicts = append(doc.Verdicts, fraudVerdictDoc(u, v))
	}
	if doc.Likers > 0 {
		doc.MeanScore = sum / float64(doc.Likers)
	}
	return doc
}

// BatchFraudReport computes the full fraud report from the store alone
// — no scorer, no cursor — via the batch feature path. `likefraud
// -fraud` writes this JSON; CI compares it against the live service's
// GET /api/fraud over the same world to pin the two paths identical.
func BatchFraudReport(st *socialnet.Store, workers int) (FraudReportDoc, error) {
	pages := st.HoneypotPages()
	likersOf := make(map[socialnet.PageID][]socialnet.UserID, len(pages))
	var all []socialnet.UserID
	seen := map[socialnet.UserID]bool{}
	for _, p := range pages {
		for _, lk := range st.LikesOfPage(p) {
			likersOf[p] = append(likersOf[p], lk.User)
			if !seen[lk.User] {
				seen[lk.User] = true
				all = append(all, lk.User)
			}
		}
	}
	feats, err := detect.BatchFeatures(st, all, workers)
	if err != nil {
		return FraudReportDoc{}, err
	}
	groups, err := detect.Lockstep(st, pages, detect.DefaultLockstepConfig())
	if err != nil {
		return FraudReportDoc{}, err
	}
	vs := make([]detect.Verdict, len(feats))
	for i, f := range feats {
		v := detect.Verdict{Features: f, Score: f.Score()}
		if u, err := st.User(f.User); err == nil {
			v.Terminated = u.Status == socialnet.StatusTerminated
		}
		vs[i] = v
	}
	detect.AttachLockstep(vs, groups)
	verdicts := make(map[socialnet.UserID]detect.Verdict, len(vs))
	for _, v := range vs {
		verdicts[v.Features.User] = v
	}
	doc := FraudReportDoc{Pages: []PageFraudDoc{}, LockstepGroups: lockstepGroupDocs(groups)}
	for _, p := range pages {
		likers := likersOf[p]
		sort.Slice(likers, func(i, j int) bool { return likers[i] < likers[j] })
		doc.Pages = append(doc.Pages, buildPageFraudDoc(p, likers, func(u socialnet.UserID) (detect.Verdict, bool) {
			v, ok := verdicts[u]
			return v, ok
		}))
	}
	return doc, nil
}

// withScorer runs fn against the attached scorer after ticking it —
// verdicts always reflect the journal tail at request time (a tick is
// O(events since the last tick), the whole point of the cursor design).
func (s *Server) withScorer(w http.ResponseWriter, fn func(sc *detect.StreamScorer)) {
	sc := s.fraudScorer()
	if sc == nil {
		writeError(w, http.StatusServiceUnavailable, "fraud scorer not running")
		return
	}
	sc.Tick()
	fn(sc)
}

// handlePageFraud serves GET /api/page/{id}/fraud: per-liker verdicts
// and the page summary. Admin-gated — fraud verdicts are the platform's
// internal enforcement view, not part of the public crawl surface.
func (s *Server) handlePageFraud(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(r) {
		writeError(w, http.StatusUnauthorized, "admin token required")
		return
	}
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad page id")
		return
	}
	if _, err := s.store.Page(socialnet.PageID(id)); err != nil {
		writeError(w, http.StatusNotFound, "no such page")
		return
	}
	s.withScorer(w, func(sc *detect.StreamScorer) {
		likers, tracked := sc.PageLikers(socialnet.PageID(id))
		if !tracked {
			writeError(w, http.StatusNotFound, "page is not fraud-tracked")
			return
		}
		writeJSON(w, http.StatusOK, buildPageFraudDoc(socialnet.PageID(id), likers, sc.Verdict))
	})
}

// handleUserFraud serves GET /api/user/{id}/fraud: one enrolled
// account's live verdict. Admin-gated like the page view.
func (s *Server) handleUserFraud(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(r) {
		writeError(w, http.StatusUnauthorized, "admin token required")
		return
	}
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id")
		return
	}
	if _, err := s.store.User(socialnet.UserID(id)); err != nil {
		writeError(w, http.StatusNotFound, "no such user")
		return
	}
	s.withScorer(w, func(sc *detect.StreamScorer) {
		v, ok := sc.Verdict(socialnet.UserID(id))
		if !ok {
			writeError(w, http.StatusNotFound, "user is not enrolled (no tracked-page like)")
			return
		}
		writeJSON(w, http.StatusOK, fraudVerdictDoc(socialnet.UserID(id), v))
	})
}

// handleFraudReport serves GET /api/fraud: the all-tracked-pages report
// the CI equivalence smoke diffs against likefraud's batch output.
func (s *Server) handleFraudReport(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(r) {
		writeError(w, http.StatusUnauthorized, "admin token required")
		return
	}
	s.withScorer(w, func(sc *detect.StreamScorer) {
		doc := FraudReportDoc{
			Pages:          []PageFraudDoc{},
			LockstepGroups: lockstepGroupDocs(sc.LockstepGroups()),
		}
		for _, p := range sc.TrackedPages() {
			likers, _ := sc.PageLikers(p)
			doc.Pages = append(doc.Pages, buildPageFraudDoc(p, likers, sc.Verdict))
		}
		writeJSON(w, http.StatusOK, doc)
	})
}
