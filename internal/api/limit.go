package api

import (
	"net"
	"sync"
)

// LimitListener caps the number of simultaneously open accepted
// connections at max, complementing the server's read/write/idle
// timeouts: timeouts bound how long one connection can hold resources,
// the listener gate bounds how many can hold them at once.
//
// The gate is a capacity semaphore checked after accept: an over-limit
// connection is accepted and immediately closed (load shedding — the
// peer sees a reset and can back off) rather than left in the kernel
// backlog, where it would hang until the backlog itself overflows. A
// slot is released when the connection closes, whichever of the
// server's paths (handler return, timeout, shutdown drain) closes it;
// double closes release the slot once.
//
// max <= 0 disables the gate and returns l unchanged.
func LimitListener(l net.Listener, max int) net.Listener {
	if max <= 0 {
		return l
	}
	return &limitListener{Listener: l, slots: make(chan struct{}, max)}
}

type limitListener struct {
	net.Listener
	slots chan struct{}
}

func (l *limitListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		select {
		case l.slots <- struct{}{}:
			return &limitConn{Conn: c, slots: l.slots}, nil
		default:
			_ = c.Close()
		}
	}
}

type limitConn struct {
	net.Conn
	slots   chan struct{}
	release sync.Once
}

func (c *limitConn) Close() error {
	err := c.Conn.Close()
	c.release.Do(func() { <-c.slots })
	return err
}
