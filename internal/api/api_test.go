package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/socialnet"
)

var t0 = time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

func testServer(t *testing.T) (*httptest.Server, *socialnet.Store, socialnet.PageID, socialnet.UserID, socialnet.UserID) {
	t.Helper()
	st := socialnet.NewStore()
	pub := st.AddUser(socialnet.User{
		Gender: socialnet.GenderFemale, Age: socialnet.Age18to24,
		Country: "USA", HomeTown: "USA-town-01", CurrentTown: "USA-town-02",
		FriendsPublic: true, Searchable: true, DeclaredFriends: 250,
	})
	priv := st.AddUser(socialnet.User{
		Gender: socialnet.GenderMale, Age: socialnet.Age25to34,
		Country: "India", FriendsPublic: false, Searchable: true,
	})
	_ = st.Friend(pub, priv)
	page, err := st.AddPage(socialnet.Page{Name: "Virtual Electricity", Description: "not real", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = st.AddLike(pub, page, t0)
	_ = st.AddLike(priv, page, t0.Add(time.Hour))
	srv := httptest.NewServer(NewServer(st, "sekrit"))
	t.Cleanup(srv.Close)
	return srv, st, page, pub, priv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestPageEndpoint(t *testing.T) {
	srv, _, page, _, _ := testServer(t)
	var doc PageDoc
	code := getJSON(t, fmt.Sprintf("%s/api/page/%d", srv.URL, page), &doc)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if doc.Name != "Virtual Electricity" || !doc.Honeypot || doc.LikeCount != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if code := getJSON(t, srv.URL+"/api/page/999", nil); code != 404 {
		t.Fatalf("missing page status = %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/page/xyz", nil); code != 400 {
		t.Fatalf("bad id status = %d", code)
	}
}

func TestPageLikesPagination(t *testing.T) {
	srv, st, page, _, _ := testServer(t)
	// Add more likers to exercise pagination.
	for i := 0; i < 25; i++ {
		u := st.AddUser(socialnet.User{Country: "Egypt"})
		_ = st.AddLike(u, page, t0.Add(time.Duration(i+2)*time.Hour))
	}
	var doc PageLikesDoc
	code := getJSON(t, fmt.Sprintf("%s/api/page/%d/likes?limit=10", srv.URL, page), &doc)
	if code != 200 || doc.Total != 27 || len(doc.Likes) != 10 {
		t.Fatalf("first page: code=%d total=%d likes=%d", code, doc.Total, len(doc.Likes))
	}
	var page2 PageLikesDoc
	getJSON(t, fmt.Sprintf("%s/api/page/%d/likes?offset=20&limit=10", srv.URL, page), &page2)
	if len(page2.Likes) != 7 {
		t.Fatalf("last page likes = %d, want 7", len(page2.Likes))
	}
	// Likes are time-ordered.
	if doc.Likes[0].At > doc.Likes[9].At {
		t.Fatal("likes not time-ordered")
	}
	if code := getJSON(t, fmt.Sprintf("%s/api/page/%d/likes?offset=-1", srv.URL, page), nil); code != 400 {
		t.Fatalf("bad offset status = %d", code)
	}
	if code := getJSON(t, fmt.Sprintf("%s/api/page/%d/likes?limit=0", srv.URL, page), nil); code != 400 {
		t.Fatalf("bad limit status = %d", code)
	}
}

func TestUserEndpoint(t *testing.T) {
	srv, _, _, pub, _ := testServer(t)
	var doc UserDoc
	code := getJSON(t, fmt.Sprintf("%s/api/user/%d", srv.URL, pub), &doc)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if doc.Gender != "F" || doc.Age != "18-24" || doc.Country != "USA" {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.DeclaredFriends != 250 {
		t.Fatalf("declared friends = %d", doc.DeclaredFriends)
	}
	if doc.Status != "active" {
		t.Fatalf("status = %s", doc.Status)
	}
	if code := getJSON(t, srv.URL+"/api/user/999", nil); code != 404 {
		t.Fatalf("missing user = %d", code)
	}
}

func TestFriendListPrivacy(t *testing.T) {
	srv, _, _, pub, priv := testServer(t)
	var doc UserFriendsDoc
	code := getJSON(t, fmt.Sprintf("%s/api/user/%d/friends", srv.URL, pub), &doc)
	if code != 200 || doc.Total != 1 || doc.Friends[0] != int64(priv) {
		t.Fatalf("public list: code=%d doc=%+v", code, doc)
	}
	code = getJSON(t, fmt.Sprintf("%s/api/user/%d/friends", srv.URL, priv), nil)
	if code != 403 {
		t.Fatalf("private list status = %d, want 403", code)
	}
}

func TestUserLikes(t *testing.T) {
	srv, _, page, pub, _ := testServer(t)
	var doc UserLikesDoc
	code := getJSON(t, fmt.Sprintf("%s/api/user/%d/likes", srv.URL, pub), &doc)
	if code != 200 || doc.Total != 1 || doc.Pages[0] != int64(page) {
		t.Fatalf("likes: code=%d doc=%+v", code, doc)
	}
}

func TestDirectory(t *testing.T) {
	srv, _, _, _, _ := testServer(t)
	var doc DirectoryDoc
	code := getJSON(t, srv.URL+"/api/directory?limit=10", &doc)
	if code != 200 || doc.Total != 2 {
		t.Fatalf("directory: code=%d doc=%+v", code, doc)
	}
}

func TestAdminReportAuth(t *testing.T) {
	srv, _, page, _, _ := testServer(t)
	url := fmt.Sprintf("%s/api/admin/report/%d", srv.URL, page)
	// No token: 401.
	if code := getJSON(t, url, nil); code != 401 {
		t.Fatalf("unauthorized status = %d", code)
	}
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("X-Admin-Token", "sekrit")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("authorized status = %d", resp.StatusCode)
	}
	var doc ReportDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.TotalLikes != 2 || doc.GenderCounts["F"] != 1 || doc.GenderCounts["M"] != 1 {
		t.Fatalf("report = %+v", doc)
	}
	if doc.AgeCounts["18-24"] != 1 {
		t.Fatalf("ages = %v", doc.AgeCounts)
	}
}

func TestAdminDisabledWithoutToken(t *testing.T) {
	st := socialnet.NewStore()
	page, _ := st.AddPage(socialnet.Page{Name: "p"})
	srv := httptest.NewServer(NewServer(st, ""))
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/api/admin/report/%d", srv.URL, page), nil)
	req.Header.Set("X-Admin-Token", "")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 401 {
		t.Fatalf("disabled admin status = %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv, _, page, _, _ := testServer(t)
	resp, err := http.Post(fmt.Sprintf("%s/api/page/%d", srv.URL, page), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	srv, _, _, _, _ := testServer(t)
	if code := getJSON(t, srv.URL+"/api/healthz", nil); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
}
