package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/socialnet"
)

var t0 = time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

func testServer(t *testing.T) (*httptest.Server, *socialnet.Store, socialnet.PageID, socialnet.UserID, socialnet.UserID) {
	t.Helper()
	st := socialnet.NewStore()
	pub := st.AddUser(socialnet.User{
		Gender: socialnet.GenderFemale, Age: socialnet.Age18to24,
		Country: "USA", HomeTown: "USA-town-01", CurrentTown: "USA-town-02",
		FriendsPublic: true, Searchable: true, DeclaredFriends: 250,
	})
	priv := st.AddUser(socialnet.User{
		Gender: socialnet.GenderMale, Age: socialnet.Age25to34,
		Country: "India", FriendsPublic: false, Searchable: true,
	})
	_ = st.Friend(pub, priv)
	page, err := st.AddPage(socialnet.Page{Name: "Virtual Electricity", Description: "not real", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = st.AddLike(pub, page, t0)
	_ = st.AddLike(priv, page, t0.Add(time.Hour))
	srv := httptest.NewServer(NewServer(st, "sekrit"))
	t.Cleanup(srv.Close)
	return srv, st, page, pub, priv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestPageEndpoint(t *testing.T) {
	srv, _, page, _, _ := testServer(t)
	var doc PageDoc
	code := getJSON(t, fmt.Sprintf("%s/api/page/%d", srv.URL, page), &doc)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if doc.Name != "Virtual Electricity" || !doc.Honeypot || doc.LikeCount != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if code := getJSON(t, srv.URL+"/api/page/999", nil); code != 404 {
		t.Fatalf("missing page status = %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/page/xyz", nil); code != 400 {
		t.Fatalf("bad id status = %d", code)
	}
}

func TestPageLikesPagination(t *testing.T) {
	srv, st, page, _, _ := testServer(t)
	// Add more likers to exercise pagination.
	for i := 0; i < 25; i++ {
		u := st.AddUser(socialnet.User{Country: "Egypt"})
		_ = st.AddLike(u, page, t0.Add(time.Duration(i+2)*time.Hour))
	}
	var doc PageLikesDoc
	code := getJSON(t, fmt.Sprintf("%s/api/page/%d/likes?limit=10", srv.URL, page), &doc)
	if code != 200 || doc.Total != 27 || len(doc.Likes) != 10 {
		t.Fatalf("first page: code=%d total=%d likes=%d", code, doc.Total, len(doc.Likes))
	}
	var page2 PageLikesDoc
	getJSON(t, fmt.Sprintf("%s/api/page/%d/likes?offset=20&limit=10", srv.URL, page), &page2)
	if len(page2.Likes) != 7 {
		t.Fatalf("last page likes = %d, want 7", len(page2.Likes))
	}
	// Likes are time-ordered.
	if doc.Likes[0].At > doc.Likes[9].At {
		t.Fatal("likes not time-ordered")
	}
	if code := getJSON(t, fmt.Sprintf("%s/api/page/%d/likes?offset=-1", srv.URL, page), nil); code != 400 {
		t.Fatalf("bad offset status = %d", code)
	}
	if code := getJSON(t, fmt.Sprintf("%s/api/page/%d/likes?limit=0", srv.URL, page), nil); code != 400 {
		t.Fatalf("bad limit status = %d", code)
	}
}

// TestPageLikesCursorPaging exercises cursor mode: windows tile the
// append-only stream, next_cursor resumes exactly after the last event,
// and a like landing mid-pagination — with an earlier timestamp than
// events already served — is delivered exactly once at the tail instead
// of shifting the windows (the offset-mode dup/drop bug).
func TestPageLikesCursorPaging(t *testing.T) {
	srv, st, page, _, _ := testServer(t)
	for i := 0; i < 23; i++ {
		u := st.AddUser(socialnet.User{Country: "Egypt"})
		_ = st.AddLike(u, page, t0.Add(time.Duration(i+2)*time.Hour))
	}
	seen := map[int64]int{}
	cursor, got := 0, 0
	for {
		var doc PageLikesDoc
		code := getJSON(t, fmt.Sprintf("%s/api/page/%d/likes?cursor=%d&limit=10", srv.URL, page, cursor), &doc)
		if code != 200 {
			t.Fatalf("status = %d", code)
		}
		if doc.Cursor != cursor {
			t.Fatalf("echoed cursor = %d, want %d", doc.Cursor, cursor)
		}
		if doc.NextCursor != cursor+len(doc.Likes) {
			t.Fatalf("next_cursor = %d after cursor %d with %d likes", doc.NextCursor, cursor, len(doc.Likes))
		}
		for _, lk := range doc.Likes {
			seen[lk.User]++
		}
		got += len(doc.Likes)
		cursor = doc.NextCursor
		if len(doc.Likes) == 0 {
			break
		}
		// A like with a PRE-study timestamp lands while we paginate.
		if got == 10 {
			u := st.AddUser(socialnet.User{Country: "Turkey"})
			_ = st.AddLike(u, page, t0.Add(-time.Hour))
		}
	}
	if got != 26 {
		t.Fatalf("cursor crawl saw %d likes, want 26", got)
	}
	for u, n := range seen {
		if n != 1 {
			t.Fatalf("user %d delivered %d times", u, n)
		}
	}
	// cursor + offset together is a 400; so is a malformed cursor.
	if code := getJSON(t, fmt.Sprintf("%s/api/page/%d/likes?cursor=0&offset=1", srv.URL, page), nil); code != 400 {
		t.Fatalf("cursor+offset status = %d", code)
	}
	if code := getJSON(t, fmt.Sprintf("%s/api/page/%d/likes?cursor=-2", srv.URL, page), nil); code != 400 {
		t.Fatalf("bad cursor status = %d", code)
	}
}

func TestUsersBatch(t *testing.T) {
	srv, _, _, pub, priv := testServer(t)
	var doc UsersDoc
	// Unknown ID 999 is skipped, not fatal; order follows the request.
	code := getJSON(t, fmt.Sprintf("%s/api/users?ids=%d,999,%d", srv.URL, pub, priv), &doc)
	if code != 200 || len(doc.Users) != 2 {
		t.Fatalf("batch: code=%d users=%d", code, len(doc.Users))
	}
	if doc.Users[0].ID != int64(pub) || doc.Users[1].ID != int64(priv) {
		t.Fatalf("batch order = %+v", doc.Users)
	}
	if doc.Users[0].Country != "USA" || doc.Users[0].DeclaredFriends != 250 {
		t.Fatalf("batch profile = %+v", doc.Users[0])
	}
	if code := getJSON(t, srv.URL+"/api/users", nil); code != 400 {
		t.Fatalf("missing ids status = %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/users?ids=1,x", nil); code != 400 {
		t.Fatalf("bad id status = %d", code)
	}
	ids := make([]string, MaxPageSize+1)
	for i := range ids {
		ids[i] = "1"
	}
	if code := getJSON(t, srv.URL+"/api/users?ids="+strings.Join(ids, ","), nil); code != 400 {
		t.Fatalf("oversize batch status = %d", code)
	}
}

// TestEmptyWindowsAreArrays pins the JSON shape: empty like/friend/page
// windows serialize as [] rather than null, so typed clients in other
// languages don't need null guards.
func TestEmptyWindowsAreArrays(t *testing.T) {
	srv, st, page, pub, _ := testServer(t)
	lonely := st.AddUser(socialnet.User{FriendsPublic: true})
	for name, url := range map[string]string{
		"likes offset": fmt.Sprintf("%s/api/page/%d/likes?offset=%d", srv.URL, page, 9999),
		"likes cursor": fmt.Sprintf("%s/api/page/%d/likes?cursor=%d", srv.URL, page, 9999),
		"friends":      fmt.Sprintf("%s/api/user/%d/friends", srv.URL, lonely),
		"user likes":   fmt.Sprintf("%s/api/user/%d/likes?offset=%d", srv.URL, pub, 9999),
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", name, resp.StatusCode)
		}
		if strings.Contains(string(body), "null") {
			t.Fatalf("%s: body has null window: %s", name, body)
		}
	}
}

func TestUserEndpoint(t *testing.T) {
	srv, _, _, pub, _ := testServer(t)
	var doc UserDoc
	code := getJSON(t, fmt.Sprintf("%s/api/user/%d", srv.URL, pub), &doc)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if doc.Gender != "F" || doc.Age != "18-24" || doc.Country != "USA" {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.DeclaredFriends != 250 {
		t.Fatalf("declared friends = %d", doc.DeclaredFriends)
	}
	if doc.Status != "active" {
		t.Fatalf("status = %s", doc.Status)
	}
	if code := getJSON(t, srv.URL+"/api/user/999", nil); code != 404 {
		t.Fatalf("missing user = %d", code)
	}
}

func TestFriendListPrivacy(t *testing.T) {
	srv, _, _, pub, priv := testServer(t)
	var doc UserFriendsDoc
	code := getJSON(t, fmt.Sprintf("%s/api/user/%d/friends", srv.URL, pub), &doc)
	if code != 200 || doc.Total != 1 || doc.Friends[0] != int64(priv) {
		t.Fatalf("public list: code=%d doc=%+v", code, doc)
	}
	code = getJSON(t, fmt.Sprintf("%s/api/user/%d/friends", srv.URL, priv), nil)
	if code != 403 {
		t.Fatalf("private list status = %d, want 403", code)
	}
}

func TestUserLikes(t *testing.T) {
	srv, _, page, pub, _ := testServer(t)
	var doc UserLikesDoc
	code := getJSON(t, fmt.Sprintf("%s/api/user/%d/likes", srv.URL, pub), &doc)
	if code != 200 || doc.Total != 1 || doc.Pages[0] != int64(page) {
		t.Fatalf("likes: code=%d doc=%+v", code, doc)
	}
}

func TestDirectory(t *testing.T) {
	srv, _, _, _, _ := testServer(t)
	var doc DirectoryDoc
	code := getJSON(t, srv.URL+"/api/directory?limit=10", &doc)
	if code != 200 || doc.Total != 2 {
		t.Fatalf("directory: code=%d doc=%+v", code, doc)
	}
}

func TestAdminReportAuth(t *testing.T) {
	srv, _, page, _, _ := testServer(t)
	url := fmt.Sprintf("%s/api/admin/report/%d", srv.URL, page)
	// No token: 401.
	if code := getJSON(t, url, nil); code != 401 {
		t.Fatalf("unauthorized status = %d", code)
	}
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("X-Admin-Token", "sekrit")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("authorized status = %d", resp.StatusCode)
	}
	var doc ReportDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.TotalLikes != 2 || doc.GenderCounts["F"] != 1 || doc.GenderCounts["M"] != 1 {
		t.Fatalf("report = %+v", doc)
	}
	if doc.AgeCounts["18-24"] != 1 {
		t.Fatalf("ages = %v", doc.AgeCounts)
	}
}

func TestAdminDisabledWithoutToken(t *testing.T) {
	st := socialnet.NewStore()
	page, _ := st.AddPage(socialnet.Page{Name: "p"})
	srv := httptest.NewServer(NewServer(st, ""))
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/api/admin/report/%d", srv.URL, page), nil)
	req.Header.Set("X-Admin-Token", "")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 401 {
		t.Fatalf("disabled admin status = %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv, _, page, _, _ := testServer(t)
	resp, err := http.Post(fmt.Sprintf("%s/api/page/%d", srv.URL, page), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	srv, _, _, _, _ := testServer(t)
	if code := getJSON(t, srv.URL+"/api/healthz", nil); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
}

// TestHealthzReportsFailure: once the process marks itself unhealthy —
// a replica whose tail loop died, say — healthz flips to 503 so load
// balancers and probes route traffic away from the stale instance.
func TestHealthzReportsFailure(t *testing.T) {
	st := socialnet.NewStore()
	api := NewServer(st, "")
	srv := httptest.NewServer(api)
	defer srv.Close()
	if code := getJSON(t, srv.URL+"/api/healthz", nil); code != 200 {
		t.Fatalf("healthz before failure = %d, want 200", code)
	}
	api.SetHealthError("replication tail dead: cursor predates leader chain")
	resp, err := http.Get(srv.URL + "/api/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("healthz after failure = %d, want 503", resp.StatusCode)
	}
	var body struct{ Status, Error string }
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "failed" || body.Error == "" {
		t.Fatalf("healthz body = %+v, want failed status with the error", body)
	}
}

// TestUserLikesCursorPaging mirrors the page-likes cursor contract on
// the user side: windows tile the user's append-only like stream, and
// a like landing mid-pagination is delivered exactly once at the tail.
func TestUserLikesCursorPaging(t *testing.T) {
	srv, st, page, pub, _ := testServer(t)
	pages := []socialnet.PageID{page}
	for i := 0; i < 22; i++ {
		p, err := st.AddPage(socialnet.Page{Name: fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
		_ = st.AddLike(pub, p, t0.Add(time.Duration(i+2)*time.Hour))
	}
	seen := map[int64]int{}
	cursor, windows := 0, 0
	for {
		var doc UserLikesDoc
		code := getJSON(t, fmt.Sprintf("%s/api/user/%d/likes?cursor=%d&limit=7", srv.URL, pub, cursor), &doc)
		if code != 200 {
			t.Fatalf("cursor window: status %d", code)
		}
		if doc.Offset != -1 || doc.Cursor != cursor {
			t.Fatalf("cursor window echo: %+v", doc)
		}
		for _, p := range doc.Pages {
			seen[p]++
		}
		if windows == 1 {
			// A live like with an EARLY timestamp, mid-pagination.
			late, err := st.AddPage(socialnet.Page{Name: "late"})
			if err != nil {
				t.Fatal(err)
			}
			pages = append(pages, late)
			_ = st.AddLike(pub, late, t0.Add(time.Minute))
		}
		windows++
		if len(doc.Pages) == 0 {
			break
		}
		cursor = doc.NextCursor
	}
	if len(seen) != len(pages) {
		t.Fatalf("cursor crawl saw %d pages, want %d", len(seen), len(pages))
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("page %d delivered %d times, want exactly once", p, n)
		}
	}
	// Offset mode still works and marks itself snapshot-only.
	var off UserLikesDoc
	if code := getJSON(t, fmt.Sprintf("%s/api/user/%d/likes?limit=5", srv.URL, pub), &off); code != 200 {
		t.Fatalf("offset mode: %d", code)
	}
	if off.Cursor != -1 || off.NextCursor != -1 {
		t.Fatalf("offset mode should carry cursor=-1: %+v", off)
	}
	if code := getJSON(t, fmt.Sprintf("%s/api/user/%d/likes?cursor=0&offset=3", srv.URL, pub), nil); code != 400 {
		t.Fatal("cursor+offset should be rejected")
	}
}

// TestUserFriendsCursorPaging: keyset pagination over the friend list —
// windows tile the ID space, exactly once per friend.
func TestUserFriendsCursorPaging(t *testing.T) {
	srv, st, _, pub, priv := testServer(t)
	want := map[int64]bool{int64(priv): true}
	for i := 0; i < 17; i++ {
		f := st.AddUser(socialnet.User{Country: "UK"})
		if err := st.Friend(pub, f); err != nil {
			t.Fatal(err)
		}
		want[int64(f)] = true
	}
	seen := map[int64]int{}
	var cursor int64
	for {
		var doc UserFriendsDoc
		code := getJSON(t, fmt.Sprintf("%s/api/user/%d/friends?cursor=%d&limit=5", srv.URL, pub, cursor), &doc)
		if code != 200 {
			t.Fatalf("cursor window: status %d", code)
		}
		if doc.Offset != -1 || doc.Cursor != cursor || doc.Total != len(want) {
			t.Fatalf("window doc: %+v", doc)
		}
		for _, f := range doc.Friends {
			seen[f]++
		}
		if len(doc.Friends) < 5 {
			break
		}
		cursor = doc.NextCursor
	}
	if len(seen) != len(want) {
		t.Fatalf("cursor crawl saw %d friends, want %d", len(seen), len(want))
	}
	for f, n := range seen {
		if !want[f] || n != 1 {
			t.Fatalf("friend %d seen %d times (known=%v)", f, n, want[f])
		}
	}
	// Privacy still applies in cursor mode.
	if code := getJSON(t, fmt.Sprintf("%s/api/user/%d/friends?cursor=0", srv.URL, priv), nil); code != 403 {
		t.Fatal("private friend list served in cursor mode")
	}
}

// TestPostLike: the admin-gated like-injection surface used by the
// crash-recovery smoke test.
func TestPostLike(t *testing.T) {
	srv, st, page, _, _ := testServer(t)
	u := st.AddUser(socialnet.User{Country: "USA"})
	post := func(token string, body string) int {
		req, err := http.NewRequest(http.MethodPost,
			fmt.Sprintf("%s/api/page/%d/likes", srv.URL, page), strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("X-Admin-Token", token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	body := fmt.Sprintf(`{"user": %d}`, u)
	if code := post("", body); code != 401 {
		t.Fatalf("unauthenticated POST = %d, want 401", code)
	}
	before := st.LikeCountOfPage(page)
	if code := post("sekrit", body); code != 201 {
		t.Fatalf("POST like = %d, want 201", code)
	}
	if got := st.LikeCountOfPage(page); got != before+1 {
		t.Fatalf("like count %d, want %d", got, before+1)
	}
	if code := post("sekrit", body); code != 409 {
		t.Fatalf("duplicate POST = %d, want 409", code)
	}
	if code := post("sekrit", `{"user": 99999}`); code != 404 {
		t.Fatalf("unknown user POST = %d, want 404", code)
	}
	if code := post("sekrit", `{"user":`); code != 400 {
		t.Fatalf("bad body POST = %d, want 400", code)
	}
}
