package api

import (
	"io"
	"net"
	"testing"
	"time"
)

func TestLimitListenerShedsOverLimit(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := LimitListener(inner, 2)
	defer l.Close()

	accepted := make(chan net.Conn, 8)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}

	c1, c2 := dial(), dial()
	_, _ = c1, c2
	a1 := <-accepted
	a2 := <-accepted

	// Third connection: accepted by the kernel but shed by the gate —
	// the client sees EOF/reset, never a served connection.
	c3 := dial()
	c3.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c3.Read(make([]byte, 1)); err == nil || err == io.ErrNoProgress {
		t.Fatalf("over-limit conn read err = %v, want closed", err)
	}
	select {
	case <-accepted:
		t.Fatal("over-limit connection was served")
	case <-time.After(100 * time.Millisecond):
	}

	// Closing a served conn frees its slot; double close releases once.
	a1.Close()
	a1.Close()
	c4 := dial()
	_ = c4
	select {
	case c := <-accepted:
		c.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("slot not released after close")
	}
	a2.Close()
}

func TestLimitListenerDisabled(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	if l := LimitListener(inner, 0); l != inner {
		t.Fatal("max<=0 should return the listener unchanged")
	}
}
