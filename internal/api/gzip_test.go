package api

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/socialnet"
)

// gzipWorld serves a store with one page whose like stream is large
// enough to cross GzipMinSize.
func gzipWorld(t *testing.T) (*httptest.Server, socialnet.PageID) {
	t.Helper()
	st := socialnet.NewStore()
	page, err := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		u := st.AddUser(socialnet.User{Country: "USA"})
		_ = st.AddLike(u, page, at.Add(time.Duration(i)*time.Minute))
	}
	srv := httptest.NewServer(NewServer(st, ""))
	t.Cleanup(srv.Close)
	return srv, page
}

// rawGet performs a GET with transport auto-decompression disabled so
// the test sees the wire encoding.
func rawGet(t *testing.T, url, acceptEncoding string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acceptEncoding != "" {
		req.Header.Set("Accept-Encoding", acceptEncoding)
	}
	tr := &http.Transport{DisableCompression: true}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestGzipLargeBody: a large like window is gzip-encoded when offered,
// decodes to the same JSON as the identity response, and carries Vary.
func TestGzipLargeBody(t *testing.T) {
	srv, page := gzipWorld(t)
	url := srv.URL + "/api/page/1/likes?cursor=0&limit=200"
	_ = page

	plain := rawGet(t, url, "")
	if enc := plain.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("identity request got Content-Encoding %q", enc)
	}
	plainBody, err := io.ReadAll(plain.Body)
	if err != nil {
		t.Fatal(err)
	}

	comp := rawGet(t, url, "gzip")
	if enc := comp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("gzip request got Content-Encoding %q, want gzip", enc)
	}
	if !strings.Contains(comp.Header.Get("Vary"), "Accept-Encoding") {
		t.Fatalf("compressed response missing Vary: Accept-Encoding (got %q)", comp.Header.Get("Vary"))
	}
	raw, err := io.ReadAll(comp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) >= len(plainBody) {
		t.Fatalf("compressed body (%d bytes) not smaller than plain (%d bytes)", len(raw), len(plainBody))
	}
	gz, err := gzip.NewReader(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	if string(decoded) != string(plainBody) {
		t.Fatal("gzip round-trip does not reproduce the identity body")
	}
	var doc PageLikesDoc
	if err := json.Unmarshal(decoded, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Likes) != 200 {
		t.Fatalf("decoded %d likes, want 200", len(doc.Likes))
	}
}

// TestGzipSkipsTinyBodies: responses under GzipMinSize stay identity
// even when the client offers gzip — framing overhead isn't worth it.
func TestGzipSkipsTinyBodies(t *testing.T) {
	srv, _ := gzipWorld(t)
	resp := rawGet(t, srv.URL+"/api/healthz", "gzip")
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("tiny body got Content-Encoding %q, want identity", enc)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("unexpected body %q", body)
	}
}

// TestGzipRespectsRefusal: gzip;q=0 is an explicit refusal.
func TestGzipRespectsRefusal(t *testing.T) {
	srv, _ := gzipWorld(t)
	resp := rawGet(t, srv.URL+"/api/page/1/likes?cursor=0&limit=200", "gzip;q=0")
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("refused gzip but got Content-Encoding %q", enc)
	}
}

// TestGzipErrorStatusPreserved: status codes pass through the
// buffering writer unchanged for small (error) bodies.
func TestGzipErrorStatusPreserved(t *testing.T) {
	srv, _ := gzipWorld(t)
	resp := rawGet(t, srv.URL+"/api/page/99999", "gzip")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}
