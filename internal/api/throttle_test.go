package api

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

func TestThrottleAllowsBurst(t *testing.T) {
	srv := httptest.NewServer(Throttle(okHandler(), 1, 5))
	defer srv.Close()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d status = %d", i, resp.StatusCode)
		}
	}
}

func TestThrottleRejectsOverBurst(t *testing.T) {
	srv := httptest.NewServer(Throttle(okHandler(), 0.5, 2))
	defer srv.Close()
	codes := make([]int, 0, 5)
	for i := 0; i < 5; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		}
	}
	limited := 0
	for _, c := range codes {
		if c == http.StatusTooManyRequests {
			limited++
		}
	}
	if limited < 2 {
		t.Fatalf("codes = %v, want >=2 rate-limited", codes)
	}
}

func TestThrottleRefills(t *testing.T) {
	srv := httptest.NewServer(Throttle(okHandler(), 50, 1))
	defer srv.Close()
	get := func() int {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if get() != 200 {
		t.Fatal("first request should pass")
	}
	// Bucket may be empty immediately after; wait for refill at 50/s.
	time.Sleep(50 * time.Millisecond)
	if get() != 200 {
		t.Fatal("request after refill should pass")
	}
}

func TestThrottleDisabled(t *testing.T) {
	h := Throttle(okHandler(), 0, 0)
	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < 20; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatal("disabled throttle should never limit")
		}
	}
}

func perClientServer(t *testing.T, cfg ThrottleConfig) *httptest.Server {
	t.Helper()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(PerClientThrottle(inner, cfg))
	t.Cleanup(srv.Close)
	return srv
}

func getAs(t *testing.T, url, token string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set(ClientTokenHeader, token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestPerClientIsolation: a greedy client exhausting its own bucket
// must not consume a polite client's budget — the failure mode of the
// old global Throttle.
func TestPerClientIsolation(t *testing.T) {
	srv := perClientServer(t, ThrottleConfig{PerClientRPS: 0.001, PerClientBurst: 3})
	greedy429 := false
	for i := 0; i < 10; i++ {
		if getAs(t, srv.URL, "greedy") == http.StatusTooManyRequests {
			greedy429 = true
		}
	}
	if !greedy429 {
		t.Fatal("greedy client was never throttled")
	}
	for i := 0; i < 3; i++ {
		if code := getAs(t, srv.URL, "polite"); code != http.StatusOK {
			t.Fatalf("polite client starved: request %d = %d", i, code)
		}
	}
}

// TestPerClientGlobalCeiling: distinct identities still share the
// global ceiling.
func TestPerClientGlobalCeiling(t *testing.T) {
	srv := perClientServer(t, ThrottleConfig{
		PerClientRPS: 1000, PerClientBurst: 1000,
		GlobalRPS: 0.001, GlobalBurst: 4,
	})
	got429 := false
	for i := 0; i < 10; i++ {
		code := getAs(t, srv.URL, fmt.Sprintf("client-%d", i))
		if code == http.StatusTooManyRequests {
			got429 = true
		}
	}
	if !got429 {
		t.Fatal("global ceiling never engaged across distinct clients")
	}
}

// TestPerClientLRUBound: the bucket table stays bounded; an evicted
// identity returns with a fresh bucket rather than an error.
func TestPerClientLRUBound(t *testing.T) {
	srv := perClientServer(t, ThrottleConfig{
		PerClientRPS: 0.001, PerClientBurst: 1, MaxClients: 2,
	})
	// a, b fill the table; c evicts a; a returns evicted => fresh bucket.
	for _, tok := range []string{"a", "b", "c", "a"} {
		if code := getAs(t, srv.URL, tok); code != http.StatusOK {
			t.Fatalf("first request for %q = %d, want 200", tok, code)
		}
	}
	// A still-resident identity with an empty bucket is limited.
	if code := getAs(t, srv.URL, "a"); code != http.StatusTooManyRequests {
		t.Fatalf("second request for resident %q = %d, want 429", "a", code)
	}
}

// TestPerClientRetryAfterHint: 429s carry a Retry-After the crawler's
// backoff machinery understands.
func TestPerClientRetryAfterHint(t *testing.T) {
	srv := perClientServer(t, ThrottleConfig{PerClientRPS: 0.5, PerClientBurst: 1})
	if code := getAs(t, srv.URL, "x"); code != http.StatusOK {
		t.Fatalf("first = %d", code)
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set(ClientTokenHeader, "x")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After hint")
	}
}
