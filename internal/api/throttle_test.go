package api

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

func TestThrottleAllowsBurst(t *testing.T) {
	srv := httptest.NewServer(Throttle(okHandler(), 1, 5))
	defer srv.Close()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d status = %d", i, resp.StatusCode)
		}
	}
}

func TestThrottleRejectsOverBurst(t *testing.T) {
	srv := httptest.NewServer(Throttle(okHandler(), 0.5, 2))
	defer srv.Close()
	codes := make([]int, 0, 5)
	for i := 0; i < 5; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		}
	}
	limited := 0
	for _, c := range codes {
		if c == http.StatusTooManyRequests {
			limited++
		}
	}
	if limited < 2 {
		t.Fatalf("codes = %v, want >=2 rate-limited", codes)
	}
}

func TestThrottleRefills(t *testing.T) {
	srv := httptest.NewServer(Throttle(okHandler(), 50, 1))
	defer srv.Close()
	get := func() int {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if get() != 200 {
		t.Fatal("first request should pass")
	}
	// Bucket may be empty immediately after; wait for refill at 50/s.
	time.Sleep(50 * time.Millisecond)
	if get() != 200 {
		t.Fatal("request after refill should pass")
	}
}

func TestThrottleDisabled(t *testing.T) {
	h := Throttle(okHandler(), 0, 0)
	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < 20; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatal("disabled throttle should never limit")
		}
	}
}
