package api

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

func TestThrottleAllowsBurst(t *testing.T) {
	srv := httptest.NewServer(Throttle(okHandler(), 1, 5))
	defer srv.Close()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d status = %d", i, resp.StatusCode)
		}
	}
}

func TestThrottleRejectsOverBurst(t *testing.T) {
	srv := httptest.NewServer(Throttle(okHandler(), 0.5, 2))
	defer srv.Close()
	codes := make([]int, 0, 5)
	for i := 0; i < 5; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		}
	}
	limited := 0
	for _, c := range codes {
		if c == http.StatusTooManyRequests {
			limited++
		}
	}
	if limited < 2 {
		t.Fatalf("codes = %v, want >=2 rate-limited", codes)
	}
}

func TestThrottleRefills(t *testing.T) {
	srv := httptest.NewServer(Throttle(okHandler(), 50, 1))
	defer srv.Close()
	get := func() int {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if get() != 200 {
		t.Fatal("first request should pass")
	}
	// Bucket may be empty immediately after; wait for refill at 50/s.
	time.Sleep(50 * time.Millisecond)
	if get() != 200 {
		t.Fatal("request after refill should pass")
	}
}

func TestThrottleDisabled(t *testing.T) {
	h := Throttle(okHandler(), 0, 0)
	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < 20; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatal("disabled throttle should never limit")
		}
	}
}

func perClientServer(t *testing.T, cfg ThrottleConfig) *httptest.Server {
	t.Helper()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(PerClientThrottle(inner, cfg))
	t.Cleanup(srv.Close)
	return srv
}

func getAs(t *testing.T, url, token string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set(ClientTokenHeader, token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestPerClientIsolation: a greedy client exhausting its own bucket
// must not consume a polite client's budget — the failure mode of the
// old global Throttle.
func TestPerClientIsolation(t *testing.T) {
	srv := perClientServer(t, ThrottleConfig{PerClientRPS: 0.001, PerClientBurst: 3})
	greedy429 := false
	for i := 0; i < 10; i++ {
		if getAs(t, srv.URL, "greedy") == http.StatusTooManyRequests {
			greedy429 = true
		}
	}
	if !greedy429 {
		t.Fatal("greedy client was never throttled")
	}
	for i := 0; i < 3; i++ {
		if code := getAs(t, srv.URL, "polite"); code != http.StatusOK {
			t.Fatalf("polite client starved: request %d = %d", i, code)
		}
	}
}

// TestPerClientGlobalCeiling: distinct identities still share the
// global ceiling.
func TestPerClientGlobalCeiling(t *testing.T) {
	srv := perClientServer(t, ThrottleConfig{
		PerClientRPS: 1000, PerClientBurst: 1000,
		GlobalRPS: 0.001, GlobalBurst: 4,
	})
	got429 := false
	for i := 0; i < 10; i++ {
		code := getAs(t, srv.URL, fmt.Sprintf("client-%d", i))
		if code == http.StatusTooManyRequests {
			got429 = true
		}
	}
	if !got429 {
		t.Fatal("global ceiling never engaged across distinct clients")
	}
}

// TestPerClientLRUBound: the bucket table stays bounded, and — the
// eviction-laundering fix — identities admitted while the table is at
// capacity start with an EMPTY bucket. Under the old fresh-full-bucket
// policy, an address-spraying client could cycle identities through
// the LRU and collect a whole burst per lap; now both a returning
// evicted identity and a brand-new one arriving at a hot table are
// limited from their first request.
func TestPerClientLRUBound(t *testing.T) {
	srv := perClientServer(t, ThrottleConfig{
		PerClientRPS: 0.001, PerClientBurst: 3, MaxClients: 2,
	})
	// a, b fill the table while it has free capacity: full bursts.
	for _, tok := range []string{"a", "b"} {
		if code := getAs(t, srv.URL, tok); code != http.StatusOK {
			t.Fatalf("first request for %q = %d, want 200", tok, code)
		}
	}
	// c arrives at a full table: admitted (evicting a), but with an
	// empty bucket — no fresh burst for new identities during a flood.
	if code := getAs(t, srv.URL, "c"); code != http.StatusTooManyRequests {
		t.Fatalf("first request for %q at capacity = %d, want 429", "c", code)
	}
	// a returns after eviction (c's admission evicted it): also an
	// empty bucket, even though a never spent its original burst —
	// eviction forgot it, and re-admission must not mint a new one.
	if code := getAs(t, srv.URL, "a"); code != http.StatusTooManyRequests {
		t.Fatalf("evicted-and-returning %q = %d, want 429 (laundered bucket)", "a", code)
	}
}

// TestPerClientEvictionLaunderingClosed drives the actual attack: a
// client spraying distinct identities round-robin through a bounded
// table. The aggregate throughput it extracts must stay at the honest
// startup allowance (one burst per identity that was admitted while
// the table had free capacity) instead of growing by a fresh burst per
// lap.
func TestPerClientEvictionLaunderingClosed(t *testing.T) {
	const max, burst = 4, 5
	srv := perClientServer(t, ThrottleConfig{
		PerClientRPS: 0.001, PerClientBurst: burst, MaxClients: max,
	})
	ok := 0
	// 3 laps over 8 identities (table holds 4): every admission after
	// the first `max` identities evicts someone.
	for lap := 0; lap < 3; lap++ {
		for id := 0; id < 2*max; id++ {
			if getAs(t, srv.URL, fmt.Sprintf("spray-%d", id)) == http.StatusOK {
				ok++
			}
		}
	}
	// Honest allowance: the first `max` identities were admitted into
	// free capacity with full bursts. Everything beyond that (refills
	// at 0.001 rps are negligible) means eviction laundered tokens.
	if ok > max*burst {
		t.Fatalf("spray extracted %d requests, want <= %d (one burst per free-capacity admission)", ok, max*burst)
	}
}

// TestPerClientRetryAfterHint: 429s carry a Retry-After the crawler's
// backoff machinery understands.
func TestPerClientRetryAfterHint(t *testing.T) {
	srv := perClientServer(t, ThrottleConfig{PerClientRPS: 0.5, PerClientBurst: 1})
	if code := getAs(t, srv.URL, "x"); code != http.StatusOK {
		t.Fatalf("first = %d", code)
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set(ClientTokenHeader, "x")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After hint")
	}
}
