package core

import (
	"fmt"
	"time"

	"repro/internal/parallel"
	"repro/internal/platform"
)

// SweepVariant is one cell of a scenario grid: a name and a complete
// study configuration.
type SweepVariant struct {
	Name   string
	Config StudyConfig
}

// SweepAxis is one dimension of a scenario grid: a set of labeled
// config mutations (e.g. budgets ×2, a different farm mix, a smaller
// population).
type SweepAxis struct {
	Name   string
	Values []SweepValue
}

// SweepValue is one point on an axis: a label and the mutation it
// applies to a copied base configuration.
type SweepValue struct {
	Label string
	Apply func(*StudyConfig)
}

// CloneConfig returns a copy of the config whose top-level slices
// (Campaigns, Farms, Markets) are independent, so the usual grid
// mutations — budgets, order sizes, farm mixes, population knobs —
// never leak between variants. Deeply nested shared pointers
// (distributions, cover slices) are still shared and must be treated
// as immutable by axis mutations.
func CloneConfig(c StudyConfig) StudyConfig {
	out := c
	out.Campaigns = append([]CampaignSpec(nil), c.Campaigns...)
	out.Farms = append([]FarmSetup(nil), c.Farms...)
	out.Markets = append([]platform.ClickMarket(nil), c.Markets...)
	return out
}

// GridVariants expands the cartesian product of the axes over a base
// configuration into named variants ("budget=2x/pop=50%"). Axis values
// apply in axis order to an independent clone of the base config (see
// CloneConfig), so variants never share the state grid mutations
// usually touch. With no axes it returns the base as the single
// variant.
func GridVariants(base StudyConfig, axes ...SweepAxis) []SweepVariant {
	variants := []SweepVariant{{Name: "base", Config: base}}
	for _, ax := range axes {
		if len(ax.Values) == 0 {
			continue
		}
		next := make([]SweepVariant, 0, len(variants)*len(ax.Values))
		for _, v := range variants {
			for _, val := range ax.Values {
				nv := SweepVariant{Name: val.Label, Config: CloneConfig(v.Config)}
				if v.Name != "base" {
					nv.Name = v.Name + "/" + val.Label
				}
				if val.Apply != nil {
					val.Apply(&nv.Config)
				}
				next = append(next, nv)
			}
		}
		variants = next
	}
	return variants
}

// SweepOutcome is the result of one variant: the full Results on
// success, or the error that stopped it. Elapsed is the wall time the
// variant took on its worker. Detector carries the streaming-detector
// evaluation when the sweep ran with EvalDetector.
type SweepOutcome struct {
	Name     string
	Results  *Results
	Detector *DetectorEval
	Err      error
	Elapsed  time.Duration
}

// SweepSummaryRow aggregates one variant for quick comparison across
// the grid.
type SweepSummaryRow struct {
	Name         string
	Seed         int64
	Campaigns    int
	TotalLikes   int
	Terminated   int
	RemovedLikes int
	HistoryLikes int
	// DetectorAUC/DetectorF1 are filled (with Detector=true) when the
	// sweep ran with EvalDetector.
	Detector    bool
	DetectorAUC float64
	DetectorF1  float64
}

// Sweep executes many study variants concurrently — the scenario-grid
// workloads (budget ablations, farm-mix ablations, population scaling)
// that a single serial Study.Run cannot cover in reasonable time. Each
// variant builds its own world (own store, own clock, own streams), so
// variants share nothing and the grid parallelizes perfectly; per-study
// parallelism is governed by each variant's StudyConfig.Workers.
type Sweep struct {
	Variants []SweepVariant
	// Workers bounds how many variants run at once (0 = one per CPU).
	// Grids of full-size studies are memory-hungry; cap this when
	// worlds are large.
	Workers int
	// InnerWorkers overrides every variant's StudyConfig.Workers when
	// > 0; set it to 1 to keep the total goroutine count equal to
	// Workers.
	InnerWorkers int
	// EvalDetector, when set, scores the streaming fraud detector
	// against ground truth over every variant's finished world
	// (SweepOutcome.Detector) — the regression axis for detector
	// changes: a scoring tweak shows up as AUC/precision/recall drift
	// across the scenario grid.
	EvalDetector bool
	// StreamTerminations forces every variant onto the live-verdict
	// termination engine (StudyConfig.Terminations = TerminationStream)
	// — the grid-wide switch for exercising the production detection
	// path. Results are byte-identical to the batch engine, so flipping
	// it must never change a summary row.
	StreamTerminations bool
}

// Run executes the grid. Every variant runs to completion (failures
// don't cancel siblings); outcomes are returned in variant order. The
// returned error is the first variant error in grid order, if any —
// outcomes are complete either way.
func (sw *Sweep) Run() ([]SweepOutcome, error) {
	outcomes := make([]SweepOutcome, len(sw.Variants))
	err := parallel.ForEach(sw.Workers, len(sw.Variants), func(i int) error {
		v := sw.Variants[i]
		cfg := v.Config
		if sw.InnerWorkers > 0 {
			cfg.Workers = sw.InnerWorkers
		}
		if sw.StreamTerminations {
			cfg.Terminations = TerminationStream
		}
		start := time.Now()
		res, study, err := runVariant(cfg)
		outcomes[i] = SweepOutcome{
			Name:    v.Name,
			Results: res,
			Err:     err,
			Elapsed: time.Since(start),
		}
		if err != nil {
			return fmt.Errorf("core: sweep variant %s: %w", v.Name, err)
		}
		if sw.EvalDetector {
			outcomes[i].Detector = EvaluateDetector(study.Store())
		}
		return nil
	})
	return outcomes, err
}

func runVariant(cfg StudyConfig) (*Results, *Study, error) {
	s, err := NewStudy(cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.Run()
	return res, s, err
}

// Summarize aggregates outcomes into comparison rows, skipping failed
// variants.
func Summarize(outcomes []SweepOutcome) []SweepSummaryRow {
	rows := make([]SweepSummaryRow, 0, len(outcomes))
	for _, o := range outcomes {
		if o.Err != nil || o.Results == nil {
			continue
		}
		row := SweepSummaryRow{
			Name:         o.Name,
			Seed:         o.Results.Config.Seed,
			Campaigns:    len(o.Results.Campaigns),
			HistoryLikes: o.Results.HistoryLikes,
		}
		for _, c := range o.Results.Campaigns {
			row.TotalLikes += c.Likes
			row.Terminated += c.Terminated
		}
		for _, n := range o.Results.RemovedLikes {
			row.RemovedLikes += n
		}
		if o.Detector != nil {
			row.Detector = true
			row.DetectorAUC = o.Detector.AUC
			row.DetectorF1 = o.Detector.F1
		}
		rows = append(rows, row)
	}
	return rows
}
