package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/honeypot"
	"repro/internal/simclock"
	"repro/internal/socialnet"
)

// StudyStateFile is the run-state file Persist writes next to the
// store checkpoint inside a study directory.
const StudyStateFile = "study.json"

// persistedCampaign is one campaign's run outcome on disk: everything
// Finalize reads from a `running` state. The spec itself is not
// persisted — ReopenStudy re-derives it from the caller's config and
// verifies the IDs line up, so distributions and large specs never
// round-trip through JSON.
type persistedCampaign struct {
	ID      string
	Page    socialnet.PageID
	Active  bool
	Summary honeypot.Summary
}

// persistedStudy is the study run-state file format.
type persistedStudy struct {
	Version      int
	Seed         int64
	Baseline     []socialnet.UserID
	HistoryLikes int
	Campaigns    []persistedCampaign
}

const persistedStudyVersion = 1

// Persist writes the completed run to dir: a durable checkpoint of the
// world (socialnet snapshot + manifest; see Store.Checkpoint) plus the
// run state Finalize needs. After Persist, the process can die —
// ReopenStudy(cfg, dir) recovers a study whose Finalize output is
// byte-identical to what this one would have produced.
func (s *Study) Persist(dir string) error {
	if s.world == nil {
		return errors.New("core: Persist called before RunWorld")
	}
	if err := s.store.Checkpoint(dir); err != nil {
		return fmt.Errorf("core: persist world: %w", err)
	}
	ps := persistedStudy{
		Version:      persistedStudyVersion,
		Seed:         s.cfg.Seed,
		Baseline:     s.world.baseline,
		HistoryLikes: s.world.histLikes,
		Campaigns:    make([]persistedCampaign, len(s.world.states)),
	}
	for i, st := range s.world.states {
		ps.Campaigns[i] = persistedCampaign{
			ID:      st.spec.ID,
			Page:    st.page,
			Active:  st.active,
			Summary: st.summary,
		}
	}
	data, err := json.MarshalIndent(&ps, "", " ")
	if err != nil {
		return err
	}
	return socialnet.WriteFileDurable(filepath.Join(dir, StudyStateFile), data)
}

// ReopenStudy recovers a persisted study run: the durable world is
// reopened (snapshot + WAL tail replay) and the run state reattached to
// the caller's config. cfg must be the same configuration the original
// study ran with — campaign IDs are verified, and Seed must match — but
// Workers may differ: Finalize is bit-deterministic across pool sizes.
//
// The returned study is finalize-only: the world phases already ran in
// the original process, so RunWorld/Run and the accessors backing them
// (Population, Farm) are unavailable.
func ReopenStudy(cfg StudyConfig, dir string, opts socialnet.WALOptions) (*Study, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, StudyStateFile))
	if err != nil {
		return nil, fmt.Errorf("core: reopen study: %w", err)
	}
	var ps persistedStudy
	if err := json.Unmarshal(data, &ps); err != nil {
		return nil, fmt.Errorf("core: corrupt %s: %w", StudyStateFile, err)
	}
	if ps.Version != persistedStudyVersion {
		return nil, fmt.Errorf("core: %s version %d, want %d", StudyStateFile, ps.Version, persistedStudyVersion)
	}
	if ps.Seed != cfg.Seed {
		return nil, fmt.Errorf("core: persisted run used seed %d, config says %d", ps.Seed, cfg.Seed)
	}
	if len(ps.Campaigns) != len(cfg.Campaigns) {
		return nil, fmt.Errorf("core: persisted run has %d campaigns, config %d", len(ps.Campaigns), len(cfg.Campaigns))
	}
	states := make([]*running, len(ps.Campaigns))
	for i, pc := range ps.Campaigns {
		if cfg.Campaigns[i].ID != pc.ID {
			return nil, fmt.Errorf("core: campaign %d is %q on disk, %q in config", i, pc.ID, cfg.Campaigns[i].ID)
		}
		states[i] = &running{
			spec:    cfg.Campaigns[i],
			page:    pc.Page,
			active:  pc.Active,
			summary: pc.Summary,
		}
	}
	store, stats, err := socialnet.OpenDurable(dir, opts)
	if err != nil {
		return nil, fmt.Errorf("core: reopen world: %w", err)
	}
	if stats.DroppedEvents > 0 {
		store.Close()
		return nil, fmt.Errorf("core: reopen world: %d journal events reference unknown users/pages", stats.DroppedEvents)
	}
	return &Study{
		cfg:   cfg,
		store: store,
		clock: simclock.New(cfg.Start),
		world: &worldState{states: states, baseline: ps.Baseline, histLikes: ps.HistoryLikes},
	}, nil
}
