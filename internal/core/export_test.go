package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteArtifacts(t *testing.T) {
	res := miniResults(t)
	dir := t.TempDir()
	files, err := res.WriteArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"table1_campaigns.csv", "figure1_geolocation.csv", "table2_demographics.csv",
		"figure2_temporal.csv", "table3_socialgraph.csv", "figure4_pagelikes.csv",
		"figure5a_jaccard_pages.csv", "figure5b_jaccard_likers.csv",
		"extension_removed_likes.csv", "report.txt",
	}
	got := map[string]bool{}
	for _, f := range files {
		got[f] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("missing artifact %s in %v", w, files)
		}
		data, err := os.ReadFile(filepath.Join(dir, w))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 20 {
			t.Fatalf("artifact %s suspiciously small (%d bytes)", w, len(data))
		}
	}
	// CSV headers sane.
	t1, _ := os.ReadFile(filepath.Join(dir, "table1_campaigns.csv"))
	if !strings.HasPrefix(string(t1), "campaign,provider,") {
		t.Fatalf("table1 header: %s", string(t1[:60]))
	}
	// 13 campaigns + header.
	if lines := strings.Count(string(t1), "\n"); lines != 14 {
		t.Fatalf("table1 lines = %d, want 14", lines)
	}
}

func TestWriteFigure3DOT(t *testing.T) {
	// Needs the study, not just results; run a tiny dedicated one.
	cfg, err := ScaledConfig(3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	files, err := s.WriteFigure3DOT(res, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("files = %v", files)
	}
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		txt := string(data)
		if !strings.HasPrefix(txt, "graph ") || !strings.Contains(txt, " -- ") {
			t.Fatalf("%s is not a DOT graph:\n%s", f, txt[:min(200, len(txt))])
		}
	}
}

func TestRemovedLikesExtension(t *testing.T) {
	res := miniResults(t)
	// Every active campaign has an entry; removed <= likes.
	for _, c := range res.Campaigns {
		if !c.Active {
			continue
		}
		removed, ok := res.RemovedLikes[c.Spec.ID]
		if !ok {
			t.Fatalf("no removed-likes entry for %s", c.Spec.ID)
		}
		if removed < 0 || removed > c.Likes {
			t.Fatalf("%s removed = %d of %d", c.Spec.ID, removed, c.Likes)
		}
		if removed != c.Terminated {
			// Each terminated liker contributed exactly one like to the
			// honeypot, so the two counts coincide.
			t.Fatalf("%s removed %d != terminated %d", c.Spec.ID, removed, c.Terminated)
		}
	}
	out := res.RenderRemovedLikes()
	if !strings.Contains(out, "Removed") || !strings.Contains(out, "SF-ALL") {
		t.Fatalf("render:\n%s", out)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
