package core

import (
	"bytes"
	"testing"
)

// runScaledWithWorkers runs the 13-campaign study at small scale with a
// given worker-pool size and returns the stable JSON rendering minus
// the worker count itself (the one config field allowed to differ).
func runScaledWithWorkers(t *testing.T, seed int64, scale float64, workers int) []byte {
	t.Helper()
	cfg, err := ScaledConfig(seed, scale)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = workers
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	res.Config.Workers = 0 // normalize: only the pool size differs by design
	data, err := res.MarshalJSONStable()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunDeterministicAcrossWorkerCounts is the parallel engine's core
// guarantee: the serial path (Workers=1) and parallel paths of any
// width produce byte-identical Results for the same seed, because every
// campaign and every account draws from its own RNG stream split from
// the root seed.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := runScaledWithWorkers(t, 42, 0.08, 1)
	if len(serial) == 0 {
		t.Fatal("empty results JSON")
	}
	for _, workers := range []int{4, 16} {
		par := runScaledWithWorkers(t, 42, 0.08, workers)
		if !bytes.Equal(serial, par) {
			t.Fatalf("results with Workers=%d differ from serial run (serial %d bytes, parallel %d bytes)",
				workers, len(serial), len(par))
		}
	}
}

// TestRunDeterministicAcrossRepeats guards the weaker (but older)
// property too: same seed, same worker count, same bytes.
func TestRunDeterministicAcrossRepeats(t *testing.T) {
	a := runScaledWithWorkers(t, 7, 0.08, 0)
	b := runScaledWithWorkers(t, 7, 0.08, 0)
	if !bytes.Equal(a, b) {
		t.Fatal("two runs with identical config differ")
	}
}

// TestRunSeedSensitivity: different seeds must not collapse onto the
// same output (a degenerate way to pass the determinism tests).
func TestRunSeedSensitivity(t *testing.T) {
	a := runScaledWithWorkers(t, 1, 0.08, 0)
	b := runScaledWithWorkers(t, 2, 0.08, 0)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical results")
	}
}

// runScaledWithMode is runScaledWithWorkers with an analysis-engine
// override (the mode is config-local and not rendered into JSON).
func runScaledWithMode(t *testing.T, seed int64, scale float64, workers int, mode string) []byte {
	t.Helper()
	cfg, err := ScaledConfig(seed, scale)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = workers
	cfg.Analyses = mode
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	res.Config.Workers = 0
	data, err := res.MarshalJSONStable()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestAnalysisEnginesEquivalent: the one-pass streaming engine and the
// legacy multi-scan engine must render byte-identical Results — the
// aggregators are a pure re-plumbing of the §4 analyses, not a
// reinterpretation.
func TestAnalysisEnginesEquivalent(t *testing.T) {
	onePass := runScaledWithMode(t, 42, 0.08, 0, AnalysisOnePass)
	multi := runScaledWithMode(t, 42, 0.08, 0, AnalysisMultiScan)
	if !bytes.Equal(onePass, multi) {
		t.Fatalf("analysis engines diverge (one-pass %d bytes, multi-scan %d bytes)",
			len(onePass), len(multi))
	}
}

// TestJournalStatsExported: the run's journal accounting lands in
// Results and the stable JSON, with per-campaign cursors matching the
// monitors' consumption.
func TestJournalStatsExported(t *testing.T) {
	cfg, err := ScaledConfig(11, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Journal.TotalEvents != s.Store().Journal().Len() {
		t.Fatalf("TotalEvents = %d, journal holds %d", res.Journal.TotalEvents, s.Store().Journal().Len())
	}
	if res.Journal.TotalEvents <= res.HistoryLikes {
		t.Fatalf("TotalEvents %d should exceed history likes %d (campaign likes missing?)",
			res.Journal.TotalEvents, res.HistoryLikes)
	}
	if len(res.Journal.Campaigns) != len(res.Campaigns) {
		t.Fatalf("journal stats cover %d campaigns, want %d", len(res.Journal.Campaigns), len(res.Campaigns))
	}
	likes := 0
	for _, c := range res.Campaigns {
		js := res.Journal.Campaigns[c.Spec.ID]
		if c.Active && js.Cursor != c.Likes {
			t.Fatalf("campaign %s cursor %d != observed likes %d", c.Spec.ID, js.Cursor, c.Likes)
		}
		if js.Events < js.Cursor {
			t.Fatalf("campaign %s events %d < cursor %d", c.Spec.ID, js.Events, js.Cursor)
		}
		likes += js.Events
	}
	if likes == 0 {
		t.Fatal("no campaign journal events recorded")
	}
	data, err := res.MarshalJSONStable()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"Journal"`)) || !bytes.Contains(data, []byte(`"TotalEvents"`)) {
		t.Fatal("stable JSON missing journal stats")
	}
}
