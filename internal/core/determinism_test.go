package core

import (
	"bytes"
	"testing"
)

// runScaledWithWorkers runs the 13-campaign study at small scale with a
// given worker-pool size and returns the stable JSON rendering minus
// the worker count itself (the one config field allowed to differ).
func runScaledWithWorkers(t *testing.T, seed int64, scale float64, workers int) []byte {
	t.Helper()
	cfg, err := ScaledConfig(seed, scale)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = workers
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	res.Config.Workers = 0 // normalize: only the pool size differs by design
	data, err := res.MarshalJSONStable()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunDeterministicAcrossWorkerCounts is the parallel engine's core
// guarantee: the serial path (Workers=1) and parallel paths of any
// width produce byte-identical Results for the same seed, because every
// campaign and every account draws from its own RNG stream split from
// the root seed.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := runScaledWithWorkers(t, 42, 0.08, 1)
	if len(serial) == 0 {
		t.Fatal("empty results JSON")
	}
	for _, workers := range []int{4, 16} {
		par := runScaledWithWorkers(t, 42, 0.08, workers)
		if !bytes.Equal(serial, par) {
			t.Fatalf("results with Workers=%d differ from serial run (serial %d bytes, parallel %d bytes)",
				workers, len(serial), len(par))
		}
	}
}

// TestRunDeterministicAcrossRepeats guards the weaker (but older)
// property too: same seed, same worker count, same bytes.
func TestRunDeterministicAcrossRepeats(t *testing.T) {
	a := runScaledWithWorkers(t, 7, 0.08, 0)
	b := runScaledWithWorkers(t, 7, 0.08, 0)
	if !bytes.Equal(a, b) {
		t.Fatal("two runs with identical config differ")
	}
}

// TestRunSeedSensitivity: different seeds must not collapse onto the
// same output (a degenerate way to pass the determinism tests).
func TestRunSeedSensitivity(t *testing.T) {
	a := runScaledWithWorkers(t, 1, 0.08, 0)
	b := runScaledWithWorkers(t, 2, 0.08, 0)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical results")
	}
}
