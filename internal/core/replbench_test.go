package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/crawler"
	"repro/internal/socialnet"
)

// Replication benchmark (BENCH_repl.json). Two perf stories:
//
//   - repl_read_throughput: aggregate read rps against 1, 2, and 4
//     read replicas. All replicas run in one test process, so raw
//     wall-clock would just measure the shared CPU; instead each
//     replica node sits behind a capacity gate — a mutex serializing
//     requests with a fixed per-request service time — modelling the
//     one-node capacity that real replicas multiply. The CI gate
//     requires rps(2 replicas) >= 1.6x rps(1).
//   - sharded_crawl: wall-clock of the same politeness-bound crawl
//     run as 1 process vs 2 shard processes. Politeness is per crawl
//     identity (the paper's crawl accounts), so two shards with their
//     own MinInterval budgets finish in about half the time.
type replBenchResult struct {
	Name     string  `json:"name"`
	Replicas int     `json:"replicas,omitempty"`
	Shards   int     `json:"shards,omitempty"`
	RPS      float64 `json:"rps,omitempty"`
	Ms       float64 `json:"ms,omitempty"`
}

// nodeCost is the modelled per-request service time of one replica
// node; its serialization is what makes N nodes ~N× the throughput.
const nodeCost = 300 * time.Microsecond

// replBenchWorld builds a small durable world and serves it as a
// replication leader.
func replBenchWorld(t *testing.T) (*httptest.Server, socialnet.PageID) {
	t.Helper()
	dir := t.TempDir()
	st := socialnet.NewShardedStore(4)
	page, err := st.AddPage(socialnet.Page{Name: "bench", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 40; i++ {
		u := st.AddUser(socialnet.User{Country: "USA", Searchable: true})
		if err := st.AddLike(u, page, base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	leader, _, err := socialnet.OpenDurable(dir, socialnet.WALOptions{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })
	srv := httptest.NewServer(api.NewServer(leader, "sekrit"))
	t.Cleanup(srv.Close)
	return srv, page
}

// gatedReplicas bootstraps n followers of the leader and serves each
// behind its own capacity gate, returning the replica base URLs.
func gatedReplicas(t *testing.T, leaderURL string, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		src := api.NewReplHTTPSource(leaderURL, "sekrit", nil)
		fw, _, err := socialnet.OpenFollower(context.Background(), t.TempDir(), src, socialnet.FollowerOptions{WAL: socialnet.WALOptions{SyncInterval: -1}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fw.Close() })
		if _, err := fw.Poll(context.Background()); err != nil {
			t.Fatal(err)
		}
		rs := api.NewServer(fw.Store(), "")
		rs.SetReadOnly(true)
		var mu sync.Mutex
		gate := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			time.Sleep(nodeCost)
			mu.Unlock()
			rs.ServeHTTP(w, r)
		})
		srv := httptest.NewServer(gate)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// measureReadRPS drives totalReqs page reads from `clients` goroutines
// round-robin across the replica set and returns aggregate rps.
func measureReadRPS(t *testing.T, urls []string, page socialnet.PageID) float64 {
	t.Helper()
	const totalReqs = 2000
	const clients = 16
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	path := fmt.Sprintf("/api/page/%d", page)
	var next atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > totalReqs {
					return
				}
				resp, err := hc.Get(urls[int(i)%len(urls)] + path)
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	return totalReqs / time.Since(start).Seconds()
}

// crawlBenchWorld builds a small in-memory roster for the wall-clock
// comparison: 8 pages, 4 likers each.
func crawlBenchWorld(t *testing.T) (*httptest.Server, []int64) {
	t.Helper()
	st := socialnet.NewStore()
	base := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)
	var pages []int64
	for p := 0; p < 8; p++ {
		pg, err := st.AddPage(socialnet.Page{Name: fmt.Sprintf("hp-%d", p), Honeypot: true})
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, int64(pg))
		for i := 0; i < 4; i++ {
			u := st.AddUser(socialnet.User{Country: "USA", FriendsPublic: true})
			if err := st.AddLike(u, pg, base.Add(time.Duration(p*10+i)*time.Minute)); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv := httptest.NewServer(api.NewServer(st, ""))
	t.Cleanup(srv.Close)
	return srv, pages
}

// shardedCrawlMs runs the roster as n concurrent shard processes, each
// with its own politeness budget (MinInterval 2ms), and returns total
// wall-clock in milliseconds.
func shardedCrawlMs(t *testing.T, srv *httptest.Server, pages []int64, n int) float64 {
	t.Helper()
	var wg sync.WaitGroup
	errc := make(chan error, n)
	start := time.Now()
	for shard := 0; shard < n; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			cfg := crawler.DefaultConfig(srv.URL)
			cfg.MinInterval = 2 * time.Millisecond
			cfg.Adaptive = false
			cfg.APIToken = fmt.Sprintf("crawler-shard-%d-of-%d", shard+1, n)
			cl, err := crawler.New(cfg)
			if err != nil {
				errc <- err
				return
			}
			pipe := crawler.NewPipeline(cl, crawler.PipelineConfig{Workers: 8, BatchSize: 10}, nil)
			owned := crawler.ShardPages(pages, shard, n)
			if err := pipe.Crawl(context.Background(), owned, func(int64, crawler.LikerProfile) error { return nil }); err != nil {
				errc <- err
			}
		}(shard)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	return float64(time.Since(start).Microseconds()) / 1000
}

// TestEmitReplBenchJSON, gated behind REPL_BENCH_JSON=<path>, measures
// read-replica throughput scaling (1/2/4 replicas) and sharded-crawl
// wall-clock (1/2 shards) and writes BENCH_repl.json. CI uploads the
// file and gates on the 2-replica read ratio.
func TestEmitReplBenchJSON(t *testing.T) {
	path := os.Getenv("REPL_BENCH_JSON")
	if path == "" {
		t.Skip("set REPL_BENCH_JSON=<path> to emit the replication benchmark artifact")
	}
	var results []replBenchResult

	leaderSrv, page := replBenchWorld(t)
	for _, n := range []int{1, 2, 4} {
		urls := gatedReplicas(t, leaderSrv.URL, n)
		// One warm pass to open connections, then the measured pass.
		measureReadRPS(t, urls, page)
		rps := measureReadRPS(t, urls, page)
		results = append(results, replBenchResult{Name: "repl_read_throughput", Replicas: n, RPS: rps})
		t.Logf("replicas=%d rps=%.0f", n, rps)
	}

	crawlSrv, pages := crawlBenchWorld(t)
	for _, n := range []int{1, 2} {
		ms := shardedCrawlMs(t, crawlSrv, pages, n)
		results = append(results, replBenchResult{Name: "sharded_crawl", Shards: n, Ms: ms})
		t.Logf("shards=%d wall=%.1fms", n, ms)
	}

	raw, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", path, raw)
}
