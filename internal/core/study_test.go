package core

import (
	"strings"
	"testing"

	"repro/internal/socialnet"
)

// miniResults runs the 13-campaign study at 1/10 scale, cached across
// tests in this package.
var cachedMini *Results

func miniResults(t *testing.T) *Results {
	t.Helper()
	if cachedMini != nil {
		return cachedMini
	}
	cfg, err := ScaledConfig(7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	cachedMini = res
	return res
}

func campaign(t *testing.T, res *Results, id string) CampaignResult {
	t.Helper()
	for _, c := range res.Campaigns {
		if c.Spec.ID == id {
			return c
		}
	}
	t.Fatalf("campaign %s missing", id)
	return CampaignResult{}
}

func TestStudyRunsAll13Campaigns(t *testing.T) {
	res := miniResults(t)
	if len(res.Campaigns) != 13 {
		t.Fatalf("campaigns = %d, want 13", len(res.Campaigns))
	}
	ids := map[string]bool{}
	for _, c := range res.Campaigns {
		ids[c.Spec.ID] = true
	}
	for _, want := range []string{"FB-USA", "FB-FRA", "FB-IND", "FB-EGY", "FB-ALL",
		"BL-ALL", "BL-USA", "SF-ALL", "SF-USA", "AL-ALL", "AL-USA", "MS-ALL", "MS-USA"} {
		if !ids[want] {
			t.Fatalf("missing campaign %s", want)
		}
	}
}

func TestInactiveCampaignsDeliverNothing(t *testing.T) {
	res := miniResults(t)
	for _, id := range []string{"BL-ALL", "MS-ALL"} {
		c := campaign(t, res, id)
		if c.Active {
			t.Fatalf("%s should be inactive", id)
		}
		if c.Likes != 0 {
			t.Fatalf("%s delivered %d likes", id, c.Likes)
		}
	}
}

func TestActiveCampaignsDeliver(t *testing.T) {
	res := miniResults(t)
	for _, id := range []string{"FB-IND", "FB-EGY", "FB-ALL", "BL-USA", "SF-ALL", "SF-USA", "AL-ALL", "AL-USA", "MS-USA"} {
		c := campaign(t, res, id)
		if !c.Active || c.Likes == 0 {
			t.Fatalf("%s: active=%v likes=%d", id, c.Active, c.Likes)
		}
	}
	// Cheap markets vastly outdeliver expensive ones on equal budget.
	if campaign(t, res, "FB-IND").Likes <= campaign(t, res, "FB-USA").Likes {
		t.Fatal("India should garner far more likes than USA per dollar")
	}
}

func TestWorldwideCampaignIsIndian(t *testing.T) {
	res := miniResults(t)
	for _, row := range res.Geo {
		if row.CampaignID == "FB-ALL" {
			if row.Percent[socialnet.CountryIndia] < 85 {
				t.Fatalf("FB-ALL india pct = %v, want ≳90", row.Percent[socialnet.CountryIndia])
			}
			return
		}
	}
	t.Fatal("FB-ALL geo row missing")
}

func TestSocialFormulaIgnoresTargeting(t *testing.T) {
	res := miniResults(t)
	for _, row := range res.Geo {
		if row.CampaignID == "SF-USA" {
			if row.Percent[socialnet.CountryTurkey] < 70 {
				t.Fatalf("SF-USA turkey pct = %v", row.Percent[socialnet.CountryTurkey])
			}
			return
		}
	}
	t.Fatal("SF-USA geo row missing")
}

func TestKLOrdering(t *testing.T) {
	res := miniResults(t)
	kl := map[string]float64{}
	for _, row := range res.Demo {
		kl[row.CampaignID] = row.KL
	}
	// SF mirrors the global population; FB-IND/EGY/ALL are far from it.
	if kl["SF-ALL"] > 0.25 {
		t.Fatalf("SF-ALL KL = %v, want near 0", kl["SF-ALL"])
	}
	for _, id := range []string{"FB-IND", "FB-EGY", "FB-ALL"} {
		if kl[id] < 0.4 {
			t.Fatalf("%s KL = %v, want large", id, kl[id])
		}
		if kl[id] <= kl["SF-ALL"] {
			t.Fatalf("%s KL should exceed SF-ALL", id)
		}
	}
}

func TestBurstVsTrickleShapes(t *testing.T) {
	res := miniResults(t)
	burst := map[string]float64{}
	for _, b := range res.Bursts {
		burst[b.CampaignID] = b.MaxDayJumpFrac
	}
	// Burst farms concentrate delivery; BL and FB ads trickle.
	for _, id := range []string{"SF-ALL", "SF-USA", "AL-ALL", "MS-USA"} {
		if burst[id] < 0.3 {
			t.Fatalf("%s max-day jump = %v, want bursty", id, burst[id])
		}
	}
	for _, id := range []string{"BL-USA", "FB-IND", "FB-EGY"} {
		if burst[id] > 0.25 {
			t.Fatalf("%s max-day jump = %v, want trickle", id, burst[id])
		}
	}
}

func TestWindowAnalysisShape(t *testing.T) {
	res := miniResults(t)
	w := map[string]float64{}
	active := map[string]int{}
	for _, ws := range res.Windows {
		w[ws.CampaignID] = ws.MaxFrac2h
		active[ws.CampaignID] = ws.ActiveWindows
	}
	// Burst farms land a large share of all likes inside one 2-hour
	// window; BL and FB ads never do.
	for _, id := range []string{"SF-ALL", "AL-ALL"} {
		if w[id] < 0.3 {
			t.Fatalf("%s max 2h fraction = %v, want bursty", id, w[id])
		}
	}
	for _, id := range []string{"BL-USA", "FB-IND"} {
		if w[id] > 0.2 {
			t.Fatalf("%s max 2h fraction = %v, want trickle", id, w[id])
		}
	}
	// Trickles touch far more windows than bursts.
	if active["BL-USA"] <= active["SF-ALL"] {
		t.Fatalf("BL active windows %d should exceed SF %d", active["BL-USA"], active["SF-ALL"])
	}
}

func TestTable3Shape(t *testing.T) {
	res := miniResults(t)
	rows := map[string]int{}
	medians := map[string]float64{}
	for i, row := range res.Table3 {
		rows[row.Provider] = i
		medians[row.Provider] = row.MedianFriends
	}
	for _, p := range []string{"Facebook.com", FarmBoostLikes, FarmSocialFormula, FarmAuthenticLikes} {
		if _, ok := rows[p]; !ok {
			t.Fatalf("Table 3 missing provider %s", p)
		}
	}
	// BoostLikes likers have by far the most friends.
	if medians[FarmBoostLikes] <= medians[FarmSocialFormula] ||
		medians[FarmBoostLikes] <= medians["Facebook.com"] {
		t.Fatalf("BL median %v should dominate: %v", medians[FarmBoostLikes], medians)
	}
	// BoostLikes likers are the most interconnected.
	var bl, fb *int
	for i := range res.Table3 {
		row := &res.Table3[i]
		if row.Provider == FarmBoostLikes {
			bl = &row.DirectFriendships
		}
		if row.Provider == "Facebook.com" {
			fb = &row.DirectFriendships
		}
	}
	if bl == nil || fb == nil || *bl <= *fb {
		t.Fatalf("BL direct friendships should dominate FB: %v vs %v", bl, fb)
	}
}

func TestALMSGroupExists(t *testing.T) {
	res := miniResults(t)
	found := false
	for _, row := range res.Table3 {
		if row.Provider == "ALMS" && row.Likers > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("ALMS shared-operator group missing from Table 3")
	}
}

func TestPageLikeMedianOrdering(t *testing.T) {
	res := miniResults(t)
	med := map[string]float64{}
	for _, c := range res.CDFs {
		med[c.CampaignID] = c.Median
	}
	// Baseline << BL-USA << FB campaigns < farm campaigns.
	if med["Facebook"] >= med["FB-IND"] {
		t.Fatalf("baseline median %v should be far below FB-IND %v", med["Facebook"], med["FB-IND"])
	}
	if med["BL-USA"] >= med["FB-IND"] {
		t.Fatalf("BL-USA median %v should be below FB-IND %v", med["BL-USA"], med["FB-IND"])
	}
	if med["SF-ALL"] <= med["FB-IND"] {
		t.Fatalf("SF-ALL median %v should exceed FB-IND %v", med["SF-ALL"], med["FB-IND"])
	}
}

func TestJaccardBlocks(t *testing.T) {
	res := miniResults(t)
	idx := map[string]int{}
	for i, c := range res.Campaigns {
		idx[c.Spec.ID] = i
	}
	pageSim := res.PageSim
	userSim := res.UserSim
	// Same-farm page similarity far exceeds cross-farm.
	sfPair := pageSim[idx["SF-ALL"]][idx["SF-USA"]]
	crossFarm := pageSim[idx["SF-ALL"]][idx["BL-USA"]]
	if sfPair <= crossFarm {
		t.Fatalf("SF pair %v should exceed SF-BL %v", sfPair, crossFarm)
	}
	// AL-USA and MS-USA share likers (same operator).
	alms := userSim[idx["AL-USA"]][idx["MS-USA"]]
	other := userSim[idx["SF-ALL"]][idx["BL-USA"]]
	if alms <= other {
		t.Fatalf("AL/MS user similarity %v should exceed unrelated %v", alms, other)
	}
	// Inactive campaigns are zero rows.
	for j := range pageSim[idx["BL-ALL"]] {
		if pageSim[idx["BL-ALL"]][j] != 0 {
			t.Fatal("inactive campaign has nonzero similarity")
		}
	}
}

func TestTerminationShape(t *testing.T) {
	res := miniResults(t)
	botTerm := campaign(t, res, "SF-ALL").Terminated + campaign(t, res, "SF-USA").Terminated +
		campaign(t, res, "AL-ALL").Terminated + campaign(t, res, "AL-USA").Terminated
	blTerm := campaign(t, res, "BL-USA").Terminated
	if botTerm == 0 {
		t.Fatal("burst farms should lose some accounts")
	}
	if blTerm > botTerm {
		t.Fatalf("stealth farm lost %d vs burst farms %d", blTerm, botTerm)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	res := miniResults(t)
	sections := map[string]string{
		"table1": res.RenderTable1(),
		"table2": res.RenderTable2(),
		"table3": res.RenderTable3(),
		"fig1":   res.RenderFigure1(),
		"fig2":   res.RenderFigure2(),
		"fig3":   res.RenderFigure3(),
		"fig4":   res.RenderFigure4(),
		"fig5":   res.RenderFigure5(),
	}
	for name, out := range sections {
		if len(out) < 100 {
			t.Fatalf("%s output too short:\n%s", name, out)
		}
	}
	all := res.RenderAll()
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5"} {
		if !strings.Contains(all, want) {
			t.Fatalf("RenderAll missing %q", want)
		}
	}
	// Inactive campaigns render as dashes in Table 1.
	if !strings.Contains(sections["table1"], "BL-ALL") {
		t.Fatal("BL-ALL row missing")
	}
}

func TestMonitoringWindows(t *testing.T) {
	res := miniResults(t)
	// FB campaigns: 15-day campaigns + ~7 quiet days ≈ 22.
	for _, id := range []string{"FB-IND", "FB-EGY"} {
		c := campaign(t, res, id)
		if c.MonitoringDays < 20 || c.MonitoringDays > 25 {
			t.Fatalf("%s monitored %d days, want ≈22", id, c.MonitoringDays)
		}
	}
	// SF bursts finish fast: monitoring ends within ~8-11 days.
	c := campaign(t, res, "SF-ALL")
	if c.MonitoringDays > 12 {
		t.Fatalf("SF-ALL monitored %d days, want ≈10", c.MonitoringDays)
	}
}

func TestStudyDeterministic(t *testing.T) {
	cfg, err := ScaledConfig(99, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []int {
		s, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		var out []int
		for _, c := range res.Campaigns {
			out = append(out, c.Likes, c.Terminated, len(c.Likers))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("study not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := func(mut func(*StudyConfig)) StudyConfig {
		cfg := DefaultConfig(1)
		mut(&cfg)
		return cfg
	}
	cases := []StudyConfig{
		bad(func(c *StudyConfig) { c.Campaigns = nil }),
		bad(func(c *StudyConfig) { c.Campaigns[0].ID = "" }),
		bad(func(c *StudyConfig) { c.Campaigns[1].ID = c.Campaigns[0].ID }),
		bad(func(c *StudyConfig) { c.Campaigns[0].BudgetPerDay = 0 }),
		bad(func(c *StudyConfig) { c.Campaigns[5].FarmName = "nope" }),
		bad(func(c *StudyConfig) { c.Campaigns[0].DurationDays = 0 }),
		bad(func(c *StudyConfig) { c.BaselineSize = 0 }),
		bad(func(c *StudyConfig) { c.SweepDelayDays = 0 }),
		bad(func(c *StudyConfig) { c.Farms = append(c.Farms, c.Farms[0]) }),
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if _, err := ScaledConfig(1, 0); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := ScaledConfig(1, 1.5); err == nil {
		t.Fatal("scale > 1 accepted")
	}
}

func TestRosterOrder(t *testing.T) {
	cfg := DefaultConfig(1)
	order := cfg.RosterOrder()
	if len(order) != 13 || order[0] != "FB-USA" || order[12] != "MS-USA" {
		t.Fatalf("roster = %v", order)
	}
}
