package core

import (
	"bytes"
	"testing"
)

// runScaledWithTerminations runs the 13-campaign study at small scale
// with a given termination engine and worker-pool size, returning the
// stable JSON rendering minus the two config fields allowed to differ.
func runScaledWithTerminations(t *testing.T, seed int64, scale float64, workers int, mode string) []byte {
	t.Helper()
	cfg, err := ScaledConfig(seed, scale)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = workers
	cfg.Terminations = mode
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	res.Config.Workers = 0
	res.Config.Terminations = TerminationBatch // normalize: engines must agree
	data, err := res.MarshalJSONStable()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestStreamTerminationsMatchBatch pins the live-verdict termination
// engine to the batch one: identical study Results bytes, for any
// worker count. The batch sweep examines the sorted liker pool with
// batch verdicts; the streaming sweep drains a StreamScorer over the
// same journal and feeds its verdicts to the same policy — equality
// holds because the detect package pins the two engines' verdicts
// byte-identical and each account's termination coin is split from
// (seed, "sweep", uid) regardless of engine.
func TestStreamTerminationsMatchBatch(t *testing.T) {
	batch := runScaledWithTerminations(t, 42, 0.08, 1, TerminationBatch)
	if len(batch) == 0 {
		t.Fatal("empty results JSON")
	}
	for _, workers := range []int{1, 4, 16} {
		stream := runScaledWithTerminations(t, 42, 0.08, workers, TerminationStream)
		if !bytes.Equal(batch, stream) {
			t.Fatalf("streaming terminations with Workers=%d diverge from batch (batch %d bytes, stream %d bytes)",
				workers, len(batch), len(stream))
		}
	}
}

// TestSweepStreamTerminations checks the grid-wide switch: a Sweep run
// with StreamTerminations produces the same summary rows as without.
func TestSweepStreamTerminations(t *testing.T) {
	cfg, err := ScaledConfig(11, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	run := func(stream bool) []SweepSummaryRow {
		sw := &Sweep{
			Variants:           GridVariants(cfg),
			Workers:            1,
			StreamTerminations: stream,
		}
		outcomes, err := sw.Run()
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(outcomes)
	}
	batch, stream := run(false), run(true)
	if len(batch) == 0 || len(batch) != len(stream) {
		t.Fatalf("summary rows: batch %d, stream %d", len(batch), len(stream))
	}
	for i := range batch {
		if batch[i] != stream[i] {
			t.Fatalf("row %d differs: batch %+v, stream %+v", i, batch[i], stream[i])
		}
	}
}

func TestTerminationModeValidation(t *testing.T) {
	cfg, err := ScaledConfig(1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Terminations = "psychic"
	if _, err := NewStudy(cfg); err == nil {
		t.Fatal("unknown termination mode accepted")
	}
}
