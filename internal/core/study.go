package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/accounts"
	"repro/internal/analysis"
	"repro/internal/farm"
	"repro/internal/honeypot"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/socialnet"
)

// Study is a configured experiment over a freshly built world.
type Study struct {
	cfg    StudyConfig
	rng    *rand.Rand
	store  *socialnet.Store
	pop    *socialnet.Population
	ledger *accounts.Ledger
	engine *platform.AdEngine
	farms  map[string]*farm.Farm
	clock  *simclock.Clock
}

// CampaignResult is the outcome of one campaign (a Table 1 row plus the
// raw liker set and the Figure 2 series).
type CampaignResult struct {
	Spec           CampaignSpec
	Page           socialnet.PageID
	Active         bool
	Likes          int
	Terminated     int
	MonitoringDays int
	Likers         []socialnet.UserID
	// Series is the cumulative like count by day offset, spanning at
	// least the common 15-day Figure 2 axis.
	Series []int
}

// Results bundles every artifact of the study.
type Results struct {
	Config    StudyConfig
	Campaigns []CampaignResult

	Geo      []analysis.GeoRow         // Figure 1
	Demo     []analysis.DemoRow        // Table 2
	Temporal []analysis.TemporalSeries // Figure 2
	Bursts   []analysis.BurstStats
	Windows  []analysis.WindowStats // Figure 2 at 2-hour granularity

	Groups       *analysis.GroupAssignment
	Table3       []analysis.ProviderGroupRow
	DirectCensus []analysis.ComponentCensus // Figure 3(a)
	TwoHopCensus []analysis.ComponentCensus // Figure 3(b)
	CrossEdges   map[[2]string]int

	Baseline []socialnet.UserID
	CDFs     []analysis.PageLikeCDF // Figure 4

	PageSim [][]float64 // Figure 5(a)
	UserSim [][]float64 // Figure 5(b)

	// RemovedLikes maps campaign ID to the number of likes the page
	// lost to the termination sweep — the §5 future-work extension
	// ("longer observation of removed likes").
	RemovedLikes map[string]int

	// HistoryLikes is how many cover likes were materialized for the
	// observed likers and baseline users.
	HistoryLikes int
}

// NewStudy builds the world: organic population, ad markets, farm pools.
func NewStudy(cfg StudyConfig) (*Study, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Study{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		store: socialnet.NewStore(),
		farms: make(map[string]*farm.Farm),
		clock: simclock.New(cfg.Start),
	}
	pop, err := socialnet.GeneratePopulation(s.rng, s.store, cfg.Population)
	if err != nil {
		return nil, fmt.Errorf("core: population: %w", err)
	}
	s.pop = pop
	s.ledger = accounts.NewLedger(pop, cfg.Start)

	// Shared page-universe blocks. Which blocks cohorts share fixes the
	// Figure 5(a) overlap structure.
	blockDate := cfg.Start.AddDate(-2, 0, 0)
	var globalHead, adWorld []socialnet.PageID
	if cfg.Blocks.GlobalHead > 0 {
		if globalHead, err = accounts.MakePageBlock(s.store, "global-head", "global", cfg.Blocks.GlobalHead, blockDate); err != nil {
			return nil, fmt.Errorf("core: global head: %w", err)
		}
	}
	if cfg.Blocks.AdWorld > 0 {
		if adWorld, err = accounts.MakePageBlock(s.store, "adworld", "ads", cfg.Blocks.AdWorld, blockDate); err != nil {
			return nil, fmt.Errorf("core: adworld: %w", err)
		}
	}
	// Per-market regional blocks, attached as clicker cover slices:
	// clickers like the shared ad-world pages, their region's pages, and
	// a pinch of the global head.
	markets := make([]platform.ClickMarket, len(cfg.Markets))
	copy(markets, cfg.Markets)
	for i := range markets {
		if len(markets[i].Cohort.Cover.Slices) > 0 || cfg.Blocks.RegionalPerMarket <= 0 {
			continue
		}
		regional, err := accounts.MakePageBlock(s.store, "regional-"+markets[i].Country, "regional", cfg.Blocks.RegionalPerMarket, blockDate)
		if err != nil {
			return nil, fmt.Errorf("core: regional block %s: %w", markets[i].Country, err)
		}
		var slices []accounts.CoverSlice
		if len(adWorld) > 0 {
			slices = append(slices, accounts.CoverSlice{Name: "adworld", Pages: adWorld, Frac: 0.45})
		}
		slices = append(slices, accounts.CoverSlice{Name: "regional", Pages: regional, Frac: 0.45})
		if len(globalHead) > 0 {
			slices = append(slices, accounts.CoverSlice{Name: "global", Pages: globalHead, Frac: 0.10})
		}
		markets[i].Cohort.Cover.Slices = slices
	}

	engine, err := platform.NewAdEngine(s.rng, s.store, pop, s.ledger, markets)
	if err != nil {
		return nil, fmt.Errorf("core: ad engine: %w", err)
	}
	s.engine = engine

	// Farm pools: farms sharing a PoolName share the cohort and usage.
	pools := make(map[string]*accounts.Cohort)
	usages := make(map[string]*farm.Usage)
	for _, fs := range cfg.Farms {
		cohort, ok := pools[fs.PoolName]
		if !ok {
			spec := fs.Pool
			if len(spec.Cover.Slices) == 0 {
				var slices []accounts.CoverSlice
				if fs.JobPortfolioSize > 0 && fs.Mix.Jobs > 0 {
					jobs, err := accounts.MakeJobPortfolio(s.store, fs.Config.Name, fs.JobPortfolioSize, blockDate)
					if err != nil {
						return nil, fmt.Errorf("core: farm %s: %w", fs.Config.Name, err)
					}
					slices = append(slices, accounts.CoverSlice{Name: "jobs", Pages: jobs, Frac: fs.Mix.Jobs})
				}
				if fs.NoiseBlockSize > 0 && fs.Mix.Noise > 0 {
					noise, err := accounts.MakePageBlock(s.store, fs.PoolName+"-noise", "noise", fs.NoiseBlockSize, blockDate)
					if err != nil {
						return nil, fmt.Errorf("core: farm %s noise: %w", fs.Config.Name, err)
					}
					slices = append(slices, accounts.CoverSlice{Name: "noise", Pages: noise, Frac: fs.Mix.Noise})
				}
				if len(globalHead) > 0 && fs.Mix.Global > 0 {
					slices = append(slices, accounts.CoverSlice{Name: "global", Pages: globalHead, Frac: fs.Mix.Global})
				}
				spec.Cover.Slices = slices
			}
			cohort, err = accounts.Build(s.rng, s.store, pop, spec)
			if err != nil {
				return nil, fmt.Errorf("core: farm pool %s: %w", fs.PoolName, err)
			}
			s.ledger.Register(cohort)
			pools[fs.PoolName] = cohort
			usages[fs.PoolName] = farm.NewUsage()
		}
		f, err := farm.New(s.rng, s.store, fs.Config, cohort, usages[fs.PoolName])
		if err != nil {
			return nil, fmt.Errorf("core: farm %s: %w", fs.Config.Name, err)
		}
		s.farms[fs.Config.Name] = f
	}
	return s, nil
}

// Store exposes the world (examples, tools, tests).
func (s *Study) Store() *socialnet.Store { return s.store }

// Population exposes the organic world.
func (s *Study) Population() *socialnet.Population { return s.pop }

// Clock exposes the virtual clock.
func (s *Study) Clock() *simclock.Clock { return s.clock }

// Farm returns a configured farm by brand name.
func (s *Study) Farm(name string) (*farm.Farm, bool) {
	f, ok := s.farms[name]
	return f, ok
}

// Run executes the full experiment: deploy, promote, monitor, sweep,
// analyze. It is deterministic given the config's seed.
func (s *Study) Run() (*Results, error) {
	type running struct {
		spec    CampaignSpec
		page    socialnet.PageID
		monitor *honeypot.Monitor
		active  bool
	}
	var states []*running

	// Deploy and promote all 13 pages at t0, as in §3 ("all campaigns
	// were launched on March 12, 2014").
	for _, cs := range s.cfg.Campaigns {
		page, _, err := honeypot.Deploy(s.store, cs.ID, s.clock.Now())
		if err != nil {
			return nil, fmt.Errorf("core: deploy %s: %w", cs.ID, err)
		}
		st := &running{spec: cs, page: page, active: true}
		switch cs.Kind {
		case KindFacebookAds:
			err = s.engine.Launch(s.clock, platform.AdCampaign{
				Page:          page,
				TargetCountry: cs.TargetCountry,
				BudgetPerDay:  cs.BudgetPerDay,
				DurationDays:  cs.DurationDays,
			})
			if err != nil {
				return nil, fmt.Errorf("core: launch %s: %w", cs.ID, err)
			}
		case KindFarmOrder:
			f := s.farms[cs.FarmName]
			order := cs.Order
			order.Campaign = cs.ID
			order.Page = page
			err = f.PlaceOrder(s.clock, order)
			if errors.Is(err, farm.ErrInactive) {
				st.active = false
			} else if err != nil {
				return nil, fmt.Errorf("core: order %s: %w", cs.ID, err)
			}
		}
		mcfg := honeypot.DefaultMonitorConfig(cs.DurationDays)
		if s.cfg.MonitorActiveInterval > 0 {
			mcfg.ActiveInterval = s.cfg.MonitorActiveInterval
		}
		mon, err := honeypot.StartMonitor(s.clock, s.store, page, mcfg)
		if err != nil {
			return nil, fmt.Errorf("core: monitor %s: %w", cs.ID, err)
		}
		st.monitor = mon
		states = append(states, st)
	}

	// Run the virtual weeks: every delivery fires and every monitor
	// eventually stops itself, so the queue drains.
	s.clock.Drain(0)

	// Collect likers; materialize their cover histories plus the
	// baseline sample's (the crawl of §3 / Figure 4).
	var allLikers []socialnet.UserID
	for _, st := range states {
		allLikers = append(allLikers, st.monitor.Likers()...)
	}
	baseline, err := analysis.BaselineSample(s.rng, s.store, s.cfg.BaselineSize)
	if err != nil {
		return nil, fmt.Errorf("core: baseline: %w", err)
	}
	toMaterialize := append(append([]socialnet.UserID(nil), allLikers...), baseline...)
	histLikes, err := s.ledger.Materialize(s.rng, s.store, toMaterialize)
	if err != nil {
		return nil, fmt.Errorf("core: materialize histories: %w", err)
	}

	// The month-later fraud sweep (§5): Facebook examines the accounts
	// and terminates a score-proportional few.
	if _, err := platform.FraudSweep(s.rng, s.store, allLikers, s.cfg.Sweep); err != nil {
		return nil, fmt.Errorf("core: fraud sweep: %w", err)
	}

	// Assemble results.
	res := &Results{
		Config: s.cfg, Baseline: baseline, HistoryLikes: histLikes,
		RemovedLikes: make(map[string]int, len(states)),
	}
	var aCampaigns []analysis.Campaign
	for _, st := range states {
		likers := st.monitor.Likers()
		terminated, err := platform.TerminatedAmong(s.store, likers)
		if err != nil {
			return nil, err
		}
		// Figure 2 plots all campaigns on a common 15-day axis.
		days := 15
		if st.spec.DurationDays > days {
			days = st.spec.DurationDays
		}
		cr := CampaignResult{
			Spec:           st.spec,
			Page:           st.page,
			Active:         st.active,
			Likes:          st.monitor.TotalLikes(),
			Terminated:     terminated,
			MonitoringDays: st.monitor.MonitoringDays(s.clock.Now()),
			Likers:         likers,
			Series:         st.monitor.CumulativeByDay(days),
		}
		res.Campaigns = append(res.Campaigns, cr)
		res.RemovedLikes[st.spec.ID] = s.store.LikeCountOfPage(st.page) - s.store.ActiveLikeCountOfPage(st.page)
		aCampaigns = append(aCampaigns, analysis.Campaign{
			ID:       st.spec.ID,
			Provider: st.spec.Provider,
			Page:     st.page,
			Likers:   likers,
			Active:   st.active,
		})
	}

	if res.Geo, err = analysis.LocationBreakdown(s.store, aCampaigns); err != nil {
		return nil, err
	}
	if res.Demo, err = analysis.Demographics(s.store, aCampaigns); err != nil {
		return nil, err
	}
	for i, st := range states {
		res.Temporal = append(res.Temporal, analysis.TemporalSeries{
			CampaignID: st.spec.ID,
			Values:     res.Campaigns[i].Series,
		})
		res.Bursts = append(res.Bursts, analysis.Burstiness(res.Temporal[i]))
		likes := s.store.LikesOfPage(st.page)
		times := make([]time.Time, len(likes))
		for j, lk := range likes {
			times[j] = lk.At
		}
		ws, err := analysis.WindowAnalysis(st.spec.ID, times)
		if err != nil {
			return nil, err
		}
		res.Windows = append(res.Windows, ws)
	}

	res.Groups = analysis.AssignGroups(aCampaigns, FarmAuthenticLikes, FarmMammothSocials)
	base := s.store.FriendGraph()
	if res.Table3, err = analysis.SocialGraphTable(s.store, res.Groups, base); err != nil {
		return nil, err
	}
	direct, twoHop := analysis.LikerGraphs(res.Groups, base)
	res.DirectCensus = analysis.CensusByProvider(res.Groups, direct)
	res.TwoHopCensus = analysis.CensusByProvider(res.Groups, twoHop)
	res.CrossEdges = analysis.CrossProviderEdges(res.Groups, direct)

	if res.CDFs, err = analysis.PageLikeCDFs(s.store, aCampaigns, baseline); err != nil {
		return nil, err
	}
	if res.PageSim, res.UserSim, err = analysis.JaccardMatrices(s.store, aCampaigns); err != nil {
		return nil, err
	}
	return res, nil
}

// RunDefault builds and runs the default 13-campaign study.
func RunDefault(seed int64) (*Results, error) {
	s, err := NewStudy(DefaultConfig(seed))
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Elapsed returns the virtual time since study start.
func (s *Study) Elapsed() time.Duration { return s.clock.Now().Sub(s.cfg.Start) }
