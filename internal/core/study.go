package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/accounts"
	"repro/internal/analysis"
	"repro/internal/detect"
	"repro/internal/farm"
	"repro/internal/honeypot"
	"repro/internal/parallel"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

// Study is a configured experiment over a freshly built world.
type Study struct {
	cfg    StudyConfig
	rng    *rand.Rand
	store  *socialnet.Store
	pop    *socialnet.Population
	ledger *accounts.Ledger
	engine *platform.AdEngine
	farms  map[string]*farm.Farm
	clock  *simclock.Clock

	// world is the completed outcome of RunWorld (campaign states,
	// baseline sample, materialized-history count) — everything
	// Finalize needs beyond the store itself. A Study reopened from a
	// persisted run (ReopenStudy) carries world and store only.
	world *worldState
}

// worldState is the run outcome Finalize consumes: it is exactly the
// state Persist writes to disk (alongside the store checkpoint), so a
// reopened study finalizes bit-identically to an uninterrupted one.
type worldState struct {
	states    []*running
	baseline  []socialnet.UserID
	histLikes int
}

// CampaignResult is the outcome of one campaign (a Table 1 row plus the
// raw liker set and the Figure 2 series).
type CampaignResult struct {
	Spec           CampaignSpec
	Page           socialnet.PageID
	Active         bool
	Likes          int
	Terminated     int
	MonitoringDays int
	Likers         []socialnet.UserID
	// Series is the cumulative like count by day offset, spanning at
	// least the common 15-day Figure 2 axis.
	Series []int
}

// CampaignJournalStats is one campaign's ingest accounting: how many
// like events its honeypot page's journal stream holds and the
// monitor's cursor high-water mark (events consumed by polls). Sweeps
// compare these across variants to see ingest volume shift.
type CampaignJournalStats struct {
	Events int
	Cursor int
}

// JournalStats summarizes the append-only like-event journal behind a
// run: the total event count (campaign likes plus materialized cover
// histories) and the per-campaign stream stats.
type JournalStats struct {
	TotalEvents int
	Campaigns   map[string]CampaignJournalStats
}

// Results bundles every artifact of the study.
type Results struct {
	Config    StudyConfig
	Campaigns []CampaignResult

	Geo      []analysis.GeoRow         // Figure 1
	Demo     []analysis.DemoRow        // Table 2
	Temporal []analysis.TemporalSeries // Figure 2
	Bursts   []analysis.BurstStats
	Windows  []analysis.WindowStats // Figure 2 at 2-hour granularity

	Groups       *analysis.GroupAssignment
	Table3       []analysis.ProviderGroupRow
	DirectCensus []analysis.ComponentCensus // Figure 3(a)
	TwoHopCensus []analysis.ComponentCensus // Figure 3(b)
	CrossEdges   map[[2]string]int

	Baseline []socialnet.UserID
	CDFs     []analysis.PageLikeCDF // Figure 4

	PageSim [][]float64 // Figure 5(a)
	UserSim [][]float64 // Figure 5(b)

	// RemovedLikes maps campaign ID to the number of likes the page
	// lost to the termination sweep — the §5 future-work extension
	// ("longer observation of removed likes").
	RemovedLikes map[string]int

	// HistoryLikes is how many cover likes were materialized for the
	// observed likers and baseline users.
	HistoryLikes int

	// Journal is the run's event-journal accounting.
	Journal JournalStats
}

// NewStudy builds the world: organic population, ad markets, farm pools.
func NewStudy(cfg StudyConfig) (*Study, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Study{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		store: socialnet.NewStore(),
		farms: make(map[string]*farm.Farm),
		clock: simclock.New(cfg.Start),
	}
	// Population like-histories generate on the study's worker pool;
	// the world is identical for every pool size.
	popSpec := cfg.Population
	popSpec.Workers = cfg.Workers
	pop, err := socialnet.GeneratePopulation(s.rng, s.store, popSpec)
	if err != nil {
		return nil, fmt.Errorf("core: population: %w", err)
	}
	s.pop = pop
	s.ledger = accounts.NewLedger(pop, cfg.Start)

	// Shared page-universe blocks. Which blocks cohorts share fixes the
	// Figure 5(a) overlap structure.
	blockDate := cfg.Start.AddDate(-2, 0, 0)
	var globalHead, adWorld []socialnet.PageID
	if cfg.Blocks.GlobalHead > 0 {
		if globalHead, err = accounts.MakePageBlock(s.store, "global-head", "global", cfg.Blocks.GlobalHead, blockDate); err != nil {
			return nil, fmt.Errorf("core: global head: %w", err)
		}
	}
	if cfg.Blocks.AdWorld > 0 {
		if adWorld, err = accounts.MakePageBlock(s.store, "adworld", "ads", cfg.Blocks.AdWorld, blockDate); err != nil {
			return nil, fmt.Errorf("core: adworld: %w", err)
		}
	}
	// Per-market regional blocks, attached as clicker cover slices:
	// clickers like the shared ad-world pages, their region's pages, and
	// a pinch of the global head.
	markets := make([]platform.ClickMarket, len(cfg.Markets))
	copy(markets, cfg.Markets)
	for i := range markets {
		if len(markets[i].Cohort.Cover.Slices) > 0 || cfg.Blocks.RegionalPerMarket <= 0 {
			continue
		}
		regional, err := accounts.MakePageBlock(s.store, "regional-"+markets[i].Country, "regional", cfg.Blocks.RegionalPerMarket, blockDate)
		if err != nil {
			return nil, fmt.Errorf("core: regional block %s: %w", markets[i].Country, err)
		}
		var slices []accounts.CoverSlice
		if len(adWorld) > 0 {
			slices = append(slices, accounts.CoverSlice{Name: "adworld", Pages: adWorld, Frac: 0.45})
		}
		slices = append(slices, accounts.CoverSlice{Name: "regional", Pages: regional, Frac: 0.45})
		if len(globalHead) > 0 {
			slices = append(slices, accounts.CoverSlice{Name: "global", Pages: globalHead, Frac: 0.10})
		}
		markets[i].Cohort.Cover.Slices = slices
	}

	engine, err := platform.NewAdEngine(s.rng, s.store, pop, s.ledger, markets)
	if err != nil {
		return nil, fmt.Errorf("core: ad engine: %w", err)
	}
	s.engine = engine

	// Farm pools: farms sharing a PoolName share the cohort and usage.
	pools := make(map[string]*accounts.Cohort)
	usages := make(map[string]*farm.Usage)
	for _, fs := range cfg.Farms {
		cohort, ok := pools[fs.PoolName]
		if !ok {
			spec := fs.Pool
			if len(spec.Cover.Slices) == 0 {
				var slices []accounts.CoverSlice
				if fs.JobPortfolioSize > 0 && fs.Mix.Jobs > 0 {
					jobs, err := accounts.MakeJobPortfolio(s.store, fs.Config.Name, fs.JobPortfolioSize, blockDate)
					if err != nil {
						return nil, fmt.Errorf("core: farm %s: %w", fs.Config.Name, err)
					}
					slices = append(slices, accounts.CoverSlice{Name: "jobs", Pages: jobs, Frac: fs.Mix.Jobs})
				}
				if fs.NoiseBlockSize > 0 && fs.Mix.Noise > 0 {
					noise, err := accounts.MakePageBlock(s.store, fs.PoolName+"-noise", "noise", fs.NoiseBlockSize, blockDate)
					if err != nil {
						return nil, fmt.Errorf("core: farm %s noise: %w", fs.Config.Name, err)
					}
					slices = append(slices, accounts.CoverSlice{Name: "noise", Pages: noise, Frac: fs.Mix.Noise})
				}
				if len(globalHead) > 0 && fs.Mix.Global > 0 {
					slices = append(slices, accounts.CoverSlice{Name: "global", Pages: globalHead, Frac: fs.Mix.Global})
				}
				spec.Cover.Slices = slices
			}
			cohort, err = accounts.Build(s.rng, s.store, pop, spec)
			if err != nil {
				return nil, fmt.Errorf("core: farm pool %s: %w", fs.PoolName, err)
			}
			s.ledger.Register(cohort)
			pools[fs.PoolName] = cohort
			usages[fs.PoolName] = farm.NewUsage()
		}
		f, err := farm.New(s.rng, s.store, fs.Config, cohort, usages[fs.PoolName])
		if err != nil {
			return nil, fmt.Errorf("core: farm %s: %w", fs.Config.Name, err)
		}
		s.farms[fs.Config.Name] = f
	}
	return s, nil
}

// Store exposes the world (examples, tools, tests).
func (s *Study) Store() *socialnet.Store { return s.store }

// Population exposes the organic world.
func (s *Study) Population() *socialnet.Population { return s.pop }

// Clock exposes the virtual clock.
func (s *Study) Clock() *simclock.Clock { return s.clock }

// Farm returns a configured farm by brand name.
func (s *Study) Farm(name string) (*farm.Farm, bool) {
	f, ok := s.farms[name]
	return f, ok
}

// running is the in-flight state of one campaign. Each campaign owns a
// private event clock and an RNG stream split from the root seed, so
// its delivery and monitoring schedule is a pure function of its own
// state — the property that lets campaigns run concurrently while
// staying bit-identical to the serial path.
type running struct {
	spec    CampaignSpec
	page    socialnet.PageID
	clock   *simclock.Clock
	rng     *rand.Rand
	active  bool
	summary honeypot.Summary
}

// Run executes the full experiment: deploy, promote, monitor, sweep,
// analyze. It is deterministic given the config's seed: every phase
// runs on a bounded worker pool (StudyConfig.Workers; default one per
// CPU), and the output is bit-identical for every worker count because
// all randomness is drawn from streams split per campaign and per
// account rather than from one shared sequence.
//
// Run is RunWorld followed by Finalize; callers that persist the run
// between the two (Persist / ReopenStudy) can kill the process after
// RunWorld and finalize later — on another machine, in another process
// — with byte-identical Results.
func (s *Study) Run() (*Results, error) {
	if err := s.RunWorld(); err != nil {
		return nil, err
	}
	return s.Finalize()
}

// RunWorld executes the world-building phases: deploy the honeypot
// pages, promote and monitor every campaign, materialize cover
// histories, and run the fraud sweep. Afterwards the store holds the
// final world and the study holds the per-campaign monitor summaries;
// Finalize turns them into Results.
func (s *Study) RunWorld() error {
	workers := parallel.Workers(s.cfg.Workers)

	// Phase 1 — deploy all 13 pages at t0, as in §3 ("all campaigns
	// were launched on March 12, 2014"). Serial: page and owner IDs
	// come from shared counters and must not depend on scheduling.
	states := make([]*running, len(s.cfg.Campaigns))
	for i, cs := range s.cfg.Campaigns {
		page, _, err := honeypot.Deploy(s.store, cs.ID, s.cfg.Start)
		if err != nil {
			return fmt.Errorf("core: deploy %s: %w", cs.ID, err)
		}
		states[i] = &running{
			spec:   cs,
			page:   page,
			clock:  simclock.New(s.cfg.Start),
			rng:    stats.SplitRand(s.cfg.Seed, "campaign/"+cs.ID),
			active: true,
		}
	}

	// Phase 2 — group campaigns into promotion domains. Campaigns
	// ordering from the same farm pool share account usage state
	// (rotation, the AL/MS reuse bias), so their orders must be placed
	// in roster order; everything else is mutually independent. Each
	// domain drives its campaigns' private clocks to exhaustion;
	// deliveries from different domains interleave freely on the
	// sharded store.
	poolOf := make(map[string]string, len(s.cfg.Farms))
	for _, fs := range s.cfg.Farms {
		poolOf[fs.Config.Name] = fs.PoolName
	}
	var domains [][]int
	domainOf := make(map[string]int)
	for i, cs := range s.cfg.Campaigns {
		if cs.Kind == KindFarmOrder {
			pool := poolOf[cs.FarmName]
			if d, ok := domainOf[pool]; ok {
				domains[d] = append(domains[d], i)
				continue
			}
			domainOf[pool] = len(domains)
		}
		domains = append(domains, []int{i})
	}

	// Phase 3 — promote, monitor, and drain every campaign.
	err := parallel.ForEach(workers, len(domains), func(d int) error {
		for _, idx := range domains[d] {
			if err := s.runCampaign(states[idx]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Keep the study clock (Elapsed, examples) at the virtual end of
	// the slowest campaign, as in the single-clock engine.
	for _, st := range states {
		if st.clock.Now().After(s.clock.Now()) {
			s.clock.RunUntil(st.clock.Now())
		}
	}

	// Phase 4 — collect likers; materialize their cover histories plus
	// the baseline sample's (the crawl of §3 / Figure 4), one split
	// RNG stream per account.
	var allLikers []socialnet.UserID
	for _, st := range states {
		allLikers = append(allLikers, st.summary.Likers...)
	}
	baseline, err := analysis.BaselineSample(stats.SplitRand(s.cfg.Seed, "baseline"), s.store, s.cfg.BaselineSize)
	if err != nil {
		return fmt.Errorf("core: baseline: %w", err)
	}
	toMaterialize := append(append([]socialnet.UserID(nil), allLikers...), baseline...)
	histLikes, err := s.ledger.MaterializeSeeded(s.cfg.Seed, s.store, toMaterialize, workers)
	if err != nil {
		return fmt.Errorf("core: materialize histories: %w", err)
	}

	// Phase 5 — the month-later fraud sweep (§5): Facebook examines the
	// accounts and terminates a score-proportional few, scoring on the
	// pool with one split stream per account. TerminationStream runs
	// the same policy off live StreamScorer verdicts — one tick drains
	// the journal the campaigns just wrote, and the detect package pins
	// streaming verdicts byte-identical to the batch pass, so Results
	// are bit-equal across engines and worker counts.
	if s.cfg.Terminations == TerminationStream {
		if err := s.streamingSweep(allLikers); err != nil {
			return fmt.Errorf("core: fraud sweep: %w", err)
		}
	} else if _, err := platform.FraudSweepSeeded(s.cfg.Seed, s.store, allLikers, s.cfg.Sweep, workers); err != nil {
		return fmt.Errorf("core: fraud sweep: %w", err)
	}

	s.world = &worldState{states: states, baseline: baseline, histLikes: histLikes}
	return nil
}

// streamingSweep is phase 5 on the live detection path: a StreamScorer
// drains the journal in one tick, and its verdicts — burst features,
// score, lockstep membership — feed the same termination policy the
// batch sweep applies. The examined population is the sorted, deduped
// honeypot liker pool, exactly the set FraudSweepSeeded's batch pass
// examines; every liker must be enrolled (their honeypot like is in
// the journal the tick consumed), so a missing verdict is a bug, not a
// skip.
func (s *Study) streamingSweep(allLikers []socialnet.UserID) error {
	sc := detect.NewStreamScorer(s.store, detect.StreamScorerConfig{})
	for sc.Tick() > 0 {
	}
	uniq := append([]socialnet.UserID(nil), allLikers...)
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	n := 0
	for i, uid := range uniq {
		if i == 0 || uid != uniq[i-1] {
			uniq[n] = uid
			n++
		}
	}
	uniq = uniq[:n]
	verdicts := make([]detect.Verdict, 0, len(uniq))
	for _, uid := range uniq {
		v, ok := sc.Verdict(uid)
		if !ok {
			return fmt.Errorf("core: liker %d not enrolled in streaming scorer", uid)
		}
		verdicts = append(verdicts, v)
	}
	_, err := platform.FraudSweepVerdicts(s.cfg.Seed, s.store, verdicts, s.cfg.Sweep)
	return err
}

// Finalize computes Results from a completed world — phases 6 and 7:
// per-campaign outcomes from the monitor summaries, then the §4
// analyses. It reads only the store and the worldState, both of which
// Persist/ReopenStudy round-trip through disk, so a reopened study
// finalizes to the same bytes as the process that ran the campaigns.
func (s *Study) Finalize() (*Results, error) {
	if s.world == nil {
		return nil, errors.New("core: Finalize called before RunWorld (or reopen)")
	}
	workers := parallel.Workers(s.cfg.Workers)
	states, baseline, histLikes := s.world.states, s.world.baseline, s.world.histLikes

	// Phase 6 — per-campaign results straight from the monitor
	// summaries, fanned out on the pool. Every task writes its own
	// index, so assembly needs no locks and no ordering.
	res := &Results{
		Config: s.cfg, Baseline: baseline, HistoryLikes: histLikes,
		Campaigns: make([]CampaignResult, len(states)),
		Temporal:  make([]analysis.TemporalSeries, len(states)),
		Bursts:    make([]analysis.BurstStats, len(states)),
	}
	err := parallel.ForEach(workers, len(states), func(i int) error {
		st := states[i]
		terminated, err := platform.TerminatedAmong(s.store, st.summary.Likers)
		if err != nil {
			return err
		}
		res.Campaigns[i] = CampaignResult{
			Spec:           st.spec,
			Page:           st.page,
			Active:         st.active,
			Likes:          st.summary.TotalLikes,
			Terminated:     terminated,
			MonitoringDays: st.summary.MonitoringDays,
			Likers:         st.summary.Likers,
			Series:         st.summary.Series,
		}
		res.Temporal[i] = analysis.TemporalSeries{
			CampaignID: st.spec.ID,
			Values:     st.summary.Series,
		}
		res.Bursts[i] = analysis.Burstiness(res.Temporal[i])
		return nil
	})
	if err != nil {
		return nil, err
	}
	aCampaigns := make([]analysis.Campaign, len(states))
	for i, st := range states {
		aCampaigns[i] = analysis.Campaign{
			ID:       st.spec.ID,
			Provider: st.spec.Provider,
			Page:     st.page,
			Likers:   st.summary.Likers,
			Active:   st.active,
		}
	}

	// Phase 7 — the §4 analyses. The default engine streams every
	// aggregator over ONE canonical materialization of the like-event
	// journal; the legacy engine re-scans the store once per analysis.
	// Both are bit-identical (TestAnalysisEnginesEquivalent).
	res.Groups = analysis.AssignGroups(aCampaigns, FarmAuthenticLikes, FarmMammothSocials)
	if s.cfg.Analyses == AnalysisMultiScan {
		err = s.runAnalysesMultiScan(res, aCampaigns, baseline, workers)
	} else {
		err = s.runAnalysesOnePass(res, aCampaigns, baseline, workers)
	}
	if err != nil {
		return nil, err
	}

	// Journal accounting: total ingest plus per-campaign stream stats.
	res.Journal = JournalStats{
		TotalEvents: s.store.Journal().Len(),
		Campaigns:   make(map[string]CampaignJournalStats, len(states)),
	}
	for _, st := range states {
		res.Journal.Campaigns[st.spec.ID] = CampaignJournalStats{
			Events: st.summary.Events,
			Cursor: st.summary.Cursor,
		}
	}
	return res, nil
}

// runAnalysesOnePass is the streaming analysis engine: one canonical
// pass over the journal feeds every like-scan aggregator, while the
// graph analyses (which read the friendship graph, not like events) run
// alongside on the same pool. Determinism: the canonical event order is
// a pure function of the events themselves (socialnet journal
// contract), each aggregator folds that sequence serially, and tasks
// write disjoint Results fields — so output is bit-identical for every
// worker and shard count.
func (s *Study) runAnalysesOnePass(res *Results, aCampaigns []analysis.Campaign, baseline []socialnet.UserID, workers int) error {
	geo := analysis.NewGeoAggregator(s.store, aCampaigns)
	demo := analysis.NewDemoAggregator(s.store, aCampaigns)
	win := analysis.NewWindowAggregator(aCampaigns)
	cdf := analysis.NewPageLikeCDFAggregator(aCampaigns, baseline)
	jac := analysis.NewJaccardAggregator(aCampaigns)
	rem := analysis.NewRemovedLikesAggregator(s.store, aCampaigns)

	base := s.store.FriendGraph()
	err := parallel.Tasks(workers,
		func() error {
			var err error
			res.Table3, err = analysis.SocialGraphTable(s.store, res.Groups, base)
			return err
		},
		func() error {
			direct, twoHop := analysis.LikerGraphs(res.Groups, base)
			res.DirectCensus = analysis.CensusByProvider(res.Groups, direct)
			res.TwoHopCensus = analysis.CensusByProvider(res.Groups, twoHop)
			res.CrossEdges = analysis.CrossProviderEdges(res.Groups, direct)
			return nil
		},
		func() error {
			return analysis.RunPass(s.store.Journal(), aCampaigns, baseline, workers,
				geo, demo, win, cdf, jac, rem)
		},
	)
	if err != nil {
		return err
	}
	res.Geo = geo.Rows()
	res.Demo = demo.Rows()
	res.Windows = win.Stats()
	res.CDFs = cdf.Rows()
	res.PageSim, res.UserSim = jac.Matrices()
	res.RemovedLikes = rem.Removed()
	return nil
}

// runAnalysesMultiScan is the legacy analysis engine: one full store
// scan per analysis. Kept as the byte-identical baseline the one-pass
// engine is benchmarked and regression-tested against.
func (s *Study) runAnalysesMultiScan(res *Results, aCampaigns []analysis.Campaign, baseline []socialnet.UserID, workers int) error {
	res.Windows = make([]analysis.WindowStats, len(aCampaigns))
	removed := make([]int, len(aCampaigns))
	err := parallel.ForEach(workers, len(aCampaigns), func(i int) error {
		c := aCampaigns[i]
		removed[i] = s.store.LikeCountOfPage(c.Page) - s.store.ActiveLikeCountOfPage(c.Page)
		likes := s.store.LikesOfPage(c.Page)
		times := make([]time.Time, len(likes))
		for j, lk := range likes {
			times[j] = lk.At
		}
		ws, err := analysis.WindowAnalysis(c.ID, times)
		if err != nil {
			return err
		}
		res.Windows[i] = ws
		return nil
	})
	if err != nil {
		return err
	}
	res.RemovedLikes = make(map[string]int, len(aCampaigns))
	for i, c := range aCampaigns {
		res.RemovedLikes[c.ID] = removed[i]
	}

	base := s.store.FriendGraph()
	return parallel.Tasks(workers,
		func() error {
			var err error
			res.Geo, err = analysis.LocationBreakdown(s.store, aCampaigns)
			return err
		},
		func() error {
			var err error
			res.Demo, err = analysis.Demographics(s.store, aCampaigns)
			return err
		},
		func() error {
			var err error
			res.Table3, err = analysis.SocialGraphTable(s.store, res.Groups, base)
			return err
		},
		func() error {
			direct, twoHop := analysis.LikerGraphs(res.Groups, base)
			res.DirectCensus = analysis.CensusByProvider(res.Groups, direct)
			res.TwoHopCensus = analysis.CensusByProvider(res.Groups, twoHop)
			res.CrossEdges = analysis.CrossProviderEdges(res.Groups, direct)
			return nil
		},
		func() error {
			var err error
			res.CDFs, err = analysis.PageLikeCDFs(s.store, aCampaigns, baseline)
			return err
		},
		func() error {
			var err error
			res.PageSim, res.UserSim, err = analysis.JaccardMatrices(s.store, aCampaigns)
			return err
		},
	)
}

// runCampaign promotes one campaign on its private clock, monitors the
// page on the §3 cadence, and drains the clock to the end of
// monitoring. It runs on the study's worker pool; everything it touches
// is either campaign-private (clock, RNG stream, monitor), striped
// (store), or — for same-pool farm orders — serialized by the domain
// grouping in Run.
func (s *Study) runCampaign(st *running) error {
	cs := st.spec
	switch cs.Kind {
	case KindFacebookAds:
		err := s.engine.LaunchSeeded(st.clock, st.rng, platform.AdCampaign{
			Page:          st.page,
			TargetCountry: cs.TargetCountry,
			BudgetPerDay:  cs.BudgetPerDay,
			DurationDays:  cs.DurationDays,
		})
		if err != nil {
			return fmt.Errorf("core: launch %s: %w", cs.ID, err)
		}
	case KindFarmOrder:
		f := s.farms[cs.FarmName]
		order := cs.Order
		order.Campaign = cs.ID
		order.Page = st.page
		err := f.PlaceOrderSeeded(st.clock, st.rng, order)
		if errors.Is(err, farm.ErrInactive) {
			st.active = false
		} else if err != nil {
			return fmt.Errorf("core: order %s: %w", cs.ID, err)
		}
	}
	mcfg := honeypot.DefaultMonitorConfig(cs.DurationDays)
	if s.cfg.MonitorActiveInterval > 0 {
		mcfg.ActiveInterval = s.cfg.MonitorActiveInterval
	}
	mon, err := honeypot.StartMonitor(st.clock, s.store, st.page, mcfg)
	if err != nil {
		return fmt.Errorf("core: monitor %s: %w", cs.ID, err)
	}
	st.clock.Drain(0)
	// Figure 2 plots all campaigns on a common 15-day axis.
	days := 15
	if cs.DurationDays > days {
		days = cs.DurationDays
	}
	st.summary = mon.Summarize(st.clock.Now(), days)
	return nil
}

// RunDefault builds and runs the default 13-campaign study.
func RunDefault(seed int64) (*Results, error) {
	s, err := NewStudy(DefaultConfig(seed))
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Elapsed returns the virtual time since study start.
func (s *Study) Elapsed() time.Duration { return s.clock.Now().Sub(s.cfg.Start) }
