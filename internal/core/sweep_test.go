package core

import (
	"bytes"
	"testing"
)

func sweepBase(t *testing.T, seed int64) StudyConfig {
	t.Helper()
	cfg, err := ScaledConfig(seed, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestGridVariantsCartesianProduct(t *testing.T) {
	base := sweepBase(t, 3)
	variants := GridVariants(base,
		SweepAxis{Name: "budget", Values: []SweepValue{
			{Label: "budget=1x", Apply: nil},
			{Label: "budget=2x", Apply: func(c *StudyConfig) {
				for i := range c.Campaigns {
					c.Campaigns[i].BudgetPerDay *= 2
				}
			}},
		}},
		SweepAxis{Name: "pop", Values: []SweepValue{
			{Label: "pop=s", Apply: nil},
			{Label: "pop=l", Apply: func(c *StudyConfig) { c.Population.NumUsers *= 2 }},
		}},
	)
	if len(variants) != 4 {
		t.Fatalf("variants = %d, want 4", len(variants))
	}
	want := []string{"budget=1x/pop=s", "budget=1x/pop=l", "budget=2x/pop=s", "budget=2x/pop=l"}
	for i, v := range variants {
		if v.Name != want[i] {
			t.Fatalf("variant %d = %q, want %q", i, v.Name, want[i])
		}
	}
	// Mutations must not leak across variants: only budget=2x cells see
	// the doubled budget.
	if variants[0].Config.Campaigns[0].BudgetPerDay != base.Campaigns[0].BudgetPerDay {
		t.Fatal("base variant mutated")
	}
	if variants[2].Config.Campaigns[0].BudgetPerDay != 2*base.Campaigns[0].BudgetPerDay {
		t.Fatal("budget axis not applied")
	}
}

// TestSweepRunsGridConcurrently runs a small scenario grid (budget and
// population axes) on the variant pool and checks the aggregates react
// to the axes in the expected direction.
func TestSweepRunsGridConcurrently(t *testing.T) {
	base := sweepBase(t, 11)
	sw := &Sweep{
		Variants: GridVariants(base,
			SweepAxis{Name: "budget", Values: []SweepValue{
				{Label: "budget=1x"},
				{Label: "budget=3x", Apply: func(c *StudyConfig) {
					for i := range c.Campaigns {
						if c.Campaigns[i].Kind == KindFacebookAds {
							c.Campaigns[i].BudgetPerDay *= 3
						}
					}
				}},
			}},
		),
		Workers:      2,
		InnerWorkers: 1,
	}
	outcomes, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(outcomes))
	}
	rows := Summarize(outcomes)
	if len(rows) != 2 {
		t.Fatalf("summary rows = %d, want 2", len(rows))
	}
	if rows[0].Name != "budget=1x" || rows[1].Name != "budget=3x" {
		t.Fatalf("row order %q, %q", rows[0].Name, rows[1].Name)
	}
	// Tripling the FB ad budgets must garner strictly more likes.
	if rows[1].TotalLikes <= rows[0].TotalLikes {
		t.Fatalf("3x budget likes %d <= 1x budget likes %d", rows[1].TotalLikes, rows[0].TotalLikes)
	}
	for _, row := range rows {
		if row.Campaigns != 13 {
			t.Fatalf("%s ran %d campaigns, want 13", row.Name, row.Campaigns)
		}
	}
}

// TestSweepVariantFailureDoesNotCancelSiblings: a broken variant
// reports its error; healthy variants still complete.
func TestSweepVariantFailureDoesNotCancelSiblings(t *testing.T) {
	base := sweepBase(t, 5)
	broken := base
	broken.BaselineSize = 0 // fails validation
	sw := &Sweep{
		Variants: []SweepVariant{
			{Name: "broken", Config: broken},
			{Name: "healthy", Config: base},
		},
		Workers:      2,
		InnerWorkers: 1,
	}
	outcomes, err := sw.Run()
	if err == nil {
		t.Fatal("expected the broken variant's error")
	}
	if outcomes[0].Err == nil {
		t.Fatal("broken variant should have an error")
	}
	if outcomes[1].Err != nil || outcomes[1].Results == nil {
		t.Fatalf("healthy variant failed: %v", outcomes[1].Err)
	}
}

// TestSweepDeterministic: the same grid yields byte-identical variant
// results regardless of the sweep's own worker count.
func TestSweepDeterministic(t *testing.T) {
	grid := func(workers int) [][]byte {
		sw := &Sweep{
			Variants: GridVariants(sweepBase(t, 23),
				SweepAxis{Name: "pop", Values: []SweepValue{
					{Label: "pop=1x"},
					{Label: "pop=2x", Apply: func(c *StudyConfig) { c.Population.NumUsers *= 2 }},
				}},
			),
			Workers:      workers,
			InnerWorkers: 1,
		}
		outcomes, err := sw.Run()
		if err != nil {
			t.Fatal(err)
		}
		var out [][]byte
		for _, o := range outcomes {
			data, err := o.Results.MarshalJSONStable()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, data)
		}
		return out
	}
	serial := grid(1)
	conc := grid(4)
	for i := range serial {
		if !bytes.Equal(serial[i], conc[i]) {
			t.Fatalf("variant %d differs between sweep worker counts", i)
		}
	}
}
