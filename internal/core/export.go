package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/socialnet"
)

// CrossEdgeCount is one provider-pair direct-friendship count in JSON
// form ([2]string map keys cannot be marshaled directly).
type CrossEdgeCount struct {
	A, B  string
	Count int
}

// resultsJSON is the stable JSON shape of Results: every field either
// marshals deterministically by construction (slices, string-keyed
// maps) or is converted to a sorted slice here. Config is reduced to
// the identifying knobs; the full config is process-local (it holds
// distributions and function-free but large specs).
type resultsJSON struct {
	Seed         int64
	Workers      int
	Campaigns    []CampaignResult
	Geo          []analysis.GeoRow
	Demo         []analysis.DemoRow
	Temporal     []analysis.TemporalSeries
	Bursts       []analysis.BurstStats
	Windows      []analysis.WindowStats
	Table3       []analysis.ProviderGroupRow
	DirectCensus []analysis.ComponentCensus
	TwoHopCensus []analysis.ComponentCensus
	CrossEdges   []CrossEdgeCount
	GroupOrder   []string
	Groups       map[string][]socialnet.UserID
	Baseline     []socialnet.UserID
	CDFs         []analysis.PageLikeCDF
	PageSim      [][]float64
	UserSim      [][]float64
	RemovedLikes map[string]int
	HistoryLikes int
	Journal      JournalStats
}

// MarshalJSONStable renders the complete results as deterministic JSON:
// the same study outcome always yields the same bytes, regardless of
// worker count or map iteration order. The determinism regression tests
// compare these bytes across serial and parallel runs.
func (r *Results) MarshalJSONStable() ([]byte, error) {
	out := resultsJSON{
		Seed:         r.Config.Seed,
		Workers:      r.Config.Workers,
		Campaigns:    r.Campaigns,
		Geo:          r.Geo,
		Demo:         r.Demo,
		Temporal:     r.Temporal,
		Bursts:       r.Bursts,
		Windows:      r.Windows,
		Table3:       r.Table3,
		DirectCensus: r.DirectCensus,
		TwoHopCensus: r.TwoHopCensus,
		Baseline:     r.Baseline,
		CDFs:         r.CDFs,
		PageSim:      r.PageSim,
		UserSim:      r.UserSim,
		RemovedLikes: r.RemovedLikes,
		HistoryLikes: r.HistoryLikes,
		// Journal.Campaigns is a string-keyed map: encoding/json sorts
		// the keys, so the rendering stays byte-deterministic.
		Journal: r.Journal,
	}
	out.CrossEdges = make([]CrossEdgeCount, 0, len(r.CrossEdges))
	for k, v := range r.CrossEdges {
		out.CrossEdges = append(out.CrossEdges, CrossEdgeCount{A: k[0], B: k[1], Count: v})
	}
	sort.Slice(out.CrossEdges, func(i, j int) bool {
		if out.CrossEdges[i].A != out.CrossEdges[j].A {
			return out.CrossEdges[i].A < out.CrossEdges[j].A
		}
		return out.CrossEdges[i].B < out.CrossEdges[j].B
	})
	if r.Groups != nil {
		out.GroupOrder = r.Groups.Order
		out.Groups = r.Groups.Groups
	}
	return json.MarshalIndent(&out, "", " ")
}

// CrawlTables reduces the journal-engine Results to the §4 table
// subset an HTTP crawl can also compute (analysis.CrawlTables): geo,
// demographics, 2-hour windows, page-like CDFs, and the Jaccard
// matrices, with the campaign roster IDs in finalize order. The
// crawl-vs-journal equivalence tests and the CI smoke compare this
// rendering byte-for-byte against the crawl pipeline's output.
func (r *Results) CrawlTables() analysis.CrawlTables {
	t := analysis.CrawlTables{
		Campaigns: make([]string, len(r.Campaigns)),
		Geo:       r.Geo,
		Demo:      r.Demo,
		Windows:   r.Windows,
		CDFs:      r.CDFs,
		PageSim:   r.PageSim,
		UserSim:   r.UserSim,
	}
	for i, c := range r.Campaigns {
		t.Campaigns[i] = c.Spec.ID
	}
	return t
}

// WriteJSON writes the stable JSON rendering to dir/results.json and
// returns the file name.
func (r *Results) WriteJSON(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("core: artifacts dir: %w", err)
	}
	data, err := r.MarshalJSONStable()
	if err != nil {
		return "", fmt.Errorf("core: marshal results: %w", err)
	}
	name := "results.json"
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		return "", fmt.Errorf("core: write %s: %w", name, err)
	}
	return name, nil
}

// WriteArtifacts writes every table and figure to dir: CSV files for the
// tables and matrices, text renderings for the plots, and Graphviz DOT
// files for the Figure 3 liker graphs. It returns the written file
// names (relative to dir).
func (r *Results) WriteArtifacts(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: artifacts dir: %w", err)
	}
	var written []string
	write := func(name, content string) error {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return fmt.Errorf("core: write %s: %w", name, err)
		}
		written = append(written, name)
		return nil
	}

	// Table 1 CSV.
	t1 := report.NewTable("", "campaign", "provider", "description", "location",
		"budget", "duration_days", "monitoring_days", "likes", "terminated")
	for _, c := range r.Campaigns {
		mon, likes, term := "", "", ""
		if c.Active {
			mon = fmt.Sprintf("%d", c.MonitoringDays)
			likes = fmt.Sprintf("%d", c.Likes)
			term = fmt.Sprintf("%d", c.Terminated)
		}
		t1.AddRow(c.Spec.ID, c.Spec.Provider, c.Spec.Description, c.Spec.Location,
			c.Spec.BudgetText, fmt.Sprintf("%d", c.Spec.DurationDays), mon, likes, term)
	}
	if err := write("table1_campaigns.csv", t1.CSV()); err != nil {
		return nil, err
	}

	// Figure 1 CSV.
	countries := socialnet.StudyCountries()
	f1 := report.NewTable("", append([]string{"campaign"}, countries...)...)
	for _, row := range r.Geo {
		cells := []string{row.CampaignID}
		for _, c := range countries {
			cells = append(cells, report.Pct(row.Percent[c]))
		}
		f1.AddRow(cells...)
	}
	if err := write("figure1_geolocation.csv", f1.CSV()); err != nil {
		return nil, err
	}

	// Table 2 CSV.
	t2 := report.NewTable("", "campaign", "female_pct", "male_pct",
		"age_13_17", "age_18_24", "age_25_34", "age_35_44", "age_45_54", "age_55_plus", "kl_bits")
	for _, row := range r.Demo {
		cells := []string{row.CampaignID, report.Pct(row.FemalePct), report.Pct(row.MalePct)}
		for _, v := range row.AgePct {
			cells = append(cells, report.Pct(v))
		}
		cells = append(cells, report.F(row.KL, 3))
		t2.AddRow(cells...)
	}
	if err := write("table2_demographics.csv", t2.CSV()); err != nil {
		return nil, err
	}

	// Figure 2 CSV: one row per campaign per day.
	f2 := report.NewTable("", "campaign", "day", "cumulative_likes")
	for _, ts := range r.Temporal {
		for d, v := range ts.Values {
			f2.AddRow(ts.CampaignID, fmt.Sprintf("%d", d), fmt.Sprintf("%d", v))
		}
	}
	if err := write("figure2_temporal.csv", f2.CSV()); err != nil {
		return nil, err
	}

	// Table 3 CSV.
	t3 := report.NewTable("", "provider", "likers", "public_friend_lists", "public_pct",
		"avg_friends", "std_friends", "median_friends", "direct_friendships", "two_hop_relations")
	for _, row := range r.Table3 {
		t3.AddRow(row.Provider,
			fmt.Sprintf("%d", row.Likers),
			fmt.Sprintf("%d", row.PublicFriendLists),
			report.Pct(row.PublicPct),
			report.F(row.AvgFriends, 1), report.F(row.StdFriends, 1),
			report.F(row.MedianFriends, 1),
			fmt.Sprintf("%d", row.DirectFriendships),
			fmt.Sprintf("%d", row.TwoHopRelations))
	}
	if err := write("table3_socialgraph.csv", t3.CSV()); err != nil {
		return nil, err
	}

	// Figure 4 CSV: summary quantiles per campaign.
	f4 := report.NewTable("", "campaign", "n", "median", "p90", "max")
	for _, c := range r.CDFs {
		f4.AddRow(c.CampaignID, fmt.Sprintf("%d", c.N),
			report.F(c.Median, 1), report.F(c.P90, 1), report.F(c.Max, 1))
	}
	if err := write("figure4_pagelikes.csv", f4.CSV()); err != nil {
		return nil, err
	}

	// Figure 5 CSVs.
	labels := make([]string, len(r.Campaigns))
	for i, c := range r.Campaigns {
		labels[i] = c.Spec.ID
	}
	matrixCSV := func(m [][]float64) string {
		t := report.NewTable("", append([]string{"campaign"}, labels...)...)
		for i, row := range m {
			cells := []string{labels[i]}
			for _, v := range row {
				cells = append(cells, report.F(v, 2))
			}
			t.AddRow(cells...)
		}
		return t.CSV()
	}
	if err := write("figure5a_jaccard_pages.csv", matrixCSV(r.PageSim)); err != nil {
		return nil, err
	}
	if err := write("figure5b_jaccard_likers.csv", matrixCSV(r.UserSim)); err != nil {
		return nil, err
	}

	// Extension CSV.
	ext := report.NewTable("", "campaign", "likes", "removed")
	for _, c := range r.Campaigns {
		if !c.Active {
			continue
		}
		ext.AddRow(c.Spec.ID, fmt.Sprintf("%d", c.Likes),
			fmt.Sprintf("%d", r.RemovedLikes[c.Spec.ID]))
	}
	if err := write("extension_removed_likes.csv", ext.CSV()); err != nil {
		return nil, err
	}

	// Full text report.
	if err := write("report.txt", r.RenderAll()); err != nil {
		return nil, err
	}
	return written, nil
}

// WriteFigure3DOT writes the direct and 2-hop liker graphs as Graphviz
// DOT files into dir (figure3a_direct.dot, figure3b_twohop.dot), using
// the study's base friendship graph.
func (s *Study) WriteFigure3DOT(res *Results, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: dot dir: %w", err)
	}
	base := s.store.FriendGraph()
	direct, twoHop := analysis.LikerGraphs(res.Groups, base)
	files := []struct {
		name string
		dot  string
	}{
		{"figure3a_direct.dot", analysis.LikerGraphDOT(direct, res.Groups, analysis.DOTOptions{Name: "direct"})},
		{"figure3b_twohop.dot", analysis.LikerGraphDOT(twoHop, res.Groups, analysis.DOTOptions{Name: "twohop"})},
	}
	var written []string
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.name), []byte(f.dot), 0o644); err != nil {
			return nil, fmt.Errorf("core: write %s: %w", f.name, err)
		}
		written = append(written, f.name)
	}
	return written, nil
}
