package core

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/api"
	"repro/internal/crawler"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

// TestHTTPCrawlMatchesStoreAnalysis runs a scaled study, serves the
// resulting world over HTTP, crawls one campaign's likers through the
// network stack, and verifies that the crawled observables reproduce the
// store-side analysis — the §3 pipeline end to end.
func TestHTTPCrawlMatchesStoreAnalysis(t *testing.T) {
	res := miniResults(t)
	// miniResults caches the Results but not the Study; rebuild the
	// same world deterministically.
	cfg, err := ScaledConfig(7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.NewServer(s.Store(), "tok"))
	defer srv.Close()

	ccfg := crawler.DefaultConfig(srv.URL)
	ccfg.MinInterval = 0
	ccfg.AdminToken = "tok"
	cl, err := crawler.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	target := campaign(t, res2, "SF-ALL")
	profiles, err := cl.CrawlLikers(ctx, int64(target.Page))
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != target.Likes {
		t.Fatalf("crawled %d likers, store says %d", len(profiles), target.Likes)
	}

	// Crawled country mix must match the store-side Figure 1 row.
	turkey := 0
	for _, p := range profiles {
		if p.User.Country == socialnet.CountryTurkey {
			turkey++
		}
	}
	var storeRow float64
	for _, row := range res2.Geo {
		if row.CampaignID == "SF-ALL" {
			storeRow = row.Percent[socialnet.CountryTurkey]
		}
	}
	crawled := 100 * float64(turkey) / float64(len(profiles))
	if diff := crawled - storeRow; diff > 0.5 || diff < -0.5 {
		t.Fatalf("crawled turkey %.1f%% vs analysis %.1f%%", crawled, storeRow)
	}

	// Crawled page-like medians must match the store-side Figure 4 value.
	var likeCounts []float64
	for _, p := range profiles {
		likeCounts = append(likeCounts, float64(len(p.PageLikes)))
	}
	med, err := stats.Median(likeCounts)
	if err != nil {
		t.Fatal(err)
	}
	var storeMed float64
	for _, c := range res2.CDFs {
		if c.CampaignID == "SF-ALL" {
			storeMed = c.Median
		}
	}
	if med != storeMed {
		t.Fatalf("crawled median %v vs analysis median %v", med, storeMed)
	}

	// Friend-list privacy fractions agree with Table 3's SF row.
	hidden := 0
	for _, p := range profiles {
		if p.FriendsHidden {
			hidden++
		}
	}
	publicFrac := 100 * float64(len(profiles)-hidden) / float64(len(profiles))
	var t3 float64
	for _, row := range res2.Table3 {
		if row.Provider == FarmSocialFormula {
			t3 = row.PublicPct
		}
	}
	// Table 3 groups all SF campaigns; allow a loose band.
	if publicFrac < t3-15 || publicFrac > t3+15 {
		t.Fatalf("crawled public-list %.1f%% vs Table 3 %.1f%%", publicFrac, t3)
	}

	// Admin report over HTTP equals the direct report.
	rep, err := cl.AdminReport(ctx, int64(target.Page))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalLikes != target.Likes {
		t.Fatalf("admin report likes %d vs %d", rep.TotalLikes, target.Likes)
	}

	// Determinism across rebuilds: the cached mini results and this
	// rebuild came from the same seed and must agree.
	if res.Campaigns[7].Likes != res2.Campaigns[7].Likes {
		t.Fatalf("rebuild diverged: %d vs %d", res.Campaigns[7].Likes, res2.Campaigns[7].Likes)
	}
}
