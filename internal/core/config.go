// Package core is the end-to-end driver of the reproduction: it builds
// the simulated world, deploys the paper's thirteen honeypot pages,
// promotes five via page-like ads and eight via four like farms, monitors
// them on the §3 cadence, runs the month-later fraud sweep, and produces
// every table and figure of the evaluation (§4–5).
package core

import (
	"fmt"
	"time"

	"repro/internal/accounts"
	"repro/internal/farm"
	"repro/internal/platform"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

// CampaignKind distinguishes the two promotion methods.
type CampaignKind int

// Promotion methods.
const (
	KindFacebookAds CampaignKind = iota
	KindFarmOrder
)

// CampaignSpec is one row of Table 1's roster.
type CampaignSpec struct {
	// ID is the paper's label, e.g. "FB-USA", "SF-ALL".
	ID string
	// Provider is the promotion channel for display and grouping.
	Provider string
	// Description and Location and BudgetText mirror Table 1's columns.
	Description string
	Location    string
	BudgetText  string
	// DurationDays is the advertised campaign duration.
	DurationDays int

	Kind CampaignKind

	// Facebook ads parameters.
	TargetCountry string // "" = worldwide
	BudgetPerDay  float64

	// Farm order parameters.
	FarmName string
	Order    farm.Order
}

// CoverMix sets how a farm pool's cover likes split across page blocks:
// the farm's own job portfolio, a farm-private noise block, and the
// shared global head (the only page overlap with other channels).
type CoverMix struct {
	Jobs   float64
	Noise  float64
	Global float64
}

// FarmSetup couples a farm brand with its account pool. Farms listing
// the same PoolName share one cohort and one usage tracker (the AL/MS
// same-operator scenario).
type FarmSetup struct {
	Config   farm.Config
	PoolName string
	Pool     accounts.CohortSpec // used by the first farm naming the pool
	// JobPortfolioSize is the farm's customer-page catalog feeding its
	// accounts' cover likes; NoiseBlockSize is the farm-private block.
	JobPortfolioSize int
	NoiseBlockSize   int
	Mix              CoverMix
}

// PageBlocksSpec sizes the shared page-universe blocks.
type PageBlocksSpec struct {
	// GlobalHead is the slice of hugely popular pages everyone likes a
	// little of — the cross-channel overlap floor in Figure 5(a).
	GlobalHead int
	// AdWorld is the block of ad-buying pages shared by all click
	// markets — why the FB campaigns resemble each other in 5(a).
	AdWorld int
	// RegionalPerMarket is the per-country page block size.
	RegionalPerMarket int
}

// StudyConfig is the full experiment configuration.
type StudyConfig struct {
	Seed  int64
	Start time.Time

	Population socialnet.PopulationSpec
	Markets    []platform.ClickMarket
	Farms      []FarmSetup
	Campaigns  []CampaignSpec

	// Blocks sizes the shared page-universe blocks.
	Blocks PageBlocksSpec

	// BaselineSize is the Figure 4 organic sample size (paper: 2000).
	BaselineSize int

	// Sweep configures the month-later termination pass; SweepDelayDays
	// is measured from Start.
	Sweep          platform.FraudSweepConfig
	SweepDelayDays int

	// MonitorActiveInterval/sweep cadence follow the paper unless
	// overridden here (zero values = paper defaults).
	MonitorActiveInterval time.Duration

	// Workers bounds the study engine's worker pool: campaign
	// simulation, history materialization, the fraud sweep, and the §4
	// analyses all run on it. 0 (the default) means one worker per
	// logical CPU; 1 runs the whole study serially. Results are
	// bit-identical for every worker count — each campaign and each
	// account draws from its own RNG stream split from Seed.
	Workers int

	// Analyses selects the §4 analysis engine. The default
	// (AnalysisOnePass) streams every aggregator over one canonical
	// materialization of the store's like-event journal;
	// AnalysisMultiScan is the legacy engine that scans the store once
	// per analysis, kept as the regression baseline — both produce
	// byte-identical Results.
	Analyses string

	// Terminations selects the fraud-sweep verdict engine for phase 5.
	// The default (TerminationBatch) scores the likers with the batch
	// verdict pass; TerminationStream drives the same termination
	// policy off a live StreamScorer tick over the journal — the
	// production deployment's path — and produces byte-identical
	// Results (the detect package pins the two engines' verdicts equal,
	// and each account's termination coin comes from its own split
	// stream).
	Terminations string
}

// Analysis engine modes for StudyConfig.Analyses.
const (
	AnalysisOnePass   = ""
	AnalysisMultiScan = "multiscan"
)

// Termination engine modes for StudyConfig.Terminations.
const (
	TerminationBatch  = ""
	TerminationStream = "stream"
)

// StudyStart is the paper's campaign launch date (§3).
var StudyStart = time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

// Validate checks cross-references in the configuration.
func (c *StudyConfig) Validate() error {
	if len(c.Campaigns) == 0 {
		return fmt.Errorf("core: no campaigns configured")
	}
	farms := make(map[string]bool)
	for _, f := range c.Farms {
		if farms[f.Config.Name] {
			return fmt.Errorf("core: duplicate farm %s", f.Config.Name)
		}
		farms[f.Config.Name] = true
	}
	seen := make(map[string]bool)
	for _, cs := range c.Campaigns {
		if cs.ID == "" {
			return fmt.Errorf("core: campaign without ID")
		}
		if seen[cs.ID] {
			return fmt.Errorf("core: duplicate campaign %s", cs.ID)
		}
		seen[cs.ID] = true
		switch cs.Kind {
		case KindFacebookAds:
			if cs.BudgetPerDay <= 0 {
				return fmt.Errorf("core: campaign %s has no budget", cs.ID)
			}
		case KindFarmOrder:
			if !farms[cs.FarmName] {
				return fmt.Errorf("core: campaign %s references unknown farm %q", cs.ID, cs.FarmName)
			}
		default:
			return fmt.Errorf("core: campaign %s has unknown kind %d", cs.ID, cs.Kind)
		}
		if cs.DurationDays < 1 {
			return fmt.Errorf("core: campaign %s duration %d must be >=1", cs.ID, cs.DurationDays)
		}
	}
	if c.BaselineSize < 1 {
		return fmt.Errorf("core: baseline size %d must be >=1", c.BaselineSize)
	}
	if c.SweepDelayDays < 1 {
		return fmt.Errorf("core: sweep delay %d days must be >=1", c.SweepDelayDays)
	}
	if c.Analyses != AnalysisOnePass && c.Analyses != AnalysisMultiScan {
		return fmt.Errorf("core: unknown analysis mode %q", c.Analyses)
	}
	if c.Terminations != TerminationBatch && c.Terminations != TerminationStream {
		return fmt.Errorf("core: unknown termination mode %q", c.Terminations)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: workers %d must be >=0", c.Workers)
	}
	return nil
}

// Farm brand names used throughout.
const (
	FarmBoostLikes     = "BoostLikes.com"
	FarmSocialFormula  = "SocialFormula.com"
	FarmAuthenticLikes = "AuthenticLikes.com"
	FarmMammothSocials = "MammothSocials.com"
)

// DefaultConfig returns the full 13-campaign reproduction of Table 1,
// calibrated so the shape of every published table and figure holds.
func DefaultConfig(seed int64) StudyConfig {
	start := StudyStart
	pop := socialnet.DefaultPopulationSpec()
	pop.NumAmbientPages = 12000
	pop.PageZipfS = 1.05

	fixed := func(country string) *stats.Categorical {
		return stats.MustCategorical([]string{country}, []float64{1})
	}

	cfg := StudyConfig{
		Seed:       seed,
		Start:      start,
		Population: pop,
		Markets:    platform.DefaultMarkets(start.AddDate(-2, 0, 0)),
		Blocks: PageBlocksSpec{
			GlobalHead:        3000,
			AdWorld:           8000,
			RegionalPerMarket: 8000,
		},
		BaselineSize:   2000,
		Sweep:          platform.DefaultFraudSweepConfig(),
		SweepDelayDays: 45, // campaigns ran 15 days; checked a month later
	}

	created := start.AddDate(-1, -6, 0)

	// BoostLikes: the stealth farm. One well-connected Watts–Strogatz
	// core, high-friend profiles (median 850), tiny like footprints
	// (median 63), steady trickle delivery.
	cfg.Farms = append(cfg.Farms, FarmSetup{
		Config: farm.Config{
			Name:           FarmBoostLikes,
			Mode:           farm.ModeTrickle,
			RotateAccounts: true,
		},
		PoolName: "bl",
		Pool: accounts.CohortSpec{
			Name: "bl-pool", Size: 1400,
			Kind:       socialnet.KindFarmStealth,
			Operator:   FarmBoostLikes,
			CountryMix: fixed(socialnet.CountryUSA),
			Profile: &socialnet.Profile{
				FemaleFrac: 0.53,
				AgeWeights: [6]float64{34.2, 54.5, 8.8, 1.5, 0.7, 0.5},
			},
			FriendsPublicFrac: 0.259,
			SearchableFrac:    0.05,
			Topology: accounts.TopologySpec{
				Kind:             accounts.TopologyCore,
				CoreK:            4,
				CoreBeta:         0.15,
				HubCount:         350,
				HubLinksMean:     2.0,
				OrganicLinksMean: 0.2,
				DeclaredMedian:   850,
				DeclaredSigma:    0.8,
			},
			Cover: accounts.CoverSpec{
				LikeMedian: 63, LikeSigma: 1.0, MaxLikes: 2000,
				Bursty: false,
			},
			CreatedAt: created,
		},
		JobPortfolioSize: 120,
		NoiseBlockSize:   3000,
		Mix:              CoverMix{Jobs: 0.10, Noise: 0.75, Global: 0.15},
	})

	// SocialFormula: Turkish bot pool, ignores targeting, delivers in
	// bursts, rotates accounts between orders.
	cfg.Farms = append(cfg.Farms, FarmSetup{
		Config: farm.Config{
			Name:            FarmSocialFormula,
			Mode:            farm.ModeBurst,
			IgnoreTargeting: true,
			RotateAccounts:  true,
		},
		PoolName: "sf",
		Pool: accounts.CohortSpec{
			Name: "sf-pool", Size: 1800,
			Kind:     socialnet.KindFarmBot,
			Operator: FarmSocialFormula,
			CountryMix: stats.MustCategorical(
				[]string{socialnet.CountryTurkey, socialnet.CountryOther},
				[]float64{0.93, 0.07},
			),
			// Near-global demographics: SF's KL in Table 2 is 0.04.
			Profile: &socialnet.Profile{
				FemaleFrac: 0.37,
				AgeWeights: [6]float64{19.8, 33.3, 21.0, 15.2, 7.2, 2.8},
			},
			FriendsPublicFrac: 0.58,
			SearchableFrac:    0.05,
			Topology: accounts.TopologySpec{
				Kind:             accounts.TopologyIslands,
				InternalPairFrac: 0.062,
				TripletFrac:      0.25,
				HubCount:         500,
				HubLinksMean:     0.6,
				OrganicLinksMean: 0.05,
				DeclaredMedian:   155,
				DeclaredSigma:    0.9,
			},
			Cover: accounts.CoverSpec{
				LikeMedian: 1500, LikeSigma: 0.8, MaxLikes: 6000,
				Bursty: true,
			},
			CreatedAt: created,
		},
		JobPortfolioSize: 2500,
		NoiseBlockSize:   5000,
		Mix:              CoverMix{Jobs: 0.70, Noise: 0.25, Global: 0.05},
	})

	// AuthenticLikes + MammothSocials: one operator, one pool. The pool
	// mixes padded accounts with bare ones; MS orders are served from
	// the cheap stratum (ALMS median 46 friends in Table 3).
	almsPool := accounts.CohortSpec{
		Name: "alms-pool", Size: 3300,
		Kind:     socialnet.KindFarmBot,
		Operator: "ALMS-operator",
		CountryMix: stats.MustCategorical(
			[]string{socialnet.CountryUSA, socialnet.CountryOther, socialnet.CountryIndia, socialnet.CountryEgypt},
			[]float64{0.62, 0.20, 0.10, 0.08},
		),
		Profile: &socialnet.Profile{
			FemaleFrac: 0.34,
			AgeWeights: [6]float64{11, 47, 26, 9, 4, 3},
		},
		FriendsPublicFrac: 0.45,
		SearchableFrac:    0.05,
		Topology: accounts.TopologySpec{
			Kind:             accounts.TopologyIslands,
			InternalPairFrac: 0.055,
			TripletFrac:      0.3,
			HubCount:         600,
			HubLinksMean:     0.55,
			OrganicLinksMean: 0.05,
			DeclaredMedian:   550,
			DeclaredSigma:    1.0,
			DeclaredMedian2:  45,
			DeclaredFrac2:    0.4,
		},
		Cover: accounts.CoverSpec{
			LikeMedian: 1300, LikeSigma: 0.8, MaxLikes: 6000,
			Bursty: true,
		},
		CreatedAt: created,
	}
	cfg.Farms = append(cfg.Farms, FarmSetup{
		Config: farm.Config{
			Name:           FarmAuthenticLikes,
			Mode:           farm.ModeBurst,
			RotateAccounts: true,
		},
		PoolName:         "alms",
		Pool:             almsPool,
		JobPortfolioSize: 2200,
		NoiseBlockSize:   5000,
		Mix:              CoverMix{Jobs: 0.70, Noise: 0.25, Global: 0.05},
	})
	cfg.Farms = append(cfg.Farms, FarmSetup{
		Config: farm.Config{
			Name:           FarmMammothSocials,
			Mode:           farm.ModeBurst,
			RotateAccounts: true,
		},
		PoolName: "alms", // same operator, same pool
	})

	day := 24 * time.Hour
	cfg.Campaigns = []CampaignSpec{
		// --- Facebook page-like ad campaigns ($6/day, 15 days). ---
		{
			ID: "FB-USA", Provider: "Facebook.com", Description: "Page like ads",
			Location: "USA", BudgetText: "$6/day", DurationDays: 15,
			Kind: KindFacebookAds, TargetCountry: socialnet.CountryUSA, BudgetPerDay: 6,
		},
		{
			ID: "FB-FRA", Provider: "Facebook.com", Description: "Page like ads",
			Location: "France", BudgetText: "$6/day", DurationDays: 15,
			Kind: KindFacebookAds, TargetCountry: socialnet.CountryFrance, BudgetPerDay: 6,
		},
		{
			ID: "FB-IND", Provider: "Facebook.com", Description: "Page like ads",
			Location: "India", BudgetText: "$6/day", DurationDays: 15,
			Kind: KindFacebookAds, TargetCountry: socialnet.CountryIndia, BudgetPerDay: 6,
		},
		{
			ID: "FB-EGY", Provider: "Facebook.com", Description: "Page like ads",
			Location: "Egypt", BudgetText: "$6/day", DurationDays: 15,
			Kind: KindFacebookAds, TargetCountry: socialnet.CountryEgypt, BudgetPerDay: 6,
		},
		{
			ID: "FB-ALL", Provider: "Facebook.com", Description: "Page like ads",
			Location: "Worldwide", BudgetText: "$6/day", DurationDays: 15,
			Kind: KindFacebookAds, TargetCountry: "", BudgetPerDay: 6,
		},
		// --- Like farm orders. ---
		{
			ID: "BL-ALL", Provider: FarmBoostLikes, Description: "1000 likes",
			Location: "Worldwide", BudgetText: "$70.00", DurationDays: 15,
			Kind: KindFarmOrder, FarmName: FarmBoostLikes,
			Order: farm.Order{Quantity: 1000, DurationDays: 15, Inactive: true},
		},
		{
			ID: "BL-USA", Provider: FarmBoostLikes, Description: "1000 likes",
			Location: "USA only", BudgetText: "$190.00", DurationDays: 15,
			Kind: KindFarmOrder, FarmName: FarmBoostLikes,
			Order: farm.Order{
				Quantity: 1000, DeliverCount: 621, DurationDays: 15,
				TargetCountry: socialnet.CountryUSA,
			},
		},
		{
			ID: "SF-ALL", Provider: FarmSocialFormula, Description: "1000 likes",
			Location: "Worldwide", BudgetText: "$14.99", DurationDays: 3,
			Kind: KindFarmOrder, FarmName: FarmSocialFormula,
			Order: farm.Order{
				Quantity: 1000, DeliverCount: 984, DurationDays: 3, Bursts: 2,
			},
		},
		{
			ID: "SF-USA", Provider: FarmSocialFormula, Description: "1000 likes",
			Location: "USA", BudgetText: "$69.99", DurationDays: 3,
			Kind: KindFarmOrder, FarmName: FarmSocialFormula,
			Order: farm.Order{
				Quantity: 1000, DeliverCount: 738, DurationDays: 3, Bursts: 2,
				TargetCountry: socialnet.CountryUSA, // ignored by SF
				ReuseBias:     0.1,
			},
		},
		{
			ID: "AL-ALL", Provider: FarmAuthenticLikes, Description: "1000 likes",
			Location: "Worldwide", BudgetText: "$49.95", DurationDays: 4,
			Kind: KindFarmOrder, FarmName: FarmAuthenticLikes,
			Order: farm.Order{
				Quantity: 1000, DeliverCount: 755, DurationDays: 4, Bursts: 1,
				StartDelay: day, // the day-2 burst of 700+ profiles in 4 hours
			},
		},
		{
			ID: "AL-USA", Provider: FarmAuthenticLikes, Description: "1000 likes",
			Location: "USA", BudgetText: "$59.95", DurationDays: 5,
			Kind: KindFarmOrder, FarmName: FarmAuthenticLikes,
			Order: farm.Order{
				Quantity: 1000, DeliverCount: 1038, DurationDays: 5, Bursts: 3,
				TargetCountry:   socialnet.CountryUSA,
				BurstSpreadDays: 13, // monitored 22 days: likes kept landing
			},
		},
		{
			ID: "MS-ALL", Provider: FarmMammothSocials, Description: "1000 likes",
			Location: "Worldwide", BudgetText: "$20.00", DurationDays: 12,
			Kind: KindFarmOrder, FarmName: FarmMammothSocials,
			Order: farm.Order{Quantity: 1000, DurationDays: 12, Inactive: true},
		},
		{
			ID: "MS-USA", Provider: FarmMammothSocials, Description: "1000 likes",
			Location: "USA only", BudgetText: "$95.00", DurationDays: 12,
			Kind: KindFarmOrder, FarmName: FarmMammothSocials,
			Order: farm.Order{
				Quantity: 1000, DeliverCount: 317, DurationDays: 12, Bursts: 2,
				TargetCountry:   socialnet.CountryUSA,
				BurstSpreadDays: 4,
				ReuseBias:       0.65, // reuse AL's accounts -> ALMS group
				BiasLowFriends:  true,
			},
		},
	}
	return cfg
}

// ScaledConfig returns the default configuration with every population,
// pool, block, and order size multiplied by scale (0 < scale <= 1). It
// keeps the study's structure — all 13 campaigns, both promotion
// channels, both farm strategies — while letting tests and examples run
// in a fraction of the time.
func ScaledConfig(seed int64, scale float64) (StudyConfig, error) {
	if scale <= 0 || scale > 1 {
		return StudyConfig{}, fmt.Errorf("core: scale %v out of (0,1]", scale)
	}
	cfg := DefaultConfig(seed)
	scaleInt := func(n int, min int) int {
		v := int(float64(n) * scale)
		if v < min {
			v = min
		}
		return v
	}
	cfg.Population.NumUsers = scaleInt(cfg.Population.NumUsers, 200)
	cfg.Population.NumAmbientPages = scaleInt(cfg.Population.NumAmbientPages, 300)
	cfg.Blocks.GlobalHead = scaleInt(cfg.Blocks.GlobalHead, 100)
	cfg.Blocks.AdWorld = scaleInt(cfg.Blocks.AdWorld, 200)
	cfg.Blocks.RegionalPerMarket = scaleInt(cfg.Blocks.RegionalPerMarket, 200)
	cfg.BaselineSize = scaleInt(cfg.BaselineSize, 50)
	for i := range cfg.Markets {
		m := &cfg.Markets[i]
		m.Cohort.Size = scaleInt(m.Cohort.Size, 60)
		m.Cohort.Topology.HubCount = scaleInt(m.Cohort.Topology.HubCount, 8)
		// Cheaper likes shrink proportionally so like counts scale too.
		m.CostPerLike /= scale
		m.Cohort.Cover.LikeMedian *= scale
		if m.Cohort.Cover.LikeMedian < 20 {
			m.Cohort.Cover.LikeMedian = 20
		}
	}
	for i := range cfg.Farms {
		f := &cfg.Farms[i]
		if f.Pool.Size > 0 {
			f.Pool.Size = scaleInt(f.Pool.Size, 80)
			f.Pool.Topology.HubCount = scaleInt(f.Pool.Topology.HubCount, 8)
			f.Pool.Cover.LikeMedian *= scale
			if f.Pool.Cover.LikeMedian < 15 {
				f.Pool.Cover.LikeMedian = 15
			}
		}
		if f.JobPortfolioSize > 0 {
			f.JobPortfolioSize = scaleInt(f.JobPortfolioSize, 40)
		}
		if f.NoiseBlockSize > 0 {
			f.NoiseBlockSize = scaleInt(f.NoiseBlockSize, 60)
		}
	}
	for i := range cfg.Campaigns {
		cs := &cfg.Campaigns[i]
		if cs.Kind == KindFarmOrder {
			cs.Order.Quantity = scaleInt(cs.Order.Quantity, 10)
			if cs.Order.DeliverCount > 0 {
				cs.Order.DeliverCount = scaleInt(cs.Order.DeliverCount, 10)
			}
		}
	}
	return cfg, nil
}

// RosterOrder returns the campaign IDs in Table 1 order.
func (c *StudyConfig) RosterOrder() []string {
	out := make([]string, len(c.Campaigns))
	for i, cs := range c.Campaigns {
		out[i] = cs.ID
	}
	return out
}
