package core

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/crawler"
	"repro/internal/socialnet"
)

// TestShardedCrawlOverReplicasMatchesJournalEngine is the acceptance
// test for the distributed study (DESIGN §15): run the study, persist
// it, serve it as a replication leader; bootstrap two read replicas
// over HTTP from its journal segments; split the crawl into two shard
// processes that round-robin their reads across the replicas; merge
// the shard exports — and require the merged §4 tables byte-identical
// to the journal engine's on the same world.
func TestShardedCrawlOverReplicasMatchesJournalEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("full study + replication + HTTP crawl")
	}
	cfg, err := ScaledConfig(5, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	study, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	jt := res.CrawlTables()
	want, err := jt.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	var roster []analysis.CrawlCampaign
	var pages []int64
	for _, c := range res.Campaigns {
		roster = append(roster, analysis.CrawlCampaign{ID: c.Spec.ID, Page: c.Page, Active: c.Active})
		pages = append(pages, int64(c.Page))
	}
	var baseline []socialnet.UserID
	baseline = append(baseline, res.Baseline...)

	// Persist the world and serve the durable reopen as the leader.
	dir := t.TempDir()
	if err := study.Store().Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	leader, _, err := socialnet.OpenDurable(dir, socialnet.WALOptions{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	leaderSrv := httptest.NewServer(api.NewServer(leader, "sekrit"))
	defer leaderSrv.Close()

	// Two read replicas, bootstrapped and tailed entirely over HTTP.
	ctx := context.Background()
	const nReplicas = 2
	replicaURLs := make([]string, nReplicas)
	for i := 0; i < nReplicas; i++ {
		src := api.NewReplHTTPSource(leaderSrv.URL, "sekrit", nil)
		fw, _, err := socialnet.OpenFollower(ctx, t.TempDir(), src, socialnet.FollowerOptions{WAL: socialnet.WALOptions{SyncInterval: -1}})
		if err != nil {
			t.Fatal(err)
		}
		defer fw.Close()
		if _, err := fw.Poll(ctx); err != nil {
			t.Fatal(err)
		}
		rs := api.NewServer(fw.Store(), "")
		rs.SetReadOnly(true)
		rs.SetReplOffsets(func() []uint64 { return fw.Offsets(nil) })
		srv := httptest.NewServer(rs)
		defer srv.Close()
		replicaURLs[i] = srv.URL
	}

	// Replicas serve the read API with the staleness header stamped.
	resp, err := http.Get(replicaURLs[0] + "/api/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Repl-Offsets") == "" {
		t.Fatal("replica response missing X-Repl-Offsets")
	}

	// Two shard processes, each owning half the roster by page hash,
	// reads round-robined across both replicas under a per-shard
	// politeness identity.
	const nShards = 2
	exports := make([]crawler.ShardExport, 0, nShards)
	for shard := 0; shard < nShards; shard++ {
		ccfg := crawler.DefaultConfig(replicaURLs[0])
		ccfg.BaseURLs = replicaURLs
		ccfg.MinInterval = 0
		ccfg.APIToken = fmt.Sprintf("crawler-shard-%d-of-%d", shard+1, nShards)
		cl, err := crawler.New(ccfg)
		if err != nil {
			t.Fatal(err)
		}
		owns := func(p socialnet.PageID) bool { return crawler.ShardOf(int64(p), nShards) == shard }
		crawlBaseline := crawler.ShardUsers(baseline, shard, nShards)
		analyzer := analysis.NewCrawlAnalyzer(analysis.ShardActive(roster, owns), crawlBaseline)
		sink := crawler.NewAnalysisSink(analyzer.Aggregators()...)
		pipe := crawler.NewPipeline(cl, crawler.PipelineConfig{Workers: 4, BatchSize: 17, Sink: sink}, nil)
		noop := func(int64, crawler.LikerProfile) error { return nil }
		if err := pipe.Crawl(ctx, crawler.ShardPages(pages, shard, nShards), noop); err != nil {
			t.Fatal(err)
		}
		ids := make([]int64, len(crawlBaseline))
		for i, u := range crawlBaseline {
			ids[i] = int64(u)
		}
		if err := pipe.CrawlProfiles(ctx, ids, noop); err != nil {
			t.Fatal(err)
		}
		blob, err := sink.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		exports = append(exports, crawler.NewShardExport(shard, nShards, roster, baseline, blob))
	}

	merged, err := crawler.MergeShardExports(exports)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := merged.Tables()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tables.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded crawl over replicas differs from journal engine\ncrawl:   %.300s\njournal: %.300s", got, want)
	}
}
