package core

import (
	"bytes"
	"testing"

	"repro/internal/socialnet"
)

// noSync disables the WAL's background fsync ticker in tests.
var noSync = socialnet.WALOptions{SyncInterval: -1}

// TestPersistedRestartIsByteIdentical is the durable-restart
// determinism guarantee: run the world, persist it, "kill" the process
// (drop the study), reopen from disk, and Finalize — the stable JSON
// must equal the uninterrupted run's, byte for byte.
func TestPersistedRestartIsByteIdentical(t *testing.T) {
	cfg, err := ScaledConfig(42, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4

	// Uninterrupted run.
	direct, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	directRes, err := direct.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := directRes.MarshalJSONStable()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: world phases, persist, process "dies".
	dir := t.TempDir()
	interrupted, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := interrupted.RunWorld(); err != nil {
		t.Fatal(err)
	}
	if err := interrupted.Persist(dir); err != nil {
		t.Fatal(err)
	}
	interrupted = nil // the kill

	reopened, err := ReopenStudy(cfg, dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Store().Close()
	res, err := reopened.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.MarshalJSONStable()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("reopened Finalize differs from uninterrupted run (%d vs %d bytes)", len(want), len(got))
	}
}

// TestReopenedFinalizeDeterministicAcrossWorkers: the reopened world
// must finalize identically for any pool size, like a live one.
func TestReopenedFinalizeDeterministicAcrossWorkers(t *testing.T) {
	cfg, err := ScaledConfig(7, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RunWorld(); err != nil {
		t.Fatal(err)
	}
	if err := st.Persist(dir); err != nil {
		t.Fatal(err)
	}

	var baseline []byte
	for _, workers := range []int{1, 8} {
		wcfg := cfg
		wcfg.Workers = workers
		re, err := ReopenStudy(wcfg, dir, noSync)
		if err != nil {
			t.Fatal(err)
		}
		res, err := re.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		re.Store().Close()
		res.Config.Workers = 0 // normalize the one field allowed to differ
		data, err := res.MarshalJSONStable()
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = data
		} else if !bytes.Equal(baseline, data) {
			t.Fatalf("reopened Finalize differs at Workers=%d", workers)
		}
	}
}

// TestReopenRejectsMismatchedConfig: a persisted run must refuse to
// attach to a config with a different seed (silently finalizing someone
// else's world would be much worse than an error).
func TestReopenRejectsMismatchedConfig(t *testing.T) {
	cfg, err := ScaledConfig(11, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RunWorld(); err != nil {
		t.Fatal(err)
	}
	if err := st.Persist(dir); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Seed = 12
	if _, err := ReopenStudy(bad, dir, noSync); err == nil {
		t.Fatal("ReopenStudy accepted a mismatched seed")
	}
	if _, err := ReopenStudy(cfg, t.TempDir(), noSync); err == nil {
		t.Fatal("ReopenStudy accepted an empty directory")
	}
}
