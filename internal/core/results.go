package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/farm"
	"repro/internal/report"
	"repro/internal/socialnet"
)

// RenderTable1 prints the campaign roster with garnered likes,
// monitoring spans, and terminated-account counts (Table 1).
func (r *Results) RenderTable1() string {
	t := report.NewTable(
		"Table 1: Facebook and like farm campaigns used to promote the honeypot pages",
		"Campaign ID", "Provider", "Description", "Location", "Budget",
		"Duration", "Monitoring", "#Likes", "#Terminated",
	)
	for _, c := range r.Campaigns {
		likes, mon, term := "-", "-", "-"
		if c.Active {
			likes = fmt.Sprintf("%d", c.Likes)
			mon = fmt.Sprintf("%d days", c.MonitoringDays)
			term = fmt.Sprintf("%d", c.Terminated)
		}
		t.AddRow(
			c.Spec.ID, c.Spec.Provider, c.Spec.Description, c.Spec.Location,
			c.Spec.BudgetText, fmt.Sprintf("%d days", c.Spec.DurationDays),
			mon, likes, term,
		)
	}
	return t.String()
}

// RenderFigure1 prints the per-campaign liker geolocation breakdown.
func (r *Results) RenderFigure1() string {
	countries := socialnet.StudyCountries()
	var labels []string
	pct := make(map[string]map[string]float64, len(r.Geo))
	for _, row := range r.Geo {
		labels = append(labels, row.CampaignID)
		pct[row.CampaignID] = row.Percent
	}
	var b strings.Builder
	b.WriteString(report.StackedBars(
		"Figure 1: Geolocation of the likers (per campaign)",
		labels, countries, pct,
	))
	t := report.NewTable("", append([]string{"Campaign"}, countries...)...)
	for _, row := range r.Geo {
		cells := []string{row.CampaignID}
		for _, c := range countries {
			cells = append(cells, report.Pct(row.Percent[c]))
		}
		t.AddRow(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderTable2 prints gender and age statistics of likers with KL
// divergence from the global Facebook age distribution.
func (r *Results) RenderTable2() string {
	t := report.NewTable(
		"Table 2: Gender and age statistics of likers",
		"Campaign ID", "%F/%M", "13-17", "18-24", "25-34", "35-44", "45-54", "55+", "KL",
	)
	addRow := func(row analysis.DemoRow, kl string) {
		cells := []string{
			row.CampaignID,
			fmt.Sprintf("%s/%s", report.F(row.FemalePct, 0), report.F(row.MalePct, 0)),
		}
		for _, v := range row.AgePct {
			cells = append(cells, report.Pct(v))
		}
		cells = append(cells, kl)
		t.AddRow(cells...)
	}
	for _, row := range r.Demo {
		addRow(row, report.F(row.KL, 2))
	}
	addRow(analysis.GlobalDemoRow(), "-")
	return t.String()
}

// RenderFigure2 prints the cumulative-like time series, split into the
// Facebook-campaign panel (a) and the like-farm panel (b) as in the
// paper.
func (r *Results) RenderFigure2() string {
	var fbNames, farmNames []string
	var fbSeries, farmSeries [][]int
	for _, ts := range r.Temporal {
		if strings.HasPrefix(ts.CampaignID, "FB-") {
			fbNames = append(fbNames, ts.CampaignID)
			fbSeries = append(fbSeries, ts.Values)
		} else {
			farmNames = append(farmNames, ts.CampaignID)
			farmSeries = append(farmSeries, ts.Values)
		}
	}
	var b strings.Builder
	b.WriteString(report.LinePlot("Figure 2(a): Cumulative likes, Facebook campaigns", fbNames, fbSeries, 12))
	b.WriteByte('\n')
	b.WriteString(report.LinePlot("Figure 2(b): Cumulative likes, like farm campaigns", farmNames, farmSeries, 12))
	b.WriteByte('\n')
	t := report.NewTable("Delivery burstiness", "Campaign", "Total", "MaxDayJump", "DaysTo90%")
	for _, bs := range r.Bursts {
		t.AddRow(bs.CampaignID, fmt.Sprintf("%d", bs.Total),
			report.F(bs.MaxDayJumpFrac, 2), fmt.Sprintf("%d", bs.DaysTo90Pct))
	}
	b.WriteString(t.String())
	if len(r.Windows) > 0 {
		b.WriteByte('\n')
		w := report.NewTable(
			"2-hour window analysis (§4.2: burst farms land likes within two hours)",
			"Campaign", "Total", "MaxIn2h", "MaxFrac2h", "ActiveWindows",
		)
		for _, ws := range r.Windows {
			w.AddRow(ws.CampaignID, fmt.Sprintf("%d", ws.Total),
				fmt.Sprintf("%d", ws.MaxIn2h), report.F(ws.MaxFrac2h, 2),
				fmt.Sprintf("%d", ws.ActiveWindows))
		}
		b.WriteString(w.String())
	}
	return b.String()
}

// RenderTable3 prints likers and friendships between likers.
func (r *Results) RenderTable3() string {
	t := report.NewTable(
		"Table 3: Likers and friendships between likers",
		"Provider", "#Likers", "#Public friend lists", "Avg (±Std) #Friends",
		"Median #Friends", "#Friendships between likers", "#2-hop relations",
	)
	for _, row := range r.Table3 {
		t.AddRow(
			row.Provider,
			fmt.Sprintf("%d", row.Likers),
			fmt.Sprintf("%d (%s%%)", row.PublicFriendLists, report.Pct(row.PublicPct)),
			fmt.Sprintf("%s ± %s", report.F(row.AvgFriends, 0), report.F(row.StdFriends, 0)),
			report.F(row.MedianFriends, 0),
			fmt.Sprintf("%d", row.DirectFriendships),
			fmt.Sprintf("%d", row.TwoHopRelations),
		)
	}
	return t.String()
}

// RenderFigure3 prints the component census of the direct and 2-hop
// liker graphs plus cross-provider edges.
func (r *Results) RenderFigure3() string {
	var b strings.Builder
	render := func(title string, census []analysis.ComponentCensus) {
		t := report.NewTable(title, "Provider", "Isolated", "Pairs", "Triplets", "Larger", "LargestCmp")
		for _, c := range census {
			t.AddRow(c.Provider,
				fmt.Sprintf("%d", c.Isolated), fmt.Sprintf("%d", c.Pairs),
				fmt.Sprintf("%d", c.Triplets), fmt.Sprintf("%d", c.Larger),
				fmt.Sprintf("%d", c.LargestCmp))
		}
		b.WriteString(t.String())
	}
	render("Figure 3(a): Direct friendship relations between likers (component census)", r.DirectCensus)
	b.WriteByte('\n')
	render("Figure 3(b): 2-hop friendship relations between likers (component census)", r.TwoHopCensus)
	if len(r.CrossEdges) > 0 {
		b.WriteByte('\n')
		t := report.NewTable("Cross-provider direct edges", "Pair", "#Edges")
		var keys [][2]string
		for k := range r.CrossEdges {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			t.AddRow(k[0]+" <-> "+k[1], fmt.Sprintf("%d", r.CrossEdges[k]))
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// RenderFigure4 prints the page-like count distributions.
func (r *Results) RenderFigure4() string {
	var b strings.Builder
	t := report.NewTable(
		"Figure 4: Page-like counts per liker (distribution summary)",
		"Campaign", "N", "Median", "P90", "Max",
	)
	for _, c := range r.CDFs {
		t.AddRow(c.CampaignID, fmt.Sprintf("%d", c.N),
			report.F(c.Median, 0), report.F(c.P90, 0), report.F(c.Max, 0))
	}
	b.WriteString(t.String())
	b.WriteByte('\n')

	var fb, farms []analysis.PageLikeCDF
	for _, c := range r.CDFs {
		if strings.HasPrefix(c.CampaignID, "FB-") || c.CampaignID == "Facebook" {
			fb = append(fb, c)
		}
		if !strings.HasPrefix(c.CampaignID, "FB-") {
			farms = append(farms, c)
		}
	}
	plot := func(title string, set []analysis.PageLikeCDF) {
		names := make([]string, len(set))
		for i, c := range set {
			names[i] = c.CampaignID
		}
		b.WriteString(report.CDFPlot(title, names, func(si int, x float64) float64 {
			return set[si].ECDF.At(x)
		}, 10000, 72, 12))
	}
	plot("Figure 4(a): CDF of page-like counts, Facebook campaigns + baseline", fb)
	b.WriteByte('\n')
	plot("Figure 4(b): CDF of page-like counts, like farms + baseline", farms)
	return b.String()
}

// RenderFigure5 prints the Jaccard similarity matrices.
func (r *Results) RenderFigure5() string {
	labels := make([]string, len(r.Campaigns))
	for i, c := range r.Campaigns {
		labels[i] = c.Spec.ID
	}
	var b strings.Builder
	b.WriteString(report.Heatmap("Figure 5(a): Jaccard similarity (x100) of page-like sets", labels, r.PageSim))
	b.WriteByte('\n')
	b.WriteString(report.MatrixTable("", labels, r.PageSim, 1))
	b.WriteByte('\n')
	b.WriteString(report.Heatmap("Figure 5(b): Jaccard similarity (x100) of liker sets", labels, r.UserSim))
	b.WriteByte('\n')
	b.WriteString(report.MatrixTable("", labels, r.UserSim, 1))
	return b.String()
}

// RenderEconomics prints the like-economics extension: package price vs
// delivered likes vs the nominal per-like value estimates of §1. The
// gap — farm likes costing cents while being "worth" dollars — is the
// market the paper documents.
func (r *Results) RenderEconomics() string {
	prices := farm.PaperPriceList()
	value := farm.ValuePerLikeEstimates()["ChompOn"]
	t := report.NewTable(
		fmt.Sprintf("Extension: like-farm economics (value/like = $%.2f, ChompOn estimate)", value),
		"Campaign", "Package", "Ordered", "Delivered", "Fulfilled", "$/like", "Nominal value",
	)
	for _, c := range r.Campaigns {
		if c.Spec.Kind != KindFarmOrder {
			continue
		}
		loc := "Worldwide"
		if strings.Contains(c.Spec.Location, "USA") {
			loc = "USA"
		}
		e, err := farm.OrderEconomics(c.Spec.FarmName, loc, prices, c.Spec.Order.Quantity, c.Likes, value)
		if err != nil {
			t.AddRow(c.Spec.ID, "?", "-", "-", "-", "-", "-")
			continue
		}
		cost := "-"
		if e.CostPerDeliveredLike >= 0 {
			cost = "$" + report.F(e.CostPerDeliveredLike, 3)
		} else {
			cost = "scam"
		}
		t.AddRow(c.Spec.ID,
			"$"+report.F(e.PackagePrice, 2),
			fmt.Sprintf("%d", e.OrderedLikes),
			fmt.Sprintf("%d", e.DeliveredLikes),
			report.Pct(100*e.FulfillmentRate())+"%",
			cost,
			"$"+report.F(e.NominalValue, 0),
		)
	}
	return t.String()
}

// RenderRemovedLikes prints the §5 future-work extension: how many
// likes each honeypot page lost once the sweep terminated fake likers.
func (r *Results) RenderRemovedLikes() string {
	t := report.NewTable(
		"Extension: likes removed by the termination sweep (per campaign)",
		"Campaign", "Likes", "Removed", "Removed %",
	)
	for _, c := range r.Campaigns {
		if !c.Active {
			t.AddRow(c.Spec.ID, "-", "-", "-")
			continue
		}
		removed := r.RemovedLikes[c.Spec.ID]
		pct := 0.0
		if c.Likes > 0 {
			pct = 100 * float64(removed) / float64(c.Likes)
		}
		t.AddRow(c.Spec.ID, fmt.Sprintf("%d", c.Likes),
			fmt.Sprintf("%d", removed), report.Pct(pct))
	}
	return t.String()
}

// RenderAll prints every artifact in paper order, plus extensions.
func (r *Results) RenderAll() string {
	sections := []string{
		r.RenderTable1(),
		r.RenderFigure1(),
		r.RenderTable2(),
		r.RenderFigure2(),
		r.RenderTable3(),
		r.RenderFigure3(),
		r.RenderFigure4(),
		r.RenderFigure5(),
		r.RenderRemovedLikes(),
		r.RenderEconomics(),
	}
	return strings.Join(sections, "\n\n")
}
