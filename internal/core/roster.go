package core

import (
	"fmt"
	"math/rand"

	"repro/internal/farm"
)

// RosterSpec configures a randomized campaign roster — the paper's §5
// future work asks for "larger and more diverse honeypots measurements";
// this generates them over the same world machinery.
type RosterSpec struct {
	// NumFacebook ad campaigns to generate (targets drawn from the
	// configured markets plus worldwide).
	NumFacebook int
	// NumFarmOrders to generate (farms drawn from the configured
	// brands, locations alternating worldwide/targeted).
	NumFarmOrders int
	// OrderQuantity is the package size per farm order.
	OrderQuantity int
	// BudgetPerDay / DurationDays for ad campaigns.
	BudgetPerDay float64
	DurationDays int
	// InactiveFrac is the probability a farm order is a scam that never
	// delivers (the paper hit 2 of 8).
	InactiveFrac float64
}

// Validate checks the spec.
func (s *RosterSpec) Validate() error {
	if s.NumFacebook < 0 || s.NumFarmOrders < 0 || s.NumFacebook+s.NumFarmOrders == 0 {
		return fmt.Errorf("core: roster needs at least one campaign")
	}
	if s.NumFarmOrders > 0 && s.OrderQuantity < 1 {
		return fmt.Errorf("core: order quantity %d must be >=1", s.OrderQuantity)
	}
	if s.NumFacebook > 0 && s.BudgetPerDay <= 0 {
		return fmt.Errorf("core: budget/day %v must be positive", s.BudgetPerDay)
	}
	if s.DurationDays < 1 {
		return fmt.Errorf("core: duration %d days must be >=1", s.DurationDays)
	}
	if s.InactiveFrac < 0 || s.InactiveFrac > 1 {
		return fmt.Errorf("core: inactive fraction %v out of [0,1]", s.InactiveFrac)
	}
	return nil
}

// RandomRoster replaces cfg.Campaigns with a generated roster drawn over
// cfg's markets and farms. Farm pool sizes are not adjusted; callers
// must keep total ordered likes within pool capacity.
func RandomRoster(r *rand.Rand, cfg *StudyConfig, spec RosterSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if spec.NumFarmOrders > 0 && len(cfg.Farms) == 0 {
		return fmt.Errorf("core: roster wants farm orders but config has no farms")
	}
	var campaigns []CampaignSpec

	// Ad campaigns cycle through targeted markets plus worldwide.
	var targets []string
	for _, m := range cfg.Markets {
		targets = append(targets, m.Country)
	}
	targets = append(targets, "") // worldwide
	for i := 0; i < spec.NumFacebook; i++ {
		country := targets[i%len(targets)]
		loc := country
		if loc == "" {
			loc = "Worldwide"
		}
		campaigns = append(campaigns, CampaignSpec{
			ID:            fmt.Sprintf("FBX-%02d-%s", i, shortLoc(loc)),
			Provider:      "Facebook.com",
			Description:   "Page like ads",
			Location:      loc,
			BudgetText:    fmt.Sprintf("$%.0f/day", spec.BudgetPerDay),
			DurationDays:  spec.DurationDays,
			Kind:          KindFacebookAds,
			TargetCountry: country,
			BudgetPerDay:  spec.BudgetPerDay,
		})
	}

	for i := 0; i < spec.NumFarmOrders; i++ {
		fs := cfg.Farms[i%len(cfg.Farms)]
		location := "Worldwide"
		target := ""
		if i%2 == 1 {
			location = "USA only"
			target = "USA"
		}
		order := farm.Order{
			Quantity:     spec.OrderQuantity,
			DurationDays: spec.DurationDays,
			Inactive:     r.Float64() < spec.InactiveFrac,
		}
		order.TargetCountry = target
		if fs.Config.Mode == farm.ModeBurst {
			order.Bursts = 1 + r.Intn(3)
		}
		campaigns = append(campaigns, CampaignSpec{
			ID:           fmt.Sprintf("FRM-%02d-%s", i, shortLoc(location)),
			Provider:     fs.Config.Name,
			Description:  fmt.Sprintf("%d likes", spec.OrderQuantity),
			Location:     location,
			BudgetText:   "$--",
			DurationDays: spec.DurationDays,
			Kind:         KindFarmOrder,
			FarmName:     fs.Config.Name,
			Order:        order,
		})
	}
	cfg.Campaigns = campaigns
	return nil
}

func shortLoc(loc string) string {
	switch loc {
	case "Worldwide":
		return "ALL"
	case "USA only":
		return "USA"
	default:
		if len(loc) > 3 {
			return loc[:3]
		}
		return loc
	}
}
