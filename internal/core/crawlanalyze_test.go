package core

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/crawler"
	"repro/internal/socialnet"
)

// toUserIDs converts wire-typed user IDs to domain IDs.
func toUserIDs(ids []int64) []socialnet.UserID {
	out := make([]socialnet.UserID, len(ids))
	for i, id := range ids {
		out[i] = socialnet.UserID(id)
	}
	return out
}

// crawlWorld runs a scaled study and serves its world over HTTP,
// returning everything the crawl-side analyses need to be compared
// against the journal engine: the stable journal-table bytes, the
// crawl roster, the baseline sample, and the campaign page list.
func crawlWorld(t *testing.T) (srv *httptest.Server, want []byte, roster []analysis.CrawlCampaign, baseline []int64, pages []int64) {
	t.Helper()
	cfg, err := ScaledConfig(5, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	study, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	jt := res.CrawlTables()
	want, err = jt.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Campaigns {
		roster = append(roster, analysis.CrawlCampaign{ID: c.Spec.ID, Page: c.Page, Active: c.Active})
		pages = append(pages, int64(c.Page))
	}
	for _, u := range res.Baseline {
		baseline = append(baseline, int64(u))
	}
	srv = httptest.NewServer(api.NewServer(study.Store(), ""))
	t.Cleanup(srv.Close)
	return srv, want, roster, baseline, pages
}

// crawlTablesOver runs a full crawl (pages then baseline) through a
// fresh pipeline with the given worker count and returns the resulting
// §4 table bytes.
func crawlTablesOver(t *testing.T, srv *httptest.Server, roster []analysis.CrawlCampaign, baseline, pages []int64, workers int, sequential bool) []byte {
	t.Helper()
	cl := newCrawlClient(t, srv)
	analyzer := analysis.NewCrawlAnalyzer(roster, toUserIDs(baseline))
	sink := crawler.NewAnalysisSink(analyzer.Aggregators()...)
	pipe := crawler.NewPipeline(cl, crawler.PipelineConfig{Workers: workers, BatchSize: 17, Sink: sink, Sequential: sequential}, nil)
	noop := func(int64, crawler.LikerProfile) error { return nil }
	if err := pipe.Crawl(context.Background(), pages, noop); err != nil {
		t.Fatal(err)
	}
	if err := pipe.CrawlProfiles(context.Background(), baseline, noop); err != nil {
		t.Fatal(err)
	}
	tables, err := analyzer.Tables()
	if err != nil {
		t.Fatal(err)
	}
	data, err := tables.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newCrawlClient(t *testing.T, srv *httptest.Server) *crawler.Client {
	t.Helper()
	ccfg := crawler.DefaultConfig(srv.URL)
	ccfg.MinInterval = 0
	cl, err := crawler.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestCrawlTablesMatchJournalEngine is the acceptance test for the
// crawl-to-analysis pipeline: the §4 tables computed by streaming
// crawled profiles into the crawl aggregators — over HTTP, for any
// worker count — are byte-identical to the journal engine's
// (analysis.RunPass) tables on the same world.
func TestCrawlTablesMatchJournalEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("full study + HTTP crawl")
	}
	srv, want, roster, baseline, pages := crawlWorld(t)
	for _, v := range []struct {
		workers    int
		sequential bool
	}{{1, false}, {4, false}, {16, false}, {4, true}} {
		got := crawlTablesOver(t, srv, roster, baseline, pages, v.workers, v.sequential)
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d sequential=%v: crawl-derived tables differ from journal engine\ncrawl:   %.300s\njournal: %.300s",
				v.workers, v.sequential, got, want)
		}
	}
}

// TestCrawlTablesSurviveKillAndResume kills a crawl mid-flight (by
// context cancellation after a fixed number of emitted profiles),
// persists the checkpoint — including the aggregator state —, resumes
// with a fresh pipeline and a restored sink, and requires the finished
// tables to be byte-identical to the journal engine's. This is the
// checkpoint/resume half of the determinism contract.
func TestCrawlTablesSurviveKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full study + HTTP crawl")
	}
	srv, want, roster, baseline, pages := crawlWorld(t)
	cl := newCrawlClient(t, srv)

	analyzer := analysis.NewCrawlAnalyzer(roster, toUserIDs(baseline))
	sink := crawler.NewAnalysisSink(analyzer.Aggregators()...)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var emitted atomic.Int32
	kill := func(int64, crawler.LikerProfile) error {
		if emitted.Add(1) == 40 {
			cancel() // the "kill": abort mid-page, mid-window
		}
		return nil
	}
	pipe := crawler.NewPipeline(cl, crawler.PipelineConfig{Workers: 8, BatchSize: 5, Sink: sink}, nil)
	err := pipe.Crawl(ctx, pages, kill)
	if err == nil {
		t.Fatal("crawl finished before the kill; lower the emit threshold")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("crawl aborted with %v, want context.Canceled", err)
	}
	ck := pipe.Checkpoint()
	if err := pipe.SnapshotErr(); err != nil {
		t.Fatal(err)
	}
	if ck.Sink == nil {
		t.Fatal("checkpoint carries no sink state")
	}

	// "Restart": fresh analyzer, sink restored from the checkpoint,
	// fresh pipeline resumed from it.
	analyzer2 := analysis.NewCrawlAnalyzer(roster, toUserIDs(baseline))
	sink2 := crawler.NewAnalysisSink(analyzer2.Aggregators()...)
	if err := sink2.Restore(ck.Sink); err != nil {
		t.Fatal(err)
	}
	pipe2 := crawler.NewPipeline(cl, crawler.PipelineConfig{Workers: 4, BatchSize: 17, Sink: sink2}, &ck)
	noop := func(int64, crawler.LikerProfile) error { return nil }
	if err := pipe2.Crawl(context.Background(), pages, noop); err != nil {
		t.Fatal(err)
	}
	if err := pipe2.CrawlProfiles(context.Background(), baseline, noop); err != nil {
		t.Fatal(err)
	}
	tables, err := analyzer2.Tables()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tables.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed crawl tables differ from journal engine\ncrawl:   %.300s\njournal: %.300s", got, want)
	}
}
