package core

import (
	"math/rand"
	"testing"
)

func TestRandomRosterGeneratesCampaigns(t *testing.T) {
	cfg, err := ScaledConfig(3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	spec := RosterSpec{
		NumFacebook:   7,
		NumFarmOrders: 8,
		OrderQuantity: 20,
		BudgetPerDay:  6,
		DurationDays:  10,
		InactiveFrac:  0.2,
	}
	if err := RandomRoster(r, &cfg, spec); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Campaigns) != 15 {
		t.Fatalf("campaigns = %d", len(cfg.Campaigns))
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("generated roster invalid: %v", err)
	}
	// IDs unique, kinds mixed.
	seen := map[string]bool{}
	fb, farms := 0, 0
	for _, cs := range cfg.Campaigns {
		if seen[cs.ID] {
			t.Fatalf("duplicate ID %s", cs.ID)
		}
		seen[cs.ID] = true
		switch cs.Kind {
		case KindFacebookAds:
			fb++
		case KindFarmOrder:
			farms++
		}
	}
	if fb != 7 || farms != 8 {
		t.Fatalf("kinds: fb=%d farms=%d", fb, farms)
	}
}

// TestDiverseRosterStudyRuns is the §5 future-work scenario: a larger,
// more diverse honeypot deployment over the same machinery.
func TestDiverseRosterStudyRuns(t *testing.T) {
	cfg, err := ScaledConfig(9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	err = RandomRoster(r, &cfg, RosterSpec{
		NumFacebook:   6,
		NumFarmOrders: 10,
		OrderQuantity: 15,
		BudgetPerDay:  4,
		DurationDays:  8,
		InactiveFrac:  0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Campaigns) != 16 {
		t.Fatalf("results campaigns = %d", len(res.Campaigns))
	}
	delivered := 0
	for _, c := range res.Campaigns {
		if c.Active && c.Likes > 0 {
			delivered++
		}
	}
	if delivered < 10 {
		t.Fatalf("only %d campaigns delivered", delivered)
	}
	// All artifacts still render.
	if out := res.RenderAll(); len(out) < 1000 {
		t.Fatalf("render too small: %d bytes", len(out))
	}
}

func TestRosterSpecValidation(t *testing.T) {
	cfg, err := ScaledConfig(1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	bad := []RosterSpec{
		{},
		{NumFacebook: 1, BudgetPerDay: 0, DurationDays: 5},
		{NumFarmOrders: 1, OrderQuantity: 0, DurationDays: 5},
		{NumFacebook: 1, BudgetPerDay: 5, DurationDays: 0},
		{NumFacebook: 1, BudgetPerDay: 5, DurationDays: 5, InactiveFrac: 2},
	}
	for i, spec := range bad {
		if err := RandomRoster(r, &cfg, spec); err == nil {
			t.Fatalf("spec %d accepted", i)
		}
	}
	noFarms := cfg
	noFarms.Farms = nil
	if err := RandomRoster(r, &noFarms, RosterSpec{NumFarmOrders: 2, OrderQuantity: 5, DurationDays: 3}); err == nil {
		t.Fatal("farm orders without farms accepted")
	}
}
