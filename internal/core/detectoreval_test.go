package core

import (
	"math"
	"testing"

	"repro/internal/detect"
	"repro/internal/socialnet"
)

// miniStudy runs a small study and returns its live store (cached, and
// shared with miniResults' run when that already happened — both use
// the same config).
var cachedMiniStore *socialnet.Store

func miniStore(t *testing.T) *socialnet.Store {
	t.Helper()
	if cachedMiniStore != nil {
		return cachedMiniStore
	}
	cfg, err := ScaledConfig(7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	cachedMiniStore = s.Store()
	return cachedMiniStore
}

func TestEvaluateDetectorOnStudyWorld(t *testing.T) {
	st := miniStore(t)
	eval := EvaluateDetector(st)
	if eval.Enrolled == 0 || eval.Fakes == 0 {
		t.Fatalf("degenerate population: %+v", eval)
	}
	if eval.Fakes >= eval.Enrolled {
		t.Fatalf("no organic likers enrolled: %+v", eval)
	}
	if eval.AUC < 0 || eval.AUC > 1 {
		t.Fatalf("AUC out of range: %v", eval.AUC)
	}
	// The burst farms are blatant; ranking must beat a coin flip by a
	// wide margin on the mixed population.
	if eval.AUC < 0.6 {
		t.Fatalf("AUC %v: detector no better than chance", eval.AUC)
	}
	for name, v := range map[string]float64{
		"auc": eval.AUC, "precision": eval.Precision,
		"recall": eval.Recall, "f1": eval.F1,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s is %v", name, v)
		}
	}
	// Flagging at the default threshold must be precise: organic users
	// don't exhibit the burst/inflation signature.
	if eval.Precision < 0.9 {
		t.Fatalf("precision %v at the default threshold", eval.Precision)
	}
}

// TestStreamScorerMatchesBatchOnStudyWorld pins streaming == batch on a
// full generated world — cover histories, farm islands, terminated
// accounts, ALMS reuse — not just the synthetic unit-test worlds.
func TestStreamScorerMatchesBatchOnStudyWorld(t *testing.T) {
	st := miniStore(t)
	sc := detect.NewStreamScorer(st, detect.StreamScorerConfig{})
	for sc.Tick() > 0 {
	}
	accounts := sc.Accounts()
	if len(accounts) == 0 {
		t.Fatal("no enrolled accounts")
	}
	for _, workers := range []int{1, 4, 16} {
		feats, err := detect.BatchFeatures(st, accounts, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range accounts {
			v, ok := sc.Verdict(u)
			if !ok {
				t.Fatalf("user %d enrolled but no verdict", u)
			}
			if v.Features != feats[i] {
				t.Fatalf("workers=%d user %d: streaming %+v != batch %+v", workers, u, v.Features, feats[i])
			}
			if v.Score != feats[i].Score() {
				t.Fatalf("workers=%d user %d: score %v != %v", workers, u, v.Score, feats[i].Score())
			}
		}
	}
}

func TestSweepEvalDetector(t *testing.T) {
	cfg, err := ScaledConfig(11, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	variants := GridVariants(cfg, SweepAxis{Name: "seed", Values: []SweepValue{
		{Label: "seed=11", Apply: func(c *StudyConfig) { c.Seed = 11 }},
		{Label: "seed=12", Apply: func(c *StudyConfig) { c.Seed = 12 }},
	}})
	sw := &Sweep{Variants: variants, Workers: 2, InnerWorkers: 2, EvalDetector: true}
	outcomes, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Detector == nil {
			t.Fatalf("variant %s: no detector eval", o.Name)
		}
		if o.Detector.Enrolled == 0 || o.Detector.AUC <= 0 {
			t.Fatalf("variant %s: detector eval %+v", o.Name, o.Detector)
		}
	}
	rows := Summarize(outcomes)
	if len(rows) != len(outcomes) {
		t.Fatalf("summary rows = %d, want %d", len(rows), len(outcomes))
	}
	for _, row := range rows {
		if !row.Detector || row.DetectorAUC <= 0 {
			t.Fatalf("summary row missing detector columns: %+v", row)
		}
	}
}

// TestEvaluateDetectorLockstepSignals scores the three detection
// signals — lockstep membership alone, burst score alone, and their
// composite — against ground truth on the generated study world (both
// farm archetypes present). The world's burst farms co-like honeypot
// pages inside shared 2h windows, so lockstep finds real groups; the
// relationships pinned here are the ones the verdict model is built
// on: lockstep is a high-precision low-recall signal, and the
// composite can only widen the burst signal's net.
func TestEvaluateDetectorLockstepSignals(t *testing.T) {
	st := miniStore(t)
	eval := EvaluateDetector(st)
	if eval.LockstepGroups == 0 {
		t.Fatal("study world produced no lockstep groups")
	}
	if eval.Lockstep.Flagged == 0 {
		t.Fatal("lockstep groups with no flagged members")
	}
	for name, v := range map[string]float64{
		"lockstep.auc": eval.Lockstep.AUC, "lockstep.precision": eval.Lockstep.Precision,
		"lockstep.recall": eval.Lockstep.Recall, "lockstep.f1": eval.Lockstep.F1,
		"composite.auc": eval.Composite.AUC, "composite.precision": eval.Composite.Precision,
		"composite.recall": eval.Composite.Recall, "composite.f1": eval.Composite.F1,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			t.Fatalf("%s = %v", name, v)
		}
	}
	// Lockstep alone: co-acting in capped 2h buckets across >=2 pages
	// is a farm signature — organic likers should not survive it.
	if eval.Lockstep.Precision < 0.9 {
		t.Fatalf("lockstep precision %v: organic users grouped", eval.Lockstep.Precision)
	}
	// ... but it only sees accounts that co-act on multiple honeypots,
	// a small slice of the farm population.
	if eval.Lockstep.Recall >= eval.Recall {
		t.Fatalf("lockstep recall %v >= burst recall %v: world too easy to pin the composite",
			eval.Lockstep.Recall, eval.Recall)
	}
	// Composite: flag = burst-threshold OR group member, so its net is
	// a superset of both signals' nets.
	if eval.Composite.Recall < eval.Recall || eval.Composite.Recall < eval.Lockstep.Recall {
		t.Fatalf("composite recall %v below a component (burst %v, lockstep %v)",
			eval.Composite.Recall, eval.Recall, eval.Lockstep.Recall)
	}
	if eval.Composite.Flagged < eval.Lockstep.Flagged {
		t.Fatalf("composite flagged %d < lockstep flagged %d", eval.Composite.Flagged, eval.Lockstep.Flagged)
	}
	// Membership lifts fakes' ranks; on a high-precision lockstep
	// signal the composite AUC cannot fall behind burst by more than
	// noise.
	if eval.Composite.AUC < eval.AUC-0.02 {
		t.Fatalf("composite AUC %v well below burst AUC %v", eval.Composite.AUC, eval.AUC)
	}
}
