package core

import (
	"repro/internal/detect"
	"repro/internal/socialnet"
)

// DetectorEval scores the streaming fraud detector against the
// simulation's ground truth over one finished study's world — the
// evaluation the paper's authors could not run (they had no labels for
// Facebook's own enforcement, §5). Population: the detector's enrolled
// accounts (honeypot likers). Ground truth: socialnet.AccountKind —
// every farm-controlled account (bot or stealth) counts as fake.
type DetectorEval struct {
	// Enrolled is the scored population size; Fakes how many of them
	// are farm-controlled.
	Enrolled int `json:"enrolled"`
	Fakes    int `json:"fakes"`
	// AUC summarizes the whole score ranking (trapezoidal over the
	// threshold sweep).
	AUC float64 `json:"auc"`
	// Precision/Recall/F1 are the operating point at
	// detect.FlagThreshold.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// EvaluateDetector runs the streaming scorer over the store's full
// journal and evaluates the resulting scores. It is read-only over the
// store and deterministic: the scorer's verdicts are a pure function of
// the journal and the friendship graph.
func EvaluateDetector(st *socialnet.Store) *DetectorEval {
	sc := detect.NewStreamScorer(st, detect.StreamScorerConfig{})
	for sc.Tick() > 0 {
	}
	accounts := sc.Accounts()
	scores := make(map[socialnet.UserID]float64, len(accounts))
	for _, u := range accounts {
		if v, ok := sc.Verdict(u); ok {
			scores[u] = v.Score
		}
	}
	isFake := func(u socialnet.UserID) bool {
		usr, err := st.User(u)
		return err == nil && usr.Kind != socialnet.KindOrganic
	}
	eval := &DetectorEval{Enrolled: len(accounts)}
	for _, u := range accounts {
		if isFake(u) {
			eval.Fakes++
		}
	}
	points := detect.ScoreSweep(scores, isFake)
	eval.AUC = detect.AUC(points)
	flagged := make(map[socialnet.UserID]bool)
	for u, s := range scores {
		if s >= detect.FlagThreshold {
			flagged[u] = true
		}
	}
	op := detect.Evaluate(accounts, flagged, isFake)
	eval.Precision = op.Precision()
	eval.Recall = op.Recall()
	eval.F1 = op.F1()
	return eval
}
