package core

import (
	"repro/internal/detect"
	"repro/internal/socialnet"
)

// DetectorEval scores the streaming fraud detector against the
// simulation's ground truth over one finished study's world — the
// evaluation the paper's authors could not run (they had no labels for
// Facebook's own enforcement, §5). Population: the detector's enrolled
// accounts (honeypot likers). Ground truth: socialnet.AccountKind —
// every farm-controlled account (bot or stealth) counts as fake.
type DetectorEval struct {
	// Enrolled is the scored population size; Fakes how many of them
	// are farm-controlled.
	Enrolled int `json:"enrolled"`
	Fakes    int `json:"fakes"`
	// AUC summarizes the whole burst-score ranking (trapezoidal over
	// the threshold sweep).
	AUC float64 `json:"auc"`
	// Precision/Recall/F1 are the burst signal's operating point at
	// detect.FlagThreshold.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	// LockstepGroups counts the detected lockstep clusters; Lockstep
	// scores group membership as a detector on its own (flag = in any
	// group), and Composite the union signal (flag = burst score at
	// threshold OR group member; ranking = burst score lifted by
	// membership). Comparing the three shows what each dimension of
	// the composite verdict contributes.
	LockstepGroups int        `json:"lockstep_groups"`
	Lockstep       SignalEval `json:"lockstep"`
	Composite      SignalEval `json:"composite"`
}

// SignalEval is one detection signal's scorecard: AUC over its ranking
// plus the confusion-matrix operating point.
type SignalEval struct {
	Flagged   int     `json:"flagged"`
	AUC       float64 `json:"auc"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// EvaluateDetector runs the streaming scorer over the store's full
// journal and evaluates the resulting scores. It is read-only over the
// store and deterministic: the scorer's verdicts are a pure function of
// the journal and the friendship graph.
func EvaluateDetector(st *socialnet.Store) *DetectorEval {
	sc := detect.NewStreamScorer(st, detect.StreamScorerConfig{})
	for sc.Tick() > 0 {
	}
	accounts := sc.Accounts()
	scores := make(map[socialnet.UserID]float64, len(accounts))
	for _, u := range accounts {
		if v, ok := sc.Verdict(u); ok {
			scores[u] = v.Score
		}
	}
	isFake := func(u socialnet.UserID) bool {
		usr, err := st.User(u)
		return err == nil && usr.Kind != socialnet.KindOrganic
	}
	eval := &DetectorEval{Enrolled: len(accounts)}
	for _, u := range accounts {
		if isFake(u) {
			eval.Fakes++
		}
	}
	points := detect.ScoreSweep(scores, isFake)
	eval.AUC = detect.AUC(points)
	flagged := make(map[socialnet.UserID]bool)
	for u, s := range scores {
		if s >= detect.FlagThreshold {
			flagged[u] = true
		}
	}
	op := detect.Evaluate(accounts, flagged, isFake)
	eval.Precision = op.Precision()
	eval.Recall = op.Recall()
	eval.F1 = op.F1()

	// Lockstep alone: membership is a binary score (ScoreSweep/AUC
	// degrade gracefully on two-valued rankings), flag = member.
	groups := sc.LockstepGroups()
	eval.LockstepGroups = len(groups)
	member := make(map[socialnet.UserID]bool)
	for _, g := range groups {
		for _, u := range g.Users {
			member[u] = true
		}
	}
	lockScores := make(map[socialnet.UserID]float64, len(accounts))
	for _, u := range accounts {
		if member[u] {
			lockScores[u] = 1
		} else {
			lockScores[u] = 0
		}
	}
	eval.Lockstep = evalSignal(accounts, lockScores, member, isFake)

	// Composite: a group member is flagged regardless of its burst
	// score, and ranks above every non-member with the same score
	// (membership lifts the score by 1 — scores live in [0,1], so the
	// lift is a strict tier, not a reshuffle).
	compScores := make(map[socialnet.UserID]float64, len(accounts))
	compFlagged := make(map[socialnet.UserID]bool)
	for _, u := range accounts {
		compScores[u] = scores[u]
		if member[u] {
			compScores[u] += 1
			compFlagged[u] = true
		} else if flagged[u] {
			compFlagged[u] = true
		}
	}
	eval.Composite = evalSignal(accounts, compScores, compFlagged, isFake)
	return eval
}

// evalSignal assembles one signal's scorecard from its ranking and
// flag set.
func evalSignal(accounts []socialnet.UserID, scores map[socialnet.UserID]float64, flagged map[socialnet.UserID]bool, isFake func(socialnet.UserID) bool) SignalEval {
	op := detect.Evaluate(accounts, flagged, isFake)
	return SignalEval{
		Flagged:   len(flagged),
		AUC:       detect.AUC(detect.ScoreSweep(scores, isFake)),
		Precision: op.Precision(),
		Recall:    op.Recall(),
		F1:        op.F1(),
	}
}
