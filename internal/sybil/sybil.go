// Package sybil implements a SybilRank-style trust-propagation detector
// (Cao et al., NSDI 2012 — reference [5] of the paper). The paper's §2
// positions its findings as complementary to structure-based sybil
// defenses; this package closes the loop: it ranks accounts by
// early-terminated random-walk trust from verified seeds, which flags
// exactly the poorly-attached farm pools — including the stealthy
// BoostLikes core that the behavioural detectors in internal/detect
// cannot see.
//
// Algorithm: distribute total trust 1 over seed nodes, run O(log n)
// power iterations of degree-normalized propagation
//
//	t'(v) = Σ_{u ∈ N(v)} t(u) / deg(u)
//
// and rank by degree-normalized trust t(v)/deg(v). Regions connected to
// the seeds through few attack edges receive little trust.
package sybil

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// Config tunes the ranking.
type Config struct {
	// Iterations is the number of power iterations; 0 means
	// ceil(log2(n)) as in the SybilRank paper.
	Iterations int
}

// Result holds the degree-normalized trust scores. Lower = more
// sybil-like.
type Result struct {
	// Trust maps node -> degree-normalized trust.
	Trust map[int64]float64
	// Iterations actually run.
	Iterations int
}

// Rank propagates trust from the seed nodes over the graph.
func Rank(g *graph.Undirected, seeds []int64, cfg Config) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("sybil: empty graph")
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sybil: no trust seeds")
	}
	seedSet := make(map[int64]struct{}, len(seeds))
	for _, s := range seeds {
		if !g.HasNode(s) {
			return nil, fmt.Errorf("sybil: seed %d not in graph", s)
		}
		seedSet[s] = struct{}{}
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = int(math.Ceil(math.Log2(float64(n))))
		if iters < 1 {
			iters = 1
		}
	}

	nodes := g.Nodes()
	trust := make(map[int64]float64, n)
	per := 1.0 / float64(len(seedSet))
	for s := range seedSet {
		trust[s] = per
	}

	next := make(map[int64]float64, n)
	for it := 0; it < iters; it++ {
		for k := range next {
			delete(next, k)
		}
		for _, v := range nodes {
			t := trust[v]
			if t == 0 {
				continue
			}
			nbrs := g.Neighbors(v)
			if len(nbrs) == 0 {
				next[v] += t // isolated nodes keep their trust
				continue
			}
			share := t / float64(len(nbrs))
			for _, u := range nbrs {
				next[u] += share
			}
		}
		trust, next = next, trust
	}

	out := &Result{Trust: make(map[int64]float64, n), Iterations: iters}
	for _, v := range nodes {
		d := g.Degree(v)
		if d == 0 {
			out.Trust[v] = 0
			continue
		}
		out.Trust[v] = trust[v] / float64(d)
	}
	return out, nil
}

// RankedAscending returns the nodes sorted by trust, most sybil-like
// first (ties broken by node ID for determinism).
func (r *Result) RankedAscending() []int64 {
	nodes := make([]int64, 0, len(r.Trust))
	for v := range r.Trust {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool {
		ti, tj := r.Trust[nodes[i]], r.Trust[nodes[j]]
		if ti != tj {
			return ti < tj
		}
		return nodes[i] < nodes[j]
	})
	return nodes
}

// BottomFraction returns the lowest-trust fraction of nodes (the sybil
// candidates an operator would review first).
func (r *Result) BottomFraction(frac float64) ([]int64, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("sybil: fraction %v out of (0,1]", frac)
	}
	ranked := r.RankedAscending()
	k := int(float64(len(ranked)) * frac)
	if k < 1 {
		k = 1
	}
	return ranked[:k], nil
}
