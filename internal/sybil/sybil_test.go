package sybil

import (
	"math/rand"
	"testing"

	"repro/internal/accounts"
	"repro/internal/graph"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

func TestRankBasicSeparation(t *testing.T) {
	// Honest region: a connected WS graph with the seeds inside.
	// Sybil region: pairs attached to the honest region by one edge.
	r := rand.New(rand.NewSource(1))
	honest := make([]int64, 200)
	for i := range honest {
		honest[i] = int64(i)
	}
	g, err := graph.WattsStrogatz(r, honest, 6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var sybils []int64
	for i := 0; i < 40; i += 2 {
		a, b := int64(1000+i), int64(1000+i+1)
		sybils = append(sybils, a, b)
		_ = g.AddEdge(a, b)
	}
	// One attack edge.
	_ = g.AddEdge(1000, honest[0])

	res, err := Rank(g, honest[:5], Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Region-level separation: nearly all sybils sit below the honest
	// median trust (the directly-attached pair may capture some trust,
	// which is the known single-attack-edge caveat of SybilRank).
	var hTrust []float64
	for _, v := range honest {
		hTrust = append(hTrust, res.Trust[v])
	}
	sortFloat64s(hTrust)
	hMedian := hTrust[len(hTrust)/2]
	if hMedian <= 0 {
		t.Fatalf("honest median trust = %v, want positive", hMedian)
	}
	below := 0
	for _, v := range sybils {
		if res.Trust[v] < hMedian {
			below++
		}
	}
	if frac := float64(below) / float64(len(sybils)); frac < 0.9 {
		t.Fatalf("only %v of sybils below honest median trust", frac)
	}
}

func sortFloat64s(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestRankErrors(t *testing.T) {
	g := graph.NewUndirected()
	if _, err := Rank(g, []int64{1}, Config{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	g.AddNode(1)
	if _, err := Rank(g, nil, Config{}); err == nil {
		t.Fatal("no seeds accepted")
	}
	if _, err := Rank(g, []int64{99}, Config{}); err == nil {
		t.Fatal("missing seed accepted")
	}
}

func TestRankedAscendingDeterministic(t *testing.T) {
	g := graph.NewUndirected()
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(2, 3)
	res, err := Rank(g, []int64{2}, Config{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := res.RankedAscending()
	b := res.RankedAscending()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ranking not deterministic")
		}
	}
	if len(a) != 3 {
		t.Fatalf("ranked = %v", a)
	}
}

func TestBottomFraction(t *testing.T) {
	g := graph.NewUndirected()
	for i := int64(1); i <= 9; i++ {
		_ = g.AddEdge(i, i+1)
	}
	res, err := Rank(g, []int64{1}, Config{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	bottom, err := res.BottomFraction(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(bottom) != 3 {
		t.Fatalf("bottom 30%% of 10 = %d", len(bottom))
	}
	if _, err := res.BottomFraction(0); err == nil {
		t.Fatal("fraction 0 accepted")
	}
	if _, err := res.BottomFraction(2); err == nil {
		t.Fatal("fraction 2 accepted")
	}
}

// TestRankCatchesStealthFarm demonstrates the complementarity claim:
// trust propagation flags the BoostLikes-style connected core (invisible
// to behavioural detectors) because it attaches to the organic region
// through few edges.
func TestRankCatchesStealthFarm(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	st := socialnet.NewStore()
	spec := socialnet.DefaultPopulationSpec()
	spec.NumUsers = 600
	spec.NumAmbientPages = 300
	pop, err := socialnet.GeneratePopulation(r, st, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Stealth farm: connected core, sparse organic attachment.
	cohort, err := accounts.Build(r, st, pop, accounts.CohortSpec{
		Name: "bl-like", Size: 200,
		Kind:       socialnet.KindFarmStealth,
		Operator:   "BL",
		CountryMix: stats.MustCategorical([]string{socialnet.CountryUSA}, []float64{1}),
		Profile:    socialnet.GlobalFacebookProfile(),
		Topology: accounts.TopologySpec{
			Kind: accounts.TopologyCore, CoreK: 4, CoreBeta: 0.1,
			OrganicLinksMean: 0.1,
			DeclaredMedian:   800, DeclaredSigma: 0.8,
		},
		Cover: accounts.CoverSpec{LikeMedian: 60, LikeSigma: 0.8, MaxLikes: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cohort.Members) != 200 {
		t.Fatalf("cohort size = %d", len(cohort.Members))
	}
	g := st.FriendGraph()
	seeds := make([]int64, 10)
	for i := range seeds {
		seeds[i] = int64(pop.Users[i*7])
	}
	res, err := Rank(g, seeds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Most of the bottom 25% by trust should be farm accounts.
	bottom, err := res.BottomFraction(0.25)
	if err != nil {
		t.Fatal(err)
	}
	farm := 0
	for _, v := range bottom {
		u, err := st.User(socialnet.UserID(v))
		if err == nil && u.Kind == socialnet.KindFarmStealth {
			farm++
		}
	}
	frac := float64(farm) / float64(len(bottom))
	// The cohort (incl. its shadows/hubs) is ~1/3 of the graph; random
	// ranking would hit ~0.33. Demand clear enrichment.
	if frac < 0.5 {
		t.Fatalf("bottom-trust farm fraction = %v, want enrichment >= 0.5", frac)
	}
}
