// Package platform simulates the Facebook-side machinery the paper's
// honeypots interacted with: the page-like ad delivery engine ("page like
// ads", §1), the page-admin reports tool that returns only aggregated
// demographics (§3, Data Collection), and the fraud sweep that terminates
// bot-like accounts (§5, Table 1 last column).
package platform

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/accounts"
	"repro/internal/simclock"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

// ClickMarket describes, for one country, how page-like ads convert
// budget into likes and who the resulting likers are. The paper's central
// observation about Facebook campaigns — a $90 budget yields 32 likes in
// the US but ~700 in Egypt, with likers far younger and more male than
// the overall network — is a property of these markets.
type ClickMarket struct {
	Country string
	// CostPerLike is the effective dollars per garnered like.
	CostPerLike float64
	// Cohort describes the click-prone accounts this market supplies:
	// demographics (Table 2 rows), friend structure (near-isolated, 6
	// direct edges among 1448 FB likers), declared friend counts
	// (median 198), and cover-like history (median 600–1000, Figure 4).
	Cohort accounts.CohortSpec
}

// Validate checks market parameters.
func (m *ClickMarket) Validate() error {
	if m.Country == "" {
		return fmt.Errorf("platform: market without country")
	}
	if m.CostPerLike <= 0 {
		return fmt.Errorf("platform: market %s cost per like %v must be positive", m.Country, m.CostPerLike)
	}
	if err := m.Cohort.Validate(); err != nil {
		return fmt.Errorf("platform: market %s: %w", m.Country, err)
	}
	return nil
}

// clickerTopology is the common structural spec for ad-clicker cohorts.
// Hub sizing follows pairs ≈ (size·links)²/(2·hubs): with links=0.35 and
// hubs=size/5 the five markets together produce on the order of the 169
// two-hop liker relations Table 3 reports for Facebook campaigns.
func clickerTopology(declaredMedian float64, size int) accounts.TopologySpec {
	hubs := size / 5
	if hubs < 8 {
		hubs = 8
	}
	return accounts.TopologySpec{
		Kind:             accounts.TopologySparse,
		InternalPairFrac: 0.006, // a few coincidental friend pairs
		HubCount:         hubs,
		HubLinksMean:     0.35,
		OrganicLinksMean: 0.1,
		DeclaredMedian:   declaredMedian,
		DeclaredSigma:    1.0,
	}
}

// clickerCover is the common like-history spec for ad-clicker cohorts.
// Slices (which page blocks the likes target) are composed by the study
// once the page universe exists; without slices the likes fall back to
// the Zipf-weighted ambient catalog.
func clickerCover(median float64) accounts.CoverSpec {
	return accounts.CoverSpec{
		LikeMedian: median,
		LikeSigma:  1.0,
		MaxLikes:   10000,
		Bursty:     false,
	}
}

// DefaultMarkets returns click markets calibrated so the paper's $6/day x
// 15-day campaigns land near the Table 1 like counts: USA 32, France 44,
// India 518, Egypt 691, worldwide 484 (96% India).
func DefaultMarkets(createdAt time.Time) []ClickMarket {
	fixed := func(country string) *stats.Categorical {
		return stats.MustCategorical([]string{country}, []float64{1})
	}
	return []ClickMarket{
		{
			Country:     socialnet.CountryUSA,
			CostPerLike: 2.80, // $90 budget -> ~32 likes
			Cohort: accounts.CohortSpec{
				Name: "clickers-usa", Size: 300,
				Kind:       socialnet.KindOrganic,
				CountryMix: fixed(socialnet.CountryUSA),
				Profile: &socialnet.Profile{
					FemaleFrac: 0.54,
					AgeWeights: [6]float64{54.0, 27.0, 6.8, 6.8, 1.4, 4.1},
				},
				FriendsPublicFrac: 0.18,
				SearchableFrac:    0.10,
				Topology:          clickerTopology(198, 300),
				Cover:             clickerCover(700),
				CreatedAt:         createdAt,
			},
		},
		{
			Country:     socialnet.CountryFrance,
			CostPerLike: 2.05, // -> ~44 likes
			Cohort: accounts.CohortSpec{
				Name: "clickers-fra", Size: 300,
				Kind:       socialnet.KindOrganic,
				CountryMix: fixed(socialnet.CountryFrance),
				Profile: &socialnet.Profile{
					FemaleFrac: 0.46,
					AgeWeights: [6]float64{60.8, 20.8, 8.7, 2.6, 5.2, 1.7},
				},
				FriendsPublicFrac: 0.18,
				SearchableFrac:    0.10,
				Topology:          clickerTopology(190, 300),
				Cover:             clickerCover(650),
				CreatedAt:         createdAt,
			},
		},
		{
			Country:     socialnet.CountryIndia,
			CostPerLike: 0.174, // -> ~518 likes
			Cohort: accounts.CohortSpec{
				Name: "clickers-ind", Size: 2600,
				Kind:       socialnet.KindOrganic,
				CountryMix: fixed(socialnet.CountryIndia),
				Profile: &socialnet.Profile{
					FemaleFrac: 0.07,
					AgeWeights: [6]float64{52.7, 43.5, 2.3, 0.7, 0.5, 0.3},
				},
				FriendsPublicFrac: 0.20,
				SearchableFrac:    0.10,
				Topology:          clickerTopology(200, 2600),
				Cover:             clickerCover(900),
				CreatedAt:         createdAt,
			},
		},
		{
			Country:     socialnet.CountryEgypt,
			CostPerLike: 0.130, // -> ~691 likes
			Cohort: accounts.CohortSpec{
				Name: "clickers-egy", Size: 1700,
				Kind:       socialnet.KindOrganic,
				CountryMix: fixed(socialnet.CountryEgypt),
				Profile: &socialnet.Profile{
					FemaleFrac: 0.18,
					AgeWeights: [6]float64{54.6, 34.4, 6.4, 2.9, 0.8, 0.8},
				},
				FriendsPublicFrac: 0.20,
				SearchableFrac:    0.10,
				Topology:          clickerTopology(195, 1700),
				Cover:             clickerCover(850),
				CreatedAt:         createdAt,
			},
		},
	}
}

// WorldwideMix returns the delivery mix the paper observed for the
// FB-ALL campaign: the ad auction routes a worldwide budget to the
// cheapest clicks, which were almost exclusively Indian (96%).
func WorldwideMix() map[string]float64 {
	return map[string]float64{
		socialnet.CountryIndia: 0.96,
		socialnet.CountryEgypt: 0.025,
		socialnet.CountryOther: 0.015,
	}
}

// AdEngine owns the click markets and delivers page-like ad campaigns on
// the simulation clock.
type AdEngine struct {
	store   *socialnet.Store
	rng     *rand.Rand
	markets map[string]*marketState
}

type marketState struct {
	cfg    ClickMarket
	cohort *accounts.Cohort
}

// NewAdEngine builds each market's clicker cohort into the store and
// registers it with the ledger for lazy history materialization.
func NewAdEngine(r *rand.Rand, st *socialnet.Store, pop *socialnet.Population, ledger *accounts.Ledger, markets []ClickMarket) (*AdEngine, error) {
	if len(markets) == 0 {
		return nil, fmt.Errorf("platform: no markets configured")
	}
	e := &AdEngine{store: st, rng: r, markets: make(map[string]*marketState, len(markets))}
	for _, m := range markets {
		m := m
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if _, dup := e.markets[m.Country]; dup {
			return nil, fmt.Errorf("platform: duplicate market for %s", m.Country)
		}
		cohort, err := accounts.Build(r, st, pop, m.Cohort)
		if err != nil {
			return nil, fmt.Errorf("platform: market %s: %w", m.Country, err)
		}
		ledger.Register(cohort)
		e.markets[m.Country] = &marketState{cfg: m, cohort: cohort}
	}
	return e, nil
}

// Market returns the market config for a country (for inspection).
func (e *AdEngine) Market(country string) (ClickMarket, bool) {
	ms, ok := e.markets[country]
	if !ok {
		return ClickMarket{}, false
	}
	return ms.cfg, true
}

// Countries returns configured market countries, sorted.
func (e *AdEngine) Countries() []string {
	out := make([]string, 0, len(e.markets))
	for c := range e.markets {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// AdCampaign is a page-like ad buy.
type AdCampaign struct {
	Page socialnet.PageID
	// TargetCountry is a market country, or "" for worldwide delivery
	// (routed through the Mix, default WorldwideMix).
	TargetCountry string
	BudgetPerDay  float64
	DurationDays  int
	// Mix overrides the worldwide routing mix (nil = WorldwideMix()).
	Mix map[string]float64
}

func (e *AdEngine) validate(c AdCampaign) error {
	if c.BudgetPerDay <= 0 {
		return fmt.Errorf("platform: budget/day %v must be positive", c.BudgetPerDay)
	}
	if c.DurationDays < 1 {
		return fmt.Errorf("platform: duration %d days must be >=1", c.DurationDays)
	}
	if c.TargetCountry != "" {
		if _, ok := e.markets[c.TargetCountry]; !ok {
			return fmt.Errorf("platform: no click market for %q", c.TargetCountry)
		}
	}
	return nil
}

// Launch schedules the campaign's daily deliveries on the clock,
// drawing randomness from the engine's own stream. Each day, the budget
// buys budget/CPL likes (Poisson-jittered), spread at uniform random
// instants through the day — the steady trickle of Figure 2(a).
func (e *AdEngine) Launch(clock *simclock.Clock, c AdCampaign) error {
	return e.LaunchSeeded(clock, e.rng, c)
}

// LaunchSeeded is Launch drawing all randomness — including the
// delivery-day draws that fire later on the clock — from the given
// stream instead of the engine's. The parallel study engine passes each
// campaign a stream split from the root seed, so a campaign's delivery
// sequence is a function of its own stream alone and campaigns can be
// driven on separate clocks concurrently; markets are read-only at
// delivery time.
func (e *AdEngine) LaunchSeeded(clock *simclock.Clock, r *rand.Rand, c AdCampaign) error {
	if err := e.validate(c); err != nil {
		return err
	}
	if _, err := e.store.Page(c.Page); err != nil {
		return err
	}
	mix := c.Mix
	if c.TargetCountry == "" && mix == nil {
		mix = WorldwideMix()
	}
	for day := 0; day < c.DurationDays; day++ {
		day := day
		_, err := clock.ScheduleAfter(time.Duration(day)*24*time.Hour, fmt.Sprintf("ad-day-%d", day), func(cl *simclock.Clock) {
			e.deliverDay(cl, r, c, mix)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// deliverDay schedules one day's likes.
func (e *AdEngine) deliverDay(clock *simclock.Clock, r *rand.Rand, c AdCampaign, mix map[string]float64) {
	type slice struct {
		country string
		budget  float64
	}
	var slices []slice
	if c.TargetCountry != "" {
		slices = []slice{{c.TargetCountry, c.BudgetPerDay}}
	} else {
		countries := make([]string, 0, len(mix))
		for co := range mix {
			countries = append(countries, co)
		}
		sort.Strings(countries)
		for _, co := range countries {
			slices = append(slices, slice{co, c.BudgetPerDay * mix[co]})
		}
	}
	for _, sl := range slices {
		ms, ok := e.markets[sl.country]
		if !ok {
			continue // mix countries without a market deliver nothing
		}
		mean := sl.budget / ms.cfg.CostPerLike
		n := stats.Poisson(r, mean)
		pool := ms.cohort.Members
		for i := 0; i < n; i++ {
			if len(pool) == 0 {
				return
			}
			var uid socialnet.UserID
			found := false
			for tries := 0; tries < 24; tries++ {
				cand := pool[r.Intn(len(pool))]
				if !e.store.Likes(cand, c.Page) {
					uid, found = cand, true
					break
				}
			}
			if !found {
				continue
			}
			at := clock.Now().Add(time.Duration(r.Int63n(int64(24 * time.Hour))))
			_, _ = clock.ScheduleAt(at, "ad-like", func(cl *simclock.Clock) {
				_ = e.store.AddLike(uid, c.Page, cl.Now())
			})
		}
	}
}
