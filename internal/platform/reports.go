package platform

import (
	"fmt"
	"sort"

	"repro/internal/socialnet"
	"repro/internal/stats"
)

// PageReport is the page-admin aggregate report Facebook provided in 2014
// (§3, Data Collection): distributions of liker gender, age, country, and
// towns, with no per-user records. Facebook computed these from both
// public and private profile attributes; the simulated report likewise
// reads the ground-truth store, not the public view.
type PageReport struct {
	Page       socialnet.PageID
	TotalLikes int

	// GenderCounts maps "F"/"M"/"?" to liker counts.
	GenderCounts map[string]int
	// AgeCounts is indexed in Table 2 bracket order.
	AgeCounts [6]int
	// CountryCounts maps country label to liker counts.
	CountryCounts map[string]int
	// HomeTownCounts / CurrentTownCounts map towns to counts.
	HomeTownCounts    map[string]int
	CurrentTownCounts map[string]int
}

// ReportFor aggregates the demographics of a page's likers.
func ReportFor(st *socialnet.Store, page socialnet.PageID) (*PageReport, error) {
	if _, err := st.Page(page); err != nil {
		return nil, err
	}
	rep := &PageReport{
		Page:              page,
		GenderCounts:      make(map[string]int),
		CountryCounts:     make(map[string]int),
		HomeTownCounts:    make(map[string]int),
		CurrentTownCounts: make(map[string]int),
	}
	for _, lk := range st.LikesOfPage(page) {
		u, err := st.User(lk.User)
		if err != nil {
			return nil, fmt.Errorf("platform: report: %w", err)
		}
		rep.TotalLikes++
		rep.GenderCounts[u.Gender.String()]++
		if int(u.Age) < len(rep.AgeCounts) {
			rep.AgeCounts[u.Age]++
		}
		rep.CountryCounts[u.Country]++
		rep.HomeTownCounts[u.HomeTown]++
		rep.CurrentTownCounts[u.CurrentTown]++
	}
	return rep, nil
}

// FemaleMaleSplit returns the F/M percentages (ignoring unknown).
func (r *PageReport) FemaleMaleSplit() (f, m float64) {
	nf := float64(r.GenderCounts["F"])
	nm := float64(r.GenderCounts["M"])
	if nf+nm == 0 {
		return 0, 0
	}
	return 100 * nf / (nf + nm), 100 * nm / (nf + nm)
}

// AgeFractions returns the age distribution normalized to 1.
func (r *PageReport) AgeFractions() []float64 {
	out := make([]float64, len(r.AgeCounts))
	total := 0
	for _, c := range r.AgeCounts {
		total += c
	}
	if total == 0 {
		return out
	}
	for i, c := range r.AgeCounts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// KLvsGlobal returns the KL divergence (bits) of the report's age
// distribution against the global Facebook age distribution — the last
// column of Table 2.
func (r *PageReport) KLvsGlobal() (float64, error) {
	return stats.KLDivergence(r.AgeFractions(), socialnet.GlobalAgeDistribution())
}

// CountryPercentages returns the country mix as label->percentage,
// with countries outside the study set folded into "Other" (Figure 1).
func (r *PageReport) CountryPercentages() map[string]float64 {
	known := make(map[string]bool)
	for _, c := range socialnet.StudyCountries() {
		known[c] = true
	}
	out := make(map[string]float64)
	if r.TotalLikes == 0 {
		return out
	}
	for c, n := range r.CountryCounts {
		label := c
		if !known[c] {
			label = socialnet.CountryOther
		}
		out[label] += 100 * float64(n) / float64(r.TotalLikes)
	}
	return out
}

// TopCountry returns the dominant country and its percentage.
func (r *PageReport) TopCountry() (string, float64) {
	type kv struct {
		c string
		n int
	}
	var all []kv
	for c, n := range r.CountryCounts {
		all = append(all, kv{c, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].c < all[j].c
	})
	if len(all) == 0 || r.TotalLikes == 0 {
		return "", 0
	}
	return all[0].c, 100 * float64(all[0].n) / float64(r.TotalLikes)
}
