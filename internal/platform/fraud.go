package platform

import (
	"fmt"
	"math/rand"

	"repro/internal/detect"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

// FraudSweepConfig tunes the platform's account-termination pass, run a
// month after the campaigns in the paper's follow-up (§5). Facebook's
// enforcement was conservative: even blatantly bot-like farms lost only
// 1–4% of the accounts that liked the honeypots, and the stealthy
// BoostLikes network lost a single account.
type FraudSweepConfig struct {
	// BaseRate scales suspicion scores into termination probabilities;
	// P(terminate) = BaseRate * Score(account) for accounts above
	// MinScore.
	BaseRate float64
	// MinScore is the suspicion floor below which scoring contributes
	// no termination probability.
	MinScore float64
	// RandomFloor is a small score-independent termination probability
	// applied to every examined account: background enforcement that
	// catches the occasional account for unrelated reasons (BoostLikes
	// lost exactly 1 of 621; the small FB campaigns lost none).
	RandomFloor float64
}

// DefaultFraudSweepConfig reproduces Table 1's termination magnitudes:
// burst-farm accounts lose ~1-3%, stealth and organic accounts a
// fraction of a percent.
func DefaultFraudSweepConfig() FraudSweepConfig {
	return FraudSweepConfig{BaseRate: 0.022, MinScore: 0.2, RandomFloor: 0.0015}
}

// Validate checks the config.
func (c *FraudSweepConfig) Validate() error {
	if c.BaseRate < 0 || c.BaseRate > 1 {
		return fmt.Errorf("platform: sweep base rate %v out of [0,1]", c.BaseRate)
	}
	if c.MinScore < 0 || c.MinScore > 1 {
		return fmt.Errorf("platform: sweep min score %v out of [0,1]", c.MinScore)
	}
	if c.RandomFloor < 0 || c.RandomFloor > 1 {
		return fmt.Errorf("platform: sweep random floor %v out of [0,1]", c.RandomFloor)
	}
	return nil
}

// SweepResult reports what the sweep did.
type SweepResult struct {
	Examined   int
	Terminated []socialnet.UserID
	// Scores holds the suspicion score of every examined account.
	Scores map[socialnet.UserID]float64
}

// FraudSweep examines the given accounts, scores them with the detect
// package's composite features (burstiness, like inflation, island
// membership), and terminates a score-proportional random subset. It
// is a serial convenience wrapper over FraudSweepSeeded, seeding the
// split streams from the caller's generator.
func FraudSweep(r *rand.Rand, st *socialnet.Store, accounts []socialnet.UserID, cfg FraudSweepConfig) (*SweepResult, error) {
	return FraudSweepSeeded(r.Int63(), st, accounts, cfg, 1)
}

// FraudSweepSeeded is FraudSweep with per-account randomness split from
// a root seed and feature scoring fanned out over a worker pool. Each
// account's termination coin flip draws from its own stream
// (seed, "sweep", userID), so the outcome is bit-identical for any
// worker count — including workers == 1, the serial path.
//
// It is a thin policy driver over detect.BatchVerdicts — the same
// composite-verdict core the streaming scorer is pinned byte-identical
// against — so the batch sweep and a sweep driven off live
// StreamScorer verdicts (FraudSweepVerdicts) terminate the same
// accounts. Termination probability depends only on Verdict.Score,
// which excludes the lockstep dimension, keeping the coin flips pinned
// across detector generations.
func FraudSweepSeeded(seed int64, st *socialnet.Store, accounts []socialnet.UserID, cfg FraudSweepConfig, workers int) (*SweepResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	verdicts, err := detect.BatchVerdicts(st, accounts, nil, detect.DefaultLockstepConfig(), workers)
	if err != nil {
		return nil, err
	}
	return FraudSweepVerdicts(seed, st, verdicts, cfg)
}

// FraudSweepVerdicts applies the platform's termination policy to
// precomputed detector verdicts, sorted by user ID — the engine-neutral
// back half of the sweep. FraudSweepSeeded feeds it batch verdicts; the
// streaming study path (core.TerminationStream) feeds it live
// StreamScorer verdicts. Already-terminated accounts are skipped (the
// platform does not re-examine them — status is re-read from the store
// at decision time, not taken from the verdict snapshot), and each
// surviving account flips a score-proportional coin from its own
// split stream, so outcomes are bit-identical across engines, worker
// counts, and restarts. Terminations are applied in the same serial
// pass that draws the coins, which matches the serial semantics
// because an account's verdict never depends on another account's
// termination status.
func FraudSweepVerdicts(seed int64, st *socialnet.Store, verdicts []detect.Verdict, cfg FraudSweepConfig) (*SweepResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &SweepResult{Scores: make(map[socialnet.UserID]float64, len(verdicts))}
	for _, v := range verdicts {
		uid := v.Features.User
		u, err := st.User(uid)
		if err != nil {
			return nil, err
		}
		if u.Status == socialnet.StatusTerminated {
			continue
		}
		res.Examined++
		res.Scores[uid] = v.Score
		p := cfg.RandomFloor
		if v.Score >= cfg.MinScore {
			p += cfg.BaseRate * v.Score
		}
		r := stats.SplitRandN(seed, "sweep", int64(uid))
		if stats.Bernoulli(r, p) {
			if err := st.Terminate(uid); err != nil {
				return nil, err
			}
			res.Terminated = append(res.Terminated, uid)
		}
	}
	return res, nil
}

// TerminatedAmong counts terminated accounts within a user set.
func TerminatedAmong(st *socialnet.Store, users []socialnet.UserID) (int, error) {
	n := 0
	for _, uid := range users {
		u, err := st.User(uid)
		if err != nil {
			return 0, err
		}
		if u.Status == socialnet.StatusTerminated {
			n++
		}
	}
	return n, nil
}
