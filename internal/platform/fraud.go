package platform

import (
	"fmt"
	"math/rand"

	"repro/internal/detect"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

// FraudSweepConfig tunes the platform's account-termination pass, run a
// month after the campaigns in the paper's follow-up (§5). Facebook's
// enforcement was conservative: even blatantly bot-like farms lost only
// 1–4% of the accounts that liked the honeypots, and the stealthy
// BoostLikes network lost a single account.
type FraudSweepConfig struct {
	// BaseRate scales suspicion scores into termination probabilities;
	// P(terminate) = BaseRate * Score(account) for accounts above
	// MinScore.
	BaseRate float64
	// MinScore is the suspicion floor below which scoring contributes
	// no termination probability.
	MinScore float64
	// RandomFloor is a small score-independent termination probability
	// applied to every examined account: background enforcement that
	// catches the occasional account for unrelated reasons (BoostLikes
	// lost exactly 1 of 621; the small FB campaigns lost none).
	RandomFloor float64
}

// DefaultFraudSweepConfig reproduces Table 1's termination magnitudes:
// burst-farm accounts lose ~1-3%, stealth and organic accounts a
// fraction of a percent.
func DefaultFraudSweepConfig() FraudSweepConfig {
	return FraudSweepConfig{BaseRate: 0.022, MinScore: 0.2, RandomFloor: 0.0015}
}

// Validate checks the config.
func (c *FraudSweepConfig) Validate() error {
	if c.BaseRate < 0 || c.BaseRate > 1 {
		return fmt.Errorf("platform: sweep base rate %v out of [0,1]", c.BaseRate)
	}
	if c.MinScore < 0 || c.MinScore > 1 {
		return fmt.Errorf("platform: sweep min score %v out of [0,1]", c.MinScore)
	}
	if c.RandomFloor < 0 || c.RandomFloor > 1 {
		return fmt.Errorf("platform: sweep random floor %v out of [0,1]", c.RandomFloor)
	}
	return nil
}

// SweepResult reports what the sweep did.
type SweepResult struct {
	Examined   int
	Terminated []socialnet.UserID
	// Scores holds the suspicion score of every examined account.
	Scores map[socialnet.UserID]float64
}

// FraudSweep examines the given accounts, scores them with the detect
// package's composite features (burstiness, like inflation, island
// membership), and terminates a score-proportional random subset. It
// is a serial convenience wrapper over FraudSweepSeeded, seeding the
// split streams from the caller's generator.
func FraudSweep(r *rand.Rand, st *socialnet.Store, accounts []socialnet.UserID, cfg FraudSweepConfig) (*SweepResult, error) {
	return FraudSweepSeeded(r.Int63(), st, accounts, cfg, 1)
}

// FraudSweepSeeded is FraudSweep with per-account randomness split from
// a root seed and feature scoring fanned out over a worker pool. Each
// account's termination coin flip draws from its own stream
// (seed, "sweep", userID), so the outcome is bit-identical for any
// worker count — including workers == 1, the serial path.
//
// It is a thin policy driver over detect.BatchFeatures — the same
// feature-assembly core the streaming scorer is pinned byte-identical
// against — adding only what makes it the *platform's* sweep:
// already-terminated accounts are skipped (not re-examined), and each
// surviving account flips a score-proportional termination coin.
// Feature extraction is read-only over the store; terminations are
// applied in the same serial pass that draws the coins, which matches
// the serial semantics because an account's features never depend on
// another account's termination status.
func FraudSweepSeeded(seed int64, st *socialnet.Store, accounts []socialnet.UserID, cfg FraudSweepConfig, workers int) (*SweepResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	feats, err := detect.BatchFeatures(st, accounts, workers)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{Scores: make(map[socialnet.UserID]float64, len(feats))}
	for _, f := range feats {
		u, err := st.User(f.User)
		if err != nil {
			return nil, err
		}
		if u.Status == socialnet.StatusTerminated {
			continue
		}
		score := f.Score()
		res.Examined++
		res.Scores[f.User] = score
		p := cfg.RandomFloor
		if score >= cfg.MinScore {
			p += cfg.BaseRate * score
		}
		r := stats.SplitRandN(seed, "sweep", int64(f.User))
		if stats.Bernoulli(r, p) {
			if err := st.Terminate(f.User); err != nil {
				return nil, err
			}
			res.Terminated = append(res.Terminated, f.User)
		}
	}
	return res, nil
}

// TerminatedAmong counts terminated accounts within a user set.
func TerminatedAmong(st *socialnet.Store, users []socialnet.UserID) (int, error) {
	n := 0
	for _, uid := range users {
		u, err := st.User(uid)
		if err != nil {
			return 0, err
		}
		if u.Status == socialnet.StatusTerminated {
			n++
		}
	}
	return n, nil
}
