package platform

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/detect"
	"repro/internal/parallel"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

// FraudSweepConfig tunes the platform's account-termination pass, run a
// month after the campaigns in the paper's follow-up (§5). Facebook's
// enforcement was conservative: even blatantly bot-like farms lost only
// 1–4% of the accounts that liked the honeypots, and the stealthy
// BoostLikes network lost a single account.
type FraudSweepConfig struct {
	// BaseRate scales suspicion scores into termination probabilities;
	// P(terminate) = BaseRate * Score(account) for accounts above
	// MinScore.
	BaseRate float64
	// MinScore is the suspicion floor below which scoring contributes
	// no termination probability.
	MinScore float64
	// RandomFloor is a small score-independent termination probability
	// applied to every examined account: background enforcement that
	// catches the occasional account for unrelated reasons (BoostLikes
	// lost exactly 1 of 621; the small FB campaigns lost none).
	RandomFloor float64
}

// DefaultFraudSweepConfig reproduces Table 1's termination magnitudes:
// burst-farm accounts lose ~1-3%, stealth and organic accounts a
// fraction of a percent.
func DefaultFraudSweepConfig() FraudSweepConfig {
	return FraudSweepConfig{BaseRate: 0.022, MinScore: 0.2, RandomFloor: 0.0015}
}

// Validate checks the config.
func (c *FraudSweepConfig) Validate() error {
	if c.BaseRate < 0 || c.BaseRate > 1 {
		return fmt.Errorf("platform: sweep base rate %v out of [0,1]", c.BaseRate)
	}
	if c.MinScore < 0 || c.MinScore > 1 {
		return fmt.Errorf("platform: sweep min score %v out of [0,1]", c.MinScore)
	}
	if c.RandomFloor < 0 || c.RandomFloor > 1 {
		return fmt.Errorf("platform: sweep random floor %v out of [0,1]", c.RandomFloor)
	}
	return nil
}

// SweepResult reports what the sweep did.
type SweepResult struct {
	Examined   int
	Terminated []socialnet.UserID
	// Scores holds the suspicion score of every examined account.
	Scores map[socialnet.UserID]float64
}

// FraudSweep examines the given accounts, scores them with the detect
// package's composite features (burstiness, like inflation, island
// membership), and terminates a score-proportional random subset. It
// is a serial convenience wrapper over FraudSweepSeeded, seeding the
// split streams from the caller's generator.
func FraudSweep(r *rand.Rand, st *socialnet.Store, accounts []socialnet.UserID, cfg FraudSweepConfig) (*SweepResult, error) {
	return FraudSweepSeeded(r.Int63(), st, accounts, cfg, 1)
}

// FraudSweepSeeded is FraudSweep with per-account randomness split from
// a root seed and feature scoring fanned out over a worker pool. Each
// account's termination coin flip draws from its own stream
// (seed, "sweep", userID), so the outcome is bit-identical for any
// worker count — including workers == 1, the serial path. Scoring is
// read-only over the store; terminations are applied in a serial pass
// afterwards, which matches the serial semantics because an account's
// features never depend on another account's termination status.
//
// The burst features come from the store's journal: one unsorted scan
// groups like timestamps per examined account, replacing a per-account
// sorted copy of the user-side index. Scan order is not canonical, but
// the features consume only the timestamp multiset (the window scans
// sort private copies), so the scores stay bit-deterministic.
func FraudSweepSeeded(seed int64, st *socialnet.Store, accounts []socialnet.UserID, cfg FraudSweepConfig, workers int) (*SweepResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	islands := detect.IsolatedIslands(st.FriendGraph(), accounts)

	// Sort and dedupe: an account that liked several honeypots (the
	// ALMS reuse scenario) is examined exactly once.
	sorted := append([]socialnet.UserID(nil), accounts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	uniq := sorted[:0]
	for i, uid := range sorted {
		if i == 0 || uid != sorted[i-1] {
			uniq = append(uniq, uid)
		}
	}
	sorted = uniq

	// Group the examined accounts' like timestamps out of the journal —
	// one unsorted scan; the burst features only consume the timestamp
	// multiset, so no canonical materialization is needed.
	likeTimes := make(map[socialnet.UserID][]time.Time, len(sorted))
	for _, uid := range sorted {
		likeTimes[uid] = nil
	}
	st.Journal().Scan(func(ev socialnet.LikeEvent) {
		if ts, tracked := likeTimes[ev.User]; tracked {
			likeTimes[ev.User] = append(ts, ev.At)
		}
	})

	type verdict struct {
		examined  bool
		score     float64
		terminate bool
	}
	verdicts := make([]verdict, len(sorted))
	err := parallel.Chunks(workers, len(sorted), 64, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			uid := sorted[i]
			u, err := st.User(uid)
			if err != nil {
				return err
			}
			if u.Status == socialnet.StatusTerminated {
				continue
			}
			f, err := detect.FeaturesFromTimes(st, uid, likeTimes[uid])
			if err != nil {
				return err
			}
			f.IslandSize = islands[uid]
			score := f.Score()
			p := cfg.RandomFloor
			if score >= cfg.MinScore {
				p += cfg.BaseRate * score
			}
			r := stats.SplitRandN(seed, "sweep", int64(uid))
			verdicts[i] = verdict{examined: true, score: score, terminate: stats.Bernoulli(r, p)}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &SweepResult{Scores: make(map[socialnet.UserID]float64, len(sorted))}
	for i, uid := range sorted {
		v := verdicts[i]
		if !v.examined {
			continue
		}
		res.Examined++
		res.Scores[uid] = v.score
		if v.terminate {
			if err := st.Terminate(uid); err != nil {
				return nil, err
			}
			res.Terminated = append(res.Terminated, uid)
		}
	}
	return res, nil
}

// TerminatedAmong counts terminated accounts within a user set.
func TerminatedAmong(st *socialnet.Store, users []socialnet.UserID) (int, error) {
	n := 0
	for _, uid := range users {
		u, err := st.User(uid)
		if err != nil {
			return 0, err
		}
		if u.Status == socialnet.StatusTerminated {
			n++
		}
	}
	return n, nil
}
