package platform

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/accounts"
	"repro/internal/simclock"
	"repro/internal/socialnet"
)

var t0 = time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

func testWorld(t *testing.T, seed int64) (*rand.Rand, *socialnet.Store, *socialnet.Population, *accounts.Ledger) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	st := socialnet.NewStore()
	spec := socialnet.DefaultPopulationSpec()
	spec.NumUsers = 300
	spec.NumAmbientPages = 400
	pop, err := socialnet.GeneratePopulation(r, st, spec)
	if err != nil {
		t.Fatal(err)
	}
	return r, st, pop, accounts.NewLedger(pop, t0)
}

func testEngine(t *testing.T, seed int64) (*AdEngine, *socialnet.Store, *simclock.Clock) {
	t.Helper()
	r, st, pop, ledger := testWorld(t, seed)
	markets := DefaultMarkets(t0.AddDate(-2, 0, 0))
	// Shrink pools for test speed.
	for i := range markets {
		markets[i].Cohort.Size = 400
		markets[i].Cohort.Topology.HubCount = 40
	}
	e, err := NewAdEngine(r, st, pop, ledger, markets)
	if err != nil {
		t.Fatal(err)
	}
	return e, st, simclock.New(t0)
}

func honeypotPage(t *testing.T, st *socialnet.Store) socialnet.PageID {
	t.Helper()
	p, err := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEngineMarkets(t *testing.T) {
	e, _, _ := testEngine(t, 1)
	countries := e.Countries()
	if len(countries) != 4 {
		t.Fatalf("countries = %v", countries)
	}
	m, ok := e.Market(socialnet.CountryIndia)
	if !ok || m.CostPerLike >= 1 {
		t.Fatalf("india market = %+v, %v", m, ok)
	}
	if _, ok := e.Market("Atlantis"); ok {
		t.Fatal("unknown market should be absent")
	}
}

func TestCampaignDeliversBudgetedLikes(t *testing.T) {
	e, st, clock := testEngine(t, 2)
	page := honeypotPage(t, st)
	err := e.Launch(clock, AdCampaign{
		Page: page, TargetCountry: socialnet.CountryEgypt,
		BudgetPerDay: 6, DurationDays: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Drain(0)
	likes := st.LikeCountOfPage(page)
	// Egypt CPL 0.13: E[likes] = 90/0.13 ≈ 692 but the 400-account test
	// pool caps distinct likers.
	if likes < 300 || likes > 400 {
		t.Fatalf("likes = %d, want pool-capped ≈350-400", likes)
	}
	for _, lk := range st.LikesOfPage(page) {
		u, _ := st.User(lk.User)
		if u.Country != socialnet.CountryEgypt {
			t.Fatalf("Egypt campaign delivered from %s", u.Country)
		}
	}
}

func TestExpensiveMarketDeliversFew(t *testing.T) {
	e, st, clock := testEngine(t, 3)
	page := honeypotPage(t, st)
	if err := e.Launch(clock, AdCampaign{
		Page: page, TargetCountry: socialnet.CountryUSA,
		BudgetPerDay: 6, DurationDays: 15,
	}); err != nil {
		t.Fatal(err)
	}
	clock.Drain(0)
	likes := st.LikeCountOfPage(page)
	// USA CPL 2.80: E ≈ 32.
	if likes < 10 || likes > 70 {
		t.Fatalf("USA likes = %d, want ≈32", likes)
	}
}

func TestWorldwideRoutesToIndia(t *testing.T) {
	e, st, clock := testEngine(t, 4)
	page := honeypotPage(t, st)
	if err := e.Launch(clock, AdCampaign{
		Page: page, BudgetPerDay: 6, DurationDays: 15,
	}); err != nil {
		t.Fatal(err)
	}
	clock.Drain(0)
	india := 0
	total := 0
	for _, lk := range st.LikesOfPage(page) {
		u, _ := st.User(lk.User)
		total++
		if u.Country == socialnet.CountryIndia {
			india++
		}
	}
	if total == 0 {
		t.Fatal("worldwide campaign delivered nothing")
	}
	if f := float64(india) / float64(total); f < 0.9 {
		t.Fatalf("india fraction = %v, want ≥0.9 (paper: 96%%)", f)
	}
}

func TestDeliveryTrickles(t *testing.T) {
	e, st, clock := testEngine(t, 5)
	page := honeypotPage(t, st)
	if err := e.Launch(clock, AdCampaign{
		Page: page, TargetCountry: socialnet.CountryIndia,
		BudgetPerDay: 6, DurationDays: 15,
	}); err != nil {
		t.Fatal(err)
	}
	clock.Drain(0)
	perDay := map[int]int{}
	for _, lk := range st.LikesOfPage(page) {
		perDay[int(lk.At.Sub(t0)/(24*time.Hour))]++
	}
	if len(perDay) < 12 {
		t.Fatalf("ad delivery hit only %d days", len(perDay))
	}
}

func TestLaunchValidation(t *testing.T) {
	e, st, clock := testEngine(t, 6)
	page := honeypotPage(t, st)
	bad := []AdCampaign{
		{Page: page, BudgetPerDay: 0, DurationDays: 5},
		{Page: page, BudgetPerDay: 6, DurationDays: 0},
		{Page: page, TargetCountry: "Atlantis", BudgetPerDay: 6, DurationDays: 5},
	}
	for i, c := range bad {
		if err := e.Launch(clock, c); err == nil {
			t.Fatalf("campaign %d accepted", i)
		}
	}
	if err := e.Launch(clock, AdCampaign{Page: 9999, BudgetPerDay: 6, DurationDays: 5}); err == nil {
		t.Fatal("missing page accepted")
	}
}

func TestNewAdEngineValidation(t *testing.T) {
	r, st, pop, ledger := testWorld(t, 7)
	if _, err := NewAdEngine(r, st, pop, ledger, nil); err == nil {
		t.Fatal("empty markets accepted")
	}
	m := DefaultMarkets(t0)[:1]
	dup := append(append([]ClickMarket(nil), m...), m...)
	if _, err := NewAdEngine(r, st, pop, ledger, dup); err == nil {
		t.Fatal("duplicate market accepted")
	}
	badMarket := m[0]
	badMarket.CostPerLike = 0
	if _, err := NewAdEngine(r, st, pop, ledger, []ClickMarket{badMarket}); err == nil {
		t.Fatal("zero CPL accepted")
	}
	noCountry := m[0]
	noCountry.Country = ""
	if _, err := NewAdEngine(r, st, pop, ledger, []ClickMarket{noCountry}); err == nil {
		t.Fatal("missing country accepted")
	}
}

func TestReportFor(t *testing.T) {
	_, st, _, _ := testWorld(t, 8)
	page := honeypotPage(t, st)
	demo := []struct {
		g socialnet.Gender
		a socialnet.AgeBracket
		c string
	}{
		{socialnet.GenderFemale, socialnet.Age18to24, socialnet.CountryUSA},
		{socialnet.GenderMale, socialnet.Age18to24, socialnet.CountryUSA},
		{socialnet.GenderMale, socialnet.Age13to17, socialnet.CountryIndia},
		{socialnet.GenderMale, socialnet.Age25to34, "Narnia"},
	}
	for i, d := range demo {
		u := st.AddUser(socialnet.User{Gender: d.g, Age: d.a, Country: d.c, HomeTown: d.c + "-h", CurrentTown: d.c + "-c"})
		if err := st.AddLike(u, page, t0.Add(time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := ReportFor(st, page)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalLikes != 4 {
		t.Fatalf("total = %d", rep.TotalLikes)
	}
	f, m := rep.FemaleMaleSplit()
	if f != 25 || m != 75 {
		t.Fatalf("split = %v/%v", f, m)
	}
	if rep.AgeCounts[socialnet.Age18to24] != 2 {
		t.Fatalf("age counts = %v", rep.AgeCounts)
	}
	fr := rep.AgeFractions()
	if fr[socialnet.Age18to24] != 0.5 {
		t.Fatalf("age fractions = %v", fr)
	}
	pct := rep.CountryPercentages()
	if pct[socialnet.CountryUSA] != 50 || pct[socialnet.CountryOther] != 25 {
		t.Fatalf("country pct = %v", pct)
	}
	top, share := rep.TopCountry()
	if top != socialnet.CountryUSA || share != 50 {
		t.Fatalf("top country = %s %v", top, share)
	}
	kl, err := rep.KLvsGlobal()
	if err != nil || kl <= 0 {
		t.Fatalf("KL = %v, %v", kl, err)
	}
	if _, err := ReportFor(st, 9999); err == nil {
		t.Fatal("missing page accepted")
	}
}

func TestReportEmptyPage(t *testing.T) {
	_, st, _, _ := testWorld(t, 9)
	page := honeypotPage(t, st)
	rep, err := ReportFor(st, page)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalLikes != 0 {
		t.Fatal("empty page should have no likes")
	}
	f, m := rep.FemaleMaleSplit()
	if f != 0 || m != 0 {
		t.Fatal("empty split should be 0/0")
	}
	if top, _ := rep.TopCountry(); top != "" {
		t.Fatalf("top country = %q", top)
	}
	if len(rep.CountryPercentages()) != 0 {
		t.Fatal("empty percentages expected")
	}
}

func TestFraudSweepTerminatesBots(t *testing.T) {
	r, st, _, _ := testWorld(t, 10)
	page := honeypotPage(t, st)
	// 200 bot accounts with dense burst histories.
	var bots []socialnet.UserID
	job, _ := st.AddPage(socialnet.Page{Name: "job"})
	_ = job
	for i := 0; i < 200; i++ {
		u := st.AddUser(socialnet.User{Country: "TR", DeclaredFriends: 20})
		bots = append(bots, u)
		var hist []socialnet.Like
		for j := 0; j < 120; j++ {
			p, err := st.AddPage(socialnet.Page{Name: "cover"})
			if err != nil {
				t.Fatal(err)
			}
			hist = append(hist, socialnet.Like{Page: p, At: t0.Add(-time.Duration(1+j/100)*24*time.Hour + time.Duration(j%100)*time.Minute)})
		}
		if err := st.AddHistory(u, hist); err != nil {
			t.Fatal(err)
		}
		_ = st.AddLike(u, page, t0.Add(time.Duration(i)*time.Minute))
	}
	cfg := FraudSweepConfig{BaseRate: 0.5, MinScore: 0.2}
	res, err := FraudSweep(r, st, bots, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Examined != 200 {
		t.Fatalf("examined = %d", res.Examined)
	}
	if len(res.Terminated) < 40 {
		t.Fatalf("terminated = %d bots, want many at base rate 0.5", len(res.Terminated))
	}
	n, err := TerminatedAmong(st, bots)
	if err != nil || n != len(res.Terminated) {
		t.Fatalf("TerminatedAmong = %d, %v", n, err)
	}
}

func TestFraudSweepSparesOrganic(t *testing.T) {
	r, st, pop, _ := testWorld(t, 11)
	users := pop.Users[:200]
	res, err := FraudSweep(r, st, users, DefaultFraudSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Terminated) > 4 {
		t.Fatalf("terminated %d organic users", len(res.Terminated))
	}
}

func TestFraudSweepSkipsAlreadyTerminated(t *testing.T) {
	r, st, pop, _ := testWorld(t, 12)
	u := pop.Users[0]
	if err := st.Terminate(u); err != nil {
		t.Fatal(err)
	}
	res, err := FraudSweep(r, st, []socialnet.UserID{u}, DefaultFraudSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Examined != 0 {
		t.Fatalf("examined = %d, want 0", res.Examined)
	}
}

func TestFraudSweepConfigValidation(t *testing.T) {
	r, st, pop, _ := testWorld(t, 13)
	bad := []FraudSweepConfig{
		{BaseRate: -1, MinScore: 0.5},
		{BaseRate: 0.5, MinScore: 2},
		{BaseRate: 0.5, MinScore: 0.5, RandomFloor: -0.1},
	}
	for i, cfg := range bad {
		if _, err := FraudSweep(r, st, pop.Users[:5], cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

func TestWorldwideMixSumsToOne(t *testing.T) {
	sum := 0.0
	for _, v := range WorldwideMix() {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("mix sums to %v", sum)
	}
}
