package platform

import (
	"testing"
	"time"

	"repro/internal/socialnet"
)

// botWorld builds a store with a burst-history bot cohort that all
// liked one honeypot page.
func botWorld(t *testing.T, seed int64, n int) (*socialnet.Store, []socialnet.UserID) {
	t.Helper()
	_, st, _, _ := testWorld(t, seed)
	page := honeypotPage(t, st)
	var bots []socialnet.UserID
	for i := 0; i < n; i++ {
		u := st.AddUser(socialnet.User{Country: "TR", DeclaredFriends: 20})
		bots = append(bots, u)
		var hist []socialnet.Like
		for j := 0; j < 120; j++ {
			p, err := st.AddPage(socialnet.Page{Name: "cover"})
			if err != nil {
				t.Fatal(err)
			}
			hist = append(hist, socialnet.Like{Page: p, At: t0.Add(-time.Duration(1+j/100)*24*time.Hour + time.Duration(j%100)*time.Minute)})
		}
		if err := st.AddHistory(u, hist); err != nil {
			t.Fatal(err)
		}
		_ = st.AddLike(u, page, t0.Add(time.Duration(i)*time.Minute))
	}
	return st, bots
}

// TestFraudSweepSeededDeterministicAcrossWorkers: same seed, same
// accounts ⇒ identical terminations for any pool size.
func TestFraudSweepSeededDeterministicAcrossWorkers(t *testing.T) {
	cfg := FraudSweepConfig{BaseRate: 0.5, MinScore: 0.2}
	sweep := func(workers int) *SweepResult {
		st, bots := botWorld(t, 21, 150)
		res, err := FraudSweepSeeded(77, st, bots, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := sweep(1)
	if serial.Examined != 150 || len(serial.Terminated) == 0 {
		t.Fatalf("serial sweep degenerate: examined %d, terminated %d", serial.Examined, len(serial.Terminated))
	}
	for _, workers := range []int{4, 16} {
		conc := sweep(workers)
		if conc.Examined != serial.Examined {
			t.Fatalf("workers=%d examined %d vs %d", workers, conc.Examined, serial.Examined)
		}
		if len(conc.Terminated) != len(serial.Terminated) {
			t.Fatalf("workers=%d terminated %d vs %d", workers, len(conc.Terminated), len(serial.Terminated))
		}
		for i := range serial.Terminated {
			if conc.Terminated[i] != serial.Terminated[i] {
				t.Fatalf("workers=%d termination %d differs", workers, i)
			}
		}
		for u, s := range serial.Scores {
			if conc.Scores[u] != s {
				t.Fatalf("workers=%d score of %d differs", workers, u)
			}
		}
	}
}

// TestFraudSweepSeededDedupes: an account listed twice (it liked two
// honeypots) is examined once.
func TestFraudSweepSeededDedupes(t *testing.T) {
	st, bots := botWorld(t, 22, 60)
	dup := append(append([]socialnet.UserID(nil), bots...), bots...)
	res, err := FraudSweepSeeded(5, st, dup, FraudSweepConfig{BaseRate: 0.5, MinScore: 0.2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Examined != len(bots) {
		t.Fatalf("examined %d, want %d", res.Examined, len(bots))
	}
	seen := map[socialnet.UserID]bool{}
	for _, u := range res.Terminated {
		if seen[u] {
			t.Fatalf("account %d terminated twice", u)
		}
		seen[u] = true
	}
}
