package farm

import (
	"fmt"
	"sort"
)

// PriceList captures the like-farm market of §3 / Table 1: packages of
// 1000 likes at prices from $14.99 (SocialFormula worldwide) to $190
// (BoostLikes USA), alongside the per-like value estimates the paper
// quotes in §1 (ChompOn: $8; other estimates $3.60–$214.81).
type PriceList struct {
	entries map[priceKey]float64
}

type priceKey struct {
	farm     string
	location string
}

// NewPriceList builds an empty price list.
func NewPriceList() *PriceList {
	return &PriceList{entries: make(map[priceKey]float64)}
}

// Set records the price of a 1000-like package for a farm+location.
func (p *PriceList) Set(farm, location string, price float64) error {
	if farm == "" {
		return fmt.Errorf("farm: price without farm name")
	}
	if price <= 0 {
		return fmt.Errorf("farm: non-positive price %v for %s/%s", price, farm, location)
	}
	p.entries[priceKey{farm, location}] = price
	return nil
}

// Price returns the package price for a farm+location.
func (p *PriceList) Price(farm, location string) (float64, bool) {
	v, ok := p.entries[priceKey{farm, location}]
	return v, ok
}

// PaperPriceList returns the Table 1 prices.
func PaperPriceList() *PriceList {
	p := NewPriceList()
	_ = p.Set("BoostLikes.com", "Worldwide", 70.00)
	_ = p.Set("BoostLikes.com", "USA", 190.00)
	_ = p.Set("SocialFormula.com", "Worldwide", 14.99)
	_ = p.Set("SocialFormula.com", "USA", 69.99)
	_ = p.Set("AuthenticLikes.com", "Worldwide", 49.95)
	_ = p.Set("AuthenticLikes.com", "USA", 59.95)
	_ = p.Set("MammothSocials.com", "Worldwide", 20.00)
	_ = p.Set("MammothSocials.com", "USA", 95.00)
	return p
}

// ValuePerLikeEstimates returns the §1 revenue-per-like estimates the
// paper cites, keyed by source.
func ValuePerLikeEstimates() map[string]float64 {
	return map[string]float64{
		"ChompOn": 8.00,
		"low":     3.60,
		"mid":     136.38,
		"high":    214.81,
	}
}

// Economics summarizes one order's economics: what was paid, what was
// delivered, and what the delivered likes are nominally worth — the gap
// between the two is the fraud's margin and the buyer's illusion.
type Economics struct {
	Farm           string
	Location       string
	PackagePrice   float64
	OrderedLikes   int
	DeliveredLikes int
	// CostPerDeliveredLike is price / delivered (Inf when nothing was
	// delivered — the BL-ALL / MS-ALL scam case is reported as -1).
	CostPerDeliveredLike float64
	// NominalValue is delivered * value-per-like under the given
	// estimate.
	NominalValue float64
}

// OrderEconomics computes the economics of an order outcome.
func OrderEconomics(farm, location string, prices *PriceList, ordered, delivered int, valuePerLike float64) (Economics, error) {
	if ordered < 1 {
		return Economics{}, fmt.Errorf("farm: ordered %d must be >=1", ordered)
	}
	if delivered < 0 {
		return Economics{}, fmt.Errorf("farm: delivered %d must be >=0", delivered)
	}
	if valuePerLike < 0 {
		return Economics{}, fmt.Errorf("farm: negative value per like %v", valuePerLike)
	}
	price, ok := prices.Price(farm, location)
	if !ok {
		return Economics{}, fmt.Errorf("farm: no price for %s/%s", farm, location)
	}
	e := Economics{
		Farm: farm, Location: location,
		PackagePrice: price, OrderedLikes: ordered, DeliveredLikes: delivered,
		NominalValue: float64(delivered) * valuePerLike,
	}
	if delivered > 0 {
		e.CostPerDeliveredLike = price * float64(ordered) / 1000 / float64(delivered)
	} else {
		e.CostPerDeliveredLike = -1
	}
	return e, nil
}

// FulfillmentRate returns delivered/ordered.
func (e Economics) FulfillmentRate() float64 {
	return float64(e.DeliveredLikes) / float64(e.OrderedLikes)
}

// Locations lists the price list's known locations for a farm, sorted.
func (p *PriceList) Locations(farm string) []string {
	var out []string
	for k := range p.entries {
		if k.farm == farm {
			out = append(out, k.location)
		}
	}
	sort.Strings(out)
	return out
}
