package farm

import (
	"math"
	"testing"
)

func TestPaperPriceList(t *testing.T) {
	p := PaperPriceList()
	cases := []struct {
		farm, loc string
		want      float64
	}{
		{"BoostLikes.com", "USA", 190},
		{"BoostLikes.com", "Worldwide", 70},
		{"SocialFormula.com", "Worldwide", 14.99},
		{"MammothSocials.com", "USA", 95},
	}
	for _, c := range cases {
		got, ok := p.Price(c.farm, c.loc)
		if !ok || got != c.want {
			t.Fatalf("Price(%s,%s) = %v,%v want %v", c.farm, c.loc, got, ok, c.want)
		}
	}
	if _, ok := p.Price("Nope.com", "USA"); ok {
		t.Fatal("unknown farm priced")
	}
	locs := p.Locations("BoostLikes.com")
	if len(locs) != 2 || locs[0] != "USA" || locs[1] != "Worldwide" {
		t.Fatalf("locations = %v", locs)
	}
}

func TestPriceListValidation(t *testing.T) {
	p := NewPriceList()
	if err := p.Set("", "USA", 10); err == nil {
		t.Fatal("empty farm accepted")
	}
	if err := p.Set("X", "USA", 0); err == nil {
		t.Fatal("zero price accepted")
	}
}

func TestOrderEconomics(t *testing.T) {
	prices := PaperPriceList()
	// SF-ALL: $14.99 for 1000 ordered, 984 delivered, at $8/like value.
	e, err := OrderEconomics("SocialFormula.com", "Worldwide", prices, 1000, 984, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.CostPerDeliveredLike-14.99/984) > 1e-9 {
		t.Fatalf("cost/like = %v", e.CostPerDeliveredLike)
	}
	if e.NominalValue != 984*8 {
		t.Fatalf("nominal value = %v", e.NominalValue)
	}
	if math.Abs(e.FulfillmentRate()-0.984) > 1e-12 {
		t.Fatalf("fulfillment = %v", e.FulfillmentRate())
	}
	// The fraud economics: ~1.5 cents buys a "like" nominally worth $8.
	if e.CostPerDeliveredLike > 0.02 {
		t.Fatalf("SF like costs %v, should be ~$0.015", e.CostPerDeliveredLike)
	}
}

func TestOrderEconomicsScam(t *testing.T) {
	prices := PaperPriceList()
	// BL-ALL: paid $70, delivered nothing.
	e, err := OrderEconomics("BoostLikes.com", "Worldwide", prices, 1000, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if e.CostPerDeliveredLike != -1 {
		t.Fatalf("scam cost/like = %v, want -1 sentinel", e.CostPerDeliveredLike)
	}
	if e.NominalValue != 0 || e.FulfillmentRate() != 0 {
		t.Fatalf("scam economics = %+v", e)
	}
}

func TestOrderEconomicsValidation(t *testing.T) {
	prices := PaperPriceList()
	if _, err := OrderEconomics("BoostLikes.com", "USA", prices, 0, 10, 8); err == nil {
		t.Fatal("ordered 0 accepted")
	}
	if _, err := OrderEconomics("BoostLikes.com", "USA", prices, 100, -1, 8); err == nil {
		t.Fatal("negative delivered accepted")
	}
	if _, err := OrderEconomics("BoostLikes.com", "USA", prices, 100, 10, -1); err == nil {
		t.Fatal("negative value accepted")
	}
	if _, err := OrderEconomics("Nope.com", "USA", prices, 100, 10, 8); err == nil {
		t.Fatal("unknown farm accepted")
	}
}

func TestValueEstimates(t *testing.T) {
	est := ValuePerLikeEstimates()
	if est["ChompOn"] != 8 {
		t.Fatalf("ChompOn = %v", est["ChompOn"])
	}
	if est["low"] >= est["mid"] || est["mid"] >= est["high"] {
		t.Fatalf("estimates not ordered: %v", est)
	}
}
