// Package farm models the underground like-farm operators the paper
// bought from (§3): BoostLikes, SocialFormula, AuthenticLikes, and
// MammothSocials. A Farm owns an account pool (an accounts.Cohort), a
// customer-page job portfolio, and a delivery scheduler implementing one
// of the two modi operandi the paper identifies (§5):
//
//   - ModeBurst: script-driven disposable accounts dump the ordered
//     likes in a few ≤2-hour bursts within the first days, then go
//     silent (SocialFormula, AuthenticLikes, MammothSocials —
//     Figure 2(b)).
//   - ModeTrickle: a well-connected network of human-like accounts
//     trickles likes steadily across the full order duration,
//     indistinguishable in shape from Facebook's own ad delivery
//     (BoostLikes — compare Figures 2(a) and 2(b)).
//
// Farms can share an account pool: the paper infers from cross-liking
// and friendship ties that AuthenticLikes and MammothSocials are run by
// the same operator (§4.3, §4.4); constructing two Farm values over one
// Cohort reproduces that.
package farm

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/accounts"
	"repro/internal/simclock"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

// Mode is a delivery strategy.
type Mode int

// Delivery modes.
const (
	ModeBurst Mode = iota
	ModeTrickle
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeTrickle {
		return "trickle"
	}
	return "burst"
}

// Config describes a farm brand.
type Config struct {
	// Name is the brand, e.g. "SocialFormula.com".
	Name string
	// Mode is the delivery strategy.
	Mode Mode
	// IgnoreTargeting: SocialFormula delivered Turkish likes regardless
	// of the ordered audience (§4.1, Figure 1).
	IgnoreTargeting bool
	// RotateAccounts: deliver from least-recently-used accounts first,
	// so overlapping orders draw nearly disjoint account sets (the
	// paper saw only ~5% liker overlap between SF-ALL and SF-USA).
	// When false, accounts are drawn uniformly at random.
	RotateAccounts bool
}

// Usage tracks how often each account has delivered likes. Farms run by
// the same operator share a Usage: that is how MammothSocials ends up
// reusing accounts AuthenticLikes already spent (the ALMS group).
type Usage struct {
	counts map[socialnet.UserID]int
}

// NewUsage returns an empty usage tracker.
func NewUsage() *Usage { return &Usage{counts: make(map[socialnet.UserID]int)} }

// Count returns the deliveries recorded for an account.
func (u *Usage) Count(id socialnet.UserID) int { return u.counts[id] }

// Farm is an operating like farm.
type Farm struct {
	cfg    Config
	cohort *accounts.Cohort
	rng    *rand.Rand
	store  *socialnet.Store

	// usage counts deliveries per account, for rotation and for
	// cross-order reuse bias; possibly shared with sibling farms.
	usage *Usage
}

// Errors.
var (
	ErrInactive = errors.New("farm: order marked inactive (paid but never delivered)")
	ErrDrained  = errors.New("farm: account pool cannot cover order")
)

// New creates a farm over an existing account cohort. Multiple farms may
// share one cohort and one Usage tracker (the AL/MS same-operator
// scenario); pass usage=nil for an independent tracker.
func New(r *rand.Rand, st *socialnet.Store, cfg Config, cohort *accounts.Cohort, usage *Usage) (*Farm, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("farm: config without name")
	}
	if cohort == nil || len(cohort.Members) == 0 {
		return nil, fmt.Errorf("farm: %s has no account pool", cfg.Name)
	}
	if usage == nil {
		usage = NewUsage()
	}
	return &Farm{
		cfg:    cfg,
		cohort: cohort,
		rng:    r,
		store:  st,
		usage:  usage,
	}, nil
}

// Name returns the farm brand.
func (f *Farm) Name() string { return f.cfg.Name }

// Mode returns the delivery mode.
func (f *Farm) Mode() Mode { return f.cfg.Mode }

// Cohort exposes the account pool (shared-operator scenarios, tests).
func (f *Farm) Cohort() *accounts.Cohort { return f.cohort }

// Order is a like purchase.
type Order struct {
	// Campaign labels the order (e.g. "SF-USA").
	Campaign string
	Page     socialnet.PageID
	// TargetCountry restricts delivery accounts ("" = worldwide).
	TargetCountry string
	// Quantity is the advertised package size (e.g. 1000 likes).
	Quantity int
	// DeliverCount is how many likes the farm actually delivers; the
	// paper saw anywhere from 31.7% to 103.8% of the ordered amount
	// (Table 1). Zero means deliver Quantity.
	DeliverCount int
	// DurationDays spreads trickle deliveries; burst farms ignore all
	// but the first ~2 days of it.
	DurationDays int
	// StartDelay postpones the first delivery (AuthenticLikes delivered
	// its burst on day 2).
	StartDelay time.Duration
	// ReuseBias in [0,1]: fraction of deliveries drawn preferentially
	// from accounts this farm's operator has already used for other
	// orders. Models the AL/MS cross-campaign account sharing that
	// creates the paper's ALMS group (Table 3, Figure 5(b)).
	ReuseBias float64
	// Inactive marks paid-but-never-delivered orders (BL-ALL, MS-ALL).
	Inactive bool
	// Bursts overrides the number of delivery bursts (default 1-3).
	Bursts int
	// BurstSpreadDays is the window over which burst start times are
	// drawn (default 1.5 days). AL-USA's bursts straddled the whole
	// campaign — its page was still gathering likes at day 15.
	BurstSpreadDays int
	// BiasLowFriends makes account selection prefer the pool's cheapest
	// accounts (fewest declared friends). The MammothSocials order was
	// served by the operator's most disposable profiles — MS likers had
	// median 68 friends, the reused ALMS group 46, against 343 for
	// AuthenticLikes likers (Table 3).
	BiasLowFriends bool
}

// Validate checks order parameters.
func (o *Order) Validate() error {
	if o.Campaign == "" {
		return errors.New("farm: order without campaign label")
	}
	if o.Quantity < 1 {
		return fmt.Errorf("farm: order quantity %d must be >=1", o.Quantity)
	}
	if o.DeliverCount < 0 {
		return fmt.Errorf("farm: deliver count %d must be >=0", o.DeliverCount)
	}
	if o.DurationDays < 1 {
		return fmt.Errorf("farm: duration %d days must be >=1", o.DurationDays)
	}
	if o.StartDelay < 0 {
		return fmt.Errorf("farm: negative start delay %s", o.StartDelay)
	}
	if o.ReuseBias < 0 || o.ReuseBias > 1 {
		return fmt.Errorf("farm: reuse bias %v out of [0,1]", o.ReuseBias)
	}
	if o.Bursts < 0 || o.Bursts > 10 {
		return fmt.Errorf("farm: bursts %d out of [0,10]", o.Bursts)
	}
	if o.BurstSpreadDays < 0 {
		return fmt.Errorf("farm: burst spread %d days must be >=0", o.BurstSpreadDays)
	}
	return nil
}

// PlaceOrder schedules the order's deliveries on the clock, drawing
// randomness from the farm's own stream. Inactive orders return
// ErrInactive without scheduling anything — the paper paid BoostLikes
// and MammothSocials for worldwide packages that never delivered a
// single like.
func (f *Farm) PlaceOrder(clock *simclock.Clock, o Order) error {
	return f.PlaceOrderSeeded(clock, f.rng, o)
}

// PlaceOrderSeeded is PlaceOrder drawing all randomness (account
// selection and delivery scheduling) from the given stream instead of
// the farm's own. The parallel study engine passes each campaign a
// stream split from the root seed, so order outcomes do not depend on
// how campaigns interleave across workers. Orders against one farm
// pool must still be placed in a fixed sequence: account rotation and
// reuse bias read the pool's shared usage state.
func (f *Farm) PlaceOrderSeeded(clock *simclock.Clock, r *rand.Rand, o Order) error {
	if err := o.Validate(); err != nil {
		return err
	}
	if _, err := f.store.Page(o.Page); err != nil {
		return err
	}
	if o.Inactive {
		return ErrInactive
	}
	want := o.DeliverCount
	if want == 0 {
		want = o.Quantity
	}
	deliverers, err := f.selectAccounts(r, o, want)
	if err != nil {
		return err
	}
	switch f.cfg.Mode {
	case ModeBurst:
		f.scheduleBursts(clock, r, o, deliverers)
	case ModeTrickle:
		f.scheduleTrickle(clock, r, o, deliverers)
	default:
		return fmt.Errorf("farm: unknown mode %d", f.cfg.Mode)
	}
	for _, u := range deliverers {
		f.usage.counts[u]++
	}
	return nil
}

// selectAccounts picks the accounts that will deliver the order.
func (f *Farm) selectAccounts(r *rand.Rand, o Order, want int) ([]socialnet.UserID, error) {
	target := o.TargetCountry
	if f.cfg.IgnoreTargeting {
		target = ""
	}
	eligible := f.cohort.MembersByCountry(target)
	if len(eligible) == 0 {
		// Fall back to the whole pool rather than failing the order —
		// farms deliver *something* (SocialFormula shipped Turkish
		// likes for a USA order).
		eligible = f.cohort.MembersByCountry("")
	}
	if want > len(eligible) {
		return nil, fmt.Errorf("%w: want %d, eligible %d (%s)", ErrDrained, want, len(eligible), o.Campaign)
	}

	var used, fresh []socialnet.UserID
	for _, u := range eligible {
		if f.usage.counts[u] > 0 {
			used = append(used, u)
		} else {
			fresh = append(fresh, u)
		}
	}

	var out []socialnet.UserID
	nReused := int(float64(want) * o.ReuseBias)
	if nReused > len(used) {
		nReused = len(used)
	}
	if nReused > 0 {
		picked, err := f.pick(r, used, nReused, o.BiasLowFriends)
		if err != nil {
			return nil, err
		}
		out = append(out, picked...)
	}
	remaining := want - len(out)
	poolForRest := fresh
	if !f.cfg.RotateAccounts {
		// Uniform: mix used and fresh.
		poolForRest = eligible
	}
	// Filter accounts already chosen or already liking the page.
	chosen := make(map[socialnet.UserID]bool, len(out))
	for _, u := range out {
		chosen[u] = true
	}
	var candidates []socialnet.UserID
	for _, u := range poolForRest {
		if !chosen[u] && !f.store.Likes(u, o.Page) {
			candidates = append(candidates, u)
		}
	}
	if remaining > len(candidates) {
		// Preferred pool is short: take all of it, then sample only the
		// shortfall from the rest of the eligible pool.
		inCandidates := make(map[socialnet.UserID]bool, len(candidates))
		for _, u := range candidates {
			inCandidates[u] = true
		}
		var extras []socialnet.UserID
		for _, u := range eligible {
			if !chosen[u] && !inCandidates[u] && !f.store.Likes(u, o.Page) {
				extras = append(extras, u)
			}
		}
		shortfall := remaining - len(candidates)
		if shortfall > len(extras) {
			return nil, fmt.Errorf("%w: want %d more, candidates %d (%s)", ErrDrained, shortfall, len(extras), o.Campaign)
		}
		out = append(out, candidates...)
		picked, err := f.pick(r, extras, shortfall, o.BiasLowFriends)
		if err != nil {
			return nil, err
		}
		return append(out, picked...), nil
	}
	picked, err := f.pick(r, candidates, remaining, o.BiasLowFriends)
	if err != nil {
		return nil, err
	}
	return append(out, picked...), nil
}

// pick draws n accounts from list, either uniformly without replacement
// or — under low-friend bias — from the cheapest third of the pool by
// declared friend count (falling back to the whole list when n exceeds
// that third).
func (f *Farm) pick(r *rand.Rand, list []socialnet.UserID, n int, biasLowFriends bool) ([]socialnet.UserID, error) {
	if !biasLowFriends {
		idx, err := stats.SampleWithoutReplacement(r, len(list), n)
		if err != nil {
			return nil, err
		}
		sort.Ints(idx)
		out := make([]socialnet.UserID, 0, n)
		for _, i := range idx {
			out = append(out, list[i])
		}
		return out, nil
	}
	sorted := append([]socialnet.UserID(nil), list...)
	sort.Slice(sorted, func(i, j int) bool {
		di := f.store.DeclaredFriendCount(sorted[i])
		dj := f.store.DeclaredFriendCount(sorted[j])
		if di != dj {
			return di < dj
		}
		return sorted[i] < sorted[j]
	})
	window := len(sorted) / 3
	if window < n {
		window = n
	}
	if window > len(sorted) {
		window = len(sorted)
	}
	idx, err := stats.SampleWithoutReplacement(r, window, n)
	if err != nil {
		return nil, err
	}
	sort.Ints(idx)
	out := make([]socialnet.UserID, 0, n)
	for _, i := range idx {
		out = append(out, sorted[i])
	}
	return out, nil
}

// scheduleBursts places the deliverers' likes into 1-3 tight bursts in
// the first days of the order (AuthenticLikes delivered 700+ likes
// within 4 hours of day 2 and nothing afterwards).
func (f *Farm) scheduleBursts(clock *simclock.Clock, r *rand.Rand, o Order, users []socialnet.UserID) {
	nBursts := o.Bursts
	if nBursts == 0 {
		nBursts = 1 + r.Intn(3)
	}
	if nBursts > len(users) {
		nBursts = 1
	}
	spread := time.Duration(o.BurstSpreadDays) * 24 * time.Hour
	if spread == 0 {
		spread = 36 * time.Hour
	}
	per := len(users) / nBursts
	for b := 0; b < nBursts; b++ {
		lo := b * per
		hi := lo + per
		if b == nBursts-1 {
			hi = len(users)
		}
		// Stagger bursts across the spread window: burst b starts in
		// slot b, so the first burst lands early (keeping the monitor
		// engaged) and the last lands near the end of the window.
		slot := int64(spread) / int64(nBursts)
		start := o.StartDelay + time.Duration(int64(b)*slot+r.Int63n(slot/2+1))
		window := time.Duration(30+r.Intn(91)) * time.Minute // 0.5-2h
		for _, u := range users[lo:hi] {
			u := u
			at := start + time.Duration(r.Int63n(int64(window)))
			_, _ = clock.ScheduleAfter(at, "farm-burst-like", func(cl *simclock.Clock) {
				_ = f.store.AddLike(u, o.Page, cl.Now())
			})
		}
	}
}

// scheduleTrickle spreads the deliverers' likes evenly over the order's
// full duration at random times of day (BoostLikes's stealthy pacing).
func (f *Farm) scheduleTrickle(clock *simclock.Clock, r *rand.Rand, o Order, users []socialnet.UserID) {
	days := o.DurationDays
	perDay := len(users) / days
	i := 0
	for d := 0; d < days && i < len(users); d++ {
		n := perDay
		if d == days-1 {
			n = len(users) - i
		} else {
			// Small jitter so the daily increments aren't flat.
			n += r.Intn(5) - 2
			if n < 0 {
				n = 0
			}
			if i+n > len(users) {
				n = len(users) - i
			}
		}
		for j := 0; j < n; j++ {
			u := users[i]
			i++
			at := o.StartDelay + time.Duration(d)*24*time.Hour + time.Duration(r.Int63n(int64(24*time.Hour)))
			_, _ = clock.ScheduleAfter(at, "farm-trickle-like", func(cl *simclock.Clock) {
				_ = f.store.AddLike(u, o.Page, cl.Now())
			})
		}
	}
}

// UsedAccounts returns the accounts this farm has delivered with so far,
// in ID order.
func (f *Farm) UsedAccounts() []socialnet.UserID {
	out := make([]socialnet.UserID, 0, len(f.usage.counts))
	for u := range f.usage.counts {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
