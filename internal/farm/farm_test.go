package farm

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/accounts"
	"repro/internal/simclock"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

var t0 = time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

type world struct {
	r      *rand.Rand
	st     *socialnet.Store
	pop    *socialnet.Population
	clock  *simclock.Clock
	cohort *accounts.Cohort
}

func newWorld(t *testing.T, seed int64, poolSize int, countries *stats.Categorical) *world {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	st := socialnet.NewStore()
	spec := socialnet.DefaultPopulationSpec()
	spec.NumUsers = 200
	spec.NumAmbientPages = 300
	pop, err := socialnet.GeneratePopulation(r, st, spec)
	if err != nil {
		t.Fatal(err)
	}
	cspec := accounts.CohortSpec{
		Name: "pool", Size: poolSize,
		Kind:              socialnet.KindFarmBot,
		Operator:          "op",
		CountryMix:        countries,
		Profile:           socialnet.GlobalFacebookProfile(),
		FriendsPublicFrac: 0.5, SearchableFrac: 0,
		Topology: accounts.TopologySpec{
			Kind: accounts.TopologyIslands, InternalPairFrac: 0.1, TripletFrac: 0.2,
			DeclaredMedian: 150, DeclaredSigma: 0.8,
		},
		Cover:     accounts.CoverSpec{LikeMedian: 50, LikeSigma: 0.8, MaxLikes: 200},
		CreatedAt: t0,
	}
	cohort, err := accounts.Build(r, st, pop, cspec)
	if err != nil {
		t.Fatal(err)
	}
	return &world{r: r, st: st, pop: pop, clock: simclock.New(t0), cohort: cohort}
}

func usaTurkey() *stats.Categorical {
	return stats.MustCategorical(
		[]string{socialnet.CountryUSA, socialnet.CountryTurkey}, []float64{0.5, 0.5})
}

func (w *world) page(t *testing.T) socialnet.PageID {
	t.Helper()
	p, err := w.st.AddPage(socialnet.Page{Name: "honeypot", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBurstOrderDeliversOnTime(t *testing.T) {
	w := newWorld(t, 1, 400, usaTurkey())
	f, err := New(w.r, w.st, Config{Name: "SF", Mode: ModeBurst}, w.cohort, nil)
	if err != nil {
		t.Fatal(err)
	}
	page := w.page(t)
	err = f.PlaceOrder(w.clock, Order{
		Campaign: "SF-ALL", Page: page, Quantity: 300, DeliverCount: 300,
		DurationDays: 3, Bursts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.clock.Drain(0)
	if got := w.st.LikeCountOfPage(page); got != 300 {
		t.Fatalf("delivered %d likes, want 300", got)
	}
	// All likes within the first ~2.5 days (bursts fall in a 36h window
	// plus up to 2h of burst width).
	for _, lk := range w.st.LikesOfPage(page) {
		if lk.At.Sub(t0) > 60*time.Hour {
			t.Fatalf("burst like at %v, too late", lk.At.Sub(t0))
		}
	}
}

func TestBurstLikesAreDense(t *testing.T) {
	w := newWorld(t, 2, 500, usaTurkey())
	f, _ := New(w.r, w.st, Config{Name: "SF", Mode: ModeBurst}, w.cohort, nil)
	page := w.page(t)
	if err := f.PlaceOrder(w.clock, Order{
		Campaign: "X", Page: page, Quantity: 400, DurationDays: 3, Bursts: 1,
	}); err != nil {
		t.Fatal(err)
	}
	w.clock.Drain(0)
	likes := w.st.LikesOfPage(page)
	if len(likes) != 400 {
		t.Fatalf("likes = %d", len(likes))
	}
	span := likes[len(likes)-1].At.Sub(likes[0].At)
	if span > 2*time.Hour {
		t.Fatalf("single burst spans %v, want <=2h", span)
	}
}

func TestTrickleOrderSpreadsLikes(t *testing.T) {
	w := newWorld(t, 3, 500, usaTurkey())
	f, _ := New(w.r, w.st, Config{Name: "BL", Mode: ModeTrickle}, w.cohort, nil)
	page := w.page(t)
	if err := f.PlaceOrder(w.clock, Order{
		Campaign: "BL-USA", Page: page, Quantity: 300, DurationDays: 15,
	}); err != nil {
		t.Fatal(err)
	}
	w.clock.Drain(0)
	likes := w.st.LikesOfPage(page)
	if len(likes) != 300 {
		t.Fatalf("likes = %d", len(likes))
	}
	// Count likes per day; no day should dominate.
	perDay := map[int]int{}
	for _, lk := range likes {
		perDay[int(lk.At.Sub(t0)/(24*time.Hour))]++
	}
	if len(perDay) < 12 {
		t.Fatalf("trickle hit only %d days, want ~15", len(perDay))
	}
	for d, n := range perDay {
		if n > 60 {
			t.Fatalf("day %d got %d likes — too bursty for trickle", d, n)
		}
	}
}

func TestInactiveOrder(t *testing.T) {
	w := newWorld(t, 4, 100, usaTurkey())
	f, _ := New(w.r, w.st, Config{Name: "MS", Mode: ModeBurst}, w.cohort, nil)
	page := w.page(t)
	err := f.PlaceOrder(w.clock, Order{
		Campaign: "MS-ALL", Page: page, Quantity: 100, DurationDays: 5, Inactive: true,
	})
	if !errors.Is(err, ErrInactive) {
		t.Fatalf("err = %v, want ErrInactive", err)
	}
	w.clock.Drain(0)
	if got := w.st.LikeCountOfPage(page); got != 0 {
		t.Fatalf("inactive order delivered %d likes", got)
	}
}

func TestTargetingSelectsCountry(t *testing.T) {
	w := newWorld(t, 5, 600, usaTurkey())
	f, _ := New(w.r, w.st, Config{Name: "AL", Mode: ModeBurst}, w.cohort, nil)
	page := w.page(t)
	if err := f.PlaceOrder(w.clock, Order{
		Campaign: "AL-USA", Page: page, Quantity: 200, DurationDays: 3,
		TargetCountry: socialnet.CountryUSA,
	}); err != nil {
		t.Fatal(err)
	}
	w.clock.Drain(0)
	for _, lk := range w.st.LikesOfPage(page) {
		u, _ := w.st.User(lk.User)
		if u.Country != socialnet.CountryUSA {
			t.Fatalf("USA order delivered from %s", u.Country)
		}
	}
}

func TestIgnoreTargetingDeliversAnyway(t *testing.T) {
	turkeyOnly := stats.MustCategorical([]string{socialnet.CountryTurkey}, []float64{1})
	w := newWorld(t, 6, 400, turkeyOnly)
	f, _ := New(w.r, w.st, Config{Name: "SF", Mode: ModeBurst, IgnoreTargeting: true}, w.cohort, nil)
	page := w.page(t)
	if err := f.PlaceOrder(w.clock, Order{
		Campaign: "SF-USA", Page: page, Quantity: 200, DurationDays: 3,
		TargetCountry: socialnet.CountryUSA,
	}); err != nil {
		t.Fatal(err)
	}
	w.clock.Drain(0)
	turkish := 0
	for _, lk := range w.st.LikesOfPage(page) {
		u, _ := w.st.User(lk.User)
		if u.Country == socialnet.CountryTurkey {
			turkish++
		}
	}
	if turkish != 200 {
		t.Fatalf("SF should deliver Turkish likes for a USA order: %d/200", turkish)
	}
}

func TestFallbackWhenNoCountryMatch(t *testing.T) {
	turkeyOnly := stats.MustCategorical([]string{socialnet.CountryTurkey}, []float64{1})
	w := newWorld(t, 7, 300, turkeyOnly)
	// Honest targeting, but pool has no USA accounts: falls back to the
	// whole pool rather than failing.
	f, _ := New(w.r, w.st, Config{Name: "X", Mode: ModeBurst}, w.cohort, nil)
	page := w.page(t)
	if err := f.PlaceOrder(w.clock, Order{
		Campaign: "X-USA", Page: page, Quantity: 100, DurationDays: 3,
		TargetCountry: socialnet.CountryUSA,
	}); err != nil {
		t.Fatal(err)
	}
	w.clock.Drain(0)
	if got := w.st.LikeCountOfPage(page); got != 100 {
		t.Fatalf("fallback delivered %d likes", got)
	}
}

func TestRotationMinimizesOverlap(t *testing.T) {
	w := newWorld(t, 8, 500, usaTurkey())
	f, _ := New(w.r, w.st, Config{Name: "SF", Mode: ModeBurst, RotateAccounts: true}, w.cohort, nil)
	p1, p2 := w.page(t), w.page(t)
	if err := f.PlaceOrder(w.clock, Order{Campaign: "A", Page: p1, Quantity: 200, DurationDays: 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.PlaceOrder(w.clock, Order{Campaign: "B", Page: p2, Quantity: 200, DurationDays: 3}); err != nil {
		t.Fatal(err)
	}
	w.clock.Drain(0)
	likers1 := map[socialnet.UserID]bool{}
	for _, lk := range w.st.LikesOfPage(p1) {
		likers1[lk.User] = true
	}
	overlap := 0
	for _, lk := range w.st.LikesOfPage(p2) {
		if likers1[lk.User] {
			overlap++
		}
	}
	// 200+200 from 500 with rotation: overlap should be ~0.
	if overlap > 5 {
		t.Fatalf("rotation overlap = %d, want ~0", overlap)
	}
}

func TestReuseBiasCreatesOverlap(t *testing.T) {
	w := newWorld(t, 9, 600, usaTurkey())
	f, _ := New(w.r, w.st, Config{Name: "ALMS", Mode: ModeBurst, RotateAccounts: true}, w.cohort, nil)
	p1, p2 := w.page(t), w.page(t)
	if err := f.PlaceOrder(w.clock, Order{Campaign: "AL", Page: p1, Quantity: 300, DurationDays: 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.PlaceOrder(w.clock, Order{
		Campaign: "MS", Page: p2, Quantity: 100, DurationDays: 3, ReuseBias: 0.6,
	}); err != nil {
		t.Fatal(err)
	}
	w.clock.Drain(0)
	likers1 := map[socialnet.UserID]bool{}
	for _, lk := range w.st.LikesOfPage(p1) {
		likers1[lk.User] = true
	}
	overlap := 0
	for _, lk := range w.st.LikesOfPage(p2) {
		if likers1[lk.User] {
			overlap++
		}
	}
	if overlap < 50 || overlap > 70 {
		t.Fatalf("reuse overlap = %d, want ≈60", overlap)
	}
}

func TestSharedUsageAcrossFarms(t *testing.T) {
	w := newWorld(t, 10, 600, usaTurkey())
	usage := NewUsage()
	al, _ := New(w.r, w.st, Config{Name: "AL", Mode: ModeBurst, RotateAccounts: true}, w.cohort, usage)
	ms, _ := New(w.r, w.st, Config{Name: "MS", Mode: ModeBurst, RotateAccounts: true}, w.cohort, usage)
	p1, p2 := w.page(t), w.page(t)
	if err := al.PlaceOrder(w.clock, Order{Campaign: "AL", Page: p1, Quantity: 300, DurationDays: 3}); err != nil {
		t.Fatal(err)
	}
	if err := ms.PlaceOrder(w.clock, Order{
		Campaign: "MS", Page: p2, Quantity: 100, DurationDays: 3, ReuseBias: 0.5,
	}); err != nil {
		t.Fatal(err)
	}
	w.clock.Drain(0)
	likers1 := map[socialnet.UserID]bool{}
	for _, lk := range w.st.LikesOfPage(p1) {
		likers1[lk.User] = true
	}
	overlap := 0
	for _, lk := range w.st.LikesOfPage(p2) {
		if likers1[lk.User] {
			overlap++
		}
	}
	// MS's reuse bias pulls from AL's accounts because usage is shared.
	if overlap < 40 {
		t.Fatalf("cross-farm overlap = %d, want ≈50", overlap)
	}
}

func TestBiasLowFriendsSelectsCheapAccounts(t *testing.T) {
	w := newWorld(t, 11, 600, usaTurkey())
	f, _ := New(w.r, w.st, Config{Name: "MS", Mode: ModeBurst}, w.cohort, nil)
	pBias, pPlain := w.page(t), w.page(t)
	if err := f.PlaceOrder(w.clock, Order{
		Campaign: "biased", Page: pBias, Quantity: 100, DurationDays: 3, BiasLowFriends: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.PlaceOrder(w.clock, Order{
		Campaign: "plain", Page: pPlain, Quantity: 100, DurationDays: 3,
	}); err != nil {
		t.Fatal(err)
	}
	w.clock.Drain(0)
	median := func(p socialnet.PageID) float64 {
		var xs []float64
		for _, lk := range w.st.LikesOfPage(p) {
			xs = append(xs, float64(w.st.DeclaredFriendCount(lk.User)))
		}
		m, err := stats.Median(xs)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	mb, mp := median(pBias), median(pPlain)
	if mb >= mp {
		t.Fatalf("biased median %v should be below plain median %v", mb, mp)
	}
}

func TestOrderValidation(t *testing.T) {
	w := newWorld(t, 12, 50, usaTurkey())
	f, _ := New(w.r, w.st, Config{Name: "X", Mode: ModeBurst}, w.cohort, nil)
	page := w.page(t)
	bad := []Order{
		{Page: page, Quantity: 10, DurationDays: 3},                                        // no campaign
		{Campaign: "c", Page: page, Quantity: 0, DurationDays: 3},                          // no quantity
		{Campaign: "c", Page: page, Quantity: 10, DeliverCount: -1, DurationDays: 3},       // negative deliver
		{Campaign: "c", Page: page, Quantity: 10, DurationDays: 0},                         // no duration
		{Campaign: "c", Page: page, Quantity: 10, DurationDays: 3, StartDelay: -time.Hour}, // negative delay
		{Campaign: "c", Page: page, Quantity: 10, DurationDays: 3, ReuseBias: 1.5},         // bad bias
		{Campaign: "c", Page: page, Quantity: 10, DurationDays: 3, Bursts: 11},             // too many bursts
		{Campaign: "c", Page: page, Quantity: 10, DurationDays: 3, BurstSpreadDays: -1},    // negative spread
	}
	for i, o := range bad {
		if err := f.PlaceOrder(w.clock, o); err == nil {
			t.Fatalf("order %d accepted", i)
		}
	}
	if err := f.PlaceOrder(w.clock, Order{Campaign: "c", Page: 9999, Quantity: 10, DurationDays: 3}); err == nil {
		t.Fatal("missing page accepted")
	}
}

func TestPoolDrained(t *testing.T) {
	w := newWorld(t, 13, 50, usaTurkey())
	f, _ := New(w.r, w.st, Config{Name: "X", Mode: ModeBurst}, w.cohort, nil)
	page := w.page(t)
	err := f.PlaceOrder(w.clock, Order{Campaign: "big", Page: page, Quantity: 100, DurationDays: 3})
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("err = %v, want ErrDrained", err)
	}
}

func TestNewValidation(t *testing.T) {
	w := newWorld(t, 14, 50, usaTurkey())
	if _, err := New(w.r, w.st, Config{}, w.cohort, nil); err == nil {
		t.Fatal("farm without name accepted")
	}
	if _, err := New(w.r, w.st, Config{Name: "X"}, nil, nil); err == nil {
		t.Fatal("farm without pool accepted")
	}
}

func TestUsedAccountsTracksDeliverers(t *testing.T) {
	w := newWorld(t, 15, 200, usaTurkey())
	f, _ := New(w.r, w.st, Config{Name: "X", Mode: ModeBurst}, w.cohort, nil)
	page := w.page(t)
	if err := f.PlaceOrder(w.clock, Order{Campaign: "c", Page: page, Quantity: 50, DurationDays: 3}); err != nil {
		t.Fatal(err)
	}
	used := f.UsedAccounts()
	if len(used) != 50 {
		t.Fatalf("used = %d, want 50", len(used))
	}
	for i := 1; i < len(used); i++ {
		if used[i] <= used[i-1] {
			t.Fatal("UsedAccounts not sorted")
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeBurst.String() != "burst" || ModeTrickle.String() != "trickle" {
		t.Fatal("mode strings")
	}
}

// TestDeliveryExactlyOnceProperty: for random seeds and modes, an order
// delivers exactly DeliverCount likes, each from a distinct account,
// none from terminated accounts, all timestamped within the order span.
func TestDeliveryExactlyOnceProperty(t *testing.T) {
	f := func(seed int64, burstMode bool) bool {
		w := newWorld(t, seed, 300, usaTurkey())
		mode := ModeTrickle
		if burstMode {
			mode = ModeBurst
		}
		fm, err := New(w.r, w.st, Config{Name: "P", Mode: mode}, w.cohort, nil)
		if err != nil {
			return false
		}
		page, err := w.st.AddPage(socialnet.Page{Name: "p", Honeypot: true})
		if err != nil {
			return false
		}
		want := 50 + int(seed%97+97)%97 // 50..146, deterministic per seed
		if err := fm.PlaceOrder(w.clock, Order{
			Campaign: "prop", Page: page, Quantity: want, DurationDays: 10,
		}); err != nil {
			return false
		}
		w.clock.Drain(0)
		likes := w.st.LikesOfPage(page)
		if len(likes) != want {
			return false
		}
		seen := map[socialnet.UserID]bool{}
		for _, lk := range likes {
			if seen[lk.User] {
				return false
			}
			seen[lk.User] = true
			if lk.At.Before(t0) || lk.At.After(t0.Add(12*24*time.Hour)) {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f, 25); err != nil {
		t.Fatal(err)
	}
}

// quickCheck runs a reduced-count property check (full testing/quick is
// overkill for world-building properties).
func quickCheck(f func(int64, bool) bool, n int) error {
	for i := 0; i < n; i++ {
		if !f(int64(i*31+7), i%2 == 0) {
			return errors.New("property violated")
		}
	}
	return nil
}
