// Package simclock provides a deterministic discrete-event simulation clock.
//
// The measurement study in the paper spans real weeks (15-day campaigns,
// up to 22 days of monitoring, plus a follow-up sweep a month later). The
// reproduction replays those weeks in virtual time: components schedule
// events on a Clock, and the owner advances time by draining the event
// queue. Events fire in timestamp order; ties break by insertion order, so
// a run is fully deterministic.
package simclock

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Event is a scheduled callback. The callback receives the Clock so it can
// schedule follow-up events (e.g. a monitor re-arming itself).
type Event struct {
	At   time.Time
	Name string
	Fn   func(c *Clock)

	seq   uint64
	index int
	dead  bool
}

// Handle identifies a scheduled event and allows cancellation.
type Handle struct {
	ev *Event
}

// Cancel removes the event from the queue if it has not fired yet.
// It reports whether the event was still pending.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.dead {
		return false
	}
	h.ev.dead = true
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool { return h.ev != nil && !h.ev.dead && h.ev.index >= 0 }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].At.Equal(q[j].At) {
		return q[i].At.Before(q[j].At)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Clock is a virtual clock with an event queue. It is not safe for
// concurrent use; simulations are single-threaded over virtual time and
// use real goroutines only inside individual event handlers.
type Clock struct {
	now   time.Time
	queue eventQueue
	seq   uint64
	fired uint64
}

// ErrPast is returned when scheduling an event before the current virtual time.
var ErrPast = errors.New("simclock: scheduling in the past")

// New returns a Clock starting at the given instant.
func New(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// Len returns the number of pending (non-cancelled) events.
func (c *Clock) Len() int {
	n := 0
	for _, ev := range c.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Fired returns the total number of events that have executed.
func (c *Clock) Fired() uint64 { return c.fired }

// ScheduleAt registers fn to run at the absolute virtual instant at.
func (c *Clock) ScheduleAt(at time.Time, name string, fn func(*Clock)) (Handle, error) {
	if at.Before(c.now) {
		return Handle{}, fmt.Errorf("%w: at=%s now=%s (%s)", ErrPast, at, c.now, name)
	}
	ev := &Event{At: at, Name: name, Fn: fn, seq: c.seq}
	c.seq++
	heap.Push(&c.queue, ev)
	return Handle{ev: ev}, nil
}

// ScheduleAfter registers fn to run d after the current virtual time.
func (c *Clock) ScheduleAfter(d time.Duration, name string, fn func(*Clock)) (Handle, error) {
	if d < 0 {
		return Handle{}, fmt.Errorf("%w: negative delay %s (%s)", ErrPast, d, name)
	}
	return c.ScheduleAt(c.now.Add(d), name, fn)
}

// Every schedules fn to run now+d, then every d thereafter, until the
// returned Ticker is stopped or fn returns false.
func (c *Clock) Every(d time.Duration, name string, fn func(*Clock) bool) (*Ticker, error) {
	if d <= 0 {
		return nil, fmt.Errorf("simclock: non-positive period %s (%s)", d, name)
	}
	t := &Ticker{clock: c, period: d, name: name, fn: fn}
	if err := t.arm(); err != nil {
		return nil, err
	}
	return t, nil
}

// Ticker is a periodic event created by Every.
type Ticker struct {
	clock   *Clock
	period  time.Duration
	name    string
	fn      func(*Clock) bool
	handle  Handle
	stopped bool
}

func (t *Ticker) arm() error {
	h, err := t.clock.ScheduleAfter(t.period, t.name, func(c *Clock) {
		if t.stopped {
			return
		}
		if !t.fn(c) {
			t.stopped = true
			return
		}
		// Re-arm. Error is impossible: the delay is positive.
		_ = t.arm()
	})
	if err != nil {
		return err
	}
	t.handle = h
	return nil
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.handle.Cancel()
}

// Period returns the ticker's interval.
func (t *Ticker) Period() time.Duration { return t.period }

// Reset changes the ticker period. The currently pending tick is
// rescheduled to fire the new period after the current virtual time.
func (t *Ticker) Reset(d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("simclock: non-positive period %s (%s)", d, t.name)
	}
	t.period = d
	if !t.stopped && t.handle.Pending() {
		t.handle.Cancel()
		return t.arm()
	}
	return nil
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (c *Clock) Step() bool {
	for c.queue.Len() > 0 {
		ev := heap.Pop(&c.queue).(*Event)
		if ev.dead {
			continue
		}
		ev.dead = true
		c.now = ev.At
		c.fired++
		ev.Fn(c)
		return true
	}
	return false
}

// RunUntil executes all events with timestamps <= deadline, then advances
// the clock to the deadline. It returns the number of events executed.
func (c *Clock) RunUntil(deadline time.Time) int {
	n := 0
	for {
		ev := c.peek()
		if ev == nil || ev.At.After(deadline) {
			break
		}
		c.Step()
		n++
	}
	if deadline.After(c.now) {
		c.now = deadline
	}
	return n
}

// RunFor advances the clock by d, executing due events. It returns the
// number of events executed.
func (c *Clock) RunFor(d time.Duration) int { return c.RunUntil(c.now.Add(d)) }

// Drain executes events until the queue is empty or limit events have run
// (limit <= 0 means no limit). It returns the number executed.
func (c *Clock) Drain(limit int) int {
	n := 0
	for c.Step() {
		n++
		if limit > 0 && n >= limit {
			break
		}
	}
	return n
}

func (c *Clock) peek() *Event {
	for c.queue.Len() > 0 {
		ev := c.queue[0]
		if !ev.dead {
			return ev
		}
		heap.Pop(&c.queue)
	}
	return nil
}

// NextAt returns the timestamp of the next pending event, and false when
// the queue is empty.
func (c *Clock) NextAt() (time.Time, bool) {
	ev := c.peek()
	if ev == nil {
		return time.Time{}, false
	}
	return ev.At, true
}
