package simclock

import (
	"testing"
	"time"
)

var t0 = time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

func TestNowStartsAtOrigin(t *testing.T) {
	c := New(t0)
	if !c.Now().Equal(t0) {
		t.Fatalf("Now() = %v, want %v", c.Now(), t0)
	}
}

func TestScheduleAtOrdering(t *testing.T) {
	c := New(t0)
	var order []string
	add := func(d time.Duration, name string) {
		if _, err := c.ScheduleAfter(d, name, func(*Clock) { order = append(order, name) }); err != nil {
			t.Fatalf("ScheduleAfter(%v): %v", d, err)
		}
	}
	add(3*time.Hour, "c")
	add(1*time.Hour, "a")
	add(2*time.Hour, "b")
	c.Drain(0)
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	c := New(t0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := c.ScheduleAfter(time.Hour, "tie", func(*Clock) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v, want ascending insertion order", order)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	c := New(t0)
	if _, err := c.ScheduleAt(t0.Add(-time.Second), "past", func(*Clock) {}); err == nil {
		t.Fatal("scheduling in the past should fail")
	}
	if _, err := c.ScheduleAfter(-time.Second, "past", func(*Clock) {}); err == nil {
		t.Fatal("negative delay should fail")
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	c := New(t0)
	var seen time.Time
	_, err := c.ScheduleAfter(90*time.Minute, "probe", func(cl *Clock) { seen = cl.Now() })
	if err != nil {
		t.Fatal(err)
	}
	c.Step()
	want := t0.Add(90 * time.Minute)
	if !seen.Equal(want) {
		t.Fatalf("event saw now=%v, want %v", seen, want)
	}
}

func TestCancel(t *testing.T) {
	c := New(t0)
	fired := false
	h, err := c.ScheduleAfter(time.Hour, "x", func(*Clock) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if !h.Pending() {
		t.Fatal("handle should be pending before cancel")
	}
	if !h.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if h.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	c.Drain(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunUntilExecutesDueAndAdvances(t *testing.T) {
	c := New(t0)
	count := 0
	for i := 1; i <= 5; i++ {
		if _, err := c.ScheduleAfter(time.Duration(i)*time.Hour, "e", func(*Clock) { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	n := c.RunUntil(t0.Add(3 * time.Hour))
	if n != 3 || count != 3 {
		t.Fatalf("RunUntil executed %d (count %d), want 3", n, count)
	}
	if !c.Now().Equal(t0.Add(3 * time.Hour)) {
		t.Fatalf("Now() = %v, want deadline", c.Now())
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2 remaining", got)
	}
}

func TestRunForRelativeWindow(t *testing.T) {
	c := New(t0)
	count := 0
	if _, err := c.ScheduleAfter(30*time.Minute, "e", func(*Clock) { count++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ScheduleAfter(2*time.Hour, "e", func(*Clock) { count++ }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Hour)
	if count != 1 {
		t.Fatalf("count = %d after 1h window, want 1", count)
	}
	c.RunFor(2 * time.Hour)
	if count != 2 {
		t.Fatalf("count = %d after second window, want 2", count)
	}
}

func TestEveryTicksAndStops(t *testing.T) {
	c := New(t0)
	ticks := 0
	tk, err := c.Every(2*time.Hour, "monitor", func(*Clock) bool {
		ticks++
		return ticks < 4
	})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(24 * time.Hour)
	if ticks != 4 {
		t.Fatalf("ticks = %d, want 4 (self-stopped)", ticks)
	}
	tk.Stop() // idempotent
	c.RunFor(24 * time.Hour)
	if ticks != 4 {
		t.Fatalf("ticker fired after stop: ticks = %d", ticks)
	}
}

func TestEveryStopExternally(t *testing.T) {
	c := New(t0)
	ticks := 0
	tk, err := c.Every(time.Hour, "m", func(*Clock) bool { ticks++; return true })
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(3 * time.Hour)
	tk.Stop()
	c.RunFor(10 * time.Hour)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
}

func TestEveryReset(t *testing.T) {
	c := New(t0)
	var at []time.Duration
	tk, err := c.Every(time.Hour, "m", func(cl *Clock) bool {
		at = append(at, cl.Now().Sub(t0))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Hour) // first tick at 1h
	if err := tk.Reset(6 * time.Hour); err != nil {
		t.Fatal(err)
	}
	c.RunFor(12 * time.Hour)
	// ticks at 1h, 7h, 13h
	want := []time.Duration{time.Hour, 7 * time.Hour, 13 * time.Hour}
	if len(at) != len(want) {
		t.Fatalf("ticks at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("ticks at %v, want %v", at, want)
		}
	}
}

func TestEveryRejectsBadPeriod(t *testing.T) {
	c := New(t0)
	if _, err := c.Every(0, "bad", func(*Clock) bool { return true }); err == nil {
		t.Fatal("Every(0) should fail")
	}
	tk, err := c.Every(time.Hour, "ok", func(*Clock) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Reset(-time.Hour); err == nil {
		t.Fatal("Reset(-1h) should fail")
	}
}

func TestEventsScheduledFromEvents(t *testing.T) {
	c := New(t0)
	var depth3 time.Time
	_, err := c.ScheduleAfter(time.Hour, "1", func(cl *Clock) {
		_, _ = cl.ScheduleAfter(time.Hour, "2", func(cl *Clock) {
			_, _ = cl.ScheduleAfter(time.Hour, "3", func(cl *Clock) { depth3 = cl.Now() })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Drain(0)
	if !depth3.Equal(t0.Add(3 * time.Hour)) {
		t.Fatalf("chained event at %v, want %v", depth3, t0.Add(3*time.Hour))
	}
}

func TestDrainLimit(t *testing.T) {
	c := New(t0)
	count := 0
	for i := 0; i < 10; i++ {
		if _, err := c.ScheduleAfter(time.Duration(i+1)*time.Minute, "e", func(*Clock) { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Drain(4); n != 4 || count != 4 {
		t.Fatalf("Drain(4) ran %d events (count %d), want 4", n, count)
	}
}

func TestNextAt(t *testing.T) {
	c := New(t0)
	if _, ok := c.NextAt(); ok {
		t.Fatal("empty queue should report no next event")
	}
	h, err := c.ScheduleAfter(time.Hour, "a", func(*Clock) {})
	if err != nil {
		t.Fatal(err)
	}
	if at, ok := c.NextAt(); !ok || !at.Equal(t0.Add(time.Hour)) {
		t.Fatalf("NextAt = %v,%v", at, ok)
	}
	h.Cancel()
	if _, ok := c.NextAt(); ok {
		t.Fatal("cancelled event should not be reported as next")
	}
}

func TestFiredCounter(t *testing.T) {
	c := New(t0)
	for i := 0; i < 7; i++ {
		if _, err := c.ScheduleAfter(time.Duration(i+1)*time.Minute, "e", func(*Clock) {}); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain(0)
	if c.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", c.Fired())
	}
}

func TestLenExcludesCancelled(t *testing.T) {
	c := New(t0)
	h1, _ := c.ScheduleAfter(time.Hour, "a", func(*Clock) {})
	_, _ = c.ScheduleAfter(2*time.Hour, "b", func(*Clock) {})
	h1.Cancel()
	if got := c.Len(); got != 1 {
		t.Fatalf("Len() = %d, want 1", got)
	}
}
