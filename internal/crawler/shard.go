package crawler

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"slices"

	"repro/internal/analysis"
	"repro/internal/socialnet"
)

// Roster sharding splits one study across N crawler processes: each
// process owns the campaign pages (and the slice of the baseline
// sample) whose stable hash lands on its shard index, crawls only
// those, and exports its sink snapshot plus the roster it observed.
// `likefraud merge` (MergeShardExports) folds the exports back into
// the single-process tables. The hash is a pure function of the ID —
// no coordination, no assignment state — so any process can compute
// the full partition and restarts keep their slice.

// ShardOf maps an ID to a shard index in [0, n) by FNV-1a over the
// ID's little-endian bytes. n <= 1 means a single shard.
func ShardOf(id int64, n int) int {
	if n <= 1 {
		return 0
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(id))
	h := fnv.New64a()
	h.Write(b[:])
	return int(h.Sum64() % uint64(n))
}

// ShardPages returns the pages owned by shard (0-based) of n, in input
// order.
func ShardPages(pages []int64, shard, n int) []int64 {
	var out []int64
	for _, p := range pages {
		if ShardOf(p, n) == shard {
			out = append(out, p)
		}
	}
	return out
}

// ShardUsers returns the users owned by shard (0-based) of n, in input
// order — the baseline-sample partition.
func ShardUsers(users []socialnet.UserID, shard, n int) []socialnet.UserID {
	var out []socialnet.UserID
	for _, u := range users {
		if ShardOf(int64(u), n) == shard {
			out = append(out, u)
		}
	}
	return out
}

// ShardExport is one sharded crawl's contribution to the merged §4
// tables: the TRUE roster (full active flags, not the shard-masked
// ones the shard's own analyzer ran with), the full baseline sample,
// and the shard's sink snapshot.
type ShardExport struct {
	Version int `json:"version"`
	// Shard and Of identify the partition slice (Shard is 0-based).
	Shard int `json:"shard"`
	Of    int `json:"of"`
	// Campaigns is the full roster with true active flags.
	Campaigns []analysis.CrawlCampaign `json:"campaigns"`
	// Baseline is the full baseline sample (empty when the crawl had
	// none); each shard crawls only its ShardUsers slice of it.
	Baseline []socialnet.UserID `json:"baseline"`
	// Sink is the shard's AnalysisSink.Snapshot.
	Sink json.RawMessage `json:"sink"`
}

// shardExportVersion is the current ShardExport wire version.
const shardExportVersion = 1

// NewShardExport packages a shard's sink snapshot for merging.
func NewShardExport(shard, of int, campaigns []analysis.CrawlCampaign, baseline []socialnet.UserID, sink []byte) ShardExport {
	return ShardExport{
		Version:   shardExportVersion,
		Shard:     shard,
		Of:        of,
		Campaigns: campaigns,
		Baseline:  baseline,
		Sink:      sink,
	}
}

// MergeShardExports validates that the exports form one complete
// partition over one roster and folds them into a fresh analyzer built
// with the true active flags and full baseline. The returned analyzer
// is ready for Tables(); under the ownership discipline (each shard's
// analyzer activates only owned campaigns) the result is byte-identical
// to a single-process crawl of the same world.
func MergeShardExports(exports []ShardExport) (*analysis.CrawlAnalyzer, error) {
	if len(exports) == 0 {
		return nil, fmt.Errorf("crawler: merge: no shard exports")
	}
	first := exports[0]
	if first.Version != shardExportVersion {
		return nil, fmt.Errorf("crawler: merge: export version %d, want %d", first.Version, shardExportVersion)
	}
	if first.Of != len(exports) {
		return nil, fmt.Errorf("crawler: merge: %d exports for a %d-shard crawl", len(exports), first.Of)
	}
	seen := make([]bool, first.Of)
	for _, e := range exports {
		if e.Version != first.Version || e.Of != first.Of {
			return nil, fmt.Errorf("crawler: merge: export shard %d disagrees on partition (%d/%d vs %d/%d)", e.Shard, e.Version, e.Of, first.Version, first.Of)
		}
		if e.Shard < 0 || e.Shard >= first.Of {
			return nil, fmt.Errorf("crawler: merge: shard index %d outside [0,%d)", e.Shard, first.Of)
		}
		if seen[e.Shard] {
			return nil, fmt.Errorf("crawler: merge: shard %d exported twice", e.Shard)
		}
		seen[e.Shard] = true
		if !slices.Equal(e.Campaigns, first.Campaigns) {
			return nil, fmt.Errorf("crawler: merge: shard %d crawled a different roster", e.Shard)
		}
		if !slices.Equal(e.Baseline, first.Baseline) {
			return nil, fmt.Errorf("crawler: merge: shard %d carries a different baseline sample", e.Shard)
		}
	}
	analyzer := analysis.NewCrawlAnalyzer(first.Campaigns, first.Baseline)
	sink := NewAnalysisSink(analyzer.Aggregators()...)
	for _, e := range exports {
		if err := sink.MergeSnapshot(e.Sink); err != nil {
			return nil, fmt.Errorf("crawler: merge shard %d: %w", e.Shard, err)
		}
	}
	return analyzer, nil
}
