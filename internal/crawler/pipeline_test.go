package crawler

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/socialnet"
)

// liveWriteWorld serves a page with nLikers likers through a wrapper
// that injects a brand-new liker with a PRE-study timestamp before
// serving each of the first maxInject like-stream requests — the §3
// situation: campaigns still delivering while the crawler paginates.
func liveWriteWorld(t *testing.T, nLikers, maxInject int) (*httptest.Server, socialnet.PageID, func() []socialnet.UserID) {
	t.Helper()
	st := socialnet.NewStore()
	page, err := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	var likers []socialnet.UserID
	for i := 0; i < nLikers; i++ {
		u := st.AddUser(socialnet.User{Country: "USA", FriendsPublic: true})
		_ = st.AddLike(u, page, t0.Add(time.Duration(i)*time.Minute))
		likers = append(likers, u)
	}
	inner := api.NewServer(st, "")
	var injected atomic.Int32
	var mu sync.Mutex
	likesPath := fmt.Sprintf("/api/page/%d/likes", page)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == likesPath {
			if n := injected.Add(1); int(n) <= maxInject {
				mu.Lock()
				u := st.AddUser(socialnet.User{Country: "Turkey", FriendsPublic: true})
				_ = st.AddLike(u, page, t0.Add(-time.Duration(n)*time.Hour))
				likers = append(likers, u)
				mu.Unlock()
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, page, func() []socialnet.UserID {
		mu.Lock()
		defer mu.Unlock()
		return append([]socialnet.UserID(nil), likers...)
	}
}

// TestLiveWritesCursorVsOffset is the acceptance test for the paging
// bug this PR fixes: likes injected concurrently with the crawl make
// offset paging return duplicates (every later offset shifts), while
// cursor paging returns the exact final liker set — no dups, no gaps.
func TestLiveWritesCursorVsOffset(t *testing.T) {
	// Offset mode: the time-sorted view shifts under the crawler.
	srv, page, _ := liveWriteWorld(t, 25, 3)
	c := newClient(t, srv)
	c.cfg.PageSize = 10
	likes, err := c.PageLikes(context.Background(), int64(page))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	for _, lk := range likes {
		counts[lk.User]++
	}
	dup := false
	for _, n := range counts {
		if n > 1 {
			dup = true
		}
	}
	if !dup {
		t.Fatalf("offset paging under live writes returned no duplicates (%d likes of %d users) — the snapshot-only caveat no longer reproduces", len(likes), len(counts))
	}

	// Cursor mode on an identical world: exactly-once delivery.
	srv2, page2, likers2Fn := liveWriteWorld(t, 25, 3)
	c2 := newClient(t, srv2)
	c2.cfg.PageSize = 10
	seen := map[int64]int{}
	cursor := 0
	for {
		batch, next, err := c2.PageLikesSince(context.Background(), int64(page2), cursor)
		if err != nil {
			t.Fatal(err)
		}
		for _, lk := range batch {
			seen[lk.User]++
		}
		cursor = next
		if len(batch) == 0 {
			break
		}
	}
	likers2 := likers2Fn()
	if len(seen) != len(likers2) {
		t.Fatalf("cursor paging saw %d likers, want %d", len(seen), len(likers2))
	}
	for _, u := range likers2 {
		if seen[int64(u)] != 1 {
			t.Fatalf("user %d delivered %d times under cursor paging", u, seen[int64(u)])
		}
	}
}

// TestClientConcurrentGets exercises the shared client from many
// goroutines — the data race on last/Requests/Retries this PR fixes is
// caught by -race here.
func TestClientConcurrentGets(t *testing.T) {
	srv, _, page, _, _ := testWorld(t)
	c := newClient(t, srv)
	c.cfg.MinInterval = 200 * time.Microsecond
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := c.Page(context.Background(), int64(page)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Requests(); got != 40 {
		t.Fatalf("requests = %d, want 40", got)
	}
}

// TestRetryAfterHonoredOnce pins the 429 fix: the server's Retry-After
// hint is spent on exactly one sleep and never folded into the
// exponential backoff (which used to double it on every retry).
func TestRetryAfterHonoredOnce(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"id":1,"name":"p","honeypot":false,"like_count":0}`))
	}))
	defer srv.Close()
	cfg := DefaultConfig(srv.URL)
	cfg.MinInterval = 0
	cfg.Backoff = time.Millisecond
	cfg.MaxRetries = 5
	cfg.RetryAfterCap = 100 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Page(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if c.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", c.Retries())
	}
	// Two hints of 100ms each: ~200ms. The old compounding behavior
	// slept hint then 2*hint: ~300ms.
	if elapsed < 190*time.Millisecond {
		t.Fatalf("elapsed %v: Retry-After hint not honored", elapsed)
	}
	if elapsed > 280*time.Millisecond {
		t.Fatalf("elapsed %v: Retry-After hint compounded into backoff", elapsed)
	}
}

// TestStaleTotalDoesNotTruncate pins pagination termination: a stale
// reported total (the list grew since) must not make the client drop
// the tail — only a short window ends the loop.
func TestStaleTotalDoesNotTruncate(t *testing.T) {
	const actual = 23
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		offset := 0
		fmt.Sscanf(r.URL.Query().Get("offset"), "%d", &offset)
		limit := 10
		end := min(offset+limit, actual)
		var sb strings.Builder
		sb.WriteString(`{"total":5,"offset":0,"likes":[`) // total is stale
		for i := offset; i < end; i++ {
			if i > offset {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, `{"user":%d,"at":"2014-03-12T00:00:00Z"}`, i+1)
		}
		sb.WriteString(`]}`)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(sb.String()))
	}))
	defer srv.Close()
	cfg := DefaultConfig(srv.URL)
	cfg.MinInterval = 0
	cfg.PageSize = 10
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	likes, err := c.PageLikes(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(likes) != actual {
		t.Fatalf("crawled %d likes, want %d (stale total truncated the tail)", len(likes), actual)
	}
}

// pipelineWorld builds a store with two honeypot pages sharing some
// likers (cross-campaign dedup) and a mix of public/private friend
// lists, served without injection.
func pipelineWorld(t *testing.T, nLikers int) (*httptest.Server, []int64, []socialnet.UserID) {
	t.Helper()
	st := socialnet.NewStore()
	pageA, err := st.AddPage(socialnet.Page{Name: "hpA", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	pageB, err := st.AddPage(socialnet.Page{Name: "hpB", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	var likers []socialnet.UserID
	for i := 0; i < nLikers; i++ {
		u := st.AddUser(socialnet.User{Country: "USA", FriendsPublic: i%3 != 0})
		if i%4 == 0 {
			f := st.AddUser(socialnet.User{})
			_ = st.Friend(u, f)
		}
		_ = st.AddLike(u, pageA, t0.Add(time.Duration(i)*time.Minute))
		if i%2 == 0 { // every other liker hits both campaigns
			_ = st.AddLike(u, pageB, t0.Add(time.Duration(i)*time.Minute+time.Hour))
		}
		likers = append(likers, u)
	}
	srv := httptest.NewServer(api.NewServer(st, ""))
	t.Cleanup(srv.Close)
	return srv, []int64{int64(pageA), int64(pageB)}, likers
}

func collectPipeline(t *testing.T, srv *httptest.Server, pages []int64, workers int, resume *Checkpoint) (*Client, *Pipeline, []LikerProfile) {
	t.Helper()
	c := newClient(t, srv)
	p := NewPipeline(c, PipelineConfig{Workers: workers, BatchSize: 7}, resume)
	var mu sync.Mutex
	var got []LikerProfile
	if err := p.Crawl(context.Background(), pages, func(_ int64, prof LikerProfile) error {
		mu.Lock()
		got = append(got, prof)
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return c, p, got
}

// TestPipelineCrawlsEachProfileOnce: likers shared by two campaigns are
// emitted exactly once, with friends/privacy/page-likes intact.
func TestPipelineCrawlsEachProfileOnce(t *testing.T) {
	srv, pages, likers := pipelineWorld(t, 30)
	_, _, got := collectPipeline(t, srv, pages, 4, nil)
	if len(got) != len(likers) {
		t.Fatalf("emitted %d profiles, want %d", len(got), len(likers))
	}
	byID := map[int64]LikerProfile{}
	for _, prof := range got {
		if _, dup := byID[prof.User.ID]; dup {
			t.Fatalf("user %d emitted twice", prof.User.ID)
		}
		byID[prof.User.ID] = prof
	}
	for i, u := range likers {
		prof, ok := byID[int64(u)]
		if !ok {
			t.Fatalf("liker %d never emitted", u)
		}
		wantHidden := i%3 == 0
		if prof.FriendsHidden != wantHidden {
			t.Fatalf("liker %d hidden = %v, want %v", u, prof.FriendsHidden, wantHidden)
		}
		wantLikes := 1
		if i%2 == 0 {
			wantLikes = 2
		}
		if len(prof.PageLikes) != wantLikes {
			t.Fatalf("liker %d page likes = %d, want %d", u, len(prof.PageLikes), wantLikes)
		}
	}
}

// TestPipelineWorkerCountsAgree: the emitted profile set is identical
// for 1, 4, and 16 workers — concurrency affects order only.
func TestPipelineWorkerCountsAgree(t *testing.T) {
	srv, pages, _ := pipelineWorld(t, 40)
	var baseline []int64
	for _, workers := range []int{1, 4, 16} {
		_, _, got := collectPipeline(t, srv, pages, workers, nil)
		ids := make([]int64, len(got))
		for i, prof := range got {
			ids[i] = prof.User.ID
		}
		slices.Sort(ids)
		if baseline == nil {
			baseline = ids
			continue
		}
		if !slices.Equal(ids, baseline) {
			t.Fatalf("workers=%d emitted %v, want %v", workers, ids, baseline)
		}
	}
}

// TestPipelineResumeRefetchesNothing: resuming from a completed crawl's
// checkpoint costs one like-stream probe per page and zero profile
// fetches; resuming from a mid-crawl checkpoint collects exactly the
// remainder.
func TestPipelineResumeRefetchesNothing(t *testing.T) {
	srv, pages, likers := pipelineWorld(t, 30)
	_, p, _ := collectPipeline(t, srv, pages, 4, nil)
	ck := p.Checkpoint()
	if len(ck.Crawled) != len(likers) {
		t.Fatalf("checkpoint crawled = %d, want %d", len(ck.Crawled), len(likers))
	}

	// Full resume: nothing to do.
	c2, _, got2 := collectPipeline(t, srv, pages, 4, &ck)
	if len(got2) != 0 {
		t.Fatalf("resume emitted %d profiles, want 0", len(got2))
	}
	if reqs := c2.Requests(); reqs != len(pages) {
		t.Fatalf("resume issued %d requests, want %d (one tail probe per page)", reqs, len(pages))
	}

	// Partial resume: first half of page A's stream already done.
	half := Checkpoint{PageCursors: map[int64]int{pages[0]: 15}}
	done := map[int64]bool{}
	for _, u := range likers[:15] { // stream order == insertion order here
		half.Crawled = append(half.Crawled, int64(u))
		done[int64(u)] = true
	}
	_, _, got3 := collectPipeline(t, srv, pages, 4, &half)
	if len(got3) != len(likers)-15 {
		t.Fatalf("partial resume emitted %d, want %d", len(got3), len(likers)-15)
	}
	for _, prof := range got3 {
		if done[prof.User.ID] {
			t.Fatalf("partial resume refetched already-crawled user %d", prof.User.ID)
		}
	}
}

// TestPipelinePicksUpLiveWrites: likes landing while the pipeline
// crawls their page are collected before Crawl returns.
func TestPipelinePicksUpLiveWrites(t *testing.T) {
	srv, page, likersFn := liveWriteWorld(t, 20, 4)
	c := newClient(t, srv)
	p := NewPipeline(c, PipelineConfig{Workers: 4, BatchSize: 5}, nil)
	seen := map[int64]int{}
	if err := p.Crawl(context.Background(), []int64{int64(page)}, func(_ int64, prof LikerProfile) error {
		seen[prof.User.ID]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	likers := likersFn()
	if len(seen) != len(likers) {
		t.Fatalf("pipeline saw %d likers, want %d (including live-injected)", len(seen), len(likers))
	}
	for _, u := range likers {
		if seen[int64(u)] != 1 {
			t.Fatalf("user %d emitted %d times", u, seen[int64(u)])
		}
	}
}

// TestPipelineEmitErrorAborts: an emit error stops the crawl, and the
// rejected profile is NOT marked crawled — a resume re-delivers every
// profile the consumer failed to accept.
func TestPipelineEmitErrorAborts(t *testing.T) {
	srv, pages, likers := pipelineWorld(t, 20)
	c := newClient(t, srv)
	p := NewPipeline(c, PipelineConfig{Workers: 4, BatchSize: 5}, nil)
	sinkFull := errors.New("sink full")
	accepted := map[int64]bool{}
	budget := 7
	err := p.Crawl(context.Background(), pages, func(_ int64, prof LikerProfile) error {
		if len(accepted) >= budget {
			return sinkFull
		}
		accepted[prof.User.ID] = true
		return nil
	})
	if !errors.Is(err, sinkFull) {
		t.Fatalf("crawl error = %v, want sink full", err)
	}
	ck := p.Checkpoint()
	if len(ck.Crawled) != budget {
		t.Fatalf("checkpoint crawled = %d, want %d (only accepted profiles)", len(ck.Crawled), budget)
	}
	for _, u := range ck.Crawled {
		if !accepted[u] {
			t.Fatalf("user %d checkpointed but never accepted by the consumer", u)
		}
	}
	// Resume delivers exactly the remainder.
	_, _, rest := collectPipeline(t, srv, pages, 4, &ck)
	if len(rest)+budget != len(likers) {
		t.Fatalf("resume emitted %d, want %d", len(rest), len(likers)-budget)
	}
	for _, prof := range rest {
		if accepted[prof.User.ID] {
			t.Fatalf("resume re-delivered accepted user %d", prof.User.ID)
		}
	}
}

// TestPipelineRespectsSharedLimiter: 8 workers behind one client never
// exceed the politeness budget — total wall clock is bounded below by
// (requests-1) * MinInterval.
func TestPipelineRespectsSharedLimiter(t *testing.T) {
	srv, pages, _ := pipelineWorld(t, 10)
	c := newClient(t, srv)
	c.cfg.MinInterval = 3 * time.Millisecond
	p := NewPipeline(c, PipelineConfig{Workers: 8, BatchSize: 4}, nil)
	start := time.Now()
	if err := p.Crawl(context.Background(), pages, func(int64, LikerProfile) error { return nil }); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	floor := time.Duration(c.Requests()-1) * c.cfg.MinInterval
	if elapsed < floor*9/10 {
		t.Fatalf("crawl of %d requests took %v, below politeness floor %v", c.Requests(), elapsed, floor)
	}
}

// TestPipelineCheckpointCallback: OnCheckpoint snapshots are internally
// consistent and monotonic.
func TestPipelineCheckpointCallback(t *testing.T) {
	srv, pages, _ := pipelineWorld(t, 12)
	c := newClient(t, srv)
	var snaps []Checkpoint
	p := NewPipeline(c, PipelineConfig{
		Workers: 4, BatchSize: 4,
		OnCheckpoint: func(ck Checkpoint) { snaps = append(snaps, ck) },
	}, nil)
	if err := p.Crawl(context.Background(), pages, func(int64, LikerProfile) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(snaps) < len(pages) {
		t.Fatalf("got %d checkpoint callbacks, want >= %d", len(snaps), len(pages))
	}
	prev := 0
	for _, ck := range snaps {
		if len(ck.Crawled) < prev {
			t.Fatalf("crawled set shrank: %d -> %d", prev, len(ck.Crawled))
		}
		prev = len(ck.Crawled)
		if !slices.IsSorted(ck.Crawled) {
			t.Fatalf("checkpoint crawled set not sorted: %v", ck.Crawled)
		}
	}
}
