package crawler

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/analysis"
	"repro/internal/api"
)

// smallWindowClient builds a client with a small PageSize so a modest
// page splits into several cursor windows — the multi-window-in-flight
// regime the global queue's checkpointing has to survive.
func smallWindowClient(t *testing.T, srv *httptest.Server, pageSize int) *Client {
	t.Helper()
	cfg := DefaultConfig(srv.URL)
	cfg.MinInterval = 0
	cfg.PageSize = pageSize
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestQueueTablesSchedulingOrderIndependent: the crawl-to-analysis
// tables are byte-identical across worker counts, queue scheduling
// orders (FIFO vs LIFO), probe-ahead depths, and the sequential
// fallback engine — concurrency and scheduling affect wall clock only,
// never the result.
func TestQueueTablesSchedulingOrderIndependent(t *testing.T) {
	variants := []struct {
		name string
		cfg  PipelineConfig
	}{
		{"queue-w1", PipelineConfig{Workers: 1, BatchSize: 4}},
		{"queue-w4", PipelineConfig{Workers: 4, BatchSize: 4}},
		{"queue-w16", PipelineConfig{Workers: 16, BatchSize: 4}},
		{"queue-lifo", PipelineConfig{Workers: 4, BatchSize: 4, lifo: true}},
		{"queue-probe1", PipelineConfig{Workers: 4, BatchSize: 4, ProbeAhead: 1}},
		{"queue-probe2-w16", PipelineConfig{Workers: 16, BatchSize: 2, ProbeAhead: 2}},
		{"sequential", PipelineConfig{Workers: 4, BatchSize: 4, Sequential: true}},
	}
	var want []byte
	for _, v := range variants {
		srv, roster, pages := sinkWorld(t)
		cl := smallWindowClient(t, srv, 7) // 30 likers → ≥5 windows per page
		analyzer := analysis.NewCrawlAnalyzer(roster, nil)
		cfg := v.cfg
		cfg.Sink = NewAnalysisSink(analyzer.Aggregators()...)
		pipe := NewPipeline(cl, cfg, nil)
		if err := pipe.Crawl(context.Background(), pages, func(int64, LikerProfile) error { return nil }); err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		tables, err := analyzer.Tables()
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		got, err := tables.MarshalStable()
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if want == nil {
			want = got
		} else if string(got) != string(want) {
			t.Fatalf("%s: tables differ from baseline:\n%s\nvs\n%s", v.name, got, want)
		}
	}
}

// durableSink counts every observation and round-trips its counts
// through Snapshot/Restore, so a kill/resume chain can prove the
// exactly-once contract end to end: no profile or like event observed
// twice (double-feed) and none missing (starvation).
type durableSink struct {
	Profiles map[int64]int  `json:"profiles"`
	Likes    map[string]int `json:"likes"`
}

func newDurableSink() *durableSink {
	return &durableSink{Profiles: map[int64]int{}, Likes: map[string]int{}}
}

func (d *durableSink) ObserveProfile(_ int64, prof LikerProfile) error {
	d.Profiles[prof.User.ID]++
	return nil
}

func (d *durableSink) ObserveLikes(page int64, likes []api.LikeDoc) error {
	for _, lk := range likes {
		d.Likes[fmt.Sprintf("%d/%d/%s", page, lk.User, lk.At)]++
	}
	return nil
}

func (d *durableSink) Snapshot() ([]byte, error) { return json.Marshal(d) }
func (d *durableSink) Restore(data []byte) error { return json.Unmarshal(data, d) }

// TestQueueKillResumeMidWindows kills a multi-page-concurrent crawl at
// arbitrary points — with several pages mid-window — JSON-round-trips
// the checkpoint (including its in-flight Windows), and resumes into a
// restored sink, twice, before letting the third leg finish. The
// chained result must match an uninterrupted crawl observation for
// observation: every profile exactly once, every like event exactly
// once.
func TestQueueKillResumeMidWindows(t *testing.T) {
	// Uninterrupted baseline.
	srv, _, pages := sinkWorld(t)
	base := newDurableSink()
	pipe := NewPipeline(smallWindowClient(t, srv, 7), PipelineConfig{Workers: 4, BatchSize: 3, Sink: base}, nil)
	if err := pipe.Crawl(context.Background(), pages, func(int64, LikerProfile) error { return nil }); err != nil {
		t.Fatal(err)
	}

	leg := func(srv *httptest.Server, resume *Checkpoint, killAfter int32) *Checkpoint {
		t.Helper()
		sink := newDurableSink()
		if resume != nil && resume.Sink != nil {
			if err := sink.Restore(resume.Sink); err != nil {
				t.Fatal(err)
			}
		}
		cl := smallWindowClient(t, srv, 7)
		pipe := NewPipeline(cl, PipelineConfig{Workers: 4, BatchSize: 3, Sink: sink, ProbeAhead: 3}, resume)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var emitted atomic.Int32
		err := pipe.Crawl(ctx, pages, func(int64, LikerProfile) error {
			if killAfter > 0 && emitted.Add(1) == killAfter {
				cancel()
			}
			return nil
		})
		if killAfter > 0 && err == nil {
			t.Fatalf("kill after %d emits: crawl finished anyway", killAfter)
		}
		if killAfter == 0 && err != nil {
			t.Fatal(err)
		}
		ck := pipe.Checkpoint()
		if err := pipe.SnapshotErr(); err != nil {
			t.Fatal(err)
		}
		// The checkpoint must survive persistence: round-trip through
		// JSON exactly as a crawl data dir would.
		raw, err := json.Marshal(ck)
		if err != nil {
			t.Fatal(err)
		}
		var out Checkpoint
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return &out
	}

	srv2, _, _ := sinkWorld(t) // identical deterministic world, fresh server
	sawWindows := false
	ck := leg(srv2, nil, 5)
	if len(ck.Windows) > 0 {
		sawWindows = true
	}
	ck = leg(srv2, ck, 9)
	if len(ck.Windows) > 0 {
		sawWindows = true
	}
	final := leg(srv2, ck, 0)
	if len(final.Windows) != 0 {
		t.Fatalf("finished crawl checkpoint still holds %d open windows", len(final.Windows))
	}
	if !sawWindows {
		t.Fatal("no kill point caught an in-flight window; kill points too late to exercise Windows round-trip")
	}

	got := newDurableSink()
	if err := got.Restore(final.Sink); err != nil {
		t.Fatal(err)
	}
	if len(got.Profiles) != len(base.Profiles) {
		t.Fatalf("chained crawl observed %d profiles, baseline %d", len(got.Profiles), len(base.Profiles))
	}
	for u, n := range got.Profiles {
		if n != 1 {
			t.Fatalf("profile %d observed %d times across kill/resume chain", u, n)
		}
		if base.Profiles[u] != 1 {
			t.Fatalf("profile %d not in baseline", u)
		}
	}
	if len(got.Likes) != len(base.Likes) {
		t.Fatalf("chained crawl observed %d like events, baseline %d", len(got.Likes), len(base.Likes))
	}
	for k, n := range got.Likes {
		if n != 1 {
			t.Fatalf("like event %s observed %d times across kill/resume chain", k, n)
		}
		if base.Likes[k] != 1 {
			t.Fatalf("like event %s not in baseline", k)
		}
	}
}

// TestQueueResumeFoldsClosableRestoredWindow: a checkpoint can hold an
// open window whose Pending users were all crawled before the kill
// (via another page, or because the snapshot landed right after the
// window's last batch retired) — the window is closable the moment it
// is restored, with no profile batch left to trigger the close. A
// resumed crawl of a then-quiet page (its next probe hits the tail)
// must still fold the window's likes into the sink and advance the
// cursor; a crawl that instead returns success with the window
// stranded drops those like events on every subsequent resume.
func TestQueueResumeFoldsClosableRestoredWindow(t *testing.T) {
	srv, _, pages := sinkWorld(t)
	page := pages[0]
	cl := smallWindowClient(t, srv, 7)

	// Read the page's full like stream, as a prior crawl leg would have.
	var likes []api.LikeDoc
	cursor := 0
	for {
		win, next, err := cl.PageLikesWindow(context.Background(), page, cursor)
		if err != nil {
			t.Fatal(err)
		}
		if len(win) == 0 {
			break
		}
		likes = append(likes, win...)
		cursor = next
	}
	if len(likes) == 0 {
		t.Fatal("page has no likes")
	}

	// The scenario's checkpoint: the whole stream is one open window,
	// every liker already crawled (profile observed by the sink),
	// Pending empty — but the like events not yet folded and the
	// cursor still at the window's start.
	sink := newDurableSink()
	seen := map[int64]bool{}
	var crawled []int64
	for _, lk := range likes {
		if !seen[lk.User] {
			seen[lk.User] = true
			crawled = append(crawled, lk.User)
			sink.Profiles[lk.User] = 1
		}
	}
	snap, err := sink.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{
		PageCursors: map[int64]int{page: 0},
		Crawled:     crawled,
		Sink:        snap,
		Windows:     []WindowState{{Page: page, Start: 0, Next: cursor, Likes: likes}},
	}

	// ProbeAhead 0 (default cap) resumes with a tail probe queued;
	// ProbeAhead 1 leaves the restored window with no task at all —
	// both must fold it.
	for _, probeAhead := range []int{0, 1} {
		resumed := newDurableSink()
		if err := resumed.Restore(snap); err != nil {
			t.Fatal(err)
		}
		pipe := NewPipeline(smallWindowClient(t, srv, 7),
			PipelineConfig{Workers: 4, BatchSize: 3, Sink: resumed, ProbeAhead: probeAhead}, ck)
		var emitted atomic.Int32
		if err := pipe.Crawl(context.Background(), []int64{page},
			func(int64, LikerProfile) error { emitted.Add(1); return nil }); err != nil {
			t.Fatalf("probeAhead=%d: %v", probeAhead, err)
		}
		if n := emitted.Load(); n != 0 {
			t.Fatalf("probeAhead=%d: refetched %d already-crawled profiles", probeAhead, n)
		}
		for _, lk := range likes {
			key := fmt.Sprintf("%d/%d/%s", page, lk.User, lk.At)
			if resumed.Likes[key] != 1 {
				t.Fatalf("probeAhead=%d: like event %s folded %d times, want 1", probeAhead, key, resumed.Likes[key])
			}
		}
		final := pipe.Checkpoint()
		if len(final.Windows) != 0 {
			t.Fatalf("probeAhead=%d: %d windows still open after successful crawl", probeAhead, len(final.Windows))
		}
		if got := final.PageCursors[page]; got < cursor {
			t.Fatalf("probeAhead=%d: cursor = %d, want ≥ %d", probeAhead, got, cursor)
		}
	}
}

// TestQueueCheckpointMidCrawlResumesExactly: a checkpoint captured by
// the OnCheckpoint hook mid-crawl (not at the kill point — an earlier,
// arbitrary window close) also resumes to the complete result: the
// Windows it carries refetch only what was pending.
func TestQueueCheckpointMidCrawlResumesExactly(t *testing.T) {
	srv, _, pages := sinkWorld(t)
	sink := newDurableSink()
	var fromHook *Checkpoint
	var closes int
	cfg := PipelineConfig{Workers: 8, BatchSize: 2, Sink: sink, ProbeAhead: 4}
	cfg.OnCheckpoint = func(ck Checkpoint) {
		closes++
		if closes == 3 { // an early close, plenty still in flight
			fromHook = &ck
		}
	}
	pipe := NewPipeline(smallWindowClient(t, srv, 5), cfg, nil)
	if err := pipe.Crawl(context.Background(), pages, func(int64, LikerProfile) error { return nil }); err != nil {
		t.Fatal(err)
	}
	full, err := sink.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if fromHook == nil {
		t.Fatal("crawl closed fewer than 3 windows; shrink PageSize")
	}

	srv2, _, _ := sinkWorld(t)
	sink2 := newDurableSink()
	if err := sink2.Restore(fromHook.Sink); err != nil {
		t.Fatal(err)
	}
	pipe2 := NewPipeline(smallWindowClient(t, srv2, 5), PipelineConfig{Workers: 8, BatchSize: 2, Sink: sink2}, fromHook)
	if err := pipe2.Crawl(context.Background(), pages, func(int64, LikerProfile) error { return nil }); err != nil {
		t.Fatal(err)
	}
	resumed, err := sink2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var a, b durableSink
	if err := json.Unmarshal(full, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(resumed, &b); err != nil {
		t.Fatal(err)
	}
	for u, n := range b.Profiles {
		if n != 1 || a.Profiles[u] != 1 {
			t.Fatalf("profile %d: resumed count %d, baseline count %d", u, n, a.Profiles[u])
		}
	}
	if len(a.Profiles) != len(b.Profiles) || len(a.Likes) != len(b.Likes) {
		t.Fatalf("resumed observations (%d profiles, %d likes) differ from uninterrupted (%d, %d)",
			len(b.Profiles), len(b.Likes), len(a.Profiles), len(a.Likes))
	}
	for k, n := range b.Likes {
		if n != 1 || a.Likes[k] != 1 {
			t.Fatalf("like event %s: resumed count %d, baseline count %d", k, n, a.Likes[k])
		}
	}
}
