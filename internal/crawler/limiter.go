package crawler

import (
	"sync"
	"time"
)

// aimdPacer is the adaptive politeness limiter: an AIMD controller
// over the inter-request spacing. While the server keeps answering,
// the spacing shrinks additively (step per window consecutive
// successes) toward floor — the crawl speeds up to whatever rate the
// server demonstrably absorbs. On a 429 the spacing stretches
// multiplicatively (×factor, clamped to ceil) and the success streak
// resets — one congestion signal undoes many cautious probes, the
// classic TCP-style asymmetry that makes the controller converge to
// just under the server's limit instead of oscillating through it.
//
// The controller is deterministic: the spacing after any sequence of
// outcomes is a pure function of that sequence and the initial
// parameters. It draws no randomness of its own (the client's seeded
// retry jitter stays in the retry path), so tests can replay an
// outcome sequence and assert the exact schedule.
//
// Retry-After hints keep their existing contract — spent on exactly
// one retry sleep, never folded into backoff — and are deliberately
// NOT folded into the spacing either: the pacer reacts to the 429
// event, not the hint's magnitude, so a hint can never be honored
// twice (once as a sleep, once as a rate).
type aimdPacer struct {
	mu sync.Mutex
	// cur is the current inter-request spacing, always within
	// [floor, ceil].
	cur time.Duration
	// last is the most recently reserved send slot.
	last time.Time
	// streak counts consecutive successes since the last adjustment.
	streak int

	floor  time.Duration // fastest spacing the controller may reach
	ceil   time.Duration // slowest spacing a backoff may stretch to
	step   time.Duration // additive shrink per completed success window
	factor float64       // multiplicative stretch per throttle signal
	window int           // consecutive successes per additive shrink
}

// Adaptive-limiter defaults, used when the corresponding Config field
// is zero.
const (
	defaultAdaptiveCeil   = 2 * time.Second
	defaultAdaptiveStep   = time.Millisecond
	defaultAdaptiveWindow = 8
)

const defaultAdaptiveBackoff = 2.0

// newAIMDPacer builds the controller from a validated Config. The
// starting spacing is MinInterval clamped into [floor, ceil]; an
// unset floor defaults to MinInterval itself, so by default the
// controller only ever backs OFF from the configured politeness and
// returns to it — reaching beyond MinInterval requires the operator
// to grant an explicit lower floor.
func newAIMDPacer(cfg Config) *aimdPacer {
	floor := cfg.AdaptiveFloor
	if floor <= 0 {
		floor = cfg.MinInterval
	}
	ceil := cfg.AdaptiveCeil
	if ceil <= 0 {
		ceil = defaultAdaptiveCeil
	}
	if ceil < floor {
		ceil = floor
	}
	step := cfg.AdaptiveStep
	if step <= 0 {
		step = defaultAdaptiveStep
	}
	factor := cfg.AdaptiveBackoff
	if factor < 1 {
		factor = defaultAdaptiveBackoff
	}
	window := cfg.AdaptiveWindow
	if window < 1 {
		window = defaultAdaptiveWindow
	}
	cur := cfg.MinInterval
	if cur < floor {
		cur = floor
	}
	if cur > ceil {
		cur = ceil
	}
	return &aimdPacer{cur: cur, floor: floor, ceil: ceil, step: step, factor: factor, window: window}
}

// reserve claims the next politeness slot at the current spacing and
// returns it; the caller sleeps until the slot without holding any
// lock. Concurrent callers get distinct slots exactly one spacing
// apart — the same reservation discipline the fixed limiter uses.
func (p *aimdPacer) reserve(now time.Time) time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	slot := p.last.Add(p.cur)
	if slot.Before(now) {
		slot = now
	}
	p.last = slot
	return slot
}

// outcome feeds one request's result into the controller: success
// (any non-throttle response) or throttle (a 429). Transport errors
// and 5xx responses are neutral — they signal server trouble, not
// congestion, and belong to the retry path.
func (p *aimdPacer) outcome(success bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if success {
		p.streak++
		if p.streak >= p.window {
			p.streak = 0
			p.cur -= p.step
			if p.cur < p.floor {
				p.cur = p.floor
			}
		}
		return
	}
	p.streak = 0
	next := time.Duration(float64(p.cur) * p.factor)
	// Multiplying a zero (or sub-step) spacing would stall the
	// backoff at ~zero; re-seed from the additive step so the
	// exponential climb has a foothold.
	if next < p.step {
		next = p.step
	}
	if next > p.ceil {
		next = p.ceil
	}
	p.cur = next
}

// interval reports the current spacing (observability, tests).
func (p *aimdPacer) interval() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}
