package crawler

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/socialnet"
)

var t0 = time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

func testWorld(t *testing.T) (*httptest.Server, *socialnet.Store, socialnet.PageID, socialnet.UserID, socialnet.UserID) {
	t.Helper()
	st := socialnet.NewStore()
	pub := st.AddUser(socialnet.User{FriendsPublic: true, Searchable: true, Country: "USA", DeclaredFriends: 5})
	priv := st.AddUser(socialnet.User{FriendsPublic: false, Country: "Turkey"})
	for i := 0; i < 3; i++ {
		f := st.AddUser(socialnet.User{})
		_ = st.Friend(pub, f)
	}
	page, err := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = st.AddLike(pub, page, t0)
	_ = st.AddLike(priv, page, t0.Add(time.Hour))
	// Some extra page likes for pub.
	for i := 0; i < 450; i++ {
		p, _ := st.AddPage(socialnet.Page{Name: "x"})
		_ = st.AddLike(pub, p, t0.Add(time.Duration(i)*time.Minute))
	}
	srv := httptest.NewServer(api.NewServer(st, "tok"))
	t.Cleanup(srv.Close)
	return srv, st, page, pub, priv
}

func newClient(t *testing.T, srv *httptest.Server) *Client {
	t.Helper()
	cfg := DefaultConfig(srv.URL)
	cfg.MinInterval = 0
	cfg.AdminToken = "tok"
	cfg.PageSize = 100
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPageFetch(t *testing.T) {
	srv, _, page, _, _ := testWorld(t)
	c := newClient(t, srv)
	doc, err := c.Page(context.Background(), int64(page))
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Honeypot || doc.LikeCount != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if _, err := c.Page(context.Background(), 99999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing page err = %v", err)
	}
}

func TestUserLikesPaginated(t *testing.T) {
	srv, _, _, pub, _ := testWorld(t)
	c := newClient(t, srv)
	pages, err := c.UserLikes(context.Background(), int64(pub))
	if err != nil {
		t.Fatal(err)
	}
	// 450 covers + 1 honeypot.
	if len(pages) != 451 {
		t.Fatalf("user likes = %d, want 451", len(pages))
	}
	// Pagination required several requests.
	if c.Requests() < 5 {
		t.Fatalf("requests = %d, want >=5 for pagination", c.Requests())
	}
	seen := map[int64]bool{}
	for _, p := range pages {
		if seen[p] {
			t.Fatalf("duplicate page %d across pagination windows", p)
		}
		seen[p] = true
	}
}

func TestFriendPrivacy(t *testing.T) {
	srv, _, _, pub, priv := testWorld(t)
	c := newClient(t, srv)
	friends, err := c.UserFriends(context.Background(), int64(pub))
	if err != nil {
		t.Fatal(err)
	}
	if len(friends) != 3 {
		t.Fatalf("friends = %d", len(friends))
	}
	if _, err := c.UserFriends(context.Background(), int64(priv)); !errors.Is(err, ErrPrivate) {
		t.Fatalf("private list err = %v", err)
	}
}

func TestCrawlLikers(t *testing.T) {
	srv, _, page, _, _ := testWorld(t)
	c := newClient(t, srv)
	profiles, err := c.CrawlLikers(context.Background(), int64(page))
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	var pubProf, privProf *LikerProfile
	for i := range profiles {
		if profiles[i].User.Country == "USA" {
			pubProf = &profiles[i]
		} else {
			privProf = &profiles[i]
		}
	}
	if pubProf == nil || privProf == nil {
		t.Fatal("profiles missing")
	}
	if pubProf.FriendsHidden || len(pubProf.Friends) != 3 {
		t.Fatalf("public profile = %+v", pubProf)
	}
	if !privProf.FriendsHidden || len(privProf.Friends) != 0 {
		t.Fatalf("private profile = %+v", privProf)
	}
	if len(pubProf.PageLikes) != 451 {
		t.Fatalf("public page likes = %d", len(pubProf.PageLikes))
	}
}

func TestAdminReport(t *testing.T) {
	srv, _, page, _, _ := testWorld(t)
	c := newClient(t, srv)
	rep, err := c.AdminReport(context.Background(), int64(page))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalLikes != 2 {
		t.Fatalf("report = %+v", rep)
	}
	// Wrong token: error (401 is non-retryable).
	cfg := DefaultConfig(srv.URL)
	cfg.MinInterval = 0
	cfg.AdminToken = "wrong"
	bad, _ := New(cfg)
	if _, err := bad.AdminReport(context.Background(), int64(page)); err == nil {
		t.Fatal("wrong token accepted")
	}
}

func TestDirectory(t *testing.T) {
	srv, _, _, _, _ := testWorld(t)
	c := newClient(t, srv)
	doc, err := c.Directory(context.Background(), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Total != 1 {
		t.Fatalf("directory total = %d (only searchable)", doc.Total)
	}
}

func TestRetryOn500(t *testing.T) {
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"id":1,"name":"p","honeypot":false,"like_count":0}`))
	}))
	defer flaky.Close()
	cfg := DefaultConfig(flaky.URL)
	cfg.MinInterval = 0
	cfg.Backoff = time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := c.Page(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "p" {
		t.Fatalf("doc = %+v", doc)
	}
	if c.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", c.Retries())
	}
}

func TestGivesUpAfterMaxRetries(t *testing.T) {
	always500 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer always500.Close()
	cfg := DefaultConfig(always500.URL)
	cfg.MinInterval = 0
	cfg.Backoff = time.Millisecond
	cfg.MaxRetries = 2
	c, _ := New(cfg)
	if _, err := c.Page(context.Background(), 1); err == nil {
		t.Fatal("should give up on persistent 500s")
	}
	if c.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", c.Retries())
	}
}

func TestContextCancellation(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	defer slow.Close()
	cfg := DefaultConfig(slow.URL)
	cfg.MinInterval = 0
	c, _ := New(cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Page(ctx, 1); err == nil {
		t.Fatal("cancelled context should fail")
	}
}

func TestPolitenessSpacing(t *testing.T) {
	var stamps []time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stamps = append(stamps, time.Now())
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"id":1,"name":"p","honeypot":false,"like_count":0}`))
	}))
	defer srv.Close()
	cfg := DefaultConfig(srv.URL)
	cfg.MinInterval = 30 * time.Millisecond
	c, _ := New(cfg)
	for i := 0; i < 3; i++ {
		if _, err := c.Page(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(stamps); i++ {
		if gap := stamps[i].Sub(stamps[i-1]); gap < 25*time.Millisecond {
			t.Fatalf("requests %d gap = %v, want >=30ms politeness", i, gap)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{BaseURL: "http://x", MinInterval: -1},
		{BaseURL: "http://x", MaxRetries: -1},
		{BaseURL: "http://x", PageSize: 0},
		{BaseURL: "http://x", PageSize: api.MaxPageSize + 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

// retryAfter429Server replies 429 with the given Retry-After header
// value once, then 200 with a minimal page doc.
func retryAfter429Server(t *testing.T, header func() string) *httptest.Server {
	t.Helper()
	var n atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			w.Header().Set("Retry-After", header())
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"rate limited"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"id":1,"name":"p","honeypot":false,"like_count":0}`))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestRetryAfterHTTPDatePast: a standards-compliant HTTP-date hint in
// the past means "retry now" — the retry must happen immediately, not
// fall through to exponential backoff (the bug: only delta-seconds
// parsed, so date hints were silently ignored).
func TestRetryAfterHTTPDatePast(t *testing.T) {
	srv := retryAfter429Server(t, func() string {
		return time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	})
	cfg := DefaultConfig(srv.URL)
	cfg.MinInterval = 0
	// A huge backoff proves the date hint (zero wait) was used: if the
	// hint fell through to backoff, the test would stall well past the
	// deadline below.
	cfg.Backoff = 10 * time.Second
	cfg.MaxRetries = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Page(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("past-date hint took %v, want an immediate retry", elapsed)
	}
}

// TestRetryAfterHTTPDateFutureCapped: a far-future HTTP-date is
// honored but clamped to RetryAfterCap, like an oversized
// delta-seconds value.
func TestRetryAfterHTTPDateFutureCapped(t *testing.T) {
	srv := retryAfter429Server(t, func() string {
		return time.Now().Add(time.Hour).UTC().Format(http.TimeFormat)
	})
	cfg := DefaultConfig(srv.URL)
	cfg.MinInterval = 0
	cfg.Backoff = time.Millisecond
	cfg.RetryAfterCap = 60 * time.Millisecond
	cfg.MaxRetries = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Page(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 50*time.Millisecond {
		t.Fatalf("future-date hint waited only %v, want >= ~RetryAfterCap", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("future-date hint waited %v, want clamped to RetryAfterCap", elapsed)
	}
}

// TestParseRetryAfter covers the header grammar directly.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2014, 3, 12, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"120", 120 * time.Second, true},
		{"0", 0, true},
		{"-3", 0, false},
		{"garbage", 0, false},
		{"", 0, false},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0, true},
	}
	for _, tc := range cases {
		got, ok := parseRetryAfter(tc.in, now)
		if ok != tc.ok || got != tc.want {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

// TestRetryWaitCapAndJitter: retryWait must (a) never exceed BackoffCap
// no matter how many attempts pile up — the old unjittered doubling
// overflowed into minutes-long sleeps — (b) draw full jitter from
// [0, ceiling] rather than sleeping in deterministic lockstep, and
// (c) be reproducible for a fixed BackoffSeed.
func TestRetryWaitCapAndJitter(t *testing.T) {
	cfg := DefaultConfig("http://crawl.test")
	cfg.Backoff = 10 * time.Millisecond
	cfg.BackoffCap = 40 * time.Millisecond
	cfg.BackoffSeed = 42
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var waits []time.Duration
	for attempt := 1; attempt <= 50; attempt++ {
		w := c.retryWait(attempt)
		if w < 0 || w > cfg.BackoffCap {
			t.Fatalf("attempt %d: wait %v outside [0, %v]", attempt, w, cfg.BackoffCap)
		}
		if attempt == 1 && w > cfg.Backoff {
			t.Fatalf("first retry waited %v, ceiling is base backoff %v", w, cfg.Backoff)
		}
		waits = append(waits, w)
	}
	allEqual := true
	for _, w := range waits[1:] {
		if w != waits[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		t.Fatal("50 jittered waits all identical — jitter is not being applied")
	}
	// Same seed, fresh client: identical sequence (deterministic tests).
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 50; attempt++ {
		if w := c2.retryWait(attempt); w != waits[attempt-1] {
			t.Fatalf("attempt %d: seed %d not reproducible: %v vs %v", attempt, cfg.BackoffSeed, w, waits[attempt-1])
		}
	}
}

// TestBackoffCapBoundsRetryLatency: with a tight cap, even a long retry
// chain against a dead endpoint finishes quickly. Under the old
// uncapped doubling, 8 retries at 200ms base would sleep ~51s.
func TestBackoffCapBoundsRetryLatency(t *testing.T) {
	always500 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer always500.Close()
	cfg := DefaultConfig(always500.URL)
	cfg.MinInterval = 0
	cfg.MaxRetries = 8
	cfg.Backoff = 200 * time.Millisecond
	cfg.BackoffCap = 5 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Page(context.Background(), 1); err == nil {
		t.Fatal("should give up on persistent 500s")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("8 capped retries took %v; BackoffCap is not bounding the sleeps", elapsed)
	}
}
