package crawler

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/socialnet"
)

// sinkWorld builds a two-campaign world with overlapping likers (the
// AL/MS situation) and extra per-user page likes, served over HTTP.
func sinkWorld(t *testing.T) (*httptest.Server, []analysis.CrawlCampaign, []int64) {
	t.Helper()
	st := socialnet.NewStore()
	pageA, err := st.AddPage(socialnet.Page{Name: "Virtual Electricity (A)", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	pageB, err := st.AddPage(socialnet.Page{Name: "Virtual Electricity (B)", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	var cover []socialnet.PageID
	for i := 0; i < 5; i++ {
		p, _ := st.AddPage(socialnet.Page{Name: "cover"})
		cover = append(cover, p)
	}
	for i := 0; i < 30; i++ {
		u := st.AddUser(socialnet.User{Country: "USA", FriendsPublic: i%2 == 0})
		_ = st.AddLike(u, pageA, t0.Add(time.Duration(i)*time.Minute))
		if i%3 == 0 { // the shared-liker overlap
			_ = st.AddLike(u, pageB, t0.Add(time.Duration(i)*time.Minute+time.Second))
		}
		_ = st.AddLike(u, cover[i%len(cover)], t0.Add(-time.Hour))
	}
	srv := httptest.NewServer(api.NewServer(st, ""))
	t.Cleanup(srv.Close)
	roster := []analysis.CrawlCampaign{
		{ID: "A", Page: pageA, Active: true},
		{ID: "B", Page: pageB, Active: true},
	}
	return srv, roster, []int64{int64(pageA), int64(pageB)}
}

// TestSinkObservationsAreExactlyOnce: across worker counts, the sink
// sees every profile exactly once and every like event exactly once —
// the contract the aggregators' order-insensitive folds rest on.
func TestSinkObservationsAreExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		srv, _, pages := sinkWorld(t)
		cl := newClient(t, srv)
		rec := &recordingSink{}
		pipe := NewPipeline(cl, PipelineConfig{Workers: workers, BatchSize: 4, Sink: rec}, nil)
		if err := pipe.Crawl(context.Background(), pages, func(int64, LikerProfile) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if len(rec.profiles) != 30 {
			t.Fatalf("workers=%d: sink saw %d profiles, want 30 (deduped across campaigns)", workers, len(rec.profiles))
		}
		for u, n := range rec.profiles {
			if n != 1 {
				t.Fatalf("workers=%d: profile %d observed %d times", workers, u, n)
			}
		}
		// 30 likes on A + 10 on B.
		if rec.likes != 40 {
			t.Fatalf("workers=%d: sink saw %d like events, want 40", workers, rec.likes)
		}
	}
}

// recordingSink counts observations.
type recordingSink struct {
	profiles map[int64]int
	likes    int
}

func (r *recordingSink) ObserveProfile(_ int64, prof LikerProfile) error {
	if r.profiles == nil {
		r.profiles = make(map[int64]int)
	}
	r.profiles[prof.User.ID]++
	return nil
}
func (r *recordingSink) ObserveLikes(_ int64, likes []api.LikeDoc) error {
	r.likes += len(likes)
	return nil
}
func (r *recordingSink) Snapshot() ([]byte, error) { return []byte("{}"), nil }
func (r *recordingSink) Restore([]byte) error      { return nil }

// TestAnalysisSinkTablesDeterministicAcrossWorkers: the full
// crawl-to-analysis path produces byte-identical tables for any worker
// count, including a checkpoint/restore in the middle of one of them.
func TestAnalysisSinkTablesDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 4, 16} {
		srv, roster, pages := sinkWorld(t)
		cl := newClient(t, srv)
		analyzer := analysis.NewCrawlAnalyzer(roster, nil)
		sink := NewAnalysisSink(analyzer.Aggregators()...)
		pipe := NewPipeline(cl, PipelineConfig{Workers: workers, BatchSize: 4, Sink: sink}, nil)
		if err := pipe.Crawl(context.Background(), pages, func(int64, LikerProfile) error { return nil }); err != nil {
			t.Fatal(err)
		}
		tables, err := analyzer.Tables()
		if err != nil {
			t.Fatal(err)
		}
		got, err := tables.MarshalStable()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if string(got) != string(want) {
			t.Fatalf("workers=%d tables differ:\n%s\nvs\n%s", workers, got, want)
		}
	}

	// Mid-crawl snapshot → restore into a fresh sink → same bytes.
	srv, roster, pages := sinkWorld(t)
	cl := newClient(t, srv)
	analyzer := analysis.NewCrawlAnalyzer(roster, nil)
	sink := NewAnalysisSink(analyzer.Aggregators()...)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n atomic.Int32
	pipe := NewPipeline(cl, PipelineConfig{Workers: 4, BatchSize: 3, Sink: sink}, nil)
	_ = pipe.Crawl(ctx, pages, func(int64, LikerProfile) error {
		if n.Add(1) == 7 {
			cancel()
		}
		return nil
	})
	ck := pipe.Checkpoint()
	if err := pipe.SnapshotErr(); err != nil {
		t.Fatal(err)
	}
	if ck.Sink == nil {
		t.Fatal("checkpoint has no sink state")
	}
	analyzer2 := analysis.NewCrawlAnalyzer(roster, nil)
	sink2 := NewAnalysisSink(analyzer2.Aggregators()...)
	if err := sink2.Restore(ck.Sink); err != nil {
		t.Fatal(err)
	}
	pipe2 := NewPipeline(cl, PipelineConfig{Workers: 2, BatchSize: 9, Sink: sink2}, &ck)
	if err := pipe2.Crawl(context.Background(), pages, func(int64, LikerProfile) error { return nil }); err != nil {
		t.Fatal(err)
	}
	tables, err := analyzer2.Tables()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tables.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed tables differ:\n%s\nvs\n%s", got, want)
	}
}

// TestClientGzipRoundTrip: the crawler offers gzip explicitly, the API
// compresses large windows, and the client transparently decodes —
// end-to-end through the real client against the real server.
func TestClientGzipRoundTrip(t *testing.T) {
	srv, _, page, pub, _ := testWorld(t)

	// Prove the server actually compresses for this client by watching
	// the wire through a recording proxy.
	var sawGzip atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequest(r.Method, srv.URL+r.URL.String(), nil)
		if err != nil {
			t.Error(err)
			return
		}
		req.Header = r.Header.Clone()
		tr := &http.Transport{DisableCompression: true}
		resp, err := tr.RoundTrip(req)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		if strings.EqualFold(resp.Header.Get("Content-Encoding"), "gzip") {
			sawGzip.Store(true)
		}
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	t.Cleanup(proxy.Close)

	ccfg := DefaultConfig(proxy.URL)
	ccfg.MinInterval = 0
	ccfg.PageSize = 500 // one 451-entry window: comfortably past GzipMinSize
	c, err := New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	// pub has 451 page likes — a >1 KiB window.
	likes, err := c.UserLikes(context.Background(), int64(pub))
	if err != nil {
		t.Fatal(err)
	}
	if len(likes) != 451 {
		t.Fatalf("decoded %d page likes through gzip, want 451", len(likes))
	}
	if !sawGzip.Load() {
		t.Fatal("server never gzip-encoded a response for the crawler")
	}
	_ = page
}
