package crawler

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/socialnet"
)

// TestShardPartitionProperties: the hash partition is a true partition
// (every ID lands on exactly one shard, shards are disjoint, the union
// is the input) and stable (pure function of the ID).
func TestShardPartitionProperties(t *testing.T) {
	pages := make([]int64, 50)
	for i := range pages {
		pages[i] = int64(100 + i*7)
	}
	const n = 3
	total := 0
	seen := make(map[int64]int)
	for s := 0; s < n; s++ {
		for _, p := range ShardPages(pages, s, n) {
			if prev, dup := seen[p]; dup {
				t.Fatalf("page %d owned by shards %d and %d", p, prev, s)
			}
			seen[p] = s
			total++
		}
	}
	if total != len(pages) {
		t.Fatalf("partition covers %d of %d pages", total, len(pages))
	}
	for _, p := range pages {
		if ShardOf(p, n) != seen[p] {
			t.Fatalf("ShardOf(%d) unstable", p)
		}
	}
	if ShardOf(12345, 1) != 0 || ShardOf(12345, 0) != 0 {
		t.Fatal("single-shard crawl must own everything")
	}
	users := []socialnet.UserID{1, 2, 3, 4, 5, 6, 7, 8}
	utotal := 0
	for s := 0; s < n; s++ {
		utotal += len(ShardUsers(users, s, n))
	}
	if utotal != len(users) {
		t.Fatalf("user partition covers %d of %d", utotal, len(users))
	}
}

// shardSink builds a trivial one-campaign export for merge-validation
// tests.
func shardSink(t *testing.T, shard, of int, campaigns []analysis.CrawlCampaign, baseline []socialnet.UserID) ShardExport {
	t.Helper()
	a := analysis.NewCrawlAnalyzer(campaigns, baseline)
	sink := NewAnalysisSink(a.Aggregators()...)
	blob, err := sink.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return NewShardExport(shard, of, campaigns, baseline, blob)
}

func TestMergeShardExportsValidation(t *testing.T) {
	campaigns := []analysis.CrawlCampaign{{ID: "A", Page: 100, Active: true}}
	e0 := shardSink(t, 0, 2, campaigns, nil)
	e1 := shardSink(t, 1, 2, campaigns, nil)

	if _, err := MergeShardExports([]ShardExport{e0, e1}); err != nil {
		t.Fatalf("valid partition refused: %v", err)
	}
	if _, err := MergeShardExports(nil); err == nil {
		t.Fatal("empty export set accepted")
	}
	if _, err := MergeShardExports([]ShardExport{e0}); err == nil {
		t.Fatal("incomplete partition (1 of 2) accepted")
	}
	if _, err := MergeShardExports([]ShardExport{e0, e0}); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	bad := e1
	bad.Campaigns = []analysis.CrawlCampaign{{ID: "B", Page: 101, Active: true}}
	if _, err := MergeShardExports([]ShardExport{e0, bad}); err == nil {
		t.Fatal("mismatched rosters accepted")
	}
	badBase := e1
	badBase.Baseline = []socialnet.UserID{9}
	if _, err := MergeShardExports([]ShardExport{e0, badBase}); err == nil {
		t.Fatal("mismatched baselines accepted")
	}
	badVer := e1
	badVer.Version = 99
	if _, err := MergeShardExports([]ShardExport{e0, badVer}); err == nil {
		t.Fatal("unknown export version accepted")
	}
}
