package crawler

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/socialnet"
)

// benchWorld serves a honeypot page with nLikers likers through a
// throttled stand-in for a remote platform: every request costs `delay`
// of server-side latency, the resource a concurrent crawl overlaps and
// a serial one pays in full.
func benchWorld(b *testing.B, nLikers int, delay time.Duration) (*httptest.Server, socialnet.PageID) {
	b.Helper()
	st := socialnet.NewStore()
	page, err := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
	if err != nil {
		b.Fatal(err)
	}
	base := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)
	for i := 0; i < nLikers; i++ {
		u := st.AddUser(socialnet.User{Country: "USA", FriendsPublic: i%3 != 0})
		_ = st.AddLike(u, page, base.Add(time.Duration(i)*time.Minute))
	}
	inner := api.NewServer(st, "")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(delay)
		inner.ServeHTTP(w, r)
	}))
	b.Cleanup(srv.Close)
	return srv, page
}

func benchClient(b *testing.B, srv *httptest.Server) *Client {
	b.Helper()
	cfg := DefaultConfig(srv.URL)
	cfg.MinInterval = 0
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkCrawlSerial is the baseline: the one-request-chain-per-liker
// client. Each liker costs three sequential round trips (profile,
// friends, page likes), so wall clock scales as likers x latency.
func BenchmarkCrawlSerial(b *testing.B) {
	srv, page := benchWorld(b, 40, 2*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := benchClient(b, srv)
		profiles, err := c.CrawlLikers(context.Background(), int64(page))
		if err != nil {
			b.Fatal(err)
		}
		if len(profiles) != 40 {
			b.Fatalf("profiles = %d", len(profiles))
		}
	}
}

// BenchmarkCrawlPipeline8 crawls the same world through the concurrent
// pipeline: batched profile fetches plus 8 workers overlapping the
// server latency. The batch size keeps all workers busy (batches are a
// worker's unit of work, so fewer batches than workers strands the
// rest). The acceptance bar for this PR is >=2x over
// BenchmarkCrawlSerial; observed is ~6x.
func BenchmarkCrawlPipeline8(b *testing.B) {
	srv, page := benchWorld(b, 40, 2*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPipeline(benchClient(b, srv), PipelineConfig{Workers: 8, BatchSize: 5}, nil)
		n := 0
		if err := p.Crawl(context.Background(), []int64{int64(page)}, func(int64, LikerProfile) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 40 {
			b.Fatalf("profiles = %d", n)
		}
	}
}

// BenchmarkCrawlAnalyze measures the crawl-to-analysis path: the same
// pipeline crawl with the full §4 aggregator family attached as a
// Sink. Comparing against BenchmarkCrawlPipeline8 isolates what the
// streaming analyses add on top of the crawl itself (they fold per
// profile and per window — no post-hoc pass over materialized
// profiles, which is the memory-shape this PR exists for).
func BenchmarkCrawlAnalyze(b *testing.B) {
	srv, page := benchWorld(b, 40, 2*time.Millisecond)
	roster := []analysis.CrawlCampaign{{ID: "BENCH", Page: page, Active: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzer := analysis.NewCrawlAnalyzer(roster, nil)
		sink := NewAnalysisSink(analyzer.Aggregators()...)
		p := NewPipeline(benchClient(b, srv), PipelineConfig{Workers: 8, BatchSize: 5, Sink: sink}, nil)
		n := 0
		if err := p.Crawl(context.Background(), []int64{int64(page)}, func(int64, LikerProfile) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 40 {
			b.Fatalf("profiles = %d", n)
		}
		tables, err := analyzer.Tables()
		if err != nil {
			b.Fatal(err)
		}
		if len(tables.Geo) != 1 || tables.Geo[0].Total != 40 {
			b.Fatalf("geo = %+v", tables.Geo)
		}
	}
}
