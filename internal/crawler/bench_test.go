package crawler

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/socialnet"
)

// Bench roster shape: one busy page plus several quiet ones — the §3
// campaign mix where the global queue earns its keep. A page-sequential
// crawl pays each quiet page's probe+profile latency serially AFTER the
// busy page; the global queue overlaps all of it.
const (
	benchBusyLikers  = 40
	benchQuietPages  = 8
	benchQuietLikers = 2
	benchProfiles    = benchBusyLikers + benchQuietPages*benchQuietLikers
	benchDelay       = 2 * time.Millisecond
)

// benchMixedWorld serves the mixed busy/quiet roster through a
// stand-in for a remote platform: every request costs `delay` of
// server-side latency, the resource a concurrent crawl overlaps and a
// serial one pays in full.
func benchMixedWorld(tb testing.TB, delay time.Duration) (*httptest.Server, []int64) {
	tb.Helper()
	st := socialnet.NewStore()
	base := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)
	var pages []int64
	busy, err := st.AddPage(socialnet.Page{Name: "hp-busy", Honeypot: true})
	if err != nil {
		tb.Fatal(err)
	}
	pages = append(pages, int64(busy))
	for i := 0; i < benchBusyLikers; i++ {
		u := st.AddUser(socialnet.User{Country: "USA", FriendsPublic: i%3 != 0})
		_ = st.AddLike(u, busy, base.Add(time.Duration(i)*time.Minute))
	}
	for q := 0; q < benchQuietPages; q++ {
		p, err := st.AddPage(socialnet.Page{Name: fmt.Sprintf("hp-quiet-%d", q), Honeypot: true})
		if err != nil {
			tb.Fatal(err)
		}
		pages = append(pages, int64(p))
		for i := 0; i < benchQuietLikers; i++ {
			u := st.AddUser(socialnet.User{Country: "Turkey", FriendsPublic: true})
			_ = st.AddLike(u, p, base.Add(time.Duration(q*10+i)*time.Minute))
		}
	}
	inner := api.NewServer(st, "")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(delay)
		inner.ServeHTTP(w, r)
	}))
	tb.Cleanup(srv.Close)
	return srv, pages
}

func benchClient(tb testing.TB, srv *httptest.Server) *Client {
	tb.Helper()
	cfg := DefaultConfig(srv.URL)
	cfg.MinInterval = 0
	c, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// crawlSerialRoster drains the roster with the one-request-chain
// client, page after page: the pre-pipeline baseline.
func crawlSerialRoster(tb testing.TB, srv *httptest.Server, pages []int64) *Client {
	tb.Helper()
	c := benchClient(tb, srv)
	n := 0
	for _, page := range pages {
		profiles, err := c.CrawlLikers(context.Background(), page)
		if err != nil {
			tb.Fatal(err)
		}
		n += len(profiles)
	}
	if n != benchProfiles {
		tb.Fatalf("profiles = %d, want %d", n, benchProfiles)
	}
	return c
}

// crawlEngineRoster drains the roster through the pipeline —
// page-sequential when sequential is set, the global work queue
// otherwise — and returns the client for its request counters.
func crawlEngineRoster(tb testing.TB, srv *httptest.Server, pages []int64, sequential bool) *Client {
	tb.Helper()
	c := benchClient(tb, srv)
	p := NewPipeline(c, PipelineConfig{Workers: 8, BatchSize: 5, Sequential: sequential}, nil)
	n := 0
	if err := p.Crawl(context.Background(), pages, func(int64, LikerProfile) error { n++; return nil }); err != nil {
		tb.Fatal(err)
	}
	if n != benchProfiles {
		tb.Fatalf("profiles = %d, want %d", n, benchProfiles)
	}
	return c
}

// BenchmarkCrawlSerial is the deepest baseline: one request chain per
// liker, one page at a time. Wall clock scales as requests × latency.
func BenchmarkCrawlSerial(b *testing.B) {
	srv, pages := benchMixedWorld(b, benchDelay)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crawlSerialRoster(b, srv, pages)
	}
}

// BenchmarkCrawlPipeline8 is the page-sequential pipeline on the mixed
// roster: 8 workers overlap latency WITHIN a page, but every quiet
// page still serializes behind the busy one. This is the engine the
// global queue is measured against.
func BenchmarkCrawlPipeline8(b *testing.B) {
	srv, pages := benchMixedWorld(b, benchDelay)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crawlEngineRoster(b, srv, pages, true)
	}
}

// BenchmarkCrawlGlobalQueue is the global work queue on the same
// roster: quiet-page probes and profile batches ride the same queue as
// the busy page's work, so the whole roster's latency overlaps across
// the 8 workers. The acceptance bar for this PR is ≥2x over
// BenchmarkCrawlPipeline8; observed is ~3x.
func BenchmarkCrawlGlobalQueue(b *testing.B) {
	srv, pages := benchMixedWorld(b, benchDelay)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crawlEngineRoster(b, srv, pages, false)
	}
}

// BenchmarkCrawlAnalyze measures the crawl-to-analysis path: the
// global-queue crawl with the full §4 aggregator family attached as a
// Sink. Comparing against BenchmarkCrawlGlobalQueue isolates what the
// streaming analyses add on top of the crawl itself.
func BenchmarkCrawlAnalyze(b *testing.B) {
	srv, pages := benchMixedWorld(b, benchDelay)
	roster := make([]analysis.CrawlCampaign, len(pages))
	for i, p := range pages {
		roster[i] = analysis.CrawlCampaign{ID: fmt.Sprintf("C%d", i), Page: socialnet.PageID(p), Active: true}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzer := analysis.NewCrawlAnalyzer(roster, nil)
		sink := NewAnalysisSink(analyzer.Aggregators()...)
		p := NewPipeline(benchClient(b, srv), PipelineConfig{Workers: 8, BatchSize: 5, Sink: sink}, nil)
		n := 0
		if err := p.Crawl(context.Background(), pages, func(int64, LikerProfile) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != benchProfiles {
			b.Fatalf("profiles = %d", n)
		}
		tables, err := analyzer.Tables()
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, g := range tables.Geo {
			total += g.Total
		}
		if total != benchProfiles {
			b.Fatalf("geo totals = %d, want %d", total, benchProfiles)
		}
	}
}

// crawlBenchResult is one row of BENCH_crawl.json — the
// machine-readable perf trajectory CI archives per run.
type crawlBenchResult struct {
	Name      string `json:"name"`
	NsPerOp   int64  `json:"ns_per_op"`
	Requests  int    `json:"requests"`
	Throttles int    `json:"throttles"`
}

// TestEmitCrawlBenchJSON, gated behind CRAWL_BENCH_JSON=<path>, runs
// the three crawl engines through testing.Benchmark and writes their
// ns/op plus request/throttle counts as JSON. CI uploads the file as
// an artifact and gates on the global-queue/pipeline ratio.
func TestEmitCrawlBenchJSON(t *testing.T) {
	path := os.Getenv("CRAWL_BENCH_JSON")
	if path == "" {
		t.Skip("set CRAWL_BENCH_JSON=<path> to emit the crawl benchmark artifact")
	}
	type engine struct {
		name string
		run  func(tb testing.TB, srv *httptest.Server, pages []int64) *Client
	}
	engines := []engine{
		{"BenchmarkCrawlSerial", func(tb testing.TB, srv *httptest.Server, pages []int64) *Client {
			return crawlSerialRoster(tb, srv, pages)
		}},
		{"BenchmarkCrawlPipeline8", func(tb testing.TB, srv *httptest.Server, pages []int64) *Client {
			return crawlEngineRoster(tb, srv, pages, true)
		}},
		{"BenchmarkCrawlGlobalQueue", func(tb testing.TB, srv *httptest.Server, pages []int64) *Client {
			return crawlEngineRoster(tb, srv, pages, false)
		}},
	}
	var results []crawlBenchResult
	for _, e := range engines {
		br := testing.Benchmark(func(b *testing.B) {
			srv, pages := benchMixedWorld(b, benchDelay)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.run(b, srv, pages)
			}
		})
		// One instrumented pass for the request/throttle counters
		// (benchmark iterations share a client-per-iteration, so the
		// counts of a single crawl are the meaningful figure).
		srv, pages := benchMixedWorld(t, benchDelay)
		c := e.run(t, srv, pages)
		results = append(results, crawlBenchResult{
			Name:      e.name,
			NsPerOp:   br.NsPerOp(),
			Requests:  c.Requests(),
			Throttles: c.Throttled(),
		})
	}
	raw, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", path, raw)
}
