package crawler

import (
	"context"
	"encoding/json"
	"errors"
	"slices"
	"sync"
)

// Checkpoint is the resumable crawl state: how far into each page's
// append-only like stream the pipeline has fully processed, which
// users it has already collected, and — when a Sink is attached — the
// sink's aggregator state covering exactly those observations. All
// three advance only after the work they cover is complete and are
// snapshotted under one lock, so a checkpoint persisted at any point
// resumes without refetching a profile, without losing one, and
// without double-feeding (or starving) the sink.
type Checkpoint struct {
	// PageCursors maps page ID to the append-stream cursor up to which
	// every liker in the page's stream has been crawled (or was already
	// in Crawled).
	PageCursors map[int64]int `json:"page_cursors"`
	// Crawled lists users whose profiles have been collected and
	// emitted, ascending.
	Crawled []int64 `json:"crawled"`
	// Sink is the attached Sink's Snapshot at checkpoint time, absent
	// when the crawl runs without one. A resumed crawl that attaches a
	// sink must Restore it from this state BEFORE crawling (the
	// pipeline only validates presence; restoring is the caller's
	// step, since the caller constructed the sink).
	Sink json.RawMessage `json:"sink,omitempty"`
	// Windows holds the global queue's in-flight cursor windows —
	// probed but not yet closed — sorted by (page, start). Each
	// carries its like payload and the users still pending, so a
	// resume rebuilds exactly the open frontier: pending profiles are
	// refetched (minus any since crawled), stored likes are folded
	// into the sink when the restored window closes. Absent for the
	// sequential engine and for checkpoints taken at quiescence.
	Windows []WindowState `json:"windows,omitempty"`
}

// PipelineConfig tunes the concurrent crawl.
type PipelineConfig struct {
	// Workers is the number of concurrent profile fetchers (min 1).
	// All workers share the Client's politeness limiter, so raising
	// Workers overlaps server latency without ever exceeding the
	// request spacing budget.
	Workers int
	// BatchSize is the number of profiles fetched per batched
	// /api/users request (min 1, capped by the client's PageSize).
	BatchSize int
	// Sink, when set, observes the crawl's streams (every like window
	// and every new profile) under the contract documented on Sink.
	// Its state snapshots into Checkpoint.Sink.
	Sink Sink
	// OnCheckpoint, when set, is called after each fully processed like
	// window with a consistent snapshot — the hook for persisting crawl
	// progress. It is never called concurrently.
	OnCheckpoint func(Checkpoint)
	// Sequential selects the legacy page-sequential engine: pages are
	// drained one at a time to their live tail, as before the global
	// work queue. The default (false) runs all pages through one
	// shared task queue so quiet-page probes overlap busy-page profile
	// fetches. Both engines produce the same profile set and the same
	// sink tables; Sequential exists as the static fallback and the
	// benchmark baseline.
	Sequential bool
	// ProbeAhead caps how many windows of a single page may be open
	// (probed, profiles in flight) at once under the global queue
	// (min 1, default 8). It bounds checkpoint size and keeps one
	// deep page from monopolizing the queue.
	ProbeAhead int
	// lifo flips the queue to stack order — a test knob proving result
	// tables are scheduling-order independent.
	lifo bool
}

// Pipeline is the concurrent, resumable §3 data-collection engine: it
// discovers likers through cursor paging (stable under live writes),
// fans their profile collection — one batched profile fetch plus
// per-user friend and page-like lists — over N workers behind the
// client's shared politeness limiter, dedupes users already crawled
// across campaigns (the paper crawled each profile exactly once), and
// streams finished LikerProfiles to a consumer callback and the
// configured Sink instead of accumulating them.
//
// The set of profiles emitted is a pure function of the world state:
// worker count and scheduling affect only emission order, never
// membership. A Pipeline coordinates one Crawl at a time.
type Pipeline struct {
	cl    *Client
	cfg   PipelineConfig
	batch int

	mu      sync.Mutex
	cursors map[int64]int
	crawled map[int64]bool
	// snapErr is the first sink Snapshot failure, sticky: a checkpoint
	// written without sink state would starve a resumed sink of every
	// user already marked crawled, so the crawl aborts instead.
	snapErr error
	// resumeWindows carries a resumed checkpoint's in-flight windows
	// until the next queue crawl consumes them (guarded by mu). While
	// present they also ride any Checkpoint taken before that crawl,
	// so persisting a freshly resumed pipeline loses nothing.
	resumeWindows []WindowState

	// sched is the live global-queue scheduler during a queue crawl
	// (guarded by emitMu for install/teardown, so Checkpoint — which
	// holds emitMu — always sees a consistent pointer).
	sched *scheduler

	// emitMu serializes every externally visible transition: the
	// {emit, sink.ObserveProfile, mark-crawled} triple, the
	// {sink.ObserveLikes, cursor-advance} pair, and Checkpoint's
	// snapshot of all of it. Holding it in Checkpoint is what makes a
	// persisted (cursors, crawled, sink) triple mutually consistent.
	emitMu sync.Mutex
}

// NewPipeline builds a pipeline over the client. resume, when non-nil,
// seeds the cursor map and crawled set from a prior crawl's
// Checkpoint; if cfg.Sink is set, the caller must have Restored it
// from resume.Sink first (NewPipeline cannot — it did not build the
// sink).
func NewPipeline(cl *Client, cfg PipelineConfig, resume *Checkpoint) *Pipeline {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 50
	}
	if cfg.BatchSize > cl.cfg.PageSize {
		cfg.BatchSize = cl.cfg.PageSize
	}
	p := &Pipeline{
		cl:      cl,
		cfg:     cfg,
		cursors: make(map[int64]int),
		crawled: make(map[int64]bool),
	}
	if p.cfg.ProbeAhead < 1 {
		p.cfg.ProbeAhead = 8
	}
	if resume != nil {
		for page, cur := range resume.PageCursors {
			p.cursors[page] = cur
		}
		for _, u := range resume.Crawled {
			p.crawled[u] = true
		}
		p.resumeWindows = slices.Clone(resume.Windows)
	}
	return p
}

// cursorOf reads one page's checkpointed cursor.
func (p *Pipeline) cursorOf(page int64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cursors[page]
}

// probeAhead reports the per-page open-window cap.
func (p *Pipeline) probeAhead() int { return p.cfg.ProbeAhead }

// takeResumeWindows hands the resumed in-flight windows to the queue
// crawl exactly once.
func (p *Pipeline) takeResumeWindows() []WindowState {
	p.mu.Lock()
	defer p.mu.Unlock()
	ws := p.resumeWindows
	p.resumeWindows = nil
	return ws
}

// Checkpoint returns a consistent snapshot of the crawl state, safe to
// persist: every user in it has been emitted and observed, every
// cursor covers only fully crawled windows, and the sink state (when a
// sink is attached) covers exactly those users and windows.
func (p *Pipeline) Checkpoint() Checkpoint {
	p.emitMu.Lock()
	defer p.emitMu.Unlock()
	p.mu.Lock()
	ck := Checkpoint{
		PageCursors: make(map[int64]int, len(p.cursors)),
		Crawled:     make([]int64, 0, len(p.crawled)),
	}
	for page, cur := range p.cursors {
		ck.PageCursors[page] = cur
	}
	for u := range p.crawled {
		ck.Crawled = append(ck.Crawled, u)
	}
	p.mu.Unlock()
	slices.Sort(ck.Crawled)
	if p.sched != nil {
		ck.Windows = p.sched.snapshotWindows()
	} else {
		p.mu.Lock()
		ck.Windows = slices.Clone(p.resumeWindows)
		p.mu.Unlock()
	}
	if p.cfg.Sink != nil {
		state, err := p.cfg.Sink.Snapshot()
		if err != nil {
			p.mu.Lock()
			if p.snapErr == nil {
				p.snapErr = err
			}
			p.mu.Unlock()
		} else {
			ck.Sink = state
		}
	}
	return ck
}

// SnapshotErr reports the first sink Snapshot failure, if any — the
// crawl loop aborts on it, and callers persisting a final checkpoint
// should check it before trusting the file.
func (p *Pipeline) SnapshotErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapErr
}

// Crawl collects every liker of the given pages, calling emit once per
// newly crawled profile with the page that surfaced it. Pages are
// processed in order; within a page, profile collection fans out over
// the configured workers. Each page is drained to its live tail: likes
// landing while their page is being crawled are picked up before Crawl
// moves on. emit is serialized (one call at a time) but its order is
// scheduling-dependent; order-sensitive consumers sort on their side
// (the Sink contract is built on order-insensitive folds for exactly
// this reason). An error from emit or the sink aborts the crawl; the
// profile it rejected is NOT marked crawled, so a resume refetches and
// re-emits it — consumers that persist profiles lose nothing to a
// failed write.
func (p *Pipeline) Crawl(ctx context.Context, pages []int64, emit func(page int64, prof LikerProfile) error) error {
	if p.cfg.Sequential {
		for _, page := range pages {
			if err := p.crawlPage(ctx, page, emit); err != nil {
				return err
			}
		}
		return nil
	}
	return p.crawlQueue(ctx, pages, emit)
}

// crawlQueue runs the global-work-queue engine: every page's cursor
// probes and profile batches go through one shared queue consumed by
// the worker pool, so all pages progress concurrently and a page's
// probing runs ahead of its window closes (see queue.go). The same
// per-page guarantee holds as in the sequential engine — each page is
// drained to its live tail before Crawl returns — and the emitted
// profile set is identical.
func (p *Pipeline) crawlQueue(ctx context.Context, pages []int64, emit func(int64, LikerProfile) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// newScheduler consumes resumeWindows and installs itself as
	// p.sched in one emitMu critical section, so no Checkpoint can
	// observe the in-flight windows in neither place; start then folds
	// any restored windows that are already closable.
	s := newScheduler(p, pages, emit, cancel)
	s.start(pages)

	var wg sync.WaitGroup
	for w := 0; w < p.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker(ctx)
		}()
	}
	wg.Wait()

	// Tear down under emitMu: any still-open windows (error/cancel
	// path) move back to resumeWindows, so a final Checkpoint taken
	// after Crawl returns still carries them.
	leftover := s.snapshotWindows()
	p.emitMu.Lock()
	p.mu.Lock()
	p.resumeWindows = leftover
	p.mu.Unlock()
	p.sched = nil
	p.emitMu.Unlock()

	s.mu.Lock()
	err := s.err
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// CrawlProfiles collects the given users' profiles (skipping any
// already crawled) through the same worker fan-out, dedup set, sink
// wiring, and checkpoint semantics as a page crawl, emitting them
// under the BaselinePage label. It is how the Figure 4 organic
// baseline sample joins a crawl: the paper crawled its random user
// sample with the same machinery as the honeypot likers.
func (p *Pipeline) CrawlProfiles(ctx context.Context, ids []int64, emit func(page int64, prof LikerProfile) error) error {
	var todo []int64
	p.mu.Lock()
	for _, id := range ids {
		if !p.crawled[id] {
			todo = append(todo, id)
		}
	}
	p.mu.Unlock()
	if err := p.crawlUsers(ctx, BaselinePage, todo, emit); err != nil {
		return err
	}
	if p.cfg.OnCheckpoint != nil {
		ck := p.Checkpoint()
		if err := p.SnapshotErr(); err != nil {
			return err
		}
		p.cfg.OnCheckpoint(ck)
	}
	return nil
}

// crawlPage loops {read one cursor window, crawl its new likers,
// advance the cursor} until a window comes back empty — the page's live
// tail. The cursor advances only after the window's likers are done —
// and, when a sink is attached, in the same critical section as the
// window's like events are folded into it — so a crawl killed
// mid-window resumes from the window's start with the crawled set
// suppressing the refetches, and a checkpoint can never claim a window
// the sink has not seen (or vice versa).
func (p *Pipeline) crawlPage(ctx context.Context, page int64, emit func(int64, LikerProfile) error) error {
	for {
		p.mu.Lock()
		cursor := p.cursors[page]
		p.mu.Unlock()

		likes, next, err := p.cl.PageLikesSince(ctx, page, cursor)
		if err != nil {
			return err
		}
		var todo []int64
		p.mu.Lock()
		for _, lk := range likes {
			if !p.crawled[lk.User] {
				todo = append(todo, lk.User)
			}
		}
		p.mu.Unlock()
		if err := p.crawlUsers(ctx, page, todo, emit); err != nil {
			return err
		}
		p.emitMu.Lock()
		if p.cfg.Sink != nil && len(likes) > 0 {
			if err := p.cfg.Sink.ObserveLikes(page, likes); err != nil {
				p.emitMu.Unlock()
				return err
			}
		}
		p.mu.Lock()
		p.cursors[page] = next
		p.mu.Unlock()
		p.emitMu.Unlock()
		if p.cfg.OnCheckpoint != nil {
			// Snapshot first, surface a sink failure BEFORE handing the
			// checkpoint out: persisting a sink-less checkpoint would
			// clobber the previous good one and strand the resume.
			ck := p.Checkpoint()
			if err := p.SnapshotErr(); err != nil {
				return err
			}
			p.cfg.OnCheckpoint(ck)
		}
		if len(likes) == 0 {
			return nil
		}
	}
}

// crawlUsers fans the users' profile collection over the worker pool in
// BatchSize chunks and waits for the window to finish.
func (p *Pipeline) crawlUsers(ctx context.Context, page int64, ids []int64, emit func(int64, LikerProfile) error) error {
	if len(ids) == 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	work := make(chan []int64)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}
	for w := 0; w < p.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for batch := range work {
				if err := p.crawlBatch(ctx, page, batch, emit); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for start := 0; start < len(ids); start += p.cfg.BatchSize {
		end := min(start+p.cfg.BatchSize, len(ids))
		select {
		case work <- ids[start:end]:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// crawlBatch collects one batch: a single batched profile fetch, then
// per-user friend and page-like lists, emitting each finished profile.
func (p *Pipeline) crawlBatch(ctx context.Context, page int64, ids []int64, emit func(int64, LikerProfile) error) error {
	users, err := p.cl.Users(ctx, ids)
	if err != nil {
		return err
	}
	for _, u := range users {
		prof := LikerProfile{User: u}
		friends, err := p.cl.UserFriends(ctx, u.ID)
		switch {
		case errors.Is(err, ErrPrivate):
			prof.FriendsHidden = true
		case err != nil:
			return err
		default:
			prof.Friends = friends
		}
		pages, err := p.cl.UserLikes(ctx, u.ID)
		if err != nil {
			return err
		}
		prof.PageLikes = pages

		// Emit and observe first, mark crawled second (the whole triple
		// under emitMu, so it is atomic against other emitters AND
		// against Checkpoint): a crawl killed — or a checkpoint
		// snapshotted — anywhere before the mark resumes by refetching
		// this user, never by losing them and never by feeding the sink
		// twice.
		p.emitMu.Lock()
		p.mu.Lock()
		dup := p.crawled[u.ID]
		p.mu.Unlock()
		if !dup {
			if err := emit(page, prof); err != nil {
				p.emitMu.Unlock()
				return err
			}
			if p.cfg.Sink != nil {
				if err := p.cfg.Sink.ObserveProfile(page, prof); err != nil {
					p.emitMu.Unlock()
					return err
				}
			}
			p.mu.Lock()
			p.crawled[u.ID] = true
			p.mu.Unlock()
		}
		p.emitMu.Unlock()
	}
	return nil
}
