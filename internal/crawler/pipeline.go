package crawler

import (
	"context"
	"errors"
	"slices"
	"sync"
)

// Checkpoint is the resumable crawl state: how far into each page's
// append-only like stream the pipeline has fully processed, and which
// users it has already collected. Both advance only after the work they
// cover is complete, so a checkpoint persisted at any point resumes
// without refetching a single profile and without losing one.
type Checkpoint struct {
	// PageCursors maps page ID to the append-stream cursor up to which
	// every liker in the page's stream has been crawled (or was already
	// in Crawled).
	PageCursors map[int64]int `json:"page_cursors"`
	// Crawled lists users whose profiles have been collected and
	// emitted, ascending.
	Crawled []int64 `json:"crawled"`
}

// PipelineConfig tunes the concurrent crawl.
type PipelineConfig struct {
	// Workers is the number of concurrent profile fetchers (min 1).
	// All workers share the Client's politeness limiter, so raising
	// Workers overlaps server latency without ever exceeding the
	// request spacing budget.
	Workers int
	// BatchSize is the number of profiles fetched per batched
	// /api/users request (min 1, capped by the client's PageSize).
	BatchSize int
	// OnCheckpoint, when set, is called after each fully processed like
	// window with a consistent snapshot — the hook for persisting crawl
	// progress. It is called from the coordinating goroutine, never
	// concurrently.
	OnCheckpoint func(Checkpoint)
}

// Pipeline is the concurrent, resumable §3 data-collection engine: it
// discovers likers through cursor paging (stable under live writes),
// fans their profile collection — one batched profile fetch plus
// per-user friend and page-like lists — over N workers behind the
// client's shared politeness limiter, dedupes users already crawled
// across campaigns (the paper crawled each profile exactly once), and
// streams finished LikerProfiles to a consumer callback instead of
// accumulating them.
//
// The set of profiles emitted is a pure function of the world state:
// worker count and scheduling affect only emission order, never
// membership. A Pipeline coordinates one Crawl at a time.
type Pipeline struct {
	cl    *Client
	cfg   PipelineConfig
	batch int

	mu      sync.Mutex
	cursors map[int64]int
	crawled map[int64]bool

	emitMu sync.Mutex
}

// NewPipeline builds a pipeline over the client. resume, when non-nil,
// seeds the cursor map and crawled set from a prior crawl's Checkpoint.
func NewPipeline(cl *Client, cfg PipelineConfig, resume *Checkpoint) *Pipeline {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 50
	}
	if cfg.BatchSize > cl.cfg.PageSize {
		cfg.BatchSize = cl.cfg.PageSize
	}
	p := &Pipeline{
		cl:      cl,
		cfg:     cfg,
		cursors: make(map[int64]int),
		crawled: make(map[int64]bool),
	}
	if resume != nil {
		for page, cur := range resume.PageCursors {
			p.cursors[page] = cur
		}
		for _, u := range resume.Crawled {
			p.crawled[u] = true
		}
	}
	return p
}

// Checkpoint returns a consistent snapshot of the crawl state, safe to
// persist: every user in it has been emitted, and every cursor covers
// only fully crawled windows.
func (p *Pipeline) Checkpoint() Checkpoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	ck := Checkpoint{
		PageCursors: make(map[int64]int, len(p.cursors)),
		Crawled:     make([]int64, 0, len(p.crawled)),
	}
	for page, cur := range p.cursors {
		ck.PageCursors[page] = cur
	}
	for u := range p.crawled {
		ck.Crawled = append(ck.Crawled, u)
	}
	slices.Sort(ck.Crawled)
	return ck
}

// Crawl collects every liker of the given pages, calling emit once per
// newly crawled profile with the page that surfaced it. Pages are
// processed in order; within a page, profile collection fans out over
// the configured workers. Each page is drained to its live tail: likes
// landing while their page is being crawled are picked up before Crawl
// moves on. emit is serialized (one call at a time) but its order is
// scheduling-dependent; order-sensitive consumers sort on their side.
// An error from emit aborts the crawl; the profile it rejected is NOT
// marked crawled, so a resume refetches and re-emits it — consumers
// that persist profiles lose nothing to a failed write.
func (p *Pipeline) Crawl(ctx context.Context, pages []int64, emit func(page int64, prof LikerProfile) error) error {
	for _, page := range pages {
		if err := p.crawlPage(ctx, page, emit); err != nil {
			return err
		}
	}
	return nil
}

// crawlPage loops {read one cursor window, crawl its new likers,
// advance the cursor} until a window comes back empty — the page's live
// tail. The cursor advances only after the window's likers are done, so
// a crawl killed mid-window resumes from the window's start and the
// crawled set suppresses the refetches.
func (p *Pipeline) crawlPage(ctx context.Context, page int64, emit func(int64, LikerProfile) error) error {
	for {
		p.mu.Lock()
		cursor := p.cursors[page]
		p.mu.Unlock()

		likes, next, err := p.cl.PageLikesSince(ctx, page, cursor)
		if err != nil {
			return err
		}
		var todo []int64
		p.mu.Lock()
		for _, lk := range likes {
			if !p.crawled[lk.User] {
				todo = append(todo, lk.User)
			}
		}
		p.mu.Unlock()
		if err := p.crawlUsers(ctx, page, todo, emit); err != nil {
			return err
		}
		p.mu.Lock()
		p.cursors[page] = next
		p.mu.Unlock()
		if p.cfg.OnCheckpoint != nil {
			p.cfg.OnCheckpoint(p.Checkpoint())
		}
		if len(likes) == 0 {
			return nil
		}
	}
}

// crawlUsers fans the users' profile collection over the worker pool in
// BatchSize chunks and waits for the window to finish.
func (p *Pipeline) crawlUsers(ctx context.Context, page int64, ids []int64, emit func(int64, LikerProfile) error) error {
	if len(ids) == 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	work := make(chan []int64)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}
	for w := 0; w < p.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for batch := range work {
				if err := p.crawlBatch(ctx, page, batch, emit); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for start := 0; start < len(ids); start += p.cfg.BatchSize {
		end := min(start+p.cfg.BatchSize, len(ids))
		select {
		case work <- ids[start:end]:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// crawlBatch collects one batch: a single batched profile fetch, then
// per-user friend and page-like lists, emitting each finished profile.
func (p *Pipeline) crawlBatch(ctx context.Context, page int64, ids []int64, emit func(int64, LikerProfile) error) error {
	users, err := p.cl.Users(ctx, ids)
	if err != nil {
		return err
	}
	for _, u := range users {
		prof := LikerProfile{User: u}
		friends, err := p.cl.UserFriends(ctx, u.ID)
		switch {
		case errors.Is(err, ErrPrivate):
			prof.FriendsHidden = true
		case err != nil:
			return err
		default:
			prof.Friends = friends
		}
		pages, err := p.cl.UserLikes(ctx, u.ID)
		if err != nil {
			return err
		}
		prof.PageLikes = pages

		// Emit first, mark crawled second (both under emitMu, so the
		// pair is atomic against other emitters): a crawl killed — or a
		// checkpoint snapshotted — anywhere before the mark resumes by
		// refetching this user, never by losing them.
		p.emitMu.Lock()
		p.mu.Lock()
		dup := p.crawled[u.ID]
		p.mu.Unlock()
		if !dup {
			if err := emit(page, prof); err != nil {
				p.emitMu.Unlock()
				return err
			}
			p.mu.Lock()
			p.crawled[u.ID] = true
			p.mu.Unlock()
		}
		p.emitMu.Unlock()
	}
	return nil
}
