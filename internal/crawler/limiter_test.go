package crawler

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/socialnet"
)

// TestAIMDDeterministicSchedule: the spacing after any outcome
// sequence is a pure function of the sequence — replaying it yields
// the identical interval trace, and the trace matches the AIMD rules
// exactly (additive −step per window successes, ×factor per throttle,
// clamped).
func TestAIMDDeterministicSchedule(t *testing.T) {
	cfg := Config{
		MinInterval:     10 * time.Millisecond,
		AdaptiveFloor:   2 * time.Millisecond,
		AdaptiveCeil:    40 * time.Millisecond,
		AdaptiveStep:    time.Millisecond,
		AdaptiveWindow:  2,
		AdaptiveBackoff: 2.0,
	}
	run := func() []time.Duration {
		p := newAIMDPacer(cfg)
		outcomes := []bool{true, true, true, true, false, true, true, false, false}
		trace := make([]time.Duration, 0, len(outcomes))
		for _, ok := range outcomes {
			p.outcome(ok)
			trace = append(trace, p.interval())
		}
		return trace
	}
	want := []time.Duration{
		10 * time.Millisecond, // success 1/2: no change
		9 * time.Millisecond,  // window complete: −1ms
		9 * time.Millisecond,
		8 * time.Millisecond,  // second window: −1ms
		16 * time.Millisecond, // throttle: ×2
		16 * time.Millisecond, // streak reset by the throttle
		15 * time.Millisecond, // window complete: −1ms
		30 * time.Millisecond, // ×2
		40 * time.Millisecond, // ×2 = 60ms, clamped to ceil
	}
	first := run()
	for i, got := range first {
		if got != want[i] {
			t.Fatalf("step %d: interval %v, want %v", i, got, want[i])
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at step %d: %v vs %v", i, first[i], second[i])
		}
	}
}

// TestAIMDClampsAndReseed: the spacing never drops below the floor,
// never exceeds the ceiling, and a backoff from a zero spacing
// re-seeds from the additive step instead of stalling at zero.
func TestAIMDClampsAndReseed(t *testing.T) {
	p := newAIMDPacer(Config{
		MinInterval:    3 * time.Millisecond,
		AdaptiveFloor:  2 * time.Millisecond,
		AdaptiveCeil:   8 * time.Millisecond,
		AdaptiveStep:   time.Millisecond,
		AdaptiveWindow: 1,
	})
	for i := 0; i < 10; i++ {
		p.outcome(true)
	}
	if got := p.interval(); got != 2*time.Millisecond {
		t.Fatalf("floor clamp: interval %v, want 2ms", got)
	}
	for i := 0; i < 10; i++ {
		p.outcome(false)
	}
	if got := p.interval(); got != 8*time.Millisecond {
		t.Fatalf("ceil clamp: interval %v, want 8ms", got)
	}

	// MinInterval 0, floor unset → spacing starts (and shrinks to) 0;
	// the first throttle must still establish a real backoff.
	z := newAIMDPacer(Config{AdaptiveStep: time.Millisecond})
	if got := z.interval(); got != 0 {
		t.Fatalf("zero-interval start: %v", got)
	}
	z.outcome(false)
	if got := z.interval(); got != time.Millisecond {
		t.Fatalf("re-seed after throttle at zero: interval %v, want 1ms (the step)", got)
	}
	z.outcome(false)
	if got := z.interval(); got != 2*time.Millisecond {
		t.Fatalf("exponential climb from re-seed: %v, want 2ms", got)
	}
}

// TestAIMDFloorDefaultsToMinInterval: without an explicit AdaptiveFloor
// the controller never undercuts the configured politeness — it can
// only back off from MinInterval and return to it.
func TestAIMDFloorDefaultsToMinInterval(t *testing.T) {
	p := newAIMDPacer(Config{MinInterval: 5 * time.Millisecond, AdaptiveWindow: 1})
	for i := 0; i < 50; i++ {
		p.outcome(true)
	}
	if got := p.interval(); got != 5*time.Millisecond {
		t.Fatalf("interval shrank below MinInterval without an explicit floor: %v", got)
	}
}

// TestThrottledCounter: 429 responses increment Throttled() — distinct
// from Retries(), which also counts 5xx — making the AIMD controller's
// input observable.
func TestThrottledCounter(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits <= 2 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"id":1,"name":"hp","honeypot":true,"likes":0}`))
	}))
	defer srv.Close()
	cfg := DefaultConfig(srv.URL)
	cfg.MinInterval = 0
	cfg.Backoff = time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Page(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Throttled(); got != 2 {
		t.Fatalf("Throttled() = %d, want 2", got)
	}
	if got := c.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2 (429s still retry)", got)
	}
}

// TestAdaptiveCrawlOutpacesFixedInterval: against a permissive server
// (no throttling at all), the adaptive limiter with an explicitly
// granted lower floor converges below the starting MinInterval and
// finishes the same crawl measurably faster than the fixed-interval
// fallback — the throughput half of the AIMD acceptance criterion.
func TestAdaptiveCrawlOutpacesFixedInterval(t *testing.T) {
	const start = 4 * time.Millisecond
	crawl := func(adaptive bool) (time.Duration, int) {
		srv, _, pages := sinkWorld(t)
		cfg := DefaultConfig(srv.URL)
		cfg.PageSize = 100
		cfg.MinInterval = start
		cfg.Adaptive = adaptive
		if adaptive {
			cfg.AdaptiveFloor = time.Microsecond // license the speedup
			cfg.AdaptiveStep = time.Millisecond
			cfg.AdaptiveWindow = 2
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := NewPipeline(c, PipelineConfig{Workers: 4, BatchSize: 5}, nil)
		t0 := time.Now()
		if err := p.Crawl(context.Background(), pages, func(int64, LikerProfile) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0), c.Requests()
	}
	fixedElapsed, fixedReqs := crawl(false)
	adaptiveElapsed, adaptiveReqs := crawl(true)
	if adaptiveReqs != fixedReqs {
		t.Fatalf("request counts differ: adaptive %d, fixed %d", adaptiveReqs, fixedReqs)
	}
	// The fixed crawl is spacing-bound (~requests × 4ms); the adaptive
	// one converges to ~zero spacing after a few windows. Demand a 25%
	// win — the real gap is far larger, the slack absorbs runner noise.
	if adaptiveElapsed >= fixedElapsed*3/4 {
		t.Fatalf("adaptive crawl took %v, fixed %v — expected at least a 25%% speedup", adaptiveElapsed, fixedElapsed)
	}
}

// TestAdaptiveBackoffReducesThrottleRate: against a rate-limited
// server, the controller converges from below — the early requests
// draw 429s, the multiplicative backoff stretches the spacing, and the
// steady state draws (almost) none. The throttle rate in the second
// half of the request sequence must collapse relative to the first.
func TestAdaptiveBackoffReducesThrottleRate(t *testing.T) {
	st := socialnet.NewStore()
	page, err := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.Throttle(api.NewServer(st, ""), 100, 2))
	defer srv.Close()

	cfg := DefaultConfig(srv.URL)
	cfg.MinInterval = 0 // start as impolite as possible
	cfg.Backoff = time.Millisecond
	cfg.AdaptiveStep = time.Millisecond
	cfg.AdaptiveWindow = 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const n = 60
	var firstHalf, secondHalf int
	for i := 0; i < n; i++ {
		before := c.Throttled()
		if _, err := c.Page(context.Background(), int64(page)); err != nil {
			t.Fatal(err)
		}
		d := c.Throttled() - before
		if i < n/2 {
			firstHalf += d
		} else {
			secondHalf += d
		}
	}
	if firstHalf == 0 {
		t.Fatal("server never throttled; the test world is mis-tuned")
	}
	if secondHalf*2 >= firstHalf {
		t.Fatalf("throttle rate did not drop: %d in first half, %d in second", firstHalf, secondHalf)
	}
	// And the spacing converged somewhere real: above zero (it backed
	// off) yet below the ceiling (successes pulled it back down).
	if got := c.Interval(); got <= 0 || got >= defaultAdaptiveCeil {
		t.Fatalf("converged interval %v outside (0, %v)", got, defaultAdaptiveCeil)
	}
}
