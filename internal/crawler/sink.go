package crawler

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/socialnet"
)

// Sink consumes the crawl's two sub-streams as the pipeline produces
// them — the crawl-to-analysis path that computes the §4 tables from a
// remote API without ever materializing a profile slice.
//
// Contract (the pipeline upholds it; implementations rely on it):
//
//   - All methods are called serialized — never concurrently — so
//     sinks need no internal locking.
//   - ObserveProfile is called exactly once per user across the whole
//     crawl (and across resumes: the checkpointed crawled set
//     suppresses refetches). Call order is scheduling-dependent, so
//     observers must be order-insensitive folds — the same determinism
//     rules as the journal aggregators (DESIGN.md §8): the observed
//     SET is a pure function of the world, the order is not.
//   - ObserveLikes is called once per fully processed like window, in
//     page-stream order, after every new liker in the window has been
//     fetched and observed. Each like event is delivered exactly once
//     (cursor windows within a crawl, checkpointed cursors across
//     resumes).
//   - Snapshot is called only at points where the pipeline's
//     checkpoint (cursors + crawled set) is consistent with everything
//     the sink has observed; the returned state rides inside
//     Checkpoint.Sink. Restore (before the resumed crawl starts)
//     re-arms the sink with that state, and the resumed crawl then
//     delivers exactly the complement — so finalized output is
//     byte-identical to an uninterrupted crawl.
type Sink interface {
	// ObserveProfile folds one newly crawled profile. page is the page
	// that surfaced it (BaselinePage for roster-less profile crawls).
	ObserveProfile(page int64, prof LikerProfile) error
	// ObserveLikes folds one fully processed window of a page's like
	// stream — every event, including those of already-crawled users.
	ObserveLikes(page int64, likes []api.LikeDoc) error
	// Snapshot serializes the sink's progress for the crawl checkpoint.
	Snapshot() ([]byte, error)
	// Restore replaces the sink's progress with a prior Snapshot.
	Restore(data []byte) error
}

// BaselinePage is the page label Pipeline.CrawlProfiles emits for
// profiles not surfaced by any page's like stream (e.g. the Figure 4
// organic baseline sample).
const BaselinePage int64 = -1

// AnalysisSink adapts a set of analysis.CrawlAggregators to the
// pipeline's Sink contract: it parses the wire documents back into
// analysis-domain types and fans every observation to each aggregator.
type AnalysisSink struct {
	aggs []analysis.CrawlAggregator
}

// NewAnalysisSink builds a sink over aggregators. The standard §4
// family comes from analysis.NewCrawlAnalyzer(...).Aggregators().
func NewAnalysisSink(aggs ...analysis.CrawlAggregator) *AnalysisSink {
	return &AnalysisSink{aggs: aggs}
}

// ObserveProfile implements Sink.
func (s *AnalysisSink) ObserveProfile(_ int64, prof LikerProfile) error {
	p := analysis.CrawlProfile{
		User:          socialnet.UserID(prof.User.ID),
		Gender:        socialnet.ParseGender(prof.User.Gender),
		Country:       prof.User.Country,
		FriendsHidden: prof.FriendsHidden,
	}
	if age, ok := socialnet.ParseAgeBracket(prof.User.Age); ok {
		p.Age = age
	} else {
		// Out-of-range sentinel: the demographic tally counts the
		// profile but no bracket — the same treatment the journal
		// engine gives an unbracketed age.
		p.Age = socialnet.AgeBracket(^uint8(0))
	}
	p.Friends = make([]socialnet.UserID, len(prof.Friends))
	for i, f := range prof.Friends {
		p.Friends[i] = socialnet.UserID(f)
	}
	p.PageLikes = make([]socialnet.PageID, len(prof.PageLikes))
	for i, pg := range prof.PageLikes {
		p.PageLikes[i] = socialnet.PageID(pg)
	}
	for _, agg := range s.aggs {
		agg.ObserveProfile(p)
	}
	return nil
}

// ObserveLikes implements Sink. The whole window is parsed BEFORE any
// event is folded: a bad record mid-window must reject the window
// untouched, not leave a half-folded prefix in aggregator state — the
// cursor has not advanced, so a resume would re-deliver the window and
// double-count that prefix.
func (s *AnalysisSink) ObserveLikes(page int64, likes []api.LikeDoc) error {
	ats := make([]time.Time, len(likes))
	for i, lk := range likes {
		at, err := time.Parse(time.RFC3339Nano, lk.At)
		if err != nil {
			return fmt.Errorf("crawler: like time %q on page %d: %w", lk.At, page, err)
		}
		ats[i] = at
	}
	for i, lk := range likes {
		for _, agg := range s.aggs {
			agg.ObserveLike(socialnet.PageID(page), socialnet.UserID(lk.User), ats[i])
		}
	}
	return nil
}

// sinkSnapshot is the serialized AnalysisSink: one state blob per
// aggregator, positional.
type sinkSnapshot struct {
	Aggs []json.RawMessage `json:"aggs"`
}

// Snapshot implements Sink.
func (s *AnalysisSink) Snapshot() ([]byte, error) {
	snap := sinkSnapshot{Aggs: make([]json.RawMessage, len(s.aggs))}
	for i, agg := range s.aggs {
		st, err := agg.State()
		if err != nil {
			return nil, fmt.Errorf("crawler: sink snapshot: %w", err)
		}
		snap.Aggs[i] = st
	}
	return json.Marshal(snap)
}

// Restore implements Sink. The aggregator set must match the one that
// produced the snapshot (same family, same order).
func (s *AnalysisSink) Restore(data []byte) error {
	var snap sinkSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("crawler: sink restore: %w", err)
	}
	if len(snap.Aggs) != len(s.aggs) {
		return fmt.Errorf("crawler: sink snapshot has %d aggregator states, sink has %d aggregators", len(snap.Aggs), len(s.aggs))
	}
	for i, st := range snap.Aggs {
		if err := s.aggs[i].Restore(st); err != nil {
			return fmt.Errorf("crawler: sink restore: %w", err)
		}
	}
	return nil
}

// MergeSnapshot folds a peer sink's Snapshot into this sink's
// aggregators — the sharded-crawl merge path. Every aggregator must
// implement analysis.CrawlMerger (the standard §4 family does), and the
// peer must have run the same family in the same order over the same
// roster shape.
func (s *AnalysisSink) MergeSnapshot(data []byte) error {
	var snap sinkSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("crawler: sink merge: %w", err)
	}
	if len(snap.Aggs) != len(s.aggs) {
		return fmt.Errorf("crawler: sink snapshot has %d aggregator states, sink has %d aggregators", len(snap.Aggs), len(s.aggs))
	}
	for i, st := range snap.Aggs {
		m, ok := s.aggs[i].(analysis.CrawlMerger)
		if !ok {
			return fmt.Errorf("crawler: sink merge: aggregator %d (%T) cannot merge", i, s.aggs[i])
		}
		if err := m.MergeState(st); err != nil {
			return fmt.Errorf("crawler: sink merge: %w", err)
		}
	}
	return nil
}
