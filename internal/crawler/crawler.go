// Package crawler implements the study's data-collection client over the
// HTTP API — the stand-in for the paper's Selenium-driven crawl (§3). It
// is a polite crawler: a minimum interval between requests, bounded
// retries with exponential backoff on transient failures, pagination of
// like streams and friend lists, and graceful handling of private friend
// lists (most Facebook-campaign likers kept theirs private).
package crawler

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
)

// Errors.
var (
	// ErrPrivate marks a friend list the owner has hidden.
	ErrPrivate = errors.New("crawler: friend list is private")
	// ErrNotFound marks a missing user or page.
	ErrNotFound = errors.New("crawler: not found")
)

// Config tunes the crawler's politeness.
type Config struct {
	// BaseURL is the API root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// BaseURLs optionally lists several API roots — read replicas of
	// one leader (DESIGN §15). Requests rotate round-robin across them,
	// and the rotation is per-ATTEMPT, not per-request: a retry after a
	// replica failure lands on the next replica, so one dead node
	// degrades throughput instead of stalling the crawl. When set,
	// BaseURLs takes precedence over BaseURL.
	BaseURLs []string
	// MinInterval is the minimum spacing between requests (politeness).
	MinInterval time.Duration
	// MaxRetries bounds retry attempts per request.
	MaxRetries int
	// Backoff is the initial retry backoff ceiling. The ceiling doubles
	// per attempt up to BackoffCap, and each sleep is drawn uniformly
	// from [0, ceiling] (full jitter), so concurrent workers hitting a
	// flapping server spread their retries instead of stampeding in
	// lockstep.
	Backoff time.Duration
	// BackoffCap bounds the backoff ceiling (0 = 2s). Without a cap the
	// doubled ceiling grows without limit — a few consecutive failures
	// and a worker sleeps for minutes.
	BackoffCap time.Duration
	// BackoffSeed seeds the jitter source (0 = a fixed default), making
	// retry schedules reproducible in tests.
	BackoffSeed int64
	// PageSize is the pagination window.
	PageSize int
	// RetryAfterCap bounds how long a server's Retry-After hint can
	// stall a retry (0 = 2s). Servers advertise delta-seconds or an
	// HTTP-date; a polite crawler honors both forms but never sleeps
	// unboundedly — a far-future date is clamped to the cap.
	RetryAfterCap time.Duration
	// Adaptive selects the AIMD politeness limiter instead of the
	// fixed MinInterval spacing (the default via DefaultConfig; the
	// fixed limiter remains the static fallback when false). The
	// spacing starts at MinInterval, shrinks additively by
	// AdaptiveStep per AdaptiveWindow consecutive successes toward
	// AdaptiveFloor, and stretches multiplicatively by
	// AdaptiveBackoff (clamped to AdaptiveCeil) on every 429 — the
	// crawl converges to the rate the server actually absorbs.
	// Retry-After hints keep their spent-exactly-once contract; the
	// controller reacts only to the 429 signal itself. Deterministic:
	// the schedule is a pure function of the outcome sequence.
	Adaptive bool
	// AdaptiveFloor is the fastest spacing the controller may reach
	// (0 = MinInterval: adaptivity only ever backs off from the
	// configured politeness and returns to it). Setting a floor below
	// MinInterval explicitly licenses the crawl to outrun it against
	// a demonstrably permissive server.
	AdaptiveFloor time.Duration
	// AdaptiveCeil is the slowest spacing a backoff may stretch to
	// (0 = 2s).
	AdaptiveCeil time.Duration
	// AdaptiveStep is the additive spacing shrink per success window
	// (0 = 1ms).
	AdaptiveStep time.Duration
	// AdaptiveBackoff is the multiplicative spacing stretch per 429
	// (0 = 2.0; values below 1 are invalid).
	AdaptiveBackoff float64
	// AdaptiveWindow is the number of consecutive successes that earn
	// one additive shrink (0 = 8).
	AdaptiveWindow int
	// AdminToken authorizes admin-report requests.
	AdminToken string
	// APIToken, when set, is sent as X-API-Token on every request — the
	// crawler's politeness identity. Servers running a per-client
	// throttle budget key on it, so N sharded crawl processes with
	// distinct tokens each get their own budget (the paper's N crawl
	// accounts) instead of tripping one shared limit.
	APIToken string
	// HTTPClient overrides the default client (tests, timeouts).
	HTTPClient *http.Client
}

// DefaultConfig returns a polite configuration for local use. The
// adaptive limiter is the default: with AdaptiveFloor unset it backs
// off from MinInterval under 429s and returns to it — never faster
// than the configured politeness unless a lower floor is granted.
func DefaultConfig(baseURL string) Config {
	return Config{
		BaseURL:     baseURL,
		MinInterval: 10 * time.Millisecond,
		MaxRetries:  3,
		Backoff:     50 * time.Millisecond,
		PageSize:    200,
		Adaptive:    true,
	}
}

// Validate checks the config.
func (c *Config) Validate() error {
	if c.BaseURL == "" && len(c.BaseURLs) == 0 {
		return errors.New("crawler: empty base URL")
	}
	for _, u := range c.BaseURLs {
		if u == "" {
			return errors.New("crawler: empty base URL in replica list")
		}
	}
	if c.MinInterval < 0 || c.Backoff < 0 || c.BackoffCap < 0 {
		return errors.New("crawler: negative intervals")
	}
	if c.AdaptiveFloor < 0 || c.AdaptiveCeil < 0 || c.AdaptiveStep < 0 {
		return errors.New("crawler: negative adaptive intervals")
	}
	if c.AdaptiveBackoff != 0 && c.AdaptiveBackoff < 1 {
		return errors.New("crawler: adaptive backoff factor below 1 would speed up on throttles")
	}
	if c.AdaptiveWindow < 0 {
		return errors.New("crawler: negative adaptive window")
	}
	if c.MaxRetries < 0 {
		return errors.New("crawler: negative retries")
	}
	if c.PageSize < 1 || c.PageSize > api.MaxPageSize {
		return fmt.Errorf("crawler: page size %d out of [1,%d]", c.PageSize, api.MaxPageSize)
	}
	return nil
}

// Client is the crawler. It is safe for concurrent use: the politeness
// limiter is shared across goroutines — N pipeline workers behind one
// Client still space their requests MinInterval apart in aggregate, the
// way the paper's single crawl account had one politeness budget no
// matter how its fetches were scheduled.
type Client struct {
	cfg  Config
	http *http.Client

	// mu guards last: the fixed politeness limiter's reservation
	// point. Callers reserve the next free send slot under the lock,
	// then sleep until their slot without holding it. With
	// cfg.Adaptive the reservation point lives in pace instead.
	mu   sync.Mutex
	last time.Time

	// paceMu guards the lazily built pace. Construction is deferred
	// to the first request so tests that adjust cfg.MinInterval after
	// New still seed the controller with the value they configured.
	paceMu sync.Mutex
	pace   *aimdPacer

	requests  atomic.Int64
	retries   atomic.Int64
	throttled atomic.Int64

	// rr is the round-robin cursor over cfg.BaseURLs.
	rr atomic.Int64

	// rngMu guards rng, the jitter source for retry backoff. Seeded
	// (deterministically by default) rather than global so tests can
	// reproduce a retry schedule exactly.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// New builds a crawler client.
func New(cfg Config) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	seed := cfg.BackoffSeed
	if seed == 0 {
		seed = 1
	}
	return &Client{cfg: cfg, http: hc, rng: rand.New(rand.NewSource(seed))}, nil
}

// Requests returns the number of HTTP requests issued so far.
func (c *Client) Requests() int { return int(c.requests.Load()) }

// Retries returns the number of retry attempts so far.
func (c *Client) Retries() int { return int(c.retries.Load()) }

// Throttled returns the number of 429 responses received so far.
// Throttles also count as retries (the request is re-attempted), but
// folding them into Retries alone hid the congestion signal the AIMD
// controller acts on — this counter makes its behavior observable.
func (c *Client) Throttled() int { return int(c.throttled.Load()) }

// Interval reports the current politeness spacing: the adaptive
// controller's live value when Adaptive is set, MinInterval otherwise.
func (c *Client) Interval() time.Duration {
	if c.cfg.Adaptive {
		return c.pacer().interval()
	}
	return c.cfg.MinInterval
}

// pacer returns the adaptive controller, building it on first use.
func (c *Client) pacer() *aimdPacer {
	c.paceMu.Lock()
	defer c.paceMu.Unlock()
	if c.pace == nil {
		c.pace = newAIMDPacer(c.cfg)
	}
	return c.pace
}

// noteOutcome feeds a request outcome to the adaptive controller, if
// one is configured.
func (c *Client) noteOutcome(success bool) {
	if c.cfg.Adaptive {
		c.pacer().outcome(success)
	}
}

// waitTurn reserves the next politeness slot and sleeps until it.
// Reserving under the lock and sleeping outside it gives concurrent
// callers distinct slots exactly one spacing apart — MinInterval for
// the fixed limiter, the AIMD controller's current value otherwise.
func (c *Client) waitTurn(ctx context.Context) error {
	var slot time.Time
	if c.cfg.Adaptive {
		slot = c.pacer().reserve(time.Now())
	} else {
		if c.cfg.MinInterval <= 0 {
			return nil
		}
		c.mu.Lock()
		now := time.Now()
		slot = c.last.Add(c.cfg.MinInterval)
		if slot.Before(now) {
			slot = now
		}
		c.last = slot
		c.mu.Unlock()
	}
	if wait := time.Until(slot); wait > 0 {
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// retryWait returns the sleep before retry attempt n (n >= 1): full
// jitter over an exponentially growing, capped ceiling. The ceiling is
// Backoff doubled per attempt, clamped to BackoffCap (default 2s); the
// wait is drawn uniformly from [0, ceiling]. Exponential-with-cap keeps
// a flapping server from inflating sleeps without bound, and the
// jitter decorrelates concurrent workers whose requests failed
// together and would otherwise all come back at the same instant.
func (c *Client) retryWait(attempt int) time.Duration {
	ceiling := c.cfg.Backoff
	if ceiling <= 0 {
		return 0
	}
	max := c.cfg.BackoffCap
	if max <= 0 {
		max = 2 * time.Second
	}
	for i := 1; i < attempt && ceiling < max; i++ {
		ceiling *= 2
	}
	if ceiling > max {
		ceiling = max
	}
	c.rngMu.Lock()
	wait := time.Duration(c.rng.Int63n(int64(ceiling) + 1))
	c.rngMu.Unlock()
	return wait
}

// parseRetryAfter interprets a Retry-After header value, which RFC
// 9110 allows in two forms: delta-seconds ("120") or an HTTP-date
// ("Fri, 31 Dec 1999 23:59:59 GMT"). It returns the wait relative to
// now and whether the value parsed at all. A past (or zero-delay)
// date means "retry now" — a zero wait, which is still a valid hint
// and distinct from an unparseable header.
func parseRetryAfter(ra string, now time.Time) (time.Duration, bool) {
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(ra); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// baseURL picks the target root for one request attempt: the next
// replica in round-robin order when BaseURLs is set, the single
// BaseURL otherwise.
func (c *Client) baseURL() string {
	if len(c.cfg.BaseURLs) == 0 {
		return c.cfg.BaseURL
	}
	n := c.rr.Add(1) - 1
	return c.cfg.BaseURLs[int(uint64(n)%uint64(len(c.cfg.BaseURLs)))]
}

// get performs one polite, retrying GET and decodes JSON into out.
func (c *Client) get(ctx context.Context, path string, admin bool, out any) error {
	var lastErr error
	// hint is the server's most recent Retry-After suggestion (capped).
	// It replaces exactly one backoff sleep and is then cleared — it
	// never enters the exponential schedule, so a 1 s hint cannot
	// snowball into 2 s, 4 s, ... waits. hintSet distinguishes a
	// zero-duration hint (a past HTTP-date: retry immediately) from no
	// hint at all.
	var hint time.Duration
	var hintSet bool
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			wait := c.retryWait(attempt)
			if hintSet {
				wait, hint, hintSet = hint, 0, false
			}
			if wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
		if err := c.waitTurn(ctx); err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL()+path, nil)
		if err != nil {
			return fmt.Errorf("crawler: %w", err)
		}
		if admin {
			req.Header.Set("X-Admin-Token", c.cfg.AdminToken)
		}
		if c.cfg.APIToken != "" {
			req.Header.Set("X-API-Token", c.cfg.APIToken)
		}
		// Explicit negotiation (instead of the transport's implicit
		// one) so compression also works through custom HTTPClients;
		// setting the header manually means decoding is ours too.
		req.Header.Set("Accept-Encoding", "gzip")
		c.requests.Add(1)
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = err
			continue // transient: retry
		}
		body, err := readBody(resp)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		// Feed the adaptive controller: a 429 is the congestion signal
		// it multiplies the spacing on; any other sub-500 response is a
		// success signal (the server answered — 403/404 are healthy
		// answers). 5xx and transport errors are neutral: server
		// trouble, not congestion, and already the retry path's job.
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			c.throttled.Add(1)
			c.noteOutcome(false)
		case resp.StatusCode < 500:
			c.noteOutcome(true)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			if err := json.Unmarshal(body, out); err != nil {
				return fmt.Errorf("crawler: decode %s: %w", path, err)
			}
			return nil
		case resp.StatusCode == http.StatusForbidden:
			return fmt.Errorf("%w: %s", ErrPrivate, path)
		case resp.StatusCode == http.StatusNotFound:
			return fmt.Errorf("%w: %s", ErrNotFound, path)
		case resp.StatusCode == http.StatusTooManyRequests:
			// Honor the server's Retry-After hint when present — both
			// the delta-seconds and the HTTP-date form — capped. The
			// hint is held aside and spent on exactly the next sleep;
			// folding it into backoff would double it on every retry.
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if d, ok := parseRetryAfter(ra, time.Now()); ok {
					maxWait := c.cfg.RetryAfterCap
					if maxWait <= 0 {
						maxWait = 2 * time.Second
					}
					if d > maxWait {
						d = maxWait
					}
					hint, hintSet = d, true
				}
			}
			lastErr = fmt.Errorf("crawler: rate limited on %s", path)
			continue // retry after the hint (or backoff)
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("crawler: server error %d on %s", resp.StatusCode, path)
			continue // retry
		default:
			return fmt.Errorf("crawler: status %d on %s", resp.StatusCode, path)
		}
	}
	return fmt.Errorf("crawler: giving up on %s after %d attempts: %w", path, c.cfg.MaxRetries+1, lastErr)
}

// maxBody bounds response bodies (compressed and decompressed alike):
// a misbehaving server cannot balloon the crawler's memory.
const maxBody = 16 << 20

// readBody drains a response, transparently gunzipping when the server
// took the client's Accept-Encoding offer.
func readBody(resp *http.Response) ([]byte, error) {
	var r io.Reader = io.LimitReader(resp.Body, maxBody)
	if strings.EqualFold(resp.Header.Get("Content-Encoding"), "gzip") {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("crawler: gzip response: %w", err)
		}
		defer gz.Close()
		r = io.LimitReader(gz, maxBody)
	}
	return io.ReadAll(r)
}

// Page fetches a page view.
func (c *Client) Page(ctx context.Context, id int64) (api.PageDoc, error) {
	var doc api.PageDoc
	err := c.get(ctx, fmt.Sprintf("/api/page/%d", id), false, &doc)
	return doc, err
}

// PageLikes fetches the full like stream of a page by offset paging
// over the time-sorted view. Offset windows are only stable over a
// quiescent page — a like landing mid-crawl with an earlier timestamp
// shifts every later offset, duplicating or dropping likers — so this
// is a snapshot read; crawls that race live writes use PageLikesSince.
//
// Termination is on a short (or empty) window, never on the reported
// total: the total is a point-in-time value that goes stale the moment
// the list grows or shrinks, and trusting it can truncate the tail.
func (c *Client) PageLikes(ctx context.Context, id int64) ([]api.LikeDoc, error) {
	var out []api.LikeDoc
	offset := 0
	for {
		var doc api.PageLikesDoc
		path := fmt.Sprintf("/api/page/%d/likes?offset=%d&limit=%d", id, offset, c.cfg.PageSize)
		if err := c.get(ctx, path, false, &doc); err != nil {
			return nil, err
		}
		out = append(out, doc.Likes...)
		offset += len(doc.Likes)
		if len(doc.Likes) < c.cfg.PageSize {
			return out, nil
		}
	}
}

// PageLikesSince fetches the page's like events appended after cursor
// (0 = from the beginning; otherwise a value previously returned by
// this method), following cursor pagination until it reaches the live
// tail. It returns the likes and the cursor that resumes after them.
// Cursors index the page's append-only stream, so likes landing
// mid-crawl are delivered exactly once — on this call if the crawl
// hasn't passed them, on the next call otherwise.
func (c *Client) PageLikesSince(ctx context.Context, id int64, cursor int) ([]api.LikeDoc, int, error) {
	var out []api.LikeDoc
	for {
		var doc api.PageLikesDoc
		path := fmt.Sprintf("/api/page/%d/likes?cursor=%d&limit=%d", id, cursor, c.cfg.PageSize)
		if err := c.get(ctx, path, false, &doc); err != nil {
			return out, cursor, err
		}
		out = append(out, doc.Likes...)
		cursor = doc.NextCursor
		if len(doc.Likes) < c.cfg.PageSize {
			return out, cursor, nil
		}
	}
}

// PageLikesWindow fetches exactly one pagination window of the page's
// like stream starting at cursor, returning the window's likes and the
// cursor that resumes after them. It is the global work queue's probe
// primitive: one request per task, so a quiet page's tail probe costs
// one politeness slot and the scheduler decides when the next window
// is worth probing. An empty window means the cursor is at the live
// tail; a short non-empty window means the tail is near (the stream
// may still grow). PageLikesSince remains the drain-to-tail loop over
// this primitive.
func (c *Client) PageLikesWindow(ctx context.Context, id int64, cursor int) ([]api.LikeDoc, int, error) {
	var doc api.PageLikesDoc
	path := fmt.Sprintf("/api/page/%d/likes?cursor=%d&limit=%d", id, cursor, c.cfg.PageSize)
	if err := c.get(ctx, path, false, &doc); err != nil {
		return nil, cursor, err
	}
	return doc.Likes, doc.NextCursor, nil
}

// User fetches a public profile.
func (c *Client) User(ctx context.Context, id int64) (api.UserDoc, error) {
	var doc api.UserDoc
	err := c.get(ctx, fmt.Sprintf("/api/user/%d", id), false, &doc)
	return doc, err
}

// UserFriends fetches the full friend list; ErrPrivate when hidden.
// Pagination is cursor-first (keyset over the ID-sorted list): windows
// tile the ID space, so friends present when the crawl began are
// collected exactly once even if edges are inserted mid-crawl — offset
// windows would shift under an insert and duplicate or drop entries.
func (c *Client) UserFriends(ctx context.Context, id int64) ([]int64, error) {
	var out []int64
	var cursor int64
	for {
		var doc api.UserFriendsDoc
		path := fmt.Sprintf("/api/user/%d/friends?cursor=%d&limit=%d", id, cursor, c.cfg.PageSize)
		if err := c.get(ctx, path, false, &doc); err != nil {
			return nil, err
		}
		out = append(out, doc.Friends...)
		cursor = doc.NextCursor
		if len(doc.Friends) < c.cfg.PageSize {
			return out, nil
		}
	}
}

// UserLikes fetches the full page-like list of a user by cursor paging
// the user's append-only like stream to its live tail: a like landing
// mid-crawl only ever extends the tail, so the crawl sees every page
// exactly once (the same contract PageLikesSince gives page streams).
func (c *Client) UserLikes(ctx context.Context, id int64) ([]int64, error) {
	var out []int64
	cursor := 0
	for {
		var doc api.UserLikesDoc
		path := fmt.Sprintf("/api/user/%d/likes?cursor=%d&limit=%d", id, cursor, c.cfg.PageSize)
		if err := c.get(ctx, path, false, &doc); err != nil {
			return nil, err
		}
		out = append(out, doc.Pages...)
		cursor = doc.NextCursor
		if len(doc.Pages) < c.cfg.PageSize {
			return out, nil
		}
	}
}

// Users fetches up to api.MaxPageSize public profiles in one batched
// request. Unknown IDs are skipped by the server (a profile deleted
// mid-crawl is not an error), so the response may be shorter than ids.
func (c *Client) Users(ctx context.Context, ids []int64) ([]api.UserDoc, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	if len(ids) > api.MaxPageSize {
		return nil, fmt.Errorf("crawler: batch of %d ids exceeds %d", len(ids), api.MaxPageSize)
	}
	strs := make([]string, len(ids))
	for i, id := range ids {
		strs[i] = strconv.FormatInt(id, 10)
	}
	var doc api.UsersDoc
	if err := c.get(ctx, "/api/users?ids="+strings.Join(strs, ","), false, &doc); err != nil {
		return nil, err
	}
	return doc.Users, nil
}

// Directory fetches a window of the searchable directory.
func (c *Client) Directory(ctx context.Context, offset, limit int) (api.DirectoryDoc, error) {
	var doc api.DirectoryDoc
	err := c.get(ctx, fmt.Sprintf("/api/directory?offset=%d&limit=%d", offset, limit), false, &doc)
	return doc, err
}

// AdminReport fetches the page-admin aggregate report.
func (c *Client) AdminReport(ctx context.Context, page int64) (api.ReportDoc, error) {
	var doc api.ReportDoc
	err := c.get(ctx, fmt.Sprintf("/api/admin/report/%d", page), true, &doc)
	return doc, err
}

// LikerProfile is the per-liker crawl output: the §3 data collection
// unit (profile attributes, friend list when public, page-like list).
type LikerProfile struct {
	User          api.UserDoc
	Friends       []int64
	FriendsHidden bool
	PageLikes     []int64
}

// CrawlLikers crawls every liker of a page: profile, friend list (noting
// privacy), and page-like list.
func (c *Client) CrawlLikers(ctx context.Context, page int64) ([]LikerProfile, error) {
	likes, err := c.PageLikes(ctx, page)
	if err != nil {
		return nil, err
	}
	var out []LikerProfile
	for _, lk := range likes {
		u, err := c.User(ctx, lk.User)
		if err != nil {
			return nil, err
		}
		prof := LikerProfile{User: u}
		friends, err := c.UserFriends(ctx, lk.User)
		switch {
		case errors.Is(err, ErrPrivate):
			prof.FriendsHidden = true
		case err != nil:
			return nil, err
		default:
			prof.Friends = friends
		}
		pages, err := c.UserLikes(ctx, lk.User)
		if err != nil {
			return nil, err
		}
		prof.PageLikes = pages
		out = append(out, prof)
	}
	return out, nil
}
