package crawler

import (
	"context"
	"testing"
	"time"

	"net/http/httptest"

	"repro/internal/api"
	"repro/internal/socialnet"
)

// TestCrawlerSurvivesThrottledServer is the failure-injection test for
// the 429 path: a tightly rate-limited server must slow the crawler
// down, not break it.
func TestCrawlerSurvivesThrottledServer(t *testing.T) {
	st := socialnet.NewStore()
	page, err := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		u := st.AddUser(socialnet.User{Country: "USA", FriendsPublic: true})
		_ = st.AddLike(u, page, time.Date(2014, 3, 12, i, 0, 0, 0, time.UTC))
	}
	// 300 req/s with burst 3: the ~40-request crawl must hit 429s.
	srv := httptest.NewServer(api.Throttle(api.NewServer(st, ""), 300, 3))
	defer srv.Close()

	cfg := DefaultConfig(srv.URL)
	cfg.MinInterval = 0
	cfg.Backoff = 5 * time.Millisecond
	cfg.RetryAfterCap = 20 * time.Millisecond
	cfg.MaxRetries = 8
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := c.CrawlLikers(context.Background(), int64(page))
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 12 {
		t.Fatalf("profiles = %d, want 12", len(profiles))
	}
	if c.Retries() == 0 {
		t.Fatal("throttled crawl should have retried at least once")
	}
}

func TestCrawlerHonorsRetryAfterCap(t *testing.T) {
	st := socialnet.NewStore()
	page, err := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	// Extremely slow refill: Retry-After will suggest whole seconds,
	// which the crawler caps at 2 s; with 1 retry it must give up fast
	// rather than hang.
	srv := httptest.NewServer(api.Throttle(api.NewServer(st, ""), 0.001, 1))
	defer srv.Close()
	cfg := DefaultConfig(srv.URL)
	cfg.MinInterval = 0
	cfg.MaxRetries = 1
	cfg.Backoff = time.Millisecond
	cfg.RetryAfterCap = 100 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First request consumes the only token; the second must 429 twice
	// and fail in bounded time.
	if _, err := c.Page(context.Background(), int64(page)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Page(context.Background(), int64(page))
	if err == nil {
		t.Fatal("expected rate-limit failure")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("gave up too slowly: %v", elapsed)
	}
}
