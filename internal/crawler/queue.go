package crawler

import (
	"context"
	"slices"
	"sync"

	"repro/internal/api"
)

// This file is the global crawl work queue: one shared queue of typed
// tasks — {cursor probe for page P} and {profile batch for window W of
// page P} — consumed by the pipeline's worker pool, so every page in
// the roster makes progress concurrently. A quiet page's tail probe
// rides the same queue as a busy page's profile batches; the politeness
// limiter stays the only serialization point between them. The
// page-sequential loop (PipelineConfig.Sequential) is kept as the
// comparison baseline and static fallback.
//
// Atomicity is window-grained, exactly as before: a window's likes are
// folded into the sink and its page's cursor advanced in one emitMu
// critical section, only after every new liker the window surfaced has
// been fetched and emitted. Windows of a page close in stream order —
// a later window whose profiles finish early waits for its
// predecessors — so a checkpoint can never claim a window the sink has
// not seen. What the queue adds is that a page's PROBING runs ahead of
// its closes: new windows are discovered and their profile batches
// queued while earlier windows are still in flight, and those open
// windows ride the checkpoint (Checkpoint.Windows) so a kill/resume
// rebuilds them — stored like payloads are folded at close after the
// resume, pending profiles are refetched, nothing is double-fed and
// nothing starves.

// WindowState is one probed-but-not-yet-closed cursor window of a
// page's like stream, as serialized into Checkpoint.Windows. Start and
// Next delimit the window in the page's append-stream coordinates;
// Likes is the window's event payload (fetched once, folded into the
// sink only when the window closes); Pending lists the users surfaced
// by this window whose profile batch had not completed at checkpoint
// time (a resume refetches exactly these, minus any since crawled).
type WindowState struct {
	Page    int64         `json:"page"`
	Start   int           `json:"start"`
	Next    int           `json:"next"`
	Likes   []api.LikeDoc `json:"likes"`
	Pending []int64       `json:"pending,omitempty"`
}

// window is the live form of a WindowState.
type window struct {
	page  int64
	start int
	next  int
	likes []api.LikeDoc
	// pending holds users surfaced by this window whose batch has not
	// completed; batches counts outstanding batch tasks. Both are
	// guarded by the scheduler's mu.
	pending map[int64]bool
	batches int
}

type taskKind uint8

const (
	taskProbe taskKind = iota
	taskBatch
)

// task is one unit of queue work: a cursor probe (read one like-stream
// window of page at cursor) or a profile batch (fetch ids' profiles
// for win).
type task struct {
	kind   taskKind
	page   int64
	cursor int      // probe: the cursor to read from
	win    *window  // batch: the window the ids belong to
	ids    []int64  // batch: the users to fetch
}

// pageState tracks one page's place in the crawl.
type pageState struct {
	// probeCursor is where the next probe reads from — the frontier,
	// which runs ahead of the page's checkpointed cursor while windows
	// are open.
	probeCursor int
	// probing marks a probe task queued or executing (at most one per
	// page, so windows are discovered in stream order).
	probing bool
	// atTail marks that the last probe hit the stream's (near-)tail —
	// an empty or short window. Probing then pauses until every open
	// window has closed: the final tail check must happen-after all
	// processing, preserving the "live likes are picked up before
	// Crawl returns" guarantee, and quiet pages keep their two-probe
	// request budget.
	atTail bool
	// done marks the page fully drained: a probe came back empty with
	// no windows open.
	done bool
	// open is the page's in-flight windows in stream order; only the
	// head may close.
	open []*window
}

// scheduler is the global work queue and its bookkeeping. Lock order:
// closeMu → emitMu → mu → the pipeline's mu; the pipeline's mu is
// never held while taking mu.
type scheduler struct {
	p      *Pipeline
	emit   func(int64, LikerProfile) error
	cancel context.CancelFunc

	mu          sync.Mutex
	cond        *sync.Cond
	tasks       []task
	outstanding int // queued + executing tasks
	closed      bool
	err         error
	pages       map[int64]*pageState
	order       []int64 // page order as given to Crawl, for determinism

	// closeMu serializes window closes — per page in cursor order, and
	// globally so OnCheckpoint is never invoked concurrently.
	closeMu sync.Mutex
}

// newScheduler seeds the queue: per-page state at the checkpointed
// cursors, restored in-flight windows (their pending profiles become
// batch tasks, their stored likes wait for the close), and one initial
// probe per page. It installs itself as p.sched before returning.
func newScheduler(p *Pipeline, pages []int64, emit func(int64, LikerProfile) error, cancel context.CancelFunc) *scheduler {
	s := &scheduler{
		p:      p,
		emit:   emit,
		cancel: cancel,
		pages:  make(map[int64]*pageState, len(pages)),
	}
	s.cond = sync.NewCond(&s.mu)

	// Seeding and installing happen in ONE emitMu critical section: a
	// concurrent Checkpoint sees either the pipeline's resumeWindows
	// (before) or the installed scheduler carrying those same windows
	// (after), never a gap with the in-flight windows in neither — the
	// "windows ride any Checkpoint" guarantee has no hole.
	p.emitMu.Lock()
	defer p.emitMu.Unlock()

	// Consume the resume windows once: group by page, discard windows
	// already covered by the page's cursor (a prior crawl closed them)
	// or belonging to pages outside this crawl (safe: their cursor
	// never advanced past them, so a later crawl refetches).
	restored := make(map[int64][]WindowState)
	for _, ws := range p.takeResumeWindows() {
		restored[ws.Page] = append(restored[ws.Page], ws)
	}

	s.mu.Lock()
	for _, page := range pages {
		if _, dup := s.pages[page]; dup {
			continue
		}
		ps := &pageState{probeCursor: p.cursorOf(page)}
		s.pages[page] = ps
		s.order = append(s.order, page)
		for _, ws := range restored[page] {
			if ws.Start < ps.probeCursor {
				continue // already covered
			}
			w := &window{page: page, start: ws.Start, next: ws.Next, likes: ws.Likes, pending: make(map[int64]bool)}
			var todo []int64
			p.mu.Lock()
			for _, id := range ws.Pending {
				if !p.crawled[id] && !w.pending[id] {
					w.pending[id] = true
					todo = append(todo, id)
				}
			}
			p.mu.Unlock()
			ps.open = append(ps.open, w)
			ps.probeCursor = ws.Next
			s.pushBatchesLocked(w, todo)
		}
		s.maybeProbeLocked(page, ps)
	}
	s.mu.Unlock()
	p.sched = s
	return s
}

// start folds restored windows that arrived already closable (every
// Pending user crawled before the checkpoint, e.g. via another page)
// and then closes the queue if there is nothing to do. Such a page may
// hold open windows yet have no batch task and — at the ProbeAhead
// cap — no probe either, so without this pass no queue task would ever
// reference it and its likes would never reach the sink. Runs before
// the workers, outside any lock.
func (s *scheduler) start(pages []int64) {
	for _, page := range pages {
		if err := s.drain(page); err != nil {
			s.fail(err)
			return
		}
	}
	s.mu.Lock()
	if s.outstanding == 0 && !s.closed {
		s.closed = true // nothing to do (empty pages, or all restored windows folded)
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// pushLocked enqueues a task; the caller holds mu.
func (s *scheduler) pushLocked(t task) {
	s.tasks = append(s.tasks, t)
	s.outstanding++
	s.cond.Signal()
}

// pushBatchesLocked splits todo into BatchSize batch tasks for w; the
// caller holds mu.
func (s *scheduler) pushBatchesLocked(w *window, todo []int64) {
	for start := 0; start < len(todo); start += s.p.cfg.BatchSize {
		end := min(start+s.p.cfg.BatchSize, len(todo))
		w.batches++
		s.pushLocked(task{kind: taskBatch, page: w.page, win: w, ids: todo[start:end]})
	}
}

// maybeProbeLocked queues the page's next cursor probe when one is
// due: never more than one in flight, never past ProbeAhead open
// windows, and — once the tail has been sighted — only after every
// open window has closed. The caller holds mu.
func (s *scheduler) maybeProbeLocked(page int64, ps *pageState) {
	if ps.done || ps.probing {
		return
	}
	if len(ps.open) >= s.p.probeAhead() {
		return
	}
	if ps.atTail && len(ps.open) > 0 {
		return
	}
	ps.probing = true
	s.pushLocked(task{kind: taskProbe, page: page, cursor: ps.probeCursor})
}

// next blocks until a task is available or the queue is closed.
func (s *scheduler) next() (task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.tasks) == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return task{}, false
	}
	var t task
	if s.p.cfg.lifo {
		t = s.tasks[len(s.tasks)-1]
		s.tasks = s.tasks[:len(s.tasks)-1]
	} else {
		t = s.tasks[0]
		s.tasks = s.tasks[1:]
	}
	return t, true
}

// finish retires one task; the queue closes when the last task
// retires with nothing queued (tasks are only pushed by executing
// tasks, so outstanding == 0 means quiescent: every page is done).
func (s *scheduler) finish() {
	s.mu.Lock()
	s.outstanding--
	if s.outstanding == 0 && !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// fail records the first error, closes the queue, and cancels the
// crawl context so in-flight requests abort.
func (s *scheduler) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	s.cancel()
}

// worker is the queue consumer loop run by each pipeline worker.
func (s *scheduler) worker(ctx context.Context) {
	for {
		t, ok := s.next()
		if !ok {
			return
		}
		var err error
		switch t.kind {
		case taskProbe:
			err = s.runProbe(ctx, t)
		default:
			err = s.runBatch(ctx, t)
		}
		if err != nil {
			s.fail(err)
		}
		s.finish()
	}
}

// runProbe reads one like-stream window at the page's frontier. A
// non-empty window becomes an open window with its new likers queued
// as batch tasks; a full window keeps the probe frontier running ahead
// immediately, a short or empty one parks probing until the page's
// open windows drain (the happens-after tail check).
func (s *scheduler) runProbe(ctx context.Context, t task) error {
	likes, next, err := s.p.cl.PageLikesWindow(ctx, t.page, t.cursor)
	if err != nil {
		return err
	}

	if len(likes) == 0 {
		s.mu.Lock()
		ps := s.pages[t.page]
		ps.probing = false
		ps.atTail = true
		if len(ps.open) == 0 {
			ps.done = true
		}
		s.mu.Unlock()
		// The head window can already be closable here with no batch
		// task left to trigger the fold — a restored window whose
		// Pending users were all crawled elsewhere. Skipping the drain
		// would strand it: its likes never reach the sink, the cursor
		// never advances, and Crawl returns success anyway.
		return s.drain(t.page)
	}

	w := &window{page: t.page, start: t.cursor, next: next, likes: likes, pending: make(map[int64]bool)}
	var todo []int64
	s.p.mu.Lock()
	for _, lk := range likes {
		if !s.p.crawled[lk.User] && !w.pending[lk.User] {
			w.pending[lk.User] = true
			todo = append(todo, lk.User)
		}
	}
	s.p.mu.Unlock()

	s.mu.Lock()
	ps := s.pages[t.page]
	ps.probing = false
	ps.atTail = len(likes) < s.p.cl.cfg.PageSize
	ps.probeCursor = next
	ps.open = append(ps.open, w)
	s.pushBatchesLocked(w, todo)
	s.maybeProbeLocked(t.page, ps)
	s.mu.Unlock()

	// The window may already be closable (every liker known), and it
	// may have opened at the head.
	return s.drain(t.page)
}

// runBatch fetches one profile batch through the shared crawlBatch
// path (emit + sink + mark-crawled under emitMu, exactly as the
// sequential engine), then retires the batch from its window and
// closes whatever windows became closable.
func (s *scheduler) runBatch(ctx context.Context, t task) error {
	if err := s.p.crawlBatch(ctx, t.page, t.ids, s.emit); err != nil {
		return err
	}
	s.mu.Lock()
	t.win.batches--
	for _, id := range t.ids {
		delete(t.win.pending, id)
	}
	s.mu.Unlock()
	return s.drain(t.page)
}

// drain closes the page's closable windows in stream order — the head
// window once its last batch retires, then any successors already
// finished — and re-arms probing. closeMu makes the close sequence
// exclusive: per page the head is popped and folded in order, and
// OnCheckpoint is never called concurrently.
func (s *scheduler) drain(page int64) error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	for {
		s.mu.Lock()
		ps := s.pages[page]
		if len(ps.open) == 0 || ps.open[0].batches > 0 {
			s.maybeProbeLocked(page, ps)
			s.mu.Unlock()
			return nil
		}
		w := ps.open[0]
		s.mu.Unlock()
		if err := s.closeWindow(w); err != nil {
			return err
		}
	}
}

// closeWindow retires one fully crawled window: under emitMu the
// window's likes are folded into the sink, the page's cursor advances
// to the window's end, and the window leaves the open list — one
// atomic transition, so a Checkpoint snapshot sees either {window
// open, cursor before it} or {window gone, cursor past it}, never a
// torn state. Then the per-window checkpoint callback fires, exactly
// as the sequential engine's.
func (s *scheduler) closeWindow(w *window) error {
	p := s.p
	p.emitMu.Lock()
	if p.cfg.Sink != nil && len(w.likes) > 0 {
		if err := p.cfg.Sink.ObserveLikes(w.page, w.likes); err != nil {
			p.emitMu.Unlock()
			return err
		}
	}
	p.mu.Lock()
	p.cursors[w.page] = w.next
	p.mu.Unlock()
	s.mu.Lock()
	ps := s.pages[w.page]
	ps.open = ps.open[1:] // w is the head: drain holds closeMu and peeked it
	s.mu.Unlock()
	p.emitMu.Unlock()

	if p.cfg.OnCheckpoint != nil {
		ck := p.Checkpoint()
		if err := p.SnapshotErr(); err != nil {
			return err
		}
		p.cfg.OnCheckpoint(ck)
	}
	return nil
}

// snapshotWindows serializes the open windows for a checkpoint, sorted
// by (page, start). The caller holds emitMu, so the snapshot is
// consistent with the cursors and crawled set taken under the same
// lock.
func (s *scheduler) snapshotWindows() []WindowState {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []WindowState
	for _, page := range s.order {
		for _, w := range s.pages[page].open {
			ws := WindowState{Page: w.page, Start: w.start, Next: w.next, Likes: w.likes}
			for id := range w.pending {
				ws.Pending = append(ws.Pending, id)
			}
			slices.Sort(ws.Pending)
			out = append(out, ws)
		}
	}
	slices.SortFunc(out, func(a, b WindowState) int {
		if a.Page != b.Page {
			if a.Page < b.Page {
				return -1
			}
			return 1
		}
		return a.Start - b.Start
	})
	return out
}
