package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildPath(t *testing.T, ids ...int64) *Undirected {
	t.Helper()
	g := NewUndirected()
	for i := 0; i+1 < len(ids); i++ {
		if err := g.AddEdge(ids[i], ids[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := NewUndirected()
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("edge should be symmetric")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	// duplicate is a no-op
	if err := g.AddEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edge changed count: %d", g.NumEdges())
	}
	if err := g.AddEdge(3, 3); err == nil {
		t.Fatal("self-loop should error")
	}
}

func TestRemoveNode(t *testing.T) {
	g := buildPath(t, 1, 2, 3)
	g.RemoveNode(2)
	if g.HasNode(2) || g.HasEdge(1, 2) || g.HasEdge(2, 3) {
		t.Fatal("node 2 should be fully removed")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatalf("nodes=%d edges=%d after removal", g.NumNodes(), g.NumEdges())
	}
	g.RemoveNode(99) // absent: no-op
}

func TestNeighborsSorted(t *testing.T) {
	g := NewUndirected()
	for _, m := range []int64{5, 3, 9, 1} {
		_ = g.AddEdge(0, m)
	}
	n := g.Neighbors(0)
	want := []int64{1, 3, 5, 9}
	for i := range want {
		if n[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", n, want)
		}
	}
	if len(g.Neighbors(42)) != 0 {
		t.Fatal("absent node should have no neighbors")
	}
}

func TestDegree(t *testing.T) {
	g := buildPath(t, 1, 2, 3)
	if g.Degree(2) != 2 || g.Degree(1) != 1 || g.Degree(99) != 0 {
		t.Fatalf("degrees: %d %d %d", g.Degree(2), g.Degree(1), g.Degree(99))
	}
}

func TestConnectedComponents(t *testing.T) {
	g := buildPath(t, 1, 2, 3)
	_ = g.AddEdge(10, 11)
	g.AddNode(20)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	// ordered by size desc
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes: %d %d %d", len(comps[0]), len(comps[1]), len(comps[2]))
	}
	sizes := g.ComponentSizes()
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Fatalf("ComponentSizes = %v", sizes)
	}
	if f := g.LargestComponentFraction(); f != 0.5 {
		t.Fatalf("LargestComponentFraction = %v, want 0.5", f)
	}
}

func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ids := make([]int64, 30)
		for i := range ids {
			ids[i] = int64(i)
		}
		g, err := ErdosRenyi(r, ids, 0.08)
		if err != nil {
			return false
		}
		comps := g.ConnectedComponents()
		seen := map[int64]int{}
		total := 0
		for _, c := range comps {
			total += len(c)
			for _, n := range c {
				seen[n]++
			}
		}
		if total != g.NumNodes() {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildPath(t, 1, 2, 3, 4)
	sub := g.InducedSubgraph([]int64{1, 2, 4, 99})
	if sub.NumNodes() != 3 {
		t.Fatalf("subgraph nodes = %d, want 3 (99 absent in g)", sub.NumNodes())
	}
	if !sub.HasEdge(1, 2) || sub.HasEdge(3, 4) || sub.HasEdge(2, 3) {
		t.Fatal("subgraph edges wrong")
	}
	if sub.NumEdges() != 1 {
		t.Fatalf("subgraph edges = %d, want 1", sub.NumEdges())
	}
}

func TestTwoHopClosure(t *testing.T) {
	// base: likers 1,2 share mutual friend 100 (not a liker); likers 2,3 direct.
	base := NewUndirected()
	_ = base.AddEdge(1, 100)
	_ = base.AddEdge(2, 100)
	_ = base.AddEdge(2, 3)
	_ = base.AddEdge(4, 200) // liker 4 isolated from others
	th := TwoHopClosure([]int64{1, 2, 3, 4}, base)
	if !th.HasEdge(1, 2) {
		t.Fatal("mutual friend should connect 1-2")
	}
	if !th.HasEdge(2, 3) {
		t.Fatal("direct edge should persist")
	}
	if th.HasEdge(1, 3) {
		t.Fatal("1-3 share no mutual friend and no edge")
	}
	if th.Degree(4) != 0 {
		t.Fatal("4 should stay isolated")
	}
	if !th.HasNode(4) {
		t.Fatal("isolated liker should still be a node")
	}
}

func TestTwoHopSupersetOfDirectProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ids := make([]int64, 40)
		for i := range ids {
			ids[i] = int64(i)
		}
		base, err := ErdosRenyi(r, ids, 0.1)
		if err != nil {
			return false
		}
		likers := ids[:15]
		direct := base.InducedSubgraph(likers)
		th := TwoHopClosure(likers, base)
		for _, e := range direct.Edges() {
			if !th.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return th.NumEdges() >= direct.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeSummary(t *testing.T) {
	g := buildPath(t, 1, 2, 3) // degrees 1,2,1
	s := g.DegreeSummary()
	if s.N != 3 || s.Min != 1 || s.Max != 2 || s.Median != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean < 1.3 || s.Mean > 1.4 {
		t.Fatalf("mean = %v, want 4/3", s.Mean)
	}
	empty := NewUndirected().DegreeSummary()
	if empty.N != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: clustering 1.
	tri := NewUndirected()
	_ = tri.AddEdge(1, 2)
	_ = tri.AddEdge(2, 3)
	_ = tri.AddEdge(1, 3)
	if c := tri.ClusteringCoefficient(); c != 1 {
		t.Fatalf("triangle clustering = %v, want 1", c)
	}
	// Path: clustering 0.
	path := buildPath(t, 1, 2, 3)
	if c := path.ClusteringCoefficient(); c != 0 {
		t.Fatalf("path clustering = %v, want 0", c)
	}
	if c := NewUndirected().ClusteringCoefficient(); c != 0 {
		t.Fatalf("empty clustering = %v", c)
	}
}

func TestClone(t *testing.T) {
	g := buildPath(t, 1, 2, 3)
	c := g.Clone()
	_ = c.AddEdge(3, 4)
	if g.HasNode(4) {
		t.Fatal("mutating clone affected original")
	}
	if c.NumEdges() != 3 || g.NumEdges() != 2 {
		t.Fatalf("edges: clone=%d orig=%d", c.NumEdges(), g.NumEdges())
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := NewUndirected()
	_ = g.AddEdge(5, 2)
	_ = g.AddEdge(1, 9)
	_ = g.AddEdge(1, 3)
	e := g.Edges()
	want := [][2]int64{{1, 3}, {1, 9}, {2, 5}}
	for i := range want {
		if e[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", e, want)
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ids := make([]int64, 50)
	for i := range ids {
		ids[i] = int64(i)
	}
	g, err := ErdosRenyi(r, ids, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 50 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Expected edges ≈ C(50,2)*0.2 = 245.
	if g.NumEdges() < 180 || g.NumEdges() > 310 {
		t.Fatalf("edges = %d, want ≈245", g.NumEdges())
	}
	if _, err := ErdosRenyi(r, ids, 1.5); err == nil {
		t.Fatal("p>1 should error")
	}
}

func TestWattsStrogatz(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ids := make([]int64, 100)
	for i := range ids {
		ids[i] = int64(i + 1000)
	}
	g, err := WattsStrogatz(r, ids, 6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Ring lattice has n*k/2 edges; rewiring preserves the count.
	if g.NumEdges() != 300 {
		t.Fatalf("edges = %d, want 300", g.NumEdges())
	}
	if f := g.LargestComponentFraction(); f < 0.99 {
		t.Fatalf("WS graph should be connected, largest frac = %v", f)
	}
	// Low beta keeps clustering well above random-graph levels.
	if c := g.ClusteringCoefficient(); c < 0.2 {
		t.Fatalf("WS clustering = %v, want high", c)
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ids := []int64{1, 2, 3, 4, 5, 6}
	if _, err := WattsStrogatz(r, ids[:2], 2, 0.1); err == nil {
		t.Fatal("n<3 should error")
	}
	if _, err := WattsStrogatz(r, ids, 3, 0.1); err == nil {
		t.Fatal("odd k should error")
	}
	if _, err := WattsStrogatz(r, ids, 6, 0.1); err == nil {
		t.Fatal("k>=n should error")
	}
	if _, err := WattsStrogatz(r, ids, 2, 2); err == nil {
		t.Fatal("beta>1 should error")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ids := make([]int64, 200)
	for i := range ids {
		ids[i] = int64(i)
	}
	g, err := BarabasiAlbert(r, ids, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if f := g.LargestComponentFraction(); f != 1 {
		t.Fatalf("BA graph must be connected, frac = %v", f)
	}
	s := g.DegreeSummary()
	if s.Max < 15 {
		t.Fatalf("BA should grow hubs, max degree = %d", s.Max)
	}
	if s.Min < 3 {
		t.Fatalf("every arriving node attaches m=3 edges, min = %d", s.Min)
	}
	if _, err := BarabasiAlbert(r, ids[:2], 3); err == nil {
		t.Fatal("too few nodes should error")
	}
	if _, err := BarabasiAlbert(r, ids, 0); err == nil {
		t.Fatal("m=0 should error")
	}
}

func TestPairsAndTriplets(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ids := make([]int64, 90)
	for i := range ids {
		ids[i] = int64(i)
	}
	g, err := PairsAndTriplets(r, ids, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 90 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	sizes := g.ComponentSizes()
	for size := range sizes {
		if size > 3 {
			t.Fatalf("island of size %d > 3: %v", size, sizes)
		}
	}
	if sizes[2] == 0 || sizes[3] == 0 {
		t.Fatalf("want both pairs and triplets: %v", sizes)
	}
	if _, err := PairsAndTriplets(r, ids, -0.1); err == nil {
		t.Fatal("bad fraction should error")
	}
}

func TestAttachPeriphery(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	g := NewUndirected()
	core := []int64{1, 2, 3, 4, 5}
	for _, c := range core {
		g.AddNode(c)
	}
	periphery := []int64{100, 101, 102}
	if err := AttachPeriphery(r, g, periphery, core, 3); err != nil {
		t.Fatal(err)
	}
	attached := 0
	for _, p := range periphery {
		if g.Degree(p) > 0 {
			attached++
		}
		for _, n := range g.Neighbors(p) {
			isCore := false
			for _, c := range core {
				if n == c {
					isCore = true
				}
			}
			if !isCore {
				t.Fatalf("periphery node %d attached to non-core %d", p, n)
			}
		}
	}
	if attached == 0 {
		t.Fatal("no periphery node attached with mean degree 3")
	}
	if err := AttachPeriphery(r, g, periphery, nil, 3); err == nil {
		t.Fatal("empty core should error")
	}
	if err := AttachPeriphery(r, g, periphery, core, -1); err == nil {
		t.Fatal("negative mean should error")
	}
}
