// Package graph implements the undirected-graph machinery behind the
// paper's social-graph analysis (§4.3): adjacency storage, connected
// components, 2-hop closures, degree statistics, and clustering
// coefficients, plus the random-graph generators used to synthesize farm
// account topologies (isolated pairs/triplets vs a well-connected core).
package graph

import (
	"fmt"
	"sort"
)

// Undirected is an undirected simple graph over int64 node IDs. Nodes are
// created implicitly by AddEdge or explicitly by AddNode. Self-loops and
// parallel edges are rejected/ignored respectively.
type Undirected struct {
	adj   map[int64]map[int64]struct{}
	edges int
}

// NewUndirected returns an empty graph.
func NewUndirected() *Undirected {
	return &Undirected{adj: make(map[int64]map[int64]struct{})}
}

// AddNode ensures the node exists (possibly isolated).
func (g *Undirected) AddNode(id int64) {
	if _, ok := g.adj[id]; !ok {
		g.adj[id] = make(map[int64]struct{})
	}
}

// HasNode reports whether the node exists.
func (g *Undirected) HasNode(id int64) bool {
	_, ok := g.adj[id]
	return ok
}

// AddEdge inserts an undirected edge. Self-loops are an error; duplicate
// edges are a no-op.
func (g *Undirected) AddEdge(a, b int64) error {
	if a == b {
		return fmt.Errorf("graph: self-loop on node %d", a)
	}
	g.AddNode(a)
	g.AddNode(b)
	if _, dup := g.adj[a][b]; dup {
		return nil
	}
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
	g.edges++
	return nil
}

// HasEdge reports whether edge {a,b} exists.
func (g *Undirected) HasEdge(a, b int64) bool {
	_, ok := g.adj[a][b]
	return ok
}

// RemoveNode deletes a node and all incident edges.
func (g *Undirected) RemoveNode(id int64) {
	nbrs, ok := g.adj[id]
	if !ok {
		return
	}
	for n := range nbrs {
		delete(g.adj[n], id)
		g.edges--
	}
	delete(g.adj, id)
}

// NumNodes and NumEdges return graph sizes.
func (g *Undirected) NumNodes() int { return len(g.adj) }
func (g *Undirected) NumEdges() int { return g.edges }

// Degree returns the degree of a node (0 if absent).
func (g *Undirected) Degree(id int64) int { return len(g.adj[id]) }

// Neighbors returns a sorted copy of a node's neighbor set.
func (g *Undirected) Neighbors(id int64) []int64 {
	nbrs := g.adj[id]
	out := make([]int64, 0, len(nbrs))
	for n := range nbrs {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Nodes returns all node IDs in sorted order.
func (g *Undirected) Nodes() []int64 {
	out := make([]int64, 0, len(g.adj))
	for id := range g.adj {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all edges as sorted (a<b) pairs in deterministic order.
func (g *Undirected) Edges() [][2]int64 {
	out := make([][2]int64, 0, g.edges)
	for a, nbrs := range g.adj {
		for b := range nbrs {
			if a < b {
				out = append(out, [2]int64{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ConnectedComponents returns the node partition into components, each
// sorted, ordered by (size desc, smallest node asc) for determinism.
func (g *Undirected) ConnectedComponents() [][]int64 {
	seen := make(map[int64]bool, len(g.adj))
	var comps [][]int64
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		var comp []int64
		queue := []int64{start}
		seen[start] = true
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			comp = append(comp, n)
			for _, m := range g.Neighbors(n) {
				if !seen[m] {
					seen[m] = true
					queue = append(queue, m)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// ComponentSizes returns the component size census as a size->count map.
// The paper's Figure 3 discussion hinges on this: SF/AL/MS likers form
// isolated pairs and triplets while BL likers form one large component.
func (g *Undirected) ComponentSizes() map[int]int {
	out := make(map[int]int)
	for _, c := range g.ConnectedComponents() {
		out[len(c)]++
	}
	return out
}

// LargestComponentFraction returns |largest component| / |nodes|, or 0
// for an empty graph.
func (g *Undirected) LargestComponentFraction() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	comps := g.ConnectedComponents()
	return float64(len(comps[0])) / float64(len(g.adj))
}

// InducedSubgraph returns the subgraph over the given node set (nodes
// absent from g are ignored).
func (g *Undirected) InducedSubgraph(nodes []int64) *Undirected {
	keep := make(map[int64]struct{}, len(nodes))
	for _, n := range nodes {
		if g.HasNode(n) {
			keep[n] = struct{}{}
		}
	}
	sub := NewUndirected()
	for n := range keep {
		sub.AddNode(n)
		for m := range g.adj[n] {
			if _, ok := keep[m]; ok && n < m {
				_ = sub.AddEdge(n, m)
			}
		}
	}
	return sub
}

// TwoHopClosure returns a new graph over the same node set where an edge
// {a,b} exists iff a and b are adjacent in g OR share at least one common
// neighbor in base. This matches the paper's "2-hop friendship relations"
// (Figure 3(b), Table 3 last column): likers connected directly or via a
// mutual friend, where the mutual friend may be any user in the base
// graph, not only a liker.
func TwoHopClosure(likers []int64, base *Undirected) *Undirected {
	out := NewUndirected()
	set := make(map[int64]struct{}, len(likers))
	for _, n := range likers {
		if base.HasNode(n) {
			set[n] = struct{}{}
			out.AddNode(n)
		}
	}
	// Invert: for every node v in base adjacent to >=2 likers, connect
	// those likers pairwise. Also copy direct liker-liker edges.
	for a := range set {
		for b := range base.adj[a] {
			if _, ok := set[b]; ok && a < b {
				_ = out.AddEdge(a, b)
			}
		}
	}
	// Common-neighbor pass: group likers by shared neighbor.
	nbrLikers := make(map[int64][]int64)
	for a := range set {
		for v := range base.adj[a] {
			nbrLikers[v] = append(nbrLikers[v], a)
		}
	}
	for v, ls := range nbrLikers {
		if len(ls) < 2 {
			continue
		}
		// If v is itself a liker, direct edges already cover v's pairs
		// only partially; mutual-friend semantics still apply.
		_ = v
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		for i := 0; i < len(ls); i++ {
			for j := i + 1; j < len(ls); j++ {
				_ = out.AddEdge(ls[i], ls[j])
			}
		}
	}
	return out
}

// DegreeStats summarizes node degrees.
type DegreeStats struct {
	N      int
	Mean   float64
	Median float64
	Max    int
	Min    int
}

// Degrees returns the degree sequence in node-sorted order.
func (g *Undirected) Degrees() []int {
	nodes := g.Nodes()
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = g.Degree(n)
	}
	return out
}

// DegreeSummary computes degree statistics; zero-valued for empty graphs.
func (g *Undirected) DegreeSummary() DegreeStats {
	degs := g.Degrees()
	if len(degs) == 0 {
		return DegreeStats{}
	}
	s := DegreeStats{N: len(degs), Min: degs[0], Max: degs[0]}
	sum := 0
	sorted := append([]int(nil), degs...)
	sort.Ints(sorted)
	for _, d := range degs {
		sum += d
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
	}
	s.Mean = float64(sum) / float64(len(degs))
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = float64(sorted[mid])
	} else {
		s.Median = float64(sorted[mid-1]+sorted[mid]) / 2
	}
	return s
}

// ClusteringCoefficient returns the global average local clustering
// coefficient. Nodes with degree < 2 contribute 0.
func (g *Undirected) ClusteringCoefficient() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	total := 0.0
	for n, nbrs := range g.adj {
		d := len(nbrs)
		if d < 2 {
			continue
		}
		links := 0
		lst := g.Neighbors(n)
		for i := 0; i < len(lst); i++ {
			for j := i + 1; j < len(lst); j++ {
				if g.HasEdge(lst[i], lst[j]) {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(d*(d-1))
	}
	return total / float64(len(g.adj))
}

// Clone returns a deep copy of the graph.
func (g *Undirected) Clone() *Undirected {
	out := NewUndirected()
	for n, nbrs := range g.adj {
		out.AddNode(n)
		for m := range nbrs {
			if n < m {
				_ = out.AddEdge(n, m)
			}
		}
	}
	return out
}
