package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Generators for the synthetic social topologies. The farm models use
// them to build account networks whose shape matches the paper's
// observations: BoostLikes accounts sit in one well-connected
// Watts–Strogatz-style core; SocialFormula/AuthenticLikes/MammothSocials
// accounts form isolated pairs and triplets; the organic Facebook
// population grows by preferential attachment.

// ErdosRenyi generates G(n, p) over node IDs ids. Every pair is connected
// independently with probability p.
func ErdosRenyi(r *rand.Rand, ids []int64, p float64) (*Undirected, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: edge probability %v out of [0,1]", p)
	}
	g := NewUndirected()
	for _, id := range ids {
		g.AddNode(id)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if r.Float64() < p {
				if err := g.AddEdge(ids[i], ids[j]); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// WattsStrogatz generates a small-world graph: a ring lattice over ids
// where each node connects to its k nearest neighbors (k even), with each
// edge rewired with probability beta. High local clustering + short
// paths; the model for BoostLikes's "large and well-connected network".
func WattsStrogatz(r *rand.Rand, ids []int64, k int, beta float64) (*Undirected, error) {
	n := len(ids)
	if n < 3 {
		return nil, fmt.Errorf("graph: watts-strogatz needs >=3 nodes, got %d", n)
	}
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("graph: watts-strogatz k=%d must be even and >=2", k)
	}
	if k >= n {
		return nil, fmt.Errorf("graph: watts-strogatz k=%d must be < n=%d", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graph: rewire probability %v out of [0,1]", beta)
	}
	g := NewUndirected()
	for _, id := range ids {
		g.AddNode(id)
	}
	// Ring lattice.
	for i := 0; i < n; i++ {
		for d := 1; d <= k/2; d++ {
			j := (i + d) % n
			if err := g.AddEdge(ids[i], ids[j]); err != nil {
				return nil, err
			}
		}
	}
	// Rewire.
	for i := 0; i < n; i++ {
		for d := 1; d <= k/2; d++ {
			if r.Float64() >= beta {
				continue
			}
			j := (i + d) % n
			if !g.HasEdge(ids[i], ids[j]) {
				continue // already rewired away
			}
			// pick a new endpoint, avoiding self-loops and duplicates
			for tries := 0; tries < 32; tries++ {
				m := r.Intn(n)
				if ids[m] == ids[i] || g.HasEdge(ids[i], ids[m]) {
					continue
				}
				g.removeEdge(ids[i], ids[j])
				_ = g.AddEdge(ids[i], ids[m])
				break
			}
		}
	}
	return g, nil
}

// BarabasiAlbert generates a preferential-attachment graph: nodes arrive
// one at a time and attach m edges to existing nodes with probability
// proportional to degree. Models the organic Facebook friendship graph's
// heavy-tailed degree distribution.
func BarabasiAlbert(r *rand.Rand, ids []int64, m int) (*Undirected, error) {
	n := len(ids)
	if m < 1 {
		return nil, fmt.Errorf("graph: barabasi-albert m=%d must be >=1", m)
	}
	if n < m+1 {
		return nil, fmt.Errorf("graph: barabasi-albert needs >= m+1=%d nodes, got %d", m+1, n)
	}
	g := NewUndirected()
	// Seed: a small clique of m+1 nodes.
	for i := 0; i <= m; i++ {
		g.AddNode(ids[i])
		for j := 0; j < i; j++ {
			if err := g.AddEdge(ids[i], ids[j]); err != nil {
				return nil, err
			}
		}
	}
	// Repeated-endpoint list: sampling uniformly from it is sampling
	// proportional to degree.
	var stubs []int64
	for _, e := range g.Edges() {
		stubs = append(stubs, e[0], e[1])
	}
	for i := m + 1; i < n; i++ {
		g.AddNode(ids[i])
		targets := make(map[int64]struct{}, m)
		ordered := make([]int64, 0, m) // keep RNG-draw order, not map order
		for len(targets) < m {
			t := stubs[r.Intn(len(stubs))]
			if t == ids[i] {
				continue
			}
			if _, dup := targets[t]; dup {
				continue
			}
			targets[t] = struct{}{}
			ordered = append(ordered, t)
		}
		for _, t := range ordered {
			if err := g.AddEdge(ids[i], t); err != nil {
				return nil, err
			}
			stubs = append(stubs, ids[i], t)
		}
	}
	return g, nil
}

// PairsAndTriplets partitions ids into connected islands of size 2 and 3
// (plus at most one leftover singleton or one island resized to fit),
// with tripletFrac of the islands being triplets. This is the topology
// the paper observes for SocialFormula/AuthenticLikes/MammothSocials
// likers: "many isolated pairs and triplets of likers who are not
// connected", limiting blast radius if one fake account is identified.
func PairsAndTriplets(r *rand.Rand, ids []int64, tripletFrac float64) (*Undirected, error) {
	if tripletFrac < 0 || tripletFrac > 1 {
		return nil, fmt.Errorf("graph: triplet fraction %v out of [0,1]", tripletFrac)
	}
	g := NewUndirected()
	for _, id := range ids {
		g.AddNode(id)
	}
	// Shuffle a copy for random island membership.
	perm := append([]int64(nil), ids...)
	r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	i := 0
	for i < len(perm) {
		size := 2
		if r.Float64() < tripletFrac {
			size = 3
		}
		if rem := len(perm) - i; rem < size {
			size = rem
		}
		island := perm[i : i+size]
		for a := 1; a < len(island); a++ {
			if err := g.AddEdge(island[0], island[a]); err != nil {
				return nil, err
			}
		}
		if len(island) == 3 && r.Float64() < 0.5 {
			_ = g.AddEdge(island[1], island[2]) // sometimes a closed triangle
		}
		i += size
	}
	return g, nil
}

// AttachPeriphery connects each node in periphery to approximately
// degreeMean random nodes in core, modelling fake accounts that pad their
// friend lists with organic users to look real.
func AttachPeriphery(r *rand.Rand, g *Undirected, periphery, core []int64, degreeMean float64) error {
	if degreeMean < 0 {
		return fmt.Errorf("graph: negative mean degree %v", degreeMean)
	}
	if len(core) == 0 {
		return fmt.Errorf("graph: empty core to attach to")
	}
	for _, p := range periphery {
		k := poissonLike(r, degreeMean)
		if k > len(core) {
			k = len(core)
		}
		for t := 0; t < k; t++ {
			c := core[r.Intn(len(core))]
			if c == p {
				continue
			}
			_ = g.AddEdge(p, c)
		}
	}
	return nil
}

func poissonLike(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := int(math.Round(lambda + r.NormFloat64()*math.Sqrt(lambda)))
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// removeEdge deletes an edge if present (internal helper for rewiring).
func (g *Undirected) removeEdge(a, b int64) {
	if _, ok := g.adj[a][b]; !ok {
		return
	}
	delete(g.adj[a], b)
	delete(g.adj[b], a)
	g.edges--
}
