package socialnet

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/parallel"
)

// LikeSource tags where a journal record entered the system.
type LikeSource uint8

// Like-event sources.
const (
	// SourceLike is an interactive like recorded by AddLike: it is
	// indexed on both the user and the page side.
	SourceLike LikeSource = iota
	// SourceHistory is a bulk pre-study history record imported by
	// AddHistory: user-side only, never on a honeypot page.
	SourceHistory
)

// String implements fmt.Stringer.
func (s LikeSource) String() string {
	if s == SourceHistory {
		return "history"
	}
	return "like"
}

// LikeEvent is one append-only journal record: user liked page at the
// given instant, entering via the given write path.
type LikeEvent struct {
	At     time.Time
	User   UserID
	Page   PageID
	Source LikeSource
}

// Like converts the event to the index form.
func (e LikeEvent) Like() Like { return Like{User: e.User, Page: e.Page, At: e.At} }

// cmpEvents is the canonical total order on like events: by time, ties
// by user ID, then page ID. (user, page) pairs are unique across the
// journal — AddLike dedupes and AddHistory forbids repeats — so this is
// a strict total order: any two stores holding the same events agree on
// it no matter how the events were sharded or interleaved at append
// time. Every streaming consumer (aggregators, readers) sees events in
// this order (globally or per shard), which is what the engine's
// bit-determinism rests on.
//
// Time compares by UnixNano — equivalent to time.Time ordering for any
// instant a simulation produces (wall-clock times within ±292 years of
// 1970) and several times cheaper in the hot sort path.
func cmpEvents(a, b LikeEvent) int {
	if c := cmp.Compare(a.At.UnixNano(), b.At.UnixNano()); c != 0 {
		return c
	}
	if c := cmp.Compare(a.User, b.User); c != 0 {
		return c
	}
	return cmp.Compare(a.Page, b.Page)
}

// eventLess is cmpEvents as a strict less-than.
func eventLess(a, b LikeEvent) bool { return cmpEvents(a, b) < 0 }

// sortEvents orders a slice canonically in place.
func sortEvents(evs []LikeEvent) { slices.SortFunc(evs, cmpEvents) }

// journalShard is one append-only partition of the event log. Events
// are kept strictly in arrival order — nothing ever sorts the backing
// slice in place — so integer offsets into a shard remain valid
// forever, which is what Reader cursors rely on.
type journalShard struct {
	mu     sync.RWMutex
	events []LikeEvent
}

// Journal is a sharded, append-only log of like events: the store's
// single write path for likes. Shards are keyed by user ID, so
// concurrent likers rarely contend; the shard count affects only
// contention, never the canonical event order, because the canonical
// order is a pure function of the event tuples (see eventLess).
//
// Readers consume the journal two ways: EventsCanonical materializes
// the whole log in canonical order (cached until the next append) for
// one-pass analyses, and NewReader returns an incremental cursor that
// delivers each event exactly once for monitors and future disk-backed
// or multi-process consumers.
type Journal struct {
	shards []journalShard
	mask   uint64

	// backend, when set, receives every appended event (under the shard
	// lock, so per-shard disk order always matches the in-memory
	// stream). nil keeps the journal memory-only — the default.
	backend Backend

	// merged caches the canonical materialization. Valid while the
	// per-shard lengths it was computed from still match (append-only:
	// equal lengths imply equal contents).
	mergedMu   sync.Mutex
	merged     []LikeEvent
	mergedLens []int
}

// Backend is the journal's durability hook: a sink that receives every
// appended like event tagged with its shard index, and — via
// AppendWorld, called by the Store rather than the journal — every
// world mutation (user/page creations, friendships, status and
// visibility updates). Both methods are called under the owning shard
// or entity lock — implementations must not call back into the journal
// or store, and may block only to satisfy their own durability
// contract (group commit). Errors are the backend's to keep (sticky)
// and surface on its own Sync/Close; the in-memory journal remains the
// authoritative read path regardless.
type Backend interface {
	Append(shard int, evs ...LikeEvent)
	AppendWorld(shard int, recs ...WorldRecord)
}

// NewJournal returns an empty journal with the given number of shards
// (rounded up to a power of two; values < 1 fall back to DefaultShards).
func NewJournal(shards int) *Journal {
	if shards < 1 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Journal{shards: make([]journalShard, n), mask: uint64(n - 1)}
}

// NumShards returns the number of journal shards.
func (j *Journal) NumShards() int { return len(j.shards) }

// SetBackend attaches (or detaches, with nil) the durability sink.
// Call it before the journal sees concurrent appends — recovery code
// replays history first, then attaches the backend, so replayed events
// are never re-written to disk.
func (j *Journal) SetBackend(b Backend) { j.backend = b }

func (j *Journal) shardIndex(u UserID) int { return int(uint64(u) & j.mask) }

func (j *Journal) shard(u UserID) *journalShard {
	return &j.shards[uint64(u)&j.mask]
}

// Append records one event.
func (j *Journal) Append(ev LikeEvent) {
	idx := j.shardIndex(ev.User)
	sh := &j.shards[idx]
	sh.mu.Lock()
	sh.events = append(sh.events, ev)
	if j.backend != nil {
		j.backend.Append(idx, ev)
	}
	sh.mu.Unlock()
}

// AppendUserBatch records a batch of events for one user under a single
// shard lock — the bulk-history fast path. All events must carry the
// same user.
func (j *Journal) AppendUserBatch(u UserID, evs []LikeEvent) {
	if len(evs) == 0 {
		return
	}
	idx := j.shardIndex(u)
	sh := &j.shards[idx]
	sh.mu.Lock()
	sh.events = append(sh.events, evs...)
	if j.backend != nil {
		j.backend.Append(idx, evs...)
	}
	sh.mu.Unlock()
}

// Len returns the total number of events across all shards.
func (j *Journal) Len() int {
	n := 0
	for i := range j.shards {
		sh := &j.shards[i]
		sh.mu.RLock()
		n += len(sh.events)
		sh.mu.RUnlock()
	}
	return n
}

// lens snapshots the per-shard lengths.
func (j *Journal) lens() []int {
	out := make([]int, len(j.shards))
	for i := range j.shards {
		sh := &j.shards[i]
		sh.mu.RLock()
		out[i] = len(sh.events)
		sh.mu.RUnlock()
	}
	return out
}

func lensEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EventsCanonical returns every journal event in canonical (time, user,
// page) order. Each shard's prefix is copied and sorted on the worker
// pool, then shards are merged pairwise in index order — log2(shards)
// parallel rounds — so the result is bit-identical for every worker and
// shard count. The merged slice is cached until the next append and
// shared between callers: treat it as read-only.
func (j *Journal) EventsCanonical(workers int) []LikeEvent {
	j.mergedMu.Lock()
	defer j.mergedMu.Unlock()

	lens := j.lens()
	if j.merged != nil && lensEqual(lens, j.mergedLens) {
		return j.merged
	}

	parts := make([][]LikeEvent, len(j.shards))
	_ = parallel.ForEach(workers, len(j.shards), func(i int) error {
		sh := &j.shards[i]
		sh.mu.RLock()
		part := append([]LikeEvent(nil), sh.events[:lens[i]]...)
		sh.mu.RUnlock()
		sortEvents(part)
		parts[i] = part
		return nil
	})
	j.merged = mergeParts(workers, parts)
	j.mergedLens = lens
	return j.merged
}

// EventsWhere returns the journal's events satisfying keep, in
// shard-canonical order: shards appear in index order, and events are
// canonically (time, user, page) sorted within each shard's span. The
// order is a pure function of the event set and the shard count — no
// scheduling leaks in — but it is NOT globally time-sorted: consumers
// must either fold order-insensitively or sort their (now filtered,
// small) slice themselves. Skipping the global merge is deliberate:
// filtering and per-shard sorting parallelize perfectly on the pool,
// and the merge was the dominant cost of one-pass analysis.
//
// The result is freshly allocated (never cached); keep must be pure,
// and it runs under a shard read lock, so it must not call back into
// the journal or store.
func (j *Journal) EventsWhere(workers int, keep func(LikeEvent) bool) []LikeEvent {
	parts := make([][]LikeEvent, len(j.shards))
	_ = parallel.ForEach(workers, len(j.shards), func(i int) error {
		sh := &j.shards[i]
		sh.mu.RLock()
		// Count first so the survivors land in one exact allocation —
		// keep is a couple of array probes, cheaper than re-growing.
		n := 0
		for _, ev := range sh.events {
			if keep(ev) {
				n++
			}
		}
		part := make([]LikeEvent, 0, n)
		for _, ev := range sh.events {
			if keep(ev) {
				part = append(part, ev)
			}
		}
		sh.mu.RUnlock()
		sortEvents(part)
		parts[i] = part
		return nil
	})
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]LikeEvent, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Scan calls fn for every event currently in the journal, shard by
// shard in index order, events within a shard in append order. The
// iteration is NOT canonical — use it only for order-insensitive folds
// (the fraud sweep groups per-account timestamps this way, and the
// serial analysis pass feeds its aggregators this way, skipping sort
// and materialization entirely). fn runs under the shard read lock: it
// must not append to the journal, but read-only store access is safe —
// no store write path holds a journal lock and a store lock at once.
func (j *Journal) Scan(fn func(LikeEvent)) {
	for i := range j.shards {
		sh := &j.shards[i]
		sh.mu.RLock()
		for _, ev := range sh.events {
			fn(ev)
		}
		sh.mu.RUnlock()
	}
}

// mergeParts folds canonically sorted per-shard slices into one sorted
// slice via pairwise merge rounds in index order — log2(shards)
// parallel rounds whose tree shape depends only on the part count, so
// the output is identical regardless of scheduling.
func mergeParts(workers int, parts [][]LikeEvent) []LikeEvent {
	for len(parts) > 1 {
		next := make([][]LikeEvent, (len(parts)+1)/2)
		_ = parallel.ForEach(workers, len(next), func(i int) error {
			lo := 2 * i
			if lo+1 == len(parts) {
				next[i] = parts[lo]
				return nil
			}
			next[i] = mergeEvents(parts[lo], parts[lo+1])
			return nil
		})
		parts = next
	}
	if len(parts) == 0 {
		return []LikeEvent{}
	}
	return parts[0]
}

// mergeEvents merges two canonically sorted slices.
func mergeEvents(a, b []LikeEvent) []LikeEvent {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]LikeEvent, 0, len(a)+len(b))
	i, k := 0, 0
	for i < len(a) && k < len(b) {
		if eventLess(b[k], a[i]) {
			out = append(out, b[k])
			k++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[k:]...)
	return out
}

// Reader is an incremental journal cursor: each Next call returns the
// events appended since the previous call, exactly once, canonically
// ordered within the batch. A Reader is single-consumer (not safe for
// concurrent use); concurrent appends to the journal remain safe and
// are simply picked up by a later Next.
//
// Note that only per-batch order is guaranteed: an event appended late
// with an early timestamp sorts at the front of its own batch, not into
// a batch already delivered. Consumers needing a globally canonical
// replay of a quiescent journal should use EventsCanonical.
type Reader struct {
	j       *Journal
	offsets []int
}

// NewReader returns a cursor positioned at the start of the journal.
func (j *Journal) NewReader() *Reader {
	return &Reader{j: j, offsets: make([]int, len(j.shards))}
}

// ReaderAt returns a cursor positioned at the given per-shard offsets —
// the resume path for consumers that persisted a Reader's Offsets()
// across a restart (the streaming fraud scorer's checkpoint sidecar).
// It fails if the offsets don't match the journal's shard count or
// claim events beyond a shard's current length (a crash having lost an
// unsynced tail the consumer had already observed): the caller must
// then fall back to a fresh Reader and rescan.
func (j *Journal) ReaderAt(offsets []int) (*Reader, error) {
	if len(offsets) != len(j.shards) {
		return nil, fmt.Errorf("socialnet: reader offsets cover %d shards, journal has %d", len(offsets), len(j.shards))
	}
	own := make([]int, len(offsets))
	for i, off := range offsets {
		sh := &j.shards[i]
		sh.mu.RLock()
		n := len(sh.events)
		sh.mu.RUnlock()
		if off < 0 || off > n {
			return nil, fmt.Errorf("socialnet: reader offset %d for shard %d outside [0,%d]", off, i, n)
		}
		own[i] = off
	}
	return &Reader{j: j, offsets: own}, nil
}

// Next returns the batch of events appended since the previous call,
// canonically sorted, or nil when there is nothing new.
func (r *Reader) Next() []LikeEvent {
	var out []LikeEvent
	for i := range r.j.shards {
		sh := &r.j.shards[i]
		sh.mu.RLock()
		n := len(sh.events)
		if n > r.offsets[i] {
			out = append(out, sh.events[r.offsets[i]:n]...)
		}
		sh.mu.RUnlock()
		r.offsets[i] = n
	}
	sortEvents(out)
	return out
}

// NextLimit is Next bounded to at most max events (max <= 0 means
// unbounded). Shards are drained in index order, so a bounded call
// consumes a prefix of each shard's append-ordered stream — per-user
// delivery order is preserved exactly as with Next, since a user's
// events all live in one shard. The batch is canonically sorted like
// Next's. Consumers use it to cap per-tick work (and tests use it to
// cut a stream at arbitrary points for kill/restore coverage).
func (r *Reader) NextLimit(max int) []LikeEvent {
	if max <= 0 {
		return r.Next()
	}
	var out []LikeEvent
	for i := range r.j.shards {
		if len(out) >= max {
			break
		}
		sh := &r.j.shards[i]
		sh.mu.RLock()
		n := len(sh.events)
		if take := n - r.offsets[i]; take > 0 {
			if room := max - len(out); take > room {
				take = room
			}
			out = append(out, sh.events[r.offsets[i]:r.offsets[i]+take]...)
			r.offsets[i] += take
		} else {
			r.offsets[i] = n
		}
		sh.mu.RUnlock()
	}
	sortEvents(out)
	return out
}

// Offset returns the total number of events consumed so far — the
// reader's high-water mark.
func (r *Reader) Offset() int {
	n := 0
	for _, o := range r.offsets {
		n += o
	}
	return n
}

// Offsets returns a copy of the per-shard offsets — the reader's
// position in the journal's native coordinates, suitable for
// persisting and resuming via ReaderAt. Per-shard offsets stay valid
// across a durable store's crash recovery (disk order matches the
// in-memory stream per shard), which total counts do not.
func (r *Reader) Offsets() []int { return r.OffsetsInto(nil) }

// OffsetsInto is Offsets writing into dst, reusing its backing array
// when capacity allows. Consumers that persist their position every
// poll (the streaming fraud scorer's per-tick state save) keep one
// scratch slice instead of allocating a copy per call.
func (r *Reader) OffsetsInto(dst []int) []int {
	if cap(dst) < len(r.offsets) {
		dst = make([]int, len(r.offsets))
	}
	dst = dst[:len(r.offsets)]
	copy(dst, r.offsets)
	return dst
}

// ReplayUser re-delivers, in append order, the already-consumed events
// of one user: the user's shard prefix below the reader's offset,
// filtered to that user. Consumers that keep bounded per-user state
// (the streaming fraud scorer's window deque) use it to rebuild a
// user's state exactly when an out-of-order arrival invalidates the
// incremental fold — the replayed multiset is precisely what a batch
// pass over the consumed prefix would see for that user. fn runs under
// the shard read lock: it must not call back into the journal or
// append to the store.
func (r *Reader) ReplayUser(u UserID, fn func(LikeEvent)) {
	i := r.j.shardIndex(u)
	sh := &r.j.shards[i]
	sh.mu.RLock()
	limit := r.offsets[i]
	if limit > len(sh.events) {
		limit = len(sh.events)
	}
	for _, ev := range sh.events[:limit] {
		if ev.User == u {
			fn(ev)
		}
	}
	sh.mu.RUnlock()
}

// ReplayPage re-delivers, in canonical (time, user, page) order, the
// already-consumed events of one page. Unlike a user, whose events all
// live in one shard, a page's likers are spread across every shard —
// and bounded ticks drain shards in index order, so a page's events
// can cross tick boundaries out of time order. ReplayPage is the
// page-granular resync primitive for consumers that keep per-page
// state (the streaming lockstep sketches): the delivered sequence is
// exactly the page's slice of the reader's consumed prefix, sorted, so
// rebuilding from it matches a batch pass over the same prefix. Events
// are collected under the shard read locks and delivered after they
// are released, so fn may call back into the journal.
func (r *Reader) ReplayPage(p PageID, fn func(LikeEvent)) {
	var evs []LikeEvent
	for i := range r.j.shards {
		sh := &r.j.shards[i]
		sh.mu.RLock()
		limit := r.offsets[i]
		if limit > len(sh.events) {
			limit = len(sh.events)
		}
		for _, ev := range sh.events[:limit] {
			if ev.Page == p {
				evs = append(evs, ev)
			}
		}
		sh.mu.RUnlock()
	}
	sortEvents(evs)
	for _, ev := range evs {
		fn(ev)
	}
}
