package socialnet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// openTestFollower opens a follower of leader in dir with backgrounds
// disabled; the tests drive Sync and Poll explicitly.
func openTestFollower(t *testing.T, dir string, leader *Store) *FollowerStore {
	t.Helper()
	fw, _, err := OpenFollower(context.Background(), dir, StoreReplSource{Leader: leader}, FollowerOptions{WAL: noSync})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// assertReplEqual pins a follower against its leader: identical
// canonical event streams, world counts, and — after both sides sync —
// byte-identical record streams served from their segment chains.
func assertReplEqual(t *testing.T, leader, follower *Store) {
	t.Helper()
	a := leader.Journal().EventsCanonical(1)
	b := follower.Journal().EventsCanonical(1)
	if len(a) != len(b) {
		t.Fatalf("canonical lengths differ: leader %d vs follower %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("canonical event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if leader.NumUsers() != follower.NumUsers() || leader.NumPages() != follower.NumPages() {
		t.Fatalf("world size differs: %d/%d users, %d/%d pages",
			leader.NumUsers(), follower.NumUsers(), leader.NumPages(), follower.NumPages())
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := follower.Sync(); err != nil {
		t.Fatal(err)
	}
	lm, err := leader.ReplManifest()
	if err != nil {
		t.Fatal(err)
	}
	for sh := 0; sh < lm.WALShards; sh++ {
		// Both chains may begin above zero after compaction; compare from
		// the higher of the two floors (records below either floor are
		// snapshot-covered on that side).
		lb, err := leader.ReplSegments(sh, 0, maxReplBatchBytes)
		if err != nil && !errors.Is(err, ErrReplGap) {
			t.Fatal(err)
		}
		fb, err := follower.ReplSegments(sh, 0, maxReplBatchBytes)
		if err != nil && !errors.Is(err, ErrReplGap) {
			t.Fatal(err)
		}
		if lb != nil && fb != nil && !bytes.Equal(lb, fb) {
			t.Fatalf("shard %d record streams differ: leader %d bytes vs follower %d bytes", sh, len(lb), len(fb))
		}
	}
}

func TestFollowerBootstrapAndTail(t *testing.T) {
	leader, users, pages := durableWorld(t, t.TempDir(), 12, 3, noSync)
	defer leader.Close()
	for i, u := range users {
		if err := leader.AddLike(u, pages[i%len(pages)], at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}

	fw := openTestFollower(t, t.TempDir(), leader)
	defer fw.Close()
	n, err := fw.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(users) {
		t.Fatalf("first poll applied %d records, want %d", n, len(users))
	}
	assertReplEqual(t, leader, fw.Store())

	// Live tail: likes, a user creation, a friendship, a status change,
	// and a visibility flip all ship as journal records.
	nu := leader.AddUser(User{Country: "IT", Searchable: true})
	if err := leader.AddLike(nu, pages[0], at(100)); err != nil {
		t.Fatal(err)
	}
	if err := leader.Friend(users[0], users[1]); err != nil {
		t.Fatal(err)
	}
	if err := leader.Terminate(users[2]); err != nil {
		t.Fatal(err)
	}
	if err := leader.SetFriendsPublic(users[3], false); err != nil {
		t.Fatal(err)
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertReplEqual(t, leader, fw.Store())
	f := fw.Store()
	if !f.AreFriends(users[0], users[1]) {
		t.Fatal("friend edge did not replicate")
	}
	if u, err := f.User(users[2]); err != nil || u.Status != StatusTerminated {
		t.Fatalf("termination did not replicate: %+v, %v", u, err)
	}
	if f.FriendsVisible(users[3]) {
		t.Fatal("visibility flip did not replicate")
	}
	if u, err := f.User(nu); err != nil || u.Country != "IT" {
		t.Fatalf("user creation did not replicate: %+v, %v", u, err)
	}

	// Caught up: another poll is a no-op.
	if n, err := fw.Poll(context.Background()); err != nil || n != 0 {
		t.Fatalf("caught-up poll applied %d, err %v", n, err)
	}
}

func TestFollowerSeesOnlySyncedRecords(t *testing.T) {
	leader, users, pages := durableWorld(t, t.TempDir(), 4, 1, noSync)
	defer leader.Close()
	fw := openTestFollower(t, t.TempDir(), leader)
	defer fw.Close()

	if err := leader.AddLike(users[0], pages[0], at(1)); err != nil {
		t.Fatal(err)
	}
	// Unsynced records are beyond the feed's horizon: a crash on the
	// leader could still lose them, and a follower must never get ahead
	// of what the leader can recover.
	if n, err := fw.Poll(context.Background()); err != nil || n != 0 {
		t.Fatalf("poll before leader sync applied %d, err %v", n, err)
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	if n, err := fw.Poll(context.Background()); err != nil || n != 1 {
		t.Fatalf("poll after leader sync applied %d, err %v", n, err)
	}
}

func TestFollowerRestartResumes(t *testing.T) {
	leader, users, pages := durableWorld(t, t.TempDir(), 8, 2, noSync)
	defer leader.Close()
	for i := 0; i < 4; i++ {
		if err := leader.AddLike(users[i], pages[0], at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	fdir := t.TempDir()
	fw := openTestFollower(t, fdir, leader)
	if _, err := fw.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	for i := 4; i < 8; i++ {
		if err := leader.AddLike(users[i], pages[1], at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}

	// Reopen is plain OpenDurable on the shipped files; the tail resumes
	// from wherever the local chains end.
	fw2 := openTestFollower(t, fdir, leader)
	defer fw2.Close()
	if n, err := fw2.Poll(context.Background()); err != nil || n != 4 {
		t.Fatalf("resumed poll applied %d, err %v", n, err)
	}
	assertReplEqual(t, leader, fw2.Store())
}

// TestFollowerCrashTornTail kills a follower mid-ship — its newest
// local segment ends in a torn frame — and pins that reopening repairs
// the tail exactly like DESIGN §10 crash recovery (truncate to the last
// valid record), refetches the lost suffix, and converges byte-for-byte
// with the leader.
func TestFollowerCrashTornTail(t *testing.T) {
	leader, users, pages := durableWorld(t, t.TempDir(), 10, 2, noSync)
	defer leader.Close()
	for i, u := range users {
		if err := leader.AddLike(u, pages[i%2], at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	fdir := t.TempDir()
	fw := openTestFollower(t, fdir, leader)
	if _, err := fw.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := fw.Store().Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the shipped chain two ways: chop the last valid record in
	// half (a crash mid-AppendRaw), then smear garbage over the end (a
	// torn frame header).
	byShard, err := listSegments(fdir, 1)
	if err != nil {
		t.Fatal(err)
	}
	segs := byShard[0]
	if len(segs) == 0 {
		t.Fatal("follower has no segments after tailing")
	}
	last := segs[len(segs)-1].path
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-10); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fw2 := openTestFollower(t, fdir, leader)
	defer fw2.Close()
	// The truncated record was repaired away, so the resumed cursor sits
	// one record short: the poll must refetch exactly the lost suffix.
	if n, err := fw2.Poll(context.Background()); err != nil || n != 1 {
		t.Fatalf("post-repair poll applied %d, err %v", n, err)
	}
	assertReplEqual(t, leader, fw2.Store())
}

func TestFollowerGapAfterLeaderCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := WALOptions{SyncInterval: -1, SegmentMaxBytes: 256}
	leader, users, pages := durableWorld(t, dir, 6, 2, opts)
	defer leader.Close()

	// Bootstrap a follower at the initial floor, then advance and
	// checkpoint the leader so compaction removes the segments the
	// follower's cursor still points into.
	fw := openTestFollower(t, t.TempDir(), leader)
	defer fw.Close()
	for i := 0; i < 12; i++ {
		if err := leader.AddLike(users[i%len(users)], pages[i/len(users)], at(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		leader.AddUser(User{Country: "USA"})
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := leader.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}

	_, err := fw.Poll(context.Background())
	if !errors.Is(err, ErrReplGap) {
		t.Fatalf("poll across a compacted gap: err %v, want ErrReplGap", err)
	}
}

// TestRebootstrapFollowerAfterGap drives a follower into ErrReplGap via
// leader compaction, then re-bootstraps it in place: the directory is
// atomically replaced with a fresh seed of the leader's current
// snapshot, the new follower tails cleanly, and no scratch directories
// survive the swap.
func TestRebootstrapFollowerAfterGap(t *testing.T) {
	dir := t.TempDir()
	opts := WALOptions{SyncInterval: -1, SegmentMaxBytes: 256}
	leader, users, pages := durableWorld(t, dir, 6, 2, opts)
	defer leader.Close()

	fdir := filepath.Join(t.TempDir(), "replica")
	fw := openTestFollower(t, fdir, leader)
	for i := 0; i < 12; i++ {
		if err := leader.AddLike(users[i%len(users)], pages[i/len(users)], at(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		leader.AddUser(User{Country: "USA"})
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := leader.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Poll(context.Background()); !errors.Is(err, ErrReplGap) {
		t.Fatalf("poll across a compacted gap: err %v, want ErrReplGap", err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	src := StoreReplSource{Leader: leader}
	fw2, _, err := RebootstrapFollower(context.Background(), fdir, src, FollowerOptions{WAL: noSync})
	if err != nil {
		t.Fatal(err)
	}
	defer fw2.Close()
	if _, err := fw2.Poll(context.Background()); err != nil {
		t.Fatalf("poll after re-bootstrap: %v", err)
	}
	assertReplEqual(t, leader, fw2.Store())

	// New records keep flowing across the new floor.
	nu := leader.AddUser(User{Country: "USA"})
	if err := leader.AddLike(nu, pages[0], at(100)); err != nil {
		t.Fatal(err)
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	if n, err := fw2.Poll(context.Background()); err != nil || n != 2 {
		t.Fatalf("tail after re-bootstrap applied %d, err %v (want 2)", n, err)
	}
	assertReplEqual(t, leader, fw2.Store())

	for _, scratch := range []string{fdir + ".rebootstrap", fdir + ".old"} {
		if _, err := os.Stat(scratch); !os.IsNotExist(err) {
			t.Fatalf("scratch dir %s survived the swap (err %v)", scratch, err)
		}
	}
}

// durableMultiWAL builds a durable store in dir whose WAL runs one
// segment chain per journal shard — the legacy multi-chain layout (a
// manifest without WALShards falls back to Shards) — so tests can put
// a record and the entity it references in DIFFERENT chains.
func durableMultiWAL(t *testing.T, dir string, shards, nUsers int) *Store {
	t.Helper()
	st := NewShardedStore(shards)
	for i := 0; i < nUsers; i++ {
		st.AddUser(User{Country: "USA", Searchable: true})
	}
	snap := "snapshot-0000000000000001.gob"
	f, err := os.Create(filepath.Join(dir, snap))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	m := manifest{Version: manifestVersion, Seq: 1, Shards: shards, Snapshot: snap, Offsets: make([]uint64, shards)}
	data, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFileDurable(filepath.Join(dir, manifestFile), data); err != nil {
		t.Fatal(err)
	}
	dst, _, err := OpenDurable(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestFollowerDefersCrossShardReference: with multiple WAL chains, a
// like can become fetchable BEFORE the creation of the page it
// references — the creation lives in another shard beyond the sweep's
// batch cap or fetch point. The follower must neither discard the like
// (the leader has it applied) nor persist its frame while unapplied (a
// restart's full replay would then apply it and shift the journal's
// record offsets under every saved scorer cursor). It holds the shard
// back and converges once the creation ships.
func TestFollowerDefersCrossShardReference(t *testing.T) {
	ldir := t.TempDir()
	leader := durableMultiWAL(t, ldir, 4, 1) // user 1, in the snapshot
	defer leader.Close()

	fdir := t.TempDir()
	fw, _, err := OpenFollower(context.Background(), fdir, StoreReplSource{Leader: leader},
		FollowerOptions{WAL: noSync, BatchBytes: 1}) // 1 byte: one frame per fetch
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()

	// Ship a like referencing page 5 whose creation has not reached the
	// leader's durable stream yet (it will land in shard 1 later). User
	// 1 is the snapshot's one user — IDs allocate from 1.
	ev := LikeEvent{At: at(1), User: 1, Page: 5, Source: SourceLike}
	leader.wal.Append(0, ev)
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	n, err := fw.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("poll applied %d records with the referenced page missing, want 0", n)
	}
	if fw.Held() != 1 {
		t.Fatalf("Held() = %d, want 1 deferred like", fw.Held())
	}
	if got := fw.Offsets(nil); got[0] != 0 {
		t.Fatalf("follower persisted the unapplied like: shard 0 offset %d, want 0", got[0])
	}
	if got := fw.Store().Journal().Len(); got != 0 {
		t.Fatalf("follower journal has %d events before the page shipped, want 0", got)
	}

	// The creations arrive in shard 1: a filler page first, so the
	// referenced page sits beyond the first 1-frame fetch of the next
	// sweep and the like must survive one more intra-sweep deferral.
	leader.wal.AppendWorld(1, WorldRecord{Kind: WorldPage, Page: Page{ID: 1, Name: "filler"}})
	leader.wal.AppendWorld(1, WorldRecord{Kind: WorldPage, Page: Page{ID: 5, Name: "target"}})
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	if n, err := fw.Poll(context.Background()); err != nil || n != 3 {
		t.Fatalf("catch-up poll applied %d, err %v, want 3", n, err)
	}
	if fw.Held() != 0 {
		t.Fatalf("Held() = %d after convergence, want 0", fw.Held())
	}
	if _, err := fw.Store().Page(5); err != nil {
		t.Fatalf("page 5 did not replicate: %v", err)
	}
	evs := fw.Store().Journal().EventsCanonical(1)
	if len(evs) != 1 || evs[0] != ev {
		t.Fatalf("follower journal = %+v, want exactly the shipped like", evs)
	}

	// Alignment across restart: reopening replays the shipped WAL in
	// full; journal contents and offsets must not shift (a saved scorer
	// cursor stays valid).
	beforeOffsets := fw.Offsets(nil)
	if err := fw.Store().Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fw2, _, err := OpenFollower(context.Background(), fdir, StoreReplSource{Leader: leader},
		FollowerOptions{WAL: noSync, BatchBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fw2.Close()
	if got := fw2.Offsets(nil); len(got) != len(beforeOffsets) || got[0] != beforeOffsets[0] || got[1] != beforeOffsets[1] {
		t.Fatalf("offsets shifted across restart: %v vs %v", got, beforeOffsets)
	}
	evs2 := fw2.Store().Journal().EventsCanonical(1)
	if len(evs2) != 1 || evs2[0] != ev {
		t.Fatalf("reopened journal = %+v, want exactly the shipped like", evs2)
	}
	if n, err := fw2.Poll(context.Background()); err != nil || n != 0 {
		t.Fatalf("caught-up reopened poll applied %d, err %v", n, err)
	}
}

func TestOffsetsIntoReusesSlice(t *testing.T) {
	j := NewJournal(4)
	r := j.NewReader()
	dst := make([]int, 0, 16)
	out := r.OffsetsInto(dst)
	if len(out) != j.NumShards() || cap(out) != cap(dst) {
		t.Fatalf("reader OffsetsInto did not reuse dst: len %d cap %d", len(out), cap(out))
	}
	dir := t.TempDir()
	st, _, _ := durableWorld(t, dir, 2, 1, noSync)
	defer st.Close()
	wdst := make([]uint64, 0, 8)
	wout := st.ReplOffsets(wdst)
	if cap(wout) != cap(wdst) {
		t.Fatalf("ReplOffsets did not reuse dst: cap %d vs %d", cap(wout), cap(wdst))
	}
}
