package socialnet

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fillWorld creates nUsers users and nPages pages serially (IDs must be
// stable) and returns their IDs.
func fillWorld(t testing.TB, st *Store, nUsers, nPages int) ([]UserID, []PageID) {
	t.Helper()
	users := make([]UserID, nUsers)
	for i := range users {
		users[i] = st.AddUser(User{Country: CountryUSA, Searchable: i%2 == 0})
	}
	pages := make([]PageID, nPages)
	for i := range pages {
		id, err := st.AddPage(Page{Name: fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		pages[i] = id
	}
	return users, pages
}

// TestShardedStoreParallelLikes hammers AddLike from many goroutines —
// every (user, page) pair exactly once, plus concurrent duplicate
// attempts — and checks both indexes agree afterwards. Run under
// -race this is the store's central concurrency test.
func TestShardedStoreParallelLikes(t *testing.T) {
	st := NewShardedStore(8)
	users, pages := fillWorld(t, st, 60, 12)
	t0 := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

	var wg sync.WaitGroup
	dupes := make([]int, len(users))
	for ui := range users {
		wg.Add(1)
		go func(ui int) {
			defer wg.Done()
			for pi, p := range pages {
				at := t0.Add(time.Duration(ui*len(pages)+pi) * time.Minute)
				if err := st.AddLike(users[ui], p, at); err != nil {
					t.Error(err)
				}
				// A second like for the same pair must always be
				// rejected, even while other writers are active.
				if err := st.AddLike(users[ui], p, at); errors.Is(err, ErrDuplicateLike) {
					dupes[ui]++
				} else {
					t.Errorf("duplicate like slipped through: %v", err)
				}
			}
		}(ui)
	}
	wg.Wait()

	for _, p := range pages {
		if got := st.LikeCountOfPage(p); got != len(users) {
			t.Fatalf("page %d has %d likes, want %d", p, got, len(users))
		}
		likes := st.LikesOfPage(p)
		for i := 1; i < len(likes); i++ {
			if likes[i].At.Before(likes[i-1].At) {
				t.Fatal("page likes out of time order")
			}
		}
	}
	for ui, u := range users {
		if got := st.LikeCountOfUser(u); got != len(pages) {
			t.Fatalf("user %d has %d likes, want %d", u, got, len(pages))
		}
		if dupes[ui] != len(pages) {
			t.Fatalf("user %d saw %d duplicate rejections, want %d", u, dupes[ui], len(pages))
		}
	}
}

// TestShardedStoreParallelMixedOps runs writers (likes, histories,
// friendships, terminations) against readers (the crawl surface:
// profiles, friend lists, like lists, directory) concurrently.
// Correctness here is "no race, no panic, invariants hold" — exact
// counts are covered by the deterministic tests.
func TestShardedStoreParallelMixedOps(t *testing.T) {
	st := NewStore()
	users, pages := fillWorld(t, st, 40, 10)
	t0 := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

	var wg sync.WaitGroup
	// Likers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j, u := range users {
				if (j+w)%4 == 0 {
					_ = st.AddLike(u, pages[(j+w)%len(pages)], t0.Add(time.Duration(j)*time.Hour))
				}
			}
		}(i)
	}
	// History importers (non-honeypot pages only, one user each).
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			u := users[w]
			likes := []Like{{Page: pages[w], At: t0.AddDate(-1, 0, 0)}}
			if err := st.AddHistory(u, likes); err != nil {
				t.Error(err)
			}
		}(i)
	}
	// Friendship writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i < len(users); i++ {
			if err := st.Friend(users[i-1], users[i]); err != nil {
				t.Error(err)
			}
		}
	}()
	// Termination sweep.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(users); i += 7 {
			if err := st.Terminate(users[i]); err != nil {
				t.Error(err)
			}
		}
	}()
	// Crawlers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, u := range users {
				_, _ = st.User(u)
				_ = st.FriendsOf(u)
				_ = st.LikesOfUser(u)
				_ = st.DeclaredFriendCount(u)
			}
			for _, p := range pages {
				_ = st.LikesOfPage(p)
				_ = st.ActiveLikeCountOfPage(p)
			}
			_ = st.Directory()
			_ = st.NumUsers()
			_ = st.Pages()
		}()
	}
	wg.Wait()

	// Terminated users must reject further likes.
	if err := st.AddLike(users[0], pages[9], t0.AddDate(0, 2, 0)); !errors.Is(err, ErrTerminated) {
		t.Fatalf("terminated user liked: %v", err)
	}
}

// TestShardedStoreShardCountIrrelevant: the same serial operation
// sequence must read back identically from a 1-shard and a 256-shard
// store, including snapshot bytes.
func TestShardedStoreShardCountIrrelevant(t *testing.T) {
	build := func(shards int) *Store {
		st := NewShardedStore(shards)
		users, pages := fillWorld(t, st, 30, 8)
		t0 := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)
		for i, u := range users {
			for j := 0; j < 3; j++ {
				_ = st.AddLike(u, pages[(i+j)%len(pages)], t0.Add(time.Duration(i*3+j)*time.Minute))
			}
		}
		for i := 2; i < len(users); i += 3 {
			_ = st.Friend(users[i-1], users[i])
		}
		return st
	}
	var a, b bytes.Buffer
	if err := build(1).WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := build(256).WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot bytes differ between shard counts")
	}
}

// TestSnapshotDeterministicAfterConcurrentFill: a store filled by many
// goroutines must snapshot to the same bytes as one filled serially
// with the same likes — the canonical-order guarantee the parallel
// engine depends on.
func TestSnapshotDeterministicAfterConcurrentFill(t *testing.T) {
	t0 := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)
	type likeOp struct {
		u  int
		p  int
		at time.Time
	}
	var ops []likeOp
	for u := 0; u < 24; u++ {
		for p := 0; p < 6; p++ {
			ops = append(ops, likeOp{u, p, t0.Add(time.Duration(u+p) * time.Hour)})
		}
	}

	serial := NewStore()
	su, sp := fillWorld(t, serial, 24, 6)
	for _, op := range ops {
		if err := serial.AddLike(su[op.u], sp[op.p], op.at); err != nil {
			t.Fatal(err)
		}
	}

	conc := NewStore()
	cu, cp := fillWorld(t, conc, 24, 6)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ops); i += 8 {
				op := ops[i]
				if err := conc.AddLike(cu[op.u], cp[op.p], op.at); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()

	var a, b bytes.Buffer
	if err := serial.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := conc.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("concurrent fill changed snapshot bytes")
	}
}

// TestSnapshotRecoversMidFlightLike: an AddLike caught between its
// user-side commit and its page-side append (the instant it holds no
// lock) must still appear, fully indexed, in a snapshot taken at that
// moment. We fabricate that intermediate state directly.
func TestSnapshotRecoversMidFlightLike(t *testing.T) {
	st := NewStore()
	users, pages := fillWorld(t, st, 4, 2)
	t0 := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)
	if err := st.AddLike(users[0], pages[0], t0); err != nil {
		t.Fatal(err)
	}
	// users[1] liking pages[1]: user stripe committed, page stripe not.
	lk := Like{User: users[1], Page: pages[1], At: t0.Add(time.Hour)}
	sh := st.userShard(users[1])
	sh.likeSet[likeKey{lk.User, lk.Page}] = struct{}{}
	sh.likesByUser[users[1]] = append(sh.likesByUser[users[1]], lk)

	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Likes(users[1], pages[1]) {
		t.Fatal("mid-flight like missing from reloaded store")
	}
	if got := re.LikeCountOfPage(pages[1]); got != 1 {
		t.Fatalf("page-side stream has %d likes, want 1", got)
	}
}

// TestShardedStoreStress is the heavy concurrency soak: many writers
// and readers over a larger world. Skipped under -short.
func TestShardedStoreStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	st := NewStore()
	users, pages := fillWorld(t, st, 2000, 50)
	t0 := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(users); i += 16 {
				u := users[i]
				for j := 0; j < 10; j++ {
					p := pages[(i+j*7)%len(pages)]
					_ = st.AddLike(u, p, t0.Add(time.Duration(i%96)*time.Hour))
				}
				if i%3 == 0 {
					_ = st.LikesOfUser(u)
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := pages[i%len(pages)]
				_ = st.LikesOfPage(p)
				_ = st.LikeCountOfPage(p)
			}
		}()
	}
	wg.Wait()

	total := 0
	for _, p := range pages {
		total += st.LikeCountOfPage(p)
	}
	want := len(users) * 10
	if total != want {
		t.Fatalf("total page-side likes %d, want %d", total, want)
	}
	userTotal := 0
	for _, u := range users {
		userTotal += st.LikeCountOfUser(u)
	}
	if userTotal != want {
		t.Fatalf("total user-side likes %d, want %d", userTotal, want)
	}
}
