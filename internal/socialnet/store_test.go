package socialnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

func newUser() User {
	return User{
		Gender: GenderFemale, Age: Age18to24, Country: CountryUSA,
		FriendsPublic: true, Searchable: true, Kind: KindOrganic, CreatedAt: t0,
	}
}

func TestAddUserAssignsSequentialIDs(t *testing.T) {
	s := NewStore()
	a := s.AddUser(newUser())
	b := s.AddUser(newUser())
	if a != 1 || b != 2 {
		t.Fatalf("ids = %d,%d want 1,2", a, b)
	}
	if s.NumUsers() != 2 {
		t.Fatalf("NumUsers = %d", s.NumUsers())
	}
	u, err := s.User(a)
	if err != nil || u.ID != a || u.Country != CountryUSA {
		t.Fatalf("User(%d) = %+v, %v", a, u, err)
	}
	if _, err := s.User(99); !errors.Is(err, ErrNoUser) {
		t.Fatalf("missing user error = %v", err)
	}
}

func TestAddPage(t *testing.T) {
	s := NewStore()
	owner := s.AddUser(newUser())
	id, err := s.AddPage(Page{Name: "Virtual Electricity", Owner: owner, Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Page(id)
	if err != nil || !p.Honeypot || p.Name != "Virtual Electricity" {
		t.Fatalf("Page = %+v, %v", p, err)
	}
	if _, err := s.AddPage(Page{Owner: 999}); !errors.Is(err, ErrNoUser) {
		t.Fatalf("bad owner error = %v", err)
	}
	if _, err := s.Page(999); !errors.Is(err, ErrNoPage) {
		t.Fatalf("missing page error = %v", err)
	}
	if s.NumPages() != 1 {
		t.Fatalf("NumPages = %d", s.NumPages())
	}
}

func TestAddLikeAndQueries(t *testing.T) {
	s := NewStore()
	u := s.AddUser(newUser())
	p, _ := s.AddPage(Page{Name: "p"})
	if err := s.AddLike(u, p, t0); err != nil {
		t.Fatal(err)
	}
	if !s.Likes(u, p) {
		t.Fatal("Likes should be true")
	}
	if err := s.AddLike(u, p, t0.Add(time.Hour)); !errors.Is(err, ErrDuplicateLike) {
		t.Fatalf("duplicate like error = %v", err)
	}
	if err := s.AddLike(99, p, t0); !errors.Is(err, ErrNoUser) {
		t.Fatalf("like by missing user = %v", err)
	}
	if err := s.AddLike(u, 99, t0); !errors.Is(err, ErrNoPage) {
		t.Fatalf("like of missing page = %v", err)
	}
	if n := s.LikeCountOfPage(p); n != 1 {
		t.Fatalf("LikeCountOfPage = %d", n)
	}
	if n := s.LikeCountOfUser(u); n != 1 {
		t.Fatalf("LikeCountOfUser = %d", n)
	}
}

func TestLikesOrderedByTime(t *testing.T) {
	s := NewStore()
	p, _ := s.AddPage(Page{Name: "p"})
	times := []time.Duration{5 * time.Hour, time.Hour, 3 * time.Hour}
	for _, d := range times {
		u := s.AddUser(newUser())
		if err := s.AddLike(u, p, t0.Add(d)); err != nil {
			t.Fatal(err)
		}
	}
	likes := s.LikesOfPage(p)
	for i := 1; i < len(likes); i++ {
		if likes[i].At.Before(likes[i-1].At) {
			t.Fatalf("likes not time-ordered: %v", likes)
		}
	}
}

func TestTerminatedCannotLike(t *testing.T) {
	s := NewStore()
	u := s.AddUser(newUser())
	p, _ := s.AddPage(Page{Name: "p"})
	q, _ := s.AddPage(Page{Name: "q"})
	if err := s.AddLike(u, p, t0); err != nil {
		t.Fatal(err)
	}
	if err := s.Terminate(u); err != nil {
		t.Fatal(err)
	}
	if err := s.AddLike(u, q, t0); !errors.Is(err, ErrTerminated) {
		t.Fatalf("terminated like error = %v", err)
	}
	// Historical likes survive termination (paper's month-later check).
	if !s.Likes(u, p) {
		t.Fatal("termination should not erase history")
	}
	usr, _ := s.User(u)
	if usr.Status != StatusTerminated {
		t.Fatalf("status = %v", usr.Status)
	}
	if err := s.Terminate(999); !errors.Is(err, ErrNoUser) {
		t.Fatalf("terminate missing user = %v", err)
	}
}

func TestFriendships(t *testing.T) {
	s := NewStore()
	a := s.AddUser(newUser())
	b := s.AddUser(newUser())
	c := s.AddUser(newUser())
	if err := s.Friend(a, b); err != nil {
		t.Fatal(err)
	}
	if !s.AreFriends(a, b) || !s.AreFriends(b, a) {
		t.Fatal("friendship should be mutual")
	}
	if s.AreFriends(a, c) {
		t.Fatal("a,c should not be friends")
	}
	if err := s.Friend(a, 99); !errors.Is(err, ErrNoUser) {
		t.Fatalf("friend with missing = %v", err)
	}
	if err := s.Friend(a, a); err == nil {
		t.Fatal("self-friendship should error")
	}
	if got := s.FriendCount(a); got != 1 {
		t.Fatalf("FriendCount = %d", got)
	}
	fs := s.FriendsOf(a)
	if len(fs) != 1 || fs[0] != b {
		t.Fatalf("FriendsOf = %v", fs)
	}
}

func TestFriendsVisibility(t *testing.T) {
	s := NewStore()
	pub := s.AddUser(newUser())
	priv := newUser()
	priv.FriendsPublic = false
	pid := s.AddUser(priv)
	if !s.FriendsVisible(pub) {
		t.Fatal("public user should be visible")
	}
	if s.FriendsVisible(pid) {
		t.Fatal("private user should not be visible")
	}
	if s.FriendsVisible(999) {
		t.Fatal("missing user should not be visible")
	}
	if err := s.SetFriendsPublic(pid, true); err != nil {
		t.Fatal(err)
	}
	if !s.FriendsVisible(pid) {
		t.Fatal("visibility update should apply")
	}
	if err := s.SetFriendsPublic(999, true); !errors.Is(err, ErrNoUser) {
		t.Fatalf("SetFriendsPublic missing = %v", err)
	}
}

func TestDirectoryOnlySearchable(t *testing.T) {
	s := NewStore()
	a := s.AddUser(newUser())
	hidden := newUser()
	hidden.Searchable = false
	s.AddUser(hidden)
	c := s.AddUser(newUser())
	dir := s.Directory()
	if len(dir) != 2 || dir[0] != a || dir[1] != c {
		t.Fatalf("Directory = %v", dir)
	}
}

func TestFriendGraphSnapshotIsolated(t *testing.T) {
	s := NewStore()
	a := s.AddUser(newUser())
	b := s.AddUser(newUser())
	_ = s.Friend(a, b)
	g := s.FriendGraph()
	g.RemoveNode(int64(a))
	if !s.AreFriends(a, b) {
		t.Fatal("mutating snapshot affected store")
	}
}

func TestUsersWhere(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		u := newUser()
		if i%2 == 0 {
			u.Country = CountryIndia
		}
		s.AddUser(u)
	}
	got := s.UsersWhere(func(u *User) bool { return u.Country == CountryIndia })
	if len(got) != 3 {
		t.Fatalf("UsersWhere = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("UsersWhere should be ascending")
		}
	}
}

func TestPagesSorted(t *testing.T) {
	s := NewStore()
	for i := 0; i < 4; i++ {
		if _, err := s.AddPage(Page{Name: fmt.Sprintf("p%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	ps := s.Pages()
	if len(ps) != 4 {
		t.Fatalf("Pages = %v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			t.Fatal("Pages should be ascending")
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	p, _ := s.AddPage(Page{Name: "p"})
	const n = 64
	ids := make([]UserID, n)
	for i := range ids {
		ids[i] = s.AddUser(newUser())
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			_ = s.AddLike(ids[i], p, t0.Add(time.Duration(i)*time.Minute))
		}(i)
		go func(i int) {
			defer wg.Done()
			_ = s.LikesOfPage(p)
			_ = s.FriendCount(ids[i])
			_, _ = s.User(ids[i])
		}(i)
	}
	wg.Wait()
	if got := s.LikeCountOfPage(p); got != n {
		t.Fatalf("concurrent likes = %d, want %d", got, n)
	}
}

func TestStringers(t *testing.T) {
	if GenderFemale.String() != "F" || GenderMale.String() != "M" || GenderUnknown.String() != "?" {
		t.Fatal("gender strings")
	}
	if Age13to17.String() != "13-17" || Age55plus.String() != "55+" {
		t.Fatal("age strings")
	}
	if AgeBracket(200).String() != "?" {
		t.Fatal("invalid age string")
	}
	if StatusActive.String() != "active" || StatusTerminated.String() != "terminated" {
		t.Fatal("status strings")
	}
	if KindOrganic.String() != "organic" || KindFarmBot.String() != "farm-bot" || KindFarmStealth.String() != "farm-stealth" {
		t.Fatal("kind strings")
	}
}
