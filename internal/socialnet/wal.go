package socialnet

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// WALOptions tunes the disk journal backend.
type WALOptions struct {
	// SyncEvery fsyncs after this many appended records have accumulated
	// (across all shards): the appending shard synchronously, the rest
	// via the background syncer. 0 means DefaultSyncEvery.
	//
	// 1 selects GROUP COMMIT: every append blocks until its records are
	// fsynced, but a dedicated committer coalesces all appends that
	// arrive while a flush is in flight into the next single fsync pass
	// and wakes their callers together. Nothing acknowledged is ever
	// lost to a crash, and under concurrent writers the fsync cost is
	// shared across the batch instead of paid per append. An fsync
	// FAILURE is sticky in Err, and write surfaces consult
	// Store.DurabilityErr before acknowledging.
	SyncEvery int
	// SyncInterval is the background fsync period bounding how long a
	// quiet tail can stay volatile. 0 means DefaultSyncInterval; < 0
	// disables the background syncer (tests, benchmarks). Group commit
	// (SyncEvery: 1) runs its committer regardless of this setting.
	SyncInterval time.Duration
	// SegmentMaxBytes rotates a shard to a fresh segment file once the
	// active one reaches this size. 0 means DefaultSegmentMaxBytes.
	SegmentMaxBytes int64
}

// WAL option defaults.
const (
	DefaultSyncEvery       = 256
	DefaultSyncInterval    = 100 * time.Millisecond
	DefaultSegmentMaxBytes = int64(4 << 20)
)

func (o WALOptions) withDefaults() WALOptions {
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = DefaultSegmentMaxBytes
	}
	return o
}

// walShard is one shard's active segment writer. Appends go through a
// buffered writer; flush+fsync happens on the batched sync policy, not
// per append, so the write path costs a memcpy until a sync boundary.
type walShard struct {
	mu       sync.Mutex
	cond     *sync.Cond // commit progress: syncedThrough advanced, or sticky error/stop
	fsyncMu  sync.Mutex // pins sh.f across an fsync running outside mu; lock order: mu, then fsyncMu
	idx      int
	f        *os.File
	bw       *bufio.Writer
	next     uint64 // stream index of the next record to append
	synced   uint64 // stream index up to which records are fsynced
	segStart uint64 // first index of the active segment
	segSize  int64  // bytes written to the active segment
	dirty    bool   // bytes flushed or buffered since the last fsync
	scratch  []byte // record-encoding buffer, reused under mu

	// dirtyHint lets a sync pass skip provably-clean shards without
	// taking their locks. Set (under mu) when records are buffered,
	// cleared (under mu) when the shard syncs; reading it races benignly
	// — a miss is covered by the committer-token ordering in append.
	dirtyHint atomic.Bool
}

// DiskWAL is the journal's disk backend: per-shard append-only segment
// files with batched fsync and size-based rotation. It implements
// Backend; Journal streams every appended like through it, the Store
// streams world mutations, and the in-memory shards stay the read
// path. With SyncEvery > 1, appends are acknowledged before they are
// synced — the durability contract is "at most SyncEvery records (or
// SyncInterval of wall time) may be lost on a crash"; Sync narrows
// that window to zero on demand (shutdown, checkpoints). With
// SyncEvery == 1 (group commit) appends block until durable.
//
// After the first write or sync failure the WAL refuses further
// appends: writing past a failed record would desync the on-disk
// chain from the stream indices Offsets reports, turning a clean
// "tail lost" into silent divergence.
type DiskWAL struct {
	dir    string
	opts   WALOptions
	group  bool // SyncEvery == 1: commit via the group committer
	shards []*walShard

	unsynced atomic.Int64 // exact count of appended-but-unsynced records

	errMu   sync.Mutex
	err     error       // sticky: first write/sync failure, surfaced by Err/Sync/Close
	errFlag atomic.Bool // lock-free mirror of err != nil for the append fast path

	syncMu sync.Mutex // serializes whole-WAL sync passes

	stopOnce   sync.Once
	stopped    atomic.Bool
	stopc      chan struct{}
	wake       chan struct{} // nudges the background syncer (buffered, size 1)
	done       chan struct{}
	commitc    chan struct{} // nudges the group committer (buffered, size 1)
	commitDone chan struct{}

	// testSyncedShard, when set by tests, runs after each successful
	// shard fsync with no locks held — a deterministic injection point
	// for append-during-sync interleavings.
	testSyncedShard func(shard int)
}

// walRecovery is one shard's replayed disk state: the records found in
// its segments at or after the requested base offset, and the stream
// index of the first of them.
type walRecovery struct {
	Start   uint64
	Records []walRecord
}

// openWAL opens (or initializes) the segment files under dir for
// nShards shards and returns the WAL positioned for appending plus the
// recovered per-shard records from base[i] onward. Only the last
// segment of a shard may carry a torn tail; it is repaired by
// truncating to the last valid record. An interior segment that fails
// validation is a hard error — rotation never leaves a torn interior
// segment behind, so one means external damage the WAL must not
// silently paper over. A shard whose chain ends in a version-1 segment
// resumes appending in a fresh current-version segment: record
// framings never mix within one file.
func openWAL(dir string, nShards int, base []uint64, opts WALOptions) (*DiskWAL, []walRecovery, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	byShard, err := listSegments(dir, nShards)
	if err != nil {
		return nil, nil, err
	}
	w := &DiskWAL{
		dir:        dir,
		opts:       opts,
		group:      opts.SyncEvery == 1,
		shards:     make([]*walShard, nShards),
		stopc:      make(chan struct{}),
		wake:       make(chan struct{}, 1),
		done:       make(chan struct{}),
		commitc:    make(chan struct{}, 1),
		commitDone: make(chan struct{}),
	}
	recovered := make([]walRecovery, nShards)
	for i := 0; i < nShards; i++ {
		sh := &walShard{idx: i, next: base[i]}
		sh.cond = sync.NewCond(&sh.mu)
		recovered[i] = walRecovery{Start: base[i]}
		// A crash between rotation and the first flush leaves the newest
		// segment with a missing or torn HEADER (creation reserves the
		// name; the header sits in the write buffer). Nothing in such a
		// file is readable, so it is the degenerate torn tail: drop it
		// and resume on the previous segment, which rotation fsynced.
		segs := byShard[i]
		for len(segs) > 0 {
			lastSeg := segs[len(segs)-1]
			if ok, err := segmentHeaderReadable(lastSeg.path); err != nil {
				return nil, nil, err
			} else if ok {
				break
			}
			if err := os.Remove(lastSeg.path); err != nil {
				return nil, nil, err
			}
			segs = segs[:len(segs)-1]
		}
		for k, seg := range segs {
			f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
			if err != nil {
				return nil, nil, err
			}
			records, validSize, version, shard, start, err := scanSegment(f)
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			if shard != i || start != seg.start {
				f.Close()
				return nil, nil, fmt.Errorf("%w: %s header says shard %d start %d", ErrCorruptSegment, seg.path, shard, start)
			}
			info, err := f.Stat()
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			last := k == len(segs)-1
			if validSize < info.Size() {
				if !last {
					f.Close()
					return nil, nil, fmt.Errorf("%w: %s torn at %d bytes but is not the shard's last segment", ErrCorruptSegment, seg.path, validSize)
				}
				if err := f.Truncate(validSize); err != nil {
					f.Close()
					return nil, nil, fmt.Errorf("socialnet: repair %s: %w", seg.path, err)
				}
				if err := f.Sync(); err != nil {
					f.Close()
					return nil, nil, err
				}
			}
			// Contiguity: a later segment must resume exactly where the
			// previous one ended; the first must not start beyond the
			// snapshot offset (compaction can leave it at or below it).
			if k > 0 {
				if start != sh.next {
					f.Close()
					return nil, nil, fmt.Errorf("%w: %s starts at %d, expected %d", ErrCorruptSegment, seg.path, start, sh.next)
				}
			} else if start > base[i] {
				f.Close()
				return nil, nil, fmt.Errorf("%w: %s starts at %d beyond snapshot offset %d", ErrCorruptSegment, seg.path, start, base[i])
			}
			end := start + uint64(len(records))
			// Keep only records at/after the base offset; earlier ones are
			// guaranteed covered by the snapshot the base came from.
			if end > base[i] {
				skip := 0
				if start < base[i] {
					skip = int(base[i] - start)
				}
				if len(recovered[i].Records) == 0 {
					recovered[i].Start = start + uint64(skip)
				}
				recovered[i].Records = append(recovered[i].Records, records[skip:]...)
			}
			sh.next = end
			if last && version == segVersion {
				// Position the write offset at the valid end: the scan (and
				// a torn-tail truncation) can leave it elsewhere, and a
				// write at the wrong offset would corrupt the chain.
				if _, err := f.Seek(validSize, io.SeekStart); err != nil {
					f.Close()
					return nil, nil, err
				}
				sh.f = f
				sh.bw = bufio.NewWriterSize(f, 1<<16)
				sh.segStart = start
				sh.segSize = validSize
			} else {
				// Interior segment, or a last segment in the old framing:
				// leave sh.f nil so the first append rotates into a fresh
				// current-version segment at sh.next.
				f.Close()
			}
		}
		// A chain ending below the manifest offset means a checkpoint's
		// snapshot covered records the segments never got (all of them:
		// end < base implies every on-disk record is below the offset).
		// Drop the stale chain and resume AT the offset — appending below
		// it would put acknowledged records where the next recovery skips.
		if sh.next < base[i] {
			if sh.f != nil {
				if err := sh.f.Close(); err != nil {
					return nil, nil, err
				}
				sh.f, sh.bw = nil, nil
			}
			for _, seg := range segs {
				if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
					return nil, nil, err
				}
			}
			sh.next = base[i]
			recovered[i] = walRecovery{Start: base[i]}
		}
		// Everything recovered is on disk (torn tails were truncated and
		// fsynced), so the shard starts fully synced.
		sh.synced = sh.next
		w.shards[i] = sh
	}
	if opts.SyncInterval > 0 {
		go w.syncLoop()
	} else {
		close(w.done)
	}
	if w.group {
		go w.commitLoop()
	} else {
		close(w.commitDone)
	}
	return w, recovered, nil
}

// syncLoop is the background fsync ticker.
func (w *DiskWAL) syncLoop() {
	defer close(w.done)
	t := time.NewTicker(w.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopc:
			return
		case <-w.wake:
			_ = w.Sync()
		case <-t.C:
			if w.unsynced.Load() > 0 {
				_ = w.Sync()
			}
		}
	}
}

// commitLoop is the group committer: each token coalesces every append
// buffered since the previous pass into one parallel flush+fsync, and
// syncShard wakes the waiting appenders as their shard commits.
func (w *DiskWAL) commitLoop() {
	defer close(w.commitDone)
	for {
		select {
		case <-w.stopc:
			return
		case <-w.commitc:
			// Commit window: yield so every runnable appender gets to
			// buffer its records (and park on the shard cond) before the
			// flush — then the single fsync below acknowledges them all.
			// Without the yield a lone CPU runs the committer back-to-back
			// with each append and every pass commits one record, which is
			// serial-fsync throughput with extra steps. A few yields let
			// appenders woken by the previous pass cycle back around; the
			// window stays microseconds against a ~100µs fsync. On
			// multicore the yields are nearly free: the committer is
			// rescheduled as soon as a P is idle.
			for i := 0; i < 4; i++ {
				runtime.Gosched()
			}
			_ = w.Sync()
		}
	}
}

// requestCommit nudges the group committer. The token is enqueued (or
// already pending) strictly after the caller's records were buffered,
// so the pass that consumes it — which starts only after consuming —
// is guaranteed to see them.
func (w *DiskWAL) requestCommit() {
	select {
	case w.commitc <- struct{}{}:
	default:
	}
}

// awaitDurable blocks until the shard's synced index reaches target, a
// sticky error surfaces, or the WAL is stopped. Wakeups cannot be
// lost: every waker (syncShard, rotation, wakeWaiters) broadcasts
// while holding sh.mu, which Wait only releases atomically.
func (w *DiskWAL) awaitDurable(sh *walShard, target uint64) {
	sh.mu.Lock()
	for sh.synced < target && !w.errFlag.Load() && !w.stopped.Load() {
		sh.cond.Wait()
	}
	sh.mu.Unlock()
}

// wakeWaiters releases every group-commit waiter (used at Close, after
// stopped is set). Locks are taken one shard at a time, never nested.
func (w *DiskWAL) wakeWaiters() {
	for _, sh := range w.shards {
		sh.mu.Lock()
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
}

func (w *DiskWAL) setErr(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
	w.errFlag.Store(true)
}

// Err returns the sticky first write or sync failure, if any.
func (w *DiskWAL) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

// Dir returns the WAL's directory.
func (w *DiskWAL) Dir() string { return w.dir }

// Append writes the like events to the shard's active segment,
// rotating first if it is full. It implements Backend and is called by
// the journal under the corresponding journal-shard lock, so per-shard
// append order on disk always matches the in-memory stream. Errors are
// sticky (surfaced by Sync/Err/Close) and refuse all further appends:
// the in-memory journal stays authoritative for reads even if the disk
// falls over. Under group commit (SyncEvery: 1) Append returns only
// once the events are fsynced.
func (w *DiskWAL) Append(shard int, evs ...LikeEvent) {
	if len(evs) == 0 {
		return
	}
	w.appendRecords(shard, len(evs), func(i int, buf []byte) []byte {
		return encodeEvent(buf, evs[i])
	})
}

// AppendWorld journals world mutations (user/page creations,
// friendships, status and visibility updates) to the shard's segment
// chain, with the same ordering, durability, and sticky-error contract
// as Append. The store calls it under the mutated entity's lock, so
// per-entity mutation order on disk matches the in-memory history.
func (w *DiskWAL) AppendWorld(shard int, recs ...WorldRecord) {
	if len(recs) == 0 {
		return
	}
	w.appendRecords(shard, len(recs), func(i int, buf []byte) []byte {
		return encodeWorld(buf, recs[i])
	})
}

// appendRecords buffers n encoded records into the shard's log file
// and applies the sync policy: group commit blocks for durability,
// threshold mode fsyncs inline once SyncEvery accumulates. The WAL may
// keep fewer log files than the journal has lock stripes (the manifest
// decouples the counts); callers pass the journal shard index and it
// folds onto the file set here. Fewer files means a commit pass is
// fewer fsyncs — with the default single file, exactly one — which is
// what lets group commit amortize durability across every concurrent
// appender rather than across only the appenders of one stripe.
func (w *DiskWAL) appendRecords(shard int, n int, enc func(i int, buf []byte) []byte) {
	sh := w.shards[shard&(len(w.shards)-1)]
	sh.mu.Lock()
	// Sticky-error refusal: after a failed write the on-disk chain may
	// have diverged from the stream indices Offsets reports; appending
	// more records would bury the divergence deeper. Recovery trusts
	// exactly the pre-error prefix.
	if w.errFlag.Load() {
		sh.mu.Unlock()
		return
	}
	written := 0
	for i := 0; i < n; i++ {
		if sh.f == nil || sh.segSize >= w.opts.SegmentMaxBytes {
			if err := w.rotateLocked(sh); err != nil {
				w.failAppendLocked(sh, written, err)
				return
			}
		}
		sh.scratch = enc(i, sh.scratch[:0])
		if _, err := sh.bw.Write(sh.scratch); err != nil {
			w.failAppendLocked(sh, written, err)
			return
		}
		sh.next++
		sh.segSize += int64(len(sh.scratch))
		sh.dirty = true
		written++
	}
	end := sh.next
	// Counter discipline: unsynced is adjusted only under a shard's mu
	// (here, and subtractively in syncShard/rotateLocked), so it always
	// equals the sum over shards of (next - synced) — the exact number
	// of acknowledged-but-volatile records.
	w.unsynced.Add(int64(written))
	sh.dirtyHint.Store(true)
	sh.mu.Unlock()

	if w.group {
		w.requestCommit()
		w.awaitDurable(sh, end)
		return
	}
	if w.unsynced.Load() >= int64(w.opts.SyncEvery) {
		// The caller holds this shard's journal lock, so keep the inline
		// work bounded to this shard's file: the events just acknowledged
		// live here, and fsyncing it makes them durable before Append
		// returns. Other shards' quiet tails are handed to the background
		// syncer instead of being flushed under this caller's lock;
		// without a background syncer (tests, benchmarks) fall back to a
		// full inline pass.
		if w.opts.SyncInterval > 0 {
			w.syncShard(sh)
			select {
			case w.wake <- struct{}{}:
			default:
			}
		} else {
			_ = w.Sync()
		}
	}
}

// failAppendLocked records a mid-batch append failure: the partially
// written records still count as unsynced (they advanced sh.next), the
// error becomes sticky, and this shard's waiters are woken to observe
// it. Called with sh.mu held; unlocks it.
func (w *DiskWAL) failAppendLocked(sh *walShard, written int, err error) {
	w.unsynced.Add(int64(written))
	sh.dirtyHint.Store(true)
	w.setErr(err)
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// syncShard flushes and fsyncs one shard's active segment, advances
// its synced index, subtracts exactly the newly durable records from
// the unsynced counter, and wakes the shard's commit waiters.
//
// The fsync itself runs with sh.mu RELEASED. This is what makes group
// commit actually amortize: appenders keep buffering records (and
// queueing the next commit token) while the current flush is on the
// platter, so the following pass acknowledges all of them with one
// more fsync. Holding mu across the fsync would serialize appenders
// behind every flush — one fsync per append, the exact cost group
// commit exists to avoid. Only the records flushed BEFORE the fsync
// (up to target) are marked durable; later arrivals wait for their own
// pass. fsyncMu pins the file open for the duration: rotation closes
// segments, and it takes the same lock (always under mu — lock order
// is mu, then fsyncMu) before touching the descriptor.
func (w *DiskWAL) syncShard(sh *walShard) {
	sh.mu.Lock()
	if sh.f == nil || !sh.dirty {
		// Nothing buffered: whatever records exist are already durable
		// (rotation and open both fsync before clearing dirty).
		sh.dirtyHint.Store(false)
		sh.cond.Broadcast()
		sh.mu.Unlock()
		return
	}
	if err := sh.bw.Flush(); err != nil {
		w.setErr(err)
		sh.cond.Broadcast()
		sh.mu.Unlock()
		return
	}
	f := sh.f
	target := sh.next
	sh.dirty = false
	sh.dirtyHint.Store(false)
	sh.fsyncMu.Lock()
	sh.mu.Unlock()

	err := f.Sync()
	sh.fsyncMu.Unlock()

	sh.mu.Lock()
	advanced := false
	if err != nil {
		w.setErr(err)
	} else if target > sh.synced {
		// A concurrent rotation may have closed the segment (its own
		// fsync covered everything, advancing synced past target) — then
		// there is nothing left to account here.
		w.unsynced.Add(-int64(target - sh.synced))
		sh.synced = target
		advanced = true
	}
	sh.cond.Broadcast()
	sh.mu.Unlock()
	if advanced && w.testSyncedShard != nil {
		w.testSyncedShard(sh.idx)
	}
}

// rotateLocked closes the active segment (flushed and fsynced — an
// interior segment is always fully valid on disk) and opens a fresh one
// starting at the shard's next stream index. Called with sh.mu held.
func (w *DiskWAL) rotateLocked(sh *walShard) error {
	if sh.f != nil {
		if err := sh.bw.Flush(); err != nil {
			return err
		}
		// fsyncMu keeps the descriptor alive for any syncShard pass whose
		// fsync is in flight with mu released; acquire it (lock order mu,
		// then fsyncMu) before the close invalidates the file.
		sh.fsyncMu.Lock()
		err := sh.f.Sync()
		if err == nil {
			err = sh.f.Close()
		}
		sh.fsyncMu.Unlock()
		if err != nil {
			return err
		}
		sh.f, sh.bw, sh.dirty = nil, nil, false
		// The close made every record in the old segment durable.
		if newly := int64(sh.next - sh.synced); newly != 0 {
			sh.synced = sh.next
			w.unsynced.Add(-newly)
			sh.cond.Broadcast()
		}
	}
	path := fmt.Sprintf("%s/%s", w.dir, segmentFileName(sh.idx, sh.next))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.Write(segmentHeader(sh.idx, sh.next)); err != nil {
		f.Close()
		return err
	}
	sh.f, sh.bw = f, bw
	sh.segStart = sh.next
	sh.segSize = segHeaderSize
	sh.dirty = true
	return nil
}

// Sync flushes and fsyncs every dirty shard — in parallel, so a pass
// over many dirty shards costs roughly one fsync of wall time — and
// wakes each shard's commit waiters as it lands. The unsynced counter
// is decremented per shard by exactly the records that pass made
// durable, never zeroed: appends racing with the pass keep their
// count, preserving the SyncEvery/SyncInterval contract for them. It
// returns the sticky error if any write has ever failed.
func (w *DiskWAL) Sync() error {
	w.syncMu.Lock()
	var wg sync.WaitGroup
	for _, sh := range w.shards {
		if !sh.dirtyHint.Load() {
			continue
		}
		wg.Add(1)
		go func(sh *walShard) {
			defer wg.Done()
			w.syncShard(sh)
		}(sh)
	}
	wg.Wait()
	w.syncMu.Unlock()
	return w.Err()
}

// Offsets snapshots each shard's next stream index — the per-shard
// high-water marks a checkpoint manifest records. Capturing offsets
// BEFORE writing the snapshot preserves the recovery invariant: every
// record below an offset committed to the in-memory store (and thus to
// any later snapshot) before it entered the WAL.
func (w *DiskWAL) Offsets() []uint64 { return w.OffsetsInto(nil) }

// OffsetsInto is Offsets writing into dst (grown as needed): pollers
// that snapshot offsets every tick (the replication tail, the staleness
// header) reuse one scratch slice instead of allocating per call.
func (w *DiskWAL) OffsetsInto(dst []uint64) []uint64 {
	dst = sizeOffsets(dst, len(w.shards))
	for i, sh := range w.shards {
		sh.mu.Lock()
		dst[i] = sh.next
		sh.mu.Unlock()
	}
	return dst
}

// SyncedOffsets snapshots each shard's fsynced high-water mark into dst
// (grown as needed). This is the replication feed's publish horizon:
// records below it are both durable on the leader and fully flushed to
// the segment files, so a concurrent reader is guaranteed to find them.
func (w *DiskWAL) SyncedOffsets(dst []uint64) []uint64 {
	dst = sizeOffsets(dst, len(w.shards))
	for i, sh := range w.shards {
		sh.mu.Lock()
		dst[i] = sh.synced
		sh.mu.Unlock()
	}
	return dst
}

// sizeOffsets returns dst resized to n entries, reusing its backing
// array when capacity allows.
func sizeOffsets(dst []uint64, n int) []uint64 {
	if cap(dst) < n {
		return make([]uint64, n)
	}
	return dst[:n]
}

// shardNext returns one shard's next stream index — the follower tail's
// per-shard replication cursor, read without allocating.
func (w *DiskWAL) shardNext(shard int) uint64 {
	sh := w.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.next
}

// appendRaw writes pre-framed record bytes (shipped segment frames,
// already CRC-verified by the caller) to the given WAL shard's chain,
// with the same rotation, sync policy, group-commit and sticky-error
// behavior as Append. shard is the WAL file index itself, not a journal
// shard to fold. This is the follower's persist path: frames land
// byte-identical to the leader's, so the follower's chain IS the
// leader's record stream.
func (w *DiskWAL) appendRaw(shard int, frames [][]byte) {
	if len(frames) == 0 {
		return
	}
	w.appendRecords(shard, len(frames), func(i int, buf []byte) []byte {
		return append(buf, frames[i]...)
	})
}

// Compact removes segments made redundant by a snapshot covering the
// given per-shard offsets: a non-active segment whose every record sits
// below its shard's offset is deleted. Recovery afterwards is snapshot
// + tail-replay of the surviving segments, never full history.
func (w *DiskWAL) Compact(offsets []uint64) error {
	byShard, err := listSegments(w.dir, len(w.shards))
	if err != nil {
		return err
	}
	for i, segs := range byShard {
		sh := w.shards[i]
		sh.mu.Lock()
		activeStart, active := sh.segStart, sh.f != nil
		sh.mu.Unlock()
		for k, seg := range segs {
			if active && seg.start == activeStart {
				continue
			}
			// A segment's span ends where the next one starts (or at the
			// shard's active segment). The chain is authoritative — record
			// sizes vary, so the file size says nothing about the count.
			var end uint64
			if k+1 < len(segs) {
				end = segs[k+1].start
			} else {
				continue // newest segment, keep
			}
			if end <= offsets[i] {
				if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
					return err
				}
			}
		}
	}
	return nil
}

// Close stops the background syncer and group committer, flushes and
// fsyncs everything, wakes any remaining commit waiters, and closes
// the segment files. The WAL must not be appended to afterwards.
func (w *DiskWAL) Close() error {
	w.stopOnce.Do(func() {
		w.stopped.Store(true)
		close(w.stopc)
	})
	<-w.done
	<-w.commitDone
	err := w.Sync()
	w.wakeWaiters()
	for _, sh := range w.shards {
		sh.mu.Lock()
		if sh.f != nil {
			if cerr := sh.f.Close(); cerr != nil && err == nil {
				err = cerr
			}
			sh.f, sh.bw = nil, nil
		}
		sh.mu.Unlock()
	}
	return err
}
