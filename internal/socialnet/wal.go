package socialnet

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// WALOptions tunes the disk journal backend.
type WALOptions struct {
	// SyncEvery fsyncs after this many appended events have accumulated
	// (across all shards): the appending shard synchronously, the rest
	// via the background syncer. 0 means DefaultSyncEvery; 1 fsyncs
	// every append before it returns (slow, but nothing acknowledged is
	// ever lost to a crash — an fsync FAILURE is sticky in Err, and
	// write surfaces consult Store.DurabilityErr before acknowledging).
	SyncEvery int
	// SyncInterval is the background fsync period bounding how long a
	// quiet tail can stay volatile. 0 means DefaultSyncInterval; < 0
	// disables the background syncer (tests, benchmarks).
	SyncInterval time.Duration
	// SegmentMaxBytes rotates a shard to a fresh segment file once the
	// active one reaches this size. 0 means DefaultSegmentMaxBytes.
	SegmentMaxBytes int64
}

// WAL option defaults.
const (
	DefaultSyncEvery       = 256
	DefaultSyncInterval    = 100 * time.Millisecond
	DefaultSegmentMaxBytes = int64(4 << 20)
)

func (o WALOptions) withDefaults() WALOptions {
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = DefaultSegmentMaxBytes
	}
	return o
}

// walShard is one shard's active segment writer. Appends go through a
// buffered writer; flush+fsync happens on the batched sync policy, not
// per append, so the write path costs a memcpy until a sync boundary.
type walShard struct {
	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	next     uint64 // stream index of the next event to append
	segStart uint64 // first index of the active segment
	segSize  int64  // bytes written to the active segment
	dirty    bool   // bytes flushed or buffered since the last fsync
	scratch  []byte // record-encoding buffer, reused under mu
}

// DiskWAL is the journal's disk backend: per-shard append-only segment
// files with batched fsync and size-based rotation. It implements
// Backend; Journal streams every appended event through it while the
// in-memory shards stay the read path. Appends are acknowledged before
// they are synced — the durability contract is "at most SyncEvery
// events (or SyncInterval of wall time) may be lost on a crash"; Sync
// narrows that window to zero on demand (shutdown, checkpoints).
type DiskWAL struct {
	dir    string
	opts   WALOptions
	shards []*walShard

	unsynced atomic.Int64

	errMu sync.Mutex
	err   error // sticky: first write/sync failure, surfaced by Err/Sync/Close

	syncMu sync.Mutex // serializes whole-WAL sync passes

	stopOnce sync.Once
	stopc    chan struct{}
	wake     chan struct{} // nudges the background syncer (buffered, size 1)
	done     chan struct{}
}

// walRecovery is one shard's replayed disk state: the events found in
// its segments at or after the requested base offset, and the stream
// index of the first of them.
type walRecovery struct {
	Start  uint64
	Events []LikeEvent
}

// openWAL opens (or initializes) the segment files under dir for
// nShards shards and returns the WAL positioned for appending plus the
// recovered per-shard events from base[i] onward. Only the last segment
// of a shard may carry a torn tail; it is repaired by truncating to the
// last valid record. An interior segment that fails validation is a
// hard error — rotation never leaves a torn interior segment behind, so
// one means external damage the WAL must not silently paper over.
func openWAL(dir string, nShards int, base []uint64, opts WALOptions) (*DiskWAL, []walRecovery, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	byShard, err := listSegments(dir, nShards)
	if err != nil {
		return nil, nil, err
	}
	w := &DiskWAL{
		dir:    dir,
		opts:   opts,
		shards: make([]*walShard, nShards),
		stopc:  make(chan struct{}),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	recovered := make([]walRecovery, nShards)
	for i := 0; i < nShards; i++ {
		sh := &walShard{next: base[i]}
		recovered[i] = walRecovery{Start: base[i]}
		// A crash between rotation and the first flush leaves the newest
		// segment with a missing or torn HEADER (creation reserves the
		// name; the header sits in the write buffer). Nothing in such a
		// file is readable, so it is the degenerate torn tail: drop it
		// and resume on the previous segment, which rotation fsynced.
		segs := byShard[i]
		for len(segs) > 0 {
			lastSeg := segs[len(segs)-1]
			if ok, err := segmentHeaderReadable(lastSeg.path); err != nil {
				return nil, nil, err
			} else if ok {
				break
			}
			if err := os.Remove(lastSeg.path); err != nil {
				return nil, nil, err
			}
			segs = segs[:len(segs)-1]
		}
		for k, seg := range segs {
			f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
			if err != nil {
				return nil, nil, err
			}
			events, validSize, shard, start, err := scanSegment(f)
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			if shard != i || start != seg.start {
				f.Close()
				return nil, nil, fmt.Errorf("%w: %s header says shard %d start %d", ErrCorruptSegment, seg.path, shard, start)
			}
			info, err := f.Stat()
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			last := k == len(segs)-1
			if validSize < info.Size() {
				if !last {
					f.Close()
					return nil, nil, fmt.Errorf("%w: %s torn at %d bytes but is not the shard's last segment", ErrCorruptSegment, seg.path, validSize)
				}
				if err := f.Truncate(validSize); err != nil {
					f.Close()
					return nil, nil, fmt.Errorf("socialnet: repair %s: %w", seg.path, err)
				}
				if err := f.Sync(); err != nil {
					f.Close()
					return nil, nil, err
				}
			}
			// Contiguity: a later segment must resume exactly where the
			// previous one ended; the first must not start beyond the
			// snapshot offset (compaction can leave it at or below it).
			if k > 0 {
				if start != sh.next {
					f.Close()
					return nil, nil, fmt.Errorf("%w: %s starts at %d, expected %d", ErrCorruptSegment, seg.path, start, sh.next)
				}
			} else if start > base[i] {
				f.Close()
				return nil, nil, fmt.Errorf("%w: %s starts at %d beyond snapshot offset %d", ErrCorruptSegment, seg.path, start, base[i])
			}
			end := start + uint64(len(events))
			// Keep only events at/after the base offset; earlier ones are
			// guaranteed covered by the snapshot the base came from.
			if end > base[i] {
				skip := 0
				if start < base[i] {
					skip = int(base[i] - start)
				}
				if len(recovered[i].Events) == 0 {
					recovered[i].Start = start + uint64(skip)
				}
				recovered[i].Events = append(recovered[i].Events, events[skip:]...)
			}
			sh.next = end
			if last {
				// Position the write offset at the valid end: the scan (and
				// a torn-tail truncation) can leave it elsewhere, and a
				// write at the wrong offset would corrupt the chain.
				if _, err := f.Seek(validSize, io.SeekStart); err != nil {
					f.Close()
					return nil, nil, err
				}
				sh.f = f
				sh.bw = bufio.NewWriterSize(f, 1<<16)
				sh.segStart = start
				sh.segSize = validSize
			} else {
				f.Close()
			}
		}
		// A chain ending below the manifest offset means a checkpoint's
		// snapshot covered events the segments never got (all of them:
		// end < base implies every on-disk record is below the offset).
		// Drop the stale chain and resume AT the offset — appending below
		// it would put acknowledged events where the next recovery skips.
		if sh.next < base[i] {
			if sh.f != nil {
				if err := sh.f.Close(); err != nil {
					return nil, nil, err
				}
				sh.f, sh.bw = nil, nil
			}
			for _, seg := range segs {
				if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
					return nil, nil, err
				}
			}
			sh.next = base[i]
			recovered[i] = walRecovery{Start: base[i]}
		}
		w.shards[i] = sh
	}
	if opts.SyncInterval > 0 {
		go w.syncLoop()
	} else {
		close(w.done)
	}
	return w, recovered, nil
}

// syncLoop is the background fsync ticker.
func (w *DiskWAL) syncLoop() {
	defer close(w.done)
	t := time.NewTicker(w.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopc:
			return
		case <-w.wake:
			_ = w.Sync()
		case <-t.C:
			if w.unsynced.Load() > 0 {
				_ = w.Sync()
			}
		}
	}
}

func (w *DiskWAL) setErr(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
}

// Err returns the sticky first write or sync failure, if any.
func (w *DiskWAL) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

// Dir returns the WAL's directory.
func (w *DiskWAL) Dir() string { return w.dir }

// Append writes the events to the shard's active segment, rotating
// first if it is full. It implements Backend and is called by the
// journal under the corresponding journal-shard lock, so per-shard
// append order on disk always matches the in-memory stream. Errors are
// sticky (surfaced by Sync/Err/Close): the in-memory journal stays
// authoritative for reads even if the disk falls over.
func (w *DiskWAL) Append(shard int, evs ...LikeEvent) {
	if len(evs) == 0 {
		return
	}
	sh := w.shards[shard]
	sh.mu.Lock()
	for _, ev := range evs {
		if sh.f == nil || sh.segSize >= w.opts.SegmentMaxBytes {
			if err := w.rotateLocked(shard, sh); err != nil {
				sh.mu.Unlock()
				w.setErr(err)
				return
			}
		}
		sh.scratch = encodeEvent(sh.scratch[:0], ev)
		if _, err := sh.bw.Write(sh.scratch); err != nil {
			sh.mu.Unlock()
			w.setErr(err)
			return
		}
		sh.next++
		sh.segSize += recordSize
		sh.dirty = true
	}
	sh.mu.Unlock()
	if w.unsynced.Add(int64(len(evs))) >= int64(w.opts.SyncEvery) {
		// The caller holds this shard's journal lock, so keep the inline
		// work bounded to this shard's file: the events just acknowledged
		// live here, and fsyncing it makes them durable before Append
		// returns (the SyncEvery=1 contract). Other shards' quiet tails
		// are handed to the background syncer instead of being flushed
		// under this caller's lock; without a background syncer (tests,
		// benchmarks) fall back to a full inline pass.
		if w.opts.SyncInterval > 0 {
			w.syncShard(sh)
			select {
			case w.wake <- struct{}{}:
			default:
			}
		} else {
			_ = w.Sync()
		}
	}
}

// syncShard flushes and fsyncs one shard's active segment.
func (w *DiskWAL) syncShard(sh *walShard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.f == nil || !sh.dirty {
		return
	}
	if err := sh.bw.Flush(); err != nil {
		w.setErr(err)
		return
	}
	if err := sh.f.Sync(); err != nil {
		w.setErr(err)
		return
	}
	sh.dirty = false
}

// rotateLocked closes the active segment (flushed and fsynced — an
// interior segment is always fully valid on disk) and opens a fresh one
// starting at the shard's next stream index. Called with sh.mu held.
func (w *DiskWAL) rotateLocked(shard int, sh *walShard) error {
	if sh.f != nil {
		if err := sh.bw.Flush(); err != nil {
			return err
		}
		if err := sh.f.Sync(); err != nil {
			return err
		}
		if err := sh.f.Close(); err != nil {
			return err
		}
		sh.f, sh.bw, sh.dirty = nil, nil, false
	}
	path := fmt.Sprintf("%s/%s", w.dir, segmentFileName(shard, sh.next))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.Write(segmentHeader(shard, sh.next)); err != nil {
		f.Close()
		return err
	}
	sh.f, sh.bw = f, bw
	sh.segStart = sh.next
	sh.segSize = segHeaderSize
	sh.dirty = true
	return nil
}

// Sync flushes every shard's buffer and fsyncs dirty segments, then
// resets the batched-sync counter. It returns the sticky error if any
// write has ever failed.
func (w *DiskWAL) Sync() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	for _, sh := range w.shards {
		sh.mu.Lock()
		if sh.f != nil && sh.dirty {
			if err := sh.bw.Flush(); err != nil {
				sh.mu.Unlock()
				w.setErr(err)
				return w.Err()
			}
			if err := sh.f.Sync(); err != nil {
				sh.mu.Unlock()
				w.setErr(err)
				return w.Err()
			}
			sh.dirty = false
		}
		sh.mu.Unlock()
	}
	w.unsynced.Store(0)
	return w.Err()
}

// Offsets snapshots each shard's next stream index — the per-shard
// high-water marks a checkpoint manifest records. Capturing offsets
// BEFORE writing the snapshot preserves the recovery invariant: every
// event below an offset committed to its user index (and thus to any
// later snapshot) before it entered the WAL.
func (w *DiskWAL) Offsets() []uint64 {
	out := make([]uint64, len(w.shards))
	for i, sh := range w.shards {
		sh.mu.Lock()
		out[i] = sh.next
		sh.mu.Unlock()
	}
	return out
}

// Compact removes segments made redundant by a snapshot covering the
// given per-shard offsets: a non-active segment whose every record sits
// below its shard's offset is deleted. Recovery afterwards is snapshot
// + tail-replay of the surviving segments, never full history.
func (w *DiskWAL) Compact(offsets []uint64) error {
	byShard, err := listSegments(w.dir, len(w.shards))
	if err != nil {
		return err
	}
	for i, segs := range byShard {
		sh := w.shards[i]
		sh.mu.Lock()
		activeStart, active := sh.segStart, sh.f != nil
		sh.mu.Unlock()
		for k, seg := range segs {
			if active && seg.start == activeStart {
				continue
			}
			// A segment's span ends where the next one starts (or at the
			// shard's active segment). Fixed-size records would also give
			// the count from the file size, but the chain is authoritative.
			var end uint64
			if k+1 < len(segs) {
				end = segs[k+1].start
			} else {
				continue // newest segment, keep
			}
			if end <= offsets[i] {
				if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
					return err
				}
			}
		}
	}
	return nil
}

// Close stops the background syncer, flushes and fsyncs everything, and
// closes the segment files. The WAL must not be appended to afterwards.
func (w *DiskWAL) Close() error {
	w.stopOnce.Do(func() { close(w.stopc) })
	<-w.done
	err := w.Sync()
	for _, sh := range w.shards {
		sh.mu.Lock()
		if sh.f != nil {
			if cerr := sh.f.Close(); cerr != nil && err == nil {
				err = cerr
			}
			sh.f, sh.bw = nil, nil
		}
		sh.mu.Unlock()
	}
	return err
}
