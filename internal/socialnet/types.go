// Package socialnet models the social-network world the honeypot study
// measured: users with demographic attributes and privacy settings,
// pages, timestamped likes, and a friendship graph. It replaces the live
// Facebook platform of the paper (§3) with an in-memory, deterministic,
// concurrency-safe store exposing the same observables the authors had:
// public profile attributes, optionally-public friend lists, public page
// like lists, page-admin aggregate reports, and a searchable directory.
package socialnet

import (
	"time"
)

// UserID and PageID identify users and pages. IDs are assigned densely by
// the Store and are stable across a run given the same seed.
type UserID int64

// PageID identifies a page.
type PageID int64

// Gender is a user's declared gender.
type Gender uint8

// Gender values.
const (
	GenderUnknown Gender = iota
	GenderFemale
	GenderMale
)

// String implements fmt.Stringer.
func (g Gender) String() string {
	switch g {
	case GenderFemale:
		return "F"
	case GenderMale:
		return "M"
	default:
		return "?"
	}
}

// ParseGender inverts Gender.String: "F" and "M" map to their genders,
// anything else (including the "?" rendering of GenderUnknown) to
// GenderUnknown. Crawl-side analyses use it to rebuild enum attributes
// from the API's public-profile strings.
func ParseGender(s string) Gender {
	switch s {
	case "F":
		return GenderFemale
	case "M":
		return GenderMale
	default:
		return GenderUnknown
	}
}

// AgeBracket matches the buckets of the paper's Table 2.
type AgeBracket uint8

// Age brackets of Table 2.
const (
	Age13to17 AgeBracket = iota
	Age18to24
	Age25to34
	Age35to44
	Age45to54
	Age55plus
	ageBracketCount
)

// AgeBrackets lists all brackets in Table 2 order.
func AgeBrackets() []AgeBracket {
	return []AgeBracket{Age13to17, Age18to24, Age25to34, Age35to44, Age45to54, Age55plus}
}

// AgeBracketLabels lists the Table 2 column labels in order.
func AgeBracketLabels() []string {
	return []string{"13-17", "18-24", "25-34", "35-44", "45-54", "55+"}
}

// String implements fmt.Stringer.
func (a AgeBracket) String() string {
	labels := AgeBracketLabels()
	if int(a) < len(labels) {
		return labels[a]
	}
	return "?"
}

// ParseAgeBracket inverts AgeBracket.String: a Table 2 column label
// ("13-17" ... "55+") maps back to its bracket. The second return is
// false for any other string.
func ParseAgeBracket(s string) (AgeBracket, bool) {
	for i, label := range AgeBracketLabels() {
		if s == label {
			return AgeBracket(i), true
		}
	}
	return 0, false
}

// AccountStatus tracks whether an account is live or terminated by the
// platform's fraud sweep (Table 1 last column, §5 follow-up).
type AccountStatus uint8

// Account statuses.
const (
	StatusActive AccountStatus = iota
	StatusTerminated
)

// String implements fmt.Stringer.
func (s AccountStatus) String() string {
	if s == StatusTerminated {
		return "terminated"
	}
	return "active"
}

// AccountKind distinguishes organic users from farm-controlled accounts.
// The analysis code never reads this field — it only sees observables,
// as the paper's authors did — but evaluation harnesses use it as ground
// truth for detector precision/recall.
type AccountKind uint8

// Account kinds.
const (
	KindOrganic     AccountKind = iota
	KindFarmBot                 // disposable script-driven account (burst farms)
	KindFarmStealth             // long-lived human-mimicking account (trickle farms)
)

// String implements fmt.Stringer.
func (k AccountKind) String() string {
	switch k {
	case KindFarmBot:
		return "farm-bot"
	case KindFarmStealth:
		return "farm-stealth"
	default:
		return "organic"
	}
}

// User is a profile in the world.
type User struct {
	ID          UserID
	Gender      Gender
	Age         AgeBracket
	Country     string // ISO-ish country label, e.g. "USA", "India"
	HomeTown    string
	CurrentTown string

	// FriendsPublic mirrors Facebook's friend-list visibility setting;
	// the paper found ~80% of FB-campaign likers kept lists private vs
	// ~40-60% for most farms (Table 3).
	FriendsPublic bool
	// DeclaredFriends is the friend-count shown on the profile. The
	// structural graph stores only the relations that matter to the
	// analyses (islands, cores, hubs, organic ties); DeclaredFriends
	// models the full list length, of which observed edges are a lower
	// bound — the paper makes the same caveat about hidden friends
	// ("these numbers only represent a lower bound", §4.3).
	DeclaredFriends int
	// Searchable mirrors presence in the public directory used to draw
	// the unbiased baseline sample for Figure 4.
	Searchable bool

	Status    AccountStatus
	Kind      AccountKind
	Operator  string // farm brand operating this account, "" if organic
	CreatedAt time.Time
}

// Page is a Facebook-style page users can like.
type Page struct {
	ID          PageID
	Name        string
	Description string
	Owner       UserID
	Category    string
	CreatedAt   time.Time
	// Honeypot marks the study's own pages ("This is not a real page,
	// so please do not like it.").
	Honeypot bool
}

// Like is a timestamped (user, page) like event.
type Like struct {
	User UserID
	Page PageID
	At   time.Time
}
