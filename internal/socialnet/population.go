package socialnet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// PopulationSpec configures the organic world generated around the
// honeypots: the regular Facebook users whose liking behaviour sets the
// Figure 4 baseline (median ~34 page likes) and whose friendship graph
// supplies the mutual friends behind 2-hop relations.
type PopulationSpec struct {
	// NumUsers is the organic population size.
	NumUsers int
	// NumAmbientPages is the size of the ambient page catalog (the
	// "normal" pages everyone, including farm accounts, likes).
	NumAmbientPages int
	// CountryMix draws each user's country.
	CountryMix *stats.Categorical
	// Profile is the demographic profile (defaults to the global
	// Facebook profile of Table 2's last row).
	Profile *Profile
	// FriendAttachM is the Barabási–Albert attachment parameter for the
	// organic friendship graph.
	FriendAttachM int
	// LikeMedian and LikeSigma parameterize the lognormal page-like
	// count per organic user; the paper's baseline sample had median 34.
	LikeMedian float64
	LikeSigma  float64
	// MaxLikes truncates the like-count tail (the paper observed up to
	// ~10,000). Zero means 10000.
	MaxLikes int
	// PageZipfS is the Zipf exponent of ambient page popularity.
	PageZipfS float64
	// SearchableFrac is the fraction of users in the public directory.
	SearchableFrac float64
	// FriendsPublicFrac is the fraction of organic users with public
	// friend lists.
	FriendsPublicFrac float64
	// CreatedAt stamps user records.
	CreatedAt time.Time
	// Workers bounds the worker pool generating per-user like
	// histories (0 = one per CPU). The generated world is identical
	// for every worker count: each user's likes draw from a stream
	// split per user ID.
	Workers int
}

// DefaultPopulationSpec returns a spec sized for a full study run.
func DefaultPopulationSpec() PopulationSpec {
	return PopulationSpec{
		NumUsers:        8000,
		NumAmbientPages: 4000,
		CountryMix: stats.MustCategorical(
			StudyCountries(),
			[]float64{0.20, 0.12, 0.05, 0.04, 0.05, 0.54},
		),
		Profile:           GlobalFacebookProfile(),
		FriendAttachM:     5,
		LikeMedian:        34,
		LikeSigma:         1.3,
		MaxLikes:          10000,
		PageZipfS:         1.05,
		SearchableFrac:    0.85,
		FriendsPublicFrac: 0.55,
		CreatedAt:         time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC),
	}
}

// Population is the generated organic world.
type Population struct {
	Users        []UserID
	AmbientPages []PageID
	pageZipf     *stats.BoundedZipf
}

// Validate checks the spec's ranges.
func (s *PopulationSpec) Validate() error {
	if s.NumUsers < 10 {
		return fmt.Errorf("socialnet: population %d too small (need >=10)", s.NumUsers)
	}
	if s.NumAmbientPages < 10 {
		return fmt.Errorf("socialnet: ambient catalog %d too small (need >=10)", s.NumAmbientPages)
	}
	if s.CountryMix == nil {
		return fmt.Errorf("socialnet: nil country mix")
	}
	if s.Profile == nil {
		return fmt.Errorf("socialnet: nil demographic profile")
	}
	if err := s.Profile.Validate(); err != nil {
		return err
	}
	if s.FriendAttachM < 1 || s.FriendAttachM >= s.NumUsers {
		return fmt.Errorf("socialnet: friend attachment m=%d out of range", s.FriendAttachM)
	}
	if s.LikeMedian <= 0 || s.LikeSigma <= 0 {
		return fmt.Errorf("socialnet: like distribution (median=%v sigma=%v) must be positive", s.LikeMedian, s.LikeSigma)
	}
	if s.PageZipfS <= 0 {
		return fmt.Errorf("socialnet: zipf exponent %v must be positive", s.PageZipfS)
	}
	if s.SearchableFrac < 0 || s.SearchableFrac > 1 || s.FriendsPublicFrac < 0 || s.FriendsPublicFrac > 1 {
		return fmt.Errorf("socialnet: fractions out of [0,1]")
	}
	return nil
}

// GeneratePopulation fills the store with the organic world: users with
// demographics, a preferential-attachment friendship graph, an ambient
// page catalog, and per-user page likes spread over the year before the
// campaigns.
func GeneratePopulation(r *rand.Rand, st *Store, spec PopulationSpec) (*Population, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	maxLikes := spec.MaxLikes
	if maxLikes == 0 {
		maxLikes = 10000
	}
	if maxLikes > spec.NumAmbientPages {
		maxLikes = spec.NumAmbientPages
	}

	pop := &Population{}

	// Users.
	for i := 0; i < spec.NumUsers; i++ {
		country := spec.CountryMix.Sample(r)
		u := User{
			Gender:        spec.Profile.SampleGender(r),
			Age:           spec.Profile.SampleAge(r),
			Country:       country,
			HomeTown:      TownFor(r, country),
			CurrentTown:   TownFor(r, country),
			FriendsPublic: stats.Bernoulli(r, spec.FriendsPublicFrac),
			Searchable:    stats.Bernoulli(r, spec.SearchableFrac),
			Kind:          KindOrganic,
			CreatedAt:     spec.CreatedAt,
		}
		pop.Users = append(pop.Users, st.AddUser(u))
	}

	// Friendships: BA graph over the organic users.
	ids := make([]int64, len(pop.Users))
	for i, u := range pop.Users {
		ids[i] = int64(u)
	}
	g, err := graph.BarabasiAlbert(r, ids, spec.FriendAttachM)
	if err != nil {
		return nil, fmt.Errorf("socialnet: friendship graph: %w", err)
	}
	for _, e := range g.Edges() {
		if err := st.Friend(UserID(e[0]), UserID(e[1])); err != nil {
			return nil, err
		}
	}

	// Ambient pages.
	for i := 0; i < spec.NumAmbientPages; i++ {
		id, err := st.AddPage(Page{
			Name:      fmt.Sprintf("ambient-page-%05d", i),
			Category:  ambientCategory(r),
			CreatedAt: spec.CreatedAt,
		})
		if err != nil {
			return nil, err
		}
		pop.AmbientPages = append(pop.AmbientPages, id)
	}
	zipf, err := stats.NewBoundedZipf(len(pop.AmbientPages), spec.PageZipfS)
	if err != nil {
		return nil, err
	}
	pop.pageZipf = zipf

	// Organic likes: per-user lognormal count over Zipf-popular pages,
	// timestamped in the year before CreatedAt+4y (i.e. pre-campaign).
	// Each user's likes draw from a stream split from a seed taken off
	// the shared stream, so generation fans out over the worker pool
	// (users land on different store stripes) while the world stays
	// identical for every pool size.
	mu, err := stats.LogNormalForMedian(spec.LikeMedian)
	if err != nil {
		return nil, err
	}
	ln, err := stats.NewLogNormal(mu, spec.LikeSigma, 1, float64(maxLikes))
	if err != nil {
		return nil, err
	}
	likeWindowStart := spec.CreatedAt.AddDate(1, 0, 0)
	likeSeed := r.Int63()
	err = parallel.ForEach(spec.Workers, len(pop.Users), func(i int) error {
		uid := pop.Users[i]
		ur := stats.SplitRandN(likeSeed, "organic-likes", int64(uid))
		k := ln.SampleInt(ur)
		if k > maxLikes {
			k = maxLikes
		}
		pages := pop.SampleAmbientPages(ur, k)
		for _, pid := range pages {
			at := likeWindowStart.Add(time.Duration(ur.Int63n(int64(3 * 365 * 24 * time.Hour))))
			if err := st.AddLike(uid, pid, at); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pop, nil
}

// SampleAmbientPages draws k distinct ambient pages, Zipf-weighted by
// popularity rank, falling back to uniform fill when k approaches the
// catalog size.
func (p *Population) SampleAmbientPages(r *rand.Rand, k int) []PageID {
	n := len(p.AmbientPages)
	if k >= n {
		return append([]PageID(nil), p.AmbientPages...)
	}
	chosen := make(map[int]struct{}, k)
	// Zipf-weighted rejection; beyond a density threshold switch to a
	// uniform partial shuffle to avoid quadratic rejection cost.
	if k <= n/3 {
		attempts := 0
		for len(chosen) < k && attempts < 20*k {
			rank := p.pageZipf.Sample(r) - 1
			chosen[rank] = struct{}{}
			attempts++
		}
	}
	if len(chosen) < k {
		idx, err := stats.SampleWithoutReplacement(r, n, k-len(chosen))
		if err == nil {
			for _, i := range idx {
				if len(chosen) >= k {
					break
				}
				chosen[i] = struct{}{}
			}
		}
		// Deterministic fill for any residual collisions.
		for i := 0; len(chosen) < k && i < n; i++ {
			chosen[i] = struct{}{}
		}
	}
	ranks := make([]int, 0, len(chosen))
	for i := range chosen {
		ranks = append(ranks, i)
	}
	sort.Ints(ranks) // map order is random per process; keep runs reproducible
	out := make([]PageID, 0, k)
	for _, i := range ranks {
		out = append(out, p.AmbientPages[i])
	}
	return out
}

func ambientCategory(r *rand.Rand) string {
	cats := []string{"brand", "entertainment", "sports", "news", "community", "local-business", "music", "gaming"}
	return cats[r.Intn(len(cats))]
}
