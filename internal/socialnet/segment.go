package socialnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Segment files are the journal's on-disk form: one directory holds one
// sharded stream of journal records, each shard a chain of append-only
// segment files. A segment is a fixed header followed by framed
// records:
//
//	header  = magic "LIKESEG1" | uint32 version | uint32 shard | uint64 start
//	record  = uint32 payloadLen | uint32 crc32(payload) | payload
//	payload = uint8 recType | type-specific body
//
// All integers are little-endian. `start` is the stream index of the
// segment's first record within its shard, so a segment's name and
// header together place every record at an absolute per-shard offset —
// the coordinate system the snapshot manifest's Offsets use. Records
// are one event (or one world mutation) each: recovery granularity is
// a single record, and a torn tail (a crash mid-write) costs at most
// the unsynced suffix.
//
// Version 2 introduced typed records: alongside like events (recLike,
// the only record version 1 knew, framed without a type byte), the WAL
// journals world mutations — user and page creations, friendship
// edges, account-status and visibility updates — so a checkpoint can
// persist only the delta since the previous snapshot instead of a full
// world snapshot. Version-1 segments are still read (their records are
// all likes), but never appended to: a chain ending in a v1 segment
// continues in a fresh v2 segment.
const (
	segMagic     = "LIKESEG1"
	segVersion   = 2
	segVersionV1 = 1

	segHeaderSize    = 8 + 4 + 4 + 8
	eventPayloadSize = 8 + 8 + 8 + 1
	// recordSize is the framed size of a like record (the only
	// fixed-size guarantee tests rely on); world records vary.
	recordSize = 4 + 4 + 1 + eventPayloadSize
	// maxRecordPayload bounds a framed payload; a longer claimed length
	// is treated as a torn/garbage frame, not an allocation request.
	maxRecordPayload = 1 << 20
)

// recType tags a framed record's payload.
type recType uint8

const (
	recLike       recType = 1
	recUser       recType = 2
	recPage       recType = 3
	recFriend     recType = 4
	recStatus     recType = 5
	recFriendsVis recType = 6
)

// WorldKind enumerates the world-mutation records a durable store
// journals alongside likes.
type WorldKind uint8

// World mutation kinds.
const (
	WorldUser       WorldKind = iota + 1 // a user creation (the full record)
	WorldPage                            // a page creation
	WorldFriend                          // a friendship edge
	WorldStatus                          // an account-status update
	WorldFriendsVis                      // a friend-list visibility update
)

// WorldRecord is one journaled world mutation. Exactly the fields for
// its Kind are meaningful: User for WorldUser, Page for WorldPage,
// (A, B) for WorldFriend, (A, Status) for WorldStatus, (A, Visible)
// for WorldFriendsVis.
type WorldRecord struct {
	Kind    WorldKind
	User    User
	Page    Page
	A, B    UserID
	Status  AccountStatus
	Visible bool
}

// walRecord is one recovered journal record: a like event or a world
// mutation.
type walRecord struct {
	like  bool
	ev    LikeEvent
	world WorldRecord
}

// ErrCorruptSegment marks a segment whose body fails validation
// somewhere other than a repairable torn tail.
var ErrCorruptSegment = errors.New("socialnet: corrupt segment")

// frameStart reserves the 8-byte len+crc frame in buf; the caller
// appends the payload and calls frameFinish on the same region.
func frameStart(buf []byte) (out []byte, frameOff int) {
	frameOff = len(buf)
	return append(buf, 0, 0, 0, 0, 0, 0, 0, 0), frameOff
}

// frameFinish back-fills the length and CRC for the payload appended
// since frameStart.
func frameFinish(buf []byte, frameOff int) []byte {
	payload := buf[frameOff+8:]
	binary.LittleEndian.PutUint32(buf[frameOff:frameOff+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[frameOff+4:frameOff+8], crc32.ChecksumIEEE(payload))
	return buf
}

func appendU64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

// appendStr16 appends a uint16-length-prefixed string. Strings here
// are human-scale profile fields; anything longer is truncated rather
// than corrupting the frame.
func appendStr16(buf []byte, s string) []byte {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(s)))
	buf = append(buf, b[:]...)
	return append(buf, s...)
}

// encodeEvent appends the framed v2 record for a like event to buf.
func encodeEvent(buf []byte, ev LikeEvent) []byte {
	buf, off := frameStart(buf)
	buf = append(buf, byte(recLike))
	buf = appendLikeBody(buf, ev)
	return frameFinish(buf, off)
}

func appendLikeBody(buf []byte, ev LikeEvent) []byte {
	buf = appendU64(buf, uint64(ev.At.UnixNano()))
	buf = appendU64(buf, uint64(ev.User))
	buf = appendU64(buf, uint64(ev.Page))
	return append(buf, byte(ev.Source))
}

// encodeWorld appends the framed v2 record for a world mutation to buf.
func encodeWorld(buf []byte, rec WorldRecord) []byte {
	buf, off := frameStart(buf)
	switch rec.Kind {
	case WorldUser:
		u := rec.User
		buf = append(buf, byte(recUser))
		buf = appendU64(buf, uint64(u.ID))
		buf = appendU64(buf, uint64(u.CreatedAt.UnixNano()))
		buf = appendU64(buf, uint64(u.DeclaredFriends))
		var flags byte
		if u.FriendsPublic {
			flags |= 1
		}
		if u.Searchable {
			flags |= 2
		}
		buf = append(buf, byte(u.Gender), byte(u.Age), byte(u.Status), byte(u.Kind), flags)
		buf = appendStr16(buf, u.Country)
		buf = appendStr16(buf, u.HomeTown)
		buf = appendStr16(buf, u.CurrentTown)
		buf = appendStr16(buf, u.Operator)
	case WorldPage:
		p := rec.Page
		buf = append(buf, byte(recPage))
		buf = appendU64(buf, uint64(p.ID))
		buf = appendU64(buf, uint64(p.Owner))
		buf = appendU64(buf, uint64(p.CreatedAt.UnixNano()))
		var flags byte
		if p.Honeypot {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = appendStr16(buf, p.Name)
		buf = appendStr16(buf, p.Description)
		buf = appendStr16(buf, p.Category)
	case WorldFriend:
		buf = append(buf, byte(recFriend))
		buf = appendU64(buf, uint64(rec.A))
		buf = appendU64(buf, uint64(rec.B))
	case WorldStatus:
		buf = append(buf, byte(recStatus))
		buf = appendU64(buf, uint64(rec.A))
		buf = append(buf, byte(rec.Status))
	case WorldFriendsVis:
		buf = append(buf, byte(recFriendsVis))
		buf = appendU64(buf, uint64(rec.A))
		var vis byte
		if rec.Visible {
			vis = 1
		}
		buf = append(buf, vis)
	default:
		panic(fmt.Sprintf("socialnet: unknown WorldKind %d", rec.Kind))
	}
	return frameFinish(buf, off)
}

// byteReader walks a record payload; a short read flips ok and every
// later read returns zero values, so decoders can validate once at the
// end.
type byteReader struct {
	buf []byte
	ok  bool
}

func (r *byteReader) u64() uint64 {
	if len(r.buf) < 8 {
		r.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[:8])
	r.buf = r.buf[8:]
	return v
}

func (r *byteReader) u8() byte {
	if len(r.buf) < 1 {
		r.ok = false
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *byteReader) str16() string {
	if len(r.buf) < 2 {
		r.ok = false
		return ""
	}
	n := int(binary.LittleEndian.Uint16(r.buf[:2]))
	r.buf = r.buf[2:]
	if len(r.buf) < n {
		r.ok = false
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

// decodeLikeBody rebuilds an event from the fixed-size like body (the
// payload of a v1 record, or a v2 recLike payload after its type byte).
func decodeLikeBody(payload []byte) LikeEvent {
	return LikeEvent{
		At:     time.Unix(0, int64(binary.LittleEndian.Uint64(payload[0:8]))).UTC(),
		User:   UserID(binary.LittleEndian.Uint64(payload[8:16])),
		Page:   PageID(binary.LittleEndian.Uint64(payload[16:24])),
		Source: LikeSource(payload[24]),
	}
}

// decodeRecord parses one v2 payload (type byte included) into a
// walRecord. ok=false means the payload is malformed — the scanner
// treats that exactly like a CRC mismatch: a torn tail.
func decodeRecord(payload []byte) (walRecord, bool) {
	if len(payload) < 1 {
		return walRecord{}, false
	}
	typ, body := recType(payload[0]), payload[1:]
	switch typ {
	case recLike:
		if len(body) != eventPayloadSize {
			return walRecord{}, false
		}
		return walRecord{like: true, ev: decodeLikeBody(body)}, true
	case recUser:
		r := byteReader{buf: body, ok: true}
		var u User
		u.ID = UserID(r.u64())
		u.CreatedAt = time.Unix(0, int64(r.u64())).UTC()
		u.DeclaredFriends = int(r.u64())
		u.Gender = Gender(r.u8())
		u.Age = AgeBracket(r.u8())
		u.Status = AccountStatus(r.u8())
		u.Kind = AccountKind(r.u8())
		flags := r.u8()
		u.FriendsPublic = flags&1 != 0
		u.Searchable = flags&2 != 0
		u.Country = r.str16()
		u.HomeTown = r.str16()
		u.CurrentTown = r.str16()
		u.Operator = r.str16()
		if !r.ok || len(r.buf) != 0 {
			return walRecord{}, false
		}
		return walRecord{world: WorldRecord{Kind: WorldUser, User: u}}, true
	case recPage:
		r := byteReader{buf: body, ok: true}
		var p Page
		p.ID = PageID(r.u64())
		p.Owner = UserID(r.u64())
		p.CreatedAt = time.Unix(0, int64(r.u64())).UTC()
		flags := r.u8()
		p.Honeypot = flags&1 != 0
		p.Name = r.str16()
		p.Description = r.str16()
		p.Category = r.str16()
		if !r.ok || len(r.buf) != 0 {
			return walRecord{}, false
		}
		return walRecord{world: WorldRecord{Kind: WorldPage, Page: p}}, true
	case recFriend:
		if len(body) != 16 {
			return walRecord{}, false
		}
		return walRecord{world: WorldRecord{
			Kind: WorldFriend,
			A:    UserID(binary.LittleEndian.Uint64(body[0:8])),
			B:    UserID(binary.LittleEndian.Uint64(body[8:16])),
		}}, true
	case recStatus:
		if len(body) != 9 {
			return walRecord{}, false
		}
		return walRecord{world: WorldRecord{
			Kind:   WorldStatus,
			A:      UserID(binary.LittleEndian.Uint64(body[0:8])),
			Status: AccountStatus(body[8]),
		}}, true
	case recFriendsVis:
		if len(body) != 9 {
			return walRecord{}, false
		}
		return walRecord{world: WorldRecord{
			Kind:    WorldFriendsVis,
			A:       UserID(binary.LittleEndian.Uint64(body[0:8])),
			Visible: body[8] != 0,
		}}, true
	default:
		return walRecord{}, false
	}
}

// segmentHeader writes the fixed header for a new segment.
func segmentHeader(shard int, start uint64) []byte {
	buf := make([]byte, segHeaderSize)
	copy(buf[0:8], segMagic)
	binary.LittleEndian.PutUint32(buf[8:12], segVersion)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(shard))
	binary.LittleEndian.PutUint64(buf[16:24], start)
	return buf
}

// parseSegmentHeader validates the header and returns
// (version, shard, start). Both the current version and v1 (like-only
// records, no type byte) are accepted.
func parseSegmentHeader(buf []byte) (uint32, int, uint64, error) {
	if len(buf) < segHeaderSize {
		return 0, 0, 0, fmt.Errorf("%w: short header (%d bytes)", ErrCorruptSegment, len(buf))
	}
	if string(buf[0:8]) != segMagic {
		return 0, 0, 0, fmt.Errorf("%w: bad magic", ErrCorruptSegment)
	}
	v := binary.LittleEndian.Uint32(buf[8:12])
	if v != segVersion && v != segVersionV1 {
		return 0, 0, 0, fmt.Errorf("%w: version %d, want %d or %d", ErrCorruptSegment, v, segVersionV1, segVersion)
	}
	shard := int(binary.LittleEndian.Uint32(buf[12:16]))
	start := binary.LittleEndian.Uint64(buf[16:24])
	return v, shard, start, nil
}

// scanSegment reads every valid record from an open segment file and
// returns the decoded records plus validSize, the byte offset just past
// the last intact record. A short frame, short payload, CRC mismatch,
// or undecodable payload ends the scan — everything before it is
// trusted, everything from it on is the torn tail. The caller decides
// whether a tail is repairable (last segment of a shard) or fatal (an
// interior segment).
func scanSegment(f *os.File) (records []walRecord, validSize int64, version uint32, shard int, start uint64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, 0, 0, 0, err
	}
	header := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, 0, 0, 0, 0, fmt.Errorf("%w: %s: unreadable header", ErrCorruptSegment, f.Name())
	}
	version, shard, start, err = parseSegmentHeader(header)
	if err != nil {
		return nil, 0, 0, 0, 0, fmt.Errorf("%s: %w", f.Name(), err)
	}
	validSize = segHeaderSize
	var frame [8]byte
	payload := make([]byte, 0, 256)
	for {
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			return records, validSize, version, shard, start, nil // clean EOF or torn frame
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		if version == segVersionV1 {
			if n != eventPayloadSize {
				return records, validSize, version, shard, start, nil // garbage length: torn
			}
		} else if n == 0 || n > maxRecordPayload {
			return records, validSize, version, shard, start, nil // garbage length: torn
		}
		if cap(payload) < int(n) {
			payload = make([]byte, 0, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return records, validSize, version, shard, start, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(frame[4:8]) {
			return records, validSize, version, shard, start, nil // corrupt record: torn
		}
		var rec walRecord
		if version == segVersionV1 {
			rec = walRecord{like: true, ev: decodeLikeBody(payload)}
		} else {
			var ok bool
			if rec, ok = decodeRecord(payload); !ok {
				return records, validSize, version, shard, start, nil // undecodable record: torn
			}
		}
		records = append(records, rec)
		validSize += int64(8 + n)
	}
}

// segmentHeaderReadable reports whether the file begins with a valid
// segment header. It distinguishes a torn segment creation (header
// never reached the disk — repairable by dropping the file) from a
// readable segment whose body may still need tail repair.
func segmentHeaderReadable(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	header := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, header); err != nil {
		return false, nil // short file: header never landed
	}
	if _, _, _, err := parseSegmentHeader(header); err != nil {
		return false, nil // garbage header: same crash window
	}
	return true, nil
}

// segmentFileName places a segment in its directory: shard index and
// the per-shard stream index of its first event.
func segmentFileName(shard int, start uint64) string {
	return fmt.Sprintf("s%04d-%016d.seg", shard, start)
}

// segmentRef locates one segment file on disk.
type segmentRef struct {
	path  string
	shard int
	start uint64
}

// listSegments finds every segment file under dir, grouped by shard and
// sorted by start offset within each shard.
func listSegments(dir string, nShards int) ([][]segmentRef, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byShard := make([][]segmentRef, nShards)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".seg") || !strings.HasPrefix(name, "s") {
			continue
		}
		base := strings.TrimSuffix(strings.TrimPrefix(name, "s"), ".seg")
		parts := strings.SplitN(base, "-", 2)
		if len(parts) != 2 {
			continue
		}
		shard, err1 := strconv.Atoi(parts[0])
		start, err2 := strconv.ParseUint(parts[1], 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		if shard < 0 || shard >= nShards {
			return nil, fmt.Errorf("%w: %s names shard %d of %d", ErrCorruptSegment, name, shard, nShards)
		}
		byShard[shard] = append(byShard[shard], segmentRef{
			path:  filepath.Join(dir, name),
			shard: shard,
			start: start,
		})
	}
	for _, segs := range byShard {
		sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	}
	return byShard, nil
}
