package socialnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Segment files are the journal's on-disk form: one directory holds one
// sharded stream of like events, each shard a chain of append-only
// segment files. A segment is a fixed header followed by framed
// records:
//
//	header  = magic "LIKESEG1" | uint32 version | uint32 shard | uint64 start
//	record  = uint32 payloadLen | uint32 crc32(payload) | payload
//	payload = int64 unixNanos | int64 user | int64 page | uint8 source
//
// All integers are little-endian. `start` is the stream index of the
// segment's first event within its shard, so a segment's name and
// header together place every record at an absolute per-shard offset —
// the cursor coordinate system Journal.NewReader established and the
// snapshot manifest reuses. Records are one event each: recovery
// granularity is a single like, and a torn tail (a crash mid-write)
// costs at most the unsynced suffix.
const (
	segMagic   = "LIKESEG1"
	segVersion = 1

	segHeaderSize    = 8 + 4 + 4 + 8
	eventPayloadSize = 8 + 8 + 8 + 1
	recordSize       = 4 + 4 + eventPayloadSize
)

// ErrCorruptSegment marks a segment whose body fails validation
// somewhere other than a repairable torn tail.
var ErrCorruptSegment = errors.New("socialnet: corrupt segment")

// encodeEvent appends the framed record for ev to buf and returns the
// extended slice.
func encodeEvent(buf []byte, ev LikeEvent) []byte {
	var payload [eventPayloadSize]byte
	binary.LittleEndian.PutUint64(payload[0:8], uint64(ev.At.UnixNano()))
	binary.LittleEndian.PutUint64(payload[8:16], uint64(ev.User))
	binary.LittleEndian.PutUint64(payload[16:24], uint64(ev.Page))
	payload[24] = byte(ev.Source)

	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(eventPayloadSize))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload[:]))
	buf = append(buf, frame[:]...)
	return append(buf, payload[:]...)
}

// decodeEventPayload rebuilds an event from a record payload.
func decodeEventPayload(payload []byte) LikeEvent {
	return LikeEvent{
		At:     time.Unix(0, int64(binary.LittleEndian.Uint64(payload[0:8]))).UTC(),
		User:   UserID(binary.LittleEndian.Uint64(payload[8:16])),
		Page:   PageID(binary.LittleEndian.Uint64(payload[16:24])),
		Source: LikeSource(payload[24]),
	}
}

// segmentHeader writes the fixed header for a new segment.
func segmentHeader(shard int, start uint64) []byte {
	buf := make([]byte, segHeaderSize)
	copy(buf[0:8], segMagic)
	binary.LittleEndian.PutUint32(buf[8:12], segVersion)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(shard))
	binary.LittleEndian.PutUint64(buf[16:24], start)
	return buf
}

// parseSegmentHeader validates the header and returns (shard, start).
func parseSegmentHeader(buf []byte) (int, uint64, error) {
	if len(buf) < segHeaderSize {
		return 0, 0, fmt.Errorf("%w: short header (%d bytes)", ErrCorruptSegment, len(buf))
	}
	if string(buf[0:8]) != segMagic {
		return 0, 0, fmt.Errorf("%w: bad magic", ErrCorruptSegment)
	}
	if v := binary.LittleEndian.Uint32(buf[8:12]); v != segVersion {
		return 0, 0, fmt.Errorf("%w: version %d, want %d", ErrCorruptSegment, v, segVersion)
	}
	shard := int(binary.LittleEndian.Uint32(buf[12:16]))
	start := binary.LittleEndian.Uint64(buf[16:24])
	return shard, start, nil
}

// scanSegment reads every valid record from an open segment file and
// returns the decoded events plus validSize, the byte offset just past
// the last intact record. A short frame, short payload, or CRC
// mismatch ends the scan — everything before it is trusted, everything
// from it on is the torn tail. The caller decides whether a tail is
// repairable (last segment of a shard) or fatal (an interior segment).
func scanSegment(f *os.File) (events []LikeEvent, validSize int64, shard int, start uint64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, 0, 0, err
	}
	header := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, 0, 0, 0, fmt.Errorf("%w: %s: unreadable header", ErrCorruptSegment, f.Name())
	}
	shard, start, err = parseSegmentHeader(header)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("%s: %w", f.Name(), err)
	}
	validSize = segHeaderSize
	var frame [8]byte
	payload := make([]byte, eventPayloadSize)
	for {
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			return events, validSize, shard, start, nil // clean EOF or torn frame
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		if n != eventPayloadSize {
			return events, validSize, shard, start, nil // garbage length: torn
		}
		if _, err := io.ReadFull(f, payload); err != nil {
			return events, validSize, shard, start, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(frame[4:8]) {
			return events, validSize, shard, start, nil // corrupt record: torn
		}
		events = append(events, decodeEventPayload(payload))
		validSize += recordSize
	}
}

// segmentHeaderReadable reports whether the file begins with a valid
// segment header. It distinguishes a torn segment creation (header
// never reached the disk — repairable by dropping the file) from a
// readable segment whose body may still need tail repair.
func segmentHeaderReadable(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	header := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, header); err != nil {
		return false, nil // short file: header never landed
	}
	if _, _, err := parseSegmentHeader(header); err != nil {
		return false, nil // garbage header: same crash window
	}
	return true, nil
}

// segmentFileName places a segment in its directory: shard index and
// the per-shard stream index of its first event.
func segmentFileName(shard int, start uint64) string {
	return fmt.Sprintf("s%04d-%016d.seg", shard, start)
}

// segmentRef locates one segment file on disk.
type segmentRef struct {
	path  string
	shard int
	start uint64
}

// listSegments finds every segment file under dir, grouped by shard and
// sorted by start offset within each shard.
func listSegments(dir string, nShards int) ([][]segmentRef, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byShard := make([][]segmentRef, nShards)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".seg") || !strings.HasPrefix(name, "s") {
			continue
		}
		base := strings.TrimSuffix(strings.TrimPrefix(name, "s"), ".seg")
		parts := strings.SplitN(base, "-", 2)
		if len(parts) != 2 {
			continue
		}
		shard, err1 := strconv.Atoi(parts[0])
		start, err2 := strconv.ParseUint(parts[1], 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		if shard < 0 || shard >= nShards {
			return nil, fmt.Errorf("%w: %s names shard %d of %d", ErrCorruptSegment, name, shard, nShards)
		}
		byShard[shard] = append(byShard[shard], segmentRef{
			path:  filepath.Join(dir, name),
			shard: shard,
			start: start,
		})
	}
	for _, segs := range byShard {
		sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	}
	return byShard, nil
}
