package socialnet

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"
)

// noSync disables the background fsync ticker in tests: Sync/Close are
// exercised explicitly where the test wants durability boundaries.
var noSync = WALOptions{SyncInterval: -1}

// durableWorld builds a durable store in dir with nUsers users and
// nPages pages (users before pages, so IDs are 1..nUsers for users).
func durableWorld(t testing.TB, dir string, nUsers, nPages int, opts WALOptions) (*Store, []UserID, []PageID) {
	t.Helper()
	st := NewShardedStore(4)
	var users []UserID
	for i := 0; i < nUsers; i++ {
		users = append(users, st.AddUser(User{Country: "USA", Searchable: true}))
	}
	var pages []PageID
	for i := 0; i < nPages; i++ {
		pid, err := st.AddPage(Page{Name: fmt.Sprintf("page-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, pid)
	}
	if err := st.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	dst, _, err := OpenDurable(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return dst, users, pages
}

func at(sec int) time.Time {
	return time.Date(2014, 3, 12, 0, 0, sec, 0, time.UTC)
}

func TestDurableReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, users, pages := durableWorld(t, dir, 10, 3, noSync)
	want := 0
	for i, u := range users {
		for j, p := range pages {
			if (i+j)%2 == 0 {
				if err := st.AddLike(u, p, at(i*10+j)); err != nil {
					t.Fatal(err)
				}
				want++
			}
		}
	}
	// A bulk history import (SourceHistory) must survive the restart
	// too; user 0 likes only even-index pages, so pages[1] is free.
	if err := st.AddHistory(users[0], []Like{{Page: pages[1], At: at(999)}}); err != nil {
		t.Fatal(err)
	}
	want++
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, stats, err := OpenDurable(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if stats.DroppedEvents != 0 || stats.DupEvents != 0 {
		t.Fatalf("unexpected recovery stats: %+v", stats)
	}
	if got := re.Journal().Len(); got != want {
		t.Fatalf("journal after reopen: %d events, want %d", got, want)
	}
	a := st.Journal().EventsCanonical(1)
	b := re.Journal().EventsCanonical(1)
	if len(a) != len(b) {
		t.Fatalf("canonical lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("canonical event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for _, p := range pages {
		if st.LikeCountOfPage(p) != re.LikeCountOfPage(p) {
			t.Fatalf("page %d like count differs after reopen", p)
		}
	}
}

func TestDurableReopenAcceptsNewWrites(t *testing.T) {
	dir := t.TempDir()
	st, users, pages := durableWorld(t, dir, 4, 2, noSync)
	if err := st.AddLike(users[0], pages[0], at(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, _, err := OpenDurable(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.AddLike(users[1], pages[0], at(2)); err != nil {
		t.Fatal(err)
	}
	if err := re.AddLike(users[0], pages[0], at(3)); err == nil {
		t.Fatal("duplicate like accepted after reopen — likeSet not rebuilt")
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, _, err := OpenDurable(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := re2.LikeCountOfPage(pages[0]); got != 2 {
		t.Fatalf("like count after second reopen = %d, want 2", got)
	}
}

// TestCheckpointCompacts: after a checkpoint covering all events, a
// rotated (non-active) segment must be gone and reopen must still see
// every event.
func TestCheckpointCompacts(t *testing.T) {
	dir := t.TempDir()
	// Rotate every ~6 records (header 24 + 6*33 = 222 bytes).
	opts := WALOptions{SyncInterval: -1, SegmentMaxBytes: 220}
	st, users, pages := durableWorld(t, dir, 1, 40, opts)
	u := users[0]
	for i, p := range pages {
		if err := st.AddLike(u, p, at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	segsBefore := countSegments(t, dir)
	if segsBefore < 3 {
		t.Fatalf("expected several segments before compaction, got %d", segsBefore)
	}
	if err := st.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	if segsAfter := countSegments(t, dir); segsAfter >= segsBefore {
		t.Fatalf("compaction removed nothing: %d -> %d segments", segsBefore, segsAfter)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, stats, err := OpenDurable(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Journal().Len(); got != len(pages) {
		t.Fatalf("after compaction+reopen: %d events, want %d (stats %+v)", got, len(pages), stats)
	}
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" {
			n++
		}
	}
	return n
}

// TestTornTailRecoveryEveryByte is the torn-write property test: a WAL
// whose final record is truncated at EVERY byte boundary — or corrupted
// at every byte offset — must reopen with exactly the prefix events,
// and the repaired log must accept new appends.
func TestTornTailRecoveryEveryByte(t *testing.T) {
	master := t.TempDir()
	const likes = 7
	// One user => one journal shard => one segment file.
	st, users, pages := durableWorld(t, master, 1, likes, noSync)
	u := users[0]
	for i, p := range pages {
		if err := st.AddLike(u, p, at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, segSize := onlySegment(t, master)
	wantFull := int64(segHeaderSize + likes*recordSize)
	if segSize != wantFull {
		t.Fatalf("segment size %d, want %d", segSize, wantFull)
	}
	lastRecordStart := segSize - recordSize

	check := func(t *testing.T, dir string, wantEvents int) {
		re, stats, err := OpenDurable(dir, noSync)
		if err != nil {
			t.Fatalf("open after damage: %v", err)
		}
		if got := re.Journal().Len(); got != wantEvents {
			t.Fatalf("recovered %d events, want %d (stats %+v)", got, wantEvents, stats)
		}
		// The repaired WAL must keep working: append and re-reopen.
		if err := re.AddLike(u, pages[len(pages)-1], at(100)); err != nil && wantEvents < likes {
			// pages[last] may or may not still be liked depending on the cut;
			// use a page index that is always free after damage instead.
			t.Fatalf("append after repair: %v", err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		re2, _, err := OpenDurable(dir, noSync)
		if err != nil {
			t.Fatalf("second reopen after repair: %v", err)
		}
		re2.Close()
	}

	for cut := lastRecordStart; cut < segSize; cut++ {
		t.Run(fmt.Sprintf("truncate@%d", cut), func(t *testing.T) {
			dir := cloneDir(t, master)
			p, _ := onlySegment(t, dir)
			if err := os.Truncate(p, cut); err != nil {
				t.Fatal(err)
			}
			check(t, dir, likes-1)
		})
	}
	for off := lastRecordStart; off < segSize; off++ {
		t.Run(fmt.Sprintf("corrupt@%d", off), func(t *testing.T) {
			dir := cloneDir(t, master)
			p, _ := onlySegment(t, dir)
			flipByte(t, p, off)
			check(t, dir, likes-1)
		})
	}
	// Control: an undamaged clone recovers everything.
	t.Run("intact", func(t *testing.T) {
		check(t, cloneDir(t, master), likes)
	})
}

// TestInteriorCorruptionIsFatal: damage before the final record cannot
// be repaired by tail truncation without losing acknowledged records
// that follow it — open must refuse rather than silently drop them.
// (Framing resynchronization is impossible: record boundaries after a
// corrupt length prefix cannot be trusted.)
func TestInteriorCorruptionRecoversPrefixOnly(t *testing.T) {
	master := t.TempDir()
	const likes = 5
	st, users, pages := durableWorld(t, master, 1, likes, noSync)
	for i, p := range pages {
		if err := st.AddLike(users[0], p, at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	dir := cloneDir(t, master)
	p, _ := onlySegment(t, dir)
	// Corrupt record 2 (0-indexed) of 5: recovery keeps records 0-1.
	flipByte(t, p, int64(segHeaderSize+2*recordSize+10))
	re, _, err := OpenDurable(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Journal().Len(); got != 2 {
		t.Fatalf("recovered %d events, want 2 (prefix before corruption)", got)
	}
}

func onlySegment(t *testing.T, dir string) (string, int64) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var path string
	var size int64
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" {
			info, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			if info.Size() > segHeaderSize { // skip empty segments of other shards
				if path != "" {
					t.Fatalf("expected one non-empty segment, found %s and %s", path, e.Name())
				}
				path = filepath.Join(dir, e.Name())
				size = info.Size()
			}
		}
	}
	if path == "" {
		t.Fatal("no non-empty segment found")
	}
	return path, size
}

func cloneDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAppendsDuringCheckpoint is the -race exercise: many
// goroutines appending likes while checkpoints run concurrently, then a
// reopen must see every acknowledged like exactly once.
func TestConcurrentAppendsDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	const (
		writers = 8
		perW    = 200
	)
	st, _, _ := durableWorld(t, dir, writers, writers*perW, noSync)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			u := UserID(w + 1)
			for i := 0; i < perW; i++ {
				p := PageID(w*perW + i + 1)
				if err := st.AddLike(u, p, at(w*perW+i)); err != nil {
					t.Errorf("AddLike(%d,%d): %v", u, p, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	checkpoints := 0
	for {
		if err := st.Checkpoint(dir); err != nil {
			t.Errorf("checkpoint: %v", err)
			break
		}
		checkpoints++
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	<-done
	if t.Failed() {
		return
	}
	// One more checkpoint after quiescence, then reopen and verify.
	if err := st.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, stats, err := OpenDurable(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if stats.DroppedEvents != 0 {
		t.Fatalf("recovery dropped %d events", stats.DroppedEvents)
	}
	want := writers * perW
	if got := re.Journal().Len(); got != want {
		t.Fatalf("reopened journal has %d events, want %d (after %d live checkpoints, stats %+v)",
			got, want, checkpoints, stats)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i++ {
			if !re.Likes(UserID(w+1), PageID(w*perW+i+1)) {
				t.Fatalf("like (%d,%d) lost across checkpointed restart", w+1, w*perW+i+1)
			}
		}
	}
}

// TestCrashBeforeSyncLosesOnlyUnsyncedTail: without a Sync/Close, a
// copy of the directory (simulating a crash that never flushed) must
// still open cleanly — losing at most the buffered suffix, never
// corrupting the world.
func TestCrashBeforeSyncLosesOnlyUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	st, users, pages := durableWorld(t, dir, 1, 20, WALOptions{SyncEvery: 7, SyncInterval: -1})
	for i, p := range pages {
		if err := st.AddLike(users[0], p, at(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash: copy what reached the filesystem, no Close.
	crash := cloneDir(t, dir)
	re, _, err := OpenDurable(crash, noSync)
	if err != nil {
		t.Fatalf("open after simulated crash: %v", err)
	}
	defer re.Close()
	got := re.Journal().Len()
	// 20 appends, SyncEvery=7 => syncs fired after appends 7 and 14, so
	// at least 14 events reached the filesystem before the crash (the
	// OS may have more — bufio flushes on fill too — never fewer).
	if got < 14 || got > 20 {
		t.Fatalf("recovered %d events; want within [14,20]", got)
	}
	events := re.Journal().EventsCanonical(1)
	for i, ev := range events {
		if ev.Page != pages[i] {
			t.Fatalf("recovered events are not the prefix: event %d is page %d, want %d", i, ev.Page, pages[i])
		}
	}
}

// TestTornSegmentCreationIsRepaired: a crash between segment rotation
// and the first flush leaves the newest segment file empty (or with a
// garbage header) — nothing in it ever reached the disk. Open must
// drop it and resume, not fail forever.
func TestTornSegmentCreationIsRepaired(t *testing.T) {
	master := t.TempDir()
	const likes = 4
	st, users, pages := durableWorld(t, master, 1, likes+1, noSync)
	for i := 0; i < likes; i++ {
		if err := st.AddLike(users[0], pages[i], at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segPath, _ := onlySegment(t, master)
	shard, err := strconv.Atoi(filepath.Base(segPath)[1:5])
	if err != nil {
		t.Fatal(err)
	}
	for _, tornHeader := range [][]byte{nil, []byte("garbage!!!")} {
		dir := cloneDir(t, master)
		torn := filepath.Join(dir, segmentFileName(shard, likes))
		if err := os.WriteFile(torn, tornHeader, 0o644); err != nil {
			t.Fatal(err)
		}
		re, _, err := OpenDurable(dir, noSync)
		if err != nil {
			t.Fatalf("open with torn segment creation (%d header bytes): %v", len(tornHeader), err)
		}
		if got := re.Journal().Len(); got != likes {
			t.Fatalf("recovered %d events, want %d", got, likes)
		}
		if _, err := os.Stat(torn); !os.IsNotExist(err) {
			t.Fatalf("torn segment not removed: %v", err)
		}
		// The shard must accept appends again and survive another cycle.
		if err := re.AddLike(users[0], pages[likes], at(100)); err != nil {
			t.Fatal(err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		re2, _, err := OpenDurable(dir, noSync)
		if err != nil {
			t.Fatal(err)
		}
		if got := re2.Journal().Len(); got != likes+1 {
			t.Fatalf("after repair+append: %d events, want %d", got, likes+1)
		}
		re2.Close()
	}
}

// TestManifestAheadOfSegments: if a crash leaves the segment chain
// ending below the manifest's offsets (the checkpoint synced the
// snapshot but the WAL flush never landed — all such events are inside
// the snapshot by the offsets-before-snapshot invariant), recovery must
// resume appending AT the offset, never below it: an append below the
// claimed range would be skipped as "covered" by the next recovery.
func TestManifestAheadOfSegments(t *testing.T) {
	dir := t.TempDir()
	// extra is sized so the second checkpoint's delta crosses the
	// incremental threshold and a FULL snapshot (claiming offsets
	// k+extra) is written — the scenario needs a manifest whose
	// snapshot covers records the chain then loses.
	const k, extra = 6, 7
	st, users, pages := durableWorld(t, dir, 1, k+extra+1, noSync)
	for i := 0; i < k; i++ {
		if err := st.AddLike(users[0], pages[i], at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < extra; i++ {
		if err := st.AddLike(users[0], pages[k+i], at(k+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Second checkpoint claims offsets k+extra; snapshot covers all.
	if err := st.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn WAL flush: chop the last `extra` records off the
	// shard's segment so the chain ends below the manifest offsets.
	segPath, segSize := onlySegment(t, dir)
	if err := os.Truncate(segPath, segSize-int64(extra*recordSize)); err != nil {
		t.Fatal(err)
	}

	re, stats, err := OpenDurable(dir, noSync)
	if err != nil {
		t.Fatalf("open with manifest ahead of segments: %v", err)
	}
	if got := re.Journal().Len(); got != k+extra {
		t.Fatalf("recovered %d events, want %d (all in snapshot; stats %+v)", got, k+extra, stats)
	}
	// New appends must land at/after the claimed offsets and survive.
	if err := re.AddLike(users[0], pages[k+extra], at(100)); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, _, err := OpenDurable(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := re2.Journal().Len(); got != k+extra+1 {
		t.Fatalf("after append+reopen: %d events, want %d — the post-crash append was skipped as snapshot-covered", got, k+extra+1)
	}
	if !re2.Likes(users[0], pages[k+extra]) {
		t.Fatal("post-crash like lost across reopen")
	}
}

// TestWorldMutationsSurviveCrash: with world mutations journaled
// alongside likes, everything done to a durable store AFTER it was
// opened — user and page creations, friendships, likes, terminations,
// visibility flips — must survive a crash with no checkpoint at all.
// This is the property that removed the old "world must precede the
// first checkpoint" caveat. Group commit (SyncEvery: 1) means every
// acknowledged mutation is already on disk when the crash hits.
func TestWorldMutationsSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	st, users, _ := durableWorld(t, dir, 2, 1, WALOptions{SyncEvery: 1, SyncInterval: -1})
	defer st.Close()

	u1 := st.AddUser(User{Country: "UK", Searchable: true, Gender: GenderFemale})
	u2 := st.AddUser(User{Country: "IT"})
	pid, err := st.AddPage(Page{Name: "campaign", Honeypot: true, Owner: users[0]})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Friend(u1, u2); err != nil {
		t.Fatal(err)
	}
	if err := st.Friend(u1, users[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.AddLike(u1, pid, at(5)); err != nil {
		t.Fatal(err)
	}
	if err := st.Terminate(u2); err != nil {
		t.Fatal(err)
	}
	if err := st.SetFriendsPublic(u1, true); err != nil {
		t.Fatal(err)
	}

	crash := cloneDir(t, dir) // no Sync, no Close, no Checkpoint
	re, stats, err := OpenDurable(crash, noSync)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()

	ru1, err := re.User(u1)
	if err != nil {
		t.Fatalf("user created after open lost in crash: %v", err)
	}
	if ru1.Country != "UK" || ru1.Gender != GenderFemale || !ru1.Searchable {
		t.Fatalf("user attributes mangled in replay: %+v", ru1)
	}
	if !ru1.FriendsPublic {
		t.Fatal("visibility flip lost in crash")
	}
	ru2, err := re.User(u2)
	if err != nil {
		t.Fatal(err)
	}
	if ru2.Status != StatusTerminated {
		t.Fatal("termination lost in crash")
	}
	pg, err := re.Page(pid)
	if err != nil {
		t.Fatalf("page created after open lost in crash: %v", err)
	}
	if !pg.Honeypot || pg.Name != "campaign" || pg.Owner != users[0] {
		t.Fatalf("page attributes mangled in replay: %+v", pg)
	}
	if !re.AreFriends(u1, u2) || !re.AreFriends(u1, users[0]) {
		t.Fatal("friendships lost in crash")
	}
	if !re.Likes(u1, pid) {
		t.Fatal("like lost in crash")
	}
	found := false
	for _, id := range re.Directory() {
		if id == u1 {
			found = true
		}
	}
	if !found {
		t.Fatal("searchable user missing from rebuilt directory")
	}
	if stats.TailWorld < 6 {
		t.Fatalf("TailWorld = %d, want >= 6 (2 users, 1 page, 2 edges, 1 status, 1 visibility)", stats.TailWorld)
	}
	if stats.DroppedEvents != 0 {
		t.Fatalf("DroppedEvents = %d, want 0", stats.DroppedEvents)
	}
	// The ID counters must resume past the replayed entities: a fresh
	// AddUser on the recovered store gets the next unused ID, not a
	// collision with u2.
	nu := re.AddUser(User{})
	if nu != u2+1 {
		t.Fatalf("post-recovery AddUser assigned %d, want %d", nu, u2+1)
	}
	if ru2b, err := re.User(u2); err != nil || ru2b.Status != StatusTerminated {
		t.Fatal("new user clobbered a replayed one")
	}
}

// TestIncrementalCheckpointSkipsSnapshotRewrite: a checkpoint whose
// delta is small relative to the world must NOT rewrite the snapshot —
// it fsyncs the WAL tail and republishes the manifest against the same
// snapshot and offsets — while a large delta escalates to a full
// snapshot that resets the tail.
func TestIncrementalCheckpointSkipsSnapshotRewrite(t *testing.T) {
	dir := t.TempDir()
	st, users, pages := durableWorld(t, dir, 40, 40, noSync)
	m1, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if err := st.AddLike(users[i], pages[i], at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	m2, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Seq != m1.Seq+1 {
		t.Fatalf("incremental checkpoint seq = %d, want %d", m2.Seq, m1.Seq+1)
	}
	if m2.Snapshot != m1.Snapshot {
		t.Fatalf("small-delta checkpoint rewrote the snapshot: %s -> %s", m1.Snapshot, m2.Snapshot)
	}
	if !reflect.DeepEqual(m2.Offsets, m1.Offsets) {
		t.Fatalf("incremental checkpoint moved offsets %v -> %v; they describe snapshot coverage, which did not move", m1.Offsets, m2.Offsets)
	}

	// The checkpoint still made the delta durable: a crash image taken
	// now must recover all three likes from the tail.
	crash := cloneDir(t, dir)
	re, stats, err := OpenDurable(crash, noSync)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TailEvents != 3 {
		t.Fatalf("TailEvents = %d, want 3 (the incremental delta)", stats.TailEvents)
	}
	for i := 0; i < 3; i++ {
		if !re.Likes(users[i], pages[i]) {
			t.Fatalf("like %d lost after incremental checkpoint + crash", i)
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// A large delta (comparable to the world) escalates to a full
	// snapshot: fresh snapshot file, offsets at the new high-water mark.
	for i := 0; i < 40; i++ {
		if err := st.AddLike(users[i], pages[(i+5)%40], at(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	m3, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Snapshot == m2.Snapshot {
		t.Fatal("large-delta checkpoint should have written a fresh snapshot")
	}
	var covered uint64
	for _, o := range m3.Offsets {
		covered += o
	}
	if covered != 43 {
		t.Fatalf("full checkpoint covers %d records, want 43", covered)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re2, stats2, err := OpenDurable(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := re2.Journal().Len(); got != 43 {
		t.Fatalf("reopened journal has %d events, want 43", got)
	}
	if stats2.TailEvents != 0 {
		t.Fatalf("TailEvents = %d after full checkpoint, want 0 (all snapshot-covered)", stats2.TailEvents)
	}
}
