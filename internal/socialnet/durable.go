package socialnet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// A durable store directory holds three kinds of files:
//
//	manifest.json        — points at the current snapshot and records the
//	                       per-shard WAL offsets it covers
//	snapshot-<seq>.gob   — a full world snapshot (users, pages, friends,
//	                       every like), the gob form WriteSnapshot emits
//	s<shard>-<start>.seg — WAL segments (see segment.go)
//
// Recovery is snapshot + tail-replay: OpenDurable rebuilds the world
// from the manifest's snapshot, then replays only the WAL records at or
// beyond the manifest offsets — likes (deduplicated on the journal's
// global (user, page) uniqueness invariant) and world mutations (user
// and page creations, friendships, status/visibility updates), so the
// tail alone reconstructs everything since the snapshot. Checkpoint
// moves the snapshot forward and compacts the segments it covers —
// or, when the tail is small relative to the world, just fsyncs the
// tail and republishes the manifest (an incremental checkpoint) — so
// neither recovery time nor disk usage grows with history, and
// checkpoint cost tracks the delta, not the world.
const manifestFile = "manifest.json"

// manifest is the durable directory's root pointer. It is replaced
// atomically (tmp + rename), so a crash mid-checkpoint leaves the
// previous snapshot + its WAL tail fully intact.
type manifest struct {
	Version int
	Seq     int64 // checkpoint sequence, monotonically increasing
	Shards  int   // journal shard count (snapshot shape)
	// WALShards is the number of WAL log files (segment chains). It is
	// decoupled from Shards: the journal keeps many lock stripes for
	// in-memory concurrency, while the WAL keeps FEW files so a group
	// commit coalesces concurrent appends into a handful of fsyncs
	// instead of one per dirty stripe. Zero means a legacy manifest
	// written when the counts were fused: fall back to Shards.
	WALShards int `json:",omitempty"`
	Snapshot  string
	// Offsets are the per-WAL-file stream offsets captured immediately
	// BEFORE the snapshot was taken. Invariant: every WAL record below
	// Offsets[i] is contained in the snapshot (a record reaches the WAL
	// only after its in-memory commit, and the snapshot is a superset
	// of all in-memory commits at capture time). Records at or above
	// the offsets may or may not be in the snapshot; replay dedupes
	// likes on (user, page) and world records on entity existence. An
	// incremental checkpoint republishes the PREVIOUS offsets untouched
	// — they still describe what the (unchanged) snapshot covers.
	Offsets []uint64
}

// walShardCount is the effective WAL file count for a manifest.
func (m *manifest) walShardCount() int {
	if m.WALShards > 0 {
		return m.WALShards
	}
	return m.Shards
}

// DefaultWALShards is the WAL file count for new durable directories.
// One log file is the classic group-commit shape: every concurrent
// append lands in the same segment chain, so a commit pass is exactly
// one flush+fsync no matter how many appenders are waiting. Buffered
// record writes are memcpys and never the bottleneck; fsyncs are.
const DefaultWALShards = 1

const manifestVersion = 1

// ErrNoDurableState reports a directory with no manifest — nothing to
// reopen. Callers typically build a fresh world and Checkpoint it.
var ErrNoDurableState = errors.New("socialnet: no durable state in directory")

// HasDurableState reports whether dir holds a reopenable world.
func HasDurableState(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestFile))
	return err == nil
}

func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoDurableState, dir)
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("socialnet: corrupt manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("socialnet: manifest version %d, want %d", m.Version, manifestVersion)
	}
	if m.Shards < 1 || len(m.Offsets) != m.walShardCount() {
		return nil, fmt.Errorf("socialnet: manifest shards %d/%d / offsets %d inconsistent", m.Shards, m.walShardCount(), len(m.Offsets))
	}
	if w := m.walShardCount(); w&(w-1) != 0 {
		return nil, fmt.Errorf("socialnet: manifest WAL shard count %d not a power of two", w)
	}
	return &m, nil
}

// WriteFileDurable writes data to path via a temp file with fsync,
// then renames it into place and fsyncs the directory, so a crash at
// any instant leaves either the old file or the new one — never a torn
// mix. Every state file in the durable stack (manifest, monitor
// cursors, study run state, crawl checkpoints) goes through this.
func WriteFileDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// samePath reports whether two path spellings name the same directory.
// A raw string comparison would let "./data" vs "data" misclassify a
// checkpoint into the store's own WAL directory as an export — writing
// a zero-offset manifest next to live segments and skipping compaction.
func samePath(a, b string) bool {
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	if errA != nil || errB != nil {
		return filepath.Clean(a) == filepath.Clean(b)
	}
	return aa == bb
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Durable reports whether the store streams its journal to disk.
func (s *Store) Durable() bool { return s.wal != nil }

// DurabilityErr returns the disk backend's sticky error: non-nil once
// any WAL write or fsync has failed, meaning acknowledged likes since
// then may not survive a crash. Write surfaces that promise durability
// (the API's like injection) check it after acknowledging into memory;
// nil for in-memory stores.
func (s *Store) DurabilityErr() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Err()
}

// Sync forces every acknowledged like to stable storage, narrowing the
// batched-fsync loss window to zero. A no-op for in-memory stores.
func (s *Store) Sync() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// Close flushes and closes the disk backend. The store stays readable
// (it is an in-memory structure) but must not be written afterwards.
// A no-op for in-memory stores.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.journal.SetBackend(nil)
	s.wal = nil
	return err
}

// incrementalTailFactor picks the checkpoint mode: when the WAL tail
// since the published snapshot is more than this factor smaller than
// the world, rewriting the full snapshot buys little — the checkpoint
// fsyncs the tail and republishes the manifest instead (O(delta)).
// Otherwise a full snapshot rewrite + compaction (O(world)) resets the
// tail so recovery replay stays short.
const incrementalTailFactor = 4

// Checkpoint persists the store's current state into dir. When dir is
// the store's own WAL directory and the tail since the published
// snapshot is small (see incrementalTailFactor), the checkpoint is
// INCREMENTAL: the WAL — which journals world mutations alongside
// likes, so its tail alone replays everything since the snapshot — is
// fsynced and the manifest republished pointing at the existing
// snapshot, costing O(delta) instead of O(world). Otherwise it writes
// a full snapshot plus manifest and compacts the segments the snapshot
// covers. Either way the operation is safe (and race-free) under
// concurrent writers: the WAL offsets are captured before the
// snapshot, so a write landing mid-checkpoint is either inside the
// snapshot, inside the surviving WAL tail, or both (recovery dedupes),
// never lost. After a successful Checkpoint, OpenDurable(dir) recovers
// by loading the manifest snapshot and replaying only the tail.
//
// Checkpoint also works on a plain in-memory store: it then produces a
// durable seed directory (snapshot + zero offsets, no segments) that
// OpenDurable turns into a live durable store — the handoff path for
// "build the world fast in memory, then persist it". (With world
// mutations journaled, the seed snapshot is a fast-path, not a
// requirement: a durable store created empty and grown live recovers
// entirely from its WAL.)
func (s *Store) Checkpoint(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	shards := s.journal.NumShards()
	// Non-own checkpoints seed a fresh durable directory with no
	// segments: zero offsets sized for the default WAL file count.
	walShards := DefaultWALShards
	offsets := make([]uint64, walShards)
	own := s.wal != nil && samePath(s.wal.Dir(), dir)
	if own {
		offsets = s.wal.Offsets() // capture BEFORE the snapshot: see manifest.Offsets
		walShards = len(offsets)
	}

	var seq int64 = 1
	var old *manifest
	if m, err := readManifest(dir); err == nil {
		old = m
		seq = old.Seq + 1
		if own && old.Shards != shards {
			return fmt.Errorf("socialnet: checkpoint into %s: shard count %d != manifest %d", dir, shards, old.Shards)
		}
	} else if !errors.Is(err, ErrNoDurableState) {
		return err
	}

	if own && old != nil {
		// Incremental checkpoint: the delta since the published snapshot
		// is exactly the WAL records above old.Offsets. If that tail is
		// small relative to the world, make it durable and bump the
		// manifest seq against the SAME snapshot and SAME offsets — the
		// offsets describe snapshot coverage, which has not moved. No
		// compaction either: nothing new is covered.
		tail := int64(0)
		for i := range offsets {
			if offsets[i] < old.Offsets[i] {
				tail = -1 // manifest ahead of the WAL: let the full path run
				break
			}
			tail += int64(offsets[i] - old.Offsets[i])
		}
		s.friendsMu.RLock()
		edges := s.friends.NumEdges()
		s.friendsMu.RUnlock()
		world := int64(s.journal.Len()+s.NumUsers()+s.NumPages()) + int64(edges)
		if _, err := os.Stat(filepath.Join(dir, old.Snapshot)); err == nil &&
			tail >= 0 && tail*incrementalTailFactor < world {
			if err := s.wal.Sync(); err != nil {
				return err
			}
			m := manifest{Version: manifestVersion, Seq: seq, Shards: shards, WALShards: old.walShardCount(), Snapshot: old.Snapshot, Offsets: old.Offsets}
			data, err := json.MarshalIndent(&m, "", " ")
			if err != nil {
				return err
			}
			return WriteFileDurable(filepath.Join(dir, manifestFile), data)
		}
	}

	snapName := fmt.Sprintf("snapshot-%016d.gob", seq)
	snapPath := filepath.Join(dir, snapName)
	tmp, err := os.CreateTemp(dir, ".tmp-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := s.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), snapPath); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}

	// Flush the WAL BEFORE publishing the manifest: the captured offsets
	// count buffered (possibly unfsynced) appends, and once the manifest
	// claims them, recovery skips everything below them. Publishing
	// first would let a crash leave segment chains ending short of the
	// offsets — and new appends after reopen would land inside the
	// claimed range and be skipped by the recovery after that.
	if own {
		if err := s.wal.Sync(); err != nil {
			return err
		}
	}

	m := manifest{Version: manifestVersion, Seq: seq, Shards: shards, WALShards: walShards, Snapshot: snapName, Offsets: offsets}
	data, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		return err
	}
	if err := WriteFileDurable(filepath.Join(dir, manifestFile), data); err != nil {
		return err
	}

	// The manifest now points at the new snapshot: everything it
	// supersedes — older snapshots and fully covered segments — is
	// garbage. Removal failures are non-fatal leftovers, not data loss.
	removeStaleSnapshots(dir, snapName)
	if own {
		return s.wal.Compact(offsets)
	}
	return nil
}

func removeStaleSnapshots(dir, keep string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".gob") && name != keep {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}

// OpenStats reports what recovery found.
type OpenStats struct {
	// TailEvents is how many WAL events beyond the snapshot offsets were
	// replayed into the store (after deduplication).
	TailEvents int
	// DupEvents is how many tail events were already present in the
	// snapshot (the checkpoint race window) and were skipped.
	DupEvents int
	// DroppedEvents counts tail records referencing a user or page absent
	// from the rebuilt world. The write paths journal creations before
	// any record can reference them and nothing ever deletes them, so a
	// drop indicates external tampering with the directory; they are
	// counted, not silently eaten.
	DroppedEvents int
	// TailWorld is how many world-mutation records (user/page creations,
	// friendships, status and visibility updates) beyond the snapshot
	// offsets were replayed into the store (after deduplication).
	TailWorld int
	// TailByPage counts the replayed (SourceLike) tail events per page.
	// Tail replay is deterministic but proceeds journal-shard by shard,
	// so a page stream's tail can be ordered differently from the live
	// arrival order the previous process saw: a page cursor persisted
	// before a crash is only trustworthy up to the snapshot-covered
	// prefix, i.e. LikeCountOfPage(p) - TailByPage[p]. Consumers holding
	// cursors across a crash (honeypotd's live monitor) clamp to that
	// boundary and re-observe the tail — at-least-once, never a miss.
	TailByPage map[PageID]int
}

// OpenDurable reopens the world persisted in dir: it loads the manifest
// snapshot, repairs and replays the WAL tail, and returns a live store
// whose journal streams every new like back into the same WAL. The
// rebuilt store is bit-identical, for every canonical read path, to the
// store that was checkpointed plus its replayed tail — the property the
// engine's restart-determinism test pins.
func OpenDurable(dir string, opts WALOptions) (*Store, *OpenStats, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.Open(filepath.Join(dir, m.Snapshot))
	if err != nil {
		return nil, nil, fmt.Errorf("socialnet: open snapshot: %w", err)
	}
	st, err := ReadSnapshotSharded(f, m.Shards)
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	if st.journal.NumShards() != m.Shards {
		return nil, nil, fmt.Errorf("socialnet: snapshot rebuilt %d journal shards, manifest says %d", st.journal.NumShards(), m.Shards)
	}

	wal, recovered, err := openWAL(dir, m.walShardCount(), m.Offsets, opts)
	if err != nil {
		return nil, nil, err
	}

	stats := &OpenStats{TailByPage: make(map[PageID]int)}
	// Pass 1: entity creations. Likes and edges in the tail may
	// reference a user or page created in ANOTHER shard's tail (records
	// are sharded by subject ID, so creation order is not shard order);
	// landing every creation first makes pass 2 reference-complete.
	var maxUser UserID
	var maxPage PageID
	for _, rec := range recovered {
		for _, r := range rec.Records {
			if r.like {
				continue
			}
			switch r.world.Kind {
			case WorldUser:
				if r.world.User.ID > maxUser {
					maxUser = r.world.User.ID
				}
				if st.replayUser(r.world.User) == replayApplied {
					stats.TailWorld++
				} else {
					stats.DupEvents++
				}
			case WorldPage:
				if r.world.Page.ID > maxPage {
					maxPage = r.world.Page.ID
				}
				if st.replayPage(r.world.Page) == replayApplied {
					stats.TailWorld++
				} else {
					stats.DupEvents++
				}
			}
		}
	}
	// ID counters must resume past every recovered entity, or the next
	// AddUser/AddPage would reassign a replayed ID.
	if int64(maxUser)+1 > st.nextUser.Load() {
		st.nextUser.Store(int64(maxUser) + 1)
	}
	if int64(maxPage)+1 > st.nextPage.Load() {
		st.nextPage.Store(int64(maxPage) + 1)
	}
	// Pass 2: likes and the remaining world mutations, in per-shard
	// record order (which per entity is its true mutation order).
	for _, rec := range recovered {
		for _, r := range rec.Records {
			if r.like {
				switch st.replayEvent(r.ev) {
				case replayApplied:
					stats.TailEvents++
					if r.ev.Source == SourceLike {
						stats.TailByPage[r.ev.Page]++
					}
				case replayDup:
					stats.DupEvents++
				case replayDropped:
					stats.DroppedEvents++
				}
				continue
			}
			switch r.world.Kind {
			case WorldFriend, WorldStatus, WorldFriendsVis:
				switch st.replayWorld(r.world) {
				case replayApplied:
					stats.TailWorld++
				case replayDup:
					stats.DupEvents++
				case replayDropped:
					stats.DroppedEvents++
				}
			}
		}
	}

	// Attach the backend only now: replayed history is already on disk
	// and must not be re-appended.
	st.journal.SetBackend(wal)
	st.wal = wal
	return st, stats, nil
}

// OpenOrCreate reopens the durable world in dir or, when none exists,
// calls build, checkpoints the fresh world into dir, and reopens THAT —
// callers always end up serving the durably reopened copy, so the
// canonical streams (and any cursors measured against them) are
// identical on the first run and on every resume. This is the one
// open-or-build path every durable command shares; the invariant that
// serving state always equals recoverable state lives here, not in
// per-command copies.
func OpenOrCreate(dir string, opts WALOptions, build func() (*Store, error)) (*Store, *OpenStats, error) {
	if !HasDurableState(dir) {
		built, err := build()
		if err != nil {
			return nil, nil, err
		}
		if err := built.Checkpoint(dir); err != nil {
			return nil, nil, fmt.Errorf("socialnet: initial checkpoint: %w", err)
		}
	}
	return OpenDurable(dir, opts)
}

// replayUser applies a recovered user-creation record. A user the
// snapshot already contains (the checkpoint race window: the record is
// above the captured offsets AND inside the snapshot) is a dup.
func (s *Store) replayUser(u User) replayOutcome {
	sh := s.userShard(u.ID)
	sh.mu.Lock()
	if _, ok := sh.users[u.ID]; ok {
		sh.mu.Unlock()
		return replayDup
	}
	cp := u
	sh.users[u.ID] = &cp
	sh.mu.Unlock()

	s.friendsMu.Lock()
	s.friends.AddNode(int64(u.ID))
	s.friendsMu.Unlock()

	if u.Searchable {
		s.dirMu.Lock()
		s.directory = append(s.directory, u.ID)
		s.dirMu.Unlock()
	}
	return replayApplied
}

// replayPage applies a recovered page-creation record; dups are the
// same checkpoint race window as replayUser.
func (s *Store) replayPage(p Page) replayOutcome {
	sh := s.pageShard(p.ID)
	sh.mu.Lock()
	if _, ok := sh.pages[p.ID]; ok {
		sh.mu.Unlock()
		return replayDup
	}
	cp := p
	sh.pages[p.ID] = &cp
	sh.mu.Unlock()
	return replayApplied
}

// replayWorld applies a recovered friendship/status/visibility record.
// Edges the snapshot already holds are dups; status and visibility
// updates are idempotent sets. A subject absent from the rebuilt world
// is dropped — the store journals creations before any record can
// reference them, so like orphaned likes it indicates tampering.
func (s *Store) replayWorld(rec WorldRecord) replayOutcome {
	switch rec.Kind {
	case WorldFriend:
		if !s.userExists(rec.A) || !s.userExists(rec.B) {
			return replayDropped
		}
		s.friendsMu.Lock()
		defer s.friendsMu.Unlock()
		if s.friends.HasEdge(int64(rec.A), int64(rec.B)) {
			return replayDup
		}
		if err := s.friends.AddEdge(int64(rec.A), int64(rec.B)); err != nil {
			return replayDropped
		}
		return replayApplied
	case WorldStatus:
		sh := s.userShard(rec.A)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		usr, ok := sh.users[rec.A]
		if !ok {
			return replayDropped
		}
		usr.Status = rec.Status
		return replayApplied
	case WorldFriendsVis:
		sh := s.userShard(rec.A)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		usr, ok := sh.users[rec.A]
		if !ok {
			return replayDropped
		}
		usr.FriendsPublic = rec.Visible
		return replayApplied
	}
	return replayDropped
}

// replayOutcome classifies one tail event's recovery.
type replayOutcome uint8

const (
	replayApplied replayOutcome = iota
	replayDup
	replayDropped
)

// replayEvent applies one recovered WAL event to the store's indexes
// and in-memory journal, bypassing the business checks AddLike runs
// (termination): the event passed them when it was first accepted, and
// replay must reproduce exactly what was acknowledged. Events the
// snapshot already contains — the checkpoint race window — are detected
// per event, exactly, via the journal's global (user, page) uniqueness:
// an indexed like is in likeSet, a history like in the user's own
// stream. Both checks cost the one user the event touches, so reopening
// a huge world with a tiny tail stays O(snapshot load + tail), not
// O(snapshot × tail) or O(world) extra memory.
func (s *Store) replayEvent(ev LikeEvent) replayOutcome {
	k := likeKey{ev.User, ev.Page}
	ush := s.userShard(ev.User)
	ush.mu.Lock()
	if _, ok := ush.users[ev.User]; !ok {
		ush.mu.Unlock()
		return replayDropped
	}
	if ev.Source == SourceLike {
		if _, dup := ush.likeSet[k]; dup {
			ush.mu.Unlock()
			return replayDup
		}
		psh := s.pageShard(ev.Page)
		psh.mu.RLock()
		_, pageOK := psh.pages[ev.Page]
		psh.mu.RUnlock()
		if !pageOK {
			ush.mu.Unlock()
			return replayDropped
		}
	} else {
		for _, lk := range ush.likesByUser[ev.User] {
			if lk.Page == ev.Page {
				ush.mu.Unlock()
				return replayDup
			}
		}
	}
	lk := Like{User: ev.User, Page: ev.Page, At: ev.At}
	ush.likesByUser[ev.User] = append(ush.likesByUser[ev.User], lk)
	delete(ush.userSorted, ev.User)
	if ev.Source == SourceLike {
		ush.likeSet[k] = struct{}{}
	}
	ush.mu.Unlock()

	s.journal.Append(ev)

	if ev.Source == SourceLike {
		psh := s.pageShard(ev.Page)
		psh.mu.Lock()
		psh.likesByPage[ev.Page] = append(psh.likesByPage[ev.Page], lk)
		delete(psh.pageSorted, ev.Page)
		psh.mu.Unlock()
	}
	return replayApplied
}
