package socialnet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// A durable store directory holds three kinds of files:
//
//	manifest.json        — points at the current snapshot and records the
//	                       per-shard WAL offsets it covers
//	snapshot-<seq>.gob   — a full world snapshot (users, pages, friends,
//	                       every like), the gob form WriteSnapshot emits
//	s<shard>-<start>.seg — WAL segments (see segment.go)
//
// Recovery is snapshot + tail-replay: OpenDurable rebuilds the world
// from the manifest's snapshot, then replays only the WAL events at or
// beyond the manifest offsets, deduplicating on the journal's global
// (user, page) uniqueness invariant. Checkpoint moves the snapshot
// forward and compacts the segments it covers, so neither recovery time
// nor disk usage grows with history — only with the tail since the last
// checkpoint.
const manifestFile = "manifest.json"

// manifest is the durable directory's root pointer. It is replaced
// atomically (tmp + rename), so a crash mid-checkpoint leaves the
// previous snapshot + its WAL tail fully intact.
type manifest struct {
	Version  int
	Seq      int64 // checkpoint sequence, monotonically increasing
	Shards   int   // journal/WAL shard count
	Snapshot string
	// Offsets are the per-shard WAL stream offsets captured immediately
	// BEFORE the snapshot was taken. Invariant: every WAL event below
	// Offsets[i] is contained in the snapshot (an event reaches the WAL
	// only after its user-side index commit, and the snapshot is a
	// superset of all user-side commits at capture time). Events at or
	// above the offsets may or may not be in the snapshot; replay
	// dedupes them on (user, page).
	Offsets []uint64
}

const manifestVersion = 1

// ErrNoDurableState reports a directory with no manifest — nothing to
// reopen. Callers typically build a fresh world and Checkpoint it.
var ErrNoDurableState = errors.New("socialnet: no durable state in directory")

// HasDurableState reports whether dir holds a reopenable world.
func HasDurableState(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestFile))
	return err == nil
}

func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoDurableState, dir)
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("socialnet: corrupt manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("socialnet: manifest version %d, want %d", m.Version, manifestVersion)
	}
	if m.Shards < 1 || len(m.Offsets) != m.Shards {
		return nil, fmt.Errorf("socialnet: manifest shards %d / offsets %d inconsistent", m.Shards, len(m.Offsets))
	}
	return &m, nil
}

// WriteFileDurable writes data to path via a temp file with fsync,
// then renames it into place and fsyncs the directory, so a crash at
// any instant leaves either the old file or the new one — never a torn
// mix. Every state file in the durable stack (manifest, monitor
// cursors, study run state, crawl checkpoints) goes through this.
func WriteFileDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// samePath reports whether two path spellings name the same directory.
// A raw string comparison would let "./data" vs "data" misclassify a
// checkpoint into the store's own WAL directory as an export — writing
// a zero-offset manifest next to live segments and skipping compaction.
func samePath(a, b string) bool {
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	if errA != nil || errB != nil {
		return filepath.Clean(a) == filepath.Clean(b)
	}
	return aa == bb
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Durable reports whether the store streams its journal to disk.
func (s *Store) Durable() bool { return s.wal != nil }

// DurabilityErr returns the disk backend's sticky error: non-nil once
// any WAL write or fsync has failed, meaning acknowledged likes since
// then may not survive a crash. Write surfaces that promise durability
// (the API's like injection) check it after acknowledging into memory;
// nil for in-memory stores.
func (s *Store) DurabilityErr() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Err()
}

// Sync forces every acknowledged like to stable storage, narrowing the
// batched-fsync loss window to zero. A no-op for in-memory stores.
func (s *Store) Sync() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// Close flushes and closes the disk backend. The store stays readable
// (it is an in-memory structure) but must not be written afterwards.
// A no-op for in-memory stores.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.journal.SetBackend(nil)
	s.wal = nil
	return err
}

// Checkpoint writes a full snapshot of the world plus a manifest into
// dir, then — when dir is the store's own WAL directory — compacts the
// segments the snapshot covers. It is safe (and race-free) under
// concurrent writers: the WAL offsets are captured before the snapshot,
// so a write landing mid-checkpoint is either inside the snapshot,
// inside the surviving WAL tail, or both (recovery dedupes), never
// lost. After a successful Checkpoint, OpenDurable(dir) recovers by
// loading this snapshot and replaying only the tail.
//
// Checkpoint also works on a plain in-memory store: it then produces a
// durable seed directory (snapshot + zero offsets, no segments) that
// OpenDurable turns into a live durable store — the handoff path for
// "build the world fast in memory, then persist it".
func (s *Store) Checkpoint(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	shards := s.journal.NumShards()
	offsets := make([]uint64, shards)
	own := s.wal != nil && samePath(s.wal.Dir(), dir)
	if own {
		offsets = s.wal.Offsets() // capture BEFORE the snapshot: see manifest.Offsets
	}

	var seq int64 = 1
	if old, err := readManifest(dir); err == nil {
		seq = old.Seq + 1
		if own && old.Shards != shards {
			return fmt.Errorf("socialnet: checkpoint into %s: shard count %d != manifest %d", dir, shards, old.Shards)
		}
	} else if !errors.Is(err, ErrNoDurableState) {
		return err
	}

	snapName := fmt.Sprintf("snapshot-%016d.gob", seq)
	snapPath := filepath.Join(dir, snapName)
	tmp, err := os.CreateTemp(dir, ".tmp-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := s.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), snapPath); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}

	// Flush the WAL BEFORE publishing the manifest: the captured offsets
	// count buffered (possibly unfsynced) appends, and once the manifest
	// claims them, recovery skips everything below them. Publishing
	// first would let a crash leave segment chains ending short of the
	// offsets — and new appends after reopen would land inside the
	// claimed range and be skipped by the recovery after that.
	if own {
		if err := s.wal.Sync(); err != nil {
			return err
		}
	}

	m := manifest{Version: manifestVersion, Seq: seq, Shards: shards, Snapshot: snapName, Offsets: offsets}
	data, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		return err
	}
	if err := WriteFileDurable(filepath.Join(dir, manifestFile), data); err != nil {
		return err
	}

	// The manifest now points at the new snapshot: everything it
	// supersedes — older snapshots and fully covered segments — is
	// garbage. Removal failures are non-fatal leftovers, not data loss.
	removeStaleSnapshots(dir, snapName)
	if own {
		return s.wal.Compact(offsets)
	}
	return nil
}

func removeStaleSnapshots(dir, keep string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".gob") && name != keep {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}

// OpenStats reports what recovery found.
type OpenStats struct {
	// TailEvents is how many WAL events beyond the snapshot offsets were
	// replayed into the store (after deduplication).
	TailEvents int
	// DupEvents is how many tail events were already present in the
	// snapshot (the checkpoint race window) and were skipped.
	DupEvents int
	// DroppedEvents counts tail events referencing a user or page absent
	// from the snapshot. The write paths create users and pages before
	// likes and nothing ever deletes them, so a drop indicates external
	// tampering with the directory; they are counted, not silently eaten.
	DroppedEvents int
	// TailByPage counts the replayed (SourceLike) tail events per page.
	// Tail replay is deterministic but proceeds journal-shard by shard,
	// so a page stream's tail can be ordered differently from the live
	// arrival order the previous process saw: a page cursor persisted
	// before a crash is only trustworthy up to the snapshot-covered
	// prefix, i.e. LikeCountOfPage(p) - TailByPage[p]. Consumers holding
	// cursors across a crash (honeypotd's live monitor) clamp to that
	// boundary and re-observe the tail — at-least-once, never a miss.
	TailByPage map[PageID]int
}

// OpenDurable reopens the world persisted in dir: it loads the manifest
// snapshot, repairs and replays the WAL tail, and returns a live store
// whose journal streams every new like back into the same WAL. The
// rebuilt store is bit-identical, for every canonical read path, to the
// store that was checkpointed plus its replayed tail — the property the
// engine's restart-determinism test pins.
func OpenDurable(dir string, opts WALOptions) (*Store, *OpenStats, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.Open(filepath.Join(dir, m.Snapshot))
	if err != nil {
		return nil, nil, fmt.Errorf("socialnet: open snapshot: %w", err)
	}
	st, err := ReadSnapshotSharded(f, m.Shards)
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	if st.journal.NumShards() != m.Shards {
		return nil, nil, fmt.Errorf("socialnet: snapshot rebuilt %d journal shards, manifest says %d", st.journal.NumShards(), m.Shards)
	}

	wal, recovered, err := openWAL(dir, m.Shards, m.Offsets, opts)
	if err != nil {
		return nil, nil, err
	}

	stats := &OpenStats{TailByPage: make(map[PageID]int)}
	for _, rec := range recovered {
		for _, ev := range rec.Events {
			switch st.replayEvent(ev) {
			case replayApplied:
				stats.TailEvents++
				if ev.Source == SourceLike {
					stats.TailByPage[ev.Page]++
				}
			case replayDup:
				stats.DupEvents++
			case replayDropped:
				stats.DroppedEvents++
			}
		}
	}

	// Attach the backend only now: replayed history is already on disk
	// and must not be re-appended.
	st.journal.SetBackend(wal)
	st.wal = wal
	return st, stats, nil
}

// OpenOrCreate reopens the durable world in dir or, when none exists,
// calls build, checkpoints the fresh world into dir, and reopens THAT —
// callers always end up serving the durably reopened copy, so the
// canonical streams (and any cursors measured against them) are
// identical on the first run and on every resume. This is the one
// open-or-build path every durable command shares; the invariant that
// serving state always equals recoverable state lives here, not in
// per-command copies.
func OpenOrCreate(dir string, opts WALOptions, build func() (*Store, error)) (*Store, *OpenStats, error) {
	if !HasDurableState(dir) {
		built, err := build()
		if err != nil {
			return nil, nil, err
		}
		if err := built.Checkpoint(dir); err != nil {
			return nil, nil, fmt.Errorf("socialnet: initial checkpoint: %w", err)
		}
	}
	return OpenDurable(dir, opts)
}

// replayOutcome classifies one tail event's recovery.
type replayOutcome uint8

const (
	replayApplied replayOutcome = iota
	replayDup
	replayDropped
)

// replayEvent applies one recovered WAL event to the store's indexes
// and in-memory journal, bypassing the business checks AddLike runs
// (termination): the event passed them when it was first accepted, and
// replay must reproduce exactly what was acknowledged. Events the
// snapshot already contains — the checkpoint race window — are detected
// per event, exactly, via the journal's global (user, page) uniqueness:
// an indexed like is in likeSet, a history like in the user's own
// stream. Both checks cost the one user the event touches, so reopening
// a huge world with a tiny tail stays O(snapshot load + tail), not
// O(snapshot × tail) or O(world) extra memory.
func (s *Store) replayEvent(ev LikeEvent) replayOutcome {
	k := likeKey{ev.User, ev.Page}
	ush := s.userShard(ev.User)
	ush.mu.Lock()
	if _, ok := ush.users[ev.User]; !ok {
		ush.mu.Unlock()
		return replayDropped
	}
	if ev.Source == SourceLike {
		if _, dup := ush.likeSet[k]; dup {
			ush.mu.Unlock()
			return replayDup
		}
		psh := s.pageShard(ev.Page)
		psh.mu.RLock()
		_, pageOK := psh.pages[ev.Page]
		psh.mu.RUnlock()
		if !pageOK {
			ush.mu.Unlock()
			return replayDropped
		}
	} else {
		for _, lk := range ush.likesByUser[ev.User] {
			if lk.Page == ev.Page {
				ush.mu.Unlock()
				return replayDup
			}
		}
	}
	lk := Like{User: ev.User, Page: ev.Page, At: ev.At}
	ush.likesByUser[ev.User] = append(ush.likesByUser[ev.User], lk)
	delete(ush.userSorted, ev.User)
	if ev.Source == SourceLike {
		ush.likeSet[k] = struct{}{}
	}
	ush.mu.Unlock()

	s.journal.Append(ev)

	if ev.Source == SourceLike {
		psh := s.pageShard(ev.Page)
		psh.mu.Lock()
		psh.likesByPage[ev.Page] = append(psh.likesByPage[ev.Page], lk)
		delete(psh.pageSorted, ev.Page)
		psh.mu.Unlock()
	}
	return replayApplied
}
