package socialnet

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// walEv builds a distinct like event for WAL-level tests.
func walEv(i int) LikeEvent {
	return LikeEvent{At: at(i), User: UserID(i%7 + 1), Page: PageID(i + 1), Source: SourceLike}
}

// noThreshold never triggers the SyncEvery path: every sync in the test
// is explicit.
var noThreshold = WALOptions{SyncEvery: 1 << 30, SyncInterval: -1}

// TestUnsyncedCounterExact pins the counter's accounting discipline:
// a shard sync subtracts exactly the records it made durable — never
// more (the old syncShard subtracted nothing, so past the threshold
// every append paid an inline fsync), never everything (the old Sync
// stored zero, erasing appends that raced the pass).
func TestUnsyncedCounterExact(t *testing.T) {
	w, _, err := openWAL(t.TempDir(), 4, make([]uint64, 4), noThreshold)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	w.Append(0, walEv(0), walEv(1), walEv(2))
	w.Append(1, walEv(3), walEv(4))
	if got := w.unsynced.Load(); got != 5 {
		t.Fatalf("unsynced = %d after 5 appends, want 5", got)
	}
	// An inline shard sync (the SyncEvery threshold path) must subtract
	// its shard's records, leaving the other shard's count intact.
	w.syncShard(w.shards[0])
	if got := w.unsynced.Load(); got != 2 {
		t.Fatalf("unsynced = %d after syncing shard 0, want 2 (shard 1's events)", got)
	}
	w.Append(2, walEv(5))
	if got := w.unsynced.Load(); got != 3 {
		t.Fatalf("unsynced = %d, want 3", got)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.unsynced.Load(); got != 0 {
		t.Fatalf("unsynced = %d after full sync, want 0", got)
	}
	w.Append(3, walEv(6))
	if got := w.unsynced.Load(); got != 1 {
		t.Fatalf("unsynced = %d after post-sync append, want 1", got)
	}
}

// TestSyncKeepsRacingAppendCounts reproduces the Store(0) race
// deterministically: an append that lands on a shard AFTER the sync
// pass has already fsynced that shard must keep its count — the old
// pass-end Store(0) erased it, letting the record sit volatile past
// the SyncEvery/SyncInterval contract.
func TestSyncKeepsRacingAppendCounts(t *testing.T) {
	w, _, err := openWAL(t.TempDir(), 2, make([]uint64, 2), noThreshold)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	w.Append(0, walEv(0), walEv(1))
	injected := false
	w.testSyncedShard = func(shard int) {
		if shard == 0 && !injected {
			injected = true
			w.Append(0, walEv(2)) // lands mid-pass, after shard 0's fsync
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.testSyncedShard = nil
	if !injected {
		t.Fatal("injection hook never ran")
	}
	if got := w.unsynced.Load(); got != 1 {
		t.Fatalf("unsynced = %d after pass with racing append, want 1 (the racing append's count was erased)", got)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.unsynced.Load(); got != 0 {
		t.Fatalf("unsynced = %d after follow-up sync, want 0", got)
	}
}

// TestSyncCounterConcurrentAccounting hammers Append against Sync and
// checks the invariant the counter fixes established: unsynced always
// equals the number of appended-but-unsynced records (per-shard
// next - synced), at quiescence and after a final pass — and the full
// record set survives a reopen.
func TestSyncCounterConcurrentAccounting(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(dir, 4, make([]uint64, 4), noThreshold)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 4, 300
	stop := make(chan struct{})
	var syncer sync.WaitGroup
	syncer.Add(1)
	go func() {
		defer syncer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = w.Sync()
			}
		}
	}()
	var appenders sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		appenders.Add(1)
		go func(g int) {
			defer appenders.Done()
			for i := 0; i < perG; i++ {
				w.Append((g+i)%4, walEv(g*perG+i))
			}
		}(g)
	}
	appenders.Wait()
	close(stop)
	syncer.Wait()

	var pending int64
	for _, sh := range w.shards {
		sh.mu.Lock()
		pending += int64(sh.next - sh.synced)
		sh.mu.Unlock()
	}
	if got := w.unsynced.Load(); got != pending {
		t.Fatalf("unsynced = %d but %d records are actually pending", got, pending)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.unsynced.Load(); got != 0 {
		t.Fatalf("unsynced = %d after final sync, want 0", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recovered, err := openWAL(dir, 4, make([]uint64, 4), noThreshold)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	total := 0
	for _, rec := range recovered {
		total += len(rec.Records)
	}
	if total != goroutines*perG {
		t.Fatalf("recovered %d records, want %d", total, goroutines*perG)
	}
}

// TestAppendRefusedAfterStickyError: once a write or sync fails, the
// WAL must stop appending — more records would desync the on-disk
// chain from the stream indices Offsets reports — and a reopen must
// recover exactly the pre-error prefix and accept appends again.
func TestAppendRefusedAfterStickyError(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(dir, 1, []uint64{0}, noThreshold)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(0, walEv(0))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Sabotage: close the segment file behind the WAL's back, so the
	// next flush hits a dead fd.
	if err := w.shards[0].f.Close(); err != nil {
		t.Fatal(err)
	}
	w.Append(0, walEv(1)) // buffers fine; not yet flushed
	if err := w.Sync(); err == nil {
		t.Fatal("sync over a closed fd should fail")
	}
	if w.Err() == nil {
		t.Fatal("expected sticky error")
	}
	off := w.Offsets()[0]
	w.Append(0, walEv(2)) // must be refused
	if got := w.Offsets()[0]; got != off {
		t.Fatalf("append after sticky error advanced offsets %d -> %d", off, got)
	}
	_ = w.Close() // returns the sticky error; the test cares about disk state

	w2, recovered, err := openWAL(dir, 1, []uint64{0}, noThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(recovered[0].Records); got != 1 {
		t.Fatalf("recovered %d records, want exactly the pre-error prefix of 1", got)
	}
	w2.Append(0, walEv(3))
	if err := w2.Sync(); err != nil {
		t.Fatalf("append after clean reopen: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, recovered3, err := openWAL(dir, 1, []uint64{0}, noThreshold)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if got := len(recovered3[0].Records); got != 2 {
		t.Fatalf("recovered %d records after reopen+append, want 2", got)
	}
}

// TestGroupCommitDurableWithoutSync pins the SyncEvery=1 contract under
// the group committer: every Append that returned is already on disk —
// no Sync, no Close — so a crash image taken at any quiescent instant
// holds every acknowledged record.
func TestGroupCommitDurableWithoutSync(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(dir, 4, make([]uint64, 4), WALOptions{SyncEvery: 1, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				w.Append(g%4, walEv(g*perG+i))
			}
		}(g)
	}
	wg.Wait()

	crash := cloneDir(t, dir) // no Sync, no Close: simulate SIGKILL
	w2, recovered, err := openWAL(crash, 4, make([]uint64, 4), noThreshold)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	total := 0
	for _, rec := range recovered {
		total += len(rec.Records)
	}
	if total != goroutines*perG {
		t.Fatalf("crash image holds %d records, want all %d acknowledged appends", total, goroutines*perG)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadsV1Segments: a chain written in the version-1 framing (fixed
// like records, no type byte) must still recover, and new appends must
// rotate into a fresh current-version segment rather than mixing
// framings inside the v1 file.
func TestReadsV1Segments(t *testing.T) {
	dir := t.TempDir()
	evs := []LikeEvent{
		{At: at(1), User: 1, Page: 2, Source: SourceLike},
		{At: at(2), User: 3, Page: 4, Source: SourceHistory},
	}
	buf := make([]byte, segHeaderSize)
	copy(buf[0:8], segMagic)
	binary.LittleEndian.PutUint32(buf[8:12], segVersionV1)
	binary.LittleEndian.PutUint32(buf[12:16], 0)
	binary.LittleEndian.PutUint64(buf[16:24], 0)
	for _, ev := range evs {
		payload := make([]byte, eventPayloadSize)
		binary.LittleEndian.PutUint64(payload[0:8], uint64(ev.At.UnixNano()))
		binary.LittleEndian.PutUint64(payload[8:16], uint64(ev.User))
		binary.LittleEndian.PutUint64(payload[16:24], uint64(ev.Page))
		payload[24] = byte(ev.Source)
		var frame [8]byte
		binary.LittleEndian.PutUint32(frame[0:4], eventPayloadSize)
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
		buf = append(buf, frame[:]...)
		buf = append(buf, payload...)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentFileName(0, 0)), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	w, recovered, err := openWAL(dir, 1, []uint64{0}, noThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(recovered[0].Records); got != 2 {
		t.Fatalf("recovered %d records from v1 segment, want 2", got)
	}
	for i, r := range recovered[0].Records {
		if !r.like || !r.ev.At.Equal(evs[i].At) || r.ev.User != evs[i].User || r.ev.Page != evs[i].Page || r.ev.Source != evs[i].Source {
			t.Fatalf("record %d = %+v, want %+v", i, r.ev, evs[i])
		}
	}
	w.Append(0, LikeEvent{At: at(3), User: 5, Page: 6, Source: SourceLike})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs[0]) != 2 {
		t.Fatalf("append after a v1 tail left %d segments, want a fresh v2 segment (2 total)", len(segs[0]))
	}
	if segs[0][1].start != 2 {
		t.Fatalf("fresh segment starts at %d, want 2 (contiguous with the v1 chain)", segs[0][1].start)
	}
	w2, recovered2, err := openWAL(dir, 1, []uint64{0}, noThreshold)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := len(recovered2[0].Records); got != 3 {
		t.Fatalf("mixed-version chain recovered %d records, want 3", got)
	}
}
