package socialnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// Store is the concurrency-safe world state. A single Store backs the
// platform, the farms, the honeypot monitor, and the HTTP API.
//
// Internally the store is lock-striped: users (with their like
// histories and the duplicate-like set) and pages (with their like
// streams) are partitioned into shards keyed by ID, so concurrent
// likers, monitors, and crawlers touching different users/pages never
// serialize on one mutex. The friendship graph and the public directory
// are global structures with their own locks. All read accessors return
// data in a canonical order (IDs ascending, likes by (time, ID)), so a
// store filled concurrently reads back identically to one filled
// serially with the same contents.
//
// Every like write — AddLike, AddHistory, snapshot replay — also lands
// in the store's append-only Journal, the single event log streaming
// consumers (honeypot monitors, one-pass analyses, the fraud sweep)
// read instead of re-scanning the indexes. The user- and page-side like
// indexes are derived views over that log: convenient per-ID access
// paths whose contents are always exactly the journal's events.
type Store struct {
	userShards []userShard
	pageShards []pageShard
	shardMask  uint64
	journal    *Journal

	// wal is the attached disk backend for a durable store (nil for the
	// default in-memory store); see OpenDurable / Checkpoint. Likes
	// reach it through the journal; world mutations (user/page
	// creations, friendships, status/visibility updates) are journaled
	// directly by the mutating methods, so the WAL tail alone replays
	// everything since the last snapshot.
	wal *DiskWAL

	nextUser atomic.Int64
	nextPage atomic.Int64

	friendsMu sync.RWMutex
	friends   *graph.Undirected

	dirMu     sync.RWMutex
	directory []UserID // searchable users, insertion order
}

// userShard holds one partition of the user space: the user records,
// the user-side like index, and the duplicate-like set (keyed by user,
// so the dedup check is atomic with the user-side append). likesByUser
// is strictly append-ordered — like the page-side streams it is never
// sorted in place — so integer offsets into a user's stream (the
// cursors the API's cursor-paged likes list hands out) stay valid
// across reads. userSorted caches a canonically sorted copy per user,
// valid while its length still matches the stream.
type userShard struct {
	mu          sync.RWMutex
	users       map[UserID]*User
	likesByUser map[UserID][]Like
	userSorted  map[UserID][]Like
	likeSet     map[likeKey]struct{}
}

// pageShard holds one partition of the page space: the page records and
// the page-side like streams. likesByPage is strictly append-ordered —
// it is never sorted in place — so integer offsets into a page's stream
// (the per-page journal cursors monitors hold) stay valid across reads.
// pageSorted caches a canonically sorted copy per page, valid while its
// length still matches the stream (append-only: equal lengths imply
// equal contents).
type pageShard struct {
	mu          sync.RWMutex
	pages       map[PageID]*Page
	likesByPage map[PageID][]Like
	pageSorted  map[PageID][]Like
}

type likeKey struct {
	u UserID
	p PageID
}

// Errors returned by Store operations.
var (
	ErrNoUser        = errors.New("socialnet: no such user")
	ErrNoPage        = errors.New("socialnet: no such page")
	ErrDuplicateLike = errors.New("socialnet: duplicate like")
	ErrTerminated    = errors.New("socialnet: account terminated")
)

// DefaultShards is the shard count used by NewStore: enough stripes
// that a worker pool sized to any realistic core count rarely contends.
const DefaultShards = 64

// NewStore returns an empty world with the default shard count.
func NewStore() *Store { return NewShardedStore(DefaultShards) }

// NewShardedStore returns an empty world partitioned into the given
// number of lock stripes (rounded up to a power of two; values < 1 fall
// back to DefaultShards). Shard count affects only contention, never
// results.
func NewShardedStore(shards int) *Store {
	if shards < 1 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Store{
		userShards: make([]userShard, n),
		pageShards: make([]pageShard, n),
		shardMask:  uint64(n - 1),
		journal:    NewJournal(n),
		friends:    graph.NewUndirected(),
	}
	for i := range s.userShards {
		s.userShards[i] = userShard{
			users:       make(map[UserID]*User),
			likesByUser: make(map[UserID][]Like),
			userSorted:  make(map[UserID][]Like),
			likeSet:     make(map[likeKey]struct{}),
		}
	}
	for i := range s.pageShards {
		s.pageShards[i] = pageShard{
			pages:       make(map[PageID]*Page),
			likesByPage: make(map[PageID][]Like),
			pageSorted:  make(map[PageID][]Like),
		}
	}
	s.nextUser.Store(1)
	s.nextPage.Store(1)
	return s
}

// NumShards returns the number of lock stripes.
func (s *Store) NumShards() int { return len(s.userShards) }

// Journal returns the store's append-only like-event log. The journal
// is the single write path: every like recorded through the store is in
// it, in append order per shard, and streaming consumers (monitors,
// one-pass analyses, the fraud sweep) read it instead of re-scanning
// the derived indexes.
func (s *Store) Journal() *Journal { return s.journal }

func (s *Store) userShard(u UserID) *userShard {
	return &s.userShards[uint64(u)&s.shardMask]
}

func (s *Store) pageShard(p PageID) *pageShard {
	return &s.pageShards[uint64(p)&s.shardMask]
}

// sortUserLikes orders a user-side like slice canonically: by time,
// ties by page ID. The order is a total one, so it is independent of
// insertion order — the property the parallel engine's determinism
// rests on.
func sortUserLikes(likes []Like) {
	sort.Slice(likes, func(i, j int) bool {
		if !likes[i].At.Equal(likes[j].At) {
			return likes[i].At.Before(likes[j].At)
		}
		return likes[i].Page < likes[j].Page
	})
}

// sortPageLikes orders a page-side like slice canonically: by time,
// ties by user ID.
func sortPageLikes(likes []Like) {
	sort.Slice(likes, func(i, j int) bool {
		if !likes[i].At.Equal(likes[j].At) {
			return likes[i].At.Before(likes[j].At)
		}
		return likes[i].User < likes[j].User
	})
}

// logWorld journals a world mutation to the attached WAL, sharded by
// the subject entity's ID so per-entity mutation order on disk matches
// the in-memory history. Callers hold the mutated entity's lock; under
// group commit the call blocks until the record is durable, which is
// safe because the committer takes only WAL-shard locks.
func (s *Store) logWorld(id uint64, rec WorldRecord) {
	if s.wal != nil {
		s.wal.AppendWorld(int(id&s.shardMask), rec)
	}
}

// AddUser inserts a user, assigning its ID. The input is copied.
func (s *Store) AddUser(u User) UserID {
	u.ID = UserID(s.nextUser.Add(1) - 1)
	sh := s.userShard(u.ID)
	sh.mu.Lock()
	sh.users[u.ID] = &u
	s.logWorld(uint64(u.ID), WorldRecord{Kind: WorldUser, User: u})
	sh.mu.Unlock()

	s.friendsMu.Lock()
	s.friends.AddNode(int64(u.ID))
	s.friendsMu.Unlock()

	if u.Searchable {
		s.dirMu.Lock()
		s.directory = append(s.directory, u.ID)
		s.dirMu.Unlock()
	}
	return u.ID
}

// User returns a copy of the user record.
func (s *Store) User(id UserID) (User, error) {
	sh := s.userShard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	u, ok := sh.users[id]
	if !ok {
		return User{}, fmt.Errorf("%w: %d", ErrNoUser, id)
	}
	return *u, nil
}

// NumUsers returns the number of users.
func (s *Store) NumUsers() int {
	n := 0
	for i := range s.userShards {
		sh := &s.userShards[i]
		sh.mu.RLock()
		n += len(sh.users)
		sh.mu.RUnlock()
	}
	return n
}

// AddPage inserts a page, assigning its ID.
func (s *Store) AddPage(p Page) (PageID, error) {
	if p.Owner != 0 {
		osh := s.userShard(p.Owner)
		osh.mu.RLock()
		_, ok := osh.users[p.Owner]
		osh.mu.RUnlock()
		if !ok {
			return 0, fmt.Errorf("%w: page owner %d", ErrNoUser, p.Owner)
		}
	}
	p.ID = PageID(s.nextPage.Add(1) - 1)
	sh := s.pageShard(p.ID)
	sh.mu.Lock()
	sh.pages[p.ID] = &p
	s.logWorld(uint64(p.ID), WorldRecord{Kind: WorldPage, Page: p})
	sh.mu.Unlock()
	return p.ID, nil
}

// Page returns a copy of the page record.
func (s *Store) Page(id PageID) (Page, error) {
	sh := s.pageShard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	p, ok := sh.pages[id]
	if !ok {
		return Page{}, fmt.Errorf("%w: %d", ErrNoPage, id)
	}
	return *p, nil
}

// NumPages returns the number of pages.
func (s *Store) NumPages() int {
	n := 0
	for i := range s.pageShards {
		sh := &s.pageShards[i]
		sh.mu.RLock()
		n += len(sh.pages)
		sh.mu.RUnlock()
	}
	return n
}

// Pages returns all page IDs in ascending order.
func (s *Store) Pages() []PageID {
	var out []PageID
	for i := range s.pageShards {
		sh := &s.pageShards[i]
		sh.mu.RLock()
		for id := range sh.pages {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HoneypotPages returns the study's honeypot (campaign) page IDs in
// ascending order — the pages monitors watch and crawls target.
func (s *Store) HoneypotPages() []PageID {
	var out []PageID
	for i := range s.pageShards {
		sh := &s.pageShards[i]
		sh.mu.RLock()
		for id, p := range sh.pages {
			if p.Honeypot {
				out = append(out, id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddLike records user liking page at the given instant. Terminated
// accounts cannot like; duplicate likes return ErrDuplicateLike.
//
// The operation touches two stripes (user-side, then page-side) plus
// the journal shard, but never holds two locks at once, so concurrent
// AddLike calls on any mix of users and pages are deadlock-free. The
// user-side stripe is the linearization point: the duplicate check and
// the user-side append are atomic, and pages are never deleted, so the
// journal and page-side appends cannot fail after the user-side commit.
func (s *Store) AddLike(u UserID, p PageID, at time.Time) error {
	psh := s.pageShard(p)
	psh.mu.RLock()
	_, pageOK := psh.pages[p]
	psh.mu.RUnlock()
	if !pageOK {
		return fmt.Errorf("%w: %d", ErrNoPage, p)
	}

	lk := Like{User: u, Page: p, At: at}
	ush := s.userShard(u)
	ush.mu.Lock()
	usr, ok := ush.users[u]
	if !ok {
		ush.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNoUser, u)
	}
	if usr.Status == StatusTerminated {
		ush.mu.Unlock()
		return fmt.Errorf("%w: user %d", ErrTerminated, u)
	}
	k := likeKey{u, p}
	if _, dup := ush.likeSet[k]; dup {
		ush.mu.Unlock()
		return fmt.Errorf("%w: user %d page %d", ErrDuplicateLike, u, p)
	}
	ush.likeSet[k] = struct{}{}
	ush.likesByUser[u] = append(ush.likesByUser[u], lk)
	delete(ush.userSorted, u)
	ush.mu.Unlock()

	s.journal.Append(LikeEvent{At: at, User: u, Page: p, Source: SourceLike})

	psh.mu.Lock()
	psh.likesByPage[p] = append(psh.likesByPage[p], lk)
	psh.mu.Unlock()
	return nil
}

// Likes reports whether user u likes page p.
func (s *Store) Likes(u UserID, p PageID) bool {
	sh := s.userShard(u)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.likeSet[likeKey{u, p}]
	return ok
}

// LikesOfPage returns the page's likes in like-time order (ties by user
// ID). The sorted order is computed lazily on first read after a write
// and cached as a copy — the underlying stream stays in append order so
// PageEventsSince cursors remain valid — and repeated polling of an
// unchanged stream costs only the copy.
func (s *Store) LikesOfPage(p PageID) []Like {
	sh := s.pageShard(p)
	sh.mu.RLock()
	if cache, ok := sh.pageSorted[p]; ok && len(cache) == len(sh.likesByPage[p]) {
		out := append([]Like(nil), cache...)
		sh.mu.RUnlock()
		return out
	}
	sh.mu.RUnlock()

	sh.mu.Lock()
	cache, ok := sh.pageSorted[p]
	if !ok || len(cache) != len(sh.likesByPage[p]) {
		cache = append([]Like(nil), sh.likesByPage[p]...)
		sortPageLikes(cache)
		sh.pageSorted[p] = cache
	}
	out := append([]Like(nil), cache...)
	sh.mu.Unlock()
	return out
}

// PageEventsSince returns the page's like events appended after cursor
// (a value previously returned by this method; 0 starts from the
// beginning), canonically sorted within the batch, plus the new cursor.
// This is the per-page view of the journal: cursors are plain offsets
// into the append-only stream, so a consumer polling the page (the §3
// honeypot monitor) pays O(new likes) per poll instead of re-reading
// the cumulative stream.
//
// Batches are sorted internally, and for a single-writer page — every
// honeypot page is liked only by its own campaign's deliveries, which
// run on one virtual clock — the concatenation of successive batches is
// globally canonical too.
func (s *Store) PageEventsSince(p PageID, cursor int) ([]LikeEvent, int) {
	sh := s.pageShard(p)
	sh.mu.RLock()
	stream := sh.likesByPage[p]
	if cursor < 0 {
		cursor = 0
	}
	if cursor >= len(stream) {
		sh.mu.RUnlock()
		return nil, cursor
	}
	out := make([]LikeEvent, len(stream)-cursor)
	for i, lk := range stream[cursor:] {
		out[i] = LikeEvent{At: lk.At, User: lk.User, Page: lk.Page, Source: SourceLike}
	}
	sh.mu.RUnlock()
	sortEvents(out)
	return out, cursor + len(out)
}

// PageEventsPage is the bounded form of PageEventsSince: it returns at
// most limit of the page's like events appended after cursor (limit < 1
// means no bound), canonically sorted within the batch, plus the cursor
// that resumes after the last returned event. Because cursors index the
// append-only stream, a like landing mid-pagination — even one with an
// earlier timestamp than events already delivered — only ever extends
// the tail: windows already handed out are immutable, so a paginating
// consumer sees every event exactly once. This is what the HTTP API's
// cursor paging serves; offset paging over the sorted view cannot make
// that guarantee under live writes.
func (s *Store) PageEventsPage(p PageID, cursor, limit int) ([]LikeEvent, int) {
	sh := s.pageShard(p)
	sh.mu.RLock()
	stream := sh.likesByPage[p]
	if cursor < 0 {
		cursor = 0
	}
	if cursor >= len(stream) {
		sh.mu.RUnlock()
		return nil, cursor
	}
	end := len(stream)
	if limit > 0 && cursor+limit < end {
		end = cursor + limit
	}
	out := make([]LikeEvent, end-cursor)
	for i, lk := range stream[cursor:end] {
		out[i] = LikeEvent{At: lk.At, User: lk.User, Page: lk.Page, Source: SourceLike}
	}
	sh.mu.RUnlock()
	sortEvents(out)
	return out, cursor + len(out)
}

// LikeCountOfPage returns the number of likes on a page.
func (s *Store) LikeCountOfPage(p PageID) int {
	sh := s.pageShard(p)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.likesByPage[p])
}

// ActiveLikeCountOfPage returns the page's like count excluding likes
// from terminated accounts — the number a page admin sees after a fraud
// sweep removes fake profiles. The paper's §5 future work calls for
// "longer observation of removed likes"; this is the observable that
// study extension tracks.
func (s *Store) ActiveLikeCountOfPage(p PageID) int {
	sh := s.pageShard(p)
	sh.mu.RLock()
	likes := append([]Like(nil), sh.likesByPage[p]...)
	sh.mu.RUnlock()

	n := 0
	for _, lk := range likes {
		ush := s.userShard(lk.User)
		ush.mu.RLock()
		if u, ok := ush.users[lk.User]; ok && u.Status == StatusActive {
			n++
		}
		ush.mu.RUnlock()
	}
	return n
}

// LikesOfUser returns all likes by the user in like-time order (ties by
// page ID). This is the "pages liked" list the crawler collected per
// liker (§4.4); in the reproduction it is always public, as it
// effectively was via the 2014 profile crawl. Like LikesOfPage, the
// sorted order is computed lazily on first read after a write and
// cached as a copy — the underlying stream stays in append order so
// UserLikesPage cursors remain valid — and the §4 analyses re-reading a
// liker's history pay only the copy.
func (s *Store) LikesOfUser(u UserID) []Like {
	sh := s.userShard(u)
	sh.mu.RLock()
	if cache, ok := sh.userSorted[u]; ok && len(cache) == len(sh.likesByUser[u]) {
		out := append([]Like(nil), cache...)
		sh.mu.RUnlock()
		return out
	}
	sh.mu.RUnlock()

	sh.mu.Lock()
	cache, ok := sh.userSorted[u]
	if !ok || len(cache) != len(sh.likesByUser[u]) {
		cache = append([]Like(nil), sh.likesByUser[u]...)
		sortUserLikes(cache)
		sh.userSorted[u] = cache
	}
	out := append([]Like(nil), cache...)
	sh.mu.Unlock()
	return out
}

// UserLikesPage returns at most limit of the user's likes appended
// after cursor (limit < 1 means no bound), canonically sorted within
// the batch, plus the cursor resuming after the last returned like.
// This is the user-side twin of PageEventsPage: cursors index the
// user's append-only like stream, so a like (or bulk history import)
// landing mid-pagination only ever extends the tail — a paginating
// consumer sees every like exactly once even under live writes, which
// offset paging over the time-sorted view cannot guarantee.
func (s *Store) UserLikesPage(u UserID, cursor, limit int) ([]Like, int) {
	sh := s.userShard(u)
	sh.mu.RLock()
	stream := sh.likesByUser[u]
	if cursor < 0 {
		cursor = 0
	}
	if cursor >= len(stream) {
		sh.mu.RUnlock()
		return nil, cursor
	}
	end := len(stream)
	if limit > 0 && cursor+limit < end {
		end = cursor + limit
	}
	out := append([]Like(nil), stream[cursor:end]...)
	sh.mu.RUnlock()
	sortUserLikes(out)
	return out, cursor + len(out)
}

// FriendsPage returns at most limit friends of the user with IDs at or
// above cursor, ascending, plus the cursor resuming after the last
// returned friend (keyset pagination). Friend lists have no append
// order to expose — the graph stores sorted adjacency — so the stable
// cursor is the ID space itself: entries present when pagination began
// are delivered exactly once regardless of concurrent edge inserts
// (an edge added behind the cursor is simply picked up by a re-crawl,
// like any late write).
func (s *Store) FriendsPage(u UserID, cursor int64, limit int) ([]UserID, int64) {
	s.friendsMu.RLock()
	ns := s.friends.Neighbors(int64(u))
	s.friendsMu.RUnlock()
	i := sort.Search(len(ns), func(k int) bool { return ns[k] >= cursor })
	end := len(ns)
	if limit > 0 && i+limit < end {
		end = i + limit
	}
	out := make([]UserID, end-i)
	for k, n := range ns[i:end] {
		out[k] = UserID(n)
	}
	next := cursor
	if len(out) > 0 {
		next = int64(out[len(out)-1]) + 1
	}
	return out, next
}

// LikeCountOfUser returns the number of pages the user likes.
func (s *Store) LikeCountOfUser(u UserID) int {
	sh := s.userShard(u)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.likesByUser[u])
}

// AddHistory bulk-imports a user's pre-existing like history. The
// events land in the journal (tagged SourceHistory, one batched append
// per call) but update only the user-side index: ambient/job pages
// never need page-side like streams (no analysis reads them), and
// skipping the page index and dedup set keeps multi-million-like
// histories cheap. Callers must not include honeypot pages (enforced)
// and must not repeat pages within or across imports for the same user.
// Concurrent imports for different users proceed on different stripes.
func (s *Store) AddHistory(u UserID, likes []Like) error {
	// Validate all referenced pages first, stripe by stripe, before
	// touching the user shard — no lock nesting, no partial import on a
	// bad page.
	for i := range likes {
		psh := s.pageShard(likes[i].Page)
		psh.mu.RLock()
		pg, ok := psh.pages[likes[i].Page]
		honeypot := ok && pg.Honeypot
		psh.mu.RUnlock()
		if !ok {
			return fmt.Errorf("%w: %d", ErrNoPage, likes[i].Page)
		}
		if honeypot {
			return fmt.Errorf("socialnet: history import may not include honeypot page %d", likes[i].Page)
		}
	}

	sh := s.userShard(u)
	sh.mu.Lock()
	if _, ok := sh.users[u]; !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNoUser, u)
	}
	events := make([]LikeEvent, len(likes))
	for i, lk := range likes {
		lk.User = u
		sh.likesByUser[u] = append(sh.likesByUser[u], lk)
		events[i] = LikeEvent{At: lk.At, User: u, Page: lk.Page, Source: SourceHistory}
	}
	delete(sh.userSorted, u)
	sh.mu.Unlock()

	s.journal.AppendUserBatch(u, events)
	return nil
}

// DeclaredFriendCount returns the friend-list length a profile displays:
// the declared count, floored at the structurally observed degree.
func (s *Store) DeclaredFriendCount(u UserID) int {
	sh := s.userShard(u)
	sh.mu.RLock()
	usr, ok := sh.users[u]
	declared := 0
	if ok {
		declared = usr.DeclaredFriends
	}
	sh.mu.RUnlock()
	if !ok {
		return 0
	}

	s.friendsMu.RLock()
	deg := s.friends.Degree(int64(u))
	s.friendsMu.RUnlock()
	if declared > deg {
		return declared
	}
	return deg
}

// Friend records a mutual friendship (Facebook friendships are
// bidirectional, unlike Twitter follows — see §2).
func (s *Store) Friend(a, b UserID) error {
	if !s.userExists(a) {
		return fmt.Errorf("%w: %d", ErrNoUser, a)
	}
	if !s.userExists(b) {
		return fmt.Errorf("%w: %d", ErrNoUser, b)
	}
	s.friendsMu.Lock()
	defer s.friendsMu.Unlock()
	if s.friends.HasEdge(int64(a), int64(b)) {
		return nil // already friends: idempotent, nothing to journal
	}
	if err := s.friends.AddEdge(int64(a), int64(b)); err != nil {
		return err
	}
	s.logWorld(uint64(a), WorldRecord{Kind: WorldFriend, A: a, B: b})
	return nil
}

func (s *Store) userExists(u UserID) bool {
	sh := s.userShard(u)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.users[u]
	return ok
}

// AreFriends reports whether a and b are friends.
func (s *Store) AreFriends(a, b UserID) bool {
	s.friendsMu.RLock()
	defer s.friendsMu.RUnlock()
	return s.friends.HasEdge(int64(a), int64(b))
}

// FriendsOf returns the user's friend list regardless of privacy; callers
// exposing data externally must consult FriendsVisible first.
func (s *Store) FriendsOf(u UserID) []UserID {
	s.friendsMu.RLock()
	ns := s.friends.Neighbors(int64(u))
	s.friendsMu.RUnlock()
	out := make([]UserID, len(ns))
	for i, n := range ns {
		out[i] = UserID(n)
	}
	return out
}

// FriendCount returns the user's number of friends.
func (s *Store) FriendCount(u UserID) int {
	s.friendsMu.RLock()
	defer s.friendsMu.RUnlock()
	return s.friends.Degree(int64(u))
}

// FriendsVisible reports whether the user's friend list is public.
func (s *Store) FriendsVisible(u UserID) bool {
	sh := s.userShard(u)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	usr, ok := sh.users[u]
	return ok && usr.FriendsPublic
}

// FriendGraph returns a snapshot copy of the whole friendship graph.
// Analysis code uses it as the "base" graph for 2-hop closures.
func (s *Store) FriendGraph() *graph.Undirected {
	s.friendsMu.RLock()
	defer s.friendsMu.RUnlock()
	return s.friends.Clone()
}

// Terminate marks an account terminated (fraud sweep). Terminated
// accounts keep their historical likes — the paper counted terminated
// likers a month later, implying likes remained attributable.
func (s *Store) Terminate(u UserID) error {
	sh := s.userShard(u)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	usr, ok := sh.users[u]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoUser, u)
	}
	usr.Status = StatusTerminated
	s.logWorld(uint64(u), WorldRecord{Kind: WorldStatus, A: u, Status: StatusTerminated})
	return nil
}

// Directory returns the searchable-user directory in ascending ID
// order, mirroring Facebook's public directory from which the paper's
// baseline sample of 2000 users was drawn. Like every other read
// accessor the order is canonical: a serial fill appends IDs in
// ascending order anyway, and sorting keeps the directory — and
// everything sampled from it — independent of AddUser timing.
func (s *Store) Directory() []UserID {
	s.dirMu.RLock()
	out := append([]UserID(nil), s.directory...)
	s.dirMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UsersWhere returns IDs of users matching the predicate, ascending.
// The predicate runs under a shard read lock; it must not call back into
// the store.
func (s *Store) UsersWhere(pred func(*User) bool) []UserID {
	var out []UserID
	for i := range s.userShards {
		sh := &s.userShards[i]
		sh.mu.RLock()
		for id, u := range sh.users {
			if pred(u) {
				out = append(out, id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetFriendsPublic updates the friend-list visibility of a user.
func (s *Store) SetFriendsPublic(u UserID, public bool) error {
	sh := s.userShard(u)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	usr, ok := sh.users[u]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoUser, u)
	}
	usr.FriendsPublic = public
	s.logWorld(uint64(u), WorldRecord{Kind: WorldFriendsVis, A: u, Visible: public})
	return nil
}
