package socialnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
)

// Store is the concurrency-safe world state. A single Store backs the
// platform, the farms, the honeypot monitor, and the HTTP API.
type Store struct {
	mu sync.RWMutex

	users map[UserID]*User
	pages map[PageID]*Page

	nextUser UserID
	nextPage PageID

	friends *graph.Undirected

	likesByPage map[PageID][]Like
	likesByUser map[UserID][]Like
	likeSet     map[likeKey]struct{}

	directory []UserID // searchable users, insertion order
}

type likeKey struct {
	u UserID
	p PageID
}

// Errors returned by Store operations.
var (
	ErrNoUser        = errors.New("socialnet: no such user")
	ErrNoPage        = errors.New("socialnet: no such page")
	ErrDuplicateLike = errors.New("socialnet: duplicate like")
	ErrTerminated    = errors.New("socialnet: account terminated")
)

// NewStore returns an empty world.
func NewStore() *Store {
	return &Store{
		users:       make(map[UserID]*User),
		pages:       make(map[PageID]*Page),
		friends:     graph.NewUndirected(),
		likesByPage: make(map[PageID][]Like),
		likesByUser: make(map[UserID][]Like),
		likeSet:     make(map[likeKey]struct{}),
		nextUser:    1,
		nextPage:    1,
	}
}

// AddUser inserts a user, assigning its ID. The input is copied.
func (s *Store) AddUser(u User) UserID {
	s.mu.Lock()
	defer s.mu.Unlock()
	u.ID = s.nextUser
	s.nextUser++
	s.users[u.ID] = &u
	s.friends.AddNode(int64(u.ID))
	if u.Searchable {
		s.directory = append(s.directory, u.ID)
	}
	return u.ID
}

// User returns a copy of the user record.
func (s *Store) User(id UserID) (User, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u, ok := s.users[id]
	if !ok {
		return User{}, fmt.Errorf("%w: %d", ErrNoUser, id)
	}
	return *u, nil
}

// NumUsers returns the number of users.
func (s *Store) NumUsers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.users)
}

// AddPage inserts a page, assigning its ID.
func (s *Store) AddPage(p Page) (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.Owner != 0 {
		if _, ok := s.users[p.Owner]; !ok {
			return 0, fmt.Errorf("%w: page owner %d", ErrNoUser, p.Owner)
		}
	}
	p.ID = s.nextPage
	s.nextPage++
	s.pages[p.ID] = &p
	return p.ID, nil
}

// Page returns a copy of the page record.
func (s *Store) Page(id PageID) (Page, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pages[id]
	if !ok {
		return Page{}, fmt.Errorf("%w: %d", ErrNoPage, id)
	}
	return *p, nil
}

// NumPages returns the number of pages.
func (s *Store) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// Pages returns all page IDs in ascending order.
func (s *Store) Pages() []PageID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]PageID, 0, len(s.pages))
	for id := range s.pages {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddLike records user liking page at the given instant. Terminated
// accounts cannot like; duplicate likes return ErrDuplicateLike.
func (s *Store) AddLike(u UserID, p PageID, at time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	usr, ok := s.users[u]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoUser, u)
	}
	if usr.Status == StatusTerminated {
		return fmt.Errorf("%w: user %d", ErrTerminated, u)
	}
	if _, ok := s.pages[p]; !ok {
		return fmt.Errorf("%w: %d", ErrNoPage, p)
	}
	k := likeKey{u, p}
	if _, dup := s.likeSet[k]; dup {
		return fmt.Errorf("%w: user %d page %d", ErrDuplicateLike, u, p)
	}
	s.likeSet[k] = struct{}{}
	lk := Like{User: u, Page: p, At: at}
	s.likesByPage[p] = append(s.likesByPage[p], lk)
	s.likesByUser[u] = append(s.likesByUser[u], lk)
	return nil
}

// Likes reports whether user u likes page p.
func (s *Store) Likes(u UserID, p PageID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.likeSet[likeKey{u, p}]
	return ok
}

// LikesOfPage returns the page's likes in like-time order.
func (s *Store) LikesOfPage(p PageID) []Like {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := append([]Like(nil), s.likesByPage[p]...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// LikeCountOfPage returns the number of likes on a page.
func (s *Store) LikeCountOfPage(p PageID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.likesByPage[p])
}

// ActiveLikeCountOfPage returns the page's like count excluding likes
// from terminated accounts — the number a page admin sees after a fraud
// sweep removes fake profiles. The paper's §5 future work calls for
// "longer observation of removed likes"; this is the observable that
// study extension tracks.
func (s *Store) ActiveLikeCountOfPage(p PageID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, lk := range s.likesByPage[p] {
		if u, ok := s.users[lk.User]; ok && u.Status == StatusActive {
			n++
		}
	}
	return n
}

// LikesOfUser returns all likes by the user in like-time order. This is
// the "pages liked" list the crawler collected per liker (§4.4); in the
// reproduction it is always public, as it effectively was via the 2014
// profile crawl.
func (s *Store) LikesOfUser(u UserID) []Like {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := append([]Like(nil), s.likesByUser[u]...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// LikeCountOfUser returns the number of pages the user likes.
func (s *Store) LikeCountOfUser(u UserID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.likesByUser[u])
}

// AddHistory bulk-imports a user's pre-existing like history. Unlike
// AddLike it updates only the user-side index: ambient/job pages never
// need page-side like streams (no analysis reads them), and skipping the
// page index and dedup set keeps multi-million-like histories cheap.
// Callers must not include honeypot pages (enforced) and must not repeat
// pages within or across imports for the same user.
func (s *Store) AddHistory(u UserID, likes []Like) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[u]; !ok {
		return fmt.Errorf("%w: %d", ErrNoUser, u)
	}
	for _, lk := range likes {
		pg, ok := s.pages[lk.Page]
		if !ok {
			return fmt.Errorf("%w: %d", ErrNoPage, lk.Page)
		}
		if pg.Honeypot {
			return fmt.Errorf("socialnet: history import may not include honeypot page %d", lk.Page)
		}
		lk.User = u
		s.likesByUser[u] = append(s.likesByUser[u], lk)
	}
	return nil
}

// DeclaredFriendCount returns the friend-list length a profile displays:
// the declared count, floored at the structurally observed degree.
func (s *Store) DeclaredFriendCount(u UserID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	usr, ok := s.users[u]
	if !ok {
		return 0
	}
	deg := s.friends.Degree(int64(u))
	if usr.DeclaredFriends > deg {
		return usr.DeclaredFriends
	}
	return deg
}

// Friend records a mutual friendship (Facebook friendships are
// bidirectional, unlike Twitter follows — see §2).
func (s *Store) Friend(a, b UserID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[a]; !ok {
		return fmt.Errorf("%w: %d", ErrNoUser, a)
	}
	if _, ok := s.users[b]; !ok {
		return fmt.Errorf("%w: %d", ErrNoUser, b)
	}
	return s.friends.AddEdge(int64(a), int64(b))
}

// AreFriends reports whether a and b are friends.
func (s *Store) AreFriends(a, b UserID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.friends.HasEdge(int64(a), int64(b))
}

// FriendsOf returns the user's friend list regardless of privacy; callers
// exposing data externally must consult FriendsVisible first.
func (s *Store) FriendsOf(u UserID) []UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ns := s.friends.Neighbors(int64(u))
	out := make([]UserID, len(ns))
	for i, n := range ns {
		out[i] = UserID(n)
	}
	return out
}

// FriendCount returns the user's number of friends.
func (s *Store) FriendCount(u UserID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.friends.Degree(int64(u))
}

// FriendsVisible reports whether the user's friend list is public.
func (s *Store) FriendsVisible(u UserID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	usr, ok := s.users[u]
	return ok && usr.FriendsPublic
}

// FriendGraph returns a snapshot copy of the whole friendship graph.
// Analysis code uses it as the "base" graph for 2-hop closures.
func (s *Store) FriendGraph() *graph.Undirected {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.friends.Clone()
}

// Terminate marks an account terminated (fraud sweep). Terminated
// accounts keep their historical likes — the paper counted terminated
// likers a month later, implying likes remained attributable.
func (s *Store) Terminate(u UserID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	usr, ok := s.users[u]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoUser, u)
	}
	usr.Status = StatusTerminated
	return nil
}

// Directory returns the searchable-user directory (insertion order copy),
// mirroring Facebook's public directory from which the paper's baseline
// sample of 2000 users was drawn.
func (s *Store) Directory() []UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]UserID(nil), s.directory...)
}

// UsersWhere returns IDs of users matching the predicate, ascending.
// The predicate runs under the read lock; it must not call back into the
// store.
func (s *Store) UsersWhere(pred func(*User) bool) []UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []UserID
	for id, u := range s.users {
		if pred(u) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetFriendsPublic updates the friend-list visibility of a user.
func (s *Store) SetFriendsPublic(u UserID, public bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	usr, ok := s.users[u]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoUser, u)
	}
	usr.FriendsPublic = public
	return nil
}
