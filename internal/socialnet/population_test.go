package socialnet

import (
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func smallSpec() PopulationSpec {
	s := DefaultPopulationSpec()
	s.NumUsers = 600
	s.NumAmbientPages = 500
	s.LikeMedian = 34
	return s
}

func TestGeneratePopulationBasics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	st := NewStore()
	pop, err := GeneratePopulation(r, st, smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Users) != 600 {
		t.Fatalf("users = %d", len(pop.Users))
	}
	if len(pop.AmbientPages) != 500 {
		t.Fatalf("pages = %d", len(pop.AmbientPages))
	}
	if st.NumUsers() != 600 || st.NumPages() != 500 {
		t.Fatalf("store sizes %d/%d", st.NumUsers(), st.NumPages())
	}
}

func TestPopulationLikeMedianNearTarget(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	st := NewStore()
	pop, err := GeneratePopulation(r, st, smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, len(pop.Users))
	for i, u := range pop.Users {
		counts[i] = float64(st.LikeCountOfUser(u))
	}
	med, err := stats.Median(counts)
	if err != nil {
		t.Fatal(err)
	}
	// Paper baseline: median 34 page likes per regular user.
	if med < 22 || med > 50 {
		t.Fatalf("organic like median = %v, want ≈34", med)
	}
}

func TestPopulationFriendGraphConnected(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	st := NewStore()
	pop, err := GeneratePopulation(r, st, smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	g := st.FriendGraph()
	if f := g.LargestComponentFraction(); f < 0.99 {
		t.Fatalf("organic graph should be connected: %v", f)
	}
	// BA graph: every user has at least m friends.
	for _, u := range pop.Users[:50] {
		if st.FriendCount(u) < 1 {
			t.Fatalf("user %d isolated", u)
		}
	}
}

func TestPopulationDemographicsMatchProfile(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	st := NewStore()
	spec := smallSpec()
	spec.NumUsers = 3000
	pop, err := GeneratePopulation(r, st, spec)
	if err != nil {
		t.Fatal(err)
	}
	female, young := 0, 0
	for _, uid := range pop.Users {
		u, _ := st.User(uid)
		if u.Gender == GenderFemale {
			female++
		}
		if u.Age == Age13to17 || u.Age == Age18to24 {
			young++
		}
	}
	ff := float64(female) / float64(len(pop.Users))
	if ff < 0.42 || ff > 0.50 {
		t.Fatalf("female fraction = %v, want ≈0.46", ff)
	}
	yf := float64(young) / float64(len(pop.Users))
	if yf < 0.42 || yf > 0.53 {
		t.Fatalf("under-25 fraction = %v, want ≈0.472", yf)
	}
}

func TestPopulationDeterministicGivenSeed(t *testing.T) {
	run := func() []int {
		r := rand.New(rand.NewSource(123))
		st := NewStore()
		pop, err := GeneratePopulation(r, st, smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, len(pop.Users))
		for i, u := range pop.Users {
			out[i] = st.LikeCountOfUser(u)*1000 + st.FriendCount(u)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic population at user %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSampleAmbientPagesDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	st := NewStore()
	pop, err := GeneratePopulation(r, st, smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 10, 150, 400, 499, 500, 600} {
		got := pop.SampleAmbientPages(r, k)
		want := k
		if k > len(pop.AmbientPages) {
			want = len(pop.AmbientPages)
		}
		if len(got) != want {
			t.Fatalf("k=%d returned %d pages, want %d", k, len(got), want)
		}
		seen := map[PageID]bool{}
		for _, p := range got {
			if seen[p] {
				t.Fatalf("k=%d returned duplicate page %d", k, p)
			}
			seen[p] = true
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := func(mut func(*PopulationSpec)) PopulationSpec {
		s := smallSpec()
		mut(&s)
		return s
	}
	cases := []PopulationSpec{
		bad(func(s *PopulationSpec) { s.NumUsers = 5 }),
		bad(func(s *PopulationSpec) { s.NumAmbientPages = 2 }),
		bad(func(s *PopulationSpec) { s.CountryMix = nil }),
		bad(func(s *PopulationSpec) { s.Profile = nil }),
		bad(func(s *PopulationSpec) { s.Profile = &Profile{FemaleFrac: 2} }),
		bad(func(s *PopulationSpec) { s.FriendAttachM = 0 }),
		bad(func(s *PopulationSpec) { s.LikeMedian = 0 }),
		bad(func(s *PopulationSpec) { s.LikeSigma = -1 }),
		bad(func(s *PopulationSpec) { s.PageZipfS = 0 }),
		bad(func(s *PopulationSpec) { s.SearchableFrac = 1.5 }),
		bad(func(s *PopulationSpec) { s.FriendsPublicFrac = -0.1 }),
	}
	r := rand.New(rand.NewSource(1))
	for i, spec := range cases {
		if _, err := GeneratePopulation(r, NewStore(), spec); err == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
	}
}

func TestProfileSampling(t *testing.T) {
	p := YoungMaleProfile(0.07)
	r := rand.New(rand.NewSource(2))
	male, young := 0, 0
	n := 5000
	for i := 0; i < n; i++ {
		if p.SampleGender(r) == GenderMale {
			male++
		}
		a := p.SampleAge(r)
		if a == Age13to17 || a == Age18to24 {
			young++
		}
	}
	if f := float64(male) / float64(n); f < 0.90 || f > 0.96 {
		t.Fatalf("male fraction = %v, want ≈0.93", f)
	}
	if f := float64(young) / float64(n); f < 0.92 {
		t.Fatalf("young fraction = %v, want ≥0.92", f)
	}
}

func TestGlobalDistribution(t *testing.T) {
	d := GlobalAgeDistribution()
	if len(d) != 6 {
		t.Fatalf("len = %d", len(d))
	}
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("sum = %v, want 1", sum)
	}
	// Largest bracket is 18-24 per Table 2.
	for i, v := range d {
		if i != 1 && v >= d[1] {
			t.Fatalf("18-24 should dominate: %v", d)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	ok := GlobalFacebookProfile()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Profile{FemaleFrac: -1, AgeWeights: [6]float64{1, 1, 1, 1, 1, 1}}).Validate(); err == nil {
		t.Fatal("negative female frac should error")
	}
	if err := (&Profile{FemaleFrac: 0.5, AgeWeights: [6]float64{-1, 1, 1, 1, 1, 1}}).Validate(); err == nil {
		t.Fatal("negative weight should error")
	}
	if err := (&Profile{FemaleFrac: 0.5}).Validate(); err == nil {
		t.Fatal("zero weights should error")
	}
}

func TestTownForDeterministicCountryPrefix(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	town := TownFor(r, CountryEgypt)
	if len(town) == 0 || town[:5] != "Egypt" {
		t.Fatalf("town = %q", town)
	}
}
