package socialnet

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

func populatedStore(t *testing.T) (*Store, UserID, PageID) {
	t.Helper()
	r := rand.New(rand.NewSource(5))
	st := NewStore()
	spec := DefaultPopulationSpec()
	spec.NumUsers = 150
	spec.NumAmbientPages = 200
	pop, err := GeneratePopulation(r, st, spec)
	if err != nil {
		t.Fatal(err)
	}
	// A honeypot with indexed likes plus a bulk history import.
	page, err := st.AddPage(Page{Name: "hp", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	liker := pop.Users[0]
	if err := st.AddLike(liker, page, time.Date(2014, 3, 12, 4, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	extra := st.AddUser(User{Country: CountryTurkey, Kind: KindFarmBot, Operator: "SF"})
	hist := []Like{
		{Page: pop.AmbientPages[0], At: time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)},
		{Page: pop.AmbientPages[1], At: time.Date(2013, 7, 1, 0, 0, 0, 0, time.UTC)},
	}
	if err := st.AddHistory(extra, hist); err != nil {
		t.Fatal(err)
	}
	if err := st.Terminate(extra); err != nil {
		t.Fatal(err)
	}
	return st, liker, page
}

func TestSnapshotRoundTrip(t *testing.T) {
	st, liker, page := populatedStore(t)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumUsers() != st.NumUsers() || got.NumPages() != st.NumPages() {
		t.Fatalf("sizes: %d/%d vs %d/%d", got.NumUsers(), got.NumPages(), st.NumUsers(), st.NumPages())
	}
	// Indexed like survives with page-side stream.
	if !got.Likes(liker, page) {
		t.Fatal("indexed like lost")
	}
	if got.LikeCountOfPage(page) != st.LikeCountOfPage(page) {
		t.Fatal("page like stream lost")
	}
	// Per-user like counts identical (incl. histories).
	for _, uid := range st.Directory()[:20] {
		if got.LikeCountOfUser(uid) != st.LikeCountOfUser(uid) {
			t.Fatalf("user %d like count %d vs %d", uid, got.LikeCountOfUser(uid), st.LikeCountOfUser(uid))
		}
	}
	// Friendships identical.
	a := st.FriendGraph()
	b := got.FriendGraph()
	if a.NumEdges() != b.NumEdges() || a.NumNodes() != b.NumNodes() {
		t.Fatalf("graph %d/%d vs %d/%d", a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	// Directory identical.
	da, db := st.Directory(), got.Directory()
	if len(da) != len(db) {
		t.Fatalf("directory %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatal("directory order changed")
		}
	}
	// Termination status survives.
	terminated := st.UsersWhere(func(u *User) bool { return u.Status == StatusTerminated })
	terminated2 := got.UsersWhere(func(u *User) bool { return u.Status == StatusTerminated })
	if len(terminated) != 1 || len(terminated2) != 1 || terminated[0] != terminated2[0] {
		t.Fatalf("terminated: %v vs %v", terminated, terminated2)
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	st, _, _ := populatedStore(t)
	var b1, b2 bytes.Buffer
	if err := st.WriteSnapshot(&b1); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("snapshots of the same store differ")
	}
}

func TestSnapshotIDsContinue(t *testing.T) {
	st, _, _ := populatedStore(t)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// New entities must not collide with existing IDs.
	nu := got.AddUser(User{Country: CountryUSA})
	if _, err := st.User(nu); err == nil {
		t.Fatal("new user ID collides with pre-snapshot ID space")
	}
	np, err := got.AddPage(Page{Name: "new"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Page(np); err == nil {
		t.Fatal("new page ID collides")
	}
}

func TestReadSnapshotGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewBufferString("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
}
