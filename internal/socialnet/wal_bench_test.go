package socialnet

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// benchWorld builds a store with enough (user, page) pairs for b.N
// unique likes and returns a like generator.
func benchWorld(b *testing.B, st *Store) func(i int) (UserID, PageID, time.Time) {
	b.Helper()
	const users = 1024
	pages := b.N/users + 1
	uids := make([]UserID, users)
	for i := range uids {
		uids[i] = st.AddUser(User{Country: "USA"})
	}
	pids := make([]PageID, pages)
	for i := range pids {
		pid, err := st.AddPage(Page{Name: "p"})
		if err != nil {
			b.Fatal(err)
		}
		pids[i] = pid
	}
	t0 := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)
	return func(i int) (UserID, PageID, time.Time) {
		return uids[i%users], pids[i/users], t0.Add(time.Duration(i) * time.Second)
	}
}

// BenchmarkJournalMemIngest is the baseline: like ingest into the
// default in-memory store (journal with no disk backend).
func BenchmarkJournalMemIngest(b *testing.B) {
	st := NewStore()
	next := benchWorld(b, st)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, p, at := next(i)
		if err := st.AddLike(u, p, at); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalDiskIngest measures the same ingest through the disk
// WAL at several batched-fsync settings. SyncEvery=1 is the fully
// durable (fsync per like) bound; larger batches amortize the fsync
// until the write path is again dominated by the in-memory indexes.
func BenchmarkJournalDiskIngest(b *testing.B) {
	for _, syncEvery := range []int{1, 64, 1024, 8192} {
		b.Run(fmt.Sprintf("syncEvery=%d", syncEvery), func(b *testing.B) {
			dir := b.TempDir()
			seed := NewStore()
			if err := seed.Checkpoint(dir); err != nil {
				b.Fatal(err)
			}
			st, _, err := OpenDurable(dir, WALOptions{SyncEvery: syncEvery, SyncInterval: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			next := benchWorld(b, st)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u, p, at := next(i)
				if err := st.AddLike(u, p, at); err != nil {
					b.Fatal(err)
				}
			}
			if err := st.Sync(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkJournalDiskIngestConcurrent is the group-commit benchmark:
// many goroutines appending at once. At SyncEvery=1 every like is
// individually durable before AddLike returns, but the committer
// coalesces concurrently-arriving likes into one fsync, so throughput
// approaches the batched settings instead of paying one fsync per like
// the way a serial caller must.
func BenchmarkJournalDiskIngestConcurrent(b *testing.B) {
	for _, syncEvery := range []int{1, 8192} {
		b.Run(fmt.Sprintf("syncEvery=%d", syncEvery), func(b *testing.B) {
			dir := b.TempDir()
			seed := NewStore()
			if err := seed.Checkpoint(dir); err != nil {
				b.Fatal(err)
			}
			st, _, err := OpenDurable(dir, WALOptions{SyncEvery: syncEvery, SyncInterval: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			next := benchWorld(b, st)
			var idx atomic.Int64
			// GOMAXPROCS may be 1 in CI; group commit needs concurrent
			// arrivals, which SetParallelism provides regardless.
			b.SetParallelism(32)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					u, p, at := next(int(idx.Add(1) - 1))
					if err := st.AddLike(u, p, at); err != nil {
						b.Fatal(err)
					}
				}
			})
			if err := st.Sync(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkDurableReopen measures recovery cost: open a checkpointed
// world with a WAL tail of b.N likes (snapshot + tail replay). The
// world itself is built AFTER the durable store is opened — user and
// page creations ride the WAL like everything else now, so nothing has
// to precede the first checkpoint.
func BenchmarkDurableReopen(b *testing.B) {
	dir := b.TempDir()
	seed := NewStore()
	if err := seed.Checkpoint(dir); err != nil {
		b.Fatal(err)
	}
	st, _, err := OpenDurable(dir, WALOptions{SyncInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	next := benchWorld(b, st)
	for i := 0; i < b.N; i++ {
		u, p, at := next(i)
		if err := st.AddLike(u, p, at); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	re, _, err := OpenDurable(dir, WALOptions{SyncInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	if got := re.Journal().Len(); got != b.N {
		b.Fatalf("recovered %d of %d events", got, b.N)
	}
	re.Close()
}
