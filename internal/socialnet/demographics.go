package socialnet

import (
	"fmt"
	"math/rand"

	"repro/internal/stats"
)

// Profile describes the demographic mix of a user population: the
// fraction of female profiles and the age-bracket weights in Table 2
// order. Campaign audiences, farm account pools, and the organic
// population are all drawn from Profiles.
type Profile struct {
	FemaleFrac float64
	AgeWeights [6]float64
}

// Validate checks the profile's ranges.
func (p *Profile) Validate() error {
	if p.FemaleFrac < 0 || p.FemaleFrac > 1 {
		return fmt.Errorf("socialnet: female fraction %v out of [0,1]", p.FemaleFrac)
	}
	sum := 0.0
	for i, w := range p.AgeWeights {
		if w < 0 {
			return fmt.Errorf("socialnet: negative age weight %v at bracket %s", w, AgeBracket(i))
		}
		sum += w
	}
	if sum == 0 {
		return fmt.Errorf("socialnet: all age weights zero")
	}
	return nil
}

// SampleGender draws a gender from the profile.
func (p *Profile) SampleGender(r *rand.Rand) Gender {
	if stats.Bernoulli(r, p.FemaleFrac) {
		return GenderFemale
	}
	return GenderMale
}

// SampleAge draws an age bracket from the profile.
func (p *Profile) SampleAge(r *rand.Rand) AgeBracket {
	ws := p.AgeWeights
	total := 0.0
	for _, w := range ws {
		total += w
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range ws {
		acc += w
		if u < acc {
			return AgeBracket(i)
		}
	}
	return Age55plus
}

// AgeFractions returns the normalized age weights.
func (p *Profile) AgeFractions() []float64 {
	out := make([]float64, len(p.AgeWeights))
	sum := 0.0
	for _, w := range p.AgeWeights {
		sum += w
	}
	if sum == 0 {
		return out
	}
	for i, w := range p.AgeWeights {
		out[i] = w / sum
	}
	return out
}

// GlobalFacebookProfile is the reference demographic mix of the overall
// Facebook population from the last row of Table 2: 46% female, age
// distribution {14.9, 32.3, 26.6, 13.2, 7.2, 5.9}%. The paper's KL
// column is computed against this distribution.
func GlobalFacebookProfile() *Profile {
	return &Profile{
		FemaleFrac: 0.46,
		AgeWeights: [6]float64{14.9, 32.3, 26.6, 13.2, 7.2, 5.9},
	}
}

// GlobalAgeDistribution returns the reference age fractions in Table 2
// order, for KL computations.
func GlobalAgeDistribution() []float64 {
	return GlobalFacebookProfile().AgeFractions()
}

// YoungMaleProfile models the audience the paper's FB-IND / FB-EGY /
// FB-ALL campaigns attracted: heavily male (6–18% female) and heavily
// 13–24 (≥86% under 25).
func YoungMaleProfile(femaleFrac float64) *Profile {
	return &Profile{
		FemaleFrac: femaleFrac,
		AgeWeights: [6]float64{52, 43, 2.3, 1, 0.5, 0.5},
	}
}

// Countries used across the study. "Other" absorbs the long tail.
const (
	CountryUSA    = "USA"
	CountryFrance = "France"
	CountryIndia  = "India"
	CountryEgypt  = "Egypt"
	CountryTurkey = "Turkey"
	CountryOther  = "Other"
)

// StudyCountries returns the country labels of Figure 1 in legend order.
func StudyCountries() []string {
	return []string{CountryUSA, CountryIndia, CountryEgypt, CountryTurkey, CountryFrance, CountryOther}
}

// TownFor returns a deterministic pseudo-town for a country, giving
// profiles home/current town attributes like Facebook's report tool.
func TownFor(r *rand.Rand, country string) string {
	return fmt.Sprintf("%s-town-%02d", country, r.Intn(20))
}
