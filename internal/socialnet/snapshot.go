package socialnet

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// snapshot is the gob wire form of a Store. Indexed likes (those with
// page-side streams, i.e. everything added via AddLike) are kept apart
// from bulk histories so both indexes rebuild exactly.
type snapshot struct {
	Version     int
	Users       []User
	Pages       []Page
	Indexed     []Like
	Histories   []userHistory
	Friendships [][2]int64
	NextUser    UserID
	NextPage    PageID
}

// userHistory is one user's non-indexed like history. A sorted slice
// (not a map) keeps the gob encoding byte-deterministic.
type userHistory struct {
	User  UserID
	Likes []Like
}

// snapshotVersion 2: sharded store, slice-form histories, canonical
// like ordering.
const snapshotVersion = 2

// WriteSnapshot serializes the world. The snapshot is deterministic —
// same store contents, same bytes, regardless of shard count or fill
// concurrency — and point-in-time consistent even with writers active:
// it read-locks every stripe (plus the graph and directory locks) for
// the duration of the copy, so a mid-flight AddLike can never appear
// in one index but not the other. Lock acquisition is in a fixed total
// order and writers never hold two locks at once, so this cannot
// deadlock.
func (s *Store) WriteSnapshot(w io.Writer) error {
	for i := range s.userShards {
		s.userShards[i].mu.RLock()
		defer s.userShards[i].mu.RUnlock()
	}
	for i := range s.pageShards {
		s.pageShards[i].mu.RLock()
		defer s.pageShards[i].mu.RUnlock()
	}
	s.friendsMu.RLock()
	defer s.friendsMu.RUnlock()
	s.dirMu.RLock()
	defer s.dirMu.RUnlock()

	snap := snapshot{
		Version:  snapshotVersion,
		NextUser: UserID(s.nextUser.Load()),
		NextPage: PageID(s.nextPage.Load()),
	}

	var userIDs []UserID
	for i := range s.userShards {
		for id := range s.userShards[i].users {
			userIDs = append(userIDs, id)
		}
	}
	sort.Slice(userIDs, func(i, j int) bool { return userIDs[i] < userIDs[j] })
	for _, id := range userIDs {
		snap.Users = append(snap.Users, *s.userShard(id).users[id])
	}

	var pageIDs []PageID
	for i := range s.pageShards {
		for id := range s.pageShards[i].pages {
			pageIDs = append(pageIDs, id)
		}
	}
	sort.Slice(pageIDs, func(i, j int) bool { return pageIDs[i] < pageIDs[j] })
	for _, id := range pageIDs {
		snap.Pages = append(snap.Pages, *s.pageShard(id).pages[id])
	}

	// Collect page-side streams into mutable copies (the append-only
	// stream must not be sorted in place — cursors hold offsets into
	// it), remembering which (user, page) pairs the page side has: an
	// AddLike caught between its user-side commit and its page-side
	// append (it holds no lock at that point) is in likeSet but not yet
	// in likesByPage, and is recovered from the user side below.
	byPage := make(map[PageID][]Like, len(pageIDs))
	pageSeen := make(map[likeKey]struct{})
	for _, pid := range pageIDs {
		likes := append([]Like(nil), s.pageShard(pid).likesByPage[pid]...)
		byPage[pid] = likes
		for _, lk := range likes {
			pageSeen[likeKey{lk.User, lk.Page}] = struct{}{}
		}
	}

	// Histories: user-side likes that are not in the page-side index,
	// in canonical per-user order. Indexed likes missing page-side are
	// the mid-flight stragglers: fold them back into their page stream.
	for _, uid := range userIDs {
		sh := s.userShard(uid)
		var hist []Like
		for _, lk := range sh.likesByUser[uid] {
			k := likeKey{lk.User, lk.Page}
			if _, indexed := sh.likeSet[k]; !indexed {
				hist = append(hist, lk)
				continue
			}
			if _, seen := pageSeen[k]; !seen {
				byPage[lk.Page] = append(byPage[lk.Page], lk)
				pageSeen[k] = struct{}{}
			}
		}
		if len(hist) > 0 {
			sortUserLikes(hist)
			snap.Histories = append(snap.Histories, userHistory{User: uid, Likes: hist})
		}
	}
	for _, pid := range pageIDs {
		likes := byPage[pid]
		sortPageLikes(likes)
		snap.Indexed = append(snap.Indexed, likes...)
	}

	snap.Friendships = s.friends.Edges()
	return gob.NewEncoder(w).Encode(&snap)
}

// ReadSnapshot reconstructs a Store from a snapshot stream.
func ReadSnapshot(r io.Reader) (*Store, error) {
	return ReadSnapshotSharded(r, DefaultShards)
}

// ReadSnapshotSharded is ReadSnapshot with an explicit lock-stripe
// count: a durable store must reopen with the shard count its WAL was
// written under, so the manifest's per-shard offsets keep indexing the
// same streams.
func ReadSnapshotSharded(r io.Reader, shards int) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("socialnet: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("socialnet: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	st := NewShardedStore(shards)
	st.nextUser.Store(int64(snap.NextUser))
	st.nextPage.Store(int64(snap.NextPage))
	for i := range snap.Users {
		u := snap.Users[i]
		sh := st.userShard(u.ID)
		sh.users[u.ID] = &u
		st.friends.AddNode(int64(u.ID))
		if u.Searchable {
			st.directory = append(st.directory, u.ID)
		}
	}
	for i := range snap.Pages {
		p := snap.Pages[i]
		st.pageShard(p.ID).pages[p.ID] = &p
	}
	for _, lk := range snap.Indexed {
		ush := st.userShard(lk.User)
		if _, ok := ush.users[lk.User]; !ok {
			return nil, fmt.Errorf("socialnet: snapshot like references missing user %d", lk.User)
		}
		psh := st.pageShard(lk.Page)
		if _, ok := psh.pages[lk.Page]; !ok {
			return nil, fmt.Errorf("socialnet: snapshot like references missing page %d", lk.Page)
		}
		k := likeKey{lk.User, lk.Page}
		if _, dup := ush.likeSet[k]; dup {
			return nil, fmt.Errorf("socialnet: snapshot duplicate like %v", k)
		}
		ush.likeSet[k] = struct{}{}
		psh.likesByPage[lk.Page] = append(psh.likesByPage[lk.Page], lk)
		ush.likesByUser[lk.User] = append(ush.likesByUser[lk.User], lk)
		st.journal.Append(LikeEvent{At: lk.At, User: lk.User, Page: lk.Page, Source: SourceLike})
	}
	for _, uh := range snap.Histories {
		ush := st.userShard(uh.User)
		if _, ok := ush.users[uh.User]; !ok {
			return nil, fmt.Errorf("socialnet: snapshot history references missing user %d", uh.User)
		}
		ush.likesByUser[uh.User] = append(ush.likesByUser[uh.User], uh.Likes...)
		events := make([]LikeEvent, len(uh.Likes))
		for i, lk := range uh.Likes {
			events[i] = LikeEvent{At: lk.At, User: uh.User, Page: lk.Page, Source: SourceHistory}
		}
		st.journal.AppendUserBatch(uh.User, events)
	}
	for _, e := range snap.Friendships {
		if err := st.friends.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("socialnet: snapshot friendship: %w", err)
		}
	}
	return st, nil
}
