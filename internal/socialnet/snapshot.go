package socialnet

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// snapshot is the gob wire form of a Store. Indexed likes (those with
// page-side streams, i.e. everything added via AddLike) are kept apart
// from bulk histories so both indexes rebuild exactly.
type snapshot struct {
	Version     int
	Users       []User
	Pages       []Page
	Indexed     []Like
	Histories   map[UserID][]Like
	Friendships [][2]int64
	NextUser    UserID
	NextPage    PageID
}

const snapshotVersion = 1

// WriteSnapshot serializes the world. The snapshot is deterministic:
// same store contents, same bytes.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()

	snap := snapshot{
		Version:   snapshotVersion,
		NextUser:  s.nextUser,
		NextPage:  s.nextPage,
		Histories: make(map[UserID][]Like),
	}
	userIDs := make([]UserID, 0, len(s.users))
	for id := range s.users {
		userIDs = append(userIDs, id)
	}
	sort.Slice(userIDs, func(i, j int) bool { return userIDs[i] < userIDs[j] })
	for _, id := range userIDs {
		snap.Users = append(snap.Users, *s.users[id])
	}
	pageIDs := make([]PageID, 0, len(s.pages))
	for id := range s.pages {
		pageIDs = append(pageIDs, id)
	}
	sort.Slice(pageIDs, func(i, j int) bool { return pageIDs[i] < pageIDs[j] })
	for _, id := range pageIDs {
		snap.Pages = append(snap.Pages, *s.pages[id])
	}
	for _, pid := range pageIDs {
		snap.Indexed = append(snap.Indexed, s.likesByPage[pid]...)
	}
	// Histories: user-side likes that are not in the page-side index.
	for _, uid := range userIDs {
		var hist []Like
		for _, lk := range s.likesByUser[uid] {
			if _, indexed := s.likeSet[likeKey{lk.User, lk.Page}]; !indexed {
				hist = append(hist, lk)
			}
		}
		if len(hist) > 0 {
			snap.Histories[uid] = hist
		}
	}
	snap.Friendships = s.friends.Edges()
	return gob.NewEncoder(w).Encode(&snap)
}

// ReadSnapshot reconstructs a Store from a snapshot stream.
func ReadSnapshot(r io.Reader) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("socialnet: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("socialnet: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	st := NewStore()
	st.nextUser = snap.NextUser
	st.nextPage = snap.NextPage
	for i := range snap.Users {
		u := snap.Users[i]
		st.users[u.ID] = &u
		st.friends.AddNode(int64(u.ID))
		if u.Searchable {
			st.directory = append(st.directory, u.ID)
		}
	}
	for i := range snap.Pages {
		p := snap.Pages[i]
		st.pages[p.ID] = &p
	}
	for _, lk := range snap.Indexed {
		if _, ok := st.users[lk.User]; !ok {
			return nil, fmt.Errorf("socialnet: snapshot like references missing user %d", lk.User)
		}
		if _, ok := st.pages[lk.Page]; !ok {
			return nil, fmt.Errorf("socialnet: snapshot like references missing page %d", lk.Page)
		}
		k := likeKey{lk.User, lk.Page}
		if _, dup := st.likeSet[k]; dup {
			return nil, fmt.Errorf("socialnet: snapshot duplicate like %v", k)
		}
		st.likeSet[k] = struct{}{}
		st.likesByPage[lk.Page] = append(st.likesByPage[lk.Page], lk)
		st.likesByUser[lk.User] = append(st.likesByUser[lk.User], lk)
	}
	for uid, hist := range snap.Histories {
		if _, ok := st.users[uid]; !ok {
			return nil, fmt.Errorf("socialnet: snapshot history references missing user %d", uid)
		}
		st.likesByUser[uid] = append(st.likesByUser[uid], hist...)
	}
	for _, e := range snap.Friendships {
		if err := st.friends.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("socialnet: snapshot friendship: %w", err)
		}
	}
	return st, nil
}
