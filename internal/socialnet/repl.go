package socialnet

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Replication ships the durable journal's segment chains from a leader
// to followers (DESIGN §15). The per-shard stream index that names a
// record's position in its WAL chain — the coordinate the checkpoint
// manifest's Offsets already use — doubles as the replication cursor: a
// follower bootstraps from the leader's latest snapshot, then tails
// each shard's chain from its local next index, fetching raw CRC-framed
// record bytes and applying them through the same two-pass replay that
// crash recovery uses. The shipped frames are persisted verbatim into
// the follower's own chains, so a follower's directory is a durable
// store in its own right: reopening it is just OpenDurable, and a torn
// tail from a mid-ship crash is repaired by the ordinary truncation
// path, then refetched.

// ErrReplGap reports a replication cursor that points below the
// leader's surviving segment chain: a checkpoint compacted the records
// away. The follower cannot tail across the gap and must re-bootstrap
// from the current snapshot.
var ErrReplGap = errors.New("socialnet: replication cursor predates the leader's segment chain")

// DefaultReplBatchBytes bounds one segment-feed response.
const DefaultReplBatchBytes = 1 << 20

// maxReplBatchBytes caps what a single feed request may ask for.
const maxReplBatchBytes = 8 << 20

// ReplManifestDoc describes a leader's replication state: what the
// current snapshot covers (the bootstrap floor) and how far each WAL
// shard's durable stream extends right now (the catch-up target).
type ReplManifestDoc struct {
	Seq       int64  `json:"seq"`
	Shards    int    `json:"shards"`     // journal shard count (snapshot shape)
	WALShards int    `json:"wal_shards"` // segment chain count
	Snapshot  string `json:"snapshot"`
	// SnapshotOffsets are the manifest's coverage offsets: every record
	// below SnapshotOffsets[i] is contained in Snapshot.
	SnapshotOffsets []uint64 `json:"snapshot_offsets"`
	// Offsets are the per-shard fsynced high-water marks — the furthest
	// a follower can currently tail.
	Offsets []uint64 `json:"offsets"`
}

// errNotDurable gates the replication surfaces to durable stores.
var errNotDurable = errors.New("socialnet: replication requires a durable store")

// ReplManifest reports the store's current replication manifest. Only
// durable stores can lead: the feed serves segment files.
func (s *Store) ReplManifest() (ReplManifestDoc, error) {
	if s.wal == nil {
		return ReplManifestDoc{}, errNotDurable
	}
	m, err := readManifest(s.wal.Dir())
	if err != nil {
		return ReplManifestDoc{}, err
	}
	return ReplManifestDoc{
		Seq:             m.Seq,
		Shards:          m.Shards,
		WALShards:       m.walShardCount(),
		Snapshot:        m.Snapshot,
		SnapshotOffsets: m.Offsets,
		Offsets:         s.wal.SyncedOffsets(nil),
	}, nil
}

// ReplSnapshot opens the named snapshot for shipping. The name must be
// the manifest's current snapshot — anything else is either stale
// (compaction removes superseded snapshots, so the caller should
// refetch the manifest) or not a snapshot at all (the check doubles as
// path-traversal protection on the HTTP surface).
func (s *Store) ReplSnapshot(name string) (io.ReadCloser, error) {
	if s.wal == nil {
		return nil, errNotDurable
	}
	m, err := readManifest(s.wal.Dir())
	if err != nil {
		return nil, err
	}
	if name != m.Snapshot {
		return nil, fmt.Errorf("socialnet: snapshot %q is not the current %q", name, m.Snapshot)
	}
	return os.Open(filepath.Join(s.wal.Dir(), m.Snapshot))
}

// ReplSegments returns up to maxBytes of raw framed record bytes from
// the given WAL shard's chain, starting at stream index from and
// bounded by the shard's fsynced high-water mark. An empty result means
// the follower is caught up. Version-1 segments (like-only, no type
// byte) are re-framed as current-version records on the way out, so
// followers speak exactly one wire framing.
func (s *Store) ReplSegments(shard int, from uint64, maxBytes int) ([]byte, error) {
	if s.wal == nil {
		return nil, errNotDurable
	}
	blob, _, err := s.wal.readFrames(shard, from, maxBytes)
	return blob, err
}

// ReplOffsets snapshots the per-shard fsynced high-water marks into dst
// — what a leader advertises in the X-Repl-Offsets staleness header.
// Returns dst[:0] for in-memory stores.
func (s *Store) ReplOffsets(dst []uint64) []uint64 {
	if s.wal == nil {
		return dst[:0]
	}
	return s.wal.SyncedOffsets(dst)
}

// readFrames collects raw record frames from one shard's segment chain,
// starting at stream index from, stopping at the shard's synced
// high-water mark or once maxBytes have accumulated. It returns the
// frame bytes and the record count. Reading races benignly with the
// appender: records below synced were fully flushed before synced
// advanced, and the scan never looks past synced, so it can never meet
// a partially flushed frame.
func (w *DiskWAL) readFrames(shard int, from uint64, maxBytes int) ([]byte, int, error) {
	if shard < 0 || shard >= len(w.shards) {
		return nil, 0, fmt.Errorf("socialnet: replication shard %d outside [0,%d)", shard, len(w.shards))
	}
	if maxBytes <= 0 {
		maxBytes = DefaultReplBatchBytes
	} else if maxBytes > maxReplBatchBytes {
		maxBytes = maxReplBatchBytes
	}
	sh := w.shards[shard]
	sh.mu.Lock()
	synced := sh.synced
	sh.mu.Unlock()
	if from >= synced {
		return nil, 0, nil
	}
	byShard, err := listSegments(w.dir, len(w.shards))
	if err != nil {
		return nil, 0, err
	}
	segs := byShard[shard]
	// The serving segment is the last one starting at or below the
	// cursor; no such segment means compaction already removed it.
	k := -1
	for i := range segs {
		if segs[i].start <= from {
			k = i
		} else {
			break
		}
	}
	if k < 0 {
		return nil, 0, fmt.Errorf("%w: shard %d offset %d", ErrReplGap, shard, from)
	}
	var out []byte
	count := 0
	idx := segs[k].start
	for ; k < len(segs) && idx < synced && len(out) < maxBytes; k++ {
		if segs[k].start != idx {
			return nil, 0, fmt.Errorf("%w: shard %d chain jumps from %d to %d", ErrCorruptSegment, shard, idx, segs[k].start)
		}
		err := scanSegmentFrames(segs[k].path, func(version uint32, payload, frame []byte) bool {
			if idx >= synced || len(out) >= maxBytes {
				return false
			}
			if idx >= from {
				if version == segVersionV1 {
					out = encodeEvent(out, decodeLikeBody(payload))
				} else {
					out = append(out, frame...)
				}
				count++
			}
			idx++
			return true
		})
		if err != nil {
			return nil, 0, err
		}
	}
	return out, count, nil
}

// scanSegmentFrames streams the valid frames of one segment file to fn
// (called with the segment version, the record payload, and the full
// framed bytes; returning false stops the scan). Like scanSegment, the
// first invalid frame ends the scan silently — the replication reader
// never advances past the synced horizon, so a torn tail is always
// beyond what it serves.
func scanSegmentFrames(path string, fn func(version uint32, payload, frame []byte) bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	header := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, header); err != nil {
		return fmt.Errorf("%w: %s: unreadable header", ErrCorruptSegment, path)
	}
	version, _, _, err := parseSegmentHeader(header)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	frame := make([]byte, 0, 256)
	for {
		frame = frame[:0]
		var head [8]byte
		if _, err := io.ReadFull(br, head[:]); err != nil {
			return nil // clean EOF or torn frame
		}
		n := binary.LittleEndian.Uint32(head[0:4])
		if version == segVersionV1 {
			if n != eventPayloadSize {
				return nil
			}
		} else if n == 0 || n > maxRecordPayload {
			return nil
		}
		frame = append(frame, head[:]...)
		if cap(frame) < 8+int(n) {
			frame = append(make([]byte, 0, 8+n), frame...)
		}
		frame = frame[:8+n]
		if _, err := io.ReadFull(br, frame[8:]); err != nil {
			return nil // torn payload
		}
		payload := frame[8:]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(head[4:8]) {
			return nil // corrupt record: torn
		}
		if !fn(version, payload, frame) {
			return nil
		}
	}
}

// scanReplFrames splits a shipped blob into decoded records and their
// exact frame bytes. Unlike a local segment scan, an invalid frame here
// is a hard error: the leader serves only records below its synced
// horizon, so damage means transport or leader-side corruption the
// follower must not apply.
func scanReplFrames(blob []byte) ([]walRecord, [][]byte, error) {
	var recs []walRecord
	var frames [][]byte
	for off := 0; off < len(blob); {
		if len(blob)-off < 8 {
			return nil, nil, fmt.Errorf("%w: short frame header at byte %d", ErrCorruptSegment, off)
		}
		n := int(binary.LittleEndian.Uint32(blob[off : off+4]))
		if n == 0 || n > maxRecordPayload || len(blob)-off < 8+n {
			return nil, nil, fmt.Errorf("%w: bad frame length %d at byte %d", ErrCorruptSegment, n, off)
		}
		payload := blob[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(blob[off+4:off+8]) {
			return nil, nil, fmt.Errorf("%w: frame CRC mismatch at byte %d", ErrCorruptSegment, off)
		}
		rec, ok := decodeRecord(payload)
		if !ok {
			return nil, nil, fmt.Errorf("%w: undecodable record at byte %d", ErrCorruptSegment, off)
		}
		recs = append(recs, rec)
		frames = append(frames, blob[off:off+8+n])
		off += 8 + n
	}
	return recs, frames, nil
}

// ReplSource is where a follower pulls replication state from: a local
// leader store (StoreReplSource, for tests and single-process setups)
// or a leader's HTTP replication feed (api.ReplHTTPSource).
type ReplSource interface {
	// Manifest fetches the leader's current replication manifest.
	Manifest(ctx context.Context) (ReplManifestDoc, error)
	// Snapshot opens the named snapshot for streaming.
	Snapshot(ctx context.Context, name string) (io.ReadCloser, error)
	// Segments fetches raw framed records from one WAL shard starting
	// at stream index from; empty means caught up.
	Segments(ctx context.Context, shard int, from uint64, maxBytes int) ([]byte, error)
}

// StoreReplSource adapts a leader Store in the same process into a
// ReplSource.
type StoreReplSource struct{ Leader *Store }

// Manifest implements ReplSource.
func (s StoreReplSource) Manifest(context.Context) (ReplManifestDoc, error) {
	return s.Leader.ReplManifest()
}

// Snapshot implements ReplSource.
func (s StoreReplSource) Snapshot(_ context.Context, name string) (io.ReadCloser, error) {
	return s.Leader.ReplSnapshot(name)
}

// Segments implements ReplSource.
func (s StoreReplSource) Segments(_ context.Context, shard int, from uint64, maxBytes int) ([]byte, error) {
	return s.Leader.ReplSegments(shard, from, maxBytes)
}

// FollowerOptions tunes a follower's local durable store and fetch
// batching.
type FollowerOptions struct {
	// WAL configures the follower's own segment writing.
	WAL WALOptions
	// BatchBytes bounds one per-shard segment fetch. 0 means
	// DefaultReplBatchBytes.
	BatchBytes int
}

// FollowerStore is a read replica of a leader's durable store: a full
// Store (every read path, analyses, a StreamScorer) whose journal is
// fed exclusively by tailing the leader's segment chains. Writes
// belong on the leader; the follower's own API surface is read-only.
type FollowerStore struct {
	st    *Store
	src   ReplSource
	dir   string
	batch int
	// held counts records the last Poll sweep fetched but deferred
	// because a cross-shard referenced entity had not shipped yet.
	held atomic.Int64
}

// OpenFollower opens (or bootstraps) a follower of src in dir. A fresh
// dir is seeded by downloading the leader's current snapshot and
// writing a local manifest claiming exactly what the snapshot covers;
// a dir with existing state — a follower restart — just reopens it with
// OpenDurable, torn-tail repair and all, and resumes tailing from
// wherever the local chains end. The returned store does NOT feed its
// journal back into the WAL (Poll persists the shipped frames
// verbatim instead), so the follower's chains stay byte-identical to
// the leader's record streams.
func OpenFollower(ctx context.Context, dir string, src ReplSource, opts FollowerOptions) (*FollowerStore, *OpenStats, error) {
	if !HasDurableState(dir) {
		if err := bootstrapFollower(ctx, dir, src); err != nil {
			return nil, nil, fmt.Errorf("socialnet: follower bootstrap: %w", err)
		}
	}
	st, stats, err := OpenDurable(dir, opts.WAL)
	if err != nil {
		return nil, nil, err
	}
	// Detach the journal->WAL feed: replayEvent (the apply path) appends
	// to the in-memory journal, and with a backend attached those
	// appends would be re-encoded into the local WAL alongside the raw
	// shipped frames — every record written twice, and the chains no
	// longer the leader's bytes.
	st.journal.SetBackend(nil)
	batch := opts.BatchBytes
	if batch <= 0 {
		batch = DefaultReplBatchBytes
	}
	return &FollowerStore{st: st, src: src, dir: dir, batch: batch}, stats, nil
}

// bootstrapFollower seeds dir from the leader's current snapshot. The
// local manifest's offsets are the leader's snapshot-coverage offsets:
// the follower's chains start empty and the first Poll tails from
// exactly that floor.
func bootstrapFollower(ctx context.Context, dir string, src ReplSource) error {
	m, err := src.Manifest(ctx)
	if err != nil {
		return err
	}
	if m.Shards < 1 || m.WALShards < 1 || len(m.SnapshotOffsets) != m.WALShards {
		return fmt.Errorf("leader manifest inconsistent: shards %d, wal shards %d, offsets %d", m.Shards, m.WALShards, len(m.SnapshotOffsets))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	rc, err := src.Snapshot(ctx, m.Snapshot)
	if err != nil {
		return err
	}
	defer rc.Close()
	tmp, err := os.CreateTemp(dir, ".tmp-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := io.Copy(tmp, rc); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, m.Snapshot)); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	local := manifest{
		Version:   manifestVersion,
		Seq:       m.Seq,
		Shards:    m.Shards,
		WALShards: m.WALShards,
		Snapshot:  m.Snapshot,
		Offsets:   m.SnapshotOffsets,
	}
	data, err := json.MarshalIndent(&local, "", " ")
	if err != nil {
		return err
	}
	return WriteFileDurable(filepath.Join(dir, manifestFile), data)
}

// RebootstrapFollower discards a follower directory whose cursor fell
// below the leader's surviving chain (ErrReplGap) and re-seeds it from
// the leader's CURRENT snapshot, returning a fresh follower tailing
// from the new floor. The swap is atomic at the directory level: the
// new state is fully bootstrapped into dir+".rebootstrap" first, then
// renamed over dir via a dir→dir+".old" shuffle. The caller must Close
// the old FollowerStore before calling. Every crash window is safe: a
// stale leftover dir gaps again on the next Poll and retries here; a
// missing dir (crash between the two renames) makes the next
// OpenFollower bootstrap fresh.
func RebootstrapFollower(ctx context.Context, dir string, src ReplSource, opts FollowerOptions) (*FollowerStore, *OpenStats, error) {
	tmp := dir + ".rebootstrap"
	if err := os.RemoveAll(tmp); err != nil {
		return nil, nil, err
	}
	if err := bootstrapFollower(ctx, tmp, src); err != nil {
		os.RemoveAll(tmp)
		return nil, nil, fmt.Errorf("socialnet: follower re-bootstrap: %w", err)
	}
	old := dir + ".old"
	if err := os.RemoveAll(old); err != nil {
		return nil, nil, err
	}
	if err := os.Rename(dir, old); err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	if err := os.Rename(tmp, dir); err != nil {
		return nil, nil, err
	}
	if err := syncDir(filepath.Dir(dir)); err != nil {
		return nil, nil, err
	}
	os.RemoveAll(old)
	return OpenFollower(ctx, dir, src, opts)
}

// Store returns the follower's live store — the full read surface.
func (f *FollowerStore) Store() *Store { return f.st }

// Offsets snapshots the follower's per-shard applied offsets into dst —
// the replica's staleness coordinates, directly comparable with the
// leader's ReplManifest Offsets.
func (f *FollowerStore) Offsets(dst []uint64) []uint64 {
	if f.st.wal == nil {
		return dst[:0]
	}
	return f.st.wal.OffsetsInto(dst)
}

// replBatch is one shard's fetched-and-verified tail.
type replBatch struct {
	shard  int
	recs   []walRecord
	frames [][]byte
}

// Poll tails every shard once (repeating while progress is being made)
// and returns how many records it applied AND persisted. Records are
// applied to the in-memory store FIRST and persisted to the local
// chains second: a checkpoint racing Poll then always snapshots a
// superset of the offsets it records (the manifest invariant), and a
// crash between the two simply refetches the suffix — replay dedupes
// absorb any overlap. Fetched frames were CRC-verified and decoded
// before anything is applied, so a damaged batch is rejected whole.
//
// Per-shard fetches are sequential, so one sweep is not a consistent
// cut of the leader's shard horizons: a like or edge can arrive whose
// referenced user/page creation sits in another shard beyond this
// sweep's batch cap or fetch point. Such a record must NOT be
// discarded (the leader has it applied) and must NOT be persisted
// while unapplied (a restart's full-WAL replay would then apply it,
// shifting the journal's record offsets relative to every cursor saved
// before the restart). Instead the record holds its shard back: apply
// stops the shard at the first record that fails, nothing at or past
// it is persisted or acknowledged, and the next sweep refetches it —
// by then the missing creation has usually shipped. A sweep that
// fetches records but can apply none returns and lets the next Poll
// retry (the leader's group commit may simply not have synced the
// creation's shard yet); Held reports the deferred count.
func (f *FollowerStore) Poll(ctx context.Context) (int, error) {
	w := f.st.wal
	if w == nil {
		return 0, errors.New("socialnet: follower is closed")
	}
	total := 0
	for {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		var batches []replBatch
		got := 0
		for i := range w.shards {
			from := w.shardNext(i)
			blob, err := f.src.Segments(ctx, i, from, f.batch)
			if err != nil {
				return total, err
			}
			if len(blob) == 0 {
				continue
			}
			recs, frames, err := scanReplFrames(blob)
			if err != nil {
				return total, fmt.Errorf("socialnet: follower shard %d from %d: %w", i, from, err)
			}
			batches = append(batches, replBatch{shard: i, recs: recs, frames: frames})
			got += len(recs)
		}
		if got == 0 {
			f.held.Store(0)
			return total, nil
		}
		limits, applied := f.apply(batches)
		for bi, b := range batches {
			w.appendRaw(b.shard, b.frames[:limits[bi]])
		}
		if err := w.Err(); err != nil {
			return total, err
		}
		total += applied
		f.held.Store(int64(got - applied))
		if applied == 0 {
			return total, nil
		}
	}
}

// Held reports how many fetched records the most recent Poll sweep
// deferred because a referenced user or page had not shipped yet. A
// transiently positive value is normal (the reference is in flight);
// a value that never drains means the leader's stream is damaged —
// the follower refuses to diverge and its staleness offsets stop
// advancing on the held shards.
func (f *FollowerStore) Held() int { return int(f.held.Load()) }

// apply replays fetched records into the in-memory store with the same
// two-pass discipline as OpenDurable: every entity creation across ALL
// shards lands before any like or edge, because records are sharded by
// subject ID and a like may reference a user or page created in
// another shard's batch.
//
// It returns, per batch, the length of the batch's applyable prefix —
// what Poll may persist and advance past — plus the total prefix
// record count. A record that fails to apply (its referenced user or
// page has not shipped yet) cuts its shard's prefix there: applying or
// persisting past it would silently drop it from the live store while
// the WAL kept it, diverging the replica from the leader until a
// restart and shifting the follower journal's offsets when that
// restart replayed it. Records ahead of a cut may already have been
// applied in memory (creations in pass 1); the refetch re-applies them
// as dups, which replay dedupe absorbs exactly.
func (f *FollowerStore) apply(batches []replBatch) ([]int, int) {
	st := f.st
	var maxUser UserID
	var maxPage PageID
	for _, b := range batches {
		for _, r := range b.recs {
			if r.like {
				continue
			}
			switch r.world.Kind {
			case WorldUser:
				if r.world.User.ID > maxUser {
					maxUser = r.world.User.ID
				}
				st.replayUser(r.world.User)
			case WorldPage:
				if r.world.Page.ID > maxPage {
					maxPage = r.world.Page.ID
				}
				st.replayPage(r.world.Page)
			}
		}
	}
	if int64(maxUser)+1 > st.nextUser.Load() {
		st.nextUser.Store(int64(maxUser) + 1)
	}
	if int64(maxPage)+1 > st.nextPage.Load() {
		st.nextPage.Store(int64(maxPage) + 1)
	}
	limits := make([]int, len(batches))
	applied := 0
	for bi, b := range batches {
		limits[bi] = len(b.recs)
		for ri, r := range b.recs {
			out := replayApplied
			if r.like {
				out = st.replayEvent(r.ev)
			} else {
				switch r.world.Kind {
				case WorldFriend, WorldStatus, WorldFriendsVis:
					out = st.replayWorld(r.world)
				}
			}
			if out == replayDropped {
				limits[bi] = ri
				break
			}
		}
		applied += limits[bi]
	}
	return limits, applied
}

// Checkpoint persists the follower's state into its own directory —
// snapshot, manifest, compaction — exactly like a leader checkpoint.
func (f *FollowerStore) Checkpoint() error { return f.st.Checkpoint(f.dir) }

// Close flushes and closes the follower's local WAL. Poll must not be
// called afterwards.
func (f *FollowerStore) Close() error { return f.st.Close() }
